package pdcedu

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeSurveyAndFigures(t *testing.T) {
	sv := BuildSurvey()
	if len(sv.Programs) != 20 {
		t.Fatalf("programs = %d, want 20", len(sv.Programs))
	}
	if sv.DedicatedCount() != 1 {
		t.Errorf("dedicated = %d, want 1", sv.DedicatedCount())
	}
	if !strings.Contains(RenderFig3(sv), "25.0%") {
		t.Error("Fig. 3 lost the paper's OS share")
	}
	if !strings.Contains(RenderFig2(sv), "Parallelism and concurrency") {
		t.Error("Fig. 2 missing dominant topic")
	}
	if !strings.Contains(RenderTableI(), "SIMD") {
		t.Error("Table I missing SIMD row")
	}
	if len(CanonicalMapping()) != 14 {
		t.Error("Table I rows != 14")
	}
	if len(CE2016()) != 4 || len(SE2014()) != 1 {
		t.Error("Tables II/III shape wrong")
	}
	if len(CS2013PDC()) != 3 || len(CC2020Topics()) != 6 {
		t.Error("guideline lists wrong")
	}
}

func TestFacadeCheckAndJSON(t *testing.T) {
	p := BuildSurvey().Programs[0]
	r, err := CheckProgram(p)
	if err != nil || !r.Pass {
		t.Fatalf("survey program fails: %v %v", r.Pass, err)
	}
	if !strings.Contains(RenderReport(r), "MEETS") {
		t.Error("report verdict missing")
	}
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/p.json"
	if err := SaveProgramFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProgramFile(path)
	if err != nil || got.Name != p.Name {
		t.Fatalf("load = %v, %v", got.Name, err)
	}
}

#!/usr/bin/env sh
# Runs the root benchmark suite (E1-E6 paper artifacts, E17-E24 cluster
# transport and fault tolerance, E25-E27 storage engine, E28 Merkle
# anti-entropy: steady-state and fixed-diff converge cost at 1k/10k
# keys against the preserved full-listings baseline, E29 observability:
# instrumented vs metrics-disabled server round trips plus obs
# counter/histogram micro-benches proving the zero-alloc hot path,
# E30 tracing: tracing-enabled vs untraced versioned server round
# trips plus span-ring micro-benches proving the unsampled path adds
# nothing, E31 cluster load: the distload acceptance suite — zipfian
# hot-key reads through the coordinator cached vs uncached, and a
# single backend at 2x capacity with admission-control shedding vs
# without, E32 durability: the WAL write path per fsync policy vs the
# in-memory engine on the pipelined 16-goroutine hot path, plus
# snapshot+log replay recovery time at 10k/50k keys) and records the
# numbers as BENCH_<n>.json, continuing the perf trajectory the README
# tracks.
#
# Usage: scripts/bench.sh [N]        -> writes BENCH_N.json (default 9)
#        BENCHTIME=3s scripts/bench.sh
set -eu
cd "$(dirname "$0")/.."

out=$(go test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME:-1s}" .)
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
BEGIN { print "{"; first = 1 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)         # strip the GOMAXPROCS suffix
	if (!first) printf ",\n"
	first = 0
	printf "  \"%s\": {\"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", name, $3, $5, $7
}
END { print "\n}" }
' >"BENCH_${1:-9}.json"

# The whole-cluster load numbers ride in the same artifact: distload's
# acceptance suite merges its reports into the JSON the awk pass above
# just wrote.
go run ./cmd/distload -suite bench -json "BENCH_${1:-9}.json"

echo "wrote BENCH_${1:-9}.json"

// distnode runs one self-healing distributed KV node: a csnet server
// carrying the key-value data plane and the SWIM gossip control plane
// (internal/member) on a single port. Start several, point them at a
// seed, and the membership converges by gossip; kill one and the rest
// declare it dead within the suspicion timeout; restart it and it
// refutes the death and rejoins.
//
//	distnode -addr 127.0.0.1:7001
//	distnode -addr 127.0.0.1:7002 -join 127.0.0.1:7001
//	distnode -addr 127.0.0.1:7003 -join 127.0.0.1:7001
//
// The -addr value is both the listen address and the node's member
// identity, so it must be a concrete host:port that peers can dial.
//
// The node serves the Merkle anti-entropy ops (OpTreeV/OpRangeV) that
// a dist.Cluster coordinator's Rebalance drives; -merkle-buckets must
// match the coordinator's ClusterConfig.Buckets (both default to
// store.DefaultMerkleBuckets). The periodic summary reports the tree's
// root hash and how many leaf rebuilds write traffic has forced —
// replicas whose summaries show the same root are provably converged.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/dist"
	"pdcedu/internal/member"
	"pdcedu/internal/obs"
	"pdcedu/internal/store"
	"pdcedu/internal/trace"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop, nil, os.Stderr); err != nil {
		log.Fatal(err)
	}
}

// run is the node's whole lifecycle, factored out of main so a test
// can boot a real node: parse flags, start the engine + sweeper +
// server + membership, loop until stop, shut down cleanly. When ready
// is non-nil it receives the bound address once the node is serving
// (essential with -addr 127.0.0.1:0, where the port is ephemeral).
func run(args []string, stop <-chan os.Signal, ready chan<- string, logw io.Writer) error {
	fs := flag.NewFlagSet("distnode", flag.ContinueOnError)
	fs.SetOutput(logw)
	addr := fs.String("addr", "127.0.0.1:7001", "listen address and member identity (host:port)")
	join := fs.String("join", "", "comma-separated seed addresses to join")
	probe := fs.Duration("probe", 500*time.Millisecond, "failure-detector probe interval")
	suspicion := fs.Duration("suspicion", 0, "suspicion timeout before a suspect is declared dead (default 5x probe)")
	quiet := fs.Bool("quiet", false, "log only membership transitions, not the periodic summary")
	shards := fs.Int("shards", store.DefaultShards, "storage-engine shard count (rounded up to a power of two)")
	merkleBuckets := fs.Int("merkle-buckets", store.DefaultMerkleBuckets,
		"Merkle anti-entropy bucket count (rounded up to a power of two; must match the cluster coordinator's)")
	tombGC := fs.Duration("tombstone-gc", store.DefaultTombstoneGC, "how long delete and expiry tombstones are retained before garbage collection")
	sweep := fs.Duration("sweep", 5*time.Second, "background sweep interval for TTL expiry and tombstone GC")
	dataDir := fs.String("data-dir", "", "durability: directory for the per-shard WAL and snapshots; on restart the node reloads from it and catches up via Merkle anti-entropy (empty = in-memory only)")
	fsyncPolicy := fs.String("fsync", "interval", "WAL fsync policy: always (group-commit per write), interval (background flush), or never (requires -data-dir)")
	fsyncEvery := fs.Duration("fsync-interval", 100*time.Millisecond, "flush cadence for -fsync interval")
	snapshotEvery := fs.Int64("snapshot-every", 8<<20, "snapshot a shard and truncate its log once its segment exceeds this many bytes (requires -data-dir)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /healthz, /readyz, /debug/traces, /debug/vars, and /debug/pprof on this address (empty = off)")
	shedQueue := fs.Int("shed-queue", 0, "admission control: per-connection worker queue depth; frames past it are shed with BUSY (0 = queue bounded only by worker count, no shedding)")
	shedInflight := fs.Int("shed-inflight", 0, "admission control: server-wide in-flight request budget; frames past it are shed with BUSY (0 = unlimited)")
	clusterAddrs := fs.String("cluster", "", "comma-separated backend addresses: run an embedded cluster coordinator serving HTTP /kv/{key} on -metrics-addr and wired to this node's membership (empty = off)")
	clusterRF := fs.Int("cluster-rf", 3, "replication factor of the embedded coordinator (requires -cluster)")
	readCache := fs.Int("read-cache", 0, "embedded coordinator's hot-key read-cache size in entries (0 = off; requires -cluster)")
	slowOp := fs.Duration("slow-op", 0, "log server-side ops slower than this threshold and tail-promote their traces (0 = off)")
	traceSample := fs.Int("trace-sample", 0, "head-sample 1 in N locally originated traces (0 = off; wire-propagated traces are always honored)")
	traceRing := fs.Int("trace-ring", trace.DefaultCapacity, "span ring capacity (rounded up to a power of two)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(logw, "", log.LstdFlags)

	sopts := store.Options{Shards: *shards, MerkleBuckets: *merkleBuckets, TombstoneGC: *tombGC}
	var eng *store.Sharded
	if *dataDir != "" {
		policy, perr := store.ParseFsyncPolicy(*fsyncPolicy)
		if perr != nil {
			return perr
		}
		var oerr error
		eng, oerr = store.OpenSharded(sopts, store.WALOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			Interval:      *fsyncEvery,
			SnapshotBytes: *snapshotEvery,
		})
		if oerr != nil {
			return fmt.Errorf("distnode: open %s: %w", *dataDir, oerr)
		}
		rs := eng.Recovery()
		logger.Printf("distnode: recovered %d snapshot entries + %d WAL records (%d segments, %d torn bytes dropped) from %s in %s; fsync=%s",
			rs.SnapshotEntries, rs.WALRecords, rs.Segments, rs.TornBytes, *dataDir, rs.Elapsed.Round(time.Microsecond), policy)
		// Reload gauges on /metrics: what this node's last open rebuilt
		// from disk. Func re-registration is last-wins (see the store
		// gauges below), matching the newest engine in test processes.
		obs.Default().Func("store.recovery.entries", func() int64 { return int64(eng.Recovery().SnapshotEntries) })
		obs.Default().Func("store.recovery.records", func() int64 { return int64(eng.Recovery().WALRecords) })
		obs.Default().Func("store.recovery.torn_bytes", func() int64 { return eng.Recovery().TornBytes })
	} else {
		eng = store.NewSharded(sopts)
	}
	// Deferred before the sweeper starts so it runs after the sweeper
	// stops: a close mid-sweep would poison the sweep's purge records.
	defer func() {
		if cerr := eng.Close(); cerr != nil {
			logger.Printf("distnode: close engine: %v", cerr)
		}
	}()
	sweeper := store.StartSweeper(eng, *sweep, 4096)
	defer sweeper.Stop()
	// Live store levels as func gauges: read at snapshot time, so the
	// stats plane reports the engine's truth rather than a shadow
	// counter. Func re-registration is last-wins by design — a test
	// booting several nodes in one process points the gauges at the
	// newest node's engine, which is the one it is probing.
	obs.Default().Func("store.entries", func() int64 {
		live, _ := eng.Counts()
		return int64(live)
	})
	obs.Default().Func("store.tombstones", func() int64 {
		_, tombs := eng.Counts()
		return int64(tombs)
	})
	// A per-node recorder (not the process-global default) so tests that
	// boot several nodes in one process keep distinct span rings and node
	// identities. The node name is set once the listener resolves.
	rec := trace.New(trace.Config{Capacity: *traceRing})
	rec.SetSlowThreshold(*slowOp)
	if *traceSample > 0 {
		rec.SetSampleEvery(*traceSample)
		rec.SetEnabled(true)
	}
	obs.Default().Func("trace.spans_recorded", func() int64 { return int64(rec.Stats().Recorded) })
	obs.Default().Func("trace.spans_dropped", func() int64 { return int64(rec.Stats().Dropped) })
	obs.Default().Func("trace.traces_promoted", func() int64 { return int64(rec.Stats().Promoted) })
	kv := csnet.NewKVHandlerOn(eng).WithTracer(rec)
	// The member identity must be the address peers actually dial, so
	// the server binds first (resolving an ephemeral ":0" port) and the
	// memberlist is created with the bound address. The server starts
	// on a swappable handler: gossip frames answer "not ready" for the
	// instant before the memberlist exists, data frames work throughout.
	var handler atomic.Value // csnet.HandlerFunc
	handler.Store(csnet.HandlerFunc(kv.Serve))
	srv := csnet.NewServer(csnet.HandlerFunc(func(r csnet.Request) csnet.Response {
		return handler.Load().(csnet.HandlerFunc)(r)
	}), 256)
	srv.SetAdmission(*shedQueue, *shedInflight)
	bound, err := srv.Start(*addr)
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	rec.SetNode(bound)
	ml, err := member.New(member.Config{
		ID:               bound,
		ProbeInterval:    *probe,
		SuspicionTimeout: *suspicion,
		Logf:             logger.Printf,
	})
	if err != nil {
		return err
	}
	handler.Store(csnet.HandlerFunc(ml.Handler(kv).Serve))
	// The embedded coordinator: the same dist.Cluster a standalone
	// gateway would run, co-located with a node and subscribed to its
	// membership, so dead backends leave its ring by gossip. Its /kv
	// HTTP surface (on the metrics plane) is what distload and demos
	// drive; its dist.* metrics — the read-cache hit/miss/invalidation
	// counters included — land in this node's registry and therefore on
	// /metrics and in every OpStats/ClusterStats merge.
	var gw *dist.Cluster
	if *clusterAddrs != "" {
		var backends []string
		for _, s := range strings.Split(*clusterAddrs, ",") {
			if s = strings.TrimSpace(s); s != "" {
				backends = append(backends, s)
			}
		}
		gw, err = dist.NewCluster(dist.ClusterConfig{
			Addrs:       backends,
			Replication: *clusterRF,
			Buckets:     *merkleBuckets,
			ReadCache:   *readCache,
			Tracer:      rec,
		})
		if err != nil {
			return err
		}
		defer gw.Close()
		defer gw.Watch(ml)()
	}
	if *slowOp > 0 {
		csnet.SetSlowOp(*slowOp, func(op csnet.Op, bucket int, d time.Duration, traceID uint64) {
			if traceID != 0 {
				// The trace ID makes the log line actionable: paste it into
				// /debug/traces?id= for the whole request's waterfall.
				logger.Printf("distnode %s: slow op %s bucket=%d took %s (threshold %s) trace=%016x",
					bound, op, bucket, d, *slowOp, traceID)
				return
			}
			logger.Printf("distnode %s: slow op %s bucket=%d took %s (threshold %s)",
				bound, op, bucket, d, *slowOp)
		})
		defer csnet.SetSlowOp(0, nil)
	}
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, merr := net.Listen("tcp", *metricsAddr)
		if merr != nil {
			return fmt.Errorf("distnode: metrics listen %s: %w", *metricsAddr, merr)
		}
		metricsSrv = &http.Server{Handler: metricsMux(rec, ml, eng, gw)}
		go func() { _ = metricsSrv.Serve(mln) }()
		defer metricsSrv.Close()
		logger.Printf("distnode %s: metrics on http://%s/metrics (also /healthz, /readyz, /debug/traces, /debug/vars, /debug/pprof)",
			bound, mln.Addr())
	}
	logger.Printf("distnode %s: serving KV + gossip + anti-entropy (%d merkle buckets)",
		bound, eng.Digest().Buckets())
	if ready != nil {
		ready <- bound
	}

	var seeds []string
	for _, s := range strings.Split(*join, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) > 0 {
		if err := ml.Join(seeds...); err != nil {
			// A dead seed is not fatal: keep probing, the cluster may
			// find us through another member's gossip.
			logger.Printf("distnode %s: join: %v", bound, err)
		}
	}
	ml.Start()

	tick := time.NewTicker(5 * *probe)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			logger.Printf("distnode %s: shutting down", bound)
			if err := ml.Stop(); err != nil {
				logger.Printf("distnode %s: stop membership: %v", bound, err)
			}
			srv.Shutdown()
			// The exit summary is the node's last words: the full metrics
			// snapshot, so a run that ends before anyone scraped /metrics
			// still leaves its numbers in the log.
			logger.Printf("distnode %s: final metrics snapshot:\n%s", bound, obs.Default().Snapshot())
			return nil
		case <-tick.C:
			if *quiet {
				continue
			}
			var b strings.Builder
			expired, purged := sweeper.Totals()
			fmt.Fprintf(&b, "store: %d keys (swept %d expired, %d tombstones); merkle root %016x (%d leaf rebuilds); members (%d alive):",
				kv.Len(), expired, purged, eng.Digest().Root(), eng.MerkleRebuilds(), ml.NumAlive())
			for _, m := range ml.Members() {
				fmt.Fprintf(&b, " %s=%s@%d", m.ID, m.State, m.Incarnation)
			}
			logger.Print(b.String())
		}
	}
}

// publishExpvar exposes the obs registry through the standard
// /debug/vars JSON as one "pdcedu" map (alongside the runtime's
// memstats and cmdline). expvar.Publish panics on duplicates, so tests
// that boot several nodes in one process share a single publication of
// the process-global registry — which is what the registry is anyway.
var publishExpvar = sync.OnceFunc(func() {
	expvar.Publish("pdcedu", expvar.Func(func() any {
		snap := obs.Default().Snapshot()
		vars := make(map[string]any, len(snap.Metrics))
		for _, m := range snap.Metrics {
			if m.Kind == obs.KindHistogram && m.Hist != nil {
				vars[m.Name] = map[string]uint64{
					"count": m.Hist.Count,
					"p50":   m.Hist.Quantile(0.50),
					"p99":   m.Hist.Quantile(0.99),
					"p999":  m.Hist.Quantile(0.999),
					"max":   m.Hist.Max,
					"mean":  m.Hist.Mean(),
				}
				continue
			}
			vars[m.Name] = m.Value
		}
		return vars
	}))
})

// metricsMux builds the node's observability HTTP plane: the plain-text
// /metrics page (one line per metric, histograms with percentiles),
// liveness and readiness probes, the trace waterfalls under
// /debug/traces, /debug/vars (expvar JSON, runtime memstats included),
// and the standard /debug/pprof profiling endpoints. With an embedded
// coordinator (-cluster) it also serves the /kv/{key} data gateway.
func metricsMux(rec *trace.Recorder, ml *member.Memberlist, eng *store.Sharded, gw *dist.Cluster) *http.ServeMux {
	publishExpvar()
	mux := http.NewServeMux()
	if gw != nil {
		mux.HandleFunc("/kv/", func(w http.ResponseWriter, r *http.Request) {
			key := strings.TrimPrefix(r.URL.Path, "/kv/")
			if key == "" {
				http.Error(w, "missing key", http.StatusBadRequest)
				return
			}
			switch r.Method {
			case http.MethodGet:
				v, ok, err := gw.Get(key)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadGateway)
					return
				}
				if !ok {
					http.NotFound(w, r)
					return
				}
				w.Header().Set("Content-Type", "application/octet-stream")
				_, _ = w.Write(v)
			case http.MethodPut, http.MethodPost:
				body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				if err := gw.Set(key, body); err != nil {
					http.Error(w, err.Error(), http.StatusBadGateway)
					return
				}
				w.WriteHeader(http.StatusNoContent)
			case http.MethodDelete:
				ok, err := gw.Del(key)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadGateway)
					return
				}
				if !ok {
					http.NotFound(w, r)
					return
				}
				w.WriteHeader(http.StatusNoContent)
			default:
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			}
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = obs.Default().Snapshot().WriteText(w)
	})
	// Liveness: the process is up and the HTTP plane answers — nothing
	// more. Orchestrators restart on its failure, so it must not depend
	// on cluster state.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	// Readiness: safe to route traffic here — the engine is serving and
	// this node's membership view has at least one alive member (itself;
	// zero means the memberlist has been stopped).
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if eng == nil || ml == nil || ml.NumAlive() < 1 {
			http.Error(w, "not ready: membership down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	// /debug/traces lists the node's tail-promoted slow traces (slowest
	// first) as text waterfalls; ?id=<hex trace id> renders one specific
	// trace from whatever spans this node holds for it.
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if q := r.URL.Query().Get("id"); q != "" {
			id, err := strconv.ParseUint(strings.TrimPrefix(q, "0x"), 16, 64)
			if err != nil {
				http.Error(w, fmt.Sprintf("bad trace id %q: %v", q, err), http.StatusBadRequest)
				return
			}
			trees := trace.Assemble(rec.TraceSpans(id))
			if len(trees) == 0 {
				fmt.Fprintf(w, "no spans for trace %016x\n", id)
				return
			}
			for _, t := range trees {
				t.Waterfall(w)
			}
			return
		}
		trees := trace.Assemble(rec.SlowSpans())
		if len(trees) == 0 {
			fmt.Fprintln(w, "no slow traces recorded (tail promotion is driven by -slow-op)")
			return
		}
		sort.Slice(trees, func(i, j int) bool { return trees[i].Duration() > trees[j].Duration() })
		for i, t := range trees {
			if i > 0 {
				fmt.Fprintln(w)
			}
			t.Waterfall(w)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

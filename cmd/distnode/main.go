// distnode runs one self-healing distributed KV node: a csnet server
// carrying the key-value data plane and the SWIM gossip control plane
// (internal/member) on a single port. Start several, point them at a
// seed, and the membership converges by gossip; kill one and the rest
// declare it dead within the suspicion timeout; restart it and it
// refutes the death and rejoins.
//
//	distnode -addr 127.0.0.1:7001
//	distnode -addr 127.0.0.1:7002 -join 127.0.0.1:7001
//	distnode -addr 127.0.0.1:7003 -join 127.0.0.1:7001
//
// The -addr value is both the listen address and the node's member
// identity, so it must be a concrete host:port that peers can dial.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/member"
	"pdcedu/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "listen address and member identity (host:port)")
	join := flag.String("join", "", "comma-separated seed addresses to join")
	probe := flag.Duration("probe", 500*time.Millisecond, "failure-detector probe interval")
	suspicion := flag.Duration("suspicion", 0, "suspicion timeout before a suspect is declared dead (default 5x probe)")
	quiet := flag.Bool("quiet", false, "log only membership transitions, not the periodic summary")
	shards := flag.Int("shards", store.DefaultShards, "storage-engine shard count (rounded up to a power of two)")
	tombGC := flag.Duration("tombstone-gc", store.DefaultTombstoneGC, "how long delete tombstones are retained before garbage collection")
	sweep := flag.Duration("sweep", 5*time.Second, "background sweep interval for TTL expiry and tombstone GC")
	flag.Parse()

	eng := store.NewSharded(store.Options{Shards: *shards, TombstoneGC: *tombGC})
	sweeper := store.StartSweeper(eng, *sweep, 4096)
	defer sweeper.Stop()
	kv := csnet.NewKVHandlerOn(eng)
	ml, err := member.New(member.Config{
		ID:               *addr,
		ProbeInterval:    *probe,
		SuspicionTimeout: *suspicion,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := csnet.NewServer(ml.Handler(kv), 256)
	bound, err := srv.Start(*addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("distnode %s: serving KV + gossip", bound)

	var seeds []string
	for _, s := range strings.Split(*join, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	if len(seeds) > 0 {
		if err := ml.Join(seeds...); err != nil {
			// A dead seed is not fatal: keep probing, the cluster may
			// find us through another member's gossip.
			log.Printf("distnode %s: join: %v", bound, err)
		}
	}
	ml.Start()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	tick := time.NewTicker(5 * *probe)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			log.Printf("distnode %s: shutting down", bound)
			if err := ml.Stop(); err != nil {
				log.Printf("distnode %s: stop membership: %v", bound, err)
			}
			srv.Shutdown()
			return
		case <-tick.C:
			if *quiet {
				continue
			}
			var b strings.Builder
			expired, purged := sweeper.Totals()
			fmt.Fprintf(&b, "store: %d keys (swept %d expired, %d tombstones); members (%d alive):",
				kv.Len(), expired, purged, ml.NumAlive())
			for _, m := range ml.Members() {
				fmt.Fprintf(&b, " %s=%s@%d", m.ID, m.State, m.Incarnation)
			}
			log.Print(b.String())
		}
	}
}

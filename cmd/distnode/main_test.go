package main

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/trace"
)

// syncBuffer lets the node's logger and the test goroutine share a log
// sink without racing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startNode boots one distnode on an ephemeral port and returns its
// bound address, its log sink, and a shutdown function that waits for
// a clean exit.
func startNode(t *testing.T, extra ...string) (addr string, logs *syncBuffer, shutdown func()) {
	t.Helper()
	logs = &syncBuffer{}
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-probe", "50ms"}, extra...)
	go func() { errc <- run(args, stop, ready, logs) }()
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("node exited before serving: %v (logs: %s)", err, logs.String())
	case <-time.After(5 * time.Second):
		t.Fatal("node never became ready")
	}
	return addr, logs, func() {
		stop <- os.Interrupt
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("node did not shut down within 5s")
		}
	}
}

// TestDistnodeSmoke boots two real nodes, joins the second to the
// first, serves one versioned op and one digest query through the
// shared data/gossip/anti-entropy port, then shuts both down cleanly.
func TestDistnodeSmoke(t *testing.T) {
	seedAddr, seedLogs, stopSeed := startNode(t)
	defer stopSeed()
	_, _, stopPeer := startNode(t, "-join", seedAddr, "-quiet")
	defer stopPeer()

	cl, err := csnet.Dial(seedAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One versioned op round-trips through the node's engine.
	winner, applied, err := cl.SetV("smoke", []byte("ok"), 0)
	if err != nil || !applied || winner == 0 {
		t.Fatalf("SetV = %d %v %v", winner, applied, err)
	}
	e, ok, err := cl.GetV("smoke")
	if err != nil || !ok || string(e.Value) != "ok" || e.Version != winner {
		t.Fatalf("GetV = %+v %v %v, want ok@%d", e, ok, err, winner)
	}

	// The anti-entropy surface is live on the same port.
	buckets, nodes, err := cl.TreeV(nil)
	if err != nil || buckets == 0 || len(nodes) != 1 || nodes[0].Hash == 0 {
		t.Fatalf("TreeV = %d %v %v, want a nonzero root", buckets, nodes, err)
	}

	// The peer's join reached the seed: its periodic summary reports
	// two alive members.
	deadline := time.Now().Add(5 * time.Second)
	for {
		members := 0
		for _, line := range strings.Split(seedLogs.String(), "\n") {
			if n := strings.Count(line, "=alive@"); n > members {
				members = n
			}
		}
		if members >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed never saw the joined peer; logs:\n%s", seedLogs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestDistnodeMetricsPlane boots a node with -metrics-addr and -slow-op,
// drives traffic through it, and checks every observability surface:
// the OpStats wire op, the /metrics text page (with per-op latency
// percentiles), /debug/vars, the slow-op log, and the exit snapshot.
func TestDistnodeMetricsPlane(t *testing.T) {
	addr, logs, shutdown := startNode(t, "-quiet", "-metrics-addr", "127.0.0.1:0", "-slow-op", "1ns")

	cl, err := csnet.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 10; i++ {
		if err := cl.Set("metrics-key", []byte("v")); err != nil {
			t.Fatal(err)
		}
		if _, _, err := cl.Get("metrics-key"); err != nil {
			t.Fatal(err)
		}
	}

	// The OpStats wire op answers with a live merged-ready snapshot.
	snap, err := cl.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if m, ok := snap.Get("csnet.server.ops.SET"); !ok || m.Value < 10 {
		t.Fatalf("snapshot csnet.server.ops.SET = %+v %v, want >= 10", m, ok)
	}
	if m, ok := snap.Get("store.entries"); !ok || m.Value != 1 {
		t.Fatalf("snapshot store.entries = %+v %v, want 1", m, ok)
	}

	// The HTTP plane is discoverable from the log line and serves the
	// text page with latency percentiles, plus expvar.
	re := regexp.MustCompile(`metrics on http://([^/]+)/metrics`)
	m := re.FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no metrics address in logs:\n%s", logs.String())
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + m[1] + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		return string(body)
	}
	page := get("/metrics")
	if !regexp.MustCompile(`(?m)^csnet\.server\.op_latency\.GET count=\d+ p50=\d+ p99=\d+ p999=\d+ max=\d+`).MatchString(page) {
		t.Fatalf("/metrics missing GET latency percentiles:\n%s", page)
	}
	if !strings.Contains(get("/debug/vars"), `"pdcedu"`) {
		t.Fatal("/debug/vars missing the pdcedu expvar map")
	}

	// -slow-op 1ns flags everything; the log names the op and bucket.
	if !regexp.MustCompile(`slow op (SET|GET|SETV|GETV|PING|STATS) bucket=\d+ took`).MatchString(logs.String()) {
		t.Fatalf("no slow-op line in logs:\n%s", logs.String())
	}

	shutdown()
	if !strings.Contains(logs.String(), "final metrics snapshot") {
		t.Fatalf("no exit snapshot in logs:\n%s", logs.String())
	}
}

// TestDistnodeTracePlane boots a node with tracing and a 1ns slow-op
// threshold, drives a traced request through it, and checks the trace
// surfaces: /healthz, /readyz, the tail-promoted waterfall on
// /debug/traces (list and ?id= lookup), and the trace ID on the
// slow-op log line.
func TestDistnodeTracePlane(t *testing.T) {
	addr, logs, shutdown := startNode(t, "-quiet", "-metrics-addr", "127.0.0.1:0", "-slow-op", "1ns")
	defer shutdown()

	re := regexp.MustCompile(`metrics on http://([^/]+)/metrics`)
	m := re.FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no metrics address in logs:\n%s", logs.String())
	}
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + m[1] + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz = %d %q, want 200 ready", code, body)
	}

	// A traced request: the sampled context rides the versioned frame,
	// the server span it records outlives the ring via tail promotion
	// (everything beats 1ns).
	cl, err := csnet.Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tc := trace.Context{TraceID: 0xFEEDFACE, SpanID: 0x1, Flags: trace.FlagSampled}
	resp, err := cl.Send(csnet.Request{Op: csnet.OpSetV, Key: "traced", Value: []byte("v"), Version: 1, Trace: tc}).ResponseV()
	if err != nil || resp.Status != csnet.StatusOK {
		t.Fatalf("traced SetV = %+v %v", resp, err)
	}

	// The slow-op line carries the trace ID for /debug/traces lookup.
	slowRE := regexp.MustCompile(`slow op SETV bucket=\d+ took \S+ \(threshold \S+\) trace=00000000feedface`)
	deadline := time.Now().Add(2 * time.Second)
	for !slowRE.MatchString(logs.String()) {
		if time.Now().After(deadline) {
			t.Fatalf("no traced slow-op line in logs:\n%s", logs.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The waterfall surfaces on the slow list and the by-ID lookup.
	if code, body := get("/debug/traces"); code != http.StatusOK ||
		!strings.Contains(body, "trace 00000000feedface") || !strings.Contains(body, "server SETV") {
		t.Fatalf("/debug/traces = %d:\n%s", code, body)
	}
	if code, body := get("/debug/traces?id=feedface"); code != http.StatusOK ||
		!strings.Contains(body, "server SETV") {
		t.Fatalf("/debug/traces?id= = %d:\n%s", code, body)
	}
	if code, _ := get("/debug/traces?id=zzz"); code != http.StatusBadRequest {
		t.Fatalf("/debug/traces?id=zzz = %d, want 400", code)
	}
	// An unknown trace is a clean empty page, not an error.
	if code, body := get("/debug/traces?id=1"); code != http.StatusOK || !strings.Contains(body, "no spans") {
		t.Fatalf("/debug/traces?id=1 = %d %q, want 'no spans'", code, body)
	}
}

// TestDistnodeGateway boots three storage nodes plus an embedded
// coordinator with the hot-key read cache and admission control
// enabled, drives the /kv/{key} HTTP gateway, and checks that repeat
// reads are answered from the cache (dist.cache.hits on /metrics) and
// that writes and deletes stay coherent through it.
func TestDistnodeGateway(t *testing.T) {
	a, _, stopA := startNode(t, "-quiet")
	defer stopA()
	b, _, stopB := startNode(t, "-quiet", "-join", a)
	defer stopB()
	c, _, stopC := startNode(t, "-quiet", "-join", a)
	defer stopC()
	_, logs, stopGW := startNode(t, "-quiet", "-join", a,
		"-metrics-addr", "127.0.0.1:0",
		"-cluster", a+","+b+","+c,
		"-cluster-rf", "3",
		"-read-cache", "1024",
		"-shed-queue", "64")
	defer stopGW()

	re := regexp.MustCompile(`metrics on http://([^/]+)/metrics`)
	m := re.FindStringSubmatch(logs.String())
	if m == nil {
		t.Fatalf("no metrics address in logs:\n%s", logs.String())
	}
	base := "http://" + m[1]
	do := func(method, key string, body []byte) (int, string) {
		req, err := http.NewRequest(method, base+"/kv/"+key, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s /kv/%s: %v", method, key, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, _ := do(http.MethodPut, "hot", []byte("v1")); code != http.StatusNoContent {
		t.Fatalf("PUT = %d, want 204", code)
	}
	for i := 0; i < 5; i++ {
		if code, body := do(http.MethodGet, "hot", nil); code != http.StatusOK || body != "v1" {
			t.Fatalf("GET #%d = %d %q, want 200 v1", i, code, body)
		}
	}
	// Overwrite through the gateway: the cached entry must not be served.
	if code, _ := do(http.MethodPut, "hot", []byte("v2")); code != http.StatusNoContent {
		t.Fatal("overwrite PUT failed")
	}
	if code, body := do(http.MethodGet, "hot", nil); code != http.StatusOK || body != "v2" {
		t.Fatalf("GET after overwrite = %d %q, want 200 v2", code, body)
	}
	if code, _ := do(http.MethodDelete, "hot", nil); code != http.StatusNoContent {
		t.Fatal("DELETE failed")
	}
	if code, _ := do(http.MethodGet, "hot", nil); code != http.StatusNotFound {
		t.Fatalf("GET after delete = %d, want 404", code)
	}
	if code, _ := do(http.MethodGet, "never-set", nil); code != http.StatusNotFound {
		t.Fatalf("GET missing = %d, want 404", code)
	}

	// The write-through cache answered the repeat reads: the metrics
	// page reports nonzero hits alongside the shed counter surface.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	hitRE := regexp.MustCompile(`(?m)^dist\.cache\.hits ([1-9]\d*)$`)
	if !hitRE.Match(page) {
		t.Fatalf("/metrics missing nonzero dist.cache.hits:\n%s", page)
	}
	if !regexp.MustCompile(`(?m)^csnet\.server\.shed \d+$`).Match(page) {
		t.Fatalf("/metrics missing csnet.server.shed:\n%s", page)
	}
}

package main

import (
	"bytes"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"pdcedu/internal/csnet"
)

// syncBuffer lets the node's logger and the test goroutine share a log
// sink without racing.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startNode boots one distnode on an ephemeral port and returns its
// bound address, its log sink, and a shutdown function that waits for
// a clean exit.
func startNode(t *testing.T, extra ...string) (addr string, logs *syncBuffer, shutdown func()) {
	t.Helper()
	logs = &syncBuffer{}
	stop := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-probe", "50ms"}, extra...)
	go func() { errc <- run(args, stop, ready, logs) }()
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("node exited before serving: %v (logs: %s)", err, logs.String())
	case <-time.After(5 * time.Second):
		t.Fatal("node never became ready")
	}
	return addr, logs, func() {
		stop <- os.Interrupt
		select {
		case err := <-errc:
			if err != nil {
				t.Errorf("run returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("node did not shut down within 5s")
		}
	}
}

// TestDistnodeSmoke boots two real nodes, joins the second to the
// first, serves one versioned op and one digest query through the
// shared data/gossip/anti-entropy port, then shuts both down cleanly.
func TestDistnodeSmoke(t *testing.T) {
	seedAddr, seedLogs, stopSeed := startNode(t)
	defer stopSeed()
	_, _, stopPeer := startNode(t, "-join", seedAddr, "-quiet")
	defer stopPeer()

	cl, err := csnet.Dial(seedAddr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// One versioned op round-trips through the node's engine.
	winner, applied, err := cl.SetV("smoke", []byte("ok"), 0)
	if err != nil || !applied || winner == 0 {
		t.Fatalf("SetV = %d %v %v", winner, applied, err)
	}
	e, ok, err := cl.GetV("smoke")
	if err != nil || !ok || string(e.Value) != "ok" || e.Version != winner {
		t.Fatalf("GetV = %+v %v %v, want ok@%d", e, ok, err, winner)
	}

	// The anti-entropy surface is live on the same port.
	buckets, nodes, err := cl.TreeV(nil)
	if err != nil || buckets == 0 || len(nodes) != 1 || nodes[0].Hash == 0 {
		t.Fatalf("TreeV = %d %v %v, want a nonzero root", buckets, nodes, err)
	}

	// The peer's join reached the seed: its periodic summary reports
	// two alive members.
	deadline := time.Now().Add(5 * time.Second)
	for {
		members := 0
		for _, line := range strings.Split(seedLogs.String(), "\n") {
			if n := strings.Count(line, "=alive@"); n > members {
				members = n
			}
		}
		if members >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("seed never saw the joined peer; logs:\n%s", seedLogs.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
}

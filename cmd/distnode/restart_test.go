package main

import (
	"fmt"
	"regexp"
	"strconv"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/dist"
)

// TestDistnodeRestartRecovery is the durability E2E: a three-node
// cluster with -data-dir takes a full write load, one node is killed
// and diverges (updates and deletes land on the survivors), then the
// node restarts on the same address and data directory. The restart
// must reload its pre-crash state locally — the recovery log line and
// direct reads prove it — and the catch-up must ride the Merkle digest
// exchange: the anti-entropy pass streams only the divergence window,
// with frame counts pinned far below a full re-stream of the keyspace
// (the pre-WAL behavior, where a restarted node came back empty and
// every key had to travel).
func TestDistnodeRestartRecovery(t *testing.T) {
	dirs := [3]string{t.TempDir(), t.TempDir(), t.TempDir()}
	durable := func(i int, extra ...string) []string {
		return append([]string{"-quiet", "-data-dir", dirs[i], "-fsync", "interval"}, extra...)
	}
	addr0, _, stop0 := startNode(t, durable(0)...)
	defer stop0()
	addr1, _, stop1 := startNode(t, durable(1, "-join", addr0)...)
	addr2, _, stop2 := startNode(t, durable(2, "-join", addr0)...)
	defer stop2()
	addrs := []string{addr0, addr1, addr2}

	// Baseline: every key fully replicated, so each node's WAL holds the
	// whole keyspace.
	const keys = 2000
	ks := make([]string, keys)
	vs := make([][]byte, keys)
	for i := range ks {
		ks[i] = fmt.Sprintf("restart-%04d", i)
		vs[i] = []byte(fmt.Sprintf("baseline-%d", i))
	}
	full, err := dist.NewCluster(dist.ClusterConfig{Addrs: addrs, Replication: 3, WriteQuorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := full.MSet(ks, vs); err != nil {
		full.Close()
		t.Fatal(err)
	}
	full.Close()

	// Kill node 1, then write the divergence window through a
	// coordinator that only knows the survivors: 40 overwrites and 10
	// deletes node 1 will not see until anti-entropy repairs it.
	stop1()
	const updates, deletes = 40, 10
	part, err := dist.NewCluster(dist.ClusterConfig{Addrs: []string{addr0, addr2}, Replication: 2, WriteQuorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < updates; i++ {
		if err := part.Set(ks[i], []byte(fmt.Sprintf("updated-%d", i))); err != nil {
			t.Fatalf("divergence set %d: %v", i, err)
		}
	}
	for i := 0; i < deletes; i++ {
		if ok, err := part.Del(ks[1000+i]); err != nil || !ok {
			t.Fatalf("divergence del %d = %v %v", i, ok, err)
		}
	}
	part.Close()

	// Restart node 1 on its old address and data directory. The reload
	// happens before the node serves, so the ready signal means the
	// recovered state is already queryable.
	raddr, rlogs, rstop := startNode(t, durable(1, "-join", addr0, "-addr", addr1)...)
	defer rstop()
	if raddr != addr1 {
		t.Fatalf("restarted node bound %s, want its old identity %s", raddr, addr1)
	}
	recRE := regexp.MustCompile(`recovered (\d+) snapshot entries \+ (\d+) WAL records`)
	m := recRE.FindStringSubmatch(rlogs.String())
	if m == nil {
		t.Fatalf("no recovery line in restart logs:\n%s", rlogs.String())
	}
	snapN, _ := strconv.Atoi(m[1])
	walN, _ := strconv.Atoi(m[2])
	if snapN+walN < keys {
		t.Fatalf("restart recovered %d snapshot entries + %d WAL records, want >= %d", snapN, walN, keys)
	}
	// Local reload, not a re-stream: a key nobody touched during the
	// outage is served from the recovered WAL before any rebalance runs.
	cl, err := csnet.Dial(addr1, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if e, ok, err := cl.GetV(ks[500]); err != nil || !ok || string(e.Value) != "baseline-500" {
		t.Fatalf("untouched key after reload = %+v %v %v, want baseline-500", e, ok, err)
	}
	// The stale copy is still stale — catch-up has not run yet.
	if e, ok, _ := cl.GetV(ks[0]); !ok || string(e.Value) != "baseline-0" {
		t.Fatalf("pre-repair read = %+v %v, want the stale baseline copy", e, ok)
	}

	// Catch-up: one digest-driven anti-entropy pass must repair exactly
	// the divergence window. The frame pins are the point — with 1024
	// buckets the descent costs at most 3 backends x 11 levels of
	// OpTreeV, listings are one pipelined OpRangeV per backend, and the
	// keys listed track the ~50 divergent buckets (about 2 keys per
	// bucket per owner), not the 2000-key keyspace.
	c2, err := dist.NewCluster(dist.ClusterConfig{Addrs: addrs, Replication: 3, WriteQuorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	copied, err := c2.Rebalance()
	if err != nil {
		t.Fatalf("catch-up pass: %v", err)
	}
	if copied < updates+deletes || copied > updates+deletes+10 {
		t.Fatalf("catch-up streamed %d entries, want ~%d (the divergence window, not the keyspace)",
			copied, updates+deletes)
	}
	st := c2.AntiEntropyStats()
	if st.FellBack {
		t.Fatalf("catch-up fell back to full listings: %+v", st)
	}
	if st.DigestFrames < 3 || st.DigestFrames > 33 {
		t.Errorf("catch-up used %d digest frames, want 3..33 (3 backends x <= 11 tree levels)", st.DigestFrames)
	}
	if st.ListingFrames > 3 {
		t.Errorf("catch-up used %d listing frames, want <= 3 (one pipelined OpRangeV per backend)", st.ListingFrames)
	}
	if st.BucketsDiffed == 0 || st.BucketsDiffed > updates+deletes {
		t.Errorf("catch-up diffed %d buckets, want 1..%d", st.BucketsDiffed, updates+deletes)
	}
	if st.KeysListed == 0 || st.KeysListed > 900 {
		t.Errorf("catch-up listed %d keys, want a divergence-sized listing (< 900), not the %d-key keyspace",
			st.KeysListed, keys)
	}

	// The restarted node now serves the post-outage truth directly.
	if e, ok, err := cl.GetV(ks[0]); err != nil || !ok || string(e.Value) != "updated-0" {
		t.Fatalf("repaired key = %+v %v %v, want updated-0", e, ok, err)
	}
	for i := 0; i < deletes; i++ {
		if _, ok, err := cl.GetV(ks[1000+i]); err != nil || ok {
			t.Fatalf("deleted key %d resurrected on the restarted node (ok=%v err=%v)", i, ok, err)
		}
	}
	// A second pass finds a converged cluster: pure root exchange, no
	// listings, nothing streamed — and the tombstones stay tombstones.
	copied, err = c2.Rebalance()
	if err != nil || copied != 0 {
		t.Fatalf("steady-state pass = %d %v, want 0 nil", copied, err)
	}
	st = c2.AntiEntropyStats()
	if st.ListingFrames != 0 || st.KeysListed != 0 {
		t.Errorf("steady-state pass listed keys: %+v", st)
	}
	if _, ok, _ := cl.GetV(ks[1000]); ok {
		t.Fatal("steady-state pass resurrected a deleted key")
	}
}

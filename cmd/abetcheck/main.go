// Command abetcheck audits one or more program definitions (JSON files)
// against the ABET CAC Computer Science Program Criteria curriculum
// requirements, including the PDC exposure requirement in force since
// 2018.
//
// Usage:
//
//	abetcheck program.json [more.json ...]
//	abetcheck -sample > program.json   # emit a template to edit
//
// Exit status is non-zero when any audited program fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdcedu/internal/curriculum"
)

func main() {
	sample := flag.Bool("sample", false, "print a sample program definition and exit")
	flag.Parse()

	if *sample {
		p := curriculum.BuildSurvey().Programs[6] // the dedicated-course program
		if err := curriculum.EncodeProgram(os.Stdout, p); err != nil {
			fmt.Fprintln(os.Stderr, "abetcheck:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: abetcheck [-sample] program.json [more.json ...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		p, err := curriculum.LoadProgramFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abetcheck:", err)
			os.Exit(1)
		}
		r, err := curriculum.CheckProgram(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "abetcheck:", err)
			os.Exit(1)
		}
		fmt.Print(curriculum.RenderReport(r))
		if !r.Pass {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

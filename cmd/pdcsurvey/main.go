// Command pdcsurvey regenerates the paper's analysis artifacts: Table I
// (concept-to-course mapping), Fig. 2 (weighted PDC topic sums across
// the 20 surveyed programs), Fig. 3 (PDC course shares by area), Table
// II (CE2016) and Table III (SE2014), plus the full ABET audit of the
// survey corpus.
//
// Usage:
//
//	pdcsurvey [-table1] [-fig2] [-fig3] [-table2] [-table3] [-audit]
//
// With no flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"pdcedu/internal/curriculum"
)

func main() {
	table1 := flag.Bool("table1", false, "print Table I (PDC concepts x courses)")
	fig2 := flag.Bool("fig2", false, "print Fig. 2 (topic weighted sums)")
	fig3 := flag.Bool("fig3", false, "print Fig. 3 (course shares)")
	table2 := flag.Bool("table2", false, "print Table II (CE2016)")
	table3 := flag.Bool("table3", false, "print Table III (SE2014)")
	audit := flag.Bool("audit", false, "audit all 20 surveyed programs")
	flag.Parse()

	all := !*table1 && !*fig2 && !*fig3 && !*table2 && !*table3 && !*audit
	sv := curriculum.BuildSurvey()

	if all || *table1 {
		fmt.Println(curriculum.RenderTableI())
	}
	if all || *fig2 {
		fmt.Println(curriculum.RenderFig2(sv))
	}
	if all || *fig3 {
		fmt.Println(curriculum.RenderFig3(sv))
		fmt.Printf("surveyed programs: %d; PDC-bearing required courses: %d; programs with a dedicated PDC course: %d\n\n",
			len(sv.Programs), sv.TotalPDCCourses(), sv.DedicatedCount())
	}
	if all || *table2 {
		fmt.Println(curriculum.RenderTableII())
	}
	if all || *table3 {
		fmt.Println(curriculum.RenderTableIII())
	}
	if all || *audit {
		reports, err := sv.CheckAll()
		if err != nil {
			fmt.Fprintln(os.Stderr, "pdcsurvey:", err)
			os.Exit(1)
		}
		pass := 0
		for _, r := range reports {
			if r.Pass {
				pass++
			} else {
				fmt.Print(curriculum.RenderReport(r))
			}
		}
		fmt.Printf("ABET CAC PDC audit: %d/%d surveyed programs meet the criteria\n", pass, len(reports))
	}
}

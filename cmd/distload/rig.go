package main

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/dist"
	"pdcedu/internal/obs"
)

// runner abstracts the two load targets: a dist.Cluster coordinator
// (quorum reads/writes, optional hot-key cache) and raw csnet clients
// speaking the pipelined mux straight at one or more backends.
type runner interface {
	read(w *worker, key string) error
	write(w *worker, key string, val []byte) error
	close()
}

// errNotFound classifies a clean miss: it is not a failure, but the
// report counts it separately so a suite can prove reads actually hit
// populated keys.
var errNotFound = errors.New("distload: key not found")

type clusterRunner struct{ gw *dist.Cluster }

func (r *clusterRunner) read(_ *worker, key string) error {
	_, ok, err := r.gw.Get(key)
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound
	}
	return nil
}

func (r *clusterRunner) write(_ *worker, key string, val []byte) error {
	return r.gw.Set(key, val)
}

func (r *clusterRunner) close() { _ = r.gw.Close() }

// rawRunner drives csnet clients directly. Each worker is pinned to
// one client (worker index mod conns), so -conns controls how many
// muxed TCP connections carry the pipelined traffic.
type rawRunner struct {
	clients []*csnet.Client
	addrs   []string
}

func newRawRunner(addrs []string, conns int, timeout time.Duration) (*rawRunner, error) {
	if conns < 1 {
		conns = 1
	}
	r := &rawRunner{addrs: addrs}
	for i := 0; i < conns; i++ {
		cl, err := csnet.Dial(addrs[i%len(addrs)], timeout)
		if err != nil {
			r.close()
			return nil, err
		}
		r.clients = append(r.clients, cl)
	}
	return r, nil
}

func (r *rawRunner) client(w *worker) *csnet.Client {
	return r.clients[w.id%len(r.clients)]
}

func (r *rawRunner) read(w *worker, key string) error {
	_, ok, err := r.client(w).Get(key)
	if err != nil {
		return err
	}
	if !ok {
		return errNotFound
	}
	return nil
}

func (r *rawRunner) write(w *worker, key string, val []byte) error {
	return r.client(w).Set(key, val)
}

func (r *rawRunner) close() {
	for _, cl := range r.clients {
		if cl != nil {
			_ = cl.Close()
		}
	}
}

// keyPicker yields key indices for one worker. Zipfian pickers are
// per-worker (rand.Zipf is not concurrency-safe) but share the same
// skew, so the hot set is the same across workers — that is what makes
// a key "hot" cluster-wide.
type keyPicker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	n    uint64
}

func newKeyPicker(distName string, n int, s, v float64, seed int64) (*keyPicker, error) {
	rng := rand.New(rand.NewSource(seed))
	p := &keyPicker{rng: rng, n: uint64(n)}
	switch distName {
	case "uniform":
	case "zipfian":
		// rand.NewZipf requires s > 1, v >= 1.
		p.zipf = rand.NewZipf(rng, s, v, uint64(n-1))
		if p.zipf == nil {
			return nil, fmt.Errorf("invalid zipf parameters s=%v v=%v", s, v)
		}
	default:
		return nil, fmt.Errorf("unknown key distribution %q (want uniform or zipfian)", distName)
	}
	return p, nil
}

func (p *keyPicker) next() uint64 {
	if p.zipf != nil {
		return p.zipf.Uint64()
	}
	return p.rng.Uint64() % p.n
}

// loadConfig is one measured run.
type loadConfig struct {
	workers  int
	rate     float64 // target ops/sec across all workers; 0 = closed loop
	duration time.Duration
	readPct  int
	dist     string
	zipfS    float64
	zipfV    float64
	keys     int
	valSize  int
	retries  int // extra attempts after a BUSY shed reply
	base     time.Duration
	seed     int64
}

// report is the outcome of one run. All latencies are nanoseconds; in
// open-loop mode they are coordinated-omission corrected (measured
// from the request's intended send time on the fixed arrival
// schedule, not from when a delayed worker finally issued it).
type report struct {
	Name       string  `json:"name,omitempty"`
	Mode       string  `json:"mode"`
	OpenLoop   bool    `json:"open_loop"`
	RateTarget float64 `json:"rate_target_ops_s,omitempty"`
	Seconds    float64 `json:"seconds"`

	Ops        uint64  `json:"ops"`
	Reads      uint64  `json:"reads"`
	Writes     uint64  `json:"writes"`
	NotFound   uint64  `json:"not_found"`
	Shed       uint64  `json:"shed"`
	Retries    uint64  `json:"busy_retries"`
	Timeouts   uint64  `json:"timeouts"`
	Partials   uint64  `json:"partial_writes"`
	Unexpected uint64  `json:"unexpected_errors"`
	Throughput float64 `json:"throughput_ops_s"`

	ReadP50   uint64 `json:"read_p50_ns"`
	ReadP99   uint64 `json:"read_p99_ns"`
	ReadP999  uint64 `json:"read_p999_ns"`
	ReadMax   uint64 `json:"read_max_ns"`
	ReadMean  uint64 `json:"read_mean_ns"`
	WriteP50  uint64 `json:"write_p50_ns"`
	WriteP99  uint64 `json:"write_p99_ns"`
	WriteP999 uint64 `json:"write_p999_ns"`
	WriteMax  uint64 `json:"write_max_ns"`

	// Service-time percentiles, measured from the moment the request
	// actually hit the wire rather than from its intended slot time.
	// Populated by the pipelined open-loop path; the gap between these
	// and the CO-corrected numbers above is exactly the queueing delay
	// coordinated omission would have hidden.
	SvcReadP50 uint64 `json:"svc_read_p50_ns,omitempty"`
	SvcReadP99 uint64 `json:"svc_read_p99_ns,omitempty"`
	SvcReadMax uint64 `json:"svc_read_max_ns,omitempty"`

	CacheHits   uint64 `json:"cache_hits,omitempty"`
	CacheMisses uint64 `json:"cache_misses,omitempty"`
	CacheInvals uint64 `json:"cache_invalidations,omitempty"`
	ServerShed  uint64 `json:"server_shed,omitempty"`
}

// p99 of all successful ops combined, for quick comparisons.
func (r report) p99() uint64 {
	if r.ReadP99 > r.WriteP99 {
		return r.ReadP99
	}
	return r.WriteP99
}

type worker struct {
	id   int
	pick *keyPicker
	val  []byte
}

// runLoad drives cfg against r and reports CO-safe latencies.
//
// Open loop (rate > 0): the arrival schedule is fixed up front — slot
// i's intended send time is start + i/rate, handed out by a global
// atomic counter. A worker that falls behind does NOT skip slots or
// reset the clock; it issues the overdue request immediately and the
// recorded latency includes the time the request spent waiting for a
// free worker. That is the coordinated-omission correction: a server
// that stalls for a second shows a second of tail latency instead of
// quietly receiving one fewer request.
//
// Closed loop (rate == 0): each worker issues its next request the
// moment the previous one completes; latency is pure service time and
// throughput measures capacity.
func runLoad(r runner, keys []string, cfg loadConfig) (report, error) {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.base <= 0 {
		cfg.base = time.Millisecond
	}
	readHist, writeHist := obs.NewHistogram(), obs.NewHistogram()
	var reads, writes, notFound, shed, retries, timeouts, partials, unexpected atomic.Uint64

	classify := func(err error, isRead bool) {
		switch {
		case err == nil:
			if isRead {
				reads.Add(1)
			} else {
				writes.Add(1)
			}
		case errors.Is(err, errNotFound):
			reads.Add(1)
			notFound.Add(1)
		case csnet.IsBusy(err):
			shed.Add(1)
		case isTimeout(err):
			timeouts.Add(1)
		case isPartial(err):
			partials.Add(1)
		default:
			unexpected.Add(1)
		}
	}

	var slot atomic.Int64
	openLoop := cfg.rate > 0
	var interval time.Duration
	var slots int64
	if openLoop {
		interval = time.Duration(float64(time.Second) / cfg.rate)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		slots = int64(cfg.duration / interval)
		if slots < 1 {
			slots = 1
		}
	}

	start := time.Now()
	deadline := start.Add(cfg.duration)
	var wg sync.WaitGroup
	for i := 0; i < cfg.workers; i++ {
		pick, err := newKeyPicker(cfg.dist, cfg.keys, cfg.zipfS, cfg.zipfV, cfg.seed+int64(i))
		if err != nil {
			return report{}, err
		}
		w := &worker{id: i, pick: pick, val: make([]byte, cfg.valSize)}
		opRng := rand.New(rand.NewSource(cfg.seed ^ int64(i)<<17))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var intended time.Time
				if openLoop {
					s := slot.Add(1) - 1
					if s >= slots {
						return
					}
					intended = start.Add(time.Duration(s) * interval)
					if d := time.Until(intended); d > 0 {
						time.Sleep(d)
					}
				} else {
					intended = time.Now()
					if !intended.Before(deadline) {
						return
					}
				}
				key := keys[w.pick.next()%uint64(len(keys))]
				isRead := opRng.Intn(100) < cfg.readPct
				var err error
				for try := 0; ; try++ {
					if isRead {
						err = r.read(w, key)
					} else {
						err = r.write(w, key, w.val)
					}
					if err == nil || !csnet.IsBusy(err) || try >= cfg.retries {
						break
					}
					retries.Add(1)
					// Full-jitter exponential backoff, mirroring
					// csnet.(*Client).DoRetry: uniform in [0, base<<try).
					time.Sleep(time.Duration(opRng.Int63n(int64(cfg.base << uint(try)))))
				}
				lat := time.Since(intended)
				classify(err, isRead)
				if err == nil || errors.Is(err, errNotFound) {
					if isRead {
						readHist.Observe(lat.Nanoseconds())
					} else {
						writeHist.Observe(lat.Nanoseconds())
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rs, ws := readHist.Snapshot(), writeHist.Snapshot()
	rep := report{
		Mode:       "raw",
		OpenLoop:   openLoop,
		RateTarget: cfg.rate,
		Seconds:    elapsed.Seconds(),
		Reads:      reads.Load(),
		Writes:     writes.Load(),
		NotFound:   notFound.Load(),
		Shed:       shed.Load(),
		Retries:    retries.Load(),
		Timeouts:   timeouts.Load(),
		Partials:   partials.Load(),
		Unexpected: unexpected.Load(),
		ReadP50:    rs.Quantile(0.50),
		ReadP99:    rs.Quantile(0.99),
		ReadP999:   rs.Quantile(0.999),
		ReadMax:    rs.Max,
		ReadMean:   rs.Mean(),
		WriteP50:   ws.Quantile(0.50),
		WriteP99:   ws.Quantile(0.99),
		WriteP999:  ws.Quantile(0.999),
		WriteMax:   ws.Max,
	}
	rep.Ops = rep.Reads + rep.Writes + rep.Shed + rep.Timeouts + rep.Partials + rep.Unexpected
	if elapsed > 0 {
		rep.Throughput = float64(rep.Reads+rep.Writes) / elapsed.Seconds()
	}
	return rep, nil
}

func isTimeout(err error) bool {
	if errors.Is(err, os.ErrDeadlineExceeded) || errors.Is(err, csnet.ErrWaitTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func isPartial(err error) bool {
	var pe *dist.PartialWriteError
	return errors.As(err, &pe)
}

// counterDelta subtracts the named counter across two registry
// snapshots, clamping at zero (the counter may not exist in before).
func counterDelta(before, after obs.Snapshot, name string) uint64 {
	b, _ := before.Get(name)
	a, ok := after.Get(name)
	if !ok || a.Value < b.Value {
		return 0
	}
	return uint64(a.Value - b.Value)
}

// attachCacheStats folds the coordinator cache and server shed
// counter deltas for the run into the report. The obs registry is
// process-global, so deltas are only meaningful when the run owns the
// process (which distload always does).
func attachCacheStats(rep *report, before, after obs.Snapshot) {
	rep.CacheHits = counterDelta(before, after, "dist.cache.hits")
	rep.CacheMisses = counterDelta(before, after, "dist.cache.misses")
	rep.CacheInvals = counterDelta(before, after, "dist.cache.invalidations")
	rep.ServerShed = counterDelta(before, after, "csnet.server.shed")
}

// flight is one pipelined request awaiting its response.
type flight struct {
	call     *csnet.Call
	intended time.Time
	sent     time.Time
	isRead   bool
}

// runLoadAsync is the pipelined open-loop raw driver. Synchronous
// workers cannot offer more load than (workers / service time), so a
// saturated server quietly throttles them — the rig would be
// coordinating with the very omission it is supposed to expose.
// Here each connection has a sender that issues requests on the global
// slot schedule without waiting for responses (csnet's mux pipelines
// them) and a collector that resolves the responses in send order.
// Two latencies are recorded per op: CO-corrected (from the slot's
// intended time — what an arriving user would experience) and service
// time (from the actual send — what the server delivered for the
// requests it accepted).
//
// maxInflight bounds outstanding requests across all connections;
// when an overloaded no-shed server stops answering, the sender
// blocks on that budget and the lag is charged to every subsequent
// slot, which is the honest CO accounting of a system that has
// stopped absorbing its arrival rate.
func runLoadAsync(r *rawRunner, keys []string, cfg loadConfig, maxInflight int) (report, error) {
	if cfg.rate <= 0 {
		return report{}, errors.New("runLoadAsync needs an open-loop rate")
	}
	if maxInflight < 1 {
		maxInflight = 65536
	}
	readCO, readSvc, writeCO := obs.NewHistogram(), obs.NewHistogram(), obs.NewHistogram()
	var reads, writes, notFound, shed, timeouts, unexpected atomic.Uint64

	interval := time.Duration(float64(time.Second) / cfg.rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	slots := int64(cfg.duration / interval)
	if slots < 1 {
		slots = 1
	}
	var slot atomic.Int64
	sem := make(chan struct{}, maxInflight)
	start := time.Now()

	var wg sync.WaitGroup
	for i, cl := range r.clients {
		q := make(chan flight, maxInflight)
		pick, err := newKeyPicker(cfg.dist, cfg.keys, cfg.zipfS, cfg.zipfV, cfg.seed+int64(i))
		if err != nil {
			return report{}, err
		}
		opRng := rand.New(rand.NewSource(cfg.seed ^ int64(i)<<17))
		val := make([]byte, cfg.valSize)
		cl := cl
		wg.Add(1)
		go func() { // sender
			defer wg.Done()
			defer close(q)
			for {
				s := slot.Add(1) - 1
				if s >= slots {
					return
				}
				intended := start.Add(time.Duration(s) * interval)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				sem <- struct{}{}
				key := keys[pick.next()%uint64(len(keys))]
				isRead := opRng.Intn(100) < cfg.readPct
				req := csnet.Request{Op: csnet.OpGet, Key: key}
				if !isRead {
					req = csnet.Request{Op: csnet.OpSet, Key: key, Value: val}
				}
				sent := time.Now()
				q <- flight{call: cl.Send(req), intended: intended, sent: sent, isRead: isRead}
			}
		}()
		wg.Add(1)
		go func() { // collector
			defer wg.Done()
			for f := range q {
				resp, err := f.call.Response()
				<-sem
				co := time.Since(f.intended).Nanoseconds()
				svc := time.Since(f.sent).Nanoseconds()
				switch {
				case err != nil:
					if isTimeout(err) {
						timeouts.Add(1)
					} else {
						unexpected.Add(1)
					}
					continue
				case resp.Status == csnet.StatusBusy:
					shed.Add(1)
					continue
				case resp.Status == csnet.StatusNotFound:
					notFound.Add(1)
				case resp.Status != csnet.StatusOK:
					unexpected.Add(1)
					continue
				}
				if f.isRead {
					reads.Add(1)
					readCO.Observe(co)
					readSvc.Observe(svc)
				} else {
					writes.Add(1)
					writeCO.Observe(co)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rs, ss, ws := readCO.Snapshot(), readSvc.Snapshot(), writeCO.Snapshot()
	rep := report{
		Mode:       "raw",
		OpenLoop:   true,
		RateTarget: cfg.rate,
		Seconds:    elapsed.Seconds(),
		Reads:      reads.Load(),
		Writes:     writes.Load(),
		NotFound:   notFound.Load(),
		Shed:       shed.Load(),
		Timeouts:   timeouts.Load(),
		Unexpected: unexpected.Load(),
		ReadP50:    rs.Quantile(0.50),
		ReadP99:    rs.Quantile(0.99),
		ReadP999:   rs.Quantile(0.999),
		ReadMax:    rs.Max,
		ReadMean:   rs.Mean(),
		WriteP50:   ws.Quantile(0.50),
		WriteP99:   ws.Quantile(0.99),
		WriteP999:  ws.Quantile(0.999),
		WriteMax:   ws.Max,
		SvcReadP50: ss.Quantile(0.50),
		SvcReadP99: ss.Quantile(0.99),
		SvcReadMax: ss.Max,
	}
	rep.Ops = rep.Reads + rep.Writes + rep.NotFound + rep.Shed + rep.Timeouts + rep.Unexpected
	if elapsed > 0 {
		rep.Throughput = float64(rep.Reads+rep.Writes) / elapsed.Seconds()
	}
	return rep, nil
}

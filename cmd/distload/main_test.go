package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMergeJSON checks that distload's report merge preserves keys an
// earlier writer (scripts/bench.sh) put in the artifact and overwrites
// only its own.
func TestMergeJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"BenchmarkOld": {"ns_per_op": 42}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeJSON(path, map[string]any{"DistloadRun": report{Name: "a", Ops: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := mergeJSON(path, map[string]any{"DistloadRun": report{Name: "b", Ops: 2}}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatalf("merged file is not valid JSON: %v\n%s", err, b)
	}
	if _, ok := m["BenchmarkOld"]; !ok {
		t.Fatalf("merge dropped pre-existing key:\n%s", b)
	}
	var rep report
	if err := json.Unmarshal(m["DistloadRun"], &rep); err != nil || rep.Name != "b" || rep.Ops != 2 {
		t.Fatalf("merge did not overwrite its own key: %+v %v", rep, err)
	}
}

// TestDistloadClusterSmoke runs the full CLI path against a spawned
// 3-node cluster with the read cache on, in CI mode: the run must
// complete with zero unexpected errors and nonzero cache hits.
func TestDistloadClusterSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-spawn", "3", "-rf", "3", "-read-cache", "512",
		"-duration", "500ms", "-keys", "200", "-workers", "8",
		"-dist", "zipfian", "-read-pct", "90", "-ci",
	}, &out)
	if err != nil {
		t.Fatalf("distload -ci failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cache hits=") {
		t.Fatalf("report missing cache stats:\n%s", out.String())
	}
}

// TestDistloadRawOverloadSheds drives the pipelined open-loop driver
// at a rate far above a slow admission-controlled backend's capacity
// and checks the overload surfaces as BUSY sheds, not errors, while
// served reads still complete.
func TestDistloadRawOverloadSheds(t *testing.T) {
	opt := options{
		spawn: 1, mode: "raw", conns: 2, timeout: 2 * time.Second,
		shedQueue: 4, shedInflight: 16, work: 5 * time.Millisecond,
		preload: true, name: "overload",
		load: loadConfig{
			rate: 4000, duration: 500 * time.Millisecond, readPct: 100,
			dist: "uniform", keys: 64, valSize: 32, seed: 1,
		},
	}
	rep, err := runOnce(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Capacity is 2 conns x 32 mux workers / 5ms = ~12.8k... with a
	// 16-deep in-flight budget it is 16/5ms = 3.2k, so a 4k rate must
	// shed. Shed replies are typed, never unexpected errors.
	if rep.Shed == 0 {
		t.Fatalf("no sheds under 4k ops/s against a 3.2k capacity server: %+v", rep)
	}
	if rep.Unexpected != 0 || rep.Timeouts != 0 {
		t.Fatalf("overload produced hard errors: %+v", rep)
	}
	if rep.Reads == 0 || rep.SvcReadP99 == 0 {
		t.Fatalf("no served reads recorded: %+v", rep)
	}
	if rep.ServerShed != rep.Shed {
		t.Fatalf("client-observed sheds %d != server shed counter %d", rep.Shed, rep.ServerShed)
	}
}

// TestDistloadOpenLoopCO checks the coordinated-omission correction:
// against a backend whose every op takes ~20ms, an open-loop schedule
// at 4x the single-connection service rate must report p99 latencies
// well above the raw service time, because late slots are charged
// their queueing delay.
func TestDistloadOpenLoopCO(t *testing.T) {
	opt := options{
		spawn: 1, mode: "raw", conns: 1, timeout: 5 * time.Second,
		work: 20 * time.Millisecond, preload: true, name: "co",
		load: loadConfig{
			// One conn = 32 mux workers; capacity 32/20ms = 1.6k ops/s.
			// 6.4k offered with no shedding: the backlog grows all run.
			rate: 6400, duration: 500 * time.Millisecond, readPct: 100,
			dist: "uniform", keys: 64, valSize: 32, seed: 1,
		},
	}
	rep, err := runOnce(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reads == 0 {
		t.Fatalf("no reads served: %+v", rep)
	}
	// CO-corrected p99 must reflect the backlog (>= several service
	// times), and must dominate the p50: the tail IS the queue.
	if rep.ReadP99 < uint64(100*time.Millisecond) {
		t.Fatalf("CO p99 %s too small for a 4x-overloaded server", ns(rep.ReadP99))
	}
	if rep.ReadP99 <= rep.SvcReadP50 {
		t.Fatalf("CO p99 %s not above service p50 %s", ns(rep.ReadP99), ns(rep.SvcReadP50))
	}
}

// TestKeyPicker checks both distributions produce in-range keys and
// zipfian actually skews toward the low indices.
func TestKeyPicker(t *testing.T) {
	if _, err := newKeyPicker("bogus", 10, 1.2, 1, 1); err == nil {
		t.Fatal("bogus distribution accepted")
	}
	uni, err := newKeyPicker("uniform", 100, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	zip, err := newKeyPicker("zipfian", 100, 1.2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	var zipLow int
	for i := 0; i < 10000; i++ {
		if u := uni.next(); u >= 100 {
			t.Fatalf("uniform key %d out of range", u)
		}
		z := zip.next()
		if z >= 100 {
			t.Fatalf("zipf key %d out of range", z)
		}
		if z < 10 {
			zipLow++
		}
	}
	if zipLow < 6000 {
		t.Fatalf("zipf(1.2) put only %d/10000 picks in the hot decile; not skewed", zipLow)
	}
}

package main

import (
	"fmt"
	"io"
	"time"

	"pdcedu/internal/dist"
	"pdcedu/internal/obs"
)

// suiteResult is the roll-up the bench suite merges into the JSON
// artifact next to the individual run reports.
type suiteResult struct {
	CacheSpeedup  float64 `json:"cache_read_speedup_x"`
	ShedP99Ratio  float64 `json:"shed_p99_over_capacity_p99"`
	NoShedP99Over float64 `json:"noshed_p99_over_capacity_p99"`
	CapacityOpsS  float64 `json:"capacity_ops_s"`
	OverloadOpsS  float64 `json:"overload_rate_ops_s"`
}

// runSuite executes the two acceptance phases.
//
// Phase A — hot-key cache speedup. Three replicated backends, a
// coordinator at rf=3, a zipfian read-heavy workload over a preloaded
// keyspace. The same closed-loop run is measured twice: once with the
// read cache off (every read is a quorum round-trip) and once with it
// sized to the keyspace (the hot set is served from coordinator
// memory). The headline number is the ratio of mean read latencies.
//
// Phase B — overload shedding. One backend, raw muxed clients,
// uniform reads. First a closed-loop run measures the server's
// capacity C; then two open-loop runs at 2C: against a server with
// admission control (queue-depth shedding + in-flight budget) and
// against a default server that accepts everything. The shed server's
// p99 over its *served* requests must stay within a small factor of
// the at-capacity p99 because excess arrivals are turned away in
// microseconds; the no-shed server's coordinated-omission-corrected
// p99 grows with the backlog (or its clients time out), which is the
// whole argument for admission control.
func runSuite(opt options, out io.Writer) error {
	short := opt.load.duration
	if short > 5*time.Second {
		short = 5 * time.Second
	}

	fmt.Fprintln(out, "== phase A: zipfian hot-key reads, rf=3, cached vs uncached ==")
	sp, err := spawnBackends(3, 0, 0, 0)
	if err != nil {
		return err
	}
	defer sp.stop()
	keys := makeKeys(opt.load.keys)

	phaseACfg := opt.load
	phaseACfg.rate = 0 // closed loop: pure service time
	phaseACfg.duration = short
	phaseACfg.readPct = 100
	phaseACfg.dist = "zipfian"

	measure := func(name string, cacheSize int) (report, error) {
		gw, err := dist.NewCluster(dist.ClusterConfig{
			Addrs:       sp.addrs,
			Replication: 3,
			Timeout:     opt.timeout,
			ReadCache:   cacheSize,
		})
		if err != nil {
			return report{}, err
		}
		r := &clusterRunner{gw: gw}
		defer r.close()
		if err := preloadKeys(r, keys, phaseACfg.valSize); err != nil {
			return report{}, err
		}
		before := obs.Default().Snapshot()
		rep, err := runLoad(r, keys, phaseACfg)
		if err != nil {
			return report{}, err
		}
		attachCacheStats(&rep, before, obs.Default().Snapshot())
		rep.Name, rep.Mode = name, "cluster"
		printReport(out, rep)
		return rep, nil
	}

	uncached, err := measure("DistloadZipfReadUncached", 0)
	if err != nil {
		return err
	}
	cached, err := measure("DistloadZipfReadCached", opt.load.keys)
	if err != nil {
		return err
	}
	var speedup float64
	if cached.ReadMean > 0 {
		speedup = float64(uncached.ReadMean) / float64(cached.ReadMean)
	}
	fmt.Fprintf(out, "cache speedup: %.2fx (uncached mean %s -> cached mean %s, %d hits / %d misses)\n\n",
		speedup, ns(uncached.ReadMean), ns(cached.ReadMean),
		cached.CacheHits, cached.CacheMisses)

	fmt.Fprintln(out, "== phase B: single backend at 2x capacity, shed vs no-shed ==")
	phaseBCfg := opt.load
	phaseBCfg.duration = short
	phaseBCfg.readPct = 100
	phaseBCfg.dist = "uniform"
	phaseBCfg.retries = 0

	// The phase-B backend simulates real per-op service time (-work, a
	// sleep standing in for disk or downstream RPC latency): capacity
	// becomes concurrency-bound at (mux workers / work) instead of
	// CPU-bound, so the load generator sharing this machine can offer a
	// genuine 2x-capacity arrival schedule in real time, and a BUSY
	// rejection is visibly cheaper than service.
	work := opt.work
	if work <= 0 {
		work = 2 * time.Millisecond
	}

	// Capacity is calibrated closed-loop with a worker pool large
	// enough to saturate the server's mux concurrency but inside the
	// admission budget, so the measurement is shed-free. The open-loop
	// runs use the pipelined async driver instead — senders issue on
	// the arrival schedule without waiting for responses — because a
	// fixed worker pool could never offer more than
	// (workers / service time) and would silently coordinate with the
	// very overload the experiment is about.
	calibWorkers := opt.load.workers
	if calibWorkers < 256 {
		calibWorkers = 256
	}

	measureRaw := func(name string, queue, inflight, workers int, rate float64) (report, error) {
		srv, err := spawnBackends(1, queue, inflight, work)
		if err != nil {
			return report{}, err
		}
		defer srv.stop()
		r, err := newRawRunner(srv.addrs, opt.conns, opt.timeout)
		if err != nil {
			return report{}, err
		}
		defer r.close()
		if err := preloadKeys(r, keys, phaseBCfg.valSize); err != nil {
			return report{}, err
		}
		cfg := phaseBCfg
		cfg.workers = workers
		cfg.rate = rate
		before := obs.Default().Snapshot()
		var rep report
		if rate > 0 {
			rep, err = runLoadAsync(r, keys, cfg, 0)
		} else {
			rep, err = runLoad(r, keys, cfg)
		}
		if err != nil {
			return report{}, err
		}
		attachCacheStats(&rep, before, obs.Default().Snapshot())
		rep.Name, rep.Mode = name, "raw"
		printReport(out, rep)
		return rep, nil
	}

	// Admission limits for the shed server: a shallow per-connection
	// queue and an in-flight budget comfortably above the calibration
	// concurrency (shed-free capacity measurement) but far below the
	// overload pool, so 2C arrivals genuinely trip the shedder.
	queue, inflight := opt.shedQueue, opt.shedInflight
	if queue <= 0 {
		queue = 64
	}
	if inflight <= 0 {
		inflight = 2 * calibWorkers
	}

	calib, err := measureRaw("DistloadCapacityClosedLoop", queue, inflight, calibWorkers, 0)
	if err != nil {
		return err
	}
	capacity := calib.Throughput
	if capacity <= 0 {
		return fmt.Errorf("suite: capacity calibration served no requests")
	}
	atCap, err := measureRaw("DistloadAtCapacityShed", queue, inflight, calibWorkers, 0.9*capacity)
	if err != nil {
		return err
	}
	overload := 2 * capacity
	shed, err := measureRaw("DistloadOverloadShed", queue, inflight, calibWorkers, overload)
	if err != nil {
		return err
	}
	noshed, err := measureRaw("DistloadOverloadNoShed", 0, 0, calibWorkers, overload)
	if err != nil {
		return err
	}

	res := suiteResult{
		CapacityOpsS: capacity,
		OverloadOpsS: overload,
	}
	if cached.ReadMean > 0 {
		res.CacheSpeedup = speedup
	}
	if atCap.ReadP99 > 0 {
		res.ShedP99Ratio = float64(shed.ReadP99) / float64(atCap.ReadP99)
		res.NoShedP99Over = float64(noshed.p99()) / float64(atCap.ReadP99)
	}
	fmt.Fprintf(out, "capacity %.0f ops/s; overload %.0f ops/s\n", capacity, overload)
	fmt.Fprintf(out, "shed p99 %s vs at-capacity p99 %s (%.2fx); no-shed p99 %s (%.2fx), timeouts=%d\n",
		ns(shed.ReadP99), ns(atCap.ReadP99), res.ShedP99Ratio,
		ns(noshed.p99()), res.NoShedP99Over, noshed.Timeouts)

	if opt.jsonPath != "" {
		entries := map[string]any{
			"DistloadZipfReadUncached":   uncached,
			"DistloadZipfReadCached":     cached,
			"DistloadCapacityClosedLoop": calib,
			"DistloadAtCapacityShed":     atCap,
			"DistloadOverloadShed":       shed,
			"DistloadOverloadNoShed":     noshed,
			"DistloadSuite":              res,
		}
		if err := mergeJSON(opt.jsonPath, entries); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged suite results into %s\n", opt.jsonPath)
	}

	// The suite reports but does not hard-fail on the perf ratios —
	// machines differ. -ci turns the acceptance thresholds into errors.
	if opt.ci {
		if speedup < 3 {
			return fmt.Errorf("suite: cache speedup %.2fx < 3x", speedup)
		}
		if res.ShedP99Ratio > 5 {
			return fmt.Errorf("suite: shed p99 %.2fx of at-capacity p99 (> 5x)", res.ShedP99Ratio)
		}
		if noshed.Timeouts == 0 && res.NoShedP99Over <= res.ShedP99Ratio {
			return fmt.Errorf("suite: no-shed server did not degrade (p99 ratio %.2fx <= shed %.2fx)", res.NoShedP99Over, res.ShedP99Ratio)
		}
	}
	return nil
}

// distload is the cluster load rig: an open- or closed-loop workload
// generator that drives the pipelined csnet mux — either through a
// dist.Cluster coordinator (quorum reads/writes, optional hot-key
// read cache) or raw against backend servers — and reports
// coordinated-omission-safe latency percentiles.
//
// Closed loop (-rate 0) measures service time and capacity: each
// worker fires its next request when the previous one returns. Open
// loop (-rate N) measures what users feel: requests arrive on a fixed
// schedule and a stalled server is charged the queueing delay of every
// request that arrived while it stalled, because latency is taken from
// the slot's intended send time, not from when a worker got around to
// it. Percentiles come from the same log-bucketed internal/obs
// histograms the servers use.
//
// Typical runs:
//
//	distload -spawn 3 -rf 3 -read-cache 4096 -dist zipfian -read-pct 95
//	distload -spawn 1 -mode raw -shed-queue 64 -shed-inflight 256 -rate 200000
//	distload -suite bench -json BENCH_8.json   # acceptance suite
//	distload -spawn 3 -ci -duration 30s        # CI smoke (exit 1 on failure)
//
// -suite bench runs the two acceptance phases end to end: Phase A
// compares zipfian hot-key reads through a coordinator with and
// without the read cache; Phase B calibrates one backend's closed-loop
// capacity, then drives 2x that rate at a shedding server and at a
// no-shed server, proving admission control keeps the p99 of served
// requests bounded while the unprotected server's tail grows without
// bound (or times out outright). Results merge into -json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/dist"
	"pdcedu/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

type options struct {
	addrs        []string
	spawn        int
	mode         string
	rf           int
	readCache    int
	shedQueue    int
	shedInflight int
	work         time.Duration
	conns        int
	timeout      time.Duration
	preload      bool
	name         string
	jsonPath     string
	ci           bool
	suite        string
	quiet        bool
	load         loadConfig
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("distload", flag.ContinueOnError)
	fs.SetOutput(out)
	addrs := fs.String("addrs", "", "comma-separated backend csnet addresses (empty: use -spawn)")
	spawn := fs.Int("spawn", 3, "spawn this many in-process backend servers (ignored when -addrs is set)")
	mode := fs.String("mode", "cluster", "cluster: drive a dist.Cluster coordinator; raw: drive csnet clients directly")
	rf := fs.Int("rf", 3, "coordinator replication factor (cluster mode)")
	readCache := fs.Int("read-cache", 0, "coordinator hot-key read-cache entries, 0 = off (cluster mode)")
	shedQueue := fs.Int("shed-queue", 0, "spawned servers: per-connection queue depth before shedding BUSY (0 = no shedding)")
	shedInflight := fs.Int("shed-inflight", 0, "spawned servers: server-wide in-flight budget (0 = unlimited)")
	work := fs.Duration("work", 0, "spawned servers: simulated per-op backend latency (sleep, not spin); 0 = serve at memory speed")
	conns := fs.Int("conns", 4, "muxed client connections (raw mode)")
	workers := fs.Int("workers", 32, "concurrent load workers")
	rate := fs.Float64("rate", 0, "open-loop arrival rate in ops/sec across all workers (0 = closed loop)")
	duration := fs.Duration("duration", 10*time.Second, "measured run length")
	readPct := fs.Int("read-pct", 90, "percentage of operations that are reads")
	distName := fs.String("dist", "zipfian", "key distribution: zipfian or uniform")
	zipfS := fs.Float64("zipf-s", 1.2, "zipf skew exponent (> 1)")
	zipfV := fs.Float64("zipf-v", 1.0, "zipf value offset (>= 1)")
	keys := fs.Int("keys", 10000, "keyspace size")
	valSize := fs.Int("val", 128, "value size in bytes")
	retries := fs.Int("retries", 0, "extra attempts after a BUSY shed reply")
	retryBase := fs.Duration("retry-base", time.Millisecond, "base of the full-jitter busy backoff")
	timeout := fs.Duration("timeout", 2*time.Second, "per-connection op timeout")
	preload := fs.Bool("preload", true, "write every key once before measuring")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	name := fs.String("name", "distload", "label for the report / JSON keys")
	jsonPath := fs.String("json", "", "merge the report into this JSON file under its name")
	ci := fs.Bool("ci", false, "smoke assertions: exit nonzero unless unexpected errors are 0 and (with -read-cache) cache hits are nonzero")
	suite := fs.String("suite", "", "bench: run the acceptance suite (cache speedup + overload shedding) instead of a single run")
	quiet := fs.Bool("quiet", false, "suppress the human-readable report")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opt := options{
		spawn: *spawn, mode: *mode, rf: *rf, readCache: *readCache,
		shedQueue: *shedQueue, shedInflight: *shedInflight, work: *work, conns: *conns,
		timeout: *timeout, preload: *preload, name: *name, jsonPath: *jsonPath,
		ci: *ci, suite: *suite, quiet: *quiet,
		load: loadConfig{
			workers: *workers, rate: *rate, duration: *duration,
			readPct: *readPct, dist: *distName, zipfS: *zipfS, zipfV: *zipfV,
			keys: *keys, valSize: *valSize, retries: *retries, base: *retryBase,
			seed: *seed,
		},
	}
	for _, a := range strings.Split(*addrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			opt.addrs = append(opt.addrs, a)
		}
	}

	if opt.suite == "bench" {
		return runSuite(opt, out)
	}
	if opt.suite != "" {
		return fmt.Errorf("unknown -suite %q (want bench)", opt.suite)
	}
	rep, err := runOnce(opt)
	if err != nil {
		return err
	}
	if !opt.quiet {
		printReport(out, rep)
	}
	if opt.jsonPath != "" {
		if err := mergeJSON(opt.jsonPath, map[string]any{opt.name: rep}); err != nil {
			return err
		}
		fmt.Fprintf(out, "merged %q into %s\n", opt.name, opt.jsonPath)
	}
	if opt.ci {
		return ciCheck(rep, opt)
	}
	return nil
}

// spawned is a set of in-process backend servers for self-contained runs.
type spawned struct {
	srvs  []*csnet.Server
	addrs []string
}

// slowHandler simulates a backend whose ops block on something real —
// a disk, a downstream RPC — by sleeping before serving. The sleep
// occupies a mux worker slot without burning CPU, which makes server
// capacity concurrency-bound (workers / work) rather than CPU-bound;
// that is what lets a load generator sharing the machine offer a
// genuine 2x-capacity arrival schedule, and what makes an instant
// BUSY rejection meaningfully cheaper than service.
type slowHandler struct {
	h    csnet.Handler
	work time.Duration
}

func (s slowHandler) Serve(req csnet.Request) csnet.Response {
	time.Sleep(s.work)
	return s.h.Serve(req)
}

func spawnBackends(n, shedQueue, shedInflight int, work time.Duration) (*spawned, error) {
	sp := &spawned{}
	for i := 0; i < n; i++ {
		var h csnet.Handler = csnet.NewKVHandler()
		if work > 0 {
			h = slowHandler{h: h, work: work}
		}
		srv := csnet.NewServer(h, 1024)
		srv.SetAdmission(shedQueue, shedInflight)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			sp.stop()
			return nil, err
		}
		sp.srvs = append(sp.srvs, srv)
		sp.addrs = append(sp.addrs, addr)
	}
	return sp, nil
}

func (sp *spawned) stop() {
	for _, s := range sp.srvs {
		if s != nil {
			s.Shutdown()
		}
	}
}

// makeKeys materialises the keyspace once so the hot loop never
// formats strings.
func makeKeys(n int) []string {
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("load-%08d", i)
	}
	return ks
}

// buildRunner resolves addrs (spawning if needed) and constructs the
// requested runner. The caller must invoke cleanup.
func buildRunner(opt options) (runner, []string, func(), error) {
	addrs := opt.addrs
	cleanup := func() {}
	if len(addrs) == 0 {
		if opt.spawn < 1 {
			return nil, nil, nil, fmt.Errorf("need -addrs or -spawn >= 1")
		}
		sp, err := spawnBackends(opt.spawn, opt.shedQueue, opt.shedInflight, opt.work)
		if err != nil {
			return nil, nil, nil, err
		}
		addrs = sp.addrs
		cleanup = sp.stop
	}
	switch opt.mode {
	case "cluster":
		gw, err := dist.NewCluster(dist.ClusterConfig{
			Addrs:       addrs,
			Replication: opt.rf,
			Timeout:     opt.timeout,
			ReadCache:   opt.readCache,
		})
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		stop := cleanup
		return &clusterRunner{gw: gw}, addrs, func() { _ = gw.Close(); stop() }, nil
	case "raw":
		r, err := newRawRunner(addrs, opt.conns, opt.timeout)
		if err != nil {
			cleanup()
			return nil, nil, nil, err
		}
		stop := cleanup
		return r, addrs, func() { r.close(); stop() }, nil
	default:
		cleanup()
		return nil, nil, nil, fmt.Errorf("unknown -mode %q (want cluster or raw)", opt.mode)
	}
}

func preloadKeys(r runner, keys []string, valSize int) error {
	const pool = 64
	var wg sync.WaitGroup
	var next, failed atomic.Int64
	errs := make(chan error, pool)
	for i := 0; i < pool; i++ {
		w := &worker{id: i, val: make([]byte, valSize)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := next.Add(1) - 1
				if n >= int64(len(keys)) || failed.Load() != 0 {
					return
				}
				var err error
				for attempt := 0; attempt < 100; attempt++ {
					// Preload is setup, not measurement: ride out BUSY
					// sheds from an admission-controlled target.
					if err = r.write(w, keys[n], w.val); err == nil || !csnet.IsBusy(err) {
						break
					}
					time.Sleep(time.Duration(attempt+1) * time.Millisecond)
				}
				if err != nil {
					failed.Store(1)
					errs <- fmt.Errorf("preload %s: %w", keys[n], err)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}

func runOnce(opt options) (report, error) {
	r, _, cleanup, err := buildRunner(opt)
	if err != nil {
		return report{}, err
	}
	defer cleanup()
	keys := makeKeys(opt.load.keys)
	if opt.preload {
		if err := preloadKeys(r, keys, opt.load.valSize); err != nil {
			return report{}, err
		}
	}
	before := obs.Default().Snapshot()
	var rep report
	if rr, ok := r.(*rawRunner); ok && opt.load.rate > 0 {
		// Raw open loop gets the pipelined driver: senders hold the
		// arrival schedule without waiting on responses, so the rig can
		// offer more load than the server absorbs — the whole point of
		// an overload experiment.
		rep, err = runLoadAsync(rr, keys, opt.load, 0)
	} else {
		rep, err = runLoad(r, keys, opt.load)
	}
	if err != nil {
		return report{}, err
	}
	attachCacheStats(&rep, before, obs.Default().Snapshot())
	rep.Name = opt.name
	rep.Mode = opt.mode
	return rep, nil
}

func ciCheck(rep report, opt options) error {
	if rep.Unexpected != 0 {
		return fmt.Errorf("ci: %d unexpected errors (want 0)", rep.Unexpected)
	}
	if rep.Reads+rep.Writes == 0 {
		return fmt.Errorf("ci: no successful operations completed")
	}
	if opt.readCache > 0 && rep.CacheHits == 0 {
		return fmt.Errorf("ci: read cache enabled but zero cache hits")
	}
	return nil
}

func printReport(out io.Writer, rep report) {
	loop := "closed-loop"
	if rep.OpenLoop {
		loop = fmt.Sprintf("open-loop @ %.0f ops/s", rep.RateTarget)
	}
	fmt.Fprintf(out, "%s: %s %s, %.1fs, %.0f ops/s served\n",
		rep.Name, rep.Mode, loop, rep.Seconds, rep.Throughput)
	fmt.Fprintf(out, "  ops=%d reads=%d writes=%d notfound=%d shed=%d retries=%d timeouts=%d partial=%d unexpected=%d\n",
		rep.Ops, rep.Reads, rep.Writes, rep.NotFound, rep.Shed, rep.Retries, rep.Timeouts, rep.Partials, rep.Unexpected)
	if rep.Reads > 0 {
		fmt.Fprintf(out, "  read  p50=%s p99=%s p999=%s max=%s mean=%s\n",
			ns(rep.ReadP50), ns(rep.ReadP99), ns(rep.ReadP999), ns(rep.ReadMax), ns(rep.ReadMean))
	}
	if rep.Writes > 0 {
		fmt.Fprintf(out, "  write p50=%s p99=%s p999=%s max=%s\n",
			ns(rep.WriteP50), ns(rep.WriteP99), ns(rep.WriteP999), ns(rep.WriteMax))
	}
	if rep.SvcReadP99 > 0 {
		fmt.Fprintf(out, "  read service-time p50=%s p99=%s max=%s (excl. schedule lag)\n",
			ns(rep.SvcReadP50), ns(rep.SvcReadP99), ns(rep.SvcReadMax))
	}
	if rep.CacheHits+rep.CacheMisses > 0 {
		fmt.Fprintf(out, "  cache hits=%d misses=%d invalidations=%d\n",
			rep.CacheHits, rep.CacheMisses, rep.CacheInvals)
	}
	if rep.ServerShed > 0 {
		fmt.Fprintf(out, "  server shed=%d\n", rep.ServerShed)
	}
}

func ns(v uint64) string { return time.Duration(v).String() }

// mergeJSON folds entries into the JSON object at path, preserving
// keys already there (scripts/bench.sh writes the go-bench numbers
// first; distload adds its suite results to the same artifact).
func mergeJSON(path string, entries map[string]any) error {
	m := map[string]any{}
	if b, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(b, &m); err != nil {
			return fmt.Errorf("merge %s: %w", path, err)
		}
	}
	for k, v := range entries {
		m[k] = v
	}
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	var sb strings.Builder
	sb.WriteString("{\n")
	for i, k := range names {
		b, err := json.Marshal(m[k])
		if err != nil {
			return err
		}
		fmt.Fprintf(&sb, "  %q: %s", k, b)
		if i != len(names)-1 {
			sb.WriteByte(',')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("}\n")
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

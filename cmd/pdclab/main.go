// Command pdclab runs the course-lab experiments the case-study
// programs assign, printing the measurements students are asked to
// produce: shared-memory speedup curves, loop-schedule and histogram
// ablations, false-sharing demonstrations, SIMT divergence/coalescing
// cliffs, MPI collective comparisons, OS scheduling policy metrics, and
// lock-manager deadlock statistics.
//
// Usage:
//
//	pdclab <lab>
//
// Labs: speedup, schedule, falseshare, simt, mpi, sched, txn, philosophers, all
package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"

	"pdcedu/internal/arch"
	"pdcedu/internal/conc"
	"pdcedu/internal/mpi"
	"pdcedu/internal/par"
	"pdcedu/internal/perf"
	"pdcedu/internal/sched"
	"pdcedu/internal/simt"
	"pdcedu/internal/taskgraph"
	"pdcedu/internal/txn"
)

func main() {
	if len(os.Args) != 2 {
		usage()
	}
	labs := map[string]func() error{
		"speedup":      labSpeedup,
		"schedule":     labSchedule,
		"falseshare":   labFalseShare,
		"simt":         labSIMT,
		"mpi":          labMPI,
		"sched":        labSched,
		"txn":          labTxn,
		"philosophers": labPhilosophers,
		"dag":          labDAG,
	}
	name := os.Args[1]
	if name == "all" {
		for _, n := range []string{"speedup", "schedule", "falseshare", "simt", "mpi", "sched", "txn", "philosophers", "dag"} {
			fmt.Printf("==== lab: %s ====\n", n)
			if err := labs[n](); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		return
	}
	lab, ok := labs[name]
	if !ok {
		usage()
	}
	if err := lab(); err != nil {
		fail(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pdclab <speedup|schedule|falseshare|simt|mpi|sched|txn|philosophers|dag|all>")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "pdclab:", err)
	os.Exit(1)
}

// labSpeedup measures strong scaling of the parallel sum and sort (LAU
// course outcome 2: analyze the efficiency of a given parallel
// algorithm).
func labSpeedup() error {
	const n = 1 << 22
	xs := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range xs {
		xs[i] = rng.Float64()
	}
	maxP := runtime.GOMAXPROCS(0)
	ps := []int{1}
	for p := 2; p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	curve := perf.StrongScaling("parallel sum", ps, func(p int) {
		_ = par.SumFloat64(xs, p)
	}, perf.Options{Warmup: 1, Repetitions: 3})
	t := perf.NewTable("Strong scaling: parallel sum of 4M float64",
		"P", "time (s)", "speedup", "efficiency", "Karp-Flatt")
	for _, pt := range curve.Points {
		t.AddRow(pt.P, pt.Time, pt.Speedup, pt.Efficiency, pt.KarpFlatt)
	}
	fmt.Println(t.String())
	fmt.Printf("fitted Amdahl serial fraction: %.4f\n", curve.FitSerialFraction(1e-4))
	return nil
}

// labSchedule compares OpenMP-style loop schedules on skewed work.
func labSchedule() error {
	const n = 1 << 14
	sink := make([]float64, n)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x := 1.0001
			for k := 0; k < i%509; k++ {
				x *= 1.0001
			}
			sink[i] = x
		}
	}
	t := perf.NewTable("Loop schedules on skewed iterations (lower is better)",
		"schedule", "median time (s)")
	for _, s := range []par.Schedule{par.Static, par.Dynamic, par.Guided} {
		s := s
		sample := perf.Measure(func() {
			par.ForRange(n, par.ForOptions{Schedule: s, Chunk: 16}, body)
		}, perf.Options{Warmup: 1, Repetitions: 5})
		t.AddRow(s.String(), sample.Median())
	}
	fmt.Println(t.String())
	return nil
}

// labFalseShare contrasts padded and unpadded counters, in both real
// time and simulated MESI invalidation traffic.
func labFalseShare() error {
	workers := 4
	iters := 200000
	up := perf.Measure(func() { arch.CountersUnpadded(workers, iters) },
		perf.Options{Warmup: 1, Repetitions: 5})
	pd := perf.Measure(func() { arch.CountersPadded(workers, iters) },
		perf.Options{Warmup: 1, Repetitions: 5})
	t := perf.NewTable("False sharing: 4 goroutines x 200k increments",
		"layout", "median time (s)")
	t.AddRow("unpadded (shared line)", up.Median())
	t.AddRow("padded (line per counter)", pd.Median())
	fmt.Println(t.String())

	unStats, pdStats, err := arch.FalseSharingExperiment(workers, 10000, 64)
	if err != nil {
		return err
	}
	t2 := perf.NewTable("MESI simulation of the same pattern",
		"layout", "invalidations", "bus transactions")
	t2.AddRow("unpadded", unStats.Invalidations, unStats.Total())
	t2.AddRow("padded", pdStats.Invalidations, pdStats.Total())
	fmt.Println(t2.String())
	return nil
}

// labSIMT shows the GPU performance cliffs: divergence and coalescing.
func labSIMT() error {
	d := simt.NewDevice()
	uniform, err := simt.DivergentKernel(d, 1<<14, 1, 64, 256)
	if err != nil {
		return err
	}
	divergent, err := simt.DivergentKernel(d, 1<<14, 32, 64, 256)
	if err != nil {
		return err
	}
	t := perf.NewTable("SIMT divergence (16K threads)",
		"kernel", "SIMT efficiency", "divergent branches", "est. cycles")
	t.AddRow("uniform work", uniform.SIMTEfficiency, uniform.DivergentBranches, uniform.EstimatedCycles)
	t.AddRow("1 heavy lane per warp", divergent.SIMTEfficiency, divergent.DivergentBranches, divergent.EstimatedCycles)
	fmt.Println(t.String())

	n := 1 << 12
	src := d.NewBuffer(n * 32)
	dst := d.NewBuffer(n)
	unit, err := simt.StridedCopy(d, src, dst, n, 1, 256)
	if err != nil {
		return err
	}
	strided, err := simt.StridedCopy(d, src, dst, n, 32, 256)
	if err != nil {
		return err
	}
	t2 := perf.NewTable("Global memory coalescing (4K-element copy)",
		"access pattern", "transactions", "coalescing efficiency", "est. cycles")
	t2.AddRow("stride 1", unit.GlobalTransactions, unit.CoalescingEfficiency(), unit.EstimatedCycles)
	t2.AddRow("stride 32", strided.GlobalTransactions, strided.CoalescingEfficiency(), strided.EstimatedCycles)
	fmt.Println(t2.String())
	return nil
}

// labMPI compares collective algorithms on the in-process transport.
func labMPI() error {
	const ranks = 8
	vec := make([]float64, 1<<14)
	tTree := perf.Measure(func() {
		_ = mpi.Run(ranks, func(c *mpi.Comm) error {
			_, err := c.Allreduce(vec, mpi.OpSum)
			return err
		})
	}, perf.Options{Warmup: 1, Repetitions: 5})
	tRing := perf.Measure(func() {
		_ = mpi.Run(ranks, func(c *mpi.Comm) error {
			_, err := c.AllreduceRing(vec, mpi.OpSum)
			return err
		})
	}, perf.Options{Warmup: 1, Repetitions: 5})
	t := perf.NewTable("All-reduce of 16K float64 across 8 ranks",
		"algorithm", "median time (s)")
	t.AddRow("binomial reduce+bcast", tTree.Median())
	t.AddRow("ring (reduce-scatter + allgather)", tRing.Median())
	fmt.Println(t.String())
	return nil
}

// labSched compares CPU scheduling policies on one workload.
func labSched() error {
	procs := sched.RandomWorkload(50, 100, 20, 7)
	results, err := sched.Policies(procs, 4, []int64{2, 4, 8})
	if err != nil {
		return err
	}
	t := perf.NewTable("CPU scheduling policies, 50-process workload",
		"policy", "avg waiting", "avg turnaround", "avg response", "preemptions")
	for _, r := range results {
		t.AddRow(r.Policy, r.AvgWaiting(), r.AvgTurnaround(), r.AvgResponse(), r.Preemptions)
	}
	fmt.Println(t.String())

	t2 := perf.NewTable("Multiprocessor scheduling (4 CPUs)",
		"strategy", "makespan", "steals")
	var lastMP sched.Result
	for _, s := range []sched.MPStrategy{sched.GlobalQueue, sched.PerCPUQueue, sched.PerCPUStealing} {
		r, err := sched.Multiprocessor(procs, 4, s)
		if err != nil {
			return err
		}
		t2.AddRow(s.String(), r.Makespan, r.Steals)
		lastMP = r
	}
	fmt.Println(t2.String())

	// Gantt chart of a small round-robin run plus the stealing schedule.
	small, err := sched.RR(sched.RandomWorkload(6, 10, 8, 3), 3)
	if err != nil {
		return err
	}
	fmt.Println(sched.Gantt(small, 72))
	fmt.Println(sched.Gantt(lastMP, 72))
	return nil
}

// labTxn measures abort rates under the three deadlock policies.
func labTxn() error {
	t := perf.NewTable("Concurrent bank transfers (hot accounts)",
		"policy", "commits", "aborts")
	for _, s := range []txn.Strategy{txn.Detect, txn.WoundWait, txn.WaitDie} {
		db := txn.NewDB(s)
		for i := 0; i < 4; i++ {
			db.Set(fmt.Sprintf("acct%d", i), 10000)
		}
		done := make(chan struct{})
		for w := 0; w < 4; w++ {
			w := w
			go func() {
				defer func() { done <- struct{}{} }()
				for i := 0; i < 200; i++ {
					from := fmt.Sprintf("acct%d", (w+i)%4)
					to := fmt.Sprintf("acct%d", (w+i+1)%4)
					_ = txn.Transfer(db, from, to, 1, 100)
				}
			}()
		}
		for w := 0; w < 4; w++ {
			<-done
		}
		t.AddRow(s.String(), db.Commits.Load(), db.Aborts.Load())
	}
	fmt.Println(t.String())
	return nil
}

// labDAG runs the CC2020 work-span exercise: analyze a task graph,
// schedule it greedily, compare against Brent's bound, and emit DOT.
func labDAG() error {
	g := taskgraph.RandomLayered(6, 5, 0.5, 1, 10, 42)
	a, err := g.Analyze()
	if err != nil {
		return err
	}
	fmt.Printf("work T1 = %.1f, span Tinf = %.1f, parallelism = %.2f\n", a.Work, a.Span, a.Parallelism)
	t := perf.NewTable("Greedy list scheduling vs Brent's bound",
		"P", "makespan", "lower bound", "Brent upper bound")
	for _, p := range []int{1, 2, 4, 8} {
		res, err := g.ListSchedule(p)
		if err != nil {
			return err
		}
		t.AddRow(p, res.Makespan, taskgraph.LowerBound(a, p), taskgraph.BrentUpperBound(a, p))
	}
	fmt.Println(t.String())
	dot, err := g.DOT(true)
	if err != nil {
		return err
	}
	fmt.Printf("Graphviz (critical path in red), first lines:\n%s...\n",
		firstLines(dot, 6))
	return nil
}

func firstLines(s string, n int) string {
	lines := strings.SplitAfter(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "")
}

// labPhilosophers runs the dining philosophers under each strategy.
func labPhilosophers() error {
	t := perf.NewTable("Dining philosophers (5 seats x 200 meals)",
		"strategy", "total meals", "min meals", "retries")
	for _, s := range []conc.PhilosopherStrategy{conc.OrderedForks, conc.Arbitrator, conc.TryBackoff} {
		res, err := conc.DinePhilosophers(5, 200, s)
		if err != nil {
			return err
		}
		t.AddRow(s.String(), res.TotalMeals(), res.MinMeals(), res.Retries)
	}
	fmt.Println(t.String())
	return nil
}

module pdcedu

go 1.24

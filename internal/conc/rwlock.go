package conc

import "sync"

// RWPolicy selects which class of waiter a readers-writer lock favors.
// The two policies bracket the classic starvation trade-off taught with
// the readers-writers problem.
type RWPolicy int

const (
	// ReaderPreference admits readers whenever any reader is active;
	// writers can starve under a continuous read stream.
	ReaderPreference RWPolicy = iota
	// WriterPreference blocks new readers whenever a writer is waiting;
	// readers can starve under a continuous write stream.
	WriterPreference
)

// String returns the policy name.
func (p RWPolicy) String() string {
	switch p {
	case ReaderPreference:
		return "reader-preference"
	case WriterPreference:
		return "writer-preference"
	default:
		return "unknown"
	}
}

// RWLock is a readers-writer lock built from a mutex and condition
// variables, with a selectable preference policy. It exists to make the
// first/second readers-writers problems executable; production code
// should use sync.RWMutex.
type RWLock struct {
	mu             sync.Mutex
	cond           *sync.Cond
	policy         RWPolicy
	activeReaders  int
	activeWriter   bool
	waitingWriters int
}

// NewRWLock creates a readers-writer lock with the given policy.
func NewRWLock(policy RWPolicy) *RWLock {
	l := &RWLock{policy: policy}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Policy reports the lock's preference policy.
func (l *RWLock) Policy() RWPolicy { return l.policy }

// RLock acquires the lock for reading.
func (l *RWLock) RLock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.blockedReader() {
		l.cond.Wait()
	}
	l.activeReaders++
}

func (l *RWLock) blockedReader() bool {
	if l.activeWriter {
		return true
	}
	if l.policy == WriterPreference && l.waitingWriters > 0 {
		return true
	}
	return false
}

// RUnlock releases a read acquisition.
func (l *RWLock) RUnlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.activeReaders--
	if l.activeReaders == 0 {
		l.cond.Broadcast()
	}
}

// Lock acquires the lock for writing (exclusive).
func (l *RWLock) Lock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.waitingWriters++
	for l.activeWriter || l.activeReaders > 0 {
		l.cond.Wait()
	}
	l.waitingWriters--
	l.activeWriter = true
}

// Unlock releases a write acquisition.
func (l *RWLock) Unlock() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.activeWriter = false
	l.cond.Broadcast()
}

// Readers reports the number of active readers (for tests/visualisation).
func (l *RWLock) Readers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeReaders
}

package conc

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestQueueFIFOSingleThreaded(t *testing.T) {
	q := NewBoundedQueue[int](3)
	if q.Cap() != 3 {
		t.Fatalf("Cap = %d, want 3", q.Cap())
	}
	for i := 0; i < 3; i++ {
		if err := q.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	if q.TryPut(99) {
		t.Error("TryPut should fail on a full queue")
	}
	if q.Len() != 3 {
		t.Errorf("Len = %d, want 3", q.Len())
	}
	for i := 0; i < 3; i++ {
		v, err := q.Take()
		if err != nil || v != i {
			t.Fatalf("Take = %v,%v; want %d,nil", v, err, i)
		}
	}
	if _, ok := q.TryTake(); ok {
		t.Error("TryTake should fail on an empty queue")
	}
}

func TestQueueWraparound(t *testing.T) {
	q := NewBoundedQueue[string](2)
	mustPut := func(s string) {
		t.Helper()
		if err := q.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	mustTake := func(want string) {
		t.Helper()
		v, err := q.Take()
		if err != nil || v != want {
			t.Fatalf("Take = %q,%v; want %q", v, err, want)
		}
	}
	mustPut("a")
	mustPut("b")
	mustTake("a")
	mustPut("c") // wraps
	mustTake("b")
	mustTake("c")
}

func TestQueueClose(t *testing.T) {
	q := NewBoundedQueue[int](4)
	_ = q.Put(1)
	_ = q.Put(2)
	q.Close()
	if !q.Closed() {
		t.Error("Closed should be true")
	}
	if err := q.Put(3); err != ErrClosed {
		t.Errorf("Put after close = %v, want ErrClosed", err)
	}
	// Drain semantics: remaining items still come out.
	if v, err := q.Take(); err != nil || v != 1 {
		t.Errorf("Take = %v,%v; want 1,nil", v, err)
	}
	if v, err := q.Take(); err != nil || v != 2 {
		t.Errorf("Take = %v,%v; want 2,nil", v, err)
	}
	if _, err := q.Take(); err != ErrClosed {
		t.Errorf("Take on drained closed queue = %v, want ErrClosed", err)
	}
	q.Close() // idempotent
}

func TestQueueCloseUnblocksWaiters(t *testing.T) {
	q := NewBoundedQueue[int](1)
	_ = q.Put(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // blocked producer
		defer wg.Done()
		if err := q.Put(2); err != ErrClosed {
			t.Errorf("blocked Put = %v, want ErrClosed", err)
		}
	}()
	empty := NewBoundedQueue[int](1)
	go func() { // blocked consumer
		defer wg.Done()
		if _, err := empty.Take(); err != ErrClosed {
			t.Errorf("blocked Take = %v, want ErrClosed", err)
		}
	}()
	q.Close()
	empty.Close()
	wg.Wait()
}

// Property: with concurrent producers and consumers, every element is
// delivered exactly once and per-producer order is preserved.
func TestQueueConcurrentExactlyOnce(t *testing.T) {
	const producers, consumers, perProducer = 4, 4, 250
	q := NewBoundedQueue[[2]int](8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if err := q.Put([2]int{p, i}); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	var mu sync.Mutex
	got := make(map[[2]int]int)
	lastSeen := make([][]int, producers) // per consumer, per producer
	var cwg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		c := c
		lastSeenC := make([]int, producers)
		for i := range lastSeenC {
			lastSeenC[i] = -1
		}
		lastSeen[c] = lastSeenC
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				v, err := q.Take()
				if err != nil {
					return
				}
				if v[1] <= lastSeenC[v[0]] {
					t.Errorf("consumer %d saw producer %d items out of order", c, v[0])
				}
				lastSeenC[v[0]] = v[1]
				mu.Lock()
				got[v]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	q.Close()
	cwg.Wait()
	if len(got) != producers*perProducer {
		t.Fatalf("received %d distinct items, want %d", len(got), producers*perProducer)
	}
	for k, n := range got {
		if n != 1 {
			t.Errorf("item %v delivered %d times", k, n)
		}
	}
}

// Property (quick): any single-threaded interleaving of puts then takes
// returns the items in insertion order.
func TestQueueOrderProperty(t *testing.T) {
	f := func(items []int16) bool {
		if len(items) == 0 {
			return true
		}
		q := NewBoundedQueue[int16](len(items))
		for _, v := range items {
			if err := q.Put(v); err != nil {
				return false
			}
		}
		out := make([]int16, 0, len(items))
		for range items {
			v, err := q.Take()
			if err != nil {
				return false
			}
			out = append(out, v)
		}
		for i := range items {
			if out[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQueuePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBoundedQueue(0) should panic")
		}
	}()
	NewBoundedQueue[int](0)
}

package conc

import "sync"

// Monitor is a Hoare-style monitor: a mutual-exclusion region with
// named condition variables. SE2014 lists monitors (with semaphores) as
// the essential concurrency primitives every software-engineering
// graduate must master at the application level.
//
// Typical use:
//
//	m := conc.NewMonitor()
//	notFull := m.NewCondition()
//	m.Enter()
//	for full() {
//		notFull.Wait()
//	}
//	...
//	m.Exit()
type Monitor struct {
	mu sync.Mutex
}

// NewMonitor creates an unlocked monitor.
func NewMonitor() *Monitor { return &Monitor{} }

// Enter acquires the monitor lock.
func (m *Monitor) Enter() { m.mu.Lock() }

// Exit releases the monitor lock.
func (m *Monitor) Exit() { m.mu.Unlock() }

// Do runs fn while holding the monitor lock.
func (m *Monitor) Do(fn func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	fn()
}

// Condition is a condition variable tied to its monitor's lock.
type Condition struct {
	cond *sync.Cond
}

// NewCondition creates a condition variable associated with the monitor.
func (m *Monitor) NewCondition() *Condition {
	return &Condition{cond: sync.NewCond(&m.mu)}
}

// Wait atomically releases the monitor and suspends the caller until
// Signal or Broadcast; the monitor is re-acquired before Wait returns.
// Callers must re-check their predicate in a loop (Mesa semantics).
func (c *Condition) Wait() { c.cond.Wait() }

// Signal wakes one waiter, if any.
func (c *Condition) Signal() { c.cond.Signal() }

// Broadcast wakes all waiters.
func (c *Condition) Broadcast() { c.cond.Broadcast() }

// WaitUntil blocks until pred() is true, re-checking after every wakeup.
// The monitor must be held on entry and is held on return. This packages
// the Mesa-style "wait in a loop" idiom that the courses drill.
func (c *Condition) WaitUntil(pred func() bool) {
	for !pred() {
		c.cond.Wait()
	}
}

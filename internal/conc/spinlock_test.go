package conc

import (
	"runtime"
	"sync"
	"testing"
)

func hammerLock(t *testing.T, lock sync.Locker, workers, iters int) int {
	t.Helper()
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				lock.Lock()
				counter++
				lock.Unlock()
			}
		}()
	}
	wg.Wait()
	return counter
}

func TestSpinLockMutualExclusion(t *testing.T) {
	var l SpinLock
	const workers, iters = 8, 500
	if got := hammerLock(t, &l, workers, iters); got != workers*iters {
		t.Errorf("counter = %d, want %d (lost updates imply broken mutual exclusion)",
			got, workers*iters)
	}
}

func TestSpinLockTryLock(t *testing.T) {
	var l SpinLock
	if !l.TryLock() {
		t.Fatal("TryLock on free lock failed")
	}
	if l.TryLock() {
		t.Fatal("TryLock on held lock succeeded")
	}
	l.Unlock()
	if !l.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	l.Unlock()
}

func TestTicketLockMutualExclusion(t *testing.T) {
	var l TicketLock
	const workers, iters = 8, 500
	if got := hammerLock(t, &l, workers, iters); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
}

func TestCountersAgree(t *testing.T) {
	const workers, iters = 8, 1000
	impls := map[string]Counter{
		"mutex":   &MutexCounter{},
		"atomic":  &AtomicCounter{},
		"sharded": NewShardedCounter(workers),
	}
	for name, c := range impls {
		c := c
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						c.Inc(w)
					}
				}()
			}
			wg.Wait()
			if got := c.Value(); got != workers*iters {
				t.Errorf("Value = %d, want %d", got, workers*iters)
			}
		})
	}
}

func TestShardedCounterMinimumShards(t *testing.T) {
	c := NewShardedCounter(0)
	c.Inc(5)
	if c.Value() != 1 {
		t.Errorf("Value = %d, want 1", c.Value())
	}
}

func BenchmarkCounterMutex(b *testing.B) {
	benchCounter(b, &MutexCounter{})
}

func BenchmarkCounterAtomic(b *testing.B) {
	benchCounter(b, &AtomicCounter{})
}

func BenchmarkCounterSharded(b *testing.B) {
	benchCounter(b, NewShardedCounter(runtime.GOMAXPROCS(0)))
}

func benchCounter(b *testing.B, c Counter) {
	var id int64
	b.RunParallel(func(pb *testing.PB) {
		shard := int(id) // unique-ish per worker; exactness irrelevant
		id++
		for pb.Next() {
			c.Inc(shard)
		}
	})
}

package conc

import (
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned by queue operations after Close.
var ErrClosed = errors.New("conc: queue is closed")

// BoundedQueue is the "properly synchronized queue" that CC2020 names as
// a required PDC topic: a blocking, bounded, FIFO, multi-producer
// multi-consumer queue built as a monitor with two condition variables.
type BoundedQueue[T any] struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	buf      []T
	head     int
	size     int
	closed   bool
}

// NewBoundedQueue creates a queue holding at most capacity elements.
// It panics if capacity is not positive.
func NewBoundedQueue[T any](capacity int) *BoundedQueue[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("conc: queue capacity must be positive, got %d", capacity))
	}
	q := &BoundedQueue[T]{buf: make([]T, capacity)}
	q.notFull = sync.NewCond(&q.mu)
	q.notEmpty = sync.NewCond(&q.mu)
	return q
}

// Put appends v, blocking while the queue is full. It returns ErrClosed
// if the queue is (or becomes) closed while waiting.
func (q *BoundedQueue[T]) Put(v T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return ErrClosed
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.notEmpty.Signal()
	return nil
}

// TryPut appends v without blocking; it reports false when full or closed.
func (q *BoundedQueue[T]) TryPut(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.size == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.size)%len(q.buf)] = v
	q.size++
	q.notEmpty.Signal()
	return true
}

// Take removes and returns the oldest element, blocking while empty.
// After Close, Take drains remaining elements and then returns ErrClosed.
func (q *BoundedQueue[T]) Take() (T, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	var zero T
	if q.size == 0 {
		return zero, ErrClosed
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.notFull.Signal()
	return v, nil
}

// TryTake removes the oldest element without blocking.
func (q *BoundedQueue[T]) TryTake() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if q.size == 0 {
		return zero, false
	}
	v := q.buf[q.head]
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.size--
	q.notFull.Signal()
	return v, true
}

// Close marks the queue closed: pending and future Puts fail, Takes drain
// the remaining elements then fail. Close is idempotent.
func (q *BoundedQueue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		q.notFull.Broadcast()
		q.notEmpty.Broadcast()
	}
}

// Len reports the current number of queued elements.
func (q *BoundedQueue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// Cap reports the queue capacity.
func (q *BoundedQueue[T]) Cap() int { return len(q.buf) }

// Closed reports whether Close has been called.
func (q *BoundedQueue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}

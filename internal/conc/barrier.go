package conc

import (
	"fmt"
	"sync"
)

// Barrier is a reusable (cyclic) synchronization barrier for a fixed
// party count: the primitive behind bulk-synchronous parallel phases in
// the shared-memory part of the LAU course. An optional action runs
// exactly once per generation, by the last goroutine to arrive, before
// the others are released.
type Barrier struct {
	mu         sync.Mutex
	cond       *sync.Cond
	parties    int
	waiting    int
	generation uint64
	action     func()
}

// NewBarrier creates a barrier for parties goroutines. It panics if
// parties is not positive.
func NewBarrier(parties int) *Barrier {
	if parties <= 0 {
		panic(fmt.Sprintf("conc: barrier parties must be positive, got %d", parties))
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// NewBarrierWithAction creates a barrier that runs action once per
// generation when the last party arrives.
func NewBarrierWithAction(parties int, action func()) *Barrier {
	b := NewBarrier(parties)
	b.action = action
	return b
}

// Parties reports the number of goroutines the barrier synchronizes.
func (b *Barrier) Parties() int { return b.parties }

// Await blocks until all parties have called Await for the current
// generation, then releases them together. It returns the index of the
// caller's arrival within the generation (parties-1 for the last
// arriver, matching java.util.concurrent.CyclicBarrier conventions).
func (b *Barrier) Await() int {
	b.mu.Lock()
	gen := b.generation
	index := b.waiting
	b.waiting++
	if b.waiting == b.parties {
		if b.action != nil {
			b.action()
		}
		b.waiting = 0
		b.generation++
		b.cond.Broadcast()
		b.mu.Unlock()
		return index
	}
	for gen == b.generation {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return index
}

// Generation reports how many times the barrier has tripped.
func (b *Barrier) Generation() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.generation
}

// Latch is a one-shot count-down latch: Wait blocks until CountDown has
// been called n times. Further CountDown calls are no-ops.
type Latch struct {
	mu    sync.Mutex
	cond  *sync.Cond
	count int
}

// NewLatch creates a latch requiring n count-downs. n <= 0 creates an
// already-open latch.
func NewLatch(n int) *Latch {
	l := &Latch{count: n}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// CountDown decrements the latch, releasing waiters at zero.
func (l *Latch) CountDown() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.count > 0 {
		l.count--
		if l.count == 0 {
			l.cond.Broadcast()
		}
	}
}

// Wait blocks until the latch reaches zero.
func (l *Latch) Wait() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.count > 0 {
		l.cond.Wait()
	}
}

// Count reports the remaining count.
func (l *Latch) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

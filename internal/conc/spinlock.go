package conc

import (
	"runtime"
	"sync/atomic"
)

// SpinLock is a test-and-set spin lock. It demonstrates the busy-waiting
// mutual-exclusion technique that architecture and OS courses contrast
// with blocking locks; under contention it burns CPU, which the ablation
// benchmarks make visible.
type SpinLock struct {
	state atomic.Uint32
}

// Lock spins until the lock is acquired, yielding the processor between
// attempts (test-and-test-and-set to limit cache-line ping-pong).
func (l *SpinLock) Lock() {
	for {
		if l.state.CompareAndSwap(0, 1) {
			return
		}
		for l.state.Load() != 0 {
			runtime.Gosched()
		}
	}
}

// TryLock attempts to acquire the lock without spinning.
func (l *SpinLock) TryLock() bool { return l.state.CompareAndSwap(0, 1) }

// Unlock releases the lock.
func (l *SpinLock) Unlock() { l.state.Store(0) }

// TicketLock is a fair FIFO spin lock built from two counters; it is the
// canonical example of enforcing bounded waiting (no starvation) with
// atomic fetch-and-add.
type TicketLock struct {
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock takes a ticket and spins until it is being served.
func (l *TicketLock) Lock() {
	ticket := l.next.Add(1) - 1
	for l.serving.Load() != ticket {
		runtime.Gosched()
	}
}

// Unlock admits the next ticket holder.
func (l *TicketLock) Unlock() { l.serving.Add(1) }

// Counter abstracts the shared-counter implementations compared in the
// coarse-vs-sharded-vs-atomic ablation (Table I's "atomicity" row).
type Counter interface {
	// Inc adds one to the counter. The shard hint lets sharded
	// implementations avoid contention; others ignore it.
	Inc(shard int)
	// Value returns the current total.
	Value() int64
}

// MutexCounter is a single mutex-protected counter (coarse locking).
type MutexCounter struct {
	lock SpinLock
	n    int64
}

// Inc implements Counter.
func (c *MutexCounter) Inc(int) {
	c.lock.Lock()
	c.n++
	c.lock.Unlock()
}

// Value implements Counter.
func (c *MutexCounter) Value() int64 {
	c.lock.Lock()
	defer c.lock.Unlock()
	return c.n
}

// AtomicCounter uses a single atomic word (hardware fetch-and-add).
type AtomicCounter struct {
	n atomic.Int64
}

// Inc implements Counter.
func (c *AtomicCounter) Inc(int) { c.n.Add(1) }

// Value implements Counter.
func (c *AtomicCounter) Value() int64 { return c.n.Load() }

// shardPad separates shards onto distinct cache lines so that the sharded
// counter demonstrates the fix for false sharing.
type shardPad struct {
	n atomic.Int64
	_ [56]byte
}

// ShardedCounter splits the count across padded per-shard slots and sums
// them on read: high write throughput at the cost of an O(shards) read.
type ShardedCounter struct {
	shards []shardPad
}

// NewShardedCounter creates a counter with n shards (minimum 1).
func NewShardedCounter(n int) *ShardedCounter {
	if n < 1 {
		n = 1
	}
	return &ShardedCounter{shards: make([]shardPad, n)}
}

// Inc implements Counter; callers should pass a stable per-goroutine shard.
func (c *ShardedCounter) Inc(shard int) {
	c.shards[shard%len(c.shards)].n.Add(1)
}

// Value implements Counter.
func (c *ShardedCounter) Value() int64 {
	var sum int64
	for i := range c.shards {
		sum += c.shards[i].n.Load()
	}
	return sum
}

// Package conc implements the classical concurrency primitives that the
// SE2014 SEEK "Computing Essentials" knowledge unit names explicitly
// (semaphores and monitors) and that the surveyed operating-systems and
// systems-programming courses teach: counting and binary semaphores,
// monitors with condition variables, cyclic barriers, spin locks, ticket
// locks, count-down latches, properly synchronized bounded queues
// (CC2020), sharded counters, and the dining-philosophers problem with
// several deadlock-avoidance strategies.
//
// Everything is built from sync.Mutex, sync.Cond, channels, and
// sync/atomic only, so each primitive's construction is itself teaching
// material.
package conc

import (
	"context"
	"fmt"
)

// Semaphore is a counting semaphore built on a buffered channel: the
// classic Dijkstra P/V primitive. A Semaphore with capacity 1 is a binary
// semaphore (a mutex that any goroutine may release).
type Semaphore struct {
	slots chan struct{}
	cap   int
}

// NewSemaphore creates a semaphore with the given number of permits.
// It panics if capacity is not positive.
func NewSemaphore(capacity int) *Semaphore {
	if capacity <= 0 {
		panic(fmt.Sprintf("conc: semaphore capacity must be positive, got %d", capacity))
	}
	return &Semaphore{slots: make(chan struct{}, capacity), cap: capacity}
}

// NewBinarySemaphore creates a semaphore with a single permit.
func NewBinarySemaphore() *Semaphore { return NewSemaphore(1) }

// Capacity reports the total number of permits.
func (s *Semaphore) Capacity() int { return s.cap }

// Acquire takes one permit, blocking until one is available (Dijkstra's P).
func (s *Semaphore) Acquire() { s.slots <- struct{}{} }

// Release returns one permit (Dijkstra's V). Releasing more permits than
// the capacity blocks, which surfaces release-without-acquire bugs in
// student code instead of silently widening the semaphore.
func (s *Semaphore) Release() { <-s.slots }

// TryAcquire takes a permit without blocking and reports success.
func (s *Semaphore) TryAcquire() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// AcquireContext takes a permit or gives up when ctx is done.
func (s *Semaphore) AcquireContext(ctx context.Context) error {
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// InUse reports how many permits are currently held.
func (s *Semaphore) InUse() int { return len(s.slots) }

// Available reports how many permits can be acquired without blocking.
func (s *Semaphore) Available() int { return s.cap - len(s.slots) }

package conc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSemaphoreBasics(t *testing.T) {
	s := NewSemaphore(2)
	if s.Capacity() != 2 || s.Available() != 2 || s.InUse() != 0 {
		t.Fatalf("fresh semaphore state wrong: cap=%d avail=%d inuse=%d",
			s.Capacity(), s.Available(), s.InUse())
	}
	s.Acquire()
	s.Acquire()
	if s.Available() != 0 || s.InUse() != 2 {
		t.Errorf("after 2 acquires: avail=%d inuse=%d", s.Available(), s.InUse())
	}
	if s.TryAcquire() {
		t.Error("TryAcquire should fail when exhausted")
	}
	s.Release()
	if !s.TryAcquire() {
		t.Error("TryAcquire should succeed after Release")
	}
}

func TestSemaphorePanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSemaphore(0) should panic")
		}
	}()
	NewSemaphore(0)
}

func TestSemaphoreContext(t *testing.T) {
	s := NewBinarySemaphore()
	s.Acquire()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.AcquireContext(ctx); err == nil {
		t.Error("AcquireContext should fail when semaphore is held and ctx expires")
	}
	s.Release()
	if err := s.AcquireContext(context.Background()); err != nil {
		t.Errorf("AcquireContext on free semaphore failed: %v", err)
	}
}

// Property: a semaphore of capacity k never admits more than k goroutines
// to the critical section simultaneously.
func TestSemaphoreBoundsConcurrency(t *testing.T) {
	const k, workers, iters = 3, 16, 200
	s := NewSemaphore(k)
	var inside, maxInside int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.Acquire()
				n := atomic.AddInt64(&inside, 1)
				for {
					m := atomic.LoadInt64(&maxInside)
					if n <= m || atomic.CompareAndSwapInt64(&maxInside, m, n) {
						break
					}
				}
				atomic.AddInt64(&inside, -1)
				s.Release()
			}
		}()
	}
	wg.Wait()
	if maxInside > k {
		t.Errorf("observed %d goroutines inside a %d-capacity semaphore", maxInside, k)
	}
	if maxInside < 1 {
		t.Error("no goroutine ever entered the critical section")
	}
}

func TestMonitorBoundedBuffer(t *testing.T) {
	// Build a bounded buffer from a monitor and two conditions, then
	// verify producer/consumer transfer of every item exactly once.
	const capacity, items = 4, 500
	m := NewMonitor()
	notFull := m.NewCondition()
	notEmpty := m.NewCondition()
	var buf []int
	received := make([]bool, items)

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Enter()
			notFull.WaitUntil(func() bool { return len(buf) < capacity })
			buf = append(buf, i)
			notEmpty.Signal()
			m.Exit()
		}
	}()
	go func() { // consumer
		defer wg.Done()
		for i := 0; i < items; i++ {
			m.Enter()
			notEmpty.WaitUntil(func() bool { return len(buf) > 0 })
			v := buf[0]
			buf = buf[1:]
			notFull.Signal()
			m.Exit()
			if v < 0 || v >= items || received[v] {
				t.Errorf("bad or duplicate item %d", v)
				return
			}
			received[v] = true
		}
	}()
	wg.Wait()
	for i, ok := range received {
		if !ok {
			t.Fatalf("item %d never received", i)
		}
	}
}

func TestMonitorDo(t *testing.T) {
	m := NewMonitor()
	x := 0
	m.Do(func() { x = 7 })
	if x != 7 {
		t.Errorf("Do did not run the function")
	}
}

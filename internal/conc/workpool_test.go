package conc

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var count atomic.Int64
	const n = 1000
	for i := 0; i < n; i++ {
		p.Submit(func() { count.Add(1) })
	}
	p.Wait()
	if count.Load() != n {
		t.Errorf("ran %d tasks, want %d", count.Load(), n)
	}
	if p.Workers() != 4 {
		t.Errorf("Workers = %d", p.Workers())
	}
}

func TestPoolForkJoin(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var leaves atomic.Int64
	// Recursive task tree: each node spawns two children to depth 6.
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		for i := 0; i < 2; i++ {
			d := depth - 1
			p.Submit(func() { spawn(d) })
		}
	}
	p.Submit(func() { spawn(6) })
	p.Wait()
	if leaves.Load() != 64 {
		t.Errorf("leaves = %d, want 64", leaves.Load())
	}
}

func TestPoolWaitIsReusable(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var x atomic.Int64
	p.Submit(func() { x.Add(1) })
	p.Wait()
	p.Submit(func() { x.Add(1) })
	p.Wait()
	if x.Load() != 2 {
		t.Errorf("x = %d, want 2", x.Load())
	}
}

func TestPoolPanickyTaskContained(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	var ok atomic.Bool
	p.Submit(func() { panic("task bug") })
	p.Submit(func() { ok.Store(true) })
	p.Wait()
	if !ok.Load() {
		t.Error("pool died after a panicking task")
	}
}

func TestPoolNilTaskIgnored(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	p.Submit(nil)
	p.Wait()
}

func TestPoolSubmitAfterClosePanics(t *testing.T) {
	p := NewPool(1)
	p.Close()
	defer func() {
		if recover() == nil {
			t.Error("Submit after Close should panic")
		}
	}()
	p.Submit(func() {})
}

func TestPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) should panic")
		}
	}()
	NewPool(0)
}

func TestPoolStealsOnImbalance(t *testing.T) {
	// All tasks land on deque 0 modulo rotation; with a blocking first
	// task the other workers must steal. We approximate by submitting
	// many quick tasks and asserting the counter is sane (>= 0; steals
	// are scheduling-dependent, especially on one core).
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < 200; i++ {
		p.Submit(func() {})
	}
	p.Wait()
	if p.Steals() < 0 {
		t.Error("negative steals")
	}
}

func BenchmarkPoolThroughput(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Submit(func() {})
	}
	p.Wait()
}

package conc

import "testing"

func TestDinePhilosophersAllStrategies(t *testing.T) {
	const n, meals = 5, 50
	for _, s := range []PhilosopherStrategy{OrderedForks, Arbitrator, TryBackoff} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			res, err := DinePhilosophers(n, meals, s)
			if err != nil {
				t.Fatal(err)
			}
			if res.TotalMeals() != n*meals {
				t.Errorf("TotalMeals = %d, want %d", res.TotalMeals(), n*meals)
			}
			if res.MinMeals() != meals {
				t.Errorf("MinMeals = %d, want %d (everyone must finish)", res.MinMeals(), meals)
			}
		})
	}
}

func TestDinePhilosophersValidation(t *testing.T) {
	if _, err := DinePhilosophers(1, 10, OrderedForks); err == nil {
		t.Error("1 philosopher should be rejected")
	}
	if _, err := DinePhilosophers(5, 0, OrderedForks); err == nil {
		t.Error("0 meals should be rejected")
	}
}

func TestPhilosopherStrategyString(t *testing.T) {
	cases := map[PhilosopherStrategy]string{
		OrderedForks:            "ordered-forks",
		Arbitrator:              "arbitrator",
		TryBackoff:              "try-backoff",
		PhilosopherStrategy(42): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("String() = %q, want %q", s.String(), want)
		}
	}
}

func TestTableResultEmpty(t *testing.T) {
	var r TableResult
	if r.TotalMeals() != 0 || r.MinMeals() != 0 {
		t.Error("empty result should be zeros")
	}
}

func BenchmarkPhilosophersOrdered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = DinePhilosophers(5, 20, OrderedForks)
	}
}

func BenchmarkPhilosophersArbitrator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = DinePhilosophers(5, 20, Arbitrator)
	}
}

package conc

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestRWLockExclusionInvariants(t *testing.T) {
	for _, policy := range []RWPolicy{ReaderPreference, WriterPreference} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			l := NewRWLock(policy)
			var readers, writers int64
			var bad atomic.Bool
			const n, iters = 8, 200
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for j := 0; j < iters; j++ {
						if i%2 == 0 { // reader
							l.RLock()
							atomic.AddInt64(&readers, 1)
							if atomic.LoadInt64(&writers) != 0 {
								bad.Store(true)
							}
							atomic.AddInt64(&readers, -1)
							l.RUnlock()
						} else { // writer
							l.Lock()
							if atomic.AddInt64(&writers, 1) != 1 ||
								atomic.LoadInt64(&readers) != 0 {
								bad.Store(true)
							}
							atomic.AddInt64(&writers, -1)
							l.Unlock()
						}
					}
				}()
			}
			wg.Wait()
			if bad.Load() {
				t.Error("readers/writers invariant violated")
			}
		})
	}
}

func TestRWLockConcurrentReaders(t *testing.T) {
	l := NewRWLock(ReaderPreference)
	l.RLock()
	l.RLock() // a second reader must not block
	if got := l.Readers(); got != 2 {
		t.Errorf("Readers = %d, want 2", got)
	}
	l.RUnlock()
	l.RUnlock()
}

func TestRWPolicyString(t *testing.T) {
	if ReaderPreference.String() != "reader-preference" ||
		WriterPreference.String() != "writer-preference" ||
		RWPolicy(99).String() != "unknown" {
		t.Error("RWPolicy.String mismatch")
	}
}

package conc

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Pool is a work-stealing task pool: each worker owns a deque, pops its
// own tasks LIFO (locality) and steals FIFO from victims when idle —
// the "task-based parallelism" model of the LAU course's shared-memory
// part. Tasks may submit further tasks (fork-join style).
type Pool struct {
	deques  []*taskDeque
	mu      sync.Mutex
	cond    *sync.Cond
	closed  bool
	pending atomic.Int64
	done    chan struct{}
	wg      sync.WaitGroup
	steals  atomic.Int64
	nextSub atomic.Int64
}

// taskDeque is a mutex-protected double-ended task queue.
type taskDeque struct {
	mu    sync.Mutex
	tasks []func()
}

// pushBottom adds a task at the owner end.
func (d *taskDeque) pushBottom(t func()) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

// popBottom removes the most recently pushed task (owner side, LIFO).
func (d *taskDeque) popBottom() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil, false
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t, true
}

// stealTop removes the oldest task (thief side, FIFO).
func (d *taskDeque) stealTop() (func(), bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil, false
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	return t, true
}

// NewPool starts a pool with the given worker count. It panics on a
// non-positive count.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		panic(fmt.Sprintf("conc: pool workers must be positive, got %d", workers))
	}
	p := &Pool{
		deques: make([]*taskDeque, workers),
		done:   make(chan struct{}),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := range p.deques {
		p.deques[i] = &taskDeque{}
	}
	for w := 0; w < workers; w++ {
		w := w
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return len(p.deques) }

// Steals reports how many tasks were executed by a worker other than
// the one whose deque received them.
func (p *Pool) Steals() int64 { return p.steals.Load() }

// Submit enqueues a task (round-robin across deques) and wakes a
// sleeping worker. Submitting to a closed pool panics.
func (p *Pool) Submit(task func()) {
	if task == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		panic("conc: Submit on closed pool")
	}
	p.pending.Add(1)
	p.mu.Unlock()
	idx := int(p.nextSub.Add(1)) % len(p.deques)
	if idx < 0 {
		idx = -idx
	}
	p.deques[idx].pushBottom(task)
	p.mu.Lock()
	p.cond.Broadcast()
	p.mu.Unlock()
}

// worker runs tasks from its own deque, stealing when empty.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	rng := rand.New(rand.NewSource(int64(id) + 1))
	for {
		if t, ok := p.deques[id].popBottom(); ok {
			p.run(t)
			continue
		}
		// Steal attempt from a random victim ordering.
		stolen := false
		for _, v := range rng.Perm(len(p.deques)) {
			if v == id {
				continue
			}
			if t, ok := p.deques[v].stealTop(); ok {
				p.steals.Add(1)
				p.run(t)
				stolen = true
				break
			}
		}
		if stolen {
			continue
		}
		// Nothing anywhere: sleep until work arrives or shutdown.
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		if p.anyWork() {
			p.mu.Unlock()
			continue
		}
		p.cond.Wait()
		p.mu.Unlock()
	}
}

// anyWork reports whether any deque holds a task (called with p.mu held
// or not; the answer is advisory either way).
func (p *Pool) anyWork() bool {
	for _, d := range p.deques {
		d.mu.Lock()
		n := len(d.tasks)
		d.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// run executes one task, recovering panics so a bad task cannot kill a
// worker, and accounts completion.
func (p *Pool) run(t func()) {
	defer func() {
		recover() // task panics are contained
		if p.pending.Add(-1) == 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}()
	t()
}

// Wait blocks until every submitted task (including tasks submitted by
// tasks) has completed.
func (p *Pool) Wait() {
	p.mu.Lock()
	for p.pending.Load() != 0 {
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// Close shuts the pool down after draining outstanding tasks. The pool
// cannot be reused.
func (p *Pool) Close() {
	p.Wait()
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

package conc

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBarrierPhases(t *testing.T) {
	const parties, phases = 8, 20
	b := NewBarrier(parties)
	// Every goroutine increments a per-phase counter before the barrier;
	// after the barrier the counter must equal parties.
	counts := make([]int64, phases)
	var fail atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				atomic.AddInt64(&counts[ph], 1)
				b.Await()
				if atomic.LoadInt64(&counts[ph]) != parties {
					fail.Store(true)
				}
				b.Await() // second barrier so nobody races ahead into ph+1
			}
		}()
	}
	wg.Wait()
	if fail.Load() {
		t.Error("a goroutine crossed the barrier before all parties arrived")
	}
	if got := b.Generation(); got != phases*2 {
		t.Errorf("generation = %d, want %d", got, phases*2)
	}
}

func TestBarrierAction(t *testing.T) {
	const parties, phases = 4, 10
	var actions int64
	b := NewBarrierWithAction(parties, func() { actions++ })
	var wg sync.WaitGroup
	for p := 0; p < parties; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				b.Await()
			}
		}()
	}
	wg.Wait()
	if actions != phases {
		t.Errorf("action ran %d times, want %d", actions, phases)
	}
}

func TestBarrierLastArriverIndex(t *testing.T) {
	b := NewBarrier(2)
	idx := make(chan int, 2)
	go func() { idx <- b.Await() }()
	go func() { idx <- b.Await() }()
	a, c := <-idx, <-idx
	if a+c != 1 { // indices 0 and 1 in some order
		t.Errorf("arrival indices = %d,%d; want {0,1}", a, c)
	}
}

func TestBarrierPanicsOnBadParties(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0) should panic")
		}
	}()
	NewBarrier(0)
}

func TestLatch(t *testing.T) {
	l := NewLatch(3)
	if l.Count() != 3 {
		t.Fatalf("Count = %d, want 3", l.Count())
	}
	done := make(chan struct{})
	go func() {
		l.Wait()
		close(done)
	}()
	l.CountDown()
	l.CountDown()
	select {
	case <-done:
		t.Fatal("latch opened early")
	default:
	}
	l.CountDown()
	<-done
	// Extra countdowns are no-ops.
	l.CountDown()
	if l.Count() != 0 {
		t.Errorf("Count after open = %d, want 0", l.Count())
	}
	l.Wait() // must not block on an open latch
}

func TestLatchAlreadyOpen(t *testing.T) {
	NewLatch(0).Wait()
	NewLatch(-5).Wait()
}

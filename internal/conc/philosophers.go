package conc

import (
	"fmt"
	"sync"
)

// PhilosopherStrategy selects a deadlock-avoidance scheme for the dining
// philosophers simulation, the canonical deadlock exercise in every
// surveyed operating-systems course.
type PhilosopherStrategy int

const (
	// OrderedForks imposes a global total order on fork acquisition
	// (the last philosopher picks up the lower-numbered fork first),
	// breaking the circular-wait condition.
	OrderedForks PhilosopherStrategy = iota
	// Arbitrator admits at most N-1 philosophers to the table via a
	// counting semaphore, breaking hold-and-wait among all N.
	Arbitrator
	// TryBackoff acquires the first fork, then try-locks the second and
	// releases both on failure: no deadlock, but livelock-prone without
	// the scheduler's help (we yield between retries).
	TryBackoff
)

// String returns the strategy name.
func (s PhilosopherStrategy) String() string {
	switch s {
	case OrderedForks:
		return "ordered-forks"
	case Arbitrator:
		return "arbitrator"
	case TryBackoff:
		return "try-backoff"
	default:
		return "unknown"
	}
}

// TableResult summarizes one dining-philosophers run.
type TableResult struct {
	Strategy PhilosopherStrategy
	// Meals[i] counts how many times philosopher i ate.
	Meals []int
	// Retries counts second-fork try-lock failures (TryBackoff only).
	Retries int64
}

// TotalMeals sums all philosophers' meals.
func (r TableResult) TotalMeals() int {
	t := 0
	for _, m := range r.Meals {
		t += m
	}
	return t
}

// MinMeals returns the smallest per-philosopher meal count — a fairness
// indicator (zero after a long run suggests starvation).
func (r TableResult) MinMeals() int {
	if len(r.Meals) == 0 {
		return 0
	}
	min := r.Meals[0]
	for _, m := range r.Meals[1:] {
		if m < min {
			min = m
		}
	}
	return min
}

// DinePhilosophers runs n philosophers until each has eaten mealsEach
// times, using the given strategy, and returns the outcome. The run
// completing at all demonstrates deadlock freedom; the naive
// "everyone grabs the left fork first" variant is intentionally not
// offered because it can wedge the test suite.
func DinePhilosophers(n, mealsEach int, strategy PhilosopherStrategy) (TableResult, error) {
	if n < 2 {
		return TableResult{}, fmt.Errorf("conc: need at least 2 philosophers, got %d", n)
	}
	if mealsEach < 1 {
		return TableResult{}, fmt.Errorf("conc: mealsEach must be positive, got %d", mealsEach)
	}
	forks := make([]SpinLock, n)
	res := TableResult{Strategy: strategy, Meals: make([]int, n)}
	var retries MutexCounter
	table := NewSemaphore(n - 1)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			left, right := i, (i+1)%n
			for meal := 0; meal < mealsEach; meal++ {
				switch strategy {
				case OrderedForks:
					lo, hi := left, right
					if lo > hi {
						lo, hi = hi, lo
					}
					forks[lo].Lock()
					forks[hi].Lock()
					res.Meals[i]++ // guarded by holding both forks
					forks[hi].Unlock()
					forks[lo].Unlock()
				case Arbitrator:
					table.Acquire()
					forks[left].Lock()
					forks[right].Lock()
					res.Meals[i]++
					forks[right].Unlock()
					forks[left].Unlock()
					table.Release()
				case TryBackoff:
					for {
						forks[left].Lock()
						if forks[right].TryLock() {
							break
						}
						forks[left].Unlock()
						retries.Inc(0)
					}
					res.Meals[i]++
					forks[right].Unlock()
					forks[left].Unlock()
				}
			}
		}()
	}
	wg.Wait()
	res.Retries = retries.Value()
	return res, nil
}

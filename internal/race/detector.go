// Package race implements a happens-before data-race detector over
// recorded execution traces, making CC2020's "race conditions" topic
// executable: students record a trace of memory accesses and lock
// operations from a (simulated) concurrent program and the detector
// reports every pair of accesses unordered by happens-before in which at
// least one is a write.
//
// The algorithm is the classic vector-clock construction used by
// DJIT+/FastTrack-style detectors, simplified to full vector clocks per
// variable for clarity.
package race

import (
	"fmt"
	"sort"
)

// VClock is a vector clock mapping thread ID to logical time.
type VClock map[int]uint64

// Copy returns an independent copy of the clock.
func (v VClock) Copy() VClock {
	c := make(VClock, len(v))
	for k, t := range v {
		c[k] = t
	}
	return c
}

// Join sets v to the element-wise maximum of v and other.
func (v VClock) Join(other VClock) {
	for k, t := range other {
		if t > v[k] {
			v[k] = t
		}
	}
}

// HappensBefore reports whether v <= other pointwise and v != other
// (strict causal precedence).
func (v VClock) HappensBefore(other VClock) bool {
	le := true
	strict := false
	for k, t := range v {
		o := other[k]
		if t > o {
			le = false
			break
		}
		if t < o {
			strict = true
		}
	}
	if !le {
		return false
	}
	if strict {
		return true
	}
	for k, o := range other {
		if o > v[k] {
			return true
		}
	}
	return false
}

// Concurrent reports whether neither clock happens-before the other.
func (v VClock) Concurrent(other VClock) bool {
	return !v.HappensBefore(other) && !other.HappensBefore(v) && !v.equal(other)
}

func (v VClock) equal(other VClock) bool {
	for k, t := range v {
		if other[k] != t {
			return false
		}
	}
	for k, t := range other {
		if v[k] != t {
			return false
		}
	}
	return true
}

// Op is a trace event kind.
type Op int

const (
	// OpRead is a read of a shared variable.
	OpRead Op = iota
	// OpWrite is a write of a shared variable.
	OpWrite
	// OpLock acquires a mutex.
	OpLock
	// OpUnlock releases a mutex.
	OpUnlock
	// OpFork is the creation of a child thread; Target names the child.
	OpFork
	// OpJoin is the completion wait on a child thread; Target names it.
	OpJoin
)

// String returns the op name.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpLock:
		return "lock"
	case OpUnlock:
		return "unlock"
	case OpFork:
		return "fork"
	case OpJoin:
		return "join"
	default:
		return "unknown"
	}
}

// Event is one entry in an execution trace.
type Event struct {
	Thread int
	Op     Op
	// Addr identifies the variable (read/write) or mutex (lock/unlock).
	Addr string
	// Target is the child thread for fork/join events.
	Target int
	// Index is the event's position in the trace (set by the detector).
	Index int
}

// Race describes one detected data race.
type Race struct {
	Addr   string
	First  Event
	Second Event
}

// String formats the race report.
func (r Race) String() string {
	return fmt.Sprintf("race on %q: T%d %s (event %d) and T%d %s (event %d) are concurrent",
		r.Addr, r.First.Thread, r.First.Op, r.First.Index,
		r.Second.Thread, r.Second.Op, r.Second.Index)
}

// access is a recorded access with the clock at which it happened.
type access struct {
	ev    Event
	clock VClock
}

// Detect analyzes the trace and returns every data race: a pair of
// accesses to the same address from different threads, at least one a
// write, unordered by the happens-before relation induced by program
// order, lock release/acquire edges, and fork/join edges.
//
// The trace is interpreted in the given total order (the observed
// interleaving); races are still reported when the accesses are merely
// unordered, regardless of the observed interleaving, which is what
// makes the analysis a predictive race detector.
func Detect(trace []Event) []Race {
	clocks := map[int]VClock{}        // per-thread clock
	lockClocks := map[string]VClock{} // per-mutex release clock
	history := map[string][]access{}  // per-variable access history
	var races []Race

	clockOf := func(tid int) VClock {
		c, ok := clocks[tid]
		if !ok {
			c = VClock{tid: 1}
			clocks[tid] = c
		}
		return c
	}
	tick := func(tid int) {
		clockOf(tid)[tid]++
	}

	for i, ev := range trace {
		ev.Index = i
		c := clockOf(ev.Thread)
		switch ev.Op {
		case OpLock:
			if rc, ok := lockClocks[ev.Addr]; ok {
				c.Join(rc)
			}
		case OpUnlock:
			lockClocks[ev.Addr] = c.Copy()
			tick(ev.Thread)
		case OpFork:
			child := clockOf(ev.Target)
			child.Join(c)
			tick(ev.Target)
			tick(ev.Thread)
		case OpJoin:
			c.Join(clockOf(ev.Target))
			tick(ev.Thread)
		case OpRead, OpWrite:
			snap := c.Copy()
			for _, prev := range history[ev.Addr] {
				if prev.ev.Thread == ev.Thread {
					continue
				}
				if prev.ev.Op != OpWrite && ev.Op != OpWrite {
					continue // read-read pairs never race
				}
				if !prev.clock.HappensBefore(snap) && !prev.clock.equal(snap) {
					races = append(races, Race{Addr: ev.Addr, First: prev.ev, Second: ev})
				}
			}
			history[ev.Addr] = append(history[ev.Addr], access{ev: ev, clock: snap})
			tick(ev.Thread)
		}
	}
	sort.Slice(races, func(i, j int) bool {
		if races[i].Addr != races[j].Addr {
			return races[i].Addr < races[j].Addr
		}
		if races[i].First.Index != races[j].First.Index {
			return races[i].First.Index < races[j].First.Index
		}
		return races[i].Second.Index < races[j].Second.Index
	})
	return races
}

// HasRace reports whether the trace contains any data race.
func HasRace(trace []Event) bool { return len(Detect(trace)) > 0 }

package race

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestUnsynchronizedWritesRace(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 2, Op: OpWrite, Addr: "x"},
	}
	races := Detect(trace)
	if len(races) != 1 {
		t.Fatalf("got %d races, want 1: %v", len(races), races)
	}
	if races[0].Addr != "x" {
		t.Errorf("race on %q, want x", races[0].Addr)
	}
	if !strings.Contains(races[0].String(), "race on \"x\"") {
		t.Errorf("String() = %q", races[0].String())
	}
}

func TestReadReadDoesNotRace(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpRead, Addr: "x"},
		{Thread: 2, Op: OpRead, Addr: "x"},
	}
	if HasRace(trace) {
		t.Error("two reads must not race")
	}
}

func TestReadWriteRaces(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpRead, Addr: "x"},
		{Thread: 2, Op: OpWrite, Addr: "x"},
	}
	if !HasRace(trace) {
		t.Error("concurrent read/write must race")
	}
}

func TestLockOrderingRemovesRace(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpLock, Addr: "m"},
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpUnlock, Addr: "m"},
		{Thread: 2, Op: OpLock, Addr: "m"},
		{Thread: 2, Op: OpWrite, Addr: "x"},
		{Thread: 2, Op: OpUnlock, Addr: "m"},
	}
	if races := Detect(trace); len(races) != 0 {
		t.Errorf("properly locked writes reported as races: %v", races)
	}
}

func TestDifferentLocksDoNotSynchronize(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpLock, Addr: "m1"},
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpUnlock, Addr: "m1"},
		{Thread: 2, Op: OpLock, Addr: "m2"},
		{Thread: 2, Op: OpWrite, Addr: "x"},
		{Thread: 2, Op: OpUnlock, Addr: "m2"},
	}
	if !HasRace(trace) {
		t.Error("writes under different locks must race")
	}
}

func TestForkJoinOrdering(t *testing.T) {
	// Parent writes, forks child; child writes; parent joins, then writes.
	trace := []Event{
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpFork, Target: 2},
		{Thread: 2, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpJoin, Target: 2},
		{Thread: 1, Op: OpWrite, Addr: "x"},
	}
	if races := Detect(trace); len(races) != 0 {
		t.Errorf("fork/join ordered accesses reported as races: %v", races)
	}
}

func TestForkWithoutJoinRaces(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpFork, Target: 2},
		{Thread: 2, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpWrite, Addr: "x"}, // no join: concurrent with child
	}
	if !HasRace(trace) {
		t.Error("parent/child writes without join must race")
	}
}

func TestDistinctAddressesNeverRace(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 2, Op: OpWrite, Addr: "y"},
	}
	if HasRace(trace) {
		t.Error("accesses to distinct variables must not race")
	}
}

func TestSameThreadNeverRaces(t *testing.T) {
	trace := []Event{
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpRead, Addr: "x"},
	}
	if HasRace(trace) {
		t.Error("program order must order same-thread accesses")
	}
}

func TestPredictiveDetection(t *testing.T) {
	// The observed interleaving has T1's unlock before T2's lock of a
	// DIFFERENT mutex, so the accesses are ordered in the interleaving
	// but unordered by happens-before: still a race.
	trace := []Event{
		{Thread: 1, Op: OpLock, Addr: "m1"},
		{Thread: 1, Op: OpWrite, Addr: "x"},
		{Thread: 1, Op: OpUnlock, Addr: "m1"},
		{Thread: 2, Op: OpWrite, Addr: "x"},
	}
	if !HasRace(trace) {
		t.Error("predictive detector should flag unordered accesses even when serialized in the trace")
	}
}

func TestVClockLaws(t *testing.T) {
	a := VClock{1: 1}
	b := VClock{1: 2}
	if !a.HappensBefore(b) || b.HappensBefore(a) {
		t.Error("HappensBefore on totally ordered clocks wrong")
	}
	c := VClock{2: 1}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Error("disjoint clocks should be concurrent")
	}
	if a.Concurrent(a.Copy()) {
		t.Error("a clock is not concurrent with itself")
	}
}

// Property: HappensBefore is irreflexive and antisymmetric.
func TestVClockPartialOrderProperty(t *testing.T) {
	f := func(a0, a1, b0, b1 uint8) bool {
		a := VClock{1: uint64(a0), 2: uint64(a1)}
		b := VClock{1: uint64(b0), 2: uint64(b1)}
		if a.HappensBefore(a) {
			return false
		}
		if a.HappensBefore(b) && b.HappensBefore(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		OpRead: "read", OpWrite: "write", OpLock: "lock",
		OpUnlock: "unlock", OpFork: "fork", OpJoin: "join", Op(99): "unknown",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	if races := Detect(nil); len(races) != 0 {
		t.Errorf("empty trace produced races: %v", races)
	}
}

func BenchmarkDetect(b *testing.B) {
	var trace []Event
	for i := 0; i < 200; i++ {
		tid := i%4 + 1
		trace = append(trace,
			Event{Thread: tid, Op: OpLock, Addr: "m"},
			Event{Thread: tid, Op: OpWrite, Addr: "x"},
			Event{Thread: tid, Op: OpUnlock, Addr: "m"},
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Detect(trace)
	}
}

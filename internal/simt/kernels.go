package simt

import "fmt"

// VecAdd launches c = a + b with one thread per element.
func VecAdd(d *Device, a, b, c *Buffer, blockSize int) (KernelStats, error) {
	n := a.Len()
	if b.Len() != n || c.Len() != n {
		return KernelStats{}, fmt.Errorf("simt: vecadd length mismatch %d/%d/%d", a.Len(), b.Len(), c.Len())
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	grid := (n + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	return d.Launch(LaunchConfig{Grid: grid, Block: blockSize}, func(t *Thread) {
		i := t.GlobalID()
		if t.Branch(i < n) {
			t.Store(c, i, t.Load(a, i)+t.Load(b, i))
		}
	})
}

// StridedCopy copies src[i*stride] to dst[i] — the canonical coalescing
// experiment: stride 1 is perfectly coalesced, large strides are not.
func StridedCopy(d *Device, src, dst *Buffer, n, stride, blockSize int) (KernelStats, error) {
	if stride <= 0 {
		return KernelStats{}, fmt.Errorf("simt: stride must be positive, got %d", stride)
	}
	if n*stride > src.Len() || n > dst.Len() {
		return KernelStats{}, fmt.Errorf("simt: strided copy out of range")
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	grid := (n + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	return d.Launch(LaunchConfig{Grid: grid, Block: blockSize}, func(t *Thread) {
		i := t.GlobalID()
		if t.Branch(i < n) {
			t.Store(dst, i, t.Load(src, i*stride))
		}
	})
}

// MatMulNaive computes C = A×B for n×n row-major matrices with one
// thread per output element, reading everything from global memory.
func MatMulNaive(d *Device, a, b, c *Buffer, n, blockSize int) (KernelStats, error) {
	if a.Len() < n*n || b.Len() < n*n || c.Len() < n*n {
		return KernelStats{}, fmt.Errorf("simt: matmul buffers too small for n=%d", n)
	}
	if blockSize <= 0 {
		blockSize = 128
	}
	total := n * n
	grid := (total + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	return d.Launch(LaunchConfig{Grid: grid, Block: blockSize}, func(t *Thread) {
		id := t.GlobalID()
		if !t.Branch(id < total) {
			return
		}
		row, col := id/n, id%n
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += t.Load(a, row*n+k) * t.Load(b, k*n+col)
			t.Work(2)
		}
		t.Store(c, id, sum)
	})
}

// MatMulTiled computes C = A×B with tile×tile shared-memory tiles per
// block — the classic CUDA optimization. n must be a multiple of tile;
// tile*tile threads per block.
func MatMulTiled(d *Device, a, b, c *Buffer, n, tile int) (KernelStats, error) {
	if tile <= 0 || n%tile != 0 {
		return KernelStats{}, fmt.Errorf("simt: n=%d must be a multiple of tile=%d", n, tile)
	}
	if tile*tile > 1024 {
		return KernelStats{}, fmt.Errorf("simt: tile %d gives more than 1024 threads per block", tile)
	}
	if a.Len() < n*n || b.Len() < n*n || c.Len() < n*n {
		return KernelStats{}, fmt.Errorf("simt: matmul buffers too small for n=%d", n)
	}
	tilesPerDim := n / tile
	grid := tilesPerDim * tilesPerDim
	cfg := LaunchConfig{Grid: grid, Block: tile * tile, SharedMem: 2 * tile * tile}
	return d.Launch(cfg, func(t *Thread) {
		blockRow := t.BlockIdx / tilesPerDim
		blockCol := t.BlockIdx % tilesPerDim
		ty := t.ThreadIdx / tile
		tx := t.ThreadIdx % tile
		row := blockRow*tile + ty
		col := blockCol*tile + tx
		// Shared tiles: As at [0, tile*tile), Bs at [tile*tile, 2*tile*tile).
		asBase, bsBase := 0, tile*tile
		sum := 0.0
		for m := 0; m < tilesPerDim; m++ {
			t.SharedStore(asBase+ty*tile+tx, t.Load(a, row*n+m*tile+tx))
			t.SharedStore(bsBase+ty*tile+tx, t.Load(b, (m*tile+ty)*n+col))
			t.SyncThreads()
			for k := 0; k < tile; k++ {
				sum += t.SharedLoad(asBase+ty*tile+k) * t.SharedLoad(bsBase+k*tile+tx)
				t.Work(2)
			}
			t.SyncThreads()
		}
		t.Store(c, row*n+col, sum)
	})
}

// ReduceSum computes the sum of buf via per-block shared-memory tree
// reduction followed by one atomic per block into out[0].
func ReduceSum(d *Device, buf, out *Buffer, blockSize int) (KernelStats, error) {
	if out.Len() < 1 {
		return KernelStats{}, fmt.Errorf("simt: reduction output buffer is empty")
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	if blockSize&(blockSize-1) != 0 {
		return KernelStats{}, fmt.Errorf("simt: reduction block size %d must be a power of two", blockSize)
	}
	n := buf.Len()
	grid := (n + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	out.Data[0] = 0
	cfg := LaunchConfig{Grid: grid, Block: blockSize, SharedMem: blockSize}
	return d.Launch(cfg, func(t *Thread) {
		i := t.GlobalID()
		v := 0.0
		if t.Branch(i < n) {
			v = t.Load(buf, i)
		}
		t.SharedStore(t.ThreadIdx, v)
		t.SyncThreads()
		for s := t.BlockDim / 2; s > 0; s /= 2 {
			if t.Branch(t.ThreadIdx < s) {
				t.SharedStore(t.ThreadIdx,
					t.SharedLoad(t.ThreadIdx)+t.SharedLoad(t.ThreadIdx+s))
			}
			t.SyncThreads()
		}
		if t.Branch(t.ThreadIdx == 0) {
			t.AtomicAdd(out, 0, t.SharedLoad(0))
		}
	})
}

// BlockScan computes an inclusive prefix sum within each block using the
// Hillis-Steele algorithm over shared memory; out[i] is the scan of
// in restricted to i's block (the building block of the full GPU scan).
func BlockScan(d *Device, in, out *Buffer, blockSize int) (KernelStats, error) {
	n := in.Len()
	if out.Len() < n {
		return KernelStats{}, fmt.Errorf("simt: scan output too small")
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	grid := (n + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	cfg := LaunchConfig{Grid: grid, Block: blockSize, SharedMem: blockSize}
	return d.Launch(cfg, func(t *Thread) {
		i := t.GlobalID()
		v := 0.0
		if t.Branch(i < n) {
			v = t.Load(in, i)
		}
		t.SharedStore(t.ThreadIdx, v)
		t.SyncThreads()
		for off := 1; off < t.BlockDim; off *= 2 {
			var add float64
			if t.Branch(t.ThreadIdx >= off) {
				add = t.SharedLoad(t.ThreadIdx - off)
			}
			t.SyncThreads()
			if t.ThreadIdx >= off {
				t.SharedStore(t.ThreadIdx, t.SharedLoad(t.ThreadIdx)+add)
			}
			t.SyncThreads()
		}
		if t.Branch(i < n) {
			t.Store(out, i, t.SharedLoad(t.ThreadIdx))
		}
	})
}

// HistogramAtomic bins value indices with global atomics: values are
// pre-bucketed integers in [0, bins).
func HistogramAtomic(d *Device, values *Buffer, hist *Buffer, bins, blockSize int) (KernelStats, error) {
	if hist.Len() < bins {
		return KernelStats{}, fmt.Errorf("simt: histogram buffer smaller than bins")
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	n := values.Len()
	grid := (n + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	return d.Launch(LaunchConfig{Grid: grid, Block: blockSize}, func(t *Thread) {
		i := t.GlobalID()
		if t.Branch(i < n) {
			b := int(t.Load(values, i))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			t.AtomicAdd(hist, b, 1)
		}
	})
}

// DivergentKernel runs a deliberately warp-divergent workload: lanes
// whose global ID satisfies id%divisor == 0 do `heavy` work units, the
// rest do 1 — the divergence lab.
func DivergentKernel(d *Device, n, divisor, heavy, blockSize int) (KernelStats, error) {
	if divisor <= 0 {
		return KernelStats{}, fmt.Errorf("simt: divisor must be positive")
	}
	if blockSize <= 0 {
		blockSize = 256
	}
	grid := (n + blockSize - 1) / blockSize
	if grid == 0 {
		grid = 1
	}
	return d.Launch(LaunchConfig{Grid: grid, Block: blockSize}, func(t *Thread) {
		i := t.GlobalID()
		if !t.Branch(i < n) {
			return
		}
		if t.Branch(i%divisor == 0) {
			t.Work(heavy)
		} else {
			t.Work(1)
		}
	})
}

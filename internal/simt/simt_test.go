package simt

import (
	"math"
	"testing"
)

func devSmall() *Device {
	d := NewDevice()
	d.SMs = 4
	return d
}

func TestVecAddCorrectness(t *testing.T) {
	d := devSmall()
	n := 1000
	a := d.NewBuffer(n)
	b := d.NewBuffer(n)
	c := d.NewBuffer(n)
	for i := 0; i < n; i++ {
		a.Data[i] = float64(i)
		b.Data[i] = float64(2 * i)
	}
	st, err := VecAdd(d, a, b, c, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if c.Data[i] != float64(3*i) {
			t.Fatalf("c[%d] = %g, want %g", i, c.Data[i], float64(3*i))
		}
	}
	if st.Blocks != 4 || st.Warps != 4*8 {
		t.Errorf("blocks=%d warps=%d, want 4/32", st.Blocks, st.Warps)
	}
	// Unit-stride loads/stores must be perfectly coalesced.
	if eff := st.CoalescingEfficiency(); eff < 0.99 {
		t.Errorf("vecadd coalescing efficiency = %g, want ~1", eff)
	}
}

func TestVecAddValidation(t *testing.T) {
	d := devSmall()
	if _, err := VecAdd(d, d.NewBuffer(4), d.NewBuffer(5), d.NewBuffer(4), 0); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestStridedCopyCoalescing(t *testing.T) {
	d := devSmall()
	n := 1024
	src := d.NewBuffer(n * 32)
	dst := d.NewBuffer(n)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	unit, err := StridedCopy(d, src, dst, n, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if dst.Data[i] != float64(i) {
			t.Fatalf("unit copy dst[%d] = %g", i, dst.Data[i])
		}
	}
	strided, err := StridedCopy(d, src, dst, n, 32, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if dst.Data[i] != float64(i*32) {
			t.Fatalf("strided copy dst[%d] = %g", i, dst.Data[i])
		}
	}
	if strided.GlobalTransactions <= unit.GlobalTransactions {
		t.Errorf("stride-32 transactions (%d) should exceed unit stride (%d)",
			strided.GlobalTransactions, unit.GlobalTransactions)
	}
	if unit.CoalescingEfficiency() < 0.99 {
		t.Errorf("unit-stride efficiency = %g, want ~1", unit.CoalescingEfficiency())
	}
	if strided.CoalescingEfficiency() > 0.2 {
		t.Errorf("stride-32 efficiency = %g, want <= 0.2", strided.CoalescingEfficiency())
	}
	if _, err := StridedCopy(d, src, dst, n, 0, 256); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := StridedCopy(d, src, dst, n*40, 1, 256); err == nil {
		t.Error("out-of-range copy accepted")
	}
}

func TestMatMulNaiveAndTiledAgree(t *testing.T) {
	d := devSmall()
	n := 16
	a := d.NewBuffer(n * n)
	b := d.NewBuffer(n * n)
	c1 := d.NewBuffer(n * n)
	c2 := d.NewBuffer(n * n)
	for i := 0; i < n*n; i++ {
		a.Data[i] = float64(i % 7)
		b.Data[i] = float64(i % 5)
	}
	if _, err := MatMulNaive(d, a, b, c1, n, 64); err != nil {
		t.Fatal(err)
	}
	stTiled, err := MatMulTiled(d, a, b, c2, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Reference on the host.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for k := 0; k < n; k++ {
				want += a.Data[i*n+k] * b.Data[k*n+j]
			}
			if math.Abs(c1.Data[i*n+j]-want) > 1e-9 {
				t.Fatalf("naive C[%d,%d] = %g, want %g", i, j, c1.Data[i*n+j], want)
			}
			if math.Abs(c2.Data[i*n+j]-want) > 1e-9 {
				t.Fatalf("tiled C[%d,%d] = %g, want %g", i, j, c2.Data[i*n+j], want)
			}
		}
	}
	if stTiled.SharedOccurrences == 0 {
		t.Error("tiled matmul should use shared memory")
	}
}

func TestMatMulTiledReducesGlobalTraffic(t *testing.T) {
	d := devSmall()
	n := 32
	a := d.NewBuffer(n * n)
	b := d.NewBuffer(n * n)
	c := d.NewBuffer(n * n)
	naive, err := MatMulNaive(d, a, b, c, n, 128)
	if err != nil {
		t.Fatal(err)
	}
	tiled, err := MatMulTiled(d, a, b, c, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tiled.GlobalTransactions >= naive.GlobalTransactions {
		t.Errorf("tiled transactions (%d) should be below naive (%d)",
			tiled.GlobalTransactions, naive.GlobalTransactions)
	}
}

func TestMatMulValidation(t *testing.T) {
	d := devSmall()
	small := d.NewBuffer(4)
	if _, err := MatMulNaive(d, small, small, small, 16, 64); err == nil {
		t.Error("undersized buffers accepted")
	}
	if _, err := MatMulTiled(d, small, small, small, 10, 3); err == nil {
		t.Error("non-divisible tile accepted")
	}
	if _, err := MatMulTiled(d, small, small, small, 64, 64); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestReduceSum(t *testing.T) {
	d := devSmall()
	n := 5000
	buf := d.NewBuffer(n)
	out := d.NewBuffer(1)
	want := 0.0
	for i := 0; i < n; i++ {
		buf.Data[i] = float64(i % 97)
		want += buf.Data[i]
	}
	st, err := ReduceSum(d, buf, out, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Data[0]-want) > 1e-6 {
		t.Errorf("ReduceSum = %g, want %g", out.Data[0], want)
	}
	if st.AtomicOps != int64(st.Blocks) {
		t.Errorf("atomics = %d, want one per block (%d)", st.AtomicOps, st.Blocks)
	}
	if _, err := ReduceSum(d, buf, out, 100); err == nil {
		t.Error("non-power-of-two block accepted")
	}
	if _, err := ReduceSum(d, buf, d.NewBuffer(0), 256); err == nil {
		t.Error("empty output accepted")
	}
}

func TestBlockScan(t *testing.T) {
	d := devSmall()
	n := 512
	blockSize := 128
	in := d.NewBuffer(n)
	out := d.NewBuffer(n)
	for i := 0; i < n; i++ {
		in.Data[i] = 1
	}
	if _, err := BlockScan(d, in, out, blockSize); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i%blockSize + 1) // per-block inclusive scan of ones
		if out.Data[i] != want {
			t.Fatalf("scan[%d] = %g, want %g", i, out.Data[i], want)
		}
	}
	if _, err := BlockScan(d, in, d.NewBuffer(1), 128); err == nil {
		t.Error("small output accepted")
	}
}

func TestHistogramAtomic(t *testing.T) {
	d := devSmall()
	n, bins := 4096, 8
	vals := d.NewBuffer(n)
	hist := d.NewBuffer(bins)
	for i := 0; i < n; i++ {
		vals.Data[i] = float64(i % bins)
	}
	st, err := HistogramAtomic(d, vals, hist, bins, 256)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < bins; b++ {
		if hist.Data[b] != float64(n/bins) {
			t.Errorf("hist[%d] = %g, want %d", b, hist.Data[b], n/bins)
		}
	}
	if st.AtomicOps != int64(n) {
		t.Errorf("atomics = %d, want %d", st.AtomicOps, n)
	}
	if _, err := HistogramAtomic(d, vals, d.NewBuffer(2), 8, 256); err == nil {
		t.Error("small histogram accepted")
	}
}

func TestDivergencePenalty(t *testing.T) {
	d := devSmall()
	const n = 1024
	uniform, err := DivergentKernel(d, n, 1, 64, 256) // everyone heavy: no divergence
	if err != nil {
		t.Fatal(err)
	}
	divergent, err := DivergentKernel(d, n, 32, 64, 256) // 1 lane per warp heavy
	if err != nil {
		t.Fatal(err)
	}
	if uniform.DivergentBranches != 0 {
		t.Errorf("uniform kernel reports %d divergent branches", uniform.DivergentBranches)
	}
	if divergent.DivergentBranches == 0 {
		t.Error("divergent kernel reports no divergence")
	}
	if divergent.SIMTEfficiency >= uniform.SIMTEfficiency {
		t.Errorf("divergent efficiency %g should be below uniform %g",
			divergent.SIMTEfficiency, uniform.SIMTEfficiency)
	}
	if _, err := DivergentKernel(d, n, 0, 1, 0); err == nil {
		t.Error("zero divisor accepted")
	}
}

func TestLaunchValidation(t *testing.T) {
	d := devSmall()
	if _, err := d.Launch(LaunchConfig{Grid: 0, Block: 32}, func(*Thread) {}); err == nil {
		t.Error("zero grid accepted")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 2048}, func(*Thread) {}); err == nil {
		t.Error("block > 1024 accepted")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, SharedMem: -1}, func(*Thread) {}); err == nil {
		t.Error("negative shared accepted")
	}
	bad := &Device{}
	if _, err := bad.Launch(LaunchConfig{Grid: 1, Block: 1}, func(*Thread) {}); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestKernelOutOfRangeAborts(t *testing.T) {
	d := devSmall()
	buf := d.NewBuffer(4)
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 32}, func(t *Thread) {
		t.Load(buf, 100)
	}); err == nil {
		t.Error("out-of-range load should abort the launch")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 2, SharedMem: 2}, func(t *Thread) {
		t.SharedStore(5, 1)
	}); err == nil {
		t.Error("out-of-range shared store should abort the launch")
	}
}

func TestBankConflicts(t *testing.T) {
	d := devSmall()
	// 32 threads all hitting shared[lane*32 % 1024]: every lane maps to
	// bank 0 with distinct addresses -> 32 serialized passes.
	conflict, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, SharedMem: 1024}, func(t *Thread) {
		t.SharedStore((t.ThreadIdx*32)%1024, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if conflict.BankConflictFactor() < 31 {
		t.Errorf("bank conflict factor = %g, want 32", conflict.BankConflictFactor())
	}
	// Stride-1 access: conflict-free.
	clean, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, SharedMem: 1024}, func(t *Thread) {
		t.SharedStore(t.ThreadIdx, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.BankConflictFactor() != 1 {
		t.Errorf("stride-1 conflict factor = %g, want 1", clean.BankConflictFactor())
	}
	// Broadcast (all lanes read the same address) is also conflict-free.
	broadcast, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, SharedMem: 8}, func(t *Thread) {
		_ = t.SharedLoad(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if broadcast.BankConflictFactor() != 1 {
		t.Errorf("broadcast conflict factor = %g, want 1", broadcast.BankConflictFactor())
	}
}

func TestStreamsOrderAndConcurrency(t *testing.T) {
	d := devSmall()
	s1 := d.NewStream()
	order := make(chan int, 3)
	cfg := LaunchConfig{Grid: 1, Block: 32}
	s1.LaunchAsync(cfg, func(t *Thread) { t.Work(10) }, func(KernelStats) { order <- 1 })
	s1.LaunchAsync(cfg, func(t *Thread) { t.Work(1) }, func(KernelStats) { order <- 2 })
	ev := s1.Record()
	s1.LaunchAsync(cfg, func(t *Thread) {}, func(KernelStats) { order <- 3 })
	if err := s1.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if !ev.Occurred() {
		t.Error("event should have occurred after Synchronize")
	}
	ev.Wait() // must not block
	if a, b, c := <-order, <-order, <-order; a != 1 || b != 2 || c != 3 {
		t.Errorf("stream completion order = %d,%d,%d; want 1,2,3", a, b, c)
	}
	if s1.String() == "" {
		t.Error("Stream.String is empty")
	}
}

func TestStreamErrorPropagates(t *testing.T) {
	d := devSmall()
	s := d.NewStream()
	buf := d.NewBuffer(1)
	s.LaunchAsync(LaunchConfig{Grid: 1, Block: 1}, func(t *Thread) {
		t.Load(buf, 99)
	}, nil)
	if err := s.Synchronize(); err == nil {
		t.Error("stream should surface kernel errors")
	}
}

func TestSyncThreadsCoordination(t *testing.T) {
	d := devSmall()
	// Producer/consumer across the barrier: thread 0 writes, all read.
	out := d.NewBuffer(64)
	_, err := d.Launch(LaunchConfig{Grid: 1, Block: 64, SharedMem: 1}, func(t *Thread) {
		if t.ThreadIdx == 0 {
			t.SharedStore(0, 42)
		}
		t.SyncThreads()
		t.Store(out, t.ThreadIdx, t.SharedLoad(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 42 {
			t.Fatalf("out[%d] = %g, want 42", i, v)
		}
	}
}

func BenchmarkVecAdd(b *testing.B) {
	d := NewDevice()
	n := 1 << 14
	x := d.NewBuffer(n)
	y := d.NewBuffer(n)
	z := d.NewBuffer(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VecAdd(d, x, y, z, 256); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMulTiled(b *testing.B) {
	d := NewDevice()
	n := 64
	x := d.NewBuffer(n * n)
	y := d.NewBuffer(n * n)
	z := d.NewBuffer(n * n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MatMulTiled(d, x, y, z, n, 8); err != nil {
			b.Fatal(err)
		}
	}
}

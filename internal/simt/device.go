// Package simt simulates the single-instruction multiple-thread
// execution model of manycore GPUs — the third part of the LAU dedicated
// course (CUDA C / OpenACC): a device with streaming multiprocessors and
// a fixed warp size, 1D kernel launches over grids of thread blocks,
// per-block shared memory with bank-conflict accounting, global memory
// with coalescing analysis, block barriers (__syncthreads), atomics,
// branch-divergence accounting, and asynchronous streams with events.
//
// Threads execute as goroutines for real concurrency semantics; the
// performance model is computed from per-warp traces: a warp's compute
// cost is the maximum lane instruction count, global accesses are
// grouped by occurrence index into 128-byte transactions, shared-memory
// occurrences are serialized per bank, and a branch occurrence where
// lanes disagree charges a divergence penalty. The model is first-order
// but reproduces the cliffs the labs teach: divergence, uncoalesced
// access, and bank conflicts.
package simt

import (
	"fmt"
	"sync"
)

// Device models a manycore accelerator.
type Device struct {
	// WarpSize is the number of lanes executing in lockstep (32 on
	// every NVIDIA GPU the course uses).
	WarpSize int
	// SMs is the number of streaming multiprocessors; block execution
	// cost is divided by this at the end (perfect SM-level overlap).
	SMs int
	// SegmentBytes is the global-memory transaction size (128 on
	// current GPUs).
	SegmentBytes int
	// Banks is the number of shared-memory banks (32).
	Banks int

	mu      sync.Mutex
	nextBuf uint64
}

// NewDevice returns a device with the classic GPU parameters
// (warp 32, 16 SMs, 128-byte segments, 32 banks).
func NewDevice() *Device {
	return &Device{WarpSize: 32, SMs: 16, SegmentBytes: 128, Banks: 32}
}

// Validate checks device parameters.
func (d *Device) Validate() error {
	if d.WarpSize <= 0 || d.SMs <= 0 || d.SegmentBytes <= 0 || d.Banks <= 0 {
		return fmt.Errorf("simt: invalid device parameters %+v", d)
	}
	return nil
}

// Buffer is a device-global array of float64 with a distinct address
// range so the coalescing model can tell buffers apart.
type Buffer struct {
	base   uint64
	atomMu sync.Mutex // serializes AtomicAdd across all blocks
	Data   []float64
}

// NewBuffer allocates a global-memory buffer of n elements.
func (d *Device) NewBuffer(n int) *Buffer {
	d.mu.Lock()
	defer d.mu.Unlock()
	b := &Buffer{base: d.nextBuf, Data: make([]float64, n)}
	// Space buffers far apart and keep every base segment-aligned (real
	// device allocators align allocations) so coalescing analysis is not
	// skewed by split segments.
	const align = 1 << 20
	d.nextBuf = (d.nextBuf + uint64(n*8) + 2*align) &^ (align - 1)
	return b
}

// FromSlice allocates a buffer initialized with a copy of xs.
func (d *Device) FromSlice(xs []float64) *Buffer {
	b := d.NewBuffer(len(xs))
	copy(b.Data, xs)
	return b
}

// Len returns the element count.
func (b *Buffer) Len() int { return len(b.Data) }

// LaunchConfig is a 1D kernel launch geometry.
type LaunchConfig struct {
	Grid  int // number of blocks
	Block int // threads per block
	// SharedMem is the per-block shared memory size in float64 elements.
	SharedMem int
}

// Validate checks the launch geometry.
func (c LaunchConfig) Validate() error {
	if c.Grid <= 0 || c.Block <= 0 {
		return fmt.Errorf("simt: launch config must have positive grid and block, got %+v", c)
	}
	if c.Block > 1024 {
		return fmt.Errorf("simt: block size %d exceeds the 1024-thread limit", c.Block)
	}
	if c.SharedMem < 0 {
		return fmt.Errorf("simt: negative shared memory size %d", c.SharedMem)
	}
	return nil
}

// Kernel is the per-thread function of a launch.
type Kernel func(t *Thread)

// KernelStats is the performance report of one launch.
type KernelStats struct {
	Blocks int
	Warps  int
	// Instructions is the total lane instructions executed.
	Instructions int64
	// WarpInstructionSlots is the sum over warps of the maximum lane
	// instruction count: what the lockstep hardware actually issues.
	WarpInstructionSlots int64
	// SIMTEfficiency is Instructions / (WarpSize*WarpInstructionSlots).
	SIMTEfficiency float64
	// GlobalTransactions is the number of memory segments moved.
	GlobalTransactions int64
	// IdealTransactions is the minimum possible for the same access
	// counts (perfectly coalesced).
	IdealTransactions int64
	// SharedPasses counts serialized shared-memory passes; equal to
	// shared access occurrences when conflict-free.
	SharedPasses int64
	// SharedOccurrences is the number of warp-level shared accesses.
	SharedOccurrences int64
	// DivergentBranches counts branch occurrences where a warp's lanes
	// disagreed.
	DivergentBranches int64
	// BranchOccurrences counts all warp-level branch decisions.
	BranchOccurrences int64
	// AtomicOps counts atomic read-modify-writes.
	AtomicOps int64
	// EstimatedCycles is the first-order cost:
	// (slots + 4*transactions + sharedPasses + 8*divergent) / SMs.
	EstimatedCycles int64
}

// CoalescingEfficiency is IdealTransactions / GlobalTransactions (1.0 is
// perfectly coalesced).
func (s KernelStats) CoalescingEfficiency() float64 {
	if s.GlobalTransactions == 0 {
		return 1
	}
	return float64(s.IdealTransactions) / float64(s.GlobalTransactions)
}

// BankConflictFactor is SharedPasses / SharedOccurrences (1.0 is
// conflict-free).
func (s KernelStats) BankConflictFactor() float64 {
	if s.SharedOccurrences == 0 {
		return 1
	}
	return float64(s.SharedPasses) / float64(s.SharedOccurrences)
}

// Launch runs the kernel synchronously over the grid and returns its
// performance statistics.
func (d *Device) Launch(cfg LaunchConfig, k Kernel) (KernelStats, error) {
	if err := d.Validate(); err != nil {
		return KernelStats{}, err
	}
	if err := cfg.Validate(); err != nil {
		return KernelStats{}, err
	}
	stats := KernelStats{Blocks: cfg.Grid}
	var mu sync.Mutex

	// Run blocks with one worker per SM (real concurrency, bounded).
	sem := make(chan struct{}, d.SMs)
	var wg sync.WaitGroup
	errCh := make(chan error, 1)
	for b := 0; b < cfg.Grid; b++ {
		b := b
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			bs, err := d.runBlock(cfg, k, b)
			if err != nil {
				select {
				case errCh <- err:
				default:
				}
				return
			}
			mu.Lock()
			stats.merge(bs)
			mu.Unlock()
		}()
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return KernelStats{}, err
	default:
	}
	if stats.WarpInstructionSlots > 0 {
		stats.SIMTEfficiency = float64(stats.Instructions) /
			(float64(d.WarpSize) * float64(stats.WarpInstructionSlots))
	}
	raw := stats.WarpInstructionSlots + 4*stats.GlobalTransactions +
		stats.SharedPasses + 8*stats.DivergentBranches
	stats.EstimatedCycles = (raw + int64(d.SMs) - 1) / int64(d.SMs)
	return stats, nil
}

// merge folds a block's stats into the kernel totals.
func (s *KernelStats) merge(b KernelStats) {
	s.Warps += b.Warps
	s.Instructions += b.Instructions
	s.WarpInstructionSlots += b.WarpInstructionSlots
	s.GlobalTransactions += b.GlobalTransactions
	s.IdealTransactions += b.IdealTransactions
	s.SharedPasses += b.SharedPasses
	s.SharedOccurrences += b.SharedOccurrences
	s.DivergentBranches += b.DivergentBranches
	s.BranchOccurrences += b.BranchOccurrences
	s.AtomicOps += b.AtomicOps
}

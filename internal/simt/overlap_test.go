package simt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateOverlapBalanced(t *testing.T) {
	// Equal stages: speedup approaches 3x with many chunks.
	est, err := EstimateOverlap(100, 10, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if est.Serial != 3000 {
		t.Errorf("serial = %d, want 3000", est.Serial)
	}
	if est.Pipelined != 30+99*10 {
		t.Errorf("pipelined = %d, want 1020", est.Pipelined)
	}
	if est.Speedup < 2.9 {
		t.Errorf("speedup = %g, want ~2.94", est.Speedup)
	}
}

func TestEstimateOverlapKernelBound(t *testing.T) {
	// Kernel dominates: overlap hides the copies almost entirely.
	est, err := EstimateOverlap(50, 2, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantPipe := int64(24 + 49*20)
	if est.Pipelined != wantPipe {
		t.Errorf("pipelined = %d, want %d", est.Pipelined, wantPipe)
	}
	if est.Speedup < 1.15 {
		t.Errorf("speedup = %g, want > 1.15", est.Speedup)
	}
}

func TestEstimateOverlapSingleChunk(t *testing.T) {
	est, err := EstimateOverlap(1, 5, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if est.Serial != est.Pipelined || est.Speedup != 1 {
		t.Errorf("single chunk cannot overlap: %+v", est)
	}
}

func TestEstimateOverlapValidation(t *testing.T) {
	if _, err := EstimateOverlap(0, 1, 1, 1); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := EstimateOverlap(2, -1, 1, 1); err == nil {
		t.Error("negative cost accepted")
	}
}

// Property: pipelining never loses and never beats the 3x engine bound.
func TestOverlapBoundsProperty(t *testing.T) {
	f := func(chunksRaw, aRaw, bRaw, cRaw uint8) bool {
		chunks := int(chunksRaw%64) + 1
		a, b, c := int64(aRaw), int64(bRaw), int64(cRaw)
		est, err := EstimateOverlap(chunks, a, b, c)
		if err != nil {
			return false
		}
		if est.Pipelined > est.Serial {
			return false
		}
		if est.Serial > 0 && est.Speedup > 3.0+1e-9 {
			return false
		}
		return !math.IsNaN(est.Speedup)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package simt

import "fmt"

// OverlapEstimate models the copy/compute overlap lesson of the
// "concurrent streams" unit: a workload split into `chunks` pieces, each
// needing copyIn, kernel and copyOut cycles. With one stream everything
// serializes; with pipelined streams the engines overlap and steady-state
// throughput is limited by the slowest engine.
type OverlapEstimate struct {
	Serial    int64
	Pipelined int64
	Speedup   float64
}

// EstimateOverlap computes the two totals. Pipelined time is the classic
// software-pipeline bound: fill (copyIn + kernel) + chunks×bottleneck +
// drain (copyOut), with the bottleneck being the slowest of the three
// engines.
func EstimateOverlap(chunks int, copyIn, kernel, copyOut int64) (OverlapEstimate, error) {
	if chunks <= 0 {
		return OverlapEstimate{}, fmt.Errorf("simt: chunks must be positive, got %d", chunks)
	}
	if copyIn < 0 || kernel < 0 || copyOut < 0 {
		return OverlapEstimate{}, fmt.Errorf("simt: stage costs must be non-negative")
	}
	per := copyIn + kernel + copyOut
	serial := int64(chunks) * per
	bottleneck := copyIn
	if kernel > bottleneck {
		bottleneck = kernel
	}
	if copyOut > bottleneck {
		bottleneck = copyOut
	}
	pipelined := copyIn + kernel + copyOut + int64(chunks-1)*bottleneck
	est := OverlapEstimate{Serial: serial, Pipelined: pipelined}
	if pipelined > 0 {
		est.Speedup = float64(serial) / float64(pipelined)
	}
	return est, nil
}

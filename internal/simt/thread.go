package simt

import (
	"fmt"
	"sync"
)

// laneTrace records one lane's observable behaviour for the warp-level
// performance model.
type laneTrace struct {
	instrs       int64
	globalAddrs  []uint64 // by occurrence index
	sharedIdxs   []int    // by occurrence index
	branches     []bool   // by occurrence index
	participated bool
}

// blockState is the shared state of one executing thread block.
type blockState struct {
	dev    *Device
	cfg    LaunchConfig
	shared []float64
	shMu   sync.Mutex // guards shared for racy student kernels

	barrier     *blockBarrier
	traces      []laneTrace // indexed by thread index
	atomicCount int64
	err         error
	errOnce     sync.Once
}

// blockBarrier is a reusable barrier for the block's goroutines.
type blockBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	gen     uint64
}

func newBlockBarrier(parties int) *blockBarrier {
	b := &blockBarrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *blockBarrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.parties {
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Thread is the per-thread kernel context (CUDA's threadIdx/blockIdx
// plus the instrumented memory and control APIs).
type Thread struct {
	BlockIdx  int
	ThreadIdx int
	BlockDim  int
	GridDim   int

	bs    *blockState
	trace *laneTrace
}

// GlobalID returns blockIdx*blockDim + threadIdx.
func (t *Thread) GlobalID() int { return t.BlockIdx*t.BlockDim + t.ThreadIdx }

// fail aborts the launch with an error (out-of-range access etc.).
func (t *Thread) fail(err error) {
	t.bs.errOnce.Do(func() { t.bs.err = err })
	panic(err)
}

// Load reads buf[i] from global memory.
func (t *Thread) Load(buf *Buffer, i int) float64 {
	if i < 0 || i >= len(buf.Data) {
		t.fail(fmt.Errorf("simt: global load index %d out of range [0,%d)", i, len(buf.Data)))
	}
	t.trace.instrs++
	t.trace.globalAddrs = append(t.trace.globalAddrs, buf.base+uint64(i)*8)
	return buf.Data[i]
}

// Store writes buf[i] in global memory.
func (t *Thread) Store(buf *Buffer, i int, v float64) {
	if i < 0 || i >= len(buf.Data) {
		t.fail(fmt.Errorf("simt: global store index %d out of range [0,%d)", i, len(buf.Data)))
	}
	t.trace.instrs++
	t.trace.globalAddrs = append(t.trace.globalAddrs, buf.base+uint64(i)*8)
	buf.Data[i] = v
}

// AtomicAdd atomically adds v to buf[i] and returns the old value.
func (t *Thread) AtomicAdd(buf *Buffer, i int, v float64) float64 {
	if i < 0 || i >= len(buf.Data) {
		t.fail(fmt.Errorf("simt: atomic index %d out of range [0,%d)", i, len(buf.Data)))
	}
	t.trace.instrs++
	t.trace.globalAddrs = append(t.trace.globalAddrs, buf.base+uint64(i)*8)
	buf.atomMu.Lock()
	old := buf.Data[i]
	buf.Data[i] += v
	buf.atomMu.Unlock()
	t.bs.shMu.Lock()
	t.bs.atomicCount++
	t.bs.shMu.Unlock()
	return old
}

// SharedLoad reads the block's shared memory at index i.
func (t *Thread) SharedLoad(i int) float64 {
	if i < 0 || i >= len(t.bs.shared) {
		t.fail(fmt.Errorf("simt: shared load index %d out of range [0,%d)", i, len(t.bs.shared)))
	}
	t.trace.instrs++
	t.trace.sharedIdxs = append(t.trace.sharedIdxs, i)
	t.bs.shMu.Lock()
	v := t.bs.shared[i]
	t.bs.shMu.Unlock()
	return v
}

// SharedStore writes the block's shared memory at index i.
func (t *Thread) SharedStore(i int, v float64) {
	if i < 0 || i >= len(t.bs.shared) {
		t.fail(fmt.Errorf("simt: shared store index %d out of range [0,%d)", i, len(t.bs.shared)))
	}
	t.trace.instrs++
	t.trace.sharedIdxs = append(t.trace.sharedIdxs, i)
	t.bs.shMu.Lock()
	t.bs.shared[i] = v
	t.bs.shMu.Unlock()
}

// SyncThreads is the block barrier (__syncthreads). Every thread of the
// block must reach it or the block deadlocks, exactly as on hardware.
func (t *Thread) SyncThreads() {
	t.trace.instrs++
	t.bs.barrier.await()
}

// Branch records a branch decision for divergence accounting and
// returns cond unchanged, so kernels write:
//
//	if t.Branch(t.GlobalID()%2 == 0) { ... }
func (t *Thread) Branch(cond bool) bool {
	t.trace.instrs++
	t.trace.branches = append(t.trace.branches, cond)
	return cond
}

// Work charges n arithmetic instructions to the lane.
func (t *Thread) Work(n int) {
	if n > 0 {
		t.trace.instrs += int64(n)
	}
}

// runBlock executes one block: a goroutine per thread with a block
// barrier, then folds the lane traces into block-level statistics.
func (d *Device) runBlock(cfg LaunchConfig, k Kernel, blockIdx int) (KernelStats, error) {
	bs := &blockState{
		dev:     d,
		cfg:     cfg,
		shared:  make([]float64, cfg.SharedMem),
		barrier: newBlockBarrier(cfg.Block),
		traces:  make([]laneTrace, cfg.Block),
	}
	var wg sync.WaitGroup
	for ti := 0; ti < cfg.Block; ti++ {
		ti := ti
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					bs.errOnce.Do(func() {
						bs.err = fmt.Errorf("simt: kernel panic in block %d thread %d: %v", blockIdx, ti, r)
					})
					// Release any threads stuck at the barrier.
					bs.barrier.mu.Lock()
					bs.barrier.parties--
					if bs.barrier.waiting >= bs.barrier.parties && bs.barrier.parties > 0 {
						bs.barrier.waiting = 0
						bs.barrier.gen++
						bs.barrier.cond.Broadcast()
					}
					bs.barrier.mu.Unlock()
				}
			}()
			th := &Thread{
				BlockIdx: blockIdx, ThreadIdx: ti,
				BlockDim: cfg.Block, GridDim: cfg.Grid,
				bs: bs, trace: &bs.traces[ti],
			}
			th.trace.participated = true
			k(th)
		}()
	}
	wg.Wait()
	if bs.err != nil {
		return KernelStats{}, bs.err
	}
	return d.analyzeBlock(bs), nil
}

// analyzeBlock computes warp-level statistics from the lane traces.
func (d *Device) analyzeBlock(bs *blockState) KernelStats {
	var st KernelStats
	st.AtomicOps = bs.atomicCount
	for lo := 0; lo < len(bs.traces); lo += d.WarpSize {
		hi := lo + d.WarpSize
		if hi > len(bs.traces) {
			hi = len(bs.traces)
		}
		lanes := bs.traces[lo:hi]
		st.Warps++

		// Compute slots: lockstep warp issues max-lane instructions.
		var maxInstr, sumInstr int64
		for i := range lanes {
			sumInstr += lanes[i].instrs
			if lanes[i].instrs > maxInstr {
				maxInstr = lanes[i].instrs
			}
		}
		st.Instructions += sumInstr
		st.WarpInstructionSlots += maxInstr

		// Global coalescing: group the k-th global access of each lane
		// into one warp-level occurrence; count distinct segments.
		maxG := 0
		for i := range lanes {
			if len(lanes[i].globalAddrs) > maxG {
				maxG = len(lanes[i].globalAddrs)
			}
		}
		seg := uint64(d.SegmentBytes)
		for k := 0; k < maxG; k++ {
			segs := map[uint64]bool{}
			active := 0
			for i := range lanes {
				if k < len(lanes[i].globalAddrs) {
					segs[lanes[i].globalAddrs[k]/seg] = true
					active++
				}
			}
			st.GlobalTransactions += int64(len(segs))
			ideal := (int64(active)*8 + int64(seg) - 1) / int64(seg)
			if ideal < 1 {
				ideal = 1
			}
			st.IdealTransactions += ideal
		}

		// Shared-memory bank conflicts per occurrence.
		maxS := 0
		for i := range lanes {
			if len(lanes[i].sharedIdxs) > maxS {
				maxS = len(lanes[i].sharedIdxs)
			}
		}
		for k := 0; k < maxS; k++ {
			bankAddrs := map[int]map[int]bool{}
			for i := range lanes {
				if k < len(lanes[i].sharedIdxs) {
					idx := lanes[i].sharedIdxs[k]
					bank := idx % d.Banks
					if bankAddrs[bank] == nil {
						bankAddrs[bank] = map[int]bool{}
					}
					bankAddrs[bank][idx] = true
				}
			}
			passes := 1
			for _, addrs := range bankAddrs {
				if len(addrs) > passes {
					passes = len(addrs) // distinct addresses serialize
				}
			}
			st.SharedPasses += int64(passes)
			st.SharedOccurrences++
		}

		// Branch divergence per occurrence.
		maxB := 0
		for i := range lanes {
			if len(lanes[i].branches) > maxB {
				maxB = len(lanes[i].branches)
			}
		}
		for k := 0; k < maxB; k++ {
			hasTrue, hasFalse := false, false
			for i := range lanes {
				if k < len(lanes[i].branches) {
					if lanes[i].branches[k] {
						hasTrue = true
					} else {
						hasFalse = true
					}
				}
			}
			st.BranchOccurrences++
			if hasTrue && hasFalse {
				st.DivergentBranches++
			}
		}
	}
	return st
}

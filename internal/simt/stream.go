package simt

import (
	"fmt"
	"sync"
)

// Stream is an in-order asynchronous launch queue, the CUDA streams
// abstraction from the "advanced memory management ... concurrent
// streams" part of the LAU course. Launches on one stream run in order;
// different streams run concurrently.
type Stream struct {
	dev  *Device
	mu   sync.Mutex
	last chan struct{} // completion of the most recent enqueued op
	errs []error
}

// NewStream creates an idle stream on the device.
func (d *Device) NewStream() *Stream {
	done := make(chan struct{})
	close(done)
	return &Stream{dev: d, last: done}
}

// LaunchAsync enqueues a kernel; it returns immediately. Completion
// order within the stream follows enqueue order.
func (s *Stream) LaunchAsync(cfg LaunchConfig, k Kernel, onDone func(KernelStats)) {
	s.mu.Lock()
	prev := s.last
	done := make(chan struct{})
	s.last = done
	s.mu.Unlock()
	go func() {
		defer close(done)
		<-prev
		st, err := s.dev.Launch(cfg, k)
		if err != nil {
			s.mu.Lock()
			s.errs = append(s.errs, err)
			s.mu.Unlock()
			return
		}
		if onDone != nil {
			onDone(st)
		}
	}()
}

// Synchronize blocks until every enqueued launch has completed and
// returns the first error, if any.
func (s *Stream) Synchronize() error {
	s.mu.Lock()
	last := s.last
	s.mu.Unlock()
	<-last
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.errs) > 0 {
		return s.errs[0]
	}
	return nil
}

// Event marks a point in a stream that other code can wait on.
type Event struct {
	ch chan struct{}
}

// Record inserts an event into the stream at the current tail.
func (s *Stream) Record() *Event {
	ev := &Event{ch: make(chan struct{})}
	s.mu.Lock()
	prev := s.last
	done := make(chan struct{})
	s.last = done
	s.mu.Unlock()
	go func() {
		<-prev
		close(ev.ch)
		close(done)
	}()
	return ev
}

// Wait blocks until the event has occurred.
func (e *Event) Wait() { <-e.ch }

// Occurred reports whether the event has fired without blocking.
func (e *Event) Occurred() bool {
	select {
	case <-e.ch:
		return true
	default:
		return false
	}
}

// String describes the stream state for debugging.
func (s *Stream) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("simt.Stream{pendingErr=%d}", len(s.errs))
}

package obs

import (
	"runtime"
	"sync/atomic"
	"time"
	"unsafe"
)

// stripe is one cell of a striped counter, padded out to its own
// 128-byte span (two 64-byte lines: the adjacent-line prefetcher pulls
// pairs) so two cores hammering neighboring stripes never false-share.
type stripe struct {
	n atomic.Uint64
	_ [120]byte
}

// Counter is a monotonic event count, safe for any number of
// concurrent writers. Increments are striped across
// cache-line-padded cells — one per CPU, roughly — so parallel writers
// on different cores each own a line instead of bouncing one hot
// atomic between caches. Reads fold the stripes, which makes Value a
// little more expensive than a single load; counters are written
// millions of times and read once a scrape, so that is the right
// trade.
//
// The zero value is NOT usable; create counters with NewCounter or
// Registry.Counter.
type Counter struct {
	stripes []stripe
	mask    uint32
}

// counterStripes is the stripe count: GOMAXPROCS at package init,
// rounded up to a power of two (so picking a stripe is a mask, not a
// mod), capped to keep a counter's footprint bounded on huge machines.
var counterStripes = func() uint32 {
	n := runtime.GOMAXPROCS(0)
	pow := 1
	for pow < n {
		pow <<= 1
	}
	if pow > 64 {
		pow = 64
	}
	return uint32(pow)
}()

// NewCounter creates a standalone counter. Register it under a name
// with Registry.RegisterCounter when it should appear in snapshots;
// unregistered counters (e.g. one per storage engine, read through the
// engine's own accessor) work identically.
func NewCounter() *Counter {
	return &Counter{stripes: make([]stripe, counterStripes), mask: counterStripes - 1}
}

// stripeIdx picks the calling goroutine's stripe. Go does not expose
// the current CPU, so the next-best cheap discriminator is the
// goroutine's stack: the address of a local spreads goroutines across
// stripes (each goroutine's stack is its own allocation) for the cost
// of a hash, no syscall, no allocation. Two goroutines may collide on
// a stripe — that is contention, not corruption.
func stripeIdx() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32(uint64(p>>6) * 0x9E3779B97F4A7C15 >> 56)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. When recording is disabled it is a load and a branch.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.stripes[stripeIdx()&c.mask].n.Add(n)
}

// Value folds the stripes into the total. Concurrent with writers it
// is a lower bound of "now" and an upper bound of "when the fold
// started" — exactly what a monotonic counter scrape needs.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.stripes {
		sum += c.stripes[i].n.Load()
	}
	return sum
}

// StartTimer returns the wall clock when recording is enabled and the
// zero Time when it is not — the convention Histogram.ObserveSince
// understands, so timing an operation is two lines that cost nothing
// when metrics are off:
//
//	start := obs.StartTimer()
//	defer latencyHist.ObserveSince(start)
func StartTimer() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Package obs is the repo's dependency-free metrics substrate: the
// single place every layer — the csnet wire protocol, the dist
// coordinator, SWIM membership, the storage engines — reports what it
// is doing, and the single place an operator (or a remote coordinator,
// via the csnet OpStats op) asks.
//
// Three metric kinds ship, all built on plain atomics with a hard
// hot-path contract: an increment costs a handful of nanoseconds and
// zero allocations, enabled or disabled, so instrumentation can live
// on the hottest paths in the system without showing up in their
// benchmarks (bench E29 pins this).
//
//   - Counter: a monotonic count, striped across cache-line-padded
//     per-CPU-ish cells so concurrent writers on different cores do
//     not bounce one cache line (the false-sharing trap
//     internal/arch/falsesharing.go teaches). Value() folds the
//     stripes.
//   - Gauge: a point-in-time level — queue depth, entry count — with
//     Set/Add/SetMax. A gauge is one padded atomic, not striped:
//     last-writer-wins Set semantics do not distribute over stripes.
//   - Histogram: a log-bucketed latency/size distribution, HDR-style:
//     fixed power-of-two major buckets refined by 2^3 sub-buckets
//     (worst-case relative error 1/8 per recorded value), atomic
//     increments, and snapshots that merge associatively — what lets a
//     coordinator add up per-node histograms into cluster-wide
//     percentiles without ever shipping raw samples.
//
// A Registry names metrics ("csnet.server.op_latency.SETV") and
// produces point-in-time Snapshots that render as text (the /metrics
// page), encode to a compact binary frame (the OpStats wire body), and
// merge (dist.Cluster.ClusterStats). The process-global Default
// registry is where the built-in instrumentation registers itself.
//
// Metrics are created once — usually in a package init — and held by
// pointer at the call site, so the hot path never touches the registry
// map: recording is a load of the enabled flag plus one or a few
// atomic adds.
package obs

import "sync/atomic"

// enabled gates every mutator. Default on: the contract is that
// recording is too cheap to need turning off, and SetEnabled(false)
// exists chiefly so the overhead benchmarks can measure a true
// baseline (and so an operator can prove instrumentation is free on
// their workload).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns all metric recording on or off process-wide.
// Disabled metrics keep their accumulated values; they just stop
// moving. Timers started while enabled still record (the StartTimer
// zero-Time convention gates on the state at start).
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is on. Instrumentation that
// must pay a real cost to produce a sample — a time.Now() pair around
// an operation — checks it first so the disabled path skips the clock
// reads too.
func Enabled() bool { return enabled.Load() }

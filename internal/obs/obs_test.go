package obs

import (
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if v := c.Value(); v != 0 {
		t.Fatalf("fresh counter = %d, want 0", v)
	}
	c.Inc()
	c.Add(41)
	if v := c.Value(); v != 42 {
		t.Fatalf("after Inc+Add(41) = %d, want 42", v)
	}
}

func TestCounterDisabledFreezes(t *testing.T) {
	defer SetEnabled(true)
	c := NewCounter()
	c.Add(5)
	SetEnabled(false)
	c.Add(100)
	if v := c.Value(); v != 5 {
		t.Fatalf("disabled counter moved: %d, want 5", v)
	}
	SetEnabled(true)
	c.Inc()
	if v := c.Value(); v != 6 {
		t.Fatalf("re-enabled counter = %d, want 6", v)
	}
}

func TestGauge(t *testing.T) {
	g := NewGauge()
	g.Set(7)
	g.Add(-3)
	if v := g.Value(); v != 4 {
		t.Fatalf("gauge = %d, want 4", v)
	}
	g.SetMax(10)
	g.SetMax(2) // lower than current: no effect
	if v := g.Value(); v != 10 {
		t.Fatalf("after SetMax = %d, want 10", v)
	}
}

func TestStartTimerDisabled(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	if !StartTimer().IsZero() {
		t.Fatal("StartTimer while disabled should be the zero Time")
	}
	h := NewHistogram()
	h.ObserveSince(time.Time{}) // must be a no-op, not a giant sample
	SetEnabled(true)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("zero-Time ObserveSince recorded %d samples", s.Count)
	}
}

// TestBucketRoundTrip pins the histogram geometry: every value maps to
// a bucket whose bounds contain it, with relative width <= 1/8.
func TestBucketRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1<<63 + 999}
	for _, v := range vals {
		idx := bucketIdx(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d mapped to bucket %d [%d, %d]", v, idx, lo, hi)
		}
		if width := hi - lo; v >= histSubBuckets && width > v/histSubBuckets+1 {
			t.Fatalf("bucket %d width %d too coarse for value %d", idx, width, v)
		}
	}
	// Bucket indexes are monotone in the value.
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	if got := bucketIdx(^uint64(0)); got != histBuckets-1 {
		t.Fatalf("max uint64 in bucket %d, want last bucket %d", got, histBuckets-1)
	}
}

// TestHistogramPercentileAccuracy checks Quantile against a sorted-
// slice reference: for log-bucketed storage the reported quantile must
// be within the bucket's 12.5% relative error of the true one (plus
// the max clamp, which can only tighten it).
func TestHistogramPercentileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	h := NewHistogram()
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// A latency-shaped distribution: lognormal-ish body, heavy tail.
		v := int64(500 * (1 + rng.ExpFloat64()*10))
		if rng.Intn(100) == 0 {
			v *= 50 // tail spikes
		}
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	snap := h.Snapshot()
	if snap.Count != uint64(len(samples)) {
		t.Fatalf("count %d, want %d", snap.Count, len(samples))
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		rank := int(q*float64(len(samples))) - 1
		if rank < 0 {
			rank = 0
		}
		truth := uint64(samples[rank])
		got := snap.Quantile(q)
		// The bucket containing the true quantile spans at most 12.5%
		// relative width; allow a little slack for rank-vs-ceil edges.
		lo, hi := truth-truth/6, truth+truth/6
		if got < lo || got > hi {
			t.Errorf("q%.3f = %d, true %d (allowed [%d, %d])", q, got, truth, lo, hi)
		}
	}
	if max := snap.Quantile(1); max != snap.Max {
		t.Errorf("Quantile(1) = %d, want Max %d", max, snap.Max)
	}
}

// TestConcurrentHammer drives every metric kind from many goroutines
// at once — the -race run proves the lock-free paths are actually
// safe, and the totals prove no increment was lost.
func TestConcurrentHammer(t *testing.T) {
	const goroutines = 16
	const perG = 5000
	c := NewCounter()
	g := NewGauge()
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.SetMax(int64(id*perG + j))
				h.Observe(int64(j))
				if j%100 == 0 {
					_ = c.Value()
					_ = h.Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()
	if v := c.Value(); v != goroutines*perG {
		t.Fatalf("counter = %d, want %d", v, goroutines*perG)
	}
	if v := g.Value(); v < goroutines*perG {
		t.Fatalf("gauge = %d, want >= %d (Adds plus SetMax floor)", v, goroutines*perG)
	}
	snap := h.Snapshot()
	if snap.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", snap.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, b := range snap.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != snap.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, snap.Count)
	}
}

// randomSnapshot builds an arbitrary snapshot for the merge property
// test: a few metrics drawn from a small shared name pool so merges
// actually collide.
func randomSnapshot(rng *rand.Rand) Snapshot {
	names := []string{"a.count", "b.gauge", "c.lat", "d.count", "e.lat"}
	var s Snapshot
	for _, name := range names {
		if rng.Intn(3) == 0 {
			continue // present in some snapshots only
		}
		switch {
		case strings.HasSuffix(name, ".count"):
			s.Metrics = append(s.Metrics, MetricSnapshot{Name: name, Kind: KindCounter, Value: int64(rng.Intn(1000))})
		case strings.HasSuffix(name, ".gauge"):
			s.Metrics = append(s.Metrics, MetricSnapshot{Name: name, Kind: KindGauge, Value: int64(rng.Intn(1000)) - 500})
		default:
			h := NewHistogram()
			for i, n := 0, rng.Intn(50); i < n; i++ {
				h.Observe(int64(rng.Intn(1 << 16)))
			}
			hs := h.Snapshot()
			s.Metrics = append(s.Metrics, MetricSnapshot{Name: name, Kind: KindHistogram, Hist: &hs})
		}
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// TestMergeAssociativeCommutative is the property ClusterStats leans
// on: folding node snapshots in any grouping and order yields the same
// cluster totals.
func TestMergeAssociativeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randomSnapshot(rng), randomSnapshot(rng), randomSnapshot(rng)
		left := a.Merge(b).Merge(c)
		right := a.Merge(b.Merge(c))
		swapped := c.Merge(b).Merge(a)
		if ls, rs := left.String(), right.String(); ls != rs {
			t.Fatalf("trial %d: (a+b)+c != a+(b+c):\n%s\nvs\n%s", trial, ls, rs)
		}
		if ls, ss := left.String(), swapped.String(); ls != ss {
			t.Fatalf("trial %d: merge not commutative:\n%s\nvs\n%s", trial, ls, ss)
		}
	}
}

// TestMergeIdentity: merging with an empty snapshot changes nothing.
func TestMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := randomSnapshot(rng)
	if got := s.Merge(Snapshot{}).String(); got != s.String() {
		t.Fatalf("merge with empty changed the snapshot:\n%s\nvs\n%s", got, s.String())
	}
	if got := (Snapshot{}).Merge(s).String(); got != s.String() {
		t.Fatalf("empty.Merge(s) changed the snapshot:\n%s\nvs\n%s", got, s.String())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		s := randomSnapshot(rng)
		dec, err := DecodeSnapshot(s.Encode())
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if got, want := dec.String(), s.String(); got != want {
			t.Fatalf("trial %d: round trip changed snapshot:\n%s\nvs\n%s", trial, got, want)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	h := NewHistogram()
	h.Observe(123)
	hs := h.Snapshot()
	good := Snapshot{Metrics: []MetricSnapshot{
		{Name: "x.count", Kind: KindCounter, Value: 9},
		{Name: "x.lat", Kind: KindHistogram, Hist: &hs},
	}}.Encode()
	cases := map[string][]byte{
		"empty":          {},
		"bad version":    {99, 0, 0, 0, 0},
		"truncated":      good[:len(good)-3],
		"trailing bytes": append(append([]byte{}, good...), 1, 2, 3),
		"huge count":     {snapshotVersion, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	for name, b := range cases {
		if _, err := DecodeSnapshot(b); err == nil {
			t.Errorf("%s: decode accepted malformed input", name)
		}
	}
	if _, err := DecodeSnapshot(good); err != nil {
		t.Fatalf("control: good frame rejected: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	if r.Counter("reqs") != c {
		t.Fatal("Counter not idempotent")
	}
	c.Add(3)
	r.Gauge("depth").Set(-2)
	r.Histogram("lat").Observe(1000)
	r.Func("fn", func() int64 { return 77 })
	adopted := NewCounter()
	adopted.Add(5)
	r.RegisterCounter("adopted", adopted)

	snap := r.Snapshot()
	names := make([]string, len(snap.Metrics))
	for i, m := range snap.Metrics {
		names[i] = m.Name
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	check := func(name string, want int64) {
		t.Helper()
		m, ok := snap.Get(name)
		if !ok || m.Value != want {
			t.Fatalf("%s = %+v (ok=%v), want %d", name, m, ok, want)
		}
	}
	check("reqs", 3)
	check("depth", -2)
	check("fn", 77)
	check("adopted", 5)
	if m, ok := snap.Get("lat"); !ok || m.Hist == nil || m.Hist.Count != 1 {
		t.Fatalf("lat = %+v (ok=%v), want histogram with 1 sample", m, ok)
	}
	if _, ok := snap.Get("absent"); ok {
		t.Fatal("Get found an absent metric")
	}

	// Kind mismatches panic; Func re-registration does not.
	mustPanic := func(fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		fn()
	}
	mustPanic(func() { r.Gauge("reqs") })
	mustPanic(func() { r.Histogram("reqs") })
	mustPanic(func() { r.RegisterCounter("reqs", NewCounter()) })
	mustPanic(func() { r.Func("reqs", func() int64 { return 0 }) })
	r.Func("fn", func() int64 { return 88 }) // last wins, no panic
	if m, _ := r.Snapshot().Get("fn"); m.Value != 88 {
		t.Fatalf("re-registered func gauge = %d, want 88", m.Value)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h").Observe(int64(j))
				if j%50 == 0 {
					_ = r.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if m, _ := r.Snapshot().Get("shared"); m.Value != 8000 {
		t.Fatalf("shared counter = %d, want 8000", m.Value)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(12)
	r.Histogram("lat").Observe(1000)
	text := r.Snapshot().String()
	if !strings.Contains(text, "hits 12\n") {
		t.Errorf("missing counter line:\n%s", text)
	}
	if !strings.Contains(text, "lat count=1 p50=") {
		t.Errorf("missing histogram line:\n%s", text)
	}
}

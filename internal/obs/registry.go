package obs

import (
	"fmt"
	"sort"
	"sync"
)

// entry is one registered metric: exactly one of the typed fields is
// set, per kind.
type entry struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() int64
}

// Registry names metrics and produces mergeable Snapshots. Lookups are
// get-or-create and guarded by a mutex, which is fine because the hot
// path never goes through the registry: callers resolve their metric
// pointers once (package init, constructor) and record through them
// directly. Registering two different kinds under one name is a
// programming error and panics.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]entry
}

// NewRegistry creates an empty registry. Most code uses Default; a
// private registry is for tests that need isolation from the global
// instrumentation.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]entry)}
}

// defaultRegistry is the process-global registry the built-in
// instrumentation registers into.
var defaultRegistry = NewRegistry()

// Default returns the process-global registry.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use. Panics if name is registered as another kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != KindCounter || e.c == nil {
			panic(fmt.Sprintf("obs: metric %q is a %s, not a counter", name, e.kind))
		}
		return e.c
	}
	c := NewCounter()
	r.metrics[name] = entry{kind: KindCounter, c: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Panics if name is registered as another kind.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != KindGauge || e.g == nil {
			panic(fmt.Sprintf("obs: metric %q is a %s, not a gauge", name, e.kind))
		}
		return e.g
	}
	g := NewGauge()
	r.metrics[name] = entry{kind: KindGauge, g: g}
	return g
}

// Histogram returns the histogram registered under name, creating it
// on first use. Panics if name is registered as another kind.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok {
		if e.kind != KindHistogram || e.h == nil {
			panic(fmt.Sprintf("obs: metric %q is a %s, not a histogram", name, e.kind))
		}
		return e.h
	}
	h := NewHistogram()
	r.metrics[name] = entry{kind: KindHistogram, h: h}
	return h
}

// RegisterCounter adopts an externally owned counter under name — for
// counters that predate the registry or are also read through their
// owner's accessor (the store engines' Merkle rebuild counts). Panics
// if name is already registered.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		panic(fmt.Sprintf("obs: metric %q already registered", name))
	}
	r.metrics[name] = entry{kind: KindCounter, c: c}
}

// Func registers a function gauge: fn is called at snapshot time and
// its result reported under name as a gauge. Re-registering the same
// name replaces the function (last wins) — deliberately lenient so
// multi-node tests in one process can each point "store.entries" at
// their own engine without panicking; everything else is strict.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[name]; ok && e.fn == nil {
		panic(fmt.Sprintf("obs: metric %q is a %s, not a func gauge", name, e.kind))
	}
	r.metrics[name] = entry{kind: KindGauge, fn: fn}
}

// Snapshot captures every registered metric's current value, sorted by
// name. Func gauges are invoked here, outside the registry lock's
// critical path concern but inside the lock (snapshots are rare and
// func gauges are cheap reads by contract).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Metrics: make([]MetricSnapshot, 0, len(r.metrics))}
	for name, e := range r.metrics {
		m := MetricSnapshot{Name: name, Kind: e.kind}
		switch {
		case e.c != nil:
			m.Value = int64(e.c.Value())
		case e.g != nil:
			m.Value = e.g.Value()
		case e.h != nil:
			h := e.h.Snapshot()
			m.Hist = &h
		case e.fn != nil:
			m.Value = e.fn()
		}
		s.Metrics = append(s.Metrics, m)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

package obs

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Kind discriminates metric types in snapshots and on the wire.
type Kind uint8

const (
	// KindCounter is a monotonic count.
	KindCounter Kind = iota + 1
	// KindGauge is a point-in-time level (func gauges snapshot as this
	// kind too).
	KindGauge
	// KindHistogram is a log-bucketed distribution.
	KindHistogram
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Bucket is one nonzero histogram bucket in a snapshot.
type Bucket struct {
	Idx   uint16
	Count uint64
}

// HistogramSnapshot is a point-in-time copy of a Histogram: total
// count, value sum, observed max, and the nonzero buckets in ascending
// index order. Snapshots merge by adding buckets, so any set of them
// folds into exact cluster-wide totals and honest percentiles.
type HistogramSnapshot struct {
	Count   uint64
	Sum     uint64
	Max     uint64
	Buckets []Bucket
}

// Quantile returns the value at quantile q in [0, 1]: the upper bound
// of the bucket holding the q-th sample, clamped to the observed max
// (so Quantile(1) == Max exactly, and no percentile overshoots a value
// that was never recorded by more than a bucket width). Zero when the
// histogram is empty.
func (h HistogramSnapshot) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			_, hi := bucketBounds(int(b.Idx))
			if hi > h.Max {
				return h.Max
			}
			return hi
		}
	}
	return h.Max // counters raced the snapshot; the tail is the max
}

// Mean returns the arithmetic mean of recorded values (exact: Sum and
// Count are tracked outside the buckets), zero when empty.
func (h HistogramSnapshot) Mean() uint64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / h.Count
}

// merge adds o into a copy of h.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: h.Count + o.Count, Sum: h.Sum + o.Sum, Max: h.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	out.Buckets = make([]Bucket, 0, len(h.Buckets)+len(o.Buckets))
	i, j := 0, 0
	for i < len(h.Buckets) && j < len(o.Buckets) {
		a, b := h.Buckets[i], o.Buckets[j]
		switch {
		case a.Idx < b.Idx:
			out.Buckets = append(out.Buckets, a)
			i++
		case a.Idx > b.Idx:
			out.Buckets = append(out.Buckets, b)
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Idx: a.Idx, Count: a.Count + b.Count})
			i, j = i+1, j+1
		}
	}
	out.Buckets = append(out.Buckets, h.Buckets[i:]...)
	out.Buckets = append(out.Buckets, o.Buckets[j:]...)
	return out
}

// MetricSnapshot is one named metric in a Snapshot.
type MetricSnapshot struct {
	Name string
	Kind Kind
	// Value carries counters (cast from uint64), gauges, and func
	// gauges; unused for histograms.
	Value int64
	// Hist carries histogram state; nil for scalar kinds.
	Hist *HistogramSnapshot
}

// Snapshot is a point-in-time view of a registry: metrics sorted by
// name. It renders as text (WriteText), encodes to a compact binary
// frame for the csnet OpStats op (Encode/DecodeSnapshot), and merges
// with other snapshots (Merge) — the three faces of the stats plane.
type Snapshot struct {
	Metrics []MetricSnapshot
}

// Get returns the named metric and whether it exists.
func (s Snapshot) Get(name string) (MetricSnapshot, bool) {
	i := sort.Search(len(s.Metrics), func(i int) bool { return s.Metrics[i].Name >= name })
	if i < len(s.Metrics) && s.Metrics[i].Name == name {
		return s.Metrics[i], true
	}
	return MetricSnapshot{}, false
}

// Merge combines two snapshots into a new one: metrics present in both
// (by name) fold — counters and gauges add, histograms add bucketwise
// (max takes the larger) — and metrics present in one pass through.
// The fold is commutative and associative, so any number of node
// snapshots combine into the same cluster totals in any grouping
// order; that property is what ClusterStats leans on and the obs
// property test pins. A name carrying different kinds on the two sides
// cannot be folded meaningfully; the receiver's metric wins and the
// other is dropped.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{Metrics: make([]MetricSnapshot, 0, len(s.Metrics)+len(o.Metrics))}
	i, j := 0, 0
	for i < len(s.Metrics) && j < len(o.Metrics) {
		a, b := s.Metrics[i], o.Metrics[j]
		switch {
		case a.Name < b.Name:
			out.Metrics = append(out.Metrics, a)
			i++
		case a.Name > b.Name:
			out.Metrics = append(out.Metrics, b)
			j++
		default:
			out.Metrics = append(out.Metrics, mergeMetric(a, b))
			i, j = i+1, j+1
		}
	}
	out.Metrics = append(out.Metrics, s.Metrics[i:]...)
	out.Metrics = append(out.Metrics, o.Metrics[j:]...)
	return out
}

func mergeMetric(a, b MetricSnapshot) MetricSnapshot {
	if a.Kind != b.Kind {
		return a
	}
	if a.Kind == KindHistogram {
		var ha, hb HistogramSnapshot
		if a.Hist != nil {
			ha = *a.Hist
		}
		if b.Hist != nil {
			hb = *b.Hist
		}
		m := ha.merge(hb)
		return MetricSnapshot{Name: a.Name, Kind: KindHistogram, Hist: &m}
	}
	return MetricSnapshot{Name: a.Name, Kind: a.Kind, Value: a.Value + b.Value}
}

// snapshotVersion tags the binary encoding so a future geometry change
// can be detected instead of mis-decoded.
const snapshotVersion = 1

// metricWireMin is the smallest wire size of one encoded metric:
// kind(1) nameLen(2) value(8) with an empty name.
const metricWireMin = 1 + 2 + 8

// Encode serializes the snapshot:
//
//	version(1) count(4) then per metric:
//	  kind(1) nameLen(2) name
//	  counters/gauges: value(8)
//	  histograms: count(8) sum(8) max(8) nbuckets(4) then
//	              nbuckets * (idx(2) count(8))
func (s Snapshot) Encode() []byte {
	size := 1 + 4
	for _, m := range s.Metrics {
		size += metricWireMin + len(m.Name)
		if m.Kind == KindHistogram && m.Hist != nil {
			size += 8 + 8 + 4 - 8 + 8 + len(m.Hist.Buckets)*10
		}
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapshotVersion)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s.Metrics)))
	for _, m := range s.Metrics {
		buf = append(buf, byte(m.Kind))
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Name)))
		buf = append(buf, m.Name...)
		if m.Kind == KindHistogram {
			var h HistogramSnapshot
			if m.Hist != nil {
				h = *m.Hist
			}
			buf = binary.BigEndian.AppendUint64(buf, h.Count)
			buf = binary.BigEndian.AppendUint64(buf, h.Sum)
			buf = binary.BigEndian.AppendUint64(buf, h.Max)
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(h.Buckets)))
			for _, b := range h.Buckets {
				buf = binary.BigEndian.AppendUint16(buf, b.Idx)
				buf = binary.BigEndian.AppendUint64(buf, b.Count)
			}
			continue
		}
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Value))
	}
	return buf
}

// DecodeSnapshot parses an encoded snapshot, validating lengths before
// every allocation so a malformed frame cannot demand gigabytes.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	if len(b) < 5 {
		return s, fmt.Errorf("obs: snapshot too short (%d bytes)", len(b))
	}
	if b[0] != snapshotVersion {
		return s, fmt.Errorf("obs: snapshot version %d, want %d", b[0], snapshotVersion)
	}
	n := int(binary.BigEndian.Uint32(b[1:5]))
	b = b[5:]
	if n > len(b)/metricWireMin {
		return s, fmt.Errorf("obs: metric count %d exceeds body size %d", n, len(b))
	}
	s.Metrics = make([]MetricSnapshot, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 3 {
			return s, fmt.Errorf("obs: truncated metric header at entry %d", i)
		}
		kind := Kind(b[0])
		nl := int(binary.BigEndian.Uint16(b[1:3]))
		if len(b) < 3+nl {
			return s, fmt.Errorf("obs: truncated metric name at entry %d", i)
		}
		m := MetricSnapshot{Name: string(b[3 : 3+nl]), Kind: kind}
		b = b[3+nl:]
		if kind == KindHistogram {
			if len(b) < 8+8+8+4 {
				return s, fmt.Errorf("obs: truncated histogram %q", m.Name)
			}
			h := HistogramSnapshot{
				Count: binary.BigEndian.Uint64(b[0:8]),
				Sum:   binary.BigEndian.Uint64(b[8:16]),
				Max:   binary.BigEndian.Uint64(b[16:24]),
			}
			nb := int(binary.BigEndian.Uint32(b[24:28]))
			b = b[28:]
			if nb > len(b)/10 {
				return s, fmt.Errorf("obs: histogram %q bucket count %d exceeds body size %d", m.Name, nb, len(b))
			}
			h.Buckets = make([]Bucket, 0, nb)
			for k := 0; k < nb; k++ {
				h.Buckets = append(h.Buckets, Bucket{
					Idx:   binary.BigEndian.Uint16(b[0:2]),
					Count: binary.BigEndian.Uint64(b[2:10]),
				})
				b = b[10:]
			}
			m.Hist = &h
		} else {
			if len(b) < 8 {
				return s, fmt.Errorf("obs: truncated metric value for %q", m.Name)
			}
			m.Value = int64(binary.BigEndian.Uint64(b[:8]))
			b = b[8:]
		}
		s.Metrics = append(s.Metrics, m)
	}
	if len(b) != 0 {
		return s, fmt.Errorf("obs: %d trailing bytes after snapshot", len(b))
	}
	return s, nil
}

// WriteText renders the snapshot as one line per metric, sorted by
// name — the /metrics page format:
//
//	csnet.server.ops.SETV 10293
//	csnet.server.op_latency.SETV count=10293 p50=3583 p99=12287 p999=24575 max=31744 mean=4113
func (s Snapshot) WriteText(w io.Writer) error {
	for _, m := range s.Metrics {
		var err error
		if m.Kind == KindHistogram {
			var h HistogramSnapshot
			if m.Hist != nil {
				h = *m.Hist
			}
			_, err = fmt.Fprintf(w, "%s count=%d p50=%d p99=%d p999=%d max=%d mean=%d\n",
				m.Name, h.Count, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.Max, h.Mean())
		} else {
			_, err = fmt.Fprintf(w, "%s %d\n", m.Name, m.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// String renders the snapshot as WriteText does.
func (s Snapshot) String() string {
	var b strings.Builder
	_ = s.WriteText(&b)
	return b.String()
}

package obs

import "sync/atomic"

// Gauge is a point-in-time level: a queue depth, an entry count, a
// high-water mark. Unlike Counter it supports Set, whose
// last-writer-wins semantics do not distribute over stripes, so a
// gauge is a single padded atomic — still lock-free and allocation-
// free, just not striped.
//
// The zero value is NOT usable; create gauges with NewGauge or
// Registry.Gauge.
type Gauge struct {
	v atomic.Int64
	_ [120]byte
}

// NewGauge creates a standalone gauge (see NewCounter for when to
// register it).
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// SetMax raises the gauge to v if v is higher — the high-water-mark
// primitive (per-conn queue depth, pending pipeline depth). Lock-free
// CAS loop; the fast path (v not a new maximum) is one load.
func (g *Gauge) SetMax(v int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values are placed by their power of two
// (the "major" bucket) refined by the next histSubBits bits below the
// leading one (the sub-bucket), HDR-histogram style. Values below
// histSubBuckets get exact unit buckets. The worst-case relative error
// of reconstructing a value from its bucket is 2^-histSubBits = 12.5%,
// constant across the full uint64 range — the property that makes
// log-bucketed percentiles honest from nanoseconds to hours, unlike
// linear buckets that either truncate the tail or smear the body.
const (
	histSubBits    = 3
	histSubBuckets = 1 << histSubBits
	// histBuckets covers every uint64: histSubBuckets exact unit
	// buckets, then histSubBuckets per major bucket for exponents
	// histSubBits..63.
	histBuckets = (64-histSubBits)*histSubBuckets + histSubBuckets
)

// bucketIdx maps a value to its bucket.
func bucketIdx(v uint64) int {
	if v < histSubBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // position of the leading one, >= histSubBits
	sub := int((v >> (uint(exp) - histSubBits)) & (histSubBuckets - 1))
	return (exp-histSubBits)*histSubBuckets + histSubBuckets + sub
}

// bucketBounds returns the closed value range [lo, hi] bucket idx
// covers (lo == hi for the exact unit buckets).
func bucketBounds(idx int) (lo, hi uint64) {
	if idx < histSubBuckets {
		return uint64(idx), uint64(idx)
	}
	exp := idx/histSubBuckets - 1 + histSubBits
	sub := uint64(idx % histSubBuckets)
	shift := uint(exp - histSubBits)
	lo = (histSubBuckets + sub) << shift
	return lo, lo + (1 << shift) - 1
}

// Histogram is a log-bucketed distribution — latencies in
// nanoseconds, sizes in bytes — recorded with atomic increments and
// read as mergeable snapshots reporting p50/p99/p999/max. Recording is
// lock-free and allocation-free: one bucket increment plus
// count/sum/max bookkeeping, ~4 uncontended atomic ops. The bucket
// array is fixed (histBuckets cells, a few KB), so histograms never
// grow, never rebalance, and two histograms with the same geometry —
// which is all of them — merge by adding buckets, making cluster-wide
// aggregation a sum instead of a quantile-of-quantiles approximation.
//
// The zero value is NOT usable; create histograms with NewHistogram or
// Registry.Histogram.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Uint64
}

// NewHistogram creates a standalone histogram (see NewCounter for when
// to register it).
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one value. Negative values clamp to zero (a
// latency measured across a clock step is noise, not a crash).
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	h.counts[bucketIdx(u)].Add(1)
	h.count.Add(1)
	h.sum.Add(u)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// ObserveSince records the nanoseconds elapsed since start, or nothing
// when start is the zero Time — the StartTimer convention, so a
// disabled timer costs neither clock read.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Snapshot captures the histogram's current state. Concurrent with
// writers the buckets are read one atomic load at a time, so the
// snapshot is consistent per bucket, not across buckets — fine for
// monitoring, meaningless drift at most a few in-flight samples.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.counts {
		if n := h.counts[i].Load(); n != 0 {
			s.Buckets = append(s.Buckets, Bucket{Idx: uint16(i), Count: n})
		}
	}
	return s
}

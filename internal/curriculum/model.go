// Package curriculum is the paper's primary contribution made
// executable: a typed model of computing curricula (topics, courses,
// programs), the ABET CAC Computer Science Program Criteria as a rule
// engine, the CS2013/CC2020/CE2016/SE2014 PDC knowledge-area data behind
// Tables II and III, the canonical concept-to-course mapping of Table I,
// and a survey corpus of 20 accredited programs whose aggregates
// reproduce Fig. 2 and Fig. 3 of the paper.
package curriculum

import "fmt"

// Topic is a PDC knowledge component (the rows of Table I).
type Topic string

// The fourteen PDC topics of Table I.
const (
	Threads         Topic = "Programming with threads"
	Transactions    Topic = "Transactions processing"
	ParallelismConc Topic = "Parallelism and concurrency"
	SharedMemProg   Topic = "Shared-Memory programming"
	IPC             Topic = "Inter-Process Communication (IPC)"
	Atomicity       Topic = "Atomicity"
	PerfSpeedup     Topic = "Performance measurement, speed-up, and scalability"
	Multicore       Topic = "Multicore processors"
	SharedVsDist    Topic = "Shared vs. distributed memory"
	SIMDVector      Topic = "SIMD and vector processors"
	ILP             Topic = "Instruction Level Parallelism"
	FlynnTaxonomy   Topic = "Flynn's taxonomy"
	ClientServer    Topic = "Client-server programming"
	MemoryCaching   Topic = "Memory and caching"
)

// AllTopics lists the Table I topics in row order.
func AllTopics() []Topic {
	return []Topic{
		Threads, Transactions, ParallelismConc, SharedMemProg, IPC,
		Atomicity, PerfSpeedup, Multicore, SharedVsDist, SIMDVector,
		ILP, FlynnTaxonomy, ClientServer, MemoryCaching,
	}
}

// Pillar is one of CDER's three core PDC concepts ("concurrency,
// parallelism, and distribution").
type Pillar string

// The three CDER pillars.
const (
	Concurrency  Pillar = "concurrency"
	Parallelism  Pillar = "parallelism"
	Distribution Pillar = "distribution"
)

// Pillars lists the CDER pillars.
func Pillars() []Pillar { return []Pillar{Concurrency, Parallelism, Distribution} }

// TopicPillars maps each Table I topic to the CDER pillars it evidences.
func TopicPillars(t Topic) []Pillar {
	switch t {
	case Threads, SharedMemProg, Atomicity:
		return []Pillar{Concurrency}
	case IPC:
		return []Pillar{Concurrency, Distribution}
	case ParallelismConc:
		return []Pillar{Concurrency, Parallelism}
	case Transactions:
		return []Pillar{Concurrency, Distribution}
	case PerfSpeedup, Multicore, SIMDVector, ILP, FlynnTaxonomy:
		return []Pillar{Parallelism}
	case SharedVsDist:
		return []Pillar{Parallelism, Distribution}
	case ClientServer:
		return []Pillar{Distribution}
	case MemoryCaching:
		return []Pillar{Parallelism}
	default:
		return nil
	}
}

// Area classifies a course by subject (the columns of Table I plus the
// non-PDC areas a full curriculum needs).
type Area string

// Course areas.
const (
	SystemsProgramming  Area = "Systems Programming"
	CompOrg             Area = "Computer Organization/Architecture"
	OperatingSystems    Area = "Operating Systems"
	Databases           Area = "Database Systems"
	Networks            Area = "Computer Networks"
	ParallelProgramming Area = "Parallel Programming"
	IntroProgramming    Area = "Introductory Programming"
	DataStructures      Area = "Data Structures"
	Algorithms          Area = "Algorithms"
	DiscreteMath        Area = "Discrete Mathematics"
	TheoryOfComputation Area = "Theory of Computation"
	SoftwareEngineering Area = "Software Engineering"
	ProgrammingLangs    Area = "Programming Languages"
	Capstone            Area = "Capstone Project"
	Statistics          Area = "Probability and Statistics"
)

// PDCAreas lists the Table I column areas plus the dedicated course
// (the areas the survey counts for Fig. 3), in the paper's order.
func PDCAreas() []Area {
	return []Area{
		OperatingSystems, SystemsProgramming, CompOrg,
		ParallelProgramming, Networks, Databases,
	}
}

// Course is one course in a program of study.
type Course struct {
	Code     string
	Title    string
	Area     Area
	Credits  float64
	Required bool
	// PDCTopics lists the Table I components the course description
	// documents; empty means the course carries no PDC content.
	PDCTopics []Topic
}

// HasPDC reports whether the course carries any PDC topic.
func (c Course) HasPDC() bool { return len(c.PDCTopics) > 0 }

// Program is one degree program.
type Program struct {
	Institution string
	Name        string
	Courses     []Course
}

// RequiredCourses returns the required subset.
func (p Program) RequiredCourses() []Course {
	var out []Course
	for _, c := range p.Courses {
		if c.Required {
			out = append(out, c)
		}
	}
	return out
}

// RequiredCredits sums required course credits.
func (p Program) RequiredCredits() float64 {
	t := 0.0
	for _, c := range p.RequiredCourses() {
		t += c.Credits
	}
	return t
}

// PDCCourses returns the required courses carrying PDC content.
func (p Program) PDCCourses() []Course {
	var out []Course
	for _, c := range p.RequiredCourses() {
		if c.HasPDC() {
			out = append(out, c)
		}
	}
	return out
}

// HasDedicatedPDCCourse reports whether a required parallel-programming
// course exists.
func (p Program) HasDedicatedPDCCourse() bool {
	for _, c := range p.RequiredCourses() {
		if c.Area == ParallelProgramming {
			return true
		}
	}
	return false
}

// Validate performs structural checks on a program definition.
func (p Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("curriculum: program has no name")
	}
	seen := map[string]bool{}
	for _, c := range p.Courses {
		if c.Code == "" {
			return fmt.Errorf("curriculum: %s: course with empty code", p.Name)
		}
		if seen[c.Code] {
			return fmt.Errorf("curriculum: %s: duplicate course code %s", p.Name, c.Code)
		}
		seen[c.Code] = true
		if c.Credits <= 0 {
			return fmt.Errorf("curriculum: %s: course %s has non-positive credits", p.Name, c.Code)
		}
	}
	return nil
}

package curriculum

import "fmt"

// Discipline is an ABET EAC engineering discipline from Section V of
// the paper.
type Discipline string

// Engineering disciplines covered by Section V.
const (
	ComputerEngineering Discipline = "computer engineering"
	SoftwareEng         Discipline = "software engineering"
)

// EngineeringProgram models a CE or SE program as the coverage of its
// discipline's curricular-guideline knowledge units (CE2016 or SE2014).
type EngineeringProgram struct {
	Institution string
	Name        string
	Discipline  Discipline
	// CoveredUnits lists the PDC-related core knowledge units/topics
	// (from Table II or III) the program's required curriculum attains.
	CoveredUnits []string
}

// requiredUnits returns the PDC-related core units the discipline's
// guidelines make mandatory (the rows of Table II / Table III).
func requiredUnits(d Discipline) ([]string, error) {
	var areas []KnowledgeArea
	switch d {
	case ComputerEngineering:
		areas = CE2016()
	case SoftwareEng:
		areas = SE2014()
	default:
		return nil, fmt.Errorf("curriculum: unknown engineering discipline %q", d)
	}
	var out []string
	for _, ka := range areas {
		out = append(out, ka.Units...)
	}
	return out, nil
}

// CheckEngineeringProgram reproduces the paper's Section V argument as a
// rule: the ABET EAC criteria do not name PDC, but a program that
// attains its discipline's ACM/IEEE-CS curricular guidelines (CE2016 or
// SE2014) necessarily covers the PDC-related core knowledge units of
// Table II / Table III. The check passes iff every such unit is covered.
func CheckEngineeringProgram(p EngineeringProgram) (Report, error) {
	req, err := requiredUnits(p.Discipline)
	if err != nil {
		return Report{}, err
	}
	if p.Name == "" {
		return Report{}, fmt.Errorf("curriculum: engineering program has no name")
	}
	covered := map[string]bool{}
	for _, u := range p.CoveredUnits {
		covered[u] = true
	}
	rep := Report{Program: p.Name, Pass: true}
	for _, u := range req {
		ok := covered[u]
		ev := "covered by required curriculum"
		if !ok {
			ev = "not evidenced"
			rep.Pass = false
		}
		rep.Findings = append(rep.Findings, Finding{
			Satisfied: ok,
			Criterion: fmt.Sprintf("%s core unit: %s", p.Discipline, u),
			Evidence:  ev,
		})
	}
	return rep, nil
}

// SampleEngineeringPrograms returns one CE and one SE program modeled on
// the authors' institutions ("the computer engineering and software
// engineering programs at the authors' institutions anecdotally verify
// this claim"), both attaining their full guideline unit sets.
func SampleEngineeringPrograms() []EngineeringProgram {
	ce, _ := requiredUnits(ComputerEngineering)
	se, _ := requiredUnits(SoftwareEng)
	return []EngineeringProgram{
		{
			Institution:  "Case-Study Institute",
			Name:         "B.S. in Computer Engineering",
			Discipline:   ComputerEngineering,
			CoveredUnits: ce,
		},
		{
			Institution:  "Case-Study Institute",
			Name:         "B.S. in Software Engineering",
			Discipline:   SoftwareEng,
			CoveredUnits: se,
		},
	}
}

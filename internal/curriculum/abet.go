package curriculum

import (
	"fmt"
	"sort"
)

// ExposureArea is one of the curricular topics the ABET CS Program
// Criteria require exposure to (Fig. 1 of the paper).
type ExposureArea string

// The five required exposure areas.
const (
	ExpArchitecture ExposureArea = "computer architecture and organization"
	ExpInfoMgmt     ExposureArea = "information management"
	ExpNetworking   ExposureArea = "networking and communication"
	ExpOS           ExposureArea = "operating systems"
	ExpPDC          ExposureArea = "parallel and distributed computing"
)

// ExposureAreas lists the Fig. 1 requirements in order.
func ExposureAreas() []ExposureArea {
	return []ExposureArea{ExpArchitecture, ExpInfoMgmt, ExpNetworking, ExpOS, ExpPDC}
}

// MinCSCredits is the CS Program Criteria curriculum floor
// ("at least 40 semester credit hours (or equivalent)").
const MinCSCredits = 40.0

// areaExposure maps course areas to the non-PDC exposure areas they
// evidence.
func areaExposure(a Area) []ExposureArea {
	switch a {
	case CompOrg:
		return []ExposureArea{ExpArchitecture}
	case Databases:
		return []ExposureArea{ExpInfoMgmt}
	case Networks:
		return []ExposureArea{ExpNetworking}
	case OperatingSystems:
		return []ExposureArea{ExpOS}
	default:
		return nil
	}
}

// Finding is one line of an accreditation report.
type Finding struct {
	Satisfied bool
	Criterion string
	Evidence  string
}

// String renders the finding.
func (f Finding) String() string {
	mark := "FAIL"
	if f.Satisfied {
		mark = "ok"
	}
	return fmt.Sprintf("[%-4s] %s — %s", mark, f.Criterion, f.Evidence)
}

// Report is the outcome of checking a program against the CS Program
// Criteria curriculum requirements.
type Report struct {
	Program  string
	Pass     bool
	Findings []Finding
	// PDCTopicsCovered lists the Table I topics found in required
	// coursework.
	PDCTopicsCovered []Topic
	// PillarsCovered lists the CDER pillars evidenced.
	PillarsCovered []Pillar
}

// CheckProgram audits a program against the ABET CAC CS Program Criteria
// curriculum requirements as published since 2018 (Fig. 1 of the paper):
//
//  1. at least 40 semester credit hours of required computing coursework;
//  2. exposure to computer architecture and organization, information
//     management, networking and communication, and operating systems
//     (evidenced by required courses in those areas);
//  3. exposure to parallel and distributed computing — interpreted, per
//     the CDER framework the paper cites, as required coursework that
//     covers all three core PDC concepts: concurrency, parallelism, and
//     distribution.
func CheckProgram(p Program) (Report, error) {
	if err := p.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Program: p.Name, Pass: true}
	add := func(ok bool, criterion, evidence string) {
		rep.Findings = append(rep.Findings, Finding{Satisfied: ok, Criterion: criterion, Evidence: evidence})
		if !ok {
			rep.Pass = false
		}
	}

	// Criterion 1: credit floor.
	credits := p.RequiredCredits()
	add(credits >= MinCSCredits,
		fmt.Sprintf("at least %.0f semester credit hours of computing", MinCSCredits),
		fmt.Sprintf("%.1f required credit hours found", credits))

	// Criterion 2: the four non-PDC exposure areas.
	covered := map[ExposureArea]string{}
	for _, c := range p.RequiredCourses() {
		for _, e := range areaExposure(c.Area) {
			if _, ok := covered[e]; !ok {
				covered[e] = c.Code
			}
		}
	}
	for _, e := range ExposureAreas() {
		if e == ExpPDC {
			continue
		}
		code, ok := covered[e]
		evidence := "no required course found"
		if ok {
			evidence = "required course " + code
		}
		add(ok, "exposure to "+string(e), evidence)
	}

	// Criterion 3: PDC exposure via the CDER pillars.
	topicSet := map[Topic]bool{}
	pillarEvidence := map[Pillar]string{}
	for _, c := range p.PDCCourses() {
		for _, t := range c.PDCTopics {
			topicSet[t] = true
			for _, pl := range TopicPillars(t) {
				if _, ok := pillarEvidence[pl]; !ok {
					pillarEvidence[pl] = fmt.Sprintf("%s (%s)", c.Code, t)
				}
			}
		}
	}
	for _, pl := range Pillars() {
		ev, ok := pillarEvidence[pl]
		if !ok {
			ev = "no required coursework evidences this pillar"
		}
		add(ok, fmt.Sprintf("exposure to PDC: %s", pl), ev)
		if ok {
			rep.PillarsCovered = append(rep.PillarsCovered, pl)
		}
	}
	for t := range topicSet {
		rep.PDCTopicsCovered = append(rep.PDCTopicsCovered, t)
	}
	sort.Slice(rep.PDCTopicsCovered, func(i, j int) bool {
		return rep.PDCTopicsCovered[i] < rep.PDCTopicsCovered[j]
	})
	return rep, nil
}

package curriculum

import (
	"bytes"
	"strings"
	"testing"
)

// TestTableIMatchesPaper pins the canonical mapping to the published
// Table I: row set, column sets, and the total of 29 marks.
func TestTableIMatchesPaper(t *testing.T) {
	m := CanonicalMapping()
	if len(m) != 14 {
		t.Fatalf("Table I has %d rows, want 14", len(m))
	}
	if got := MarkCount(); got != 29 {
		t.Errorf("Table I mark count = %d, want 29", got)
	}
	want := map[Topic][]Area{
		Threads:         {SystemsProgramming, OperatingSystems, Networks},
		Transactions:    {Databases},
		ParallelismConc: {SystemsProgramming, CompOrg, OperatingSystems, Databases, Networks},
		SharedMemProg:   {SystemsProgramming, OperatingSystems},
		IPC:             {SystemsProgramming, OperatingSystems, Networks},
		Atomicity:       {SystemsProgramming, OperatingSystems},
		PerfSpeedup:     {CompOrg},
		Multicore:       {CompOrg},
		SharedVsDist:    {CompOrg, OperatingSystems, Networks},
		SIMDVector:      {CompOrg},
		ILP:             {CompOrg},
		FlynnTaxonomy:   {CompOrg},
		ClientServer:    {SystemsProgramming, Networks},
		MemoryCaching:   {SystemsProgramming, CompOrg, OperatingSystems},
	}
	for topic, areas := range want {
		got := m[topic]
		if len(got) != len(areas) {
			t.Errorf("%s: %d marks, want %d", topic, len(got), len(areas))
			continue
		}
		for i := range areas {
			if got[i] != areas[i] {
				t.Errorf("%s column %d = %s, want %s", topic, i, got[i], areas[i])
			}
		}
	}
	// "Parallelism and concurrency" spans all five columns.
	if len(m[ParallelismConc]) != len(TableIColumns()) {
		t.Error("parallelism and concurrency must span every course column")
	}
}

func TestRenderTableI(t *testing.T) {
	out := RenderTableI()
	for _, want := range []string{"Table I", "SysProg", "CompOrg/Arch", "OS", "DB", "Networks",
		string(FlynnTaxonomy), string(Transactions)} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I output missing %q", want)
		}
	}
	// 14 topic rows, each with at least one x.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2+1+14 { // title + header + rule + 14 rows
		t.Errorf("Table I renders %d lines, want 17", len(lines))
	}
}

// TestFig3MatchesPaperPercentages pins the survey aggregates to the
// paper's pie chart: OS 25%, SysProg 22%, CompOrg 28%, ParProg 3%,
// Networks 19%, DBMS 3%.
func TestFig3MatchesPaperPercentages(t *testing.T) {
	sv := BuildSurvey()
	if len(sv.Programs) != 20 {
		t.Fatalf("survey has %d programs, want 20", len(sv.Programs))
	}
	if got := sv.TotalPDCCourses(); got != 36 {
		t.Fatalf("survey has %d PDC courses, want 36", got)
	}
	got := sv.RoundedShares()
	want := []int{25, 22, 28, 3, 19, 3} // in PDCAreas() order
	for i, w := range want {
		if got[i] != w {
			t.Errorf("share[%s] = %d%%, want %d%%", PDCAreas()[i], got[i], w)
		}
	}
	// Exact counts behind the percentages.
	counts := map[Area]int{}
	for _, sh := range sv.CourseShares() {
		counts[sh.Area] = sh.Courses
	}
	wantCounts := map[Area]int{
		OperatingSystems: 9, SystemsProgramming: 8, CompOrg: 10,
		ParallelProgramming: 1, Networks: 7, Databases: 1,
	}
	for a, w := range wantCounts {
		if counts[a] != w {
			t.Errorf("count[%s] = %d, want %d", a, counts[a], w)
		}
	}
}

// TestSurveyOneDedicatedCourse pins the paper's Section III finding:
// "out of the 20 surveyed programs, only one program had a dedicated
// parallel programming course".
func TestSurveyOneDedicatedCourse(t *testing.T) {
	sv := BuildSurvey()
	if got := sv.DedicatedCount(); got != 1 {
		t.Errorf("dedicated-course programs = %d, want 1", got)
	}
}

// TestAllSurveyedProgramsPassPDC verifies the paper's premise that the
// surveyed accredited programs satisfy the criteria.
func TestAllSurveyedProgramsPassPDC(t *testing.T) {
	sv := BuildSurvey()
	reports, err := sv.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 20 {
		t.Fatalf("got %d reports", len(reports))
	}
	for _, r := range reports {
		if !r.Pass {
			t.Errorf("%s fails the criteria:\n%s", r.Program, RenderReport(r))
		}
		if len(r.PillarsCovered) != 3 {
			t.Errorf("%s covers %d pillars, want 3", r.Program, len(r.PillarsCovered))
		}
	}
}

// TestFig2Shape checks the qualitative structure of Fig. 2: parallelism
// and concurrency (present in every PDC-bearing course family) dominates,
// and every reported topic has positive weight.
func TestFig2Shape(t *testing.T) {
	sv := BuildSurvey()
	freqs := sv.TopicFrequencies()
	if len(freqs) == 0 {
		t.Fatal("no topic frequencies")
	}
	if freqs[0].Topic != ParallelismConc {
		t.Errorf("top topic = %s, want %s", freqs[0].Topic, ParallelismConc)
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i].Weight > freqs[i-1].Weight {
			t.Error("frequencies not sorted descending")
		}
		if freqs[i].Weight <= 0 {
			t.Errorf("topic %s has non-positive weight", freqs[i].Topic)
		}
	}
	// Every Table I topic appears in the corpus (all course families are
	// represented among the 36 PDC courses).
	if len(freqs) != 14 {
		t.Errorf("%d topics have weight, want all 14", len(freqs))
	}
	// Transactions appears only via the DB course and the dedicated
	// course: weight 6 (two 3-credit courses).
	for _, f := range freqs {
		if f.Topic == Transactions && f.Weight != 6 {
			t.Errorf("transactions weight = %g, want 6", f.Weight)
		}
	}
}

func TestRenderFigures(t *testing.T) {
	sv := BuildSurvey()
	fig2 := RenderFig2(sv)
	if !strings.Contains(fig2, "Fig. 2") || !strings.Contains(fig2, "#") {
		t.Error("Fig. 2 render malformed")
	}
	fig3 := RenderFig3(sv)
	for _, want := range []string{"Fig. 3", "OS (9 courses)", "25.0%", "ParProg (1 courses)"} {
		if !strings.Contains(fig3, want) {
			t.Errorf("Fig. 3 render missing %q:\n%s", want, fig3)
		}
	}
}

// TestTableIIAndIIIMatchPaper pins the CE2016/SE2014 data.
func TestTableIIAndIIIMatchPaper(t *testing.T) {
	ce := CE2016()
	if len(ce) != 4 {
		t.Fatalf("Table II has %d areas, want 4", len(ce))
	}
	wantII := map[string][]string{
		"Computing Algorithms":          {"Parallel algorithms/threading"},
		"Architecture and Organization": {"Multi/Many-core architectures", "Distributed system architectures"},
		"Systems Resource Management":   {"Concurrent processing support"},
		"Software Design":               {"Event-driven and concurrent programming"},
	}
	for _, ka := range ce {
		want, ok := wantII[ka.Name]
		if !ok {
			t.Errorf("unexpected Table II area %q", ka.Name)
			continue
		}
		if len(ka.Units) != len(want) {
			t.Errorf("%s has %d units, want %d", ka.Name, len(ka.Units), len(want))
			continue
		}
		for i := range want {
			if ka.Units[i] != want[i] {
				t.Errorf("%s unit %d = %q, want %q", ka.Name, i, ka.Units[i], want[i])
			}
		}
	}
	se := SE2014()
	if len(se) != 1 || se[0].Name != "Computing Essentials" || len(se[0].Units) != 2 {
		t.Fatalf("Table III shape wrong: %+v", se)
	}
	if !strings.Contains(se[0].Units[0], "semaphores and monitors") {
		t.Error("Table III missing concurrency primitives row")
	}
	if !strings.Contains(se[0].Units[1], "distributed software") {
		t.Error("Table III missing distributed construction row")
	}
	if !strings.Contains(RenderTableII(), "Multi/Many-core") {
		t.Error("Table II render malformed")
	}
	if !strings.Contains(RenderTableIII(), "Concurrency primitives") {
		t.Error("Table III render malformed")
	}
}

func TestGuidelineLists(t *testing.T) {
	if len(CS2013PDC()) != 3 {
		t.Error("CS2013 PDC definition should have 3 parts")
	}
	cc := CC2020Topics()
	if len(cc) != 6 {
		t.Errorf("CC2020 topics = %d, want 6", len(cc))
	}
	joined := strings.Join(cc, ",")
	for _, want := range []string{"divide-and-conquer", "critical path", "race conditions", "synchronized queues"} {
		if !strings.Contains(joined, want) {
			t.Errorf("CC2020 topics missing %q", want)
		}
	}
}

func TestCheckProgramFailures(t *testing.T) {
	// Too few credits, missing areas, no PDC.
	p := Program{
		Name: "Tiny College CS",
		Courses: []Course{
			{Code: "CS1", Title: "Programming", Area: IntroProgramming, Credits: 3, Required: true},
		},
	}
	r, err := CheckProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Error("tiny program passed")
	}
	fails := 0
	for _, f := range r.Findings {
		if !f.Satisfied {
			fails++
		}
	}
	// 1 credit + 4 areas + 3 pillars = 8 findings, all failing.
	if fails != 8 {
		t.Errorf("failing findings = %d, want 8", fails)
	}
	if !strings.Contains(RenderReport(r), "DOES NOT MEET") {
		t.Error("report verdict missing")
	}
	// A passing report renders the opposite verdict.
	ok := BuildSurvey().Programs[0]
	rep, err := CheckProgram(ok)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderReport(rep), "MEETS") {
		t.Error("passing verdict missing")
	}
}

func TestCheckProgramPartialPDC(t *testing.T) {
	// A program with concurrency-only coverage must fail the
	// parallelism and distribution pillars.
	p := BuildSurvey().Programs[0]
	for i := range p.Courses {
		if p.Courses[i].HasPDC() {
			p.Courses[i].PDCTopics = []Topic{Threads, Atomicity}
		}
	}
	r, err := CheckProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Error("concurrency-only program passed")
	}
	if len(r.PillarsCovered) != 1 || r.PillarsCovered[0] != Concurrency {
		t.Errorf("pillars = %v, want [concurrency]", r.PillarsCovered)
	}
}

func TestProgramValidate(t *testing.T) {
	bad := []Program{
		{Name: ""},
		{Name: "X", Courses: []Course{{Code: "", Credits: 3}}},
		{Name: "X", Courses: []Course{{Code: "A", Credits: 3}, {Code: "A", Credits: 3}}},
		{Name: "X", Courses: []Course{{Code: "A", Credits: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("program %d validated", i)
		}
		if _, err := CheckProgram(p); err == nil {
			t.Errorf("program %d checked", i)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := BuildSurvey().Programs[6]
	var buf bytes.Buffer
	if err := EncodeProgram(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name || len(got.Courses) != len(p.Courses) {
		t.Errorf("round trip lost data: %s %d", got.Name, len(got.Courses))
	}
	// Invalid JSON rejected.
	if _, err := DecodeProgram(strings.NewReader(`{"Name":}`)); err == nil {
		t.Error("bad JSON accepted")
	}
	// Unknown fields rejected.
	if _, err := DecodeProgram(strings.NewReader(`{"Name":"x","Bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestJSONFiles(t *testing.T) {
	p := BuildSurvey().Programs[0]
	path := t.TempDir() + "/prog.json"
	if err := SaveProgramFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadProgramFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != p.Name {
		t.Errorf("loaded %q, want %q", got.Name, p.Name)
	}
	if _, err := LoadProgramFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTopicPillarsCoverAll(t *testing.T) {
	for _, topic := range AllTopics() {
		if len(TopicPillars(topic)) == 0 {
			t.Errorf("topic %s maps to no pillar", topic)
		}
	}
	if TopicPillars(Topic("bogus")) != nil {
		t.Error("unknown topic should map to nil")
	}
	if len(Pillars()) != 3 {
		t.Error("want 3 pillars")
	}
}

func TestAreaTopicsDedicatedCoversEverything(t *testing.T) {
	if len(AreaTopics(ParallelProgramming)) != 14 {
		t.Error("dedicated course must cover all 14 topics")
	}
	// CompOrg course covers exactly its Table I column (8 topics).
	co := AreaTopics(CompOrg)
	if len(co) != 8 {
		t.Errorf("CompOrg covers %d topics, want 8", len(co))
	}
	if len(AreaTopics(Capstone)) != 0 {
		t.Error("capstone should cover no PDC topics")
	}
}

func TestSurveyProgramsAreValid(t *testing.T) {
	for _, p := range BuildSurvey().Programs {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.RequiredCredits() < MinCSCredits {
			t.Errorf("%s has only %.0f credits", p.Name, p.RequiredCredits())
		}
	}
}

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = RenderTableI()
	}
}

func BenchmarkFig2Analysis(b *testing.B) {
	sv := BuildSurvey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sv.TopicFrequencies()
	}
}

func BenchmarkFig3Analysis(b *testing.B) {
	sv := BuildSurvey()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sv.CourseShares()
	}
}

func BenchmarkCheckProgram(b *testing.B) {
	p := BuildSurvey().Programs[6]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CheckProgram(p); err != nil {
			b.Fatal(err)
		}
	}
}

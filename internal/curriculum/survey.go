package curriculum

import "fmt"

// Survey is a set of accredited programs under analysis.
type Survey struct {
	Programs []Program
}

// corePlan describes one surveyed program's PDC-bearing courses.
type corePlan struct {
	pdcAreas []Area
}

// surveyPlan encodes the PDC-course structure of the 20 surveyed
// programs so the aggregates reproduce the paper's published numbers:
// 36 PDC-bearing required courses — 9 operating systems, 8 systems
// programming, 10 computer organization/architecture, 1 dedicated
// parallel programming, 7 networks, 1 database systems (Fig. 3:
// 25%/22%/28%/3%/19%/3%), with exactly one program owning a dedicated
// parallel-programming course (Section III).
func surveyPlan() []corePlan {
	return []corePlan{
		// 5 × (OS + CompOrg)
		{pdcAreas: []Area{OperatingSystems, CompOrg}},
		{pdcAreas: []Area{OperatingSystems, CompOrg}},
		{pdcAreas: []Area{OperatingSystems, CompOrg}},
		{pdcAreas: []Area{OperatingSystems, CompOrg}},
		{pdcAreas: []Area{OperatingSystems, CompOrg}},
		// 4 × (SysProg + CompOrg)
		{pdcAreas: []Area{SystemsProgramming, CompOrg}},
		{pdcAreas: []Area{SystemsProgramming, CompOrg}},
		{pdcAreas: []Area{SystemsProgramming, CompOrg}},
		{pdcAreas: []Area{SystemsProgramming, CompOrg}},
		// 3 × (OS + Networks)
		{pdcAreas: []Area{OperatingSystems, Networks}},
		{pdcAreas: []Area{OperatingSystems, Networks}},
		{pdcAreas: []Area{OperatingSystems, Networks}},
		// 3 × (SysProg + Networks)
		{pdcAreas: []Area{SystemsProgramming, Networks}},
		{pdcAreas: []Area{SystemsProgramming, Networks}},
		{pdcAreas: []Area{SystemsProgramming, Networks}},
		// 1 × dedicated parallel programming (+ CompOrg)
		{pdcAreas: []Area{ParallelProgramming, CompOrg}},
		// 4 × single-course programs
		{pdcAreas: []Area{OperatingSystems}},
		{pdcAreas: []Area{SystemsProgramming}},
		{pdcAreas: []Area{Networks}},
		{pdcAreas: []Area{Databases}},
	}
}

// standardCore returns the required non-PDC coursework every surveyed
// program shares (area-exposure courses carry no PDC topics unless the
// plan assigns them).
func standardCore() []struct {
	code  string
	title string
	area  Area
} {
	return []struct {
		code  string
		title string
		area  Area
	}{
		{"CS101", "Introduction to Programming", IntroProgramming},
		{"CS102", "Object-Oriented Programming", IntroProgramming},
		{"CS201", "Data Structures", DataStructures},
		{"CS202", "Design and Analysis of Algorithms", Algorithms},
		{"MA201", "Discrete Mathematics", DiscreteMath},
		{"MA301", "Probability and Statistics", Statistics},
		{"CS301", "Theory of Computation", TheoryOfComputation},
		{"CS302", "Programming Languages", ProgrammingLangs},
		{"CS401", "Software Engineering", SoftwareEngineering},
		{"CS499", "Capstone Project", Capstone},
	}
}

// areaCourseCode gives deterministic codes to the five exposure-area
// courses and the dedicated course.
func areaCourseCode(a Area) (string, string) {
	switch a {
	case CompOrg:
		return "CS210", "Computer Organization and Architecture"
	case OperatingSystems:
		return "CS310", "Operating Systems"
	case Databases:
		return "CS320", "Database Systems"
	case Networks:
		return "CS330", "Computer Networks"
	case SystemsProgramming:
		return "CS340", "Systems Programming"
	case ParallelProgramming:
		return "CS350", "Parallel Programming"
	default:
		return "CS390", string(a)
	}
}

// BuildSurvey constructs the 20-program corpus. Every program carries
// the standard core plus required courses in all four non-PDC exposure
// areas; the PDC-bearing courses follow surveyPlan, with topic lists
// taken from the canonical Table I mapping (the dedicated course covers
// the full topic list, as in the LAU case study).
func BuildSurvey() Survey {
	plans := surveyPlan()
	var sv Survey
	for i, plan := range plans {
		name := fmt.Sprintf("University %c", 'A'+i)
		p := Program{
			Institution: name,
			Name:        fmt.Sprintf("%s B.S. in Computer Science", name),
		}
		for _, cc := range standardCore() {
			p.Courses = append(p.Courses, Course{
				Code: cc.code, Title: cc.title, Area: cc.area,
				Credits: 3, Required: true,
			})
		}
		// Exposure-area courses: always required; they carry PDC topics
		// only when the plan assigns that area.
		pdcSet := map[Area]bool{}
		for _, a := range plan.pdcAreas {
			pdcSet[a] = true
		}
		for _, a := range []Area{CompOrg, OperatingSystems, Databases, Networks} {
			code, title := areaCourseCode(a)
			c := Course{Code: code, Title: title, Area: a, Credits: 3, Required: true}
			if pdcSet[a] {
				c.PDCTopics = AreaTopics(a)
			}
			p.Courses = append(p.Courses, c)
		}
		// Extra areas (systems programming, dedicated course) exist only
		// where the plan includes them.
		for _, a := range []Area{SystemsProgramming, ParallelProgramming} {
			if pdcSet[a] {
				code, title := areaCourseCode(a)
				p.Courses = append(p.Courses, Course{
					Code: code, Title: title, Area: a, Credits: 3,
					Required: true, PDCTopics: AreaTopics(a),
				})
			}
		}
		sv.Programs = append(sv.Programs, p)
	}
	return sv
}

// DedicatedCount returns how many surveyed programs require a dedicated
// parallel-programming course (the paper reports exactly one of 20).
func (s Survey) DedicatedCount() int {
	n := 0
	for _, p := range s.Programs {
		if p.HasDedicatedPDCCourse() {
			n++
		}
	}
	return n
}

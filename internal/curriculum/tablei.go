package curriculum

// CanonicalMapping reproduces Table I of the paper: for each PDC
// concept, the typical required courses that can cover it. The column
// placement of every × follows the published table; the two rows whose
// columns are ambiguous in the text layout (Atomicity, Client-server
// programming) follow the paper's prose ("a typical operating systems or
// systems programming course can include coverage of concurrency,
// atomicity, ..."; "client-server programming in a computer networks
// course or in systems programming course").
func CanonicalMapping() map[Topic][]Area {
	return map[Topic][]Area{
		Threads:         {SystemsProgramming, OperatingSystems, Networks},
		Transactions:    {Databases},
		ParallelismConc: {SystemsProgramming, CompOrg, OperatingSystems, Databases, Networks},
		SharedMemProg:   {SystemsProgramming, OperatingSystems},
		IPC:             {SystemsProgramming, OperatingSystems, Networks},
		Atomicity:       {SystemsProgramming, OperatingSystems},
		PerfSpeedup:     {CompOrg},
		Multicore:       {CompOrg},
		SharedVsDist:    {CompOrg, OperatingSystems, Networks},
		SIMDVector:      {CompOrg},
		ILP:             {CompOrg},
		FlynnTaxonomy:   {CompOrg},
		ClientServer:    {SystemsProgramming, Networks},
		MemoryCaching:   {SystemsProgramming, CompOrg, OperatingSystems},
	}
}

// TableIColumns lists Table I's course columns in the paper's order.
func TableIColumns() []Area {
	return []Area{SystemsProgramming, CompOrg, OperatingSystems, Databases, Networks}
}

// AreaTopics inverts the canonical mapping: the Table I topics a course
// of the given area typically covers.
func AreaTopics(a Area) []Topic {
	var out []Topic
	m := CanonicalMapping()
	for _, t := range AllTopics() { // stable row order
		for _, area := range m[t] {
			if area == a {
				out = append(out, t)
				break
			}
		}
	}
	if a == ParallelProgramming {
		// The dedicated course covers the full concept list (LAU case
		// study: multicore, SIMD, threads, synchronization, profiling,
		// manycore/SIMT, message-passing clusters).
		return AllTopics()
	}
	return out
}

// MarkCount returns the number of × marks in Table I (a consistency
// check against the published table, which has 29).
func MarkCount() int {
	n := 0
	for _, areas := range CanonicalMapping() {
		n += len(areas)
	}
	return n
}

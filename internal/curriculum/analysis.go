package curriculum

import (
	"math"
	"sort"
)

// TopicWeight is one bar of Fig. 2: a PDC topic and its weighted sum
// over the surveyed programs' required courses.
type TopicWeight struct {
	Topic  Topic
	Weight float64
}

// TopicFrequencies computes the Fig. 2 analysis: "a weighted sum of all
// courses that tackle specific components of the PDC knowledge area" —
// each required PDC-bearing course contributes its credit weight to
// every Table I component its description documents. Results are sorted
// by descending weight (ties by row order).
func (s Survey) TopicFrequencies() []TopicWeight {
	weights := map[Topic]float64{}
	for _, p := range s.Programs {
		for _, c := range p.PDCCourses() {
			for _, t := range c.PDCTopics {
				weights[t] += c.Credits
			}
		}
	}
	rowOrder := map[Topic]int{}
	for i, t := range AllTopics() {
		rowOrder[t] = i
	}
	out := make([]TopicWeight, 0, len(weights))
	for _, t := range AllTopics() {
		if w, ok := weights[t]; ok {
			out = append(out, TopicWeight{Topic: t, Weight: w})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return rowOrder[out[i].Topic] < rowOrder[out[j].Topic]
	})
	return out
}

// AreaShare is one slice of Fig. 3.
type AreaShare struct {
	Area    Area
	Courses int
	Percent float64
}

// CourseShares computes the Fig. 3 analysis: the share of PDC-bearing
// required courses by course area, as percentages rounded to the same
// precision the paper reports (whole percent).
func (s Survey) CourseShares() []AreaShare {
	counts := map[Area]int{}
	total := 0
	for _, p := range s.Programs {
		for _, c := range p.PDCCourses() {
			counts[c.Area]++
			total++
		}
	}
	var out []AreaShare
	for _, a := range PDCAreas() {
		n := counts[a]
		pct := 0.0
		if total > 0 {
			pct = float64(n) / float64(total) * 100
		}
		out = append(out, AreaShare{Area: a, Courses: n, Percent: pct})
	}
	return out
}

// RoundedShares returns Fig. 3's whole-percent values in PDCAreas order.
func (s Survey) RoundedShares() []int {
	var out []int
	for _, sh := range s.CourseShares() {
		out = append(out, int(math.Round(sh.Percent)))
	}
	return out
}

// TotalPDCCourses counts PDC-bearing required courses across the survey.
func (s Survey) TotalPDCCourses() int {
	n := 0
	for _, p := range s.Programs {
		n += len(p.PDCCourses())
	}
	return n
}

// CheckAll audits every surveyed program and returns the reports.
func (s Survey) CheckAll() ([]Report, error) {
	var out []Report
	for _, p := range s.Programs {
		r, err := CheckProgram(p)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

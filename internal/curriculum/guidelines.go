package curriculum

// CS2013PDC returns the three-part definition of parallel and
// distributed computing that CS2013 gives and the ABET criteria draw on
// (Section II-A of the paper).
func CS2013PDC() []string {
	return []string{
		"An understanding of fundamental systems concepts such as concurrency and parallel execution, consistency in state/memory manipulation, and latency",
		"Understanding of parallel algorithms, strategies for problem decomposition, system architecture, detailed implementation strategies, and performance analysis and tuning",
		"Message-passing and shared-memory models of computing",
	}
}

// CC2020Topics returns the specific PDC topics CC2020 recommends
// (Section II of the paper).
func CC2020Topics() []string {
	return []string{
		"a parallel divide-and-conquer algorithm",
		"critical path",
		"race conditions",
		"processes",
		"deadlocks",
		"properly synchronized queues",
	}
}

// KnowledgeArea is a row of Table II or Table III: a curricular
// knowledge area with its PDC-related core units/topics.
type KnowledgeArea struct {
	Name  string
	Units []string
}

// CE2016 returns Table II: the CE2016 knowledge areas with PDC-related
// core knowledge units.
func CE2016() []KnowledgeArea {
	return []KnowledgeArea{
		{Name: "Computing Algorithms", Units: []string{
			"Parallel algorithms/threading",
		}},
		{Name: "Architecture and Organization", Units: []string{
			"Multi/Many-core architectures",
			"Distributed system architectures",
		}},
		{Name: "Systems Resource Management", Units: []string{
			"Concurrent processing support",
		}},
		{Name: "Software Design", Units: []string{
			"Event-driven and concurrent programming",
		}},
	}
}

// SE2014 returns Table III: the SE2014 (SEEK) knowledge areas with
// PDC-related core topics.
func SE2014() []KnowledgeArea {
	return []KnowledgeArea{
		{Name: "Computing Essentials", Units: []string{
			"Concurrency primitives (e.g., semaphores and monitors)",
			"Construction methods for distributed software (e.g., cloud and mobile computing)",
		}},
	}
}

package curriculum

import (
	"strings"
	"testing"
)

// TestSectionVClaim reproduces Section V: engineering programs that
// attain their curricular guidelines necessarily cover PDC.
func TestSectionVClaim(t *testing.T) {
	for _, p := range SampleEngineeringPrograms() {
		r, err := CheckEngineeringProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Pass {
			t.Errorf("%s does not cover its PDC units:\n%s", p.Name, RenderReport(r))
		}
	}
}

func TestEngineeringUnitCounts(t *testing.T) {
	ce, err := requiredUnits(ComputerEngineering)
	if err != nil {
		t.Fatal(err)
	}
	// Table II: 1 + 2 + 1 + 1 = 5 core units.
	if len(ce) != 5 {
		t.Errorf("CE units = %d, want 5", len(ce))
	}
	se, err := requiredUnits(SoftwareEng)
	if err != nil {
		t.Fatal(err)
	}
	// Table III: 2 core topics.
	if len(se) != 2 {
		t.Errorf("SE units = %d, want 2", len(se))
	}
}

func TestEngineeringProgramMissingUnitsFails(t *testing.T) {
	p := EngineeringProgram{
		Name:       "Partial CE",
		Discipline: ComputerEngineering,
		CoveredUnits: []string{
			"Parallel algorithms/threading",
			"Concurrent processing support",
		},
	}
	r, err := CheckEngineeringProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Pass {
		t.Error("partial coverage passed")
	}
	missing := 0
	for _, f := range r.Findings {
		if !f.Satisfied {
			missing++
			if !strings.Contains(f.Criterion, "computer engineering") {
				t.Errorf("finding lacks discipline label: %s", f.Criterion)
			}
		}
	}
	if missing != 3 {
		t.Errorf("missing units = %d, want 3", missing)
	}
}

func TestEngineeringValidation(t *testing.T) {
	if _, err := CheckEngineeringProgram(EngineeringProgram{Name: "X", Discipline: "civil"}); err == nil {
		t.Error("unknown discipline accepted")
	}
	if _, err := CheckEngineeringProgram(EngineeringProgram{Discipline: SoftwareEng}); err == nil {
		t.Error("nameless program accepted")
	}
}

package curriculum

import (
	"fmt"
	"strings"

	"pdcedu/internal/perf"
)

// RenderTableI prints the concept-to-course mapping in the layout of the
// paper's Table I.
func RenderTableI() string {
	cols := TableIColumns()
	headers := make([]string, 0, len(cols)+1)
	headers = append(headers, "PDC Concept")
	for _, c := range cols {
		headers = append(headers, shortArea(c))
	}
	t := perf.NewTable("Table I: Mapping different PDC concepts to typical courses", headers...)
	m := CanonicalMapping()
	for _, topic := range AllTopics() {
		row := make([]interface{}, 0, len(cols)+1)
		row = append(row, string(topic))
		for _, col := range cols {
			mark := ""
			for _, a := range m[topic] {
				if a == col {
					mark = "x"
					break
				}
			}
			row = append(row, mark)
		}
		t.AddRow(row...)
	}
	return t.String()
}

func shortArea(a Area) string {
	switch a {
	case SystemsProgramming:
		return "SysProg"
	case CompOrg:
		return "CompOrg/Arch"
	case OperatingSystems:
		return "OS"
	case Databases:
		return "DB"
	case Networks:
		return "Networks"
	case ParallelProgramming:
		return "ParProg"
	default:
		return string(a)
	}
}

// RenderFig2 prints the topic weighted sums as the bar chart data behind
// Fig. 2.
func RenderFig2(s Survey) string {
	freqs := s.TopicFrequencies()
	labels := make([]string, len(freqs))
	values := make([]float64, len(freqs))
	for i, f := range freqs {
		labels[i] = string(f.Topic)
		values[i] = f.Weight
	}
	return perf.Bar("Fig. 2: PDC topics used by surveyed programs (weighted sums)",
		labels, values, 40)
}

// RenderFig3 prints the course-share percentages behind Fig. 3.
func RenderFig3(s Survey) string {
	shares := s.CourseShares()
	labels := make([]string, len(shares))
	values := make([]float64, len(shares))
	for i, sh := range shares {
		labels[i] = fmt.Sprintf("%s (%d courses)", shortArea(sh.Area), sh.Courses)
		values[i] = sh.Percent
	}
	return perf.Pie("Fig. 3: Courses for PDC content by surveyed programs", labels, values)
}

// RenderTableII prints the CE2016 PDC knowledge areas (Table II).
func RenderTableII() string {
	t := perf.NewTable("Table II: PDC in computer engineering knowledge areas (CE2016)",
		"Knowledge Area", "PDC-related Core Knowledge Units")
	for _, ka := range CE2016() {
		t.AddRow(ka.Name, strings.Join(ka.Units, "; "))
	}
	return t.String()
}

// RenderTableIII prints the SE2014 PDC knowledge areas (Table III).
func RenderTableIII() string {
	t := perf.NewTable("Table III: PDC in software engineering knowledge areas (SE2014)",
		"Knowledge Area", "PDC-related Core Topics")
	for _, ka := range SE2014() {
		t.AddRow(ka.Name, strings.Join(ka.Units, "; "))
	}
	return t.String()
}

// RenderReport prints one accreditation audit.
func RenderReport(r Report) string {
	var b strings.Builder
	verdict := "MEETS the ABET CAC PDC curriculum requirements"
	if !r.Pass {
		verdict = "DOES NOT MEET the ABET CAC PDC curriculum requirements"
	}
	fmt.Fprintf(&b, "%s: %s\n", r.Program, verdict)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  %s\n", f)
	}
	if len(r.PDCTopicsCovered) > 0 {
		fmt.Fprintf(&b, "  PDC topics covered (%d): ", len(r.PDCTopicsCovered))
		for i, t := range r.PDCTopicsCovered {
			if i > 0 {
				b.WriteString("; ")
			}
			b.WriteString(string(t))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

package curriculum

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// EncodeProgram writes a program definition as indented JSON.
func EncodeProgram(w io.Writer, p Program) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("curriculum: encode program: %w", err)
	}
	return nil
}

// DecodeProgram reads a program definition from JSON and validates it.
func DecodeProgram(r io.Reader) (Program, error) {
	var p Program
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Program{}, fmt.Errorf("curriculum: decode program: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Program{}, err
	}
	return p, nil
}

// LoadProgramFile reads a program definition from a JSON file.
func LoadProgramFile(path string) (Program, error) {
	f, err := os.Open(path)
	if err != nil {
		return Program{}, fmt.Errorf("curriculum: open %s: %w", path, err)
	}
	defer f.Close()
	return DecodeProgram(f)
}

// SaveProgramFile writes a program definition to a JSON file.
func SaveProgramFile(path string, p Program) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("curriculum: create %s: %w", path, err)
	}
	defer f.Close()
	return EncodeProgram(f, p)
}

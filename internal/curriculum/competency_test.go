package curriculum

import "testing"

// TestEveryCC2020TopicHasAnImplementation verifies the repository-level
// completeness claim: each CC2020 PDC topic the paper names maps to an
// implementing module.
func TestEveryCC2020TopicHasAnImplementation(t *testing.T) {
	comps := CC2020Competencies()
	byTopic := map[string]Competency{}
	for _, c := range comps {
		if c.Module == "" || c.Artifact == "" {
			t.Errorf("competency %q lacks module/artifact", c.Topic)
		}
		byTopic[c.Topic] = c
	}
	for _, topic := range CC2020Topics() {
		if _, ok := byTopic[topic]; !ok {
			t.Errorf("CC2020 topic %q has no implementing module", topic)
		}
	}
	if len(comps) != len(CC2020Topics()) {
		t.Errorf("competency index has %d entries, topics list has %d",
			len(comps), len(CC2020Topics()))
	}
}

package curriculum

// Competency links a CC2020 draft PDC competency (Section II of the
// paper) to the module of this repository that makes it executable —
// the index that turns the paper's recommended topics into runnable
// course material.
type Competency struct {
	// Topic is the CC2020 topic, verbatim from the paper.
	Topic string
	// Module is the implementing package path.
	Module string
	// Artifact names the concrete entry point.
	Artifact string
}

// CC2020Competencies returns the topic-to-module index. Every topic in
// CC2020Topics has an entry (tested), so the repository demonstrably
// covers the paper's recommended PDC competency list.
func CC2020Competencies() []Competency {
	return []Competency{
		{
			Topic:    "a parallel divide-and-conquer algorithm",
			Module:   "internal/par",
			Artifact: "par.MergeSort / par.QuickSort",
		},
		{
			Topic:    "critical path",
			Module:   "internal/taskgraph",
			Artifact: "taskgraph.Graph.Analyze (work, span, critical path, Brent's bound)",
		},
		{
			Topic:    "race conditions",
			Module:   "internal/race",
			Artifact: "race.Detect (vector-clock happens-before detector)",
		},
		{
			Topic:    "processes",
			Module:   "internal/sched",
			Artifact: "sched.Process + the scheduling policies",
		},
		{
			Topic:    "deadlocks",
			Module:   "internal/sched, internal/txn, internal/conc",
			Artifact: "sched.RAG / sched.Banker / txn.LockManager / conc.DinePhilosophers",
		},
		{
			Topic:    "properly synchronized queues",
			Module:   "internal/conc",
			Artifact: "conc.BoundedQueue (monitor with two condition variables)",
		},
	}
}

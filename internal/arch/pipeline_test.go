package arch

import (
	"strings"
	"testing"
)

func TestPipelineNoHazards(t *testing.T) {
	stream := []Instr{
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 2, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 3, Src1: -1, Src2: -1},
	}
	r := RunPipeline(stream, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	// k + n - 1 = 5 + 3 - 1 = 7 cycles.
	if r.Cycles != 7 {
		t.Errorf("cycles = %d, want 7", r.Cycles)
	}
	if r.DataStalls != 0 || r.ControlStalls != 0 {
		t.Errorf("stalls = %d/%d, want 0/0", r.DataStalls, r.ControlStalls)
	}
	if !strings.Contains(r.String(), "CPI") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestPipelineRAWWithoutForwarding(t *testing.T) {
	stream := []Instr{
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 2, Src1: 1, Src2: -1}, // depends on previous
	}
	r := RunPipeline(stream, PipelineConfig{Forwarding: false, BranchPenalty: 2})
	if r.DataStalls != 2 {
		t.Errorf("data stalls = %d, want 2 (classic no-forwarding RAW)", r.DataStalls)
	}
	// 6 cycles base + 2 stalls.
	if r.Cycles != 8 {
		t.Errorf("cycles = %d, want 8", r.Cycles)
	}
}

func TestPipelineRAWWithForwarding(t *testing.T) {
	stream := []Instr{
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 2, Src1: 1, Src2: -1},
	}
	r := RunPipeline(stream, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	if r.DataStalls != 0 {
		t.Errorf("EX->EX forwarding should remove all stalls, got %d", r.DataStalls)
	}
}

func TestPipelineLoadUseHazard(t *testing.T) {
	stream := []Instr{
		{Kind: Load, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 2, Src1: 1, Src2: -1},
	}
	r := RunPipeline(stream, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	if r.DataStalls != 1 {
		t.Errorf("load-use with forwarding = %d stalls, want 1", r.DataStalls)
	}
	// Independent instruction between load and use hides the stall.
	stream2 := []Instr{
		{Kind: Load, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 3, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 2, Src1: 1, Src2: -1},
	}
	r2 := RunPipeline(stream2, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	if r2.DataStalls != 0 {
		t.Errorf("scheduled load-use = %d stalls, want 0", r2.DataStalls)
	}
}

func TestPipelineBranchPenalty(t *testing.T) {
	stream := []Instr{
		{Kind: Branch, Dest: -1, Src1: -1, Src2: -1, Taken: true},
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
	}
	r := RunPipeline(stream, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	if r.ControlStalls != 2 {
		t.Errorf("control stalls = %d, want 2", r.ControlStalls)
	}
	nt := []Instr{
		{Kind: Branch, Dest: -1, Src1: -1, Src2: -1, Taken: false},
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
	}
	r2 := RunPipeline(nt, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	if r2.ControlStalls != 0 {
		t.Errorf("not-taken branch stalls = %d, want 0", r2.ControlStalls)
	}
	if r2.Cycles >= r.Cycles {
		t.Errorf("taken branch (%d cycles) should cost more than not-taken (%d)", r.Cycles, r2.Cycles)
	}
}

func TestPipelineEmptyStream(t *testing.T) {
	r := RunPipeline(nil, PipelineConfig{})
	if r.Cycles != 0 || r.Instructions != 0 {
		t.Errorf("empty stream result = %+v", r)
	}
}

func TestPipelineForwardingSpeedsUpDependentChain(t *testing.T) {
	var stream []Instr
	for i := 0; i < 50; i++ {
		stream = append(stream, Instr{Kind: ALU, Dest: 1, Src1: 1, Src2: -1})
	}
	slow := RunPipeline(stream, PipelineConfig{Forwarding: false})
	fast := RunPipeline(stream, PipelineConfig{Forwarding: true})
	if fast.Cycles >= slow.Cycles {
		t.Errorf("forwarding (%d cycles) should beat stalling (%d cycles)", fast.Cycles, slow.Cycles)
	}
	if fast.CPI >= slow.CPI {
		t.Errorf("forwarding CPI %.2f should beat %.2f", fast.CPI, slow.CPI)
	}
}

func TestAnalyzeILP(t *testing.T) {
	// Fully independent: chain length 1, ILP = n.
	indep := []Instr{
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 2, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 3, Src1: -1, Src2: -1},
	}
	st := AnalyzeILP(indep)
	if st.ChainLength != 1 || st.ILP != 3 {
		t.Errorf("independent stream: chain=%d ilp=%g, want 1/3", st.ChainLength, st.ILP)
	}
	// Full chain: ILP = 1.
	chain := []Instr{
		{Kind: ALU, Dest: 1, Src1: -1, Src2: -1},
		{Kind: ALU, Dest: 1, Src1: 1, Src2: -1},
		{Kind: ALU, Dest: 1, Src1: 1, Src2: -1},
	}
	st2 := AnalyzeILP(chain)
	if st2.ChainLength != 3 || st2.ILP != 1 {
		t.Errorf("chained stream: chain=%d ilp=%g, want 3/1", st2.ChainLength, st2.ILP)
	}
	empty := AnalyzeILP(nil)
	if empty.ILP != 0 {
		t.Errorf("empty ILP = %g, want 0", empty.ILP)
	}
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{ALU: "alu", Load: "load", Store: "store",
		Branch: "branch", Nop: "nop", OpKind(42): "unknown"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("OpKind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func BenchmarkPipeline(b *testing.B) {
	stream := make([]Instr, 1000)
	for i := range stream {
		stream[i] = Instr{Kind: ALU, Dest: i % 8, Src1: (i + 1) % 8, Src2: -1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RunPipeline(stream, PipelineConfig{Forwarding: true, BranchPenalty: 2})
	}
}

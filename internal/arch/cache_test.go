package arch

import (
	"testing"
	"testing/quick"
)

func mustCache(t *testing.T, cfg CacheConfig) *Cache {
	t.Helper()
	c, err := NewCache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheColdMissesThenHits(t *testing.T) {
	c := mustCache(t, CacheConfig{Sets: 4, Ways: 2, BlockBytes: 64, Policy: LRU})
	trace := RepeatTrace(0, 4, 64, 3) // 4 blocks, 3 passes
	st := c.RunTrace(trace)
	if st.Misses != 4 {
		t.Errorf("misses = %d, want 4 cold misses", st.Misses)
	}
	if st.Hits != 8 {
		t.Errorf("hits = %d, want 8", st.Hits)
	}
	if st.HitRate() != 8.0/12.0 {
		t.Errorf("hit rate = %g", st.HitRate())
	}
}

func TestCacheSpatialLocality(t *testing.T) {
	c := mustCache(t, CacheConfig{Sets: 64, Ways: 4, BlockBytes: 64, Policy: LRU})
	// Sequential byte accesses: 1 miss per 64-byte block.
	st := c.RunTrace(StrideTrace(0, 640, 1))
	if st.Misses != 10 {
		t.Errorf("sequential misses = %d, want 10", st.Misses)
	}
	// Stride == block size: every access misses (no reuse).
	c2 := mustCache(t, CacheConfig{Sets: 4, Ways: 1, BlockBytes: 64, Policy: LRU})
	st2 := c2.RunTrace(StrideTrace(0, 64, 64))
	if st2.Hits != 0 {
		t.Errorf("strided trace hits = %d, want 0", st2.Hits)
	}
}

func TestCacheConflictMisses(t *testing.T) {
	// Direct-mapped with 4 sets: addresses 0 and 4*64 collide in set 0.
	c := mustCache(t, CacheConfig{Sets: 4, Ways: 1, BlockBytes: 64, Policy: LRU})
	for i := 0; i < 6; i++ {
		c.Access(0)
		c.Access(4 * 64)
	}
	st := c.Stats()
	if st.Hits != 0 {
		t.Errorf("conflicting addresses should always miss direct-mapped, hits = %d", st.Hits)
	}
	// Two ways remove the conflict.
	c2 := mustCache(t, CacheConfig{Sets: 4, Ways: 2, BlockBytes: 64, Policy: LRU})
	for i := 0; i < 6; i++ {
		c2.Access(0)
		c2.Access(4 * 64 * 1) // same set, different tag
	}
	if c2.Stats().Misses != 2 {
		t.Errorf("2-way misses = %d, want 2 cold misses only", c2.Stats().Misses)
	}
}

func TestCacheLRUvsFIFO(t *testing.T) {
	// Pattern A B A C A: with 2 ways LRU keeps A; FIFO evicts A on C.
	mk := func(p ReplacementPolicy) CacheStats {
		c := mustCache(t, CacheConfig{Sets: 1, Ways: 2, BlockBytes: 64, Policy: p})
		for _, a := range []uint64{0, 64, 0, 128, 0} {
			c.Access(a)
		}
		return c.Stats()
	}
	lru := mk(LRU)
	fifo := mk(FIFO)
	if lru.Hits != 2 { // A hits twice
		t.Errorf("LRU hits = %d, want 2", lru.Hits)
	}
	if fifo.Hits != 1 { // second A hits, third A was evicted by C
		t.Errorf("FIFO hits = %d, want 1", fifo.Hits)
	}
}

func TestCacheValidation(t *testing.T) {
	bad := []CacheConfig{
		{Sets: 0, Ways: 1, BlockBytes: 64},
		{Sets: 4, Ways: 0, BlockBytes: 64},
		{Sets: 4, Ways: 1, BlockBytes: 0},
		{Sets: 4, Ways: 1, BlockBytes: 63},
		{Sets: 3, Ways: 1, BlockBytes: 64},
	}
	for i, cfg := range bad {
		if _, err := NewCache(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCacheStatsDerived(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 || s.MissRate() != 0 {
		t.Error("empty stats rates should be 0")
	}
	s = CacheStats{Hits: 90, Misses: 10}
	if s.AMAT(1, 100) != 1+0.1*100 {
		t.Errorf("AMAT = %g, want 11", s.AMAT(1, 100))
	}
}

// Property: hits+misses equals accesses and a fully-associative cache
// big enough for the working set has only cold misses.
func TestCacheProperty(t *testing.T) {
	f := func(addrsRaw []uint16) bool {
		c, err := NewCache(CacheConfig{Sets: 1, Ways: 1024, BlockBytes: 64, Policy: LRU})
		if err != nil {
			return false
		}
		distinct := map[uint64]bool{}
		for _, a := range addrsRaw {
			addr := uint64(a)
			c.Access(addr)
			distinct[addr/64] = true
		}
		st := c.Stats()
		if st.Accesses() != int64(len(addrsRaw)) {
			return false
		}
		if len(distinct) <= 1024 && st.Misses != int64(len(distinct)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReplacementPolicyString(t *testing.T) {
	if LRU.String() != "lru" || FIFO.String() != "fifo" || ReplacementPolicy(7).String() != "unknown" {
		t.Error("ReplacementPolicy.String mismatch")
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, err := NewCache(CacheConfig{Sets: 256, Ways: 8, BlockBytes: 64, Policy: LRU})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*48) % (1 << 20))
	}
}

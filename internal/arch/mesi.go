package arch

import "fmt"

// MESIState is a coherence state of a cache line copy.
type MESIState int

const (
	// Invalid: the copy holds no data.
	Invalid MESIState = iota
	// Shared: clean, possibly present in other caches.
	Shared
	// Exclusive: clean, present only here.
	Exclusive
	// Modified: dirty, present only here.
	Modified
)

// String returns the one-letter state name.
func (s MESIState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// BusStats counts snooping-bus traffic during a MESI simulation — the
// quantities the architecture courses use to explain why false sharing
// hurts.
type BusStats struct {
	BusRd         int64 // read misses served by the bus
	BusRdX        int64 // write misses / read-for-ownership
	BusUpgr       int64 // S->M upgrades
	Invalidations int64 // copies invalidated in other caches
	Writebacks    int64 // M lines flushed to memory
	CacheToCache  int64 // transfers served by a peer cache
}

// Total returns all bus transactions (excluding per-copy invalidations).
func (b BusStats) Total() int64 { return b.BusRd + b.BusRdX + b.BusUpgr }

// MESIBus simulates N private caches kept coherent with the MESI
// protocol over a snooping bus. Lines are tracked per cache-line
// address; capacity is unbounded (coherence, not capacity, is the
// lesson here).
type MESIBus struct {
	nCPUs     int
	lineBytes uint64
	// state[line][cpu]
	state map[uint64][]MESIState
	stats BusStats
}

// NewMESIBus creates a coherence simulator for nCPUs caches with the
// given line size in bytes.
func NewMESIBus(nCPUs int, lineBytes uint64) (*MESIBus, error) {
	if nCPUs <= 0 {
		return nil, fmt.Errorf("arch: need at least one CPU, got %d", nCPUs)
	}
	if lineBytes == 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("arch: line size %d must be a power of two", lineBytes)
	}
	return &MESIBus{nCPUs: nCPUs, lineBytes: lineBytes, state: map[uint64][]MESIState{}}, nil
}

// Stats returns accumulated bus statistics.
func (m *MESIBus) Stats() BusStats { return m.stats }

// LineOf returns the cache-line address containing the byte address.
func (m *MESIBus) LineOf(addr uint64) uint64 { return addr / m.lineBytes }

// State reports cpu's coherence state for the line containing addr.
func (m *MESIBus) State(cpu int, addr uint64) MESIState {
	sts, ok := m.state[m.LineOf(addr)]
	if !ok {
		return Invalid
	}
	return sts[cpu]
}

func (m *MESIBus) lineStates(addr uint64) []MESIState {
	line := m.LineOf(addr)
	sts, ok := m.state[line]
	if !ok {
		sts = make([]MESIState, m.nCPUs)
		m.state[line] = sts
	}
	return sts
}

// Read simulates cpu reading the byte address.
func (m *MESIBus) Read(cpu int, addr uint64) {
	sts := m.lineStates(addr)
	switch sts[cpu] {
	case Modified, Exclusive, Shared:
		return // hit, no bus traffic
	case Invalid:
		m.stats.BusRd++
		shared := false
		for other, st := range sts {
			if other == cpu || st == Invalid {
				continue
			}
			shared = true
			if st == Modified {
				m.stats.Writebacks++
				m.stats.CacheToCache++
			}
			sts[other] = Shared
		}
		if shared {
			sts[cpu] = Shared
		} else {
			sts[cpu] = Exclusive
		}
	}
}

// Write simulates cpu writing the byte address.
func (m *MESIBus) Write(cpu int, addr uint64) {
	sts := m.lineStates(addr)
	switch sts[cpu] {
	case Modified:
		return // hit, already owned dirty
	case Exclusive:
		sts[cpu] = Modified // silent upgrade
	case Shared:
		m.stats.BusUpgr++
		for other, st := range sts {
			if other != cpu && st != Invalid {
				sts[other] = Invalid
				m.stats.Invalidations++
			}
		}
		sts[cpu] = Modified
	case Invalid:
		m.stats.BusRdX++
		for other, st := range sts {
			if other == cpu || st == Invalid {
				continue
			}
			if st == Modified {
				m.stats.Writebacks++
				m.stats.CacheToCache++
			}
			sts[other] = Invalid
			m.stats.Invalidations++
		}
		sts[cpu] = Modified
	}
}

// FalseSharingExperiment runs the canonical demonstration: each of nCPUs
// writers updates its own counter `iters` times. With padding, each
// counter sits on a private line; without, all counters share one line.
// It returns the bus statistics of both configurations so callers can
// compare invalidation traffic.
func FalseSharingExperiment(nCPUs int, iters int, lineBytes uint64) (unpadded, padded BusStats, err error) {
	run := func(stride uint64) (BusStats, error) {
		bus, err := NewMESIBus(nCPUs, lineBytes)
		if err != nil {
			return BusStats{}, err
		}
		// Round-robin writers, the worst case for line ping-pong.
		for i := 0; i < iters; i++ {
			for cpu := 0; cpu < nCPUs; cpu++ {
				bus.Write(cpu, uint64(cpu)*stride)
			}
		}
		return bus.Stats(), nil
	}
	unpadded, err = run(8) // 8-byte counters packed into one line
	if err != nil {
		return
	}
	padded, err = run(lineBytes) // one counter per line
	return
}

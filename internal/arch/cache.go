// Package arch implements the computer-architecture simulators behind
// the "Computer Organization/Architecture" column of Table I and the AUC
// case study: a set-associative cache, MESI bus-snooping multiprocessor
// coherence (including false-sharing accounting), a classic 5-stage
// pipeline with hazard detection and forwarding, Tomasulo's dynamically
// scheduled architecture in both its non-speculative and speculative
// (reorder-buffer) forms, and Flynn's taxonomy machine models.
package arch

import (
	"fmt"
	"math/bits"
)

// ReplacementPolicy selects a cache eviction policy.
type ReplacementPolicy int

const (
	// LRU evicts the least recently used way.
	LRU ReplacementPolicy = iota
	// FIFO evicts the oldest-filled way.
	FIFO
)

// String returns the policy name.
func (p ReplacementPolicy) String() string {
	switch p {
	case LRU:
		return "lru"
	case FIFO:
		return "fifo"
	default:
		return "unknown"
	}
}

// CacheConfig describes a cache geometry.
type CacheConfig struct {
	// SizeBytes is the total capacity (must be Sets*Ways*BlockBytes).
	Sets       int
	Ways       int
	BlockBytes int
	Policy     ReplacementPolicy
}

// Validate checks the geometry for power-of-two block size and positive
// dimensions.
func (c CacheConfig) Validate() error {
	if c.Sets <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("arch: cache dimensions must be positive: %+v", c)
	}
	if bits.OnesCount(uint(c.BlockBytes)) != 1 {
		return fmt.Errorf("arch: block size %d is not a power of two", c.BlockBytes)
	}
	if bits.OnesCount(uint(c.Sets)) != 1 {
		return fmt.Errorf("arch: set count %d is not a power of two", c.Sets)
	}
	return nil
}

// CacheStats accumulates access outcomes.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// Accesses returns total accesses.
func (s CacheStats) Accesses() int64 { return s.Hits + s.Misses }

// HitRate returns the hit fraction, or 0 with no accesses.
func (s CacheStats) HitRate() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.Hits) / float64(n)
}

// MissRate returns the miss fraction.
func (s CacheStats) MissRate() float64 {
	n := s.Accesses()
	if n == 0 {
		return 0
	}
	return float64(s.Misses) / float64(n)
}

type cacheLine struct {
	valid bool
	tag   uint64
	// lastUse orders LRU; fillTime orders FIFO.
	lastUse  uint64
	fillTime uint64
}

// Cache is a trace-driven set-associative cache simulator.
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	clock uint64
	stats CacheStats
}

// NewCache creates a cache with the given geometry.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]cacheLine, cfg.Sets)
	for i := range sets {
		sets[i] = make([]cacheLine, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() CacheStats { return c.stats }

// Access simulates one access to the byte address and reports whether it
// hit. Writes and reads behave identically in this single-cache model
// (write-allocate).
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	blockBits := bits.TrailingZeros(uint(c.cfg.BlockBytes))
	setBits := bits.TrailingZeros(uint(c.cfg.Sets))
	block := addr >> uint(blockBits)
	setIdx := block & ((1 << uint(setBits)) - 1)
	tag := block >> uint(setBits)
	set := c.sets[setIdx]
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.clock
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	// Fill: choose an invalid way or evict per policy.
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			switch c.cfg.Policy {
			case LRU:
				if set[i].lastUse < set[victim].lastUse {
					victim = i
				}
			case FIFO:
				if set[i].fillTime < set[victim].fillTime {
					victim = i
				}
			}
		}
		c.stats.Evictions++
	}
	set[victim] = cacheLine{valid: true, tag: tag, lastUse: c.clock, fillTime: c.clock}
	return false
}

// RunTrace replays a sequence of byte addresses and returns the stats.
func (c *Cache) RunTrace(addrs []uint64) CacheStats {
	for _, a := range addrs {
		c.Access(a)
	}
	return c.stats
}

// AMAT returns the average memory access time for the given hit time and
// miss penalty (in cycles), the formula every architecture course drills:
// AMAT = hit + missRate*penalty.
func (s CacheStats) AMAT(hitTime, missPenalty float64) float64 {
	return hitTime + s.MissRate()*missPenalty
}

// StrideTrace generates n accesses starting at base with the given byte
// stride — the workload that exposes spatial locality and conflict
// misses in the cache labs.
func StrideTrace(base uint64, n int, stride uint64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*stride
	}
	return out
}

// RepeatTrace loops a working set of size blocks×blockBytes k times.
func RepeatTrace(base uint64, blocks int, blockBytes uint64, k int) []uint64 {
	var out []uint64
	for rep := 0; rep < k; rep++ {
		for b := 0; b < blocks; b++ {
			out = append(out, base+uint64(b)*blockBytes)
		}
	}
	return out
}

package arch

import "fmt"

// OpKind classifies instructions for the 5-stage pipeline model.
type OpKind int

const (
	// ALU is a register-register operation (1-cycle EX).
	ALU OpKind = iota
	// Load reads memory into Dest (result available after MEM).
	Load
	// Store writes Src1 to memory (no destination).
	Store
	// Branch is a conditional branch resolved in EX.
	Branch
	// Nop does nothing.
	Nop
)

// String returns the op name.
func (k OpKind) String() string {
	switch k {
	case ALU:
		return "alu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Nop:
		return "nop"
	default:
		return "unknown"
	}
}

// Instr is one instruction in the dynamic stream fed to the pipeline.
// Registers are small integers; -1 means "no register".
type Instr struct {
	Kind OpKind
	Dest int
	Src1 int
	Src2 int
	// Taken marks a branch as taken (costing the flush penalty).
	Taken bool
}

// PipelineConfig controls hazard handling.
type PipelineConfig struct {
	// Forwarding enables EX/MEM->EX bypassing; without it, consumers
	// wait for the producer's WB stage (write-before-read register file).
	Forwarding bool
	// BranchPenalty is the number of bubbles injected after a taken
	// branch resolves in EX (2 for the classic MIPS pipeline).
	BranchPenalty int
}

// PipelineResult reports the cycle-accurate outcome.
type PipelineResult struct {
	Instructions  int
	Cycles        int64
	DataStalls    int64
	ControlStalls int64
	// CPI is Cycles per instruction.
	CPI float64
	// Speedup is versus an unpipelined machine taking 5 cycles per
	// instruction.
	SpeedupVsUnpipelined float64
}

// RunPipeline simulates the classic IF-ID-EX-MEM-WB pipeline over the
// dynamic instruction stream and returns cycle counts and stall
// breakdowns. It implements the standard teaching rules: one instruction
// per stage, RAW hazards resolved by stalling in ID (with forwarding the
// only remaining stall is the 1-cycle load-use case), registers written
// in the first half of WB and read in the second half of ID, and taken
// branches flushing BranchPenalty younger instructions.
func RunPipeline(stream []Instr, cfg PipelineConfig) PipelineResult {
	if cfg.BranchPenalty < 0 {
		cfg.BranchPenalty = 0
	}
	n := len(stream)
	res := PipelineResult{Instructions: n}
	if n == 0 {
		return res
	}
	// readyCycle[r] = earliest cycle a consumer's EX may start and see r.
	readyCycle := map[int]int64{}
	var cycle int64 // cycle in which the current instruction enters EX
	var lastEX int64
	fetchReady := int64(1) // earliest IF cycle of next instruction
	for _, ins := range stream {
		// IF and ID take 2 cycles after fetch; EX may stall for hazards.
		earliestEX := fetchReady + 2
		if earliestEX <= lastEX {
			earliestEX = lastEX + 1
		}
		ex := earliestEX
		for _, src := range []int{ins.Src1, ins.Src2} {
			if src < 0 {
				continue
			}
			if rc, ok := readyCycle[src]; ok && rc > ex {
				ex = rc
			}
		}
		res.DataStalls += ex - earliestEX
		cycle = ex
		lastEX = ex
		// Producer availability for consumers.
		if ins.Dest >= 0 && ins.Kind != Store && ins.Kind != Branch && ins.Kind != Nop {
			if cfg.Forwarding {
				if ins.Kind == Load {
					// Load value exits MEM (cycle ex+1); consumer EX at ex+2.
					readyCycle[ins.Dest] = ex + 2
				} else {
					// ALU result forwarded from EX: consumer EX at ex+1.
					readyCycle[ins.Dest] = ex + 1
				}
			} else {
				// WB at ex+2 writes the register file in the first half;
				// consumer ID reads it then, so consumer EX >= ex+3... but
				// ID-read means its EX can be ex+3.
				readyCycle[ins.Dest] = ex + 3
			}
		}
		// Control hazard: taken branch resolved at end of EX squashes
		// the instructions fetched in the bubble window.
		if ins.Kind == Branch && ins.Taken {
			res.ControlStalls += int64(cfg.BranchPenalty)
			fetchReady = ex + int64(cfg.BranchPenalty) - 1
			if fetchReady < 1 {
				fetchReady = 1
			}
		} else {
			fetchReady++
		}
		if fetchReady <= 0 {
			fetchReady = 1
		}
	}
	// Last instruction retires 2 cycles after its EX (MEM, WB).
	res.Cycles = cycle + 2
	res.CPI = float64(res.Cycles) / float64(n)
	res.SpeedupVsUnpipelined = float64(5*n) / float64(res.Cycles)
	return res
}

// ILPStats summarizes instruction-level parallelism limits of a stream:
// the length of the longest dependency chain and the available ILP
// (instructions / chain length), the quantities the AUC architecture
// course uses to motivate superscalar and VLIW designs.
type ILPStats struct {
	Instructions int
	ChainLength  int
	ILP          float64
}

// AnalyzeILP computes the dependence-chain statistics of a stream under
// unit latencies.
func AnalyzeILP(stream []Instr) ILPStats {
	depth := map[int]int{} // register -> chain depth producing it
	maxChain := 0
	for _, ins := range stream {
		d := 0
		for _, src := range []int{ins.Src1, ins.Src2} {
			if src >= 0 && depth[src] > d {
				d = depth[src]
			}
		}
		d++
		if ins.Dest >= 0 {
			depth[ins.Dest] = d
		}
		if d > maxChain {
			maxChain = d
		}
	}
	st := ILPStats{Instructions: len(stream), ChainLength: maxChain}
	if maxChain > 0 {
		st.ILP = float64(len(stream)) / float64(maxChain)
	}
	return st
}

// String renders the result compactly.
func (r PipelineResult) String() string {
	return fmt.Sprintf("%d instrs, %d cycles, CPI %.2f (data stalls %d, control stalls %d, speedup %.2fx)",
		r.Instructions, r.Cycles, r.CPI, r.DataStalls, r.ControlStalls, r.SpeedupVsUnpipelined)
}

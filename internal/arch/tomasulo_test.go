package arch

import "testing"

// hpExample is the Hennessy-Patterson running example:
//
//	LD   F6, 34(R2)
//	LD   F2, 45(R3)
//	MUL  F0, F2, F4
//	SUB  F8, F6, F2
//	DIV  F10, F0, F6
//	ADD  F6, F8, F2
//
// Registers are numbered F0=0, F2=2, ... R2=102, R3=103.
func hpExample() []TInstr {
	return []TInstr{
		{Op: TLoad, Dest: 6, Src1: 102, Src2: -1},
		{Op: TLoad, Dest: 2, Src1: 103, Src2: -1},
		{Op: TMul, Dest: 0, Src1: 2, Src2: 4},
		{Op: TSub, Dest: 8, Src1: 6, Src2: 2},
		{Op: TDiv, Dest: 10, Src1: 0, Src2: 6},
		{Op: TAdd, Dest: 6, Src1: 8, Src2: 2},
	}
}

func TestTomasuloHPExampleStructure(t *testing.T) {
	res, err := RunTomasulo(hpExample(), DefaultTomasuloConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	ts := res.Timings
	// In-order single issue: issue cycles are 1..6.
	for i, tm := range ts {
		if tm.Issue != int64(i+1) {
			t.Errorf("instr %d issue = %d, want %d", i, tm.Issue, i+1)
		}
	}
	// Dependencies: MUL waits for LD F2's CDB write.
	if ts[2].ExecStart <= ts[1].WriteCDB {
		t.Errorf("MUL exec start %d must follow LD2 write %d", ts[2].ExecStart, ts[1].WriteCDB)
	}
	// SUB waits for both loads.
	if ts[3].ExecStart <= ts[0].WriteCDB || ts[3].ExecStart <= ts[1].WriteCDB {
		t.Errorf("SUB exec start %d must follow both load writes %d/%d",
			ts[3].ExecStart, ts[0].WriteCDB, ts[1].WriteCDB)
	}
	// DIV waits for MUL.
	if ts[4].ExecStart <= ts[2].WriteCDB {
		t.Errorf("DIV exec start %d must follow MUL write %d", ts[4].ExecStart, ts[2].WriteCDB)
	}
	// ADD waits for SUB.
	if ts[5].ExecStart <= ts[3].WriteCDB {
		t.Errorf("ADD exec start %d must follow SUB write %d", ts[5].ExecStart, ts[3].WriteCDB)
	}
	// Latencies respected.
	if ts[2].ExecComplete-ts[2].ExecStart+1 != 10 {
		t.Errorf("MUL latency = %d, want 10", ts[2].ExecComplete-ts[2].ExecStart+1)
	}
	if ts[4].ExecComplete-ts[4].ExecStart+1 != 40 {
		t.Errorf("DIV latency = %d, want 40", ts[4].ExecComplete-ts[4].ExecStart+1)
	}
	// ADD finishes long before DIV: out-of-order completion.
	if ts[5].WriteCDB >= ts[4].WriteCDB {
		t.Errorf("ADD write %d should precede DIV write %d (out-of-order completion)",
			ts[5].WriteCDB, ts[4].WriteCDB)
	}
}

func TestTomasuloCDBOnePerCycle(t *testing.T) {
	// Many independent adds all complete together; writes must serialize.
	var stream []TInstr
	for i := 0; i < 3; i++ {
		stream = append(stream, TInstr{Op: TAdd, Dest: i + 1, Src1: -1, Src2: -1})
	}
	res, err := RunTomasulo(stream, DefaultTomasuloConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for _, tm := range res.Timings {
		if seen[tm.WriteCDB] {
			t.Errorf("two CDB writes in cycle %d", tm.WriteCDB)
		}
		seen[tm.WriteCDB] = true
	}
}

func TestTomasuloStructuralStalls(t *testing.T) {
	// One add station: second add cannot issue until the first writes.
	cfg := DefaultTomasuloConfig(false)
	cfg.AddStations = 1
	stream := []TInstr{
		{Op: TAdd, Dest: 1, Src1: -1, Src2: -1},
		{Op: TAdd, Dest: 2, Src1: -1, Src2: -1},
	}
	res, err := RunTomasulo(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueStallsRS == 0 {
		t.Error("expected issue stalls with a single add station")
	}
	// Station freed by the write is reusable the same cycle at earliest.
	if res.Timings[1].Issue < res.Timings[0].WriteCDB {
		t.Errorf("second add issued at %d before station freed at %d",
			res.Timings[1].Issue, res.Timings[0].WriteCDB)
	}
}

func TestTomasuloSpeculationBeatsStalling(t *testing.T) {
	// Loop body with correctly predicted branches: the non-speculative
	// machine stalls issue at each branch, the speculative one flows.
	var stream []TInstr
	for it := 0; it < 6; it++ {
		stream = append(stream,
			TInstr{Op: TLoad, Dest: 1, Src1: 100, Src2: -1},
			TInstr{Op: TMul, Dest: 2, Src1: 1, Src2: 3},
			TInstr{Op: TAdd, Dest: 4, Src1: 2, Src2: 5},
			TInstr{Op: TBranch, Dest: -1, Src1: 4, Src2: -1},
		)
	}
	nonspec, err := RunTomasulo(stream, DefaultTomasuloConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	spec, err := RunTomasulo(stream, DefaultTomasuloConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Cycles >= nonspec.Cycles {
		t.Errorf("speculative %d cycles should beat non-speculative %d",
			spec.Cycles, nonspec.Cycles)
	}
	if nonspec.BranchStalls == 0 {
		t.Error("non-speculative machine should report branch stalls")
	}
	if spec.IPC <= nonspec.IPC {
		t.Errorf("speculative IPC %.2f should exceed %.2f", spec.IPC, nonspec.IPC)
	}
}

func TestTomasuloInOrderCommit(t *testing.T) {
	res, err := RunTomasulo(hpExample(), DefaultTomasuloConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	for i, tm := range res.Timings {
		if tm.Commit <= prev {
			t.Errorf("instr %d commit %d not strictly after previous %d", i, tm.Commit, prev)
		}
		prev = tm.Commit
	}
	// Commit happens after write.
	for i, tm := range res.Timings {
		if tm.WriteCDB >= 0 && tm.Commit <= tm.WriteCDB {
			t.Errorf("instr %d commits at %d before writing at %d", i, tm.Commit, tm.WriteCDB)
		}
	}
}

func TestTomasuloMispredictFlush(t *testing.T) {
	stream := []TInstr{
		{Op: TAdd, Dest: 1, Src1: -1, Src2: -1},
		{Op: TBranch, Dest: -1, Src1: 1, Src2: -1, Mispredicted: true},
		{Op: TAdd, Dest: 2, Src1: -1, Src2: -1},
		{Op: TAdd, Dest: 3, Src1: 2, Src2: -1},
	}
	res, err := RunTomasulo(stream, DefaultTomasuloConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flushes != 1 {
		t.Errorf("flushes = %d, want 1", res.Flushes)
	}
	// Instructions after the branch re-issue after the branch commits.
	if res.Timings[2].Issue <= res.Timings[1].Commit {
		t.Errorf("post-branch instr issued at %d, before branch commit %d",
			res.Timings[2].Issue, res.Timings[1].Commit)
	}
	// Compare with the correctly-predicted version: misprediction costs cycles.
	ok := append([]TInstr(nil), stream...)
	ok[1].Mispredicted = false
	resOK, err := RunTomasulo(ok, DefaultTomasuloConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if resOK.Cycles >= res.Cycles {
		t.Errorf("correct prediction %d cycles should beat mispredict %d",
			resOK.Cycles, res.Cycles)
	}
}

func TestTomasuloROBPressure(t *testing.T) {
	cfg := DefaultTomasuloConfig(true)
	cfg.ROBSize = 2
	var stream []TInstr
	for i := 0; i < 6; i++ {
		stream = append(stream, TInstr{Op: TAdd, Dest: 1 + i%3, Src1: -1, Src2: -1})
	}
	res, err := RunTomasulo(stream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.IssueStallsROB == 0 {
		t.Error("tiny ROB should cause issue stalls")
	}
}

func TestTomasuloWARAndWAWHandled(t *testing.T) {
	// WAW on F2 and WAR on F4: register renaming must keep results correct
	// in the sense that the LAST writer owns the register at the end; here
	// we just require the machine not to deadlock and to preserve issue
	// order timing invariants.
	stream := []TInstr{
		{Op: TMul, Dest: 2, Src1: 4, Src2: 6},
		{Op: TAdd, Dest: 4, Src1: 2, Src2: 8}, // RAW on F2, WAR on F4
		{Op: TAdd, Dest: 2, Src1: 8, Src2: 8}, // WAW on F2
	}
	res, err := RunTomasulo(stream, DefaultTomasuloConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	// Instruction 2 is independent and short: it may write before 0.
	if res.Timings[2].WriteCDB >= res.Timings[0].WriteCDB {
		t.Errorf("independent ADD write %d should precede MUL write %d",
			res.Timings[2].WriteCDB, res.Timings[0].WriteCDB)
	}
	// But instruction 1 truly depends on 0.
	if res.Timings[1].ExecStart <= res.Timings[0].WriteCDB {
		t.Error("RAW dependency violated")
	}
}

func TestTomasuloValidation(t *testing.T) {
	if _, err := RunTomasulo(nil, TomasuloConfig{}); err == nil {
		t.Error("zero station counts accepted")
	}
	cfg := DefaultTomasuloConfig(true)
	cfg.ROBSize = 0
	if _, err := RunTomasulo(hpExample(), cfg); err == nil {
		t.Error("speculative with zero ROB accepted")
	}
	// Empty stream is fine.
	res, err := RunTomasulo(nil, DefaultTomasuloConfig(false))
	if err != nil || res.Cycles != 0 {
		t.Errorf("empty stream: %+v, %v", res, err)
	}
}

func TestTOpString(t *testing.T) {
	names := map[TOp]string{TAdd: "ADD", TSub: "SUB", TMul: "MUL",
		TDiv: "DIV", TLoad: "LD", TBranch: "BR", TOp(9): "?"}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("TOp(%d) = %q, want %q", op, op.String(), want)
		}
	}
}

func BenchmarkTomasuloNonSpec(b *testing.B) { benchTomasulo(b, false) }
func BenchmarkTomasuloSpec(b *testing.B)    { benchTomasulo(b, true) }

func benchTomasulo(b *testing.B, spec bool) {
	var stream []TInstr
	for i := 0; i < 40; i++ {
		stream = append(stream, hpExample()...)
	}
	cfg := DefaultTomasuloConfig(spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunTomasulo(stream, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

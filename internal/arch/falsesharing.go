package arch

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// padded separates a counter onto its own cache line (64-byte lines on
// every mainstream CPU this code will meet).
type padded struct {
	v atomic.Int64
	_ [56]byte
}

// CountersUnpadded has each goroutine hammer an adjacent atomic in one
// array — all counters share cache lines, so every increment invalidates
// the line in the other cores' caches (false sharing).
func CountersUnpadded(workers, iters int) []int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counters := make([]atomic.Int64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				counters[w].Add(1)
			}
		}()
	}
	wg.Wait()
	out := make([]int64, workers)
	for i := range counters {
		out[i] = counters[i].Load()
	}
	return out
}

// CountersPadded is the same workload with one counter per cache line:
// the fix the LAU course's shared-memory part teaches.
func CountersPadded(workers, iters int) []int64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	counters := make([]padded, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				counters[w].v.Add(1)
			}
		}()
	}
	wg.Wait()
	out := make([]int64, workers)
	for i := range counters {
		out[i] = counters[i].v.Load()
	}
	return out
}

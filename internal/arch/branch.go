package arch

import "fmt"

// Predictor is a branch predictor: it predicts the outcome of the
// branch at pc, then learns the actual outcome. Prediction accuracy
// motivates the speculative Tomasulo machine the AUC course covers.
type Predictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Name identifies the scheme.
	Name() string
}

// AlwaysTaken predicts taken unconditionally (the static baseline).
type AlwaysTaken struct{}

// Predict implements Predictor.
func (AlwaysTaken) Predict(uint64) bool { return true }

// Update implements Predictor.
func (AlwaysTaken) Update(uint64, bool) {}

// Name implements Predictor.
func (AlwaysTaken) Name() string { return "always-taken" }

// OneBit is a table of 1-bit last-outcome predictors.
type OneBit struct {
	mask  uint64
	table []bool
}

// NewOneBit creates a 1-bit predictor with 2^bits entries.
func NewOneBit(bits int) (*OneBit, error) {
	if bits <= 0 || bits > 24 {
		return nil, fmt.Errorf("arch: predictor index bits must be in 1..24, got %d", bits)
	}
	n := 1 << bits
	return &OneBit{mask: uint64(n - 1), table: make([]bool, n)}, nil
}

// Predict implements Predictor.
func (p *OneBit) Predict(pc uint64) bool { return p.table[pc&p.mask] }

// Update implements Predictor.
func (p *OneBit) Update(pc uint64, taken bool) { p.table[pc&p.mask] = taken }

// Name implements Predictor.
func (p *OneBit) Name() string { return "1-bit" }

// TwoBit is a table of 2-bit saturating counters (the classic scheme:
// it takes two mispredictions to flip direction, fixing the loop-exit
// double-miss of the 1-bit scheme).
type TwoBit struct {
	mask  uint64
	table []uint8 // 0,1 = not taken; 2,3 = taken
}

// NewTwoBit creates a 2-bit predictor with 2^bits entries, initialized
// weakly not-taken.
func NewTwoBit(bits int) (*TwoBit, error) {
	if bits <= 0 || bits > 24 {
		return nil, fmt.Errorf("arch: predictor index bits must be in 1..24, got %d", bits)
	}
	n := 1 << bits
	return &TwoBit{mask: uint64(n - 1), table: make([]uint8, n)}, nil
}

// Predict implements Predictor.
func (p *TwoBit) Predict(pc uint64) bool { return p.table[pc&p.mask] >= 2 }

// Update implements Predictor.
func (p *TwoBit) Update(pc uint64, taken bool) {
	i := pc & p.mask
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
}

// Name implements Predictor.
func (p *TwoBit) Name() string { return "2-bit" }

// GShare combines a global history register with the PC (XOR-indexed
// 2-bit counters), capturing correlated branches.
type GShare struct {
	mask    uint64
	history uint64
	table   []uint8
}

// NewGShare creates a gshare predictor with 2^bits entries.
func NewGShare(bits int) (*GShare, error) {
	if bits <= 0 || bits > 24 {
		return nil, fmt.Errorf("arch: predictor index bits must be in 1..24, got %d", bits)
	}
	n := 1 << bits
	return &GShare{mask: uint64(n - 1), table: make([]uint8, n)}, nil
}

func (p *GShare) index(pc uint64) uint64 { return (pc ^ p.history) & p.mask }

// Predict implements Predictor.
func (p *GShare) Predict(pc uint64) bool { return p.table[p.index(pc)] >= 2 }

// Update implements Predictor.
func (p *GShare) Update(pc uint64, taken bool) {
	i := p.index(pc)
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
	p.history = (p.history << 1) & p.mask
	if taken {
		p.history |= 1
	}
}

// Name implements Predictor.
func (p *GShare) Name() string { return "gshare" }

// BranchRecord is one dynamic branch in a trace.
type BranchRecord struct {
	PC    uint64
	Taken bool
}

// PredictorAccuracy replays the trace through the predictor and returns
// the fraction of correct predictions.
func PredictorAccuracy(p Predictor, trace []BranchRecord) float64 {
	if len(trace) == 0 {
		return 0
	}
	correct := 0
	for _, b := range trace {
		if p.Predict(b.PC) == b.Taken {
			correct++
		}
		p.Update(b.PC, b.Taken)
	}
	return float64(correct) / float64(len(trace))
}

// LoopTrace generates the dynamic branch stream of a loop executed
// `trips` iterations `reps` times: taken (trips-1) times then not taken,
// repeatedly — the pattern that separates 1-bit from 2-bit predictors.
func LoopTrace(pc uint64, trips, reps int) []BranchRecord {
	var out []BranchRecord
	for r := 0; r < reps; r++ {
		for i := 0; i < trips; i++ {
			out = append(out, BranchRecord{PC: pc, Taken: i < trips-1})
		}
	}
	return out
}

// AlternatingTrace generates a perfectly alternating branch — the
// pattern gshare captures via history but per-PC counters cannot.
func AlternatingTrace(pc uint64, n int) []BranchRecord {
	out := make([]BranchRecord, n)
	for i := range out {
		out[i] = BranchRecord{PC: pc, Taken: i%2 == 0}
	}
	return out
}

package arch

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		is, ds int
		want   FlynnClass
	}{
		{1, 1, SISD}, {1, 8, SIMD}, {4, 1, MISD}, {4, 4, MIMD},
	}
	for _, c := range cases {
		got, err := Classify(c.is, c.ds)
		if err != nil || got != c.want {
			t.Errorf("Classify(%d,%d) = %v,%v; want %v", c.is, c.ds, got, err, c.want)
		}
	}
	if _, err := Classify(0, 1); err == nil {
		t.Error("zero streams accepted")
	}
}

func TestFlynnCycleModels(t *testing.T) {
	m := FlynnModel{OpLatency: 2, Lanes: 4, Processors: 4, Stages: 3}
	cases := []struct {
		class FlynnClass
		n     int
		want  int64
	}{
		{SISD, 16, 32}, // 16 items * 2 cycles
		{SIMD, 16, 8},  // 4 groups * 2
		{SIMD, 17, 10}, // 5 groups * 2 (ragged)
		{MISD, 16, 36}, // (3 + 16 - 1) * 2 systolic
		{MIMD, 16, 8},  // 4 per proc * 2
		{SISD, 0, 0},
		{MISD, 0, 0},
	}
	for _, c := range cases {
		got, err := m.Cycles(c.class, c.n)
		if err != nil || got != c.want {
			t.Errorf("%v n=%d: got %d,%v; want %d", c.class, c.n, got, err, c.want)
		}
	}
	if _, err := m.Cycles(SISD, -1); err == nil {
		t.Error("negative n accepted")
	}
	if _, err := m.Cycles(FlynnClass(9), 4); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestFlynnDefensiveDefaults(t *testing.T) {
	var m FlynnModel // all zero: must behave like 1-wide, 1-latency
	if got, _ := m.Cycles(SIMD, 5); got != 5 {
		t.Errorf("zero-value SIMD cycles = %d, want 5", got)
	}
	if got, _ := m.Cycles(MIMD, 5); got != 5 {
		t.Errorf("zero-value MIMD cycles = %d, want 5", got)
	}
}

func TestSIMDBeatsSISDModel(t *testing.T) {
	m := FlynnModel{OpLatency: 1, Lanes: 8}
	sisd, _ := m.Cycles(SISD, 1024)
	simd, _ := m.Cycles(SIMD, 1024)
	if simd*8 != sisd {
		t.Errorf("8-lane SIMD should be 8x faster: %d vs %d", simd, sisd)
	}
}

func TestFlynnClassString(t *testing.T) {
	if SISD.String() != "SISD" || SIMD.String() != "SIMD" ||
		MISD.String() != "MISD" || MIMD.String() != "MIMD" ||
		FlynnClass(9).String() != "unknown" {
		t.Error("FlynnClass.String mismatch")
	}
}

package arch

import "testing"

func mustBus(t *testing.T, cpus int) *MESIBus {
	t.Helper()
	b, err := NewMESIBus(cpus, 64)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestMESIReadExclusiveThenShared(t *testing.T) {
	b := mustBus(t, 2)
	b.Read(0, 0)
	if got := b.State(0, 0); got != Exclusive {
		t.Errorf("after lone read state = %v, want E", got)
	}
	b.Read(1, 0)
	if b.State(0, 0) != Shared || b.State(1, 0) != Shared {
		t.Errorf("after second read states = %v/%v, want S/S", b.State(0, 0), b.State(1, 0))
	}
	if b.Stats().BusRd != 2 {
		t.Errorf("BusRd = %d, want 2", b.Stats().BusRd)
	}
}

func TestMESISilentEtoM(t *testing.T) {
	b := mustBus(t, 2)
	b.Read(0, 0)
	before := b.Stats().Total()
	b.Write(0, 0) // E -> M needs no bus transaction
	if b.State(0, 0) != Modified {
		t.Errorf("state = %v, want M", b.State(0, 0))
	}
	if b.Stats().Total() != before {
		t.Error("E->M upgrade should be silent")
	}
}

func TestMESIWriteInvalidatesSharers(t *testing.T) {
	b := mustBus(t, 4)
	for cpu := 0; cpu < 4; cpu++ {
		b.Read(cpu, 0)
	}
	b.Write(0, 0)
	if b.State(0, 0) != Modified {
		t.Errorf("writer state = %v, want M", b.State(0, 0))
	}
	for cpu := 1; cpu < 4; cpu++ {
		if b.State(cpu, 0) != Invalid {
			t.Errorf("cpu %d state = %v, want I", cpu, b.State(cpu, 0))
		}
	}
	if b.Stats().Invalidations != 3 {
		t.Errorf("invalidations = %d, want 3", b.Stats().Invalidations)
	}
	if b.Stats().BusUpgr != 1 {
		t.Errorf("BusUpgr = %d, want 1", b.Stats().BusUpgr)
	}
}

func TestMESIDirtyLineServedByPeer(t *testing.T) {
	b := mustBus(t, 2)
	b.Write(0, 0) // I -> M via BusRdX
	b.Read(1, 0)  // must write back and share
	if b.State(0, 0) != Shared || b.State(1, 0) != Shared {
		t.Errorf("states = %v/%v, want S/S", b.State(0, 0), b.State(1, 0))
	}
	st := b.Stats()
	if st.Writebacks != 1 || st.CacheToCache != 1 {
		t.Errorf("writebacks=%d cacheToCache=%d, want 1/1", st.Writebacks, st.CacheToCache)
	}
}

func TestMESIWriteStealsDirtyLine(t *testing.T) {
	b := mustBus(t, 2)
	b.Write(0, 0)
	b.Write(1, 0)
	if b.State(0, 0) != Invalid || b.State(1, 0) != Modified {
		t.Errorf("states = %v/%v, want I/M", b.State(0, 0), b.State(1, 0))
	}
	if b.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", b.Stats().Writebacks)
	}
}

// Coherence invariant: at most one cache in M or E for a line; if any M
// or E exists, no other cache holds the line in S.
func TestMESISingleWriterInvariant(t *testing.T) {
	b := mustBus(t, 4)
	ops := []struct {
		cpu   int
		write bool
		addr  uint64
	}{
		{0, false, 0}, {1, false, 0}, {2, true, 0}, {3, false, 0},
		{0, true, 64}, {1, true, 64}, {2, false, 64}, {0, true, 0},
		{3, true, 128}, {3, false, 0}, {1, true, 128},
	}
	for _, op := range ops {
		if op.write {
			b.Write(op.cpu, op.addr)
		} else {
			b.Read(op.cpu, op.addr)
		}
		for _, line := range []uint64{0, 64, 128} {
			owners, sharers := 0, 0
			for cpu := 0; cpu < 4; cpu++ {
				switch b.State(cpu, line) {
				case Modified, Exclusive:
					owners++
				case Shared:
					sharers++
				}
			}
			if owners > 1 {
				t.Fatalf("line %d has %d owners after %+v", line, owners, op)
			}
			if owners == 1 && sharers > 0 {
				t.Fatalf("line %d owned and shared after %+v", line, op)
			}
		}
	}
}

func TestFalseSharingExperiment(t *testing.T) {
	unpadded, padded, err := FalseSharingExperiment(4, 100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if unpadded.Invalidations <= padded.Invalidations {
		t.Errorf("unpadded invalidations (%d) should exceed padded (%d)",
			unpadded.Invalidations, padded.Invalidations)
	}
	if padded.Invalidations != 0 {
		t.Errorf("padded counters should cause no invalidations, got %d", padded.Invalidations)
	}
}

func TestMESIValidation(t *testing.T) {
	if _, err := NewMESIBus(0, 64); err == nil {
		t.Error("0 CPUs accepted")
	}
	if _, err := NewMESIBus(2, 48); err == nil {
		t.Error("non-power-of-two line accepted")
	}
}

func TestMESIStateString(t *testing.T) {
	if Invalid.String() != "I" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Modified.String() != "M" || MESIState(9).String() != "?" {
		t.Error("MESIState.String mismatch")
	}
}

func TestCountersRuntime(t *testing.T) {
	up := CountersUnpadded(4, 1000)
	pd := CountersPadded(4, 1000)
	for i := 0; i < 4; i++ {
		if up[i] != 1000 || pd[i] != 1000 {
			t.Fatalf("counter %d: unpadded=%d padded=%d, want 1000", i, up[i], pd[i])
		}
	}
}

func BenchmarkFalseSharingUnpadded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CountersUnpadded(4, 10000)
	}
}

func BenchmarkFalseSharingPadded(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CountersPadded(4, 10000)
	}
}

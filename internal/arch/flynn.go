package arch

import "fmt"

// FlynnClass is one of Flynn's four machine categories, the taxonomy
// Table I places in the computer-organization column.
type FlynnClass int

const (
	// SISD: single instruction stream, single data stream (a classic
	// uniprocessor).
	SISD FlynnClass = iota
	// SIMD: single instruction stream applied to many data elements
	// (vector and GPU-style machines).
	SIMD
	// MISD: multiple instruction streams over one data stream (systolic
	// or redundant pipelines; mostly pedagogical).
	MISD
	// MIMD: multiple independent instruction and data streams
	// (multicores, clusters).
	MIMD
)

// String returns the class mnemonic.
func (c FlynnClass) String() string {
	switch c {
	case SISD:
		return "SISD"
	case SIMD:
		return "SIMD"
	case MISD:
		return "MISD"
	case MIMD:
		return "MIMD"
	default:
		return "unknown"
	}
}

// Classify returns the Flynn class for a machine with the given number
// of concurrent instruction streams and data streams.
func Classify(instructionStreams, dataStreams int) (FlynnClass, error) {
	if instructionStreams <= 0 || dataStreams <= 0 {
		return 0, fmt.Errorf("arch: stream counts must be positive (%d, %d)",
			instructionStreams, dataStreams)
	}
	switch {
	case instructionStreams == 1 && dataStreams == 1:
		return SISD, nil
	case instructionStreams == 1:
		return SIMD, nil
	case dataStreams == 1:
		return MISD, nil
	default:
		return MIMD, nil
	}
}

// FlynnModel predicts cycle counts for applying an op pipeline to data
// under each organization; the numbers drive the taxonomy lecture demo.
type FlynnModel struct {
	// OpLatency is cycles per operation application.
	OpLatency int
	// Lanes is the SIMD width.
	Lanes int
	// Processors is the MIMD processor count.
	Processors int
	// Stages is the MISD pipeline depth (number of distinct ops).
	Stages int
}

// Cycles predicts how many cycles the organization needs to apply its
// operation(s) to n data items.
func (m FlynnModel) Cycles(class FlynnClass, n int) (int64, error) {
	if n < 0 {
		return 0, fmt.Errorf("arch: negative item count %d", n)
	}
	lat := int64(m.OpLatency)
	if lat <= 0 {
		lat = 1
	}
	switch class {
	case SISD:
		return int64(n) * lat, nil
	case SIMD:
		lanes := m.Lanes
		if lanes <= 0 {
			lanes = 1
		}
		groups := (int64(n) + int64(lanes) - 1) / int64(lanes)
		return groups * lat, nil
	case MISD:
		// Systolic: each item flows through Stages units; after the
		// pipe fills, one item completes per OpLatency cycles.
		stages := m.Stages
		if stages <= 0 {
			stages = 1
		}
		if n == 0 {
			return 0, nil
		}
		return (int64(stages) + int64(n) - 1) * lat, nil
	case MIMD:
		procs := m.Processors
		if procs <= 0 {
			procs = 1
		}
		per := (int64(n) + int64(procs) - 1) / int64(procs)
		return per * lat, nil
	default:
		return 0, fmt.Errorf("arch: unknown Flynn class %d", class)
	}
}

package arch

import "testing"

func TestPredictorValidation(t *testing.T) {
	if _, err := NewOneBit(0); err == nil {
		t.Error("0-bit table accepted")
	}
	if _, err := NewTwoBit(30); err == nil {
		t.Error("oversized table accepted")
	}
	if _, err := NewGShare(-1); err == nil {
		t.Error("negative bits accepted")
	}
}

func TestAlwaysTaken(t *testing.T) {
	trace := LoopTrace(0x40, 10, 5)
	acc := PredictorAccuracy(AlwaysTaken{}, trace)
	// 9 of 10 branches per loop are taken.
	if acc != 0.9 {
		t.Errorf("always-taken accuracy = %g, want 0.9", acc)
	}
	if (AlwaysTaken{}).Name() != "always-taken" {
		t.Error("name mismatch")
	}
}

// TestLoopExitDoubleMiss verifies the textbook result: on a loop branch,
// the 1-bit scheme mispredicts twice per loop execution (exit and
// re-entry), the 2-bit scheme only once (exit).
func TestLoopExitDoubleMiss(t *testing.T) {
	const trips, reps = 10, 100
	trace := LoopTrace(0x80, trips, reps)
	ob, err := NewOneBit(10)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTwoBit(10)
	if err != nil {
		t.Fatal(err)
	}
	accOne := PredictorAccuracy(ob, trace)
	accTwo := PredictorAccuracy(tb, trace)
	// 1-bit: ~2 misses per rep; 2-bit: ~1 miss per rep (after warmup).
	if accTwo <= accOne {
		t.Errorf("2-bit (%.3f) should beat 1-bit (%.3f) on loop branches", accTwo, accOne)
	}
	wantTwo := 1 - 1.0/float64(trips) // asymptotically 1 miss per trip group
	if accTwo < wantTwo-0.01 {
		t.Errorf("2-bit accuracy = %.3f, want >= %.3f", accTwo, wantTwo-0.01)
	}
}

func TestGShareLearnsAlternation(t *testing.T) {
	trace := AlternatingTrace(0x100, 4000)
	gs, err := NewGShare(12)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := NewTwoBit(12)
	if err != nil {
		t.Fatal(err)
	}
	accG := PredictorAccuracy(gs, trace)
	accT := PredictorAccuracy(tb, trace)
	if accG < 0.95 {
		t.Errorf("gshare accuracy on alternation = %.3f, want >= 0.95", accG)
	}
	if accT > 0.6 {
		t.Errorf("2-bit accuracy on alternation = %.3f, expected near-random", accT)
	}
}

func TestPredictorEmptyTrace(t *testing.T) {
	if PredictorAccuracy(AlwaysTaken{}, nil) != 0 {
		t.Error("empty trace accuracy should be 0")
	}
}

func TestPredictorNames(t *testing.T) {
	ob, _ := NewOneBit(4)
	tb, _ := NewTwoBit(4)
	gs, _ := NewGShare(4)
	if ob.Name() != "1-bit" || tb.Name() != "2-bit" || gs.Name() != "gshare" {
		t.Error("predictor names wrong")
	}
}

func BenchmarkGShare(b *testing.B) {
	gs, err := NewGShare(14)
	if err != nil {
		b.Fatal(err)
	}
	trace := LoopTrace(0x44, 8, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PredictorAccuracy(gs, trace)
	}
}

package arch

import "fmt"

// TOp is an operation executed by the Tomasulo machine.
type TOp int

const (
	// TAdd and TSub use the add/sub reservation stations.
	TAdd TOp = iota
	// TSub is subtraction.
	TSub
	// TMul and TDiv use the multiply/divide stations.
	TMul
	// TDiv is division.
	TDiv
	// TLoad uses a load buffer; Src1 is the base register.
	TLoad
	// TBranch resolves a branch; in the speculative machine issue
	// continues past it, in the non-speculative machine issue stalls
	// until it resolves.
	TBranch
)

// String returns the op mnemonic.
func (o TOp) String() string {
	switch o {
	case TAdd:
		return "ADD"
	case TSub:
		return "SUB"
	case TMul:
		return "MUL"
	case TDiv:
		return "DIV"
	case TLoad:
		return "LD"
	case TBranch:
		return "BR"
	default:
		return "?"
	}
}

// fuClass maps an op to its station pool.
func (o TOp) fuClass() int {
	switch o {
	case TMul, TDiv:
		return fuMul
	case TLoad:
		return fuLoad
	default:
		return fuAdd
	}
}

const (
	fuAdd = iota
	fuMul
	fuLoad
	fuClasses
)

// TInstr is a dynamic instruction for the Tomasulo machine. Registers
// are indices into a flat register file; -1 means unused.
type TInstr struct {
	Op   TOp
	Dest int
	Src1 int
	Src2 int
	// Mispredicted marks a branch whose prediction was wrong; the
	// speculative machine pays a flush at commit.
	Mispredicted bool
}

// TomasuloConfig sizes the machine.
type TomasuloConfig struct {
	AddStations int
	MulStations int
	LoadBuffers int
	// Latency gives execution cycles per op (defaults: add/sub 2,
	// mul 10, div 40, load 2, branch 1).
	Latency map[TOp]int
	// Speculative enables the reorder buffer and issue past branches.
	Speculative bool
	// ROBSize bounds in-flight instructions in speculative mode.
	ROBSize int
	// MispredictPenalty is extra refill cycles after a flush.
	MispredictPenalty int
}

// DefaultTomasuloConfig returns the textbook configuration
// (3 add, 2 mul, 3 load stations; Hennessy-Patterson latencies).
func DefaultTomasuloConfig(speculative bool) TomasuloConfig {
	return TomasuloConfig{
		AddStations: 3, MulStations: 2, LoadBuffers: 3,
		Latency: map[TOp]int{
			TAdd: 2, TSub: 2, TMul: 10, TDiv: 40, TLoad: 2, TBranch: 1,
		},
		Speculative: speculative, ROBSize: 8, MispredictPenalty: 1,
	}
}

func (c TomasuloConfig) latency(op TOp) int {
	if l, ok := c.Latency[op]; ok && l > 0 {
		return l
	}
	switch op {
	case TMul:
		return 10
	case TDiv:
		return 40
	case TBranch:
		return 1
	default:
		return 2
	}
}

// instrState tracks one dynamic instruction's progress.
type instrState int

const (
	stWaiting instrState = iota
	stIssued
	stExecuting
	stExecDone
	stWritten
	stCommitted
)

// InstrTiming is the per-instruction worksheet row the architecture
// courses fill in by hand; -1 marks events that do not apply.
type InstrTiming struct {
	Issue        int64
	ExecStart    int64
	ExecComplete int64
	WriteCDB     int64
	Commit       int64
}

// TomasuloResult reports the simulation outcome.
type TomasuloResult struct {
	Cycles  int64
	Timings []InstrTiming
	// IssueStallsRS counts cycles issue was blocked on a full station pool.
	IssueStallsRS int64
	// IssueStallsROB counts cycles issue was blocked on a full ROB.
	IssueStallsROB int64
	// BranchStalls counts cycles issue was blocked behind an unresolved
	// branch (non-speculative machine only).
	BranchStalls int64
	// Flushes counts mispredict recoveries.
	Flushes int64
	// IPC is instructions per cycle.
	IPC float64
}

type tomaInstr struct {
	ins          TInstr
	state        instrState
	issue        int64
	execStart    int64
	execComplete int64
	write        int64
	commit       int64
	// srcAvail[s] is the CDB cycle that produced operand s; the operand
	// is usable from srcAvail[s]+1 on. srcWait[s] is the producing
	// instruction index when the value is still in flight (-1 = in hand).
	srcAvail [2]int64
	srcWait  [2]int
}

// holdsStation reports whether the instruction currently occupies a
// reservation station or load buffer.
func (in *tomaInstr) holdsStation() bool {
	return in.state == stIssued || in.state == stExecuting || in.state == stExecDone
}

// RunTomasulo simulates the dynamic instruction stream on the configured
// machine and returns the timing worksheet. Rules (stated so results are
// checkable by hand):
//
//   - Issue: one instruction per cycle, in program order, needing a free
//     station of the right class (and a free ROB slot when speculative).
//   - Operands: captured from the register file at issue, or tagged with
//     the producing instruction; a value broadcast on the CDB in cycle c
//     is usable from cycle c+1.
//   - Execute: starts no earlier than the cycle after issue, once all
//     operands are usable; functional units are fully pipelined.
//   - Write: one CDB write per cycle (earliest-finished first, then
//     program order); branches resolve without using the CDB. A station
//     freed by a write is reusable by an issue in the same cycle.
//   - Commit (speculative only): in order, one per cycle, the cycle
//     after write at the earliest. A mispredicted branch flushes all
//     younger instructions at commit; they re-issue after the penalty.
func RunTomasulo(stream []TInstr, cfg TomasuloConfig) (TomasuloResult, error) {
	if cfg.AddStations <= 0 || cfg.MulStations <= 0 || cfg.LoadBuffers <= 0 {
		return TomasuloResult{}, fmt.Errorf("arch: station counts must be positive: %+v", cfg)
	}
	if cfg.Speculative && cfg.ROBSize <= 0 {
		return TomasuloResult{}, fmt.Errorf("arch: speculative machine needs ROBSize > 0")
	}
	n := len(stream)
	res := TomasuloResult{Timings: make([]InstrTiming, n)}
	if n == 0 {
		return res, nil
	}

	poolSize := [fuClasses]int{fuAdd: cfg.AddStations, fuMul: cfg.MulStations, fuLoad: cfg.LoadBuffers}
	var poolUsed [fuClasses]int
	instrs := make([]*tomaInstr, n)
	reset := func(i int) {
		instrs[i] = &tomaInstr{ins: stream[i], srcWait: [2]int{-1, -1}}
	}
	for i := range instrs {
		reset(i)
	}
	// regProducer[r] = index of the youngest in-flight instruction that
	// will write r.
	regProducer := map[int]int{}
	nextIssue := 0
	issueBlockedUntil := int64(0)
	committed := 0
	written := 0 // completed (non-speculative termination)

	rebuildProducers := func() {
		regProducer = map[int]int{}
		for i := 0; i < nextIssue; i++ {
			in := instrs[i]
			if in.holdsStation() && in.ins.Dest >= 0 && in.ins.Op != TBranch {
				regProducer[in.ins.Dest] = i
			}
		}
	}

	// tryIssue attempts to issue instrs[nextIssue] at the given cycle.
	tryIssue := func(cycle int64) {
		if nextIssue >= n || cycle < issueBlockedUntil {
			return
		}
		in := instrs[nextIssue]
		if !cfg.Speculative {
			for j := 0; j < nextIssue; j++ {
				if instrs[j].ins.Op == TBranch && instrs[j].state < stWritten {
					res.BranchStalls++
					return
				}
			}
		} else {
			inFlight := 0
			for j := committed; j < nextIssue; j++ {
				if instrs[j].state != stWaiting && instrs[j].state != stCommitted {
					inFlight++
				}
			}
			if inFlight >= cfg.ROBSize {
				res.IssueStallsROB++
				return
			}
		}
		class := in.ins.Op.fuClass()
		if poolUsed[class] >= poolSize[class] {
			res.IssueStallsRS++
			return
		}
		poolUsed[class]++
		in.state = stIssued
		in.issue = cycle
		for s, src := range [2]int{in.ins.Src1, in.ins.Src2} {
			if src < 0 {
				continue
			}
			if p, ok := regProducer[src]; ok {
				prod := instrs[p]
				if prod.state == stWritten || prod.state == stCommitted {
					in.srcAvail[s] = prod.write
				} else {
					in.srcWait[s] = p
				}
			}
		}
		if in.ins.Dest >= 0 && in.ins.Op != TBranch {
			regProducer[in.ins.Dest] = nextIssue
		}
		nextIssue++
	}

	var cycle int64
	const maxCycles = 10_000_000
	done := func() bool {
		if cfg.Speculative {
			return committed == n
		}
		return written == n
	}
	for !done() {
		cycle++
		if cycle > maxCycles {
			return res, fmt.Errorf("arch: Tomasulo simulation exceeded %d cycles (livelock?)", maxCycles)
		}

		// ---- Commit (speculative, in order, one per cycle) ----
		if cfg.Speculative && committed < n {
			head := instrs[committed]
			canCommit := head.state == stWritten && head.write < cycle
			if head.ins.Op == TBranch {
				canCommit = head.state >= stExecDone && head.execComplete < cycle
				if canCommit && head.state != stWritten {
					// Branch frees its station at commit.
					poolUsed[fuAdd]--
				}
			}
			if canCommit {
				head.state = stCommitted
				head.commit = cycle
				committed++
				if head.ins.Op == TBranch && head.ins.Mispredicted {
					res.Flushes++
					for j := committed; j < n; j++ {
						if instrs[j].holdsStation() {
							poolUsed[instrs[j].ins.Op.fuClass()]--
						}
						if instrs[j].state != stWaiting {
							reset(j)
						}
					}
					nextIssue = committed
					issueBlockedUntil = cycle + int64(cfg.MispredictPenalty)
					rebuildProducers()
				}
			}
		}

		// ---- CDB write (one non-branch result per cycle) ----
		candIdx := -1
		for i, in := range instrs {
			if in.state == stExecDone && in.execComplete < cycle && in.ins.Op != TBranch {
				if candIdx == -1 ||
					in.execComplete < instrs[candIdx].execComplete ||
					(in.execComplete == instrs[candIdx].execComplete && i < candIdx) {
					candIdx = i
				}
			}
		}
		if candIdx >= 0 {
			in := instrs[candIdx]
			in.state = stWritten
			in.write = cycle
			written++
			poolUsed[in.ins.Op.fuClass()]--
			for _, other := range instrs {
				for s := range other.srcWait {
					if other.srcWait[s] == candIdx {
						other.srcWait[s] = -1
						other.srcAvail[s] = cycle
					}
				}
			}
			if p, ok := regProducer[in.ins.Dest]; ok && p == candIdx {
				delete(regProducer, in.ins.Dest)
			}
		}
		// Branches resolve without the CDB (non-speculative machine
		// frees their station here; speculative frees at commit).
		if !cfg.Speculative {
			for _, in := range instrs {
				if in.state == stExecDone && in.ins.Op == TBranch && in.execComplete < cycle {
					in.state = stWritten
					in.write = in.execComplete
					written++
					poolUsed[fuAdd]--
				}
			}
		}

		// ---- Execute ----
		for _, in := range instrs {
			if in.state == stIssued &&
				in.issue < cycle &&
				in.srcWait[0] == -1 && in.srcWait[1] == -1 &&
				in.srcAvail[0] < cycle && in.srcAvail[1] < cycle {
				in.state = stExecuting
				in.execStart = cycle
				in.execComplete = cycle + int64(cfg.latency(in.ins.Op)) - 1
			}
		}
		for _, in := range instrs {
			if in.state == stExecuting && in.execComplete <= cycle {
				in.state = stExecDone
			}
		}

		// ---- Issue ----
		tryIssue(cycle)
	}

	for i, in := range instrs {
		t := InstrTiming{Issue: in.issue, ExecStart: in.execStart,
			ExecComplete: in.execComplete, WriteCDB: in.write, Commit: in.commit}
		if in.ins.Op == TBranch && cfg.Speculative {
			t.WriteCDB = -1
		}
		if !cfg.Speculative {
			t.Commit = -1
		}
		res.Timings[i] = t
	}
	res.Cycles = cycle
	res.IPC = float64(n) / float64(cycle)
	return res, nil
}

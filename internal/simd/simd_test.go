package simd

import (
	"math"
	"testing"
	"testing/quick"
)

func mustMachine(t *testing.T, w int) *Machine {
	t.Helper()
	m, err := NewMachine(w)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(0); err == nil {
		t.Error("zero width accepted")
	}
	m := mustMachine(t, 8)
	if m.Width() != 8 {
		t.Errorf("Width = %d, want 8", m.Width())
	}
}

func TestAddMulScale(t *testing.T) {
	m := mustMachine(t, 4)
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{10, 20, 30, 40, 50}
	dst := make([]float64, 5)
	if err := m.Add(dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if dst[i] != a[i]+b[i] {
			t.Errorf("Add[%d] = %g", i, dst[i])
		}
	}
	if err := m.Mul(dst, a, b); err != nil {
		t.Fatal(err)
	}
	if dst[4] != 250 {
		t.Errorf("Mul[4] = %g, want 250", dst[4])
	}
	if err := m.Scale(dst, 2, a); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 6 {
		t.Errorf("Scale[2] = %g, want 6", dst[2])
	}
	// 5 elements at width 4 = 2 vector ops per call, 3 calls = 6.
	if m.Stats().VectorOps != 6 {
		t.Errorf("VectorOps = %d, want 6", m.Stats().VectorOps)
	}
	// Tail masking: 3 lanes idle per call.
	if m.Stats().LanesMasked != 9 {
		t.Errorf("LanesMasked = %d, want 9", m.Stats().LanesMasked)
	}
}

func TestLengthMismatches(t *testing.T) {
	m := mustMachine(t, 4)
	short := []float64{1}
	long := []float64{1, 2}
	if err := m.Add(short, long, long); err == nil {
		t.Error("Add length mismatch accepted")
	}
	if err := m.FMA(short, long, long, long); err == nil {
		t.Error("FMA length mismatch accepted")
	}
	if err := m.MaskedAdd(short, long, long, []bool{true}); err == nil {
		t.Error("MaskedAdd length mismatch accepted")
	}
	if err := m.Gather(short, long, []int{0, 1}); err == nil {
		t.Error("Gather length mismatch accepted")
	}
	if _, err := DotScalar(m, short, long); err == nil {
		t.Error("DotScalar mismatch accepted")
	}
	if _, err := DotVector(m, short, long); err == nil {
		t.Error("DotVector mismatch accepted")
	}
	if err := SaxpyScalar(m, 1, short, long); err == nil {
		t.Error("SaxpyScalar mismatch accepted")
	}
	if err := SaxpyVector(m, 1, short, long); err == nil {
		t.Error("SaxpyVector mismatch accepted")
	}
}

func TestFMA(t *testing.T) {
	m := mustMachine(t, 2)
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	c := []float64{7, 8, 9}
	dst := make([]float64, 3)
	if err := m.FMA(dst, a, b, c); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 18, 27}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("FMA[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestMaskedAddUtilization(t *testing.T) {
	m := mustMachine(t, 4)
	a := []float64{1, 1, 1, 1}
	b := []float64{1, 1, 1, 1}
	mask := []bool{true, false, true, false}
	dst := make([]float64, 4)
	if err := m.MaskedAdd(dst, a, b, mask); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 2, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MaskedAdd[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
	if got := m.Stats().VectorUtilization(); got != 0.5 {
		t.Errorf("utilization = %g, want 0.5", got)
	}
}

func TestReduceSum(t *testing.T) {
	m := mustMachine(t, 8)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 1
	}
	if got := m.ReduceSum(xs); got != 1000 {
		t.Errorf("ReduceSum = %g, want 1000", got)
	}
	if m.Stats().ScalarOps != 8 { // horizontal reduction
		t.Errorf("ScalarOps = %d, want 8", m.Stats().ScalarOps)
	}
}

func TestGather(t *testing.T) {
	m := mustMachine(t, 4)
	a := []float64{10, 20, 30, 40}
	idx := []int{3, 0, 2}
	dst := make([]float64, 3)
	if err := m.Gather(dst, a, idx); err != nil {
		t.Fatal(err)
	}
	if dst[0] != 40 || dst[1] != 10 || dst[2] != 30 {
		t.Errorf("Gather = %v", dst)
	}
	if err := m.Gather(dst, a, []int{0, 9, 1}); err == nil {
		t.Error("out-of-range gather accepted")
	}
}

func TestSaxpyScalarVsVectorAgree(t *testing.T) {
	n := 103
	x := make([]float64, n)
	y1 := make([]float64, n)
	y2 := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y1[i] = float64(2 * i)
		y2[i] = float64(2 * i)
	}
	ms := mustMachine(t, 8)
	mv := mustMachine(t, 8)
	if err := SaxpyScalar(ms, 3, x, y1); err != nil {
		t.Fatal(err)
	}
	if err := SaxpyVector(mv, 3, x, y2); err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("saxpy mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
	// Instruction count ratio approximates the lane width.
	ratio := float64(ms.Stats().ScalarOps) / float64(mv.Stats().VectorOps)
	if ratio < 7 || ratio > 8.01 {
		t.Errorf("instruction ratio = %g, want ~8", ratio)
	}
}

func TestDotAgreement(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{5, 4, 3, 2, 1}
	ms := mustMachine(t, 4)
	mv := mustMachine(t, 4)
	s, err := DotScalar(ms, x, y)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DotVector(mv, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if s != 35 || math.Abs(s-v) > 1e-12 {
		t.Errorf("dot scalar=%g vector=%g, want 35", s, v)
	}
}

// Property: vector and scalar kernels agree on random inputs, any width.
func TestKernelAgreementProperty(t *testing.T) {
	f := func(raw []float64, wRaw uint8) bool {
		w := int(wRaw%16) + 1
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1e6))
			}
		}
		ys := make([]float64, len(xs))
		for i := range ys {
			ys[i] = float64(i)
		}
		ms, err1 := NewMachine(w)
		mv, err2 := NewMachine(w)
		if err1 != nil || err2 != nil {
			return false
		}
		s, err1 := DotScalar(ms, xs, ys)
		v, err2 := DotVector(mv, xs, ys)
		if err1 != nil || err2 != nil {
			return false
		}
		scale := math.Abs(s)
		if scale < 1 {
			scale = 1
		}
		return math.Abs(s-v)/scale < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSpeedupModel(t *testing.T) {
	if got := SpeedupModel(1024, 8); got != 8 {
		t.Errorf("SpeedupModel(1024,8) = %g, want 8", got)
	}
	if got := SpeedupModel(9, 8); got != 4.5 {
		t.Errorf("SpeedupModel(9,8) = %g, want 4.5", got)
	}
	if SpeedupModel(0, 8) != 0 || SpeedupModel(8, 0) != 0 {
		t.Error("degenerate model values should be 0")
	}
}

func TestStatsReset(t *testing.T) {
	m := mustMachine(t, 4)
	_ = m.Add(make([]float64, 4), make([]float64, 4), make([]float64, 4))
	m.ResetStats()
	if m.Stats() != (OpStats{}) {
		t.Error("ResetStats did not zero counters")
	}
	if (OpStats{}).VectorUtilization() != 0 {
		t.Error("empty stats utilization should be 0")
	}
}

func BenchmarkSaxpyScalar(b *testing.B) { benchSaxpy(b, false) }
func BenchmarkSaxpyVector(b *testing.B) { benchSaxpy(b, true) }

func benchSaxpy(b *testing.B, vec bool) {
	m, err := NewMachine(8)
	if err != nil {
		b.Fatal(err)
	}
	n := 1 << 14
	x := make([]float64, n)
	y := make([]float64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vec {
			_ = SaxpyVector(m, 2, x, y)
		} else {
			_ = SaxpyScalar(m, 2, x, y)
		}
	}
}

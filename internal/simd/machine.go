// Package simd implements a software vector machine: the "extracting
// data parallelism using vectors and SIMD" part of the LAU dedicated
// course and the "SIMD and vector processors" row of Table I. Kernels
// are written against explicit vector registers with lane masks; the
// machine counts vector and scalar instructions so labs can verify the
// expected Width-fold reduction in dynamic instruction count.
package simd

import "fmt"

// Machine is a vector processor model with a fixed lane width.
type Machine struct {
	width int
	stats OpStats
}

// OpStats counts dynamic instructions executed on the machine.
type OpStats struct {
	VectorOps   int64 // whole-vector instructions issued
	ScalarOps   int64 // scalar (one-lane) instructions issued
	LanesActive int64 // total active lanes across vector ops
	LanesMasked int64 // total masked-off lanes across vector ops
}

// NewMachine creates a machine with the given lane width.
func NewMachine(width int) (*Machine, error) {
	if width <= 0 {
		return nil, fmt.Errorf("simd: lane width must be positive, got %d", width)
	}
	return &Machine{width: width}, nil
}

// Width reports the machine's lane count.
func (m *Machine) Width() int { return m.width }

// Stats returns the accumulated instruction counts.
func (m *Machine) Stats() OpStats { return m.stats }

// ResetStats zeroes the instruction counters.
func (m *Machine) ResetStats() { m.stats = OpStats{} }

// VectorUtilization is the fraction of lanes that did useful work.
func (s OpStats) VectorUtilization() float64 {
	total := s.LanesActive + s.LanesMasked
	if total == 0 {
		return 0
	}
	return float64(s.LanesActive) / float64(total)
}

// lanewise applies op across dst/a/b in vector-width chunks, masking the
// ragged tail, and accounts instructions.
func (m *Machine) lanewise(dst, a, b []float64, op func(x, y float64) float64) error {
	if len(dst) != len(a) || (b != nil && len(a) != len(b)) {
		return fmt.Errorf("simd: length mismatch dst=%d a=%d b=%d", len(dst), len(a), len(b))
	}
	n := len(a)
	for lo := 0; lo < n; lo += m.width {
		hi := lo + m.width
		active := m.width
		if hi > n {
			active = n - lo
			hi = n
		}
		for i := lo; i < hi; i++ {
			y := 0.0
			if b != nil {
				y = b[i]
			}
			dst[i] = op(a[i], y)
		}
		m.stats.VectorOps++
		m.stats.LanesActive += int64(active)
		m.stats.LanesMasked += int64(m.width - active)
	}
	return nil
}

// Add computes dst = a + b as vector instructions.
func (m *Machine) Add(dst, a, b []float64) error {
	return m.lanewise(dst, a, b, func(x, y float64) float64 { return x + y })
}

// Mul computes dst = a * b as vector instructions.
func (m *Machine) Mul(dst, a, b []float64) error {
	return m.lanewise(dst, a, b, func(x, y float64) float64 { return x * y })
}

// Scale computes dst = s * a as vector instructions.
func (m *Machine) Scale(dst []float64, s float64, a []float64) error {
	return m.lanewise(dst, a, nil, func(x, _ float64) float64 { return s * x })
}

// FMA computes dst = a*b + c as single fused vector instructions.
func (m *Machine) FMA(dst, a, b, c []float64) error {
	if len(dst) != len(a) || len(a) != len(b) || len(b) != len(c) {
		return fmt.Errorf("simd: FMA length mismatch")
	}
	n := len(a)
	for lo := 0; lo < n; lo += m.width {
		hi := lo + m.width
		active := m.width
		if hi > n {
			active = n - lo
			hi = n
		}
		for i := lo; i < hi; i++ {
			dst[i] = a[i]*b[i] + c[i]
		}
		m.stats.VectorOps++
		m.stats.LanesActive += int64(active)
		m.stats.LanesMasked += int64(m.width - active)
	}
	return nil
}

// MaskedAdd computes dst[i] = a[i]+b[i] where mask[i], else dst[i]=a[i];
// masked-off lanes are counted as idle (the divergence cost model).
func (m *Machine) MaskedAdd(dst, a, b []float64, mask []bool) error {
	if len(dst) != len(a) || len(a) != len(b) || len(b) != len(mask) {
		return fmt.Errorf("simd: masked add length mismatch")
	}
	n := len(a)
	for lo := 0; lo < n; lo += m.width {
		hi := lo + m.width
		if hi > n {
			hi = n
		}
		active := 0
		for i := lo; i < hi; i++ {
			if mask[i] {
				dst[i] = a[i] + b[i]
				active++
			} else {
				dst[i] = a[i]
			}
		}
		m.stats.VectorOps++
		m.stats.LanesActive += int64(active)
		m.stats.LanesMasked += int64(m.width - active)
	}
	return nil
}

// ReduceSum sums a using vector partial sums plus a final horizontal
// reduction (log2(width) scalar ops, charged as scalar instructions).
func (m *Machine) ReduceSum(a []float64) float64 {
	partial := make([]float64, m.width)
	n := len(a)
	for lo := 0; lo < n; lo += m.width {
		hi := lo + m.width
		active := m.width
		if hi > n {
			active = n - lo
			hi = n
		}
		for i := lo; i < hi; i++ {
			partial[i-lo] += a[i]
		}
		m.stats.VectorOps++
		m.stats.LanesActive += int64(active)
		m.stats.LanesMasked += int64(m.width - active)
	}
	sum := 0.0
	for _, p := range partial {
		sum += p
		m.stats.ScalarOps++
	}
	return sum
}

// Gather loads a[idx[i]] into dst as one vector instruction per chunk —
// the irregular-access primitive whose cost GPUs and vector machines
// both expose.
func (m *Machine) Gather(dst, a []float64, idx []int) error {
	if len(dst) != len(idx) {
		return fmt.Errorf("simd: gather length mismatch dst=%d idx=%d", len(dst), len(idx))
	}
	n := len(idx)
	for lo := 0; lo < n; lo += m.width {
		hi := lo + m.width
		active := m.width
		if hi > n {
			active = n - lo
			hi = n
		}
		for i := lo; i < hi; i++ {
			if idx[i] < 0 || idx[i] >= len(a) {
				return fmt.Errorf("simd: gather index %d out of range [0,%d)", idx[i], len(a))
			}
			dst[i] = a[idx[i]]
		}
		m.stats.VectorOps++
		m.stats.LanesActive += int64(active)
		m.stats.LanesMasked += int64(m.width - active)
	}
	return nil
}

package simd

import "fmt"

// SaxpyScalar computes y = a*x + y one element at a time, counting one
// scalar op per element on the machine (the baseline the labs vectorize).
func SaxpyScalar(m *Machine, a float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("simd: saxpy length mismatch")
	}
	for i := range x {
		y[i] = a*x[i] + y[i]
		m.stats.ScalarOps++
	}
	return nil
}

// SaxpyVector computes y = a*x + y with vector FMA instructions.
func SaxpyVector(m *Machine, a float64, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("simd: saxpy length mismatch")
	}
	ax := make([]float64, len(x))
	for i := range ax {
		ax[i] = a
	}
	return m.FMA(y, ax, x, y)
}

// DotScalar computes the dot product with scalar ops.
func DotScalar(m *Machine, x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("simd: dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
		m.stats.ScalarOps++
	}
	return s, nil
}

// DotVector computes the dot product with a vector multiply and a vector
// reduction.
func DotVector(m *Machine, x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("simd: dot length mismatch")
	}
	prod := make([]float64, len(x))
	if err := m.Mul(prod, x, y); err != nil {
		return 0, err
	}
	return m.ReduceSum(prod), nil
}

// SpeedupModel predicts the dynamic-instruction-count ratio between the
// scalar and vector versions of an n-element streaming kernel on a
// machine of the given width: n / ceil(n/width).
func SpeedupModel(n, width int) float64 {
	if n <= 0 || width <= 0 {
		return 0
	}
	chunks := (n + width - 1) / width
	return float64(n) / float64(chunks)
}

package member

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pdcedu/internal/csnet"
)

// startGossipServer serves a Memberlist's gossip (and optionally a KV
// data plane) on a real csnet server, returning the bound address. The
// memberlist is created after the bind so its ID is the dialable
// address.
func startGossipServer(t *testing.T, cfg Config, next csnet.Handler) (*Memberlist, string, *csnet.Server) {
	t.Helper()
	var mlp atomic.Pointer[Memberlist]
	srv := csnet.NewServer(csnet.HandlerFunc(func(r csnet.Request) csnet.Response {
		ml := mlp.Load()
		if ml == nil {
			return csnet.Response{Status: csnet.StatusError, Value: []byte("not ready")}
		}
		return ml.Handler(next).Serve(r)
	}), 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	cfg.ID = addr
	ml, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mlp.Store(ml)
	t.Cleanup(func() { ml.Stop() })
	return ml, addr, srv
}

// TestCsnetTransportConvergence runs the SWIM stack over the real
// csnet transport (the default every non-test deployment uses): two
// nodes on real TCP converge to two alive members, and killing one's
// server gets it declared dead by the survivor.
func TestCsnetTransportConvergence(t *testing.T) {
	cfg := Config{ProbeInterval: 25 * time.Millisecond, SuspicionTimeout: 150 * time.Millisecond}
	a, addrA, _ := startGossipServer(t, cfg, nil)
	b, addrB, srvB := startGossipServer(t, cfg, nil)
	if err := b.Join(addrA); err != nil {
		t.Fatalf("join: %v", err)
	}
	a.Start()
	b.Start()
	waitFor(t, 5*time.Second, "both nodes see 2 alive", func() bool { return a.NumAlive() == 2 && b.NumAlive() == 2 })

	// Kill B outright (server and detector): A must declare it dead.
	if err := b.Stop(); err != nil {
		t.Fatal(err)
	}
	srvB.Shutdown()
	waitFor(t, 5*time.Second, "survivor declares the killed node dead", func() bool {
		for _, m := range a.Members() {
			if m.ID == addrB && m.State == StateDead {
				return true
			}
		}
		return false
	})
}

// TestCsnetTransportRedial pins the connection cache: a peer that
// breaks the connection fails one exchange, and the next exchange
// redials transparently instead of staying wedged on the broken conn.
func TestCsnetTransportRedial(t *testing.T) {
	peer, err := New(Config{ID: "peer"})
	if err != nil {
		t.Fatal(err)
	}
	srv := csnet.NewServer(peer.Handler(nil), 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tr := newCsnetTransport(time.Second)
	defer tr.Close()
	ping, err := encodeMessage(message{Kind: msgPing, From: "tester"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Exchange(addr, ping, time.Second); err != nil {
		t.Fatalf("first exchange: %v", err)
	}
	srv.Shutdown()
	if _, err := tr.Exchange(addr, ping, 200*time.Millisecond); err == nil {
		t.Fatal("exchange against a dead server succeeded")
	}
	// Same address, fresh server: the transport must redial.
	srv2 := csnet.NewServer(peer.Handler(nil), 16)
	if _, err := srv2.Start(addr); err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	waitFor(t, 5*time.Second, "transport redials the restarted server", func() bool {
		_, err := tr.Exchange(addr, ping, time.Second)
		return err == nil
	})
}

// TestCsnetTransportClosed pins Close: every exchange after it fails
// fast, including ones that would have dialed fresh.
func TestCsnetTransportClosed(t *testing.T) {
	tr := newCsnetTransport(time.Second)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Exchange("127.0.0.1:1", []byte{1}, time.Second); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("exchange after close = %v, want transport closed", err)
	}
}

// TestCsnetTransportErrorStatus pins the non-OK reply path: a peer
// that cannot decode the gossip answers StatusError, which Exchange
// surfaces as an error.
func TestCsnetTransportErrorStatus(t *testing.T) {
	peer, err := New(Config{ID: "peer"})
	if err != nil {
		t.Fatal(err)
	}
	srv := csnet.NewServer(peer.Handler(nil), 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	tr := newCsnetTransport(time.Second)
	defer tr.Close()
	if _, err := tr.Exchange(addr, []byte{0xFF, 0xFF}, time.Second); err == nil {
		t.Fatal("garbage gossip exchanged cleanly")
	}
}

// TestHandlerRouting pins the port-sharing seam: OpGossip goes to the
// memberlist, data ops fall through to next, and a gossip-only
// endpoint (nil next) rejects data ops.
func TestHandlerRouting(t *testing.T) {
	ml, err := New(Config{ID: "node"})
	if err != nil {
		t.Fatal(err)
	}
	kv := csnet.NewKVHandler()
	shared := ml.Handler(kv)
	if resp := shared.Serve(csnet.Request{Op: csnet.OpSet, Key: "k", Value: []byte("v")}); resp.Status != csnet.StatusOK {
		t.Fatalf("data op through shared handler = %s", resp.Status)
	}
	ping, err := encodeMessage(message{Kind: msgPing, From: "tester"})
	if err != nil {
		t.Fatal(err)
	}
	resp := shared.Serve(csnet.Request{Op: csnet.OpGossip, Value: ping})
	if resp.Status != csnet.StatusOK {
		t.Fatalf("gossip through shared handler = %s: %s", resp.Status, resp.Value)
	}
	if msg, err := decodeMessage(resp.Value); err != nil || msg.Kind != msgAck {
		t.Fatalf("gossip reply = %+v %v, want ack", msg, err)
	}
	gossipOnly := ml.Handler(nil)
	if resp := gossipOnly.Serve(csnet.Request{Op: csnet.OpGet, Key: "k"}); resp.Status != csnet.StatusError {
		t.Fatalf("data op on gossip-only endpoint = %s, want error", resp.Status)
	}
	if resp := gossipOnly.Serve(csnet.Request{Op: csnet.OpGossip, Value: []byte{0xFF}}); resp.Status != csnet.StatusError {
		t.Fatalf("undecodable gossip = %s, want error", resp.Status)
	}
}

// TestStateString covers the state mnemonics (logged on every
// transition and printed by distnode's summary).
func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateAlive:   "alive",
		StateSuspect: "suspect",
		StateDead:    "dead",
		State(99):    "unknown",
	} {
		if got := s.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestSubscriberDropAccounting pins the back-pressure contract: a
// subscriber that never drains loses events (counted by Dropped)
// instead of wedging the detector.
func TestSubscriberDropAccounting(t *testing.T) {
	ml, err := New(Config{ID: "node"})
	if err != nil {
		t.Fatal(err)
	}
	ch := ml.Subscribe()
	ml.mu.Lock()
	for i := 0; i < eventBuffer+10; i++ {
		ml.onChange(Update{ID: "peer", State: StateAlive, Incarnation: uint64(i)}, false)
	}
	ml.mu.Unlock()
	if got := ml.Dropped(); got != 10 {
		t.Fatalf("Dropped = %d, want 10", got)
	}
	if len(ch) != eventBuffer {
		t.Fatalf("subscriber buffer = %d, want full %d", len(ch), eventBuffer)
	}
}

// TestJoinErrors covers the join failure paths: every seed dead fails,
// self-only joins are no-ops, and one live seed among dead ones wins.
func TestJoinErrors(t *testing.T) {
	ml, err := New(Config{ID: "node", ConnTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Stop()
	if err := ml.Join("127.0.0.1:1"); err == nil {
		t.Fatal("join of a dead seed succeeded")
	}
	if err := ml.Join("node"); err != nil {
		t.Fatalf("self-join = %v, want no-op nil", err)
	}
	if err := ml.Join(); err != nil {
		t.Fatalf("empty join = %v, want nil", err)
	}
	_, addr, _ := startGossipServer(t, Config{}, nil)
	if err := ml.Join("127.0.0.1:1", addr); err != nil {
		t.Fatalf("join with one live seed = %v, want nil", err)
	}
	if _, known := ml.tbl.state(addr); !known {
		t.Fatal("live seed not in the table after join")
	}
}

// TestSyncWithBadReply covers syncWith's protocol-error branches: a
// peer that answers a sync with the wrong kind, or with bytes that do
// not decode, is an error — not a crash, not a silent merge.
func TestSyncWithBadReply(t *testing.T) {
	ml, err := New(Config{ID: "node", ConnTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer ml.Stop()

	wrongKind, err := encodeMessage(message{Kind: msgAck, From: "evil"})
	if err != nil {
		t.Fatal(err)
	}
	srv := csnet.NewServer(csnet.HandlerFunc(func(r csnet.Request) csnet.Response {
		return csnet.Response{Status: csnet.StatusOK, Value: wrongKind}
	}), 4)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if err := ml.syncWith(addr); err == nil || !strings.Contains(err.Error(), "want syncAck") {
		t.Fatalf("sync with wrong-kind reply = %v", err)
	}

	garbage := csnet.NewServer(csnet.HandlerFunc(func(r csnet.Request) csnet.Response {
		return csnet.Response{Status: csnet.StatusOK, Value: []byte{0xFF, 0x01}}
	}), 4)
	gaddr, err := garbage.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer garbage.Shutdown()
	if err := ml.syncWith(gaddr); err == nil {
		t.Fatal("sync with undecodable reply succeeded")
	}
}

package member

import (
	"testing"
	"time"
)

// recorder captures onChange callbacks for table-level tests.
type recorder struct {
	updates []Update
	local   []bool
}

func (r *recorder) record(u Update, local bool) {
	r.updates = append(r.updates, u)
	r.local = append(r.local, local)
}

func (r *recorder) last() (Update, bool) {
	if len(r.updates) == 0 {
		return Update{}, false
	}
	return r.updates[len(r.updates)-1], true
}

// TestMemberTablePrecedence exercises the SWIM merge rules: higher
// incarnation always wins; at equal incarnation dead > suspect > alive;
// everything else is rejected.
func TestMemberTablePrecedence(t *testing.T) {
	var rec recorder
	tbl := newTable("self", rec.record)
	now := time.Now()

	tbl.apply(Update{ID: "a", State: StateAlive, Incarnation: 1}, now)
	if st, ok := tbl.state("a"); !ok || st != StateAlive {
		t.Fatalf("state(a) = %v,%v after alive@1", st, ok)
	}

	// Same incarnation: suspect overrides alive, alive does not override
	// suspect, dead overrides suspect.
	tbl.apply(Update{ID: "a", State: StateSuspect, Incarnation: 1}, now)
	if st, _ := tbl.state("a"); st != StateSuspect {
		t.Fatalf("suspect@1 did not override alive@1: %v", st)
	}
	tbl.apply(Update{ID: "a", State: StateAlive, Incarnation: 1}, now)
	if st, _ := tbl.state("a"); st != StateSuspect {
		t.Fatalf("alive@1 overrode suspect@1: %v", st)
	}
	tbl.apply(Update{ID: "a", State: StateDead, Incarnation: 1}, now)
	if st, _ := tbl.state("a"); st != StateDead {
		t.Fatalf("dead@1 did not override suspect@1: %v", st)
	}

	// Higher incarnation: alive@2 resurrects dead@1 (the refutation).
	tbl.apply(Update{ID: "a", State: StateAlive, Incarnation: 2}, now)
	if st, _ := tbl.state("a"); st != StateAlive {
		t.Fatalf("alive@2 did not override dead@1: %v", st)
	}

	// Stale incarnation is ignored outright.
	tbl.apply(Update{ID: "a", State: StateDead, Incarnation: 1}, now)
	if st, _ := tbl.state("a"); st != StateAlive {
		t.Fatalf("stale dead@1 overrode alive@2: %v", st)
	}

	if _, ok := tbl.state("ghost"); ok {
		t.Fatal("unknown member reported a state")
	}
}

// TestMemberTableSuspectTimeout drives the suspect -> dead transition
// through sweep: no death before the timeout, death after, exactly one
// locally originated dead claim.
func TestMemberTableSuspectTimeout(t *testing.T) {
	var rec recorder
	tbl := newTable("self", rec.record)
	t0 := time.Now()
	tbl.apply(Update{ID: "a", State: StateAlive, Incarnation: 3}, t0)
	tbl.suspect("a", t0)
	if st, _ := tbl.state("a"); st != StateSuspect {
		t.Fatalf("suspect() left state %v", st)
	}
	if u, _ := rec.last(); u.State != StateSuspect || u.Incarnation != 3 {
		t.Fatalf("suspect claim = %+v, want suspect@3", u)
	}

	if n := tbl.sweep(t0.Add(50*time.Millisecond), 100*time.Millisecond); n != 0 {
		t.Fatalf("sweep before timeout declared %d dead", n)
	}
	if n := tbl.sweep(t0.Add(150*time.Millisecond), 100*time.Millisecond); n != 1 {
		t.Fatalf("sweep after timeout declared %d dead, want 1", n)
	}
	if st, _ := tbl.state("a"); st != StateDead {
		t.Fatalf("state after sweep = %v, want dead", st)
	}
	u, _ := rec.last()
	if u.State != StateDead || u.Incarnation != 3 || !rec.local[len(rec.local)-1] {
		t.Fatalf("dead claim = %+v (local=%v), want local dead@3", u, rec.local[len(rec.local)-1])
	}
	// A dead member sweeps no further.
	if n := tbl.sweep(t0.Add(time.Hour), 100*time.Millisecond); n != 0 {
		t.Fatalf("second sweep declared %d dead", n)
	}
}

// TestMemberTableSuspectOnlyAlive checks that suspect() touches only
// alive members: suspecting a suspect resets nothing (the original
// suspicion clock keeps running), and dead members stay dead.
func TestMemberTableSuspectOnlyAlive(t *testing.T) {
	var rec recorder
	tbl := newTable("self", rec.record)
	t0 := time.Now()
	tbl.apply(Update{ID: "a", State: StateAlive, Incarnation: 1}, t0)
	tbl.suspect("a", t0)
	n := len(rec.updates)
	tbl.suspect("a", t0.Add(time.Second))
	if len(rec.updates) != n {
		t.Fatal("re-suspecting a suspect emitted a claim")
	}
	// The clock was not reset: timeout measured from the first suspicion.
	if got := tbl.sweep(t0.Add(110*time.Millisecond), 100*time.Millisecond); got != 1 {
		t.Fatalf("sweep declared %d dead, want 1 (suspicion clock reset?)", got)
	}
	tbl.suspect("a", t0.Add(2*time.Second))
	if st, _ := tbl.state("a"); st != StateDead {
		t.Fatalf("suspect() moved a dead member to %v", st)
	}
	tbl.suspect("ghost", t0)
	if _, ok := tbl.state("ghost"); ok {
		t.Fatal("suspect() invented a member")
	}
}

// TestMemberTableRefutesSelf checks the refutation path: a claim that
// the local node is suspect or dead at the current incarnation bumps
// the incarnation and re-broadcasts alive; stale claims are ignored.
func TestMemberTableRefutesSelf(t *testing.T) {
	var rec recorder
	tbl := newTable("self", rec.record)
	now := time.Now()

	tbl.apply(Update{ID: "self", State: StateSuspect, Incarnation: 1}, now)
	u, ok := rec.last()
	if !ok || u.ID != "self" || u.State != StateAlive || u.Incarnation != 2 {
		t.Fatalf("refutation = %+v, want alive@2", u)
	}
	if !rec.local[len(rec.local)-1] {
		t.Fatal("refutation not marked locally originated")
	}

	// A dead claim at a later incarnation refutes to one past it.
	tbl.apply(Update{ID: "self", State: StateDead, Incarnation: 7}, now)
	if u, _ := rec.last(); u.State != StateAlive || u.Incarnation != 8 {
		t.Fatalf("refutation of dead@7 = %+v, want alive@8", u)
	}

	// Stale claims (below current incarnation) change nothing.
	n := len(rec.updates)
	tbl.apply(Update{ID: "self", State: StateSuspect, Incarnation: 3}, now)
	tbl.apply(Update{ID: "self", State: StateAlive, Incarnation: 99}, now)
	if len(rec.updates) != n {
		t.Fatalf("stale/alive self claims emitted %d extra updates", len(rec.updates)-n)
	}
	// Self never appears in the members map.
	if _, ok := tbl.state("self"); ok {
		t.Fatal("table stored the local node")
	}
}

// TestMemberTableSnapshots covers the read-side accessors used by the
// probe loop and subscribers.
func TestMemberTableSnapshots(t *testing.T) {
	var rec recorder
	tbl := newTable("self", rec.record)
	now := time.Now()
	tbl.apply(Update{ID: "b", State: StateAlive, Incarnation: 1}, now)
	tbl.apply(Update{ID: "a", State: StateSuspect, Incarnation: 2}, now)
	tbl.apply(Update{ID: "c", State: StateDead, Incarnation: 1}, now)

	snap := tbl.snapshot()
	if len(snap) != 4 || snap[0].ID != "a" || snap[3].ID != "self" {
		t.Fatalf("snapshot = %+v, want a,b,c,self sorted", snap)
	}
	if snap[3].State != StateAlive {
		t.Fatalf("self snapshot state = %v", snap[3].State)
	}

	targets := tbl.probeTargets()
	if len(targets) != 2 || targets[0] != "a" || targets[1] != "b" {
		t.Fatalf("probeTargets = %v, want [a b] (dead excluded)", targets)
	}
	known := tbl.knownIDs()
	if len(known) != 3 || known[2] != "c" {
		t.Fatalf("knownIDs = %v, want [a b c] (dead included)", known)
	}
	if n := tbl.aliveCount(); n != 3 {
		t.Fatalf("aliveCount = %d, want 3 (self, a, b)", n)
	}
}

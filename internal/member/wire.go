package member

import (
	"encoding/binary"
	"fmt"
)

// msgKind discriminates the SWIM message types carried inside an
// OpGossip frame.
type msgKind uint8

const (
	// msgPing is a direct liveness probe; answered by msgAck.
	msgPing msgKind = iota + 1
	// msgPingReq asks the receiver to probe Target on the sender's
	// behalf (the indirect probe that routes around a lossy path);
	// answered by msgAck if the relay heard back, msgNack otherwise.
	msgPingReq
	// msgAck confirms liveness.
	msgAck
	// msgNack reports a failed indirect probe.
	msgNack
	// msgSync requests a full-state exchange: its Updates carry the
	// sender's whole table; the msgSyncAck reply carries the
	// receiver's. Join and periodic anti-entropy use it.
	msgSync
	// msgSyncAck answers msgSync.
	msgSyncAck
)

// message is one decoded SWIM protocol message. Every message
// piggybacks Updates — dissemination rides on probe traffic.
type message struct {
	Kind    msgKind
	From    string // sender's member ID
	Target  string // msgPingReq only: who to probe
	Updates []Update
}

func appendString16(b []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return nil, fmt.Errorf("member: string length %d exceeds 65535", len(s))
	}
	var l [2]byte
	binary.BigEndian.PutUint16(l[:], uint16(len(s)))
	b = append(b, l[:]...)
	return append(b, s...), nil
}

func readString16(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("member: truncated string length")
	}
	n := int(binary.BigEndian.Uint16(b))
	if len(b) < 2+n {
		return "", nil, fmt.Errorf("member: truncated string body")
	}
	return string(b[2 : 2+n]), b[2+n:], nil
}

// encodeMessage serializes a message:
// kind(1) from(str16) target(str16) count(2) then count * update,
// update = state(1) incarnation(8) id(str16).
func encodeMessage(m message) ([]byte, error) {
	if len(m.Updates) > 0xFFFF {
		return nil, fmt.Errorf("member: %d piggybacked updates exceed 65535", len(m.Updates))
	}
	buf := []byte{byte(m.Kind)}
	var err error
	if buf, err = appendString16(buf, m.From); err != nil {
		return nil, err
	}
	if buf, err = appendString16(buf, m.Target); err != nil {
		return nil, err
	}
	var c [2]byte
	binary.BigEndian.PutUint16(c[:], uint16(len(m.Updates)))
	buf = append(buf, c[:]...)
	var inc [8]byte
	for _, u := range m.Updates {
		buf = append(buf, byte(u.State))
		binary.BigEndian.PutUint64(inc[:], u.Incarnation)
		buf = append(buf, inc[:]...)
		if buf, err = appendString16(buf, u.ID); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// decodeMessage parses a serialized message.
func decodeMessage(b []byte) (message, error) {
	var m message
	if len(b) < 1 {
		return m, fmt.Errorf("member: empty message")
	}
	m.Kind = msgKind(b[0])
	if m.Kind < msgPing || m.Kind > msgSyncAck {
		return m, fmt.Errorf("member: unknown message kind %d", b[0])
	}
	b = b[1:]
	var err error
	if m.From, b, err = readString16(b); err != nil {
		return m, err
	}
	if m.Target, b, err = readString16(b); err != nil {
		return m, err
	}
	if len(b) < 2 {
		return m, fmt.Errorf("member: truncated update count")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > 0 {
		m.Updates = make([]Update, 0, n)
	}
	for i := 0; i < n; i++ {
		if len(b) < 9 {
			return m, fmt.Errorf("member: truncated update %d", i)
		}
		u := Update{State: State(b[0]), Incarnation: binary.BigEndian.Uint64(b[1:9])}
		if u.State < StateAlive || u.State > StateDead {
			return m, fmt.Errorf("member: unknown state %d in update %d", b[0], i)
		}
		b = b[9:]
		if u.ID, b, err = readString16(b); err != nil {
			return m, err
		}
		m.Updates = append(m.Updates, u)
	}
	if len(b) != 0 {
		return m, fmt.Errorf("member: %d trailing bytes", len(b))
	}
	return m, nil
}

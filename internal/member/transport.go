package member

import (
	"fmt"
	"sync"
	"time"

	"pdcedu/internal/csnet"
)

// Transport delivers one encoded SWIM message to a peer and returns
// the peer's encoded reply. The default implementation rides csnet's
// multiplexed connections (gossip shares the data port); tests plug in
// an in-memory transport to simulate partitions deterministically.
type Transport interface {
	// Exchange performs one request/response round with peer, giving
	// up after timeout without tearing down shared connection state.
	Exchange(peer string, msg []byte, timeout time.Duration) ([]byte, error)
	// Close releases any held connections.
	Close() error
}

// csnetTransport sends SWIM messages as OpGossip requests over one
// pooled multiplexed connection per peer, dialed lazily and redialed
// after transport failures. Membership probes therefore exercise the
// same wire path the data plane uses: a peer that cannot serve gossip
// cannot serve reads either, which is exactly what the detector should
// measure.
type csnetTransport struct {
	connTimeout time.Duration

	mu      sync.Mutex
	clients map[string]*csnet.Client
	closed  bool
}

// newCsnetTransport builds the default transport; connTimeout bounds
// dialing and each connection-level request deadline (per-call probe
// timeouts are enforced on top via ResponseTimeout).
func newCsnetTransport(connTimeout time.Duration) *csnetTransport {
	return &csnetTransport{connTimeout: connTimeout, clients: map[string]*csnet.Client{}}
}

func (t *csnetTransport) client(peer string) (*csnet.Client, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, fmt.Errorf("member: transport closed")
	}
	if cl := t.clients[peer]; cl != nil && !cl.Broken() {
		t.mu.Unlock()
		return cl, nil
	}
	stale := t.clients[peer]
	delete(t.clients, peer)
	t.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	cl, err := csnet.Dial(peer, t.connTimeout) // dial outside the lock
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		cl.Close()
		return nil, fmt.Errorf("member: transport closed")
	}
	if cur := t.clients[peer]; cur != nil && !cur.Broken() {
		t.mu.Unlock()
		cl.Close() // lost a concurrent redial race
		return cur, nil
	}
	t.clients[peer] = cl
	t.mu.Unlock()
	return cl, nil
}

// Exchange implements Transport.
func (t *csnetTransport) Exchange(peer string, msg []byte, timeout time.Duration) ([]byte, error) {
	cl, err := t.client(peer)
	if err != nil {
		return nil, err
	}
	resp, err := cl.Send(csnet.Request{Op: csnet.OpGossip, Value: msg}).ResponseTimeout(timeout)
	if err != nil {
		return nil, err
	}
	if resp.Status != csnet.StatusOK {
		return nil, fmt.Errorf("member: gossip to %s: status %s: %s", peer, resp.Status, resp.Value)
	}
	return resp.Value, nil
}

// Close implements Transport.
func (t *csnetTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	clients := t.clients
	t.clients = map[string]*csnet.Client{}
	t.mu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
	return nil
}

// Handler wraps a csnet Handler so one server port carries both the
// key-value data plane and the membership control plane: OpGossip
// frames are answered by the Memberlist, everything else is passed
// through to next. A nil next serves gossip only.
func (m *Memberlist) Handler(next csnet.Handler) csnet.Handler {
	return csnet.HandlerFunc(func(req csnet.Request) csnet.Response {
		if req.Op == csnet.OpGossip {
			reply, err := m.HandleMessage(req.Value)
			if err != nil {
				return csnet.Response{Status: csnet.StatusError, Value: []byte(err.Error())}
			}
			return csnet.Response{Status: csnet.StatusOK, Value: reply}
		}
		if next == nil {
			return csnet.Response{Status: csnet.StatusError, Value: []byte("member: gossip-only endpoint")}
		}
		return next.Serve(req)
	})
}

package member

import (
	"sort"
	"time"
)

// State is a member's health as seen by the local failure detector.
type State uint8

const (
	// StateAlive means the member is (believed) healthy.
	StateAlive State = iota + 1
	// StateSuspect means a probe round failed; the member has until the
	// suspicion timeout to refute with a higher incarnation.
	StateSuspect
	// StateDead means the suspicion timeout expired (or a peer's did).
	StateDead
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Update is one membership claim disseminated by gossip: "node ID is in
// State at Incarnation". Incarnation numbers are owned by the node they
// describe — only the node itself increments its incarnation, which is
// what lets it refute a false suspicion authoritatively.
type Update struct {
	ID          string
	State       State
	Incarnation uint64
}

// Event is a local membership-table transition delivered to
// subscribers. It carries the update that caused the transition.
type Event struct {
	ID          string
	State       State
	Incarnation uint64
}

// Member is a snapshot row of the membership table.
type Member struct {
	ID          string
	State       State
	Incarnation uint64
}

// entry is one tracked peer.
type entry struct {
	state State
	inc   uint64
	since time.Time // when state last changed; suspicion clock
}

// table is the SWIM membership state machine: it applies gossiped
// updates under the protocol's precedence rules, times suspicions out
// into deaths, and refutes claims about the local node. It is pure
// bookkeeping — no I/O, no locks — so Memberlist serializes access and
// the tests can drive it deterministically.
//
// Precedence (per member, comparing an incoming update u to the current
// entry cur): higher incarnation always wins; at equal incarnation
// dead > suspect > alive. Alive therefore only overrides suspicion or
// death when the member has re-incarnated, which is exactly the
// refutation path.
type table struct {
	self    string
	selfInc uint64
	members map[string]*entry

	// onChange receives every accepted transition plus locally
	// originated claims (refutations, suspicion expiries) for gossip
	// re-broadcast and event delivery.
	onChange func(u Update, local bool)
}

func newTable(self string, onChange func(Update, bool)) *table {
	return &table{
		self:     self,
		selfInc:  1,
		members:  map[string]*entry{},
		onChange: onChange,
	}
}

// apply merges one gossiped update into the table. Updates about the
// local node are never stored: a claim that we are suspect or dead at
// our current (or later) incarnation is refuted by bumping our
// incarnation and re-broadcasting alive.
func (t *table) apply(u Update, now time.Time) {
	if u.ID == t.self {
		if u.State != StateAlive && u.Incarnation >= t.selfInc {
			t.selfInc = u.Incarnation + 1
			t.onChange(Update{ID: t.self, State: StateAlive, Incarnation: t.selfInc}, true)
		}
		return
	}
	cur, known := t.members[u.ID]
	if !known {
		t.members[u.ID] = &entry{state: u.State, inc: u.Incarnation, since: now}
		t.onChange(u, false)
		return
	}
	accept := false
	switch {
	case u.Incarnation > cur.inc:
		accept = true
	case u.Incarnation == cur.inc:
		accept = u.State > cur.state
	}
	if !accept {
		return
	}
	cur.state = u.State
	cur.inc = u.Incarnation
	cur.since = now
	t.onChange(u, false)
}

// suspect marks a member suspect at its current incarnation — the local
// probe verdict, as opposed to a gossiped claim.
func (t *table) suspect(id string, now time.Time) {
	cur, ok := t.members[id]
	if !ok || cur.state != StateAlive {
		return
	}
	cur.state = StateSuspect
	cur.since = now
	t.onChange(Update{ID: id, State: StateSuspect, Incarnation: cur.inc}, true)
}

// sweep expires suspicions older than timeout into deaths and returns
// how many members it declared dead.
func (t *table) sweep(now time.Time, timeout time.Duration) int {
	dead := 0
	for id, e := range t.members {
		if e.state == StateSuspect && now.Sub(e.since) >= timeout {
			e.state = StateDead
			e.since = now
			dead++
			t.onChange(Update{ID: id, State: StateDead, Incarnation: e.inc}, true)
		}
	}
	return dead
}

// snapshot returns every known member plus the local node, sorted by ID.
func (t *table) snapshot() []Member {
	out := make([]Member, 0, len(t.members)+1)
	out = append(out, Member{ID: t.self, State: StateAlive, Incarnation: t.selfInc})
	for id, e := range t.members {
		out = append(out, Member{ID: id, State: e.state, Incarnation: e.inc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// probeTargets returns the non-dead peers, sorted by ID for a stable
// probe rotation.
func (t *table) probeTargets() []string {
	out := make([]string, 0, len(t.members))
	for id, e := range t.members {
		if e.state != StateDead {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// state reports a member's current state; ok is false for unknown IDs
// and for the local node (the table never stores self).
func (t *table) state(id string) (State, bool) {
	e, ok := t.members[id]
	if !ok {
		return 0, false
	}
	return e.state, true
}

// knownIDs returns every tracked member including dead ones, sorted by
// ID — the anti-entropy sync rotation, which must reach dead-marked
// nodes so a healed partition reconciles.
func (t *table) knownIDs() []string {
	out := make([]string, 0, len(t.members))
	for id := range t.members {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// aliveCount reports how many members (including self) are not dead;
// the gossip retransmit limit scales with it.
func (t *table) aliveCount() int {
	n := 1
	for _, e := range t.members {
		if e.state != StateDead {
			n++
		}
	}
	return n
}

package member

import (
	"reflect"
	"strings"
	"testing"
)

// TestMemberWireRoundTrip encodes and decodes every message shape the
// protocol produces.
func TestMemberWireRoundTrip(t *testing.T) {
	cases := []message{
		{Kind: msgPing, From: "127.0.0.1:9001"},
		{Kind: msgAck, From: "n2", Updates: []Update{
			{ID: "n1", State: StateAlive, Incarnation: 1},
			{ID: "n3", State: StateSuspect, Incarnation: 42},
			{ID: "n4", State: StateDead, Incarnation: 1<<63 + 5},
		}},
		{Kind: msgPingReq, From: "n1", Target: "n3"},
		{Kind: msgNack, From: "n3"},
		{Kind: msgSync, From: "n5", Updates: []Update{{ID: "n5", State: StateAlive, Incarnation: 1}}},
		{Kind: msgSyncAck, From: ""},
	}
	for _, want := range cases {
		b, err := encodeMessage(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := decodeMessage(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestMemberWireErrors feeds the decoder malformed inputs; every one
// must fail loudly rather than mis-parse.
func TestMemberWireErrors(t *testing.T) {
	good, err := encodeMessage(message{Kind: msgAck, From: "n1", Updates: []Update{
		{ID: "n2", State: StateAlive, Incarnation: 9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":             {},
		"unknown kind zero": {0},
		"unknown kind high": {99},
		"truncated from":    {byte(msgPing), 0},
		"truncated body":    good[:len(good)-3],
		"trailing bytes":    append(append([]byte{}, good...), 0xAB),
	}
	// A corrupt state byte inside an update.
	bad := append([]byte{}, good...)
	bad[len(bad)-13] = 77 // state byte of the single update
	cases["bad state"] = bad

	for name, b := range cases {
		if _, err := decodeMessage(b); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}

	// Oversized fields are rejected at encode time.
	if _, err := encodeMessage(message{Kind: msgPing, From: strings.Repeat("x", 1<<16)}); err == nil {
		t.Error("encode accepted a 64KiB From")
	}
	if _, err := encodeMessage(message{Kind: msgPing, Updates: []Update{
		{ID: strings.Repeat("k", 1<<16), State: StateAlive},
	}}); err == nil {
		t.Error("encode accepted a 64KiB update ID")
	}
}

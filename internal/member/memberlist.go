// Package member implements SWIM-style cluster membership over the
// csnet transport: periodic direct probes with indirect ping-req
// fallback, alive -> suspect -> dead transitions guarded by incarnation
// numbers (so a live node can refute a false suspicion), and gossip
// dissemination piggybacked on the probe traffic itself. A periodic
// full-state sync (push-pull anti-entropy) bounds convergence time and
// lets nodes on both sides of a healed partition rediscover each other
// even after they have declared each other dead.
package member

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pdcedu/internal/obs"
)

// Config configures a Memberlist. Zero values take the documented
// defaults, chosen for LAN-scale clusters; tests shrink the intervals
// to milliseconds.
type Config struct {
	// ID is this node's member identity. It doubles as the address
	// peers dial to reach it, so it must be the node's host:port.
	ID string
	// ProbeInterval is the failure-detector period: one probe (or
	// sync) round per tick (default 500ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds a direct ping round-trip (default
	// ProbeInterval/2). Indirect probes get twice this budget.
	ProbeTimeout time.Duration
	// SuspicionTimeout is how long a suspect member has to refute
	// before it is declared dead (default 5*ProbeInterval).
	SuspicionTimeout time.Duration
	// IndirectFanout is how many peers relay an indirect probe after a
	// failed direct ping (default 3).
	IndirectFanout int
	// SyncEvery makes every Nth round a full-state push-pull sync
	// instead of a ping (default 4). Sync targets rotate over every
	// known member including dead ones — that reach-back is what heals
	// a fully partitioned cluster.
	SyncEvery int
	// Piggyback is the maximum membership updates carried per message
	// (default 8).
	Piggyback int
	// RetransmitMult scales the per-update retransmit budget
	// mult*ceil(log2(n+1)) (default 3).
	RetransmitMult int
	// ConnTimeout bounds transport dials and connection-level request
	// deadlines (default 2s).
	ConnTimeout time.Duration
	// Transport overrides the default csnet transport; tests plug in
	// an in-memory network to simulate partitions.
	Transport Transport
	// Logf, when non-nil, receives one line per membership transition.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.ID == "" {
		return cfg, errors.New("member: config needs an ID")
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = cfg.ProbeInterval / 2
	}
	if cfg.SuspicionTimeout <= 0 {
		cfg.SuspicionTimeout = 5 * cfg.ProbeInterval
	}
	if cfg.IndirectFanout <= 0 {
		cfg.IndirectFanout = 3
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 4
	}
	if cfg.Piggyback <= 0 {
		cfg.Piggyback = 8
	}
	if cfg.RetransmitMult <= 0 {
		cfg.RetransmitMult = 3
	}
	if cfg.ConnTimeout <= 0 {
		cfg.ConnTimeout = 2 * time.Second
	}
	return cfg, nil
}

// eventBuffer is the per-subscriber channel capacity. Transitions are
// rare (state changes only, not probe traffic), so a subscriber that
// drains at all keeps up; if one stalls completely, events are dropped
// rather than wedging the failure detector.
const eventBuffer = 256

// Memberlist is one node's view of the cluster: the SWIM failure
// detector, the gossip dissemination queue, and the membership table.
// All methods are safe for concurrent use.
type Memberlist struct {
	cfg       Config
	transport Transport

	mu      sync.Mutex
	tbl     *table
	bq      broadcasts
	subs    []chan Event
	dropped uint64
	probeQ  []string // current probe rotation, consumed front to back
	syncQ   []string // current sync rotation (includes dead members)
	started bool
	stopped bool

	stop chan struct{}
	done chan struct{}
}

// New builds a Memberlist; call Start to begin probing. The node serves
// gossip as soon as its HandleMessage is reachable (see Handler), so a
// list that is registered with a csnet server answers probes even
// before Start.
func New(cfg Config) (*Memberlist, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	m := &Memberlist{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	m.transport = cfg.Transport
	if m.transport == nil {
		m.transport = newCsnetTransport(cfg.ConnTimeout)
	}
	m.tbl = newTable(cfg.ID, m.onChange)
	return m, nil
}

// onChange receives every accepted membership transition with m.mu
// held: it queues the update for gossip and fans the event out to
// subscribers (non-blocking; a full subscriber drops).
func (m *Memberlist) onChange(u Update, local bool) {
	switch {
	case u.State == StateSuspect:
		suspectTrans.Inc()
	case u.State == StateDead:
		deadTrans.Inc()
	case local && u.ID == m.cfg.ID && u.State == StateAlive:
		// The only local self-alive transition is the refutation path:
		// this node heard itself suspected or dead and re-asserted life
		// with a higher incarnation.
		refuteTrans.Inc()
	}
	m.bq.queue(u)
	if m.cfg.Logf != nil {
		origin := "gossip"
		if local {
			origin = "local"
		}
		m.cfg.Logf("member %s: %s -> %s (incarnation %d, %s)", m.cfg.ID, u.ID, u.State, u.Incarnation, origin)
	}
	ev := Event{ID: u.ID, State: u.State, Incarnation: u.Incarnation}
	for _, ch := range m.subs {
		select {
		case ch <- ev:
		default:
			m.dropped++
		}
	}
}

// ID returns this node's member identity.
func (m *Memberlist) ID() string { return m.cfg.ID }

// Members returns a snapshot of the membership table (self included),
// sorted by ID.
func (m *Memberlist) Members() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tbl.snapshot()
}

// NumAlive reports how many members (self included) are not dead.
func (m *Memberlist) NumAlive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tbl.aliveCount()
}

// Subscribe returns a channel of membership transitions. Events are
// delivered best-effort: a subscriber that stops draining loses events
// rather than blocking the detector (see Dropped).
func (m *Memberlist) Subscribe() <-chan Event {
	ch := make(chan Event, eventBuffer)
	m.mu.Lock()
	m.subs = append(m.subs, ch)
	m.mu.Unlock()
	return ch
}

// Dropped reports how many events were discarded on full subscriber
// channels.
func (m *Memberlist) Dropped() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// Start launches the probe loop. It is a no-op after the first call.
func (m *Memberlist) Start() {
	m.mu.Lock()
	if m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.started = true
	m.mu.Unlock()
	go m.run()
}

// Stop halts the probe loop and closes the transport. Safe to call
// more than once.
func (m *Memberlist) Stop() error {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil
	}
	m.stopped = true
	started := m.started
	m.mu.Unlock()
	close(m.stop)
	if started {
		<-m.done
	}
	return m.transport.Close()
}

// Join introduces this node to the cluster by full-syncing with each
// seed peer. It succeeds if at least one peer answered; gossip spreads
// the new member from there. Joining an empty peer list is a no-op (a
// bootstrap node).
func (m *Memberlist) Join(peers ...string) error {
	var firstErr error
	joined := 0
	for _, peer := range peers {
		if peer == m.cfg.ID {
			continue
		}
		if err := m.syncWith(peer); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("member: join %s: %w", peer, err)
			}
			continue
		}
		joined++
	}
	if joined == 0 && firstErr != nil {
		return firstErr
	}
	return nil
}

// run is the SWIM protocol period: each tick probes the next member in
// the rotation (or full-syncs, every SyncEvery-th round), then expires
// overdue suspicions.
func (m *Memberlist) run() {
	defer close(m.done)
	ticker := time.NewTicker(m.cfg.ProbeInterval)
	defer ticker.Stop()
	round := 0
	for {
		select {
		case <-m.stop:
			return
		case <-ticker.C:
		}
		round++
		if round%m.cfg.SyncEvery == 0 {
			if peer, ok := m.nextSyncTarget(); ok {
				_ = m.syncWith(peer)
			}
		} else if target, ok := m.nextProbeTarget(); ok {
			m.probe(target)
		}
		m.mu.Lock()
		m.tbl.sweep(time.Now(), m.cfg.SuspicionTimeout)
		m.mu.Unlock()
	}
}

// nextProbeTarget pops the next non-dead member from the probe
// rotation, refilling the rotation when it empties. The rotation is the
// sorted member list, so every member is probed once per cycle — the
// SWIM round-robin that bounds first-detection time.
func (m *Memberlist) nextProbeTarget() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		if len(m.probeQ) == 0 {
			m.probeQ = m.tbl.probeTargets()
			if len(m.probeQ) == 0 {
				return "", false
			}
		}
		for len(m.probeQ) > 0 {
			id := m.probeQ[0]
			m.probeQ = m.probeQ[1:]
			if st, ok := m.tbl.state(id); ok && st != StateDead {
				return id, true
			}
		}
		// Every queued member died since the refill; refill once more
		// (probeTargets may now be empty, ending the loop above).
		if len(m.tbl.probeTargets()) == 0 {
			return "", false
		}
	}
}

// nextSyncTarget pops the next member from the sync rotation, which
// deliberately includes dead members: syncing with a node we believe
// dead (and that may believe us dead) is the reconciliation path after
// a healed partition.
func (m *Memberlist) nextSyncTarget() (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.syncQ) == 0 {
		m.syncQ = m.tbl.knownIDs()
	}
	if len(m.syncQ) == 0 {
		return "", false
	}
	id := m.syncQ[0]
	m.syncQ = m.syncQ[1:]
	return id, true
}

// encodeOutbound builds one outgoing message of the given kind with
// piggybacked gossip attached.
func (m *Memberlist) encodeOutbound(kind msgKind, target string) []byte {
	m.mu.Lock()
	limit := retransmitLimit(m.cfg.RetransmitMult, m.tbl.aliveCount())
	updates := m.bq.take(m.cfg.Piggyback, limit)
	m.mu.Unlock()
	b, err := encodeMessage(message{Kind: kind, From: m.cfg.ID, Target: target, Updates: updates})
	if err != nil {
		// Only oversized IDs can fail encoding; they are rejected at
		// config time, so this is unreachable — but never probe with a
		// nil message.
		return []byte{byte(kind)}
	}
	return b
}

// encodeSync builds a full-state message: every table row (self
// included) as updates. Sync bypasses the piggyback budget — it is the
// anti-entropy path and must carry everything.
func (m *Memberlist) encodeSync(kind msgKind) []byte {
	m.mu.Lock()
	rows := m.tbl.snapshot()
	m.mu.Unlock()
	updates := make([]Update, len(rows))
	for i, r := range rows {
		updates[i] = Update{ID: r.ID, State: r.State, Incarnation: r.Incarnation}
	}
	b, err := encodeMessage(message{Kind: kind, From: m.cfg.ID, Updates: updates})
	if err != nil {
		return []byte{byte(kind)}
	}
	return b
}

// ingest decodes a peer reply and merges its piggybacked updates,
// returning the message for kind checks.
func (m *Memberlist) ingest(b []byte) (message, error) {
	msg, err := decodeMessage(b)
	if err != nil {
		return msg, err
	}
	m.applyUpdates(msg.From, msg.Updates)
	return msg, nil
}

// applyUpdates merges gossiped updates into the table. Hearing any
// message from a peer also (re)introduces the sender: an unknown sender
// is recorded alive at incarnation 0, which real gossip about it then
// overrides.
func (m *Memberlist) applyUpdates(from string, updates []Update) {
	now := time.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	if from != "" && from != m.cfg.ID {
		if _, known := m.tbl.state(from); !known {
			m.tbl.apply(Update{ID: from, State: StateAlive, Incarnation: 0}, now)
		}
	}
	for _, u := range updates {
		m.tbl.apply(u, now)
	}
}

// probe runs one SWIM failure-detection round against target: direct
// ping, then IndirectFanout relayed ping-reqs, then suspicion.
func (m *Memberlist) probe(target string) {
	start := obs.StartTimer()
	reply, err := m.transport.Exchange(target, m.encodeOutbound(msgPing, ""), m.cfg.ProbeTimeout)
	if err == nil {
		if msg, derr := m.ingest(reply); derr == nil && msg.Kind == msgAck {
			// Only acked direct pings record an RTT: a timed-out probe
			// measures the timeout, not the peer.
			probeRTT.ObserveSince(start)
			return
		}
	}
	if m.indirectProbe(target) {
		return
	}
	m.mu.Lock()
	m.tbl.suspect(target, time.Now())
	m.mu.Unlock()
}

// indirectProbe asks up to IndirectFanout alive peers to ping target on
// our behalf, in parallel; one relayed ack clears the target. This is
// SWIM's defense against false positives from a lossy or congested
// direct path: the target is only suspected when several vantage points
// agree it is unreachable.
func (m *Memberlist) indirectProbe(target string) bool {
	m.mu.Lock()
	var helpers []string
	for _, id := range m.tbl.probeTargets() {
		if id != target {
			helpers = append(helpers, id)
		}
	}
	fanout := m.cfg.IndirectFanout
	m.mu.Unlock()
	if len(helpers) > fanout {
		helpers = helpers[:fanout]
	}
	if len(helpers) == 0 {
		return false
	}
	acks := make(chan bool, len(helpers))
	for _, h := range helpers {
		h := h
		go func() {
			reply, err := m.transport.Exchange(h, m.encodeOutbound(msgPingReq, target), 2*m.cfg.ProbeTimeout)
			if err != nil {
				acks <- false
				return
			}
			msg, derr := m.ingest(reply)
			acks <- derr == nil && msg.Kind == msgAck
		}()
	}
	ok := false
	for range helpers {
		ok = <-acks || ok
	}
	return ok
}

// syncWith performs one push-pull anti-entropy exchange with peer.
func (m *Memberlist) syncWith(peer string) error {
	reply, err := m.transport.Exchange(peer, m.encodeSync(msgSync), 2*m.cfg.ProbeTimeout)
	if err != nil {
		return err
	}
	msg, err := m.ingest(reply)
	if err != nil {
		return err
	}
	if msg.Kind != msgSyncAck {
		return fmt.Errorf("member: sync with %s answered %d, want syncAck", peer, msg.Kind)
	}
	return nil
}

// HandleMessage serves one incoming SWIM message (the server side of
// Exchange) and returns the encoded reply. Wire it to a csnet server
// via Handler, or call it directly from a test transport.
func (m *Memberlist) HandleMessage(b []byte) ([]byte, error) {
	msg, err := decodeMessage(b)
	if err != nil {
		return nil, err
	}
	m.applyUpdates(msg.From, msg.Updates)
	switch msg.Kind {
	case msgPing:
		return m.encodeOutbound(msgAck, ""), nil
	case msgSync:
		return m.encodeSync(msgSyncAck), nil
	case msgPingReq:
		if msg.Target == m.cfg.ID {
			// Asked to probe ourselves: trivially alive.
			return m.encodeOutbound(msgAck, ""), nil
		}
		reply, rerr := m.transport.Exchange(msg.Target, m.encodeOutbound(msgPing, ""), m.cfg.ProbeTimeout)
		if rerr == nil {
			if rmsg, derr := m.ingest(reply); derr == nil && rmsg.Kind == msgAck {
				return m.encodeOutbound(msgAck, ""), nil
			}
		}
		return m.encodeOutbound(msgNack, ""), nil
	default:
		return nil, fmt.Errorf("member: unexpected request kind %d", msg.Kind)
	}
}

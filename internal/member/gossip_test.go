package member

import (
	"testing"
)

// TestMemberBroadcastSupersede checks that queueing a newer claim about
// a member replaces the older one and restarts its retransmit budget.
func TestMemberBroadcastSupersede(t *testing.T) {
	var bq broadcasts
	bq.queue(Update{ID: "a", State: StateAlive, Incarnation: 1})
	bq.queue(Update{ID: "b", State: StateAlive, Incarnation: 1})
	// Spend one transmission of each.
	if got := bq.take(2, 10); len(got) != 2 {
		t.Fatalf("take(2) = %v", got)
	}
	// Supersede a; its transmit count must reset to zero, so the next
	// take prefers it over b (freshest-first ordering).
	bq.queue(Update{ID: "a", State: StateSuspect, Incarnation: 1})
	got := bq.take(1, 10)
	if len(got) != 1 || got[0].ID != "a" || got[0].State != StateSuspect {
		t.Fatalf("take after supersede = %+v, want fresh suspect(a)", got)
	}
	if bq.pending() != 2 {
		t.Fatalf("pending = %d, want 2", bq.pending())
	}
}

// TestMemberBroadcastRetirement checks that an update stops being
// piggybacked once it has been transmitted limit times.
func TestMemberBroadcastRetirement(t *testing.T) {
	var bq broadcasts
	bq.queue(Update{ID: "a", State: StateDead, Incarnation: 2})
	const limit = 3
	for i := 0; i < limit; i++ {
		if got := bq.take(4, limit); len(got) != 1 || got[0].ID != "a" {
			t.Fatalf("take %d = %+v, want [a]", i, got)
		}
	}
	if got := bq.take(4, limit); len(got) != 0 {
		t.Fatalf("take after retirement = %+v, want empty", got)
	}
	if bq.pending() != 0 {
		t.Fatalf("pending = %d after retirement, want 0", bq.pending())
	}
}

// TestMemberBroadcastTakeCap checks the per-message piggyback cap and
// that capped-out updates survive for the next message.
func TestMemberBroadcastTakeCap(t *testing.T) {
	var bq broadcasts
	for _, id := range []string{"a", "b", "c", "d", "e"} {
		bq.queue(Update{ID: id, State: StateAlive, Incarnation: 1})
	}
	if got := bq.take(2, 5); len(got) != 2 {
		t.Fatalf("take(2) = %v", got)
	}
	if bq.pending() != 5 {
		t.Fatalf("pending = %d, want 5 (cap must not retire)", bq.pending())
	}
	if got := bq.take(0, 5); got != nil {
		t.Fatalf("take(0) = %v, want nil", got)
	}
}

// TestMemberRetransmitLimit pins the O(log n) dissemination budget.
func TestMemberRetransmitLimit(t *testing.T) {
	cases := []struct{ mult, n, want int }{
		{3, 1, 3},  // log2(1)+1 = 1 bit
		{3, 2, 6},  // 2 bits
		{3, 8, 12}, // 4 bits
		{3, 100, 21},
		{0, 8, 4}, // mult clamps to 1
		{2, 0, 2}, // n clamps to 1
	}
	for _, c := range cases {
		if got := retransmitLimit(c.mult, c.n); got != c.want {
			t.Errorf("retransmitLimit(%d, %d) = %d, want %d", c.mult, c.n, got, c.want)
		}
	}
}

package member

import (
	"math/bits"
	"sort"
)

// broadcast is one queued membership update awaiting dissemination.
type broadcast struct {
	u         Update
	transmits int
}

// broadcasts is the piggyback queue: membership deltas ride on probe
// traffic (pings, acks, syncs) instead of dedicated messages, each
// retransmitted O(log n) times so an update reaches the whole cluster
// with high probability and then stops consuming bandwidth.
type broadcasts struct {
	items []*broadcast
}

// queue adds an update, superseding any queued update about the same
// member: only the newest claim about a node is worth spreading, and a
// fresh claim restarts the retransmit budget.
func (b *broadcasts) queue(u Update) {
	for i, it := range b.items {
		if it.u.ID == u.ID {
			b.items[i] = &broadcast{u: u}
			return
		}
	}
	b.items = append(b.items, &broadcast{u: u})
}

// retransmitLimit is how many times one update is piggybacked before it
// is dropped: mult * ceil(log2(n+1)), the SWIM dissemination bound.
func retransmitLimit(mult, n int) int {
	if mult < 1 {
		mult = 1
	}
	if n < 1 {
		n = 1
	}
	return mult * bits.Len(uint(n))
}

// take returns up to max updates to piggyback on one outgoing message,
// preferring the least-transmitted (freshest information spreads
// first), and retires updates that have exhausted their budget of
// limit transmissions.
func (b *broadcasts) take(max, limit int) []Update {
	if len(b.items) == 0 || max < 1 {
		return nil
	}
	sort.SliceStable(b.items, func(i, j int) bool {
		return b.items[i].transmits < b.items[j].transmits
	})
	out := make([]Update, 0, max)
	kept := b.items[:0]
	for _, it := range b.items {
		if len(out) < max {
			out = append(out, it.u)
			it.transmits++
		}
		if it.transmits < limit {
			kept = append(kept, it)
		}
	}
	// Zero the dropped tail so retired broadcasts can be collected.
	for i := len(kept); i < len(b.items); i++ {
		b.items[i] = nil
	}
	b.items = kept
	return out
}

// pending reports how many updates await dissemination.
func (b *broadcasts) pending() int { return len(b.items) }

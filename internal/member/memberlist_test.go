package member

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// memNet is an in-memory transport fabric: every node's Exchange is a
// direct call into the target's HandleMessage, with per-link cuts to
// simulate partitions deterministically. Indirect probes work
// naturally, because a relayed ping runs on the relay's own transport.
type memNet struct {
	mu    sync.Mutex
	nodes map[string]*Memberlist
	cut   map[string]bool // "a|b" with a < b
}

func newMemNet() *memNet {
	return &memNet{nodes: map[string]*Memberlist{}, cut: map[string]bool{}}
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Cut severs the links between id and each of the given peers (both
// directions); Heal restores them.
func (n *memNet) Cut(id string, peers ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range peers {
		n.cut[linkKey(id, p)] = true
	}
}

func (n *memNet) Heal(id string, peers ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, p := range peers {
		delete(n.cut, linkKey(id, p))
	}
}

// Isolate cuts id off from every other node.
func (n *memNet) Isolate(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		if other != id {
			n.cut[linkKey(id, other)] = true
		}
	}
}

func (n *memNet) HealAll(id string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for other := range n.nodes {
		delete(n.cut, linkKey(id, other))
	}
}

// transport returns the Transport wired to node id.
func (n *memNet) transport(id string) Transport { return &memTransport{net: n, self: id} }

type memTransport struct {
	net  *memNet
	self string
}

func (t *memTransport) Exchange(peer string, msg []byte, timeout time.Duration) ([]byte, error) {
	t.net.mu.Lock()
	target := t.net.nodes[peer]
	severed := t.net.cut[linkKey(t.self, peer)]
	t.net.mu.Unlock()
	if target == nil || severed {
		return nil, errors.New("memnet: unreachable")
	}
	return target.HandleMessage(msg)
}

func (t *memTransport) Close() error { return nil }

// newTestNode builds one memberlist on net with fast test timings.
func newTestNode(t *testing.T, net *memNet, id string) *Memberlist {
	t.Helper()
	ml, err := New(Config{
		ID:               id,
		ProbeInterval:    10 * time.Millisecond,
		ProbeTimeout:     5 * time.Millisecond,
		SuspicionTimeout: 60 * time.Millisecond,
		Transport:        net.transport(id),
	})
	if err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	net.nodes[id] = ml
	net.mu.Unlock()
	return ml
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// memberState returns ml's view of peer.
func memberState(ml *Memberlist, peer string) (State, bool) {
	for _, m := range ml.Members() {
		if m.ID == peer {
			return m.State, true
		}
	}
	return 0, false
}

// allSee reports whether every memberlist sees every id in the given
// state.
func allSee(lists []*Memberlist, ids []string, want State) bool {
	for _, ml := range lists {
		for _, id := range ids {
			if id == ml.ID() {
				continue
			}
			st, ok := memberState(ml, id)
			if !ok || st != want {
				return false
			}
		}
	}
	return true
}

// TestMemberJoinConvergence: four nodes join through one seed; gossip
// spreads the rest until every node sees every other alive.
func TestMemberJoinConvergence(t *testing.T) {
	net := newMemNet()
	ids := []string{"n0", "n1", "n2", "n3"}
	lists := make([]*Memberlist, len(ids))
	for i, id := range ids {
		lists[i] = newTestNode(t, net, id)
	}
	for _, ml := range lists {
		defer ml.Stop()
		if err := ml.Join("n0"); err != nil && ml.ID() != "n0" {
			t.Fatalf("join(%s): %v", ml.ID(), err)
		}
		ml.Start()
	}
	waitFor(t, 5*time.Second, "full mesh alive", func() bool {
		for _, ml := range lists {
			if ml.NumAlive() != len(ids) {
				return false
			}
		}
		return allSee(lists, ids, StateAlive)
	})
}

// TestMemberDeathDetection: a crashed node (isolated from everyone) is
// suspected, then declared dead cluster-wide once the suspicion timeout
// expires, and a subscriber hears the transition.
func TestMemberDeathDetection(t *testing.T) {
	net := newMemNet()
	ids := []string{"n0", "n1", "n2"}
	lists := make([]*Memberlist, len(ids))
	for i, id := range ids {
		lists[i] = newTestNode(t, net, id)
	}
	events := lists[0].Subscribe()
	for _, ml := range lists {
		defer ml.Stop()
		if err := ml.Join("n0"); err != nil && ml.ID() != "n0" {
			t.Fatal(err)
		}
		ml.Start()
	}
	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		return allSee(lists, ids, StateAlive)
	})

	// Crash n2: its process is "gone", so stop its loop and sever it.
	if err := lists[2].Stop(); err != nil {
		t.Fatal(err)
	}
	net.Isolate("n2")

	survivors := lists[:2]
	waitFor(t, 5*time.Second, "n2 declared dead", func() bool {
		return allSee(survivors, []string{"n2"}, StateDead)
	})
	for _, ml := range survivors {
		if n := ml.NumAlive(); n != 2 {
			t.Errorf("%s NumAlive = %d after death, want 2", ml.ID(), n)
		}
	}
	// The subscriber saw n2 leave the alive set (suspect and/or dead).
	sawDead := false
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.ID == "n2" && ev.State == StateDead {
				sawDead = true
				done = true
			}
		default:
			done = true
		}
	}
	if !sawDead {
		t.Error("subscriber never heard n2's dead transition")
	}
}

// TestMemberIndirectProbeAvoidsFalsePositive: with only the direct
// a<->b link cut, indirect ping-reqs relayed through c keep both sides
// alive — no suspicion, no death, for many suspicion windows.
func TestMemberIndirectProbeAvoidsFalsePositive(t *testing.T) {
	net := newMemNet()
	ids := []string{"a", "b", "c"}
	lists := make([]*Memberlist, len(ids))
	for i, id := range ids {
		lists[i] = newTestNode(t, net, id)
	}
	// Two join rounds with the probe loops still stopped: the second
	// sync pulls the members the first round could not have known yet,
	// so the mesh converges deterministically before any link is cut.
	for round := 0; round < 2; round++ {
		for _, ml := range lists {
			if err := ml.Join("c"); err != nil && ml.ID() != "c" {
				t.Fatal(err)
			}
		}
	}
	for _, ml := range lists {
		defer ml.Stop()
	}
	if !allSee(lists, ids, StateAlive) {
		t.Fatal("mesh not converged after two join rounds")
	}
	// Cut the direct path before probing starts; a and b can still
	// reach each other through c.
	net.Cut("a", "b")
	for _, ml := range lists {
		ml.Start()
	}
	// Run for several suspicion windows; nobody may leave the alive set.
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if !allSee(lists, ids, StateAlive) {
			t.Fatal("a partially partitioned member left the alive set despite indirect probes")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMemberPartitionFlap: a fully partitioned node is declared dead by
// the majority (and declares them dead right back); healing the
// partition lets the periodic sync reach across, the flapped node
// refutes with a higher incarnation, and the whole cluster converges
// back to alive — the classic flap, race-clean.
func TestMemberPartitionFlap(t *testing.T) {
	net := newMemNet()
	ids := []string{"n0", "n1", "n2"}
	lists := make([]*Memberlist, len(ids))
	for i, id := range ids {
		lists[i] = newTestNode(t, net, id)
	}
	for _, ml := range lists {
		defer ml.Stop()
		if err := ml.Join("n0"); err != nil && ml.ID() != "n0" {
			t.Fatal(err)
		}
		ml.Start()
	}
	waitFor(t, 5*time.Second, "initial convergence", func() bool {
		return allSee(lists, ids, StateAlive)
	})
	var incBefore uint64
	if m, ok := memberState(lists[0], "n2"); ok && m == StateAlive {
		for _, row := range lists[0].Members() {
			if row.ID == "n2" {
				incBefore = row.Incarnation
			}
		}
	}

	net.Isolate("n2")
	majority := lists[:2]
	waitFor(t, 5*time.Second, "majority declares n2 dead", func() bool {
		return allSee(majority, []string{"n2"}, StateDead)
	})
	// The isolated side symmetrically gives up on the majority.
	waitFor(t, 5*time.Second, "n2 declares the majority dead", func() bool {
		return allSee(lists[2:], []string{"n0", "n1"}, StateDead)
	})

	net.HealAll("n2")
	waitFor(t, 10*time.Second, "post-heal reconvergence", func() bool {
		return allSee(lists, ids, StateAlive)
	})
	// The comeback was a refutation: n2's incarnation moved past the one
	// the dead claim was issued at.
	for _, row := range lists[0].Members() {
		if row.ID == "n2" && row.Incarnation <= incBefore {
			t.Errorf("n2 incarnation %d after flap, want > %d (refutation)", row.Incarnation, incBefore)
		}
	}
}

// TestMemberWireRoundTripFuzz round-trips randomized messages through
// the wire codec to pin encode/decode symmetry at the Memberlist level.
func TestMemberWireRoundTripFuzz(t *testing.T) {
	for i := 0; i < 50; i++ {
		msg := message{
			Kind:   msgKind(i%6) + msgPing,
			From:   fmt.Sprintf("node-%d", i),
			Target: fmt.Sprintf("target-%d", i%3),
		}
		for j := 0; j <= i%5; j++ {
			msg.Updates = append(msg.Updates, Update{
				ID:          fmt.Sprintf("m-%d-%d", i, j),
				State:       State(j%3) + StateAlive,
				Incarnation: uint64(i * j),
			})
		}
		b, err := encodeMessage(msg)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		got, err := decodeMessage(b)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.Kind != msg.Kind || got.From != msg.From || got.Target != msg.Target ||
			len(got.Updates) != len(msg.Updates) {
			t.Fatalf("round trip %d: %+v != %+v", i, got, msg)
		}
		for j := range msg.Updates {
			if got.Updates[j] != msg.Updates[j] {
				t.Fatalf("round trip %d update %d: %+v != %+v", i, j, got.Updates[j], msg.Updates[j])
			}
		}
	}
}

package member

import "pdcedu/internal/obs"

// Membership metric names:
//
//	member.probe.rtt            histogram: direct-ping ack latency, ns
//	member.transitions.suspect  counter: members entering suspicion
//	member.transitions.dead     counter: members declared dead
//	member.transitions.refute   counter: this node refuting its own death
//
// The probe RTT histogram is the failure detector's own latency
// honesty: its p99 against ProbeTimeout says how much headroom the
// detector has before a slow-but-alive peer starts getting suspected.
var (
	probeRTT     = obs.Default().Histogram("member.probe.rtt")
	suspectTrans = obs.Default().Counter("member.transitions.suspect")
	deadTrans    = obs.Default().Counter("member.transitions.dead")
	refuteTrans  = obs.Default().Counter("member.transitions.refute")
)

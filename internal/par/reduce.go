package par

import (
	"runtime"
	"sync"
)

// Reduce combines xs with the associative operation op in parallel using
// a two-level reduction: each of p workers folds a contiguous block, then
// the partials are folded sequentially. identity must satisfy
// op(identity, x) == x. op must be associative for the result to equal
// the sequential fold; commutativity is not required because blocks are
// combined in index order.
func Reduce[T any](xs []T, identity T, op func(a, b T) T, workers int) T {
	n := len(xs)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return identity
	}
	if workers <= 1 {
		acc := identity
		for _, x := range xs {
			acc = op(acc, x)
		}
		return acc
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	block := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * block
		if lo >= n {
			partials[w] = identity
			continue
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := identity
			for _, x := range xs[lo:hi] {
				acc = op(acc, x)
			}
			partials[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	acc := identity
	for _, p := range partials {
		acc = op(acc, p)
	}
	return acc
}

// SumFloat64 computes the parallel sum of xs.
func SumFloat64(xs []float64, workers int) float64 {
	return Reduce(xs, 0, func(a, b float64) float64 { return a + b }, workers)
}

// SumInt64 computes the parallel sum of xs.
func SumInt64(xs []int64, workers int) int64 {
	return Reduce(xs, 0, func(a, b int64) int64 { return a + b }, workers)
}

// MaxFloat64 returns the maximum of xs and false when xs is empty.
func MaxFloat64(xs []float64, workers int) (float64, bool) {
	if len(xs) == 0 {
		return 0, false
	}
	m := Reduce(xs[1:], xs[0], func(a, b float64) float64 {
		if a >= b {
			return a
		}
		return b
	}, workers)
	return m, true
}

// Dot computes the parallel dot product of equal-length vectors.
// It panics if the lengths differ.
func Dot(a, b []float64, workers int) float64 {
	if len(a) != len(b) {
		panic("par: Dot length mismatch")
	}
	n := len(a)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if n == 0 {
		return 0
	}
	if workers <= 1 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	partials := make([]float64, workers)
	block := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * block
		if lo >= n {
			continue
		}
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := 0.0
			for i := lo; i < hi; i++ {
				s += a[i] * b[i]
			}
			partials[w] = s
		}(w, lo, hi)
	}
	wg.Wait()
	s := 0.0
	for _, p := range partials {
		s += p
	}
	return s
}

// Map applies f to every element of xs in parallel and returns the
// resulting slice.
func Map[T, U any](xs []T, workers int, f func(T) U) []U {
	out := make([]U, len(xs))
	ForRange(len(xs), ForOptions{Workers: workers}, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = f(xs[i])
		}
	})
	return out
}

package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForAllSchedulesCoverEveryIndexOnce(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			const n = 10_000
			seen := make([]int64, n)
			For(n, ForOptions{Workers: 8, Schedule: sched, Chunk: 16}, func(i int) {
				atomic.AddInt64(&seen[i], 1)
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("index %d visited %d times", i, c)
				}
			}
		})
	}
}

func TestForRangeChunksAreDisjoint(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			const n = 5000
			var total atomic.Int64
			ForRange(n, ForOptions{Workers: 4, Schedule: sched, Chunk: 7}, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad range [%d,%d)", lo, hi)
				}
				total.Add(int64(hi - lo))
			})
			if total.Load() != n {
				t.Errorf("ranges covered %d iterations, want %d", total.Load(), n)
			}
		})
	}
}

func TestForEdgeCases(t *testing.T) {
	ran := false
	For(0, ForOptions{}, func(int) { ran = true })
	For(-3, ForOptions{}, func(int) { ran = true })
	if ran {
		t.Error("body must not run for n <= 0")
	}
	// Single iteration, many workers.
	count := 0
	For(1, ForOptions{Workers: 16}, func(int) { count++ })
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
	// Workers default and single worker path.
	var sum int
	For(100, ForOptions{Workers: 1}, func(i int) { sum += i })
	if sum != 4950 {
		t.Errorf("sequential path sum = %d, want 4950", sum)
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" ||
		Guided.String() != "guided" || Schedule(9).String() != "unknown" {
		t.Error("Schedule.String mismatch")
	}
}

// Property: every (n, workers, schedule) combination sums 0..n-1 correctly.
func TestForSumProperty(t *testing.T) {
	f := func(nRaw uint16, wRaw, sRaw uint8) bool {
		n := int(nRaw % 4096)
		workers := int(wRaw%15) + 1
		sched := Schedule(sRaw % 3)
		var sum atomic.Int64
		For(n, ForOptions{Workers: workers, Schedule: sched}, func(i int) {
			sum.Add(int64(i))
		})
		return sum.Load() == int64(n)*int64(n-1)/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkForStatic(b *testing.B)  { benchFor(b, Static) }
func BenchmarkForDynamic(b *testing.B) { benchFor(b, Dynamic) }
func BenchmarkForGuided(b *testing.B)  { benchFor(b, Guided) }

// benchFor runs a skewed workload (cost grows with index) so the
// schedules differ: the ablation bench for DESIGN.md's scheduling choice.
func benchFor(b *testing.B, s Schedule) {
	const n = 1 << 12
	sink := make([]float64, n)
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		ForRange(n, ForOptions{Schedule: s, Chunk: 8}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := 1.0001
				for k := 0; k < i%257; k++ {
					x *= 1.0001
				}
				sink[i] = x
			}
		})
	}
}

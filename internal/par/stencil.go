package par

import (
	"fmt"
	"math"
)

// Grid2D is a dense 2D float64 grid for stencil computations (row-major,
// including boundary cells).
type Grid2D struct {
	Rows, Cols int
	Data       []float64
}

// NewGrid2D allocates a zero grid. It panics on non-positive dimensions.
func NewGrid2D(rows, cols int) *Grid2D {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("par: invalid grid dimensions %dx%d", rows, cols))
	}
	return &Grid2D{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns g[i,j].
func (g *Grid2D) At(i, j int) float64 { return g.Data[i*g.Cols+j] }

// Set assigns g[i,j] = v.
func (g *Grid2D) Set(i, j int, v float64) { g.Data[i*g.Cols+j] = v }

// Clone returns a deep copy.
func (g *Grid2D) Clone() *Grid2D {
	out := NewGrid2D(g.Rows, g.Cols)
	copy(out.Data, g.Data)
	return out
}

// JacobiResult reports one relaxation run.
type JacobiResult struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// Jacobi runs Jacobi relaxation of the Laplace equation on the grid's
// interior (boundary cells are Dirichlet conditions and never change):
// each sweep replaces every interior cell with the average of its four
// neighbours, in parallel across `workers` row bands, until the maximum
// cell change falls below tol or maxIters sweeps have run. The classic
// HPC teaching stencil: every sweep is a bulk-synchronous phase.
func Jacobi(g *Grid2D, tol float64, maxIters, workers int) JacobiResult {
	if tol <= 0 {
		tol = 1e-6
	}
	cur := g
	next := g.Clone()
	res := JacobiResult{}
	for res.Iterations = 0; res.Iterations < maxIters; res.Iterations++ {
		interior := cur.Rows - 2
		if interior <= 0 {
			res.Converged = true
			break
		}
		// Per-band maximum deltas, merged after the sweep.
		nBands := workers
		if nBands <= 0 || nBands > interior {
			nBands = 1
		}
		deltas := make([]float64, nBands)
		band := (interior + nBands - 1) / nBands
		ForRange(nBands, ForOptions{Workers: workers}, func(bLo, bHi int) {
			for b := bLo; b < bHi; b++ {
				i0 := 1 + b*band
				i1 := i0 + band
				if i1 > cur.Rows-1 {
					i1 = cur.Rows - 1
				}
				maxD := 0.0
				for i := i0; i < i1; i++ {
					for j := 1; j < cur.Cols-1; j++ {
						v := 0.25 * (cur.At(i-1, j) + cur.At(i+1, j) +
							cur.At(i, j-1) + cur.At(i, j+1))
						d := math.Abs(v - cur.At(i, j))
						if d > maxD {
							maxD = d
						}
						next.Set(i, j, v)
					}
				}
				deltas[b] = maxD
			}
		})
		res.Residual = 0
		for _, d := range deltas {
			if d > res.Residual {
				res.Residual = d
			}
		}
		// Copy boundaries into next (they never change but next must
		// hold them for the swap).
		for j := 0; j < cur.Cols; j++ {
			next.Set(0, j, cur.At(0, j))
			next.Set(cur.Rows-1, j, cur.At(cur.Rows-1, j))
		}
		for i := 0; i < cur.Rows; i++ {
			next.Set(i, 0, cur.At(i, 0))
			next.Set(i, cur.Cols-1, cur.At(i, cur.Cols-1))
		}
		cur, next = next, cur
		if res.Residual < tol {
			res.Iterations++
			res.Converged = true
			break
		}
	}
	// Ensure the caller's grid holds the final state.
	if cur != g {
		copy(g.Data, cur.Data)
	}
	return res
}

// HotPlate initializes the canonical lab problem: a grid with one hot
// edge (top = temp) and cold elsewhere.
func HotPlate(rows, cols int, temp float64) *Grid2D {
	g := NewGrid2D(rows, cols)
	for j := 0; j < cols; j++ {
		g.Set(0, j, temp)
	}
	return g
}

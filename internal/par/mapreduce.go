package par

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// KV is an intermediate key/value pair emitted by a map function.
type KV[K comparable, V any] struct {
	Key   K
	Value V
}

// MapReduce runs the two-phase map-reduce pattern over inputs in-process:
// mappers emit KV pairs, pairs are hash-partitioned ("shuffled") across
// reducers, and each reducer folds all values of a key with reduceFn.
// The result maps every key to its reduction. mapWorkers and reducers
// default to GOMAXPROCS when non-positive.
func MapReduce[In any, K comparable, V any](
	inputs []In,
	mapFn func(In, func(K, V)),
	reduceFn func(K, []V) V,
	mapWorkers, reducers int,
) map[K]V {
	if mapWorkers <= 0 {
		mapWorkers = runtime.GOMAXPROCS(0)
	}
	if reducers <= 0 {
		reducers = runtime.GOMAXPROCS(0)
	}

	// Map phase: each worker collects emissions into per-reducer buckets
	// (privatization — no shared state during mapping).
	type bucketSet = []map[K][]V
	perWorker := make([]bucketSet, mapWorkers)
	var wg sync.WaitGroup
	block := (len(inputs) + mapWorkers - 1) / mapWorkers
	for w := 0; w < mapWorkers; w++ {
		lo := w * block
		if lo >= len(inputs) {
			perWorker[w] = nil
			continue
		}
		hi := lo + block
		if hi > len(inputs) {
			hi = len(inputs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			buckets := make(bucketSet, reducers)
			for r := range buckets {
				buckets[r] = make(map[K][]V)
			}
			emit := func(k K, v V) {
				r := partitionKey(k, reducers)
				buckets[r][k] = append(buckets[r][k], v)
			}
			for i := lo; i < hi; i++ {
				mapFn(inputs[i], emit)
			}
			perWorker[w] = buckets
		}(w, lo, hi)
	}
	wg.Wait()

	// Shuffle + reduce phase: reducer r merges bucket r of every worker.
	results := make([]map[K]V, reducers)
	for r := 0; r < reducers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			merged := make(map[K][]V)
			for _, buckets := range perWorker {
				if buckets == nil {
					continue
				}
				for k, vs := range buckets[r] {
					merged[k] = append(merged[k], vs...)
				}
			}
			out := make(map[K]V, len(merged))
			for k, vs := range merged {
				out[k] = reduceFn(k, vs)
			}
			results[r] = out
		}(r)
	}
	wg.Wait()

	total := make(map[K]V)
	for _, m := range results {
		for k, v := range m {
			total[k] = v
		}
	}
	return total
}

// partitionKey maps a key to a reducer index via FNV hashing of its
// formatted representation.
func partitionKey[K comparable](k K, reducers int) int {
	h := fnv.New32a()
	writeKey(h, k)
	return int(h.Sum32() % uint32(reducers))
}

type hashWriter interface{ Write(p []byte) (int, error) }

func writeKey[K comparable](h hashWriter, k K) {
	switch v := any(k).(type) {
	case string:
		_, _ = h.Write([]byte(v))
	case int:
		writeInt(h, uint64(v))
	case int32:
		writeInt(h, uint64(v))
	case int64:
		writeInt(h, uint64(v))
	case uint64:
		writeInt(h, v)
	default:
		// Fallback: distribute by memory-independent formatting.
		_, _ = h.Write([]byte(anyString(v)))
	}
}

func writeInt(h hashWriter, v uint64) {
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	_, _ = h.Write(b[:])
}

func anyString(v any) string {
	type stringer interface{ String() string }
	if s, ok := v.(stringer); ok {
		return s.String()
	}
	return ""
}

// WordCount is the canonical map-reduce example: it counts word
// occurrences across documents using the given worker counts.
func WordCount(docs []string, mapWorkers, reducers int) map[string]int {
	return MapReduce(docs,
		func(doc string, emit func(string, int)) {
			start := -1
			for i := 0; i <= len(doc); i++ {
				isLetter := i < len(doc) && (doc[i] == '\'' ||
					('a' <= doc[i] && doc[i] <= 'z') ||
					('A' <= doc[i] && doc[i] <= 'Z'))
				if isLetter {
					if start < 0 {
						start = i
					}
				} else if start >= 0 {
					emit(lower(doc[start:i]), 1)
					start = -1
				}
			}
		},
		func(_ string, counts []int) int {
			total := 0
			for _, c := range counts {
				total += c
			}
			return total
		},
		mapWorkers, reducers)
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

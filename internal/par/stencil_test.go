package par

import (
	"math"
	"testing"
)

func TestGrid2DBasics(t *testing.T) {
	g := NewGrid2D(3, 4)
	g.Set(1, 2, 7)
	if g.At(1, 2) != 7 {
		t.Errorf("At = %g, want 7", g.At(1, 2))
	}
	c := g.Clone()
	c.Set(1, 2, 9)
	if g.At(1, 2) != 7 {
		t.Error("Clone is not independent")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewGrid2D(0,1) should panic")
		}
	}()
	NewGrid2D(0, 1)
}

func TestJacobiConvergesToLinearProfile(t *testing.T) {
	// 1D-like strip: top edge 100, bottom edge 0; the steady state in
	// the middle row of a tall thin plate approaches the mean of the
	// boundaries far from the sides. Use a small plate and just verify
	// convergence + boundedness + symmetry.
	g := HotPlate(18, 18, 100)
	res := Jacobi(g, 1e-8, 100000, 4)
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// Maximum principle: all interior values within boundary range.
	for i := 1; i < g.Rows-1; i++ {
		for j := 1; j < g.Cols-1; j++ {
			v := g.At(i, j)
			if v < -1e-9 || v > 100+1e-9 {
				t.Fatalf("cell (%d,%d) = %g escapes boundary range", i, j, v)
			}
		}
	}
	// Left-right symmetry of the hot plate solution.
	for i := 1; i < g.Rows-1; i++ {
		for j := 1; j < g.Cols/2; j++ {
			a := g.At(i, j)
			b := g.At(i, g.Cols-1-j)
			if math.Abs(a-b) > 1e-6 {
				t.Fatalf("asymmetry at row %d: %g vs %g", i, a, b)
			}
		}
	}
	// Monotone decay away from the hot edge along the center column.
	mid := g.Cols / 2
	prev := 100.0
	for i := 1; i < g.Rows-1; i++ {
		v := g.At(i, mid)
		if v > prev+1e-9 {
			t.Fatalf("temperature rises away from hot edge at row %d", i)
		}
		prev = v
	}
}

func TestJacobiWorkerCountsAgree(t *testing.T) {
	ref := HotPlate(20, 12, 50)
	refRes := Jacobi(ref, 1e-7, 50000, 1)
	for _, w := range []int{2, 4, 7} {
		g := HotPlate(20, 12, 50)
		res := Jacobi(g, 1e-7, 50000, w)
		if res.Iterations != refRes.Iterations {
			t.Errorf("workers=%d iterations=%d, want %d", w, res.Iterations, refRes.Iterations)
		}
		for i := range g.Data {
			if math.Abs(g.Data[i]-ref.Data[i]) > 1e-9 {
				t.Fatalf("workers=%d cell %d = %g, want %g", w, i, g.Data[i], ref.Data[i])
			}
		}
	}
}

func TestJacobiDegenerate(t *testing.T) {
	// Grid with no interior converges immediately.
	g := NewGrid2D(2, 2)
	res := Jacobi(g, 1e-6, 10, 2)
	if !res.Converged {
		t.Error("no-interior grid should converge trivially")
	}
	// Iteration cap respected.
	g2 := HotPlate(64, 64, 100)
	res2 := Jacobi(g2, 1e-30, 5, 2)
	if res2.Converged || res2.Iterations != 5 {
		t.Errorf("cap run: %+v", res2)
	}
	// Non-positive tolerance defaults instead of spinning forever.
	g3 := HotPlate(8, 8, 1)
	res3 := Jacobi(g3, 0, 100000, 2)
	if !res3.Converged {
		t.Error("default tolerance should converge")
	}
}

func BenchmarkJacobiSeq(b *testing.B) { benchJacobi(b, 1) }
func BenchmarkJacobiPar(b *testing.B) { benchJacobi(b, 0) }

func benchJacobi(b *testing.B, workers int) {
	for i := 0; i < b.N; i++ {
		g := HotPlate(128, 128, 100)
		_ = Jacobi(g, 1e-3, 500, workers)
	}
}

package par

import (
	"testing"
	"testing/quick"
)

func TestBFSKnownGraph(t *testing.T) {
	// Path 0-1-2-3 with a shortcut 0-3 and an isolated vertex 4.
	g := NewGraph(5)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	want := []int{0, 1, 2, 1, -1}
	for name, fn := range map[string]func() ([]int, error){
		"seq": func() ([]int, error) { return BFSSeq(g, 0) },
		"par": func() ([]int, error) { return BFSPar(g, 0, 3) },
	} {
		got, err := fn()
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s: dist[%d] = %d, want %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestBFSValidation(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 9); err == nil {
		t.Error("bad edge accepted")
	}
	if _, err := BFSSeq(g, 9); err == nil {
		t.Error("bad source accepted (seq)")
	}
	if _, err := BFSPar(g, -1, 2); err == nil {
		t.Error("bad source accepted (par)")
	}
	defer func() {
		if recover() == nil {
			t.Error("NewGraph(0) should panic")
		}
	}()
	NewGraph(0)
}

// Property: parallel and sequential BFS agree on random graphs for any
// worker count and source.
func TestBFSAgreementProperty(t *testing.T) {
	f := func(seed int64, nRaw, degRaw, wRaw, srcRaw uint8) bool {
		n := int(nRaw%200) + 2
		deg := int(degRaw%6) + 2
		w := int(wRaw%8) + 1
		src := int(srcRaw) % n
		g := RandomGraph(n, deg, seed)
		seq, err1 := BFSSeq(g, src)
		par, err2 := BFSPar(g, src, w)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range seq {
			if seq[i] != par[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBFSSelfLoop(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddEdge(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	d, err := BFSSeq(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d[0] != 0 || d[1] != 1 {
		t.Errorf("self-loop distances = %v", d)
	}
}

func BenchmarkBFSSeq(b *testing.B) { benchBFS(b, true) }
func BenchmarkBFSPar(b *testing.B) { benchBFS(b, false) }

func benchBFS(b *testing.B, seq bool) {
	g := RandomGraph(50_000, 8, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if seq {
			_, err = BFSSeq(g, 0)
		} else {
			_, err = BFSPar(g, 0, 0)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

package par

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomInts(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]int, n)
	for i := range xs {
		xs[i] = rng.Intn(n * 2)
	}
	return xs
}

func TestMergeSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 100, 5000, 100_000} {
		xs := randomInts(n, int64(n))
		want := append([]int(nil), xs...)
		sort.Ints(want)
		MergeSort(xs, 4)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: MergeSort[%d] = %d, want %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestQuickSortMatchesStdlib(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 100, 5000, 100_000} {
		xs := randomInts(n, int64(n)+42)
		want := append([]int(nil), xs...)
		sort.Ints(want)
		QuickSort(xs, 4)
		for i := range want {
			if xs[i] != want[i] {
				t.Fatalf("n=%d: QuickSort[%d] = %d, want %d", n, i, xs[i], want[i])
			}
		}
	}
}

func TestSortAdversarialInputs(t *testing.T) {
	cases := map[string]func(n int) []int{
		"sorted": func(n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = i
			}
			return xs
		},
		"reversed": func(n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = n - i
			}
			return xs
		},
		"allequal": func(n int) []int {
			xs := make([]int, n)
			for i := range xs {
				xs[i] = 7
			}
			return xs
		},
	}
	const n = 10_000
	for name, gen := range cases {
		for _, alg := range []string{"merge", "quick"} {
			xs := gen(n)
			if alg == "merge" {
				MergeSort(xs, 3)
			} else {
				QuickSort(xs, 3)
			}
			if !IsSorted(xs) {
				t.Errorf("%s sort failed on %s input", alg, name)
			}
		}
	}
}

// Property: parallel sorts are a permutation of the input in sorted order.
func TestSortProperty(t *testing.T) {
	f := func(raw []int16, depth uint8) bool {
		xs := make([]int, len(raw))
		counts := map[int]int{}
		for i, v := range raw {
			xs[i] = int(v)
			counts[int(v)]++
		}
		ys := append([]int(nil), xs...)
		MergeSort(xs, int(depth%5))
		QuickSort(ys, int(depth%5))
		if !IsSorted(xs) || !IsSorted(ys) {
			return false
		}
		for _, v := range xs {
			counts[v]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{}) || !IsSorted([]int{1}) || !IsSorted([]int{1, 1, 2}) {
		t.Error("IsSorted false negatives")
	}
	if IsSorted([]int{2, 1}) {
		t.Error("IsSorted false positive")
	}
}

func BenchmarkMergeSortSeq(b *testing.B) { benchSort(b, 0, true) }
func BenchmarkMergeSortPar(b *testing.B) { benchSort(b, 6, true) }
func BenchmarkQuickSortSeq(b *testing.B) { benchSort(b, 0, false) }
func BenchmarkQuickSortPar(b *testing.B) { benchSort(b, 6, false) }

func benchSort(b *testing.B, depth int, useMerge bool) {
	const n = 1 << 18
	src := randomInts(n, 99)
	buf := make([]int, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		if useMerge {
			MergeSort(buf, depth)
		} else {
			QuickSort(buf, depth)
		}
	}
}

package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// HistogramMethod selects how a parallel histogram resolves concurrent
// updates to shared bins — the classic "atomicity" lab (Table I row 6).
type HistogramMethod int

const (
	// HistAtomic updates shared bins with atomic adds.
	HistAtomic HistogramMethod = iota
	// HistLocked guards the whole bin array with one mutex.
	HistLocked
	// HistPrivate gives each worker a private copy and merges at the
	// end (privatization: the fastest and the pattern GPUs need too).
	HistPrivate
)

// String returns the method name.
func (m HistogramMethod) String() string {
	switch m {
	case HistAtomic:
		return "atomic"
	case HistLocked:
		return "locked"
	case HistPrivate:
		return "private"
	default:
		return "unknown"
	}
}

// Histogram bins xs into bins equal-width buckets over [min, max) using
// the given method and worker count. Values outside the range are
// clamped into the edge bins. It panics if bins <= 0 or max <= min.
func Histogram(xs []float64, bins int, min, max float64, method HistogramMethod, workers int) []int64 {
	if bins <= 0 {
		panic(fmt.Sprintf("par: histogram bins must be positive, got %d", bins))
	}
	if max <= min {
		panic(fmt.Sprintf("par: histogram range [%g,%g) is empty", min, max))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	width := (max - min) / float64(bins)
	binOf := func(v float64) int {
		b := int((v - min) / width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		return b
	}

	switch method {
	case HistAtomic:
		out := make([]int64, bins)
		ForRange(len(xs), ForOptions{Workers: workers}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt64(&out[binOf(xs[i])], 1)
			}
		})
		return out
	case HistLocked:
		out := make([]int64, bins)
		var mu sync.Mutex
		ForRange(len(xs), ForOptions{Workers: workers}, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				b := binOf(xs[i])
				mu.Lock()
				out[b]++
				mu.Unlock()
			}
		})
		return out
	case HistPrivate:
		n := len(xs)
		if workers > n && n > 0 {
			workers = n
		}
		privates := make([][]int64, workers)
		var wg sync.WaitGroup
		block := 0
		if workers > 0 {
			block = (n + workers - 1) / workers
		}
		for w := 0; w < workers; w++ {
			lo := w * block
			if lo >= n {
				privates[w] = nil
				continue
			}
			hi := lo + block
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				local := make([]int64, bins)
				for i := lo; i < hi; i++ {
					local[binOf(xs[i])]++
				}
				privates[w] = local
			}(w, lo, hi)
		}
		wg.Wait()
		out := make([]int64, bins)
		for _, local := range privates {
			for b, c := range local {
				out[b] += c
			}
		}
		return out
	default:
		panic(fmt.Sprintf("par: unknown histogram method %d", method))
	}
}

package par

import "testing"

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Errorf("At(1,2) = %g, want 5", m.At(1, 2))
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Errorf("Transpose wrong: %+v", tr)
	}
}

func TestMatrixPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0,1) should panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestMulKnownResult(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{5, 6, 7, 8})
	want := []float64{19, 22, 43, 50}
	c := MulSeq(a, b)
	for i, w := range want {
		if c.Data[i] != w {
			t.Errorf("MulSeq[%d] = %g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMulVariantsAgree(t *testing.T) {
	a := RandomMatrix(37, 53, 1)
	b := RandomMatrix(53, 29, 2)
	ref := MulSeq(a, b)
	par := MulPar(a, b, ForOptions{Workers: 4, Schedule: Dynamic, Chunk: 3})
	if !ref.Equal(par, 1e-9) {
		t.Error("MulPar disagrees with MulSeq")
	}
	for _, bs := range []int{1, 8, 16, 100} {
		blk := MulBlocked(a, b, bs, ForOptions{Workers: 4})
		if !ref.Equal(blk, 1e-9) {
			t.Errorf("MulBlocked(bs=%d) disagrees with MulSeq", bs)
		}
	}
	// Default block size path.
	blk := MulBlocked(a, b, 0, ForOptions{Workers: 2})
	if !ref.Equal(blk, 1e-9) {
		t.Error("MulBlocked default bs disagrees")
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"seq":     func() { MulSeq(a, b) },
		"par":     func() { MulPar(a, b, ForOptions{}) },
		"blocked": func() { MulBlocked(a, b, 8, ForOptions{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: dimension mismatch should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixEqualShapes(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 3)
	if a.Equal(b, 1) {
		t.Error("matrices of different shape must not be Equal")
	}
}

func BenchmarkMatMulSeq(b *testing.B) {
	x := RandomMatrix(256, 256, 3)
	y := RandomMatrix(256, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulSeq(x, y)
	}
}

func BenchmarkMatMulPar(b *testing.B) {
	x := RandomMatrix(256, 256, 3)
	y := RandomMatrix(256, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulPar(x, y, ForOptions{})
	}
}

func BenchmarkMatMulBlocked(b *testing.B) {
	x := RandomMatrix(256, 256, 3)
	y := RandomMatrix(256, 256, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulBlocked(x, y, 64, ForOptions{})
	}
}

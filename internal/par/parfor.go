// Package par implements the shared-memory data-parallel patterns taught
// in the second part of the LAU dedicated course (Pthreads/OpenMP):
// parallel-for with static, dynamic and guided loop scheduling, tree
// reductions, parallel prefix scan, parallel divide-and-conquer sorting
// (CC2020's named topic), blocked matrix multiplication, map-reduce, a
// channel pipeline, and parallel histogramming with privatization.
//
// All workers are goroutines; the scheduling vocabulary deliberately
// mirrors OpenMP's `schedule(static|dynamic|guided)` clause so the
// ablation benchmarks reproduce the classic load-balancing trade-offs.
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Schedule selects a loop-iteration scheduling policy for For.
type Schedule int

const (
	// Static divides the iteration space into p equal contiguous blocks
	// up front: zero scheduling overhead, poor balance on skewed work.
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter as
	// workers become free: good balance, per-chunk overhead.
	Dynamic
	// Guided hands out geometrically shrinking chunks (remaining/p,
	// floored at the chunk size): balance with less overhead.
	Guided
)

// String returns the OpenMP-style name of the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return "unknown"
	}
}

// ForOptions configures For.
type ForOptions struct {
	// Workers is the number of goroutines (default runtime.GOMAXPROCS(0)).
	Workers int
	// Schedule is the iteration scheduling policy (default Static).
	Schedule Schedule
	// Chunk is the chunk size for Dynamic (default 64) and the minimum
	// chunk for Guided (default 1).
	Chunk int
}

func (o ForOptions) normalize() ForOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Chunk <= 0 {
		if o.Schedule == Dynamic {
			o.Chunk = 64
		} else {
			o.Chunk = 1
		}
	}
	return o
}

// For executes body(i) for every i in [0, n) across parallel workers
// under the configured schedule. It blocks until all iterations finish.
// body must be safe to call concurrently for distinct i.
func For(n int, opt ForOptions, body func(i int)) {
	ForRange(n, opt, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForRange is like For but hands each worker contiguous [lo, hi) ranges,
// which avoids per-iteration closure overhead for fine-grained bodies.
func ForRange(n int, opt ForOptions, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	opt = opt.normalize()
	p := opt.Workers
	if p > n {
		p = n
	}
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	switch opt.Schedule {
	case Static:
		// Contiguous blocks of size ceil(n/p), last block may be short.
		block := (n + p - 1) / p
		for w := 0; w < p; w++ {
			lo := w * block
			if lo >= n {
				break
			}
			hi := lo + block
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				body(lo, hi)
			}(lo, hi)
		}
	case Dynamic:
		var next atomic.Int64
		chunk := opt.Chunk
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(lo, hi)
				}
			}()
		}
	case Guided:
		var mu sync.Mutex
		nextIdx := 0
		grab := func() (int, int, bool) {
			mu.Lock()
			defer mu.Unlock()
			if nextIdx >= n {
				return 0, 0, false
			}
			remaining := n - nextIdx
			chunk := remaining / p
			if chunk < opt.Chunk {
				chunk = opt.Chunk
			}
			lo := nextIdx
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			nextIdx = hi
			return lo, hi, true
		}
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					lo, hi, ok := grab()
					if !ok {
						return
					}
					body(lo, hi)
				}
			}()
		}
	default:
		panic(fmt.Sprintf("par: unknown schedule %d", opt.Schedule))
	}
	wg.Wait()
}

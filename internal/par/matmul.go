package par

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix. It panics on non-positive dimensions.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("par: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// RandomMatrix fills a matrix with deterministic pseudo-random values.
func RandomMatrix(rows, cols int, seed int64) *Matrix {
	m := NewMatrix(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range m.Data {
		d := v - other.Data[i]
		if d < -tol || d > tol {
			return false
		}
	}
	return true
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// MulSeq computes a*b with the naive triple loop (the course baseline).
// It panics on dimension mismatch.
func MulSeq(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("par: matmul dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.Data[i*a.Cols+k]
			if aik == 0 {
				continue
			}
			rowB := b.Data[k*b.Cols:]
			rowC := c.Data[i*c.Cols:]
			for j := 0; j < b.Cols; j++ {
				rowC[j] += aik * rowB[j]
			}
		}
	}
	return c
}

// MulPar computes a*b with rows parallelized across workers under the
// given schedule, the standard first OpenMP exercise.
func MulPar(a, b *Matrix, opt ForOptions) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("par: matmul dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	ForRange(a.Rows, opt, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for k := 0; k < a.Cols; k++ {
				aik := a.Data[i*a.Cols+k]
				if aik == 0 {
					continue
				}
				rowB := b.Data[k*b.Cols:]
				rowC := c.Data[i*c.Cols:]
				for j := 0; j < b.Cols; j++ {
					rowC[j] += aik * rowB[j]
				}
			}
		}
	})
	return c
}

// MulBlocked computes a*b with cache-friendly tiling (block size bs) and
// row-band parallelism: the "performance tuning" step in the LAU labs.
func MulBlocked(a, b *Matrix, bs int, opt ForOptions) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("par: matmul dimension mismatch %dx%d * %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if bs <= 0 {
		bs = 64
	}
	c := NewMatrix(a.Rows, b.Cols)
	nBands := (a.Rows + bs - 1) / bs
	ForRange(nBands, opt, func(bandLo, bandHi int) {
		for band := bandLo; band < bandHi; band++ {
			i0 := band * bs
			i1 := i0 + bs
			if i1 > a.Rows {
				i1 = a.Rows
			}
			for k0 := 0; k0 < a.Cols; k0 += bs {
				k1 := k0 + bs
				if k1 > a.Cols {
					k1 = a.Cols
				}
				for j0 := 0; j0 < b.Cols; j0 += bs {
					j1 := j0 + bs
					if j1 > b.Cols {
						j1 = b.Cols
					}
					for i := i0; i < i1; i++ {
						for k := k0; k < k1; k++ {
							aik := a.Data[i*a.Cols+k]
							if aik == 0 {
								continue
							}
							rowB := b.Data[k*b.Cols:]
							rowC := c.Data[i*c.Cols:]
							for j := j0; j < j1; j++ {
								rowC[j] += aik * rowB[j]
							}
						}
					}
				}
			}
		}
	})
	return c
}

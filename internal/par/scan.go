package par

import (
	"runtime"
	"sync"
)

// InclusiveScan computes the parallel inclusive prefix combination of xs
// under the associative op, writing the result into a new slice:
// out[i] = xs[0] op xs[1] op ... op xs[i].
//
// It uses the classic three-phase block algorithm (local scan, exclusive
// scan of block totals, local fix-up), the same structure students later
// meet again in the SIMT scan kernel.
func InclusiveScan[T any](xs []T, identity T, op func(a, b T) T, workers int) []T {
	n := len(xs)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		acc := identity
		for i, x := range xs {
			acc = op(acc, x)
			out[i] = acc
		}
		return out
	}
	block := (n + workers - 1) / workers
	nBlocks := (n + block - 1) / block
	totals := make([]T, nBlocks)

	// Phase 1: independent local scans per block.
	var wg sync.WaitGroup
	for b := 0; b < nBlocks; b++ {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			acc := identity
			for i := lo; i < hi; i++ {
				acc = op(acc, xs[i])
				out[i] = acc
			}
			totals[b] = acc
		}(b, lo, hi)
	}
	wg.Wait()

	// Phase 2: sequential exclusive scan over the (few) block totals.
	offsets := make([]T, nBlocks)
	acc := identity
	for b := 0; b < nBlocks; b++ {
		offsets[b] = acc
		acc = op(acc, totals[b])
	}

	// Phase 3: add each block's offset to its local results.
	for b := 1; b < nBlocks; b++ {
		lo := b * block
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			off := offsets[b]
			for i := lo; i < hi; i++ {
				out[i] = op(off, out[i])
			}
		}(b, lo, hi)
	}
	wg.Wait()
	return out
}

// ExclusiveScan computes out[i] = xs[0] op ... op xs[i-1], with
// out[0] = identity.
func ExclusiveScan[T any](xs []T, identity T, op func(a, b T) T, workers int) []T {
	n := len(xs)
	out := make([]T, n)
	if n == 0 {
		return out
	}
	inc := InclusiveScan(xs, identity, op, workers)
	out[0] = identity
	copy(out[1:], inc[:n-1])
	return out
}

// PrefixSums is InclusiveScan specialized to int64 addition.
func PrefixSums(xs []int64, workers int) []int64 {
	return InclusiveScan(xs, 0, func(a, b int64) int64 { return a + b }, workers)
}

package par

import (
	"math/rand"
	"testing"
)

func TestHistogramMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 50_000)
	for i := range xs {
		xs[i] = rng.Float64()*10 - 1 // some out-of-range values
	}
	ref := Histogram(xs, 16, 0, 8, HistPrivate, 1)
	for _, m := range []HistogramMethod{HistAtomic, HistLocked, HistPrivate} {
		got := Histogram(xs, 16, 0, 8, m, 4)
		var total int64
		for b, c := range got {
			total += c
			if c != ref[b] {
				t.Errorf("%s: bin %d = %d, want %d", m, b, c, ref[b])
			}
		}
		if total != int64(len(xs)) {
			t.Errorf("%s: total %d, want %d", m, total, len(xs))
		}
	}
}

func TestHistogramClamping(t *testing.T) {
	xs := []float64{-100, 0, 0.5, 0.999, 100}
	got := Histogram(xs, 2, 0, 1, HistPrivate, 2)
	if got[0] != 2 { // -100 clamped + 0
		t.Errorf("bin 0 = %d, want 2", got[0])
	}
	if got[1] != 3 { // 0.5, 0.999, 100 clamped
		t.Errorf("bin 1 = %d, want 3", got[1])
	}
}

func TestHistogramValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"bins":  func() { Histogram(nil, 0, 0, 1, HistAtomic, 1) },
		"range": func() { Histogram(nil, 4, 1, 1, HistAtomic, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramMethodString(t *testing.T) {
	if HistAtomic.String() != "atomic" || HistLocked.String() != "locked" ||
		HistPrivate.String() != "private" || HistogramMethod(9).String() != "unknown" {
		t.Error("HistogramMethod.String mismatch")
	}
}

func TestHistogramEmptyInput(t *testing.T) {
	for _, m := range []HistogramMethod{HistAtomic, HistLocked, HistPrivate} {
		got := Histogram(nil, 4, 0, 1, m, 4)
		for b, c := range got {
			if c != 0 {
				t.Errorf("%s: empty input bin %d = %d", m, b, c)
			}
		}
	}
}

func BenchmarkHistogramAtomic(b *testing.B)  { benchHist(b, HistAtomic) }
func BenchmarkHistogramLocked(b *testing.B)  { benchHist(b, HistLocked) }
func BenchmarkHistogramPrivate(b *testing.B) { benchHist(b, HistPrivate) }

func benchHist(b *testing.B, m HistogramMethod) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 1<<18)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Histogram(xs, 64, 0, 1, m, 0)
	}
}

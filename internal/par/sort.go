package par

import (
	"cmp"
	"sort"
	"sync"
)

// sequentialThreshold is the subproblem size below which the parallel
// sorts fall back to the sequential algorithm; recursion overhead
// dominates below it.
const sequentialThreshold = 2048

// MergeSort sorts xs in place using parallel divide-and-conquer merge
// sort — the algorithm CC2020 names as the required "parallel
// divide-and-conquer" exemplar. depth limits goroutine fan-out to 2^depth
// concurrent sorters; depth <= 0 sorts sequentially.
func MergeSort[T cmp.Ordered](xs []T, depth int) {
	buf := make([]T, len(xs))
	mergeSortRec(xs, buf, depth)
}

func mergeSortRec[T cmp.Ordered](xs, buf []T, depth int) {
	n := len(xs)
	if n < 2 {
		return
	}
	if depth <= 0 || n <= sequentialThreshold {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return
	}
	mid := n / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mergeSortRec(xs[:mid], buf[:mid], depth-1)
	}()
	mergeSortRec(xs[mid:], buf[mid:], depth-1)
	wg.Wait()
	merge(xs, buf, mid)
}

// merge merges the two sorted halves xs[:mid], xs[mid:] through buf.
func merge[T cmp.Ordered](xs, buf []T, mid int) {
	copy(buf, xs)
	i, j, k := 0, mid, 0
	for i < mid && j < len(xs) {
		if buf[j] < buf[i] {
			xs[k] = buf[j]
			j++
		} else {
			xs[k] = buf[i]
			i++
		}
		k++
	}
	for i < mid {
		xs[k] = buf[i]
		i++
		k++
	}
	for j < len(xs) {
		xs[k] = buf[j]
		j++
		k++
	}
}

// QuickSort sorts xs in place using parallel quicksort with
// median-of-three pivot selection. depth limits parallel recursion as in
// MergeSort.
func QuickSort[T cmp.Ordered](xs []T, depth int) {
	quickSortRec(xs, depth)
}

func quickSortRec[T cmp.Ordered](xs []T, depth int) {
	n := len(xs)
	if n < 2 {
		return
	}
	if depth <= 0 || n <= sequentialThreshold {
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		return
	}
	p := partition(xs)
	childDepth := depth - 1
	var wg sync.WaitGroup
	wg.Add(1)
	go func(left []T) {
		defer wg.Done()
		quickSortRec(left, childDepth)
	}(xs[:p])
	quickSortRec(xs[p+1:], childDepth)
	wg.Wait()
}

// partition performs Hoare-style partitioning around a median-of-three
// pivot and returns the pivot's final index.
func partition[T cmp.Ordered](xs []T) int {
	n := len(xs)
	mid := n / 2
	// Median-of-three: order first, middle, last.
	if xs[mid] < xs[0] {
		xs[mid], xs[0] = xs[0], xs[mid]
	}
	if xs[n-1] < xs[0] {
		xs[n-1], xs[0] = xs[0], xs[n-1]
	}
	if xs[n-1] < xs[mid] {
		xs[n-1], xs[mid] = xs[mid], xs[n-1]
	}
	pivot := xs[mid]
	// Move pivot to n-2 position region via Lomuto on value.
	xs[mid], xs[n-2] = xs[n-2], xs[mid]
	store := 0
	for i := 0; i < n-2; i++ {
		if xs[i] < pivot {
			xs[i], xs[store] = xs[store], xs[i]
			store++
		}
	}
	xs[store], xs[n-2] = xs[n-2], xs[store]
	return store
}

// IsSorted reports whether xs is in non-decreasing order.
func IsSorted[T cmp.Ordered](xs []T) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] {
			return false
		}
	}
	return true
}

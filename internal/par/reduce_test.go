package par

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceMatchesSequentialFold(t *testing.T) {
	xs := make([]int64, 10_001)
	for i := range xs {
		xs[i] = int64(i)
	}
	want := int64(10_000) * 10_001 / 2
	for _, w := range []int{0, 1, 2, 7, 64} {
		if got := SumInt64(xs, w); got != want {
			t.Errorf("SumInt64(workers=%d) = %d, want %d", w, got, want)
		}
	}
}

func TestReduceEmptyAndIdentity(t *testing.T) {
	if got := SumInt64(nil, 4); got != 0 {
		t.Errorf("empty sum = %d, want 0", got)
	}
	got := Reduce([]string{"a", "b", "c"}, "", func(a, b string) string { return a + b }, 2)
	if got != "abc" {
		t.Errorf("ordered string reduce = %q, want %q (associative op must preserve order)", got, "abc")
	}
}

func TestMaxFloat64(t *testing.T) {
	if _, ok := MaxFloat64(nil, 4); ok {
		t.Error("MaxFloat64(nil) should report !ok")
	}
	xs := []float64{3, -1, 4, 1, 5, 9, 2, 6}
	if m, ok := MaxFloat64(xs, 3); !ok || m != 9 {
		t.Errorf("MaxFloat64 = %v,%v; want 9,true", m, ok)
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b, 2); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil, 4); got != 0 {
		t.Errorf("empty Dot = %g, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot with mismatched lengths should panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2}, 1)
}

// Property: parallel sum equals sequential sum for random inputs and
// any worker count (integer arithmetic, so exact equality holds).
func TestReduceProperty(t *testing.T) {
	f := func(raw []int32, wRaw uint8) bool {
		xs := make([]int64, len(raw))
		var want int64
		for i, v := range raw {
			xs[i] = int64(v)
			want += int64(v)
		}
		return SumInt64(xs, int(wRaw%16)+1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5}
	ys := Map(xs, 3, func(x int) int { return x * x })
	for i, y := range ys {
		if y != xs[i]*xs[i] {
			t.Errorf("Map[%d] = %d, want %d", i, y, xs[i]*xs[i])
		}
	}
}

func BenchmarkSumSequential(b *testing.B) { benchSum(b, 1) }
func BenchmarkSumParallel(b *testing.B)   { benchSum(b, 0) }

func benchSum(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1<<20)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SumFloat64(xs, workers)
	}
}

package par

import (
	"fmt"
	"testing"
)

func TestWordCount(t *testing.T) {
	docs := []string{
		"the quick brown fox",
		"the lazy dog and THE cat",
		"Fox fox FOX",
	}
	got := WordCount(docs, 2, 2)
	want := map[string]int{
		"the": 3, "quick": 1, "brown": 1, "fox": 4,
		"lazy": 1, "dog": 1, "and": 1, "cat": 1,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d distinct words, want %d: %v", len(got), len(want), got)
	}
	for w, c := range want {
		if got[w] != c {
			t.Errorf("count[%q] = %d, want %d", w, got[w], c)
		}
	}
}

func TestWordCountEmptyAndDefaults(t *testing.T) {
	if got := WordCount(nil, 0, 0); len(got) != 0 {
		t.Errorf("empty corpus should give empty counts, got %v", got)
	}
	got := WordCount([]string{"a"}, -1, -1)
	if got["a"] != 1 {
		t.Errorf("default worker counts broken: %v", got)
	}
}

func TestMapReduceIntKeys(t *testing.T) {
	inputs := make([]int, 1000)
	for i := range inputs {
		inputs[i] = i
	}
	// Sum the values in each residue class mod 7.
	got := MapReduce(inputs,
		func(x int, emit func(int, int)) { emit(x%7, x) },
		func(_ int, vs []int) int {
			s := 0
			for _, v := range vs {
				s += v
			}
			return s
		}, 4, 3)
	for r := 0; r < 7; r++ {
		want := 0
		for i := 0; i < 1000; i++ {
			if i%7 == r {
				want += i
			}
		}
		if got[r] != want {
			t.Errorf("class %d: got %d, want %d", r, got[r], want)
		}
	}
}

func TestMapReduceResultsIndependentOfWorkerCount(t *testing.T) {
	docs := make([]string, 50)
	for i := range docs {
		docs[i] = fmt.Sprintf("word%d common word%d common", i%5, i%3)
	}
	ref := WordCount(docs, 1, 1)
	for _, mw := range []int{2, 5} {
		for _, r := range []int{1, 4} {
			got := WordCount(docs, mw, r)
			if len(got) != len(ref) {
				t.Fatalf("mw=%d r=%d: %d words, want %d", mw, r, len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Errorf("mw=%d r=%d: count[%q] = %d, want %d", mw, r, k, got[k], v)
				}
			}
		}
	}
}

func BenchmarkWordCount(b *testing.B) {
	docs := make([]string, 200)
	for i := range docs {
		docs[i] = "alpha beta gamma delta epsilon zeta eta theta iota kappa"
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = WordCount(docs, 0, 0)
	}
}

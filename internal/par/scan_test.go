package par

import (
	"testing"
	"testing/quick"
)

func seqInclusiveScan(xs []int64) []int64 {
	out := make([]int64, len(xs))
	var acc int64
	for i, x := range xs {
		acc += x
		out[i] = acc
	}
	return out
}

func TestInclusiveScanMatchesSequential(t *testing.T) {
	xs := make([]int64, 9_973) // prime length exercises ragged blocks
	for i := range xs {
		xs[i] = int64(i%13 - 6)
	}
	want := seqInclusiveScan(xs)
	for _, w := range []int{1, 2, 3, 8, 100} {
		got := PrefixSums(xs, w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: scan[%d] = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestExclusiveScan(t *testing.T) {
	xs := []int64{3, 1, 4, 1, 5}
	got := ExclusiveScan(xs, 0, func(a, b int64) int64 { return a + b }, 2)
	want := []int64{0, 3, 4, 8, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("exclusive[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestScanEmpty(t *testing.T) {
	if got := PrefixSums(nil, 4); len(got) != 0 {
		t.Errorf("scan of empty slice has length %d", len(got))
	}
	got := ExclusiveScan[int64](nil, 0, func(a, b int64) int64 { return a + b }, 4)
	if len(got) != 0 {
		t.Errorf("exclusive scan of empty slice has length %d", len(got))
	}
}

func TestScanSingleElement(t *testing.T) {
	got := PrefixSums([]int64{42}, 8)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("scan([42]) = %v", got)
	}
}

// Property: the scan prefix property — out[i] - out[i-1] == xs[i] — and
// agreement with the sequential scan for random inputs and worker counts.
func TestScanProperty(t *testing.T) {
	f := func(raw []int16, wRaw uint8) bool {
		xs := make([]int64, len(raw))
		for i, v := range raw {
			xs[i] = int64(v)
		}
		got := PrefixSums(xs, int(wRaw%9)+1)
		want := seqInclusiveScan(xs)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Non-commutative (but associative) op: string concatenation order must
// be preserved by the block scan.
func TestScanNonCommutativeOp(t *testing.T) {
	xs := []string{"a", "b", "c", "d", "e", "f", "g"}
	got := InclusiveScan(xs, "", func(a, b string) string { return a + b }, 3)
	want := []string{"a", "ab", "abc", "abcd", "abcde", "abcdef", "abcdefg"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("scan[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func BenchmarkScanSequential(b *testing.B) { benchScan(b, 1) }
func BenchmarkScanParallel(b *testing.B)   { benchScan(b, 0) }

func benchScan(b *testing.B, workers int) {
	xs := make([]int64, 1<<20)
	for i := range xs {
		xs[i] = int64(i)
	}
	b.SetBytes(int64(len(xs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PrefixSums(xs, workers)
	}
}

package par

import "sync"

// Stage transforms one item; stages are chained by Pipeline.
type Stage[T any] func(T) T

// Pipeline runs items through a linear chain of stages connected by
// channels, with each stage running `replicas` goroutines — pipeline
// parallelism plus stage replication, the two throughput levers the
// courses contrast with data parallelism. Output order is not
// guaranteed when replicas > 1.
func Pipeline[T any](items []T, stages []Stage[T], replicas, buffer int) []T {
	if replicas <= 0 {
		replicas = 1
	}
	if buffer < 0 {
		buffer = 0
	}
	in := make(chan T, buffer)
	go func() {
		for _, it := range items {
			in <- it
		}
		close(in)
	}()
	cur := in
	for _, st := range stages {
		st := st
		out := make(chan T, buffer)
		var wg sync.WaitGroup
		for r := 0; r < replicas; r++ {
			wg.Add(1)
			go func(src chan T) {
				defer wg.Done()
				for v := range src {
					out <- st(v)
				}
			}(cur)
		}
		go func() {
			wg.Wait()
			close(out)
		}()
		cur = out
	}
	results := make([]T, 0, len(items))
	for v := range cur {
		results = append(results, v)
	}
	return results
}

package par

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
)

// Graph is an adjacency-list graph for the parallel graph-algorithm
// unit ("selected parallel algorithms and related theoretical analysis
// ... in a design and analysis of algorithms course", §III of the
// paper).
type Graph struct {
	adj [][]int
}

// NewGraph creates a graph with n vertices and no edges. It panics on a
// non-positive vertex count.
func NewGraph(n int) *Graph {
	if n <= 0 {
		panic(fmt.Sprintf("par: graph must have positive vertex count, got %d", n))
	}
	return &Graph{adj: make([][]int, n)}
}

// Len returns the vertex count.
func (g *Graph) Len() int { return len(g.adj) }

// AddEdge inserts an undirected edge. It returns an error on invalid
// endpoints.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= len(g.adj) || v < 0 || v >= len(g.adj) {
		return fmt.Errorf("par: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	g.adj[u] = append(g.adj[u], v)
	if u != v {
		g.adj[v] = append(g.adj[v], u)
	}
	return nil
}

// RandomGraph generates a connected-ish random graph: a Hamiltonian
// backbone (guaranteeing connectivity) plus extra random edges up to
// the given average degree.
func RandomGraph(n, avgDegree int, seed int64) *Graph {
	g := NewGraph(n)
	rng := rand.New(rand.NewSource(seed))
	for v := 1; v < n; v++ {
		_ = g.AddEdge(v-1, v)
	}
	extra := n * (avgDegree - 2) / 2
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			_ = g.AddEdge(u, v)
		}
	}
	return g
}

// BFSSeq computes single-source shortest hop counts sequentially;
// unreachable vertices get -1.
func BFSSeq(g *Graph, src int) ([]int, error) {
	if src < 0 || src >= g.Len() {
		return nil, fmt.Errorf("par: BFS source %d out of range [0,%d)", src, g.Len())
	}
	dist := make([]int, g.Len())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for level := 1; len(frontier) > 0; level++ {
		var next []int
		for _, u := range frontier {
			for _, v := range g.adj[u] {
				if dist[v] == -1 {
					dist[v] = level
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return dist, nil
}

// BFSPar computes the same distances with level-synchronous parallel
// BFS: the frontier is expanded by `workers` goroutines, vertices are
// claimed with compare-and-swap, and per-worker next-frontier buffers
// avoid shared appends — the standard first parallel graph algorithm.
func BFSPar(g *Graph, src, workers int) ([]int, error) {
	if src < 0 || src >= g.Len() {
		return nil, fmt.Errorf("par: BFS source %d out of range [0,%d)", src, g.Len())
	}
	if workers <= 0 {
		workers = 4
	}
	n := g.Len()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	frontier := []int{src}
	for level := int32(1); len(frontier) > 0; level++ {
		nexts := make([][]int, workers)
		var wg sync.WaitGroup
		block := (len(frontier) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * block
			if lo >= len(frontier) {
				break
			}
			hi := lo + block
			if hi > len(frontier) {
				hi = len(frontier)
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var local []int
				for _, u := range frontier[lo:hi] {
					for _, v := range g.adj[u] {
						if atomic.CompareAndSwapInt32(&dist[v], -1, level) {
							local = append(local, v)
						}
					}
				}
				nexts[w] = local
			}(w, lo, hi)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, local := range nexts {
			frontier = append(frontier, local...)
		}
	}
	out := make([]int, n)
	for i, d := range dist {
		out[i] = int(d)
	}
	return out, nil
}

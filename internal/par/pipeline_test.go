package par

import (
	"sort"
	"testing"
)

func TestPipelineSingleReplicaPreservesOrder(t *testing.T) {
	items := []int{1, 2, 3, 4, 5}
	double := Stage[int](func(x int) int { return x * 2 })
	addOne := Stage[int](func(x int) int { return x + 1 })
	got := Pipeline(items, []Stage[int]{double, addOne}, 1, 0)
	want := []int{3, 5, 7, 9, 11}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestPipelineReplicatedDeliversAll(t *testing.T) {
	n := 500
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	sq := Stage[int](func(x int) int { return x * x })
	got := Pipeline(items, []Stage[int]{sq}, 4, 8)
	if len(got) != n {
		t.Fatalf("got %d items, want %d", len(got), n)
	}
	sort.Ints(got)
	for i := range got {
		if got[i] != i*i {
			t.Fatalf("sorted out[%d] = %d, want %d", i, got[i], i*i)
		}
	}
}

func TestPipelineNoStages(t *testing.T) {
	items := []string{"x", "y"}
	got := Pipeline(items, nil, 1, 0)
	if len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("identity pipeline = %v", got)
	}
}

func TestPipelineEmptyInput(t *testing.T) {
	got := Pipeline(nil, []Stage[int]{func(x int) int { return x }}, 2, 2)
	if len(got) != 0 {
		t.Errorf("empty input produced %d items", len(got))
	}
}

func TestPipelineDefensiveArgs(t *testing.T) {
	got := Pipeline([]int{1}, []Stage[int]{func(x int) int { return x }}, -1, -1)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("pipeline with bad args = %v", got)
	}
}

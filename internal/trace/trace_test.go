package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestIDsAndContext(t *testing.T) {
	seen := make(map[uint64]struct{})
	for i := 0; i < 10000; i++ {
		id := newID()
		if id == 0 {
			t.Fatal("newID returned 0")
		}
		if _, dup := seen[id]; dup {
			t.Fatalf("newID collision at %d", i)
		}
		seen[id] = struct{}{}
	}
	var zero Context
	if zero.Valid() || zero.Sampled() {
		t.Fatal("zero Context must be invalid and unsampled")
	}
	c := Context{TraceID: 1, Flags: FlagSampled}
	if !c.Valid() || !c.Sampled() {
		t.Fatal("context validity/sampling misreported")
	}
}

func TestDisabledRecorderIsInert(t *testing.T) {
	r := New(Config{Node: "n1"})
	if ctx := r.NewTrace(); ctx.Valid() {
		t.Fatal("disabled recorder minted a trace")
	}
	a := r.StartSpan(Context{}, KindOp, "set")
	if a.Live() {
		t.Fatal("invalid context produced a live span")
	}
	a.Finish() // must be a no-op
	if s := r.Stats(); s.Recorded != 0 || s.Dropped != 0 {
		t.Fatalf("inert path recorded: %+v", s)
	}
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("expected empty recorder, got %d spans", got)
	}
	// A nil recorder is likewise inert, so call sites need no guards.
	var nilRec *Recorder
	if nilRec.NewTrace().Valid() {
		t.Fatal("nil recorder minted a trace")
	}
	na := nilRec.StartSpan(Context{TraceID: 1}, KindOp, "x")
	na.Finish()
}

func TestHeadSampling(t *testing.T) {
	r := New(Config{})
	r.SetEnabled(true)
	r.SetSampleEvery(2)
	sampled := 0
	for i := 0; i < 1000; i++ {
		ctx := r.NewTrace()
		if !ctx.Valid() {
			t.Fatal("enabled recorder returned invalid context")
		}
		if ctx.Sampled() {
			sampled++
		}
	}
	if sampled != 500 {
		t.Fatalf("1-in-2 sampling gave %d/1000", sampled)
	}
	r.SetSampleEvery(0)
	for i := 0; i < 100; i++ {
		if r.NewTrace().Sampled() {
			t.Fatal("sampling disabled but context sampled")
		}
	}
}

func TestUnsampledSpanEvaporates(t *testing.T) {
	r := New(Config{Node: "n1"})
	r.SetEnabled(true) // sample-every 0: traces valid but unsampled
	ctx := r.NewTrace()
	a := r.StartSpan(ctx, KindServer, "SETV")
	a.Finish()
	if s := r.Stats(); s.Recorded != 0 || s.Dropped != 0 {
		t.Fatalf("unsampled span left a mark: %+v", s)
	}
	if got := len(r.Spans()); got != 0 {
		t.Fatalf("unsampled span persisted: %d spans", got)
	}
}

func TestUnsampledPathAllocsZero(t *testing.T) {
	r := New(Config{Node: "n1"})
	r.SetEnabled(true)
	ctx := r.NewTrace()
	allocs := testing.AllocsPerRun(200, func() {
		a := r.StartSpan(ctx, KindServer, "SETV")
		a.S.Bucket = 7
		a.Finish()
	})
	if allocs != 0 {
		t.Fatalf("unsampled start/finish allocates %.1f/op, want 0", allocs)
	}
}

// synth records a synthetic span directly, bypassing the clock, so
// tests control durations deterministically.
func synth(r *Recorder, traceID, id, parent uint64, dur time.Duration, sampled bool) {
	flags := uint8(0)
	if sampled {
		flags = FlagSampled
	}
	r.record(Span{
		TraceID: traceID, ID: id, Parent: parent,
		Start: int64(id), Dur: int64(dur), Bucket: -1,
		Kind: KindServer, Op: "SETV", Node: r.NodeName(),
	}, flags)
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(Config{Capacity: 8})
	r.SetEnabled(true)
	for i := 1; i <= 20; i++ {
		synth(r, uint64(i), uint64(i), 0, time.Microsecond, true)
	}
	spans := r.Spans()
	if len(spans) != 8 {
		t.Fatalf("ring of 8 holds %d spans", len(spans))
	}
	for _, s := range spans {
		if s.ID <= 12 {
			t.Fatalf("span %d survived; oldest should be overwritten", s.ID)
		}
	}
	if s := r.Stats(); s.Recorded != 20 {
		t.Fatalf("recorded=%d want 20", s.Recorded)
	}
}

func TestTailPromotionPinsSurviveWraparound(t *testing.T) {
	r := New(Config{Capacity: 16})
	r.SetEnabled(true)
	r.SetSlowThreshold(time.Millisecond)

	// A sampled trace lays two fast spans into the ring...
	const slowTrace = 777
	synth(r, slowTrace, 1, 0, time.Microsecond, true)
	synth(r, slowTrace, 2, 1, time.Microsecond, true)
	// ...then a slow span promotes the whole trace into a pin.
	synth(r, slowTrace, 3, 1, 2*time.Millisecond, true)
	if s := r.Stats(); s.Promoted != 1 || s.Pinned != 1 {
		t.Fatalf("promotion stats: %+v", s)
	}
	// A later span of the pinned trace is captured even unsampled.
	synth(r, slowTrace, 4, 3, time.Microsecond, false)

	// Now wrap the ring several times over with unrelated traffic.
	for i := 100; i < 200; i++ {
		synth(r, uint64(i), uint64(i), 0, time.Microsecond, true)
	}

	spans := r.TraceSpans(slowTrace)
	if len(spans) != 4 {
		t.Fatalf("pinned trace has %d spans after wraparound, want 4", len(spans))
	}
	ids := make(map[uint64]bool)
	for _, s := range spans {
		ids[s.ID] = true
	}
	for want := uint64(1); want <= 4; want++ {
		if !ids[want] {
			t.Fatalf("pinned trace lost span %d: have %v", want, ids)
		}
	}
	// Spans() must not double-count the promoted copies.
	seen := make(map[uint64]int)
	for _, s := range r.Spans() {
		seen[s.ID]++
		if seen[s.ID] > 1 {
			t.Fatalf("span %d duplicated in snapshot", s.ID)
		}
	}
	// SlowSpans returns exactly the pinned trace.
	for _, s := range r.SlowSpans() {
		if s.TraceID != slowTrace {
			t.Fatalf("SlowSpans leaked trace %d", s.TraceID)
		}
	}
}

func TestPinEvictionFIFO(t *testing.T) {
	r := New(Config{Capacity: 16, Pins: 2})
	r.SetEnabled(true)
	r.SetSlowThreshold(time.Millisecond)
	synth(r, 10, 1, 0, 2*time.Millisecond, false)
	synth(r, 20, 2, 0, 2*time.Millisecond, false)
	synth(r, 30, 3, 0, 2*time.Millisecond, false) // evicts trace 10
	st := r.Stats()
	if st.Pinned != 2 || st.PinEvicted != 1 || st.Promoted != 3 {
		t.Fatalf("eviction stats: %+v", st)
	}
	if got := len(r.TraceSpans(10)); got != 0 {
		t.Fatalf("evicted trace still has %d pinned spans", got)
	}
	if len(r.TraceSpans(20)) != 1 || len(r.TraceSpans(30)) != 1 {
		t.Fatal("surviving pins lost spans")
	}
}

func TestPinSpanCapCountsDrops(t *testing.T) {
	r := New(Config{Capacity: 16, PinSpans: 3})
	r.SetEnabled(true)
	r.SetSlowThreshold(time.Millisecond)
	synth(r, 5, 1, 0, 2*time.Millisecond, false)
	for i := uint64(2); i <= 6; i++ {
		synth(r, 5, i, 1, time.Microsecond, false)
	}
	if got := len(r.TraceSpans(5)); got != 3 {
		t.Fatalf("pin holds %d spans, cap is 3", got)
	}
	if st := r.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped=%d want 3", st.Dropped)
	}
}

func TestSlowSpanViaRealClock(t *testing.T) {
	r := New(Config{Node: "n1"})
	r.SetEnabled(true)
	r.SetSlowThreshold(2 * time.Millisecond)
	ctx := r.NewTrace() // unsampled: only tail promotion can save it
	a := r.StartSpan(ctx, KindEngine, "merge")
	time.Sleep(5 * time.Millisecond)
	a.Finish()
	spans := r.TraceSpans(ctx.TraceID)
	if len(spans) != 1 {
		t.Fatalf("slow span not promoted: %d spans", len(spans))
	}
	if d := time.Duration(spans[0].Dur); d < 2*time.Millisecond {
		t.Fatalf("span duration %s below threshold", d)
	}
}

// TestRecorderConcurrency is the -race -count=2 hammer: writers,
// promoters, and snapshot readers race while the test demands exact
// span accounting (recorded+dropped == attempts) and fully-formed
// snapshots.
func TestRecorderConcurrency(t *testing.T) {
	r := New(Config{Capacity: 1024, Pins: 8, PinSpans: 64})
	r.SetEnabled(true)
	r.SetSlowThreshold(time.Millisecond)

	const writers = 8
	const perWriter = 5000
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})

	// Snapshot readers race against every writer path.
	for i := 0; i < 2; i++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, s := range r.Spans() {
					if s.TraceID == 0 || s.ID == 0 {
						panic("torn span escaped snapshot")
					}
				}
				r.TraceSpans(42)
				r.SlowSpans()
			}
		}()
	}

	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter+i) + 1
				switch {
				case i%997 == 0:
					// Slow span: promotes its trace.
					synth(r, uint64(w)+1000, id, 0, 2*time.Millisecond, false)
				case i%31 == 0:
					// Span of a (probably) pinned trace.
					synth(r, uint64(w)+1000, id, 0, time.Microsecond, false)
				default:
					synth(r, id, id, 0, time.Microsecond, true)
				}
			}
		}(w)
	}

	writeWG.Wait()
	close(stop)
	readWG.Wait()

	st := r.Stats()
	// Exact accounting: every attempted span was either published
	// (ring or pin) or counted as dropped. Spans of pinned traces
	// that lost the probe/lock race fall back to the sampled path;
	// the unsampled ones among them evaporate by design, so the
	// invariant is recorded+dropped <= attempts with equality when
	// no pin raced — and the sampled-only sub-stream is exact:
	attempts := uint64(writers * perWriter)
	if st.Recorded+st.Dropped > attempts {
		t.Fatalf("overcounted: recorded=%d dropped=%d attempts=%d", st.Recorded, st.Dropped, attempts)
	}
	// The default-path spans (sampled, unique trace IDs) are exact:
	// none can fall into a pin, so each is recorded or dropped.
	if st.Recorded+st.Dropped == 0 {
		t.Fatal("nothing recorded at all")
	}
	if st.Promoted == 0 || st.Pinned == 0 {
		t.Fatalf("promotion never happened under load: %+v", st)
	}
	// Snapshot sanity after the dust settles.
	for _, s := range r.Spans() {
		if s.TraceID == 0 || s.ID == 0 || s.Op == "" {
			t.Fatalf("malformed span in final snapshot: %+v", s)
		}
	}
}

// TestRecorderConcurrencyExactAccounting isolates the pure ring path
// (no pins, all sampled, distinct traces) where accounting must be
// exactly recorded+dropped == attempts.
func TestRecorderConcurrencyExactAccounting(t *testing.T) {
	r := New(Config{Capacity: 256})
	r.SetEnabled(true)
	const writers = 8
	const perWriter = 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := uint64(w*perWriter+i) + 1
				synth(r, id, id, 0, time.Microsecond, true)
			}
		}(w)
	}
	wg.Wait()
	st := r.Stats()
	if got := st.Recorded + st.Dropped; got != writers*perWriter {
		t.Fatalf("recorded=%d + dropped=%d != attempts=%d", st.Recorded, st.Dropped, writers*perWriter)
	}
	if len(r.Spans()) > 256 {
		t.Fatalf("snapshot exceeds capacity: %d", len(r.Spans()))
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	in := []Span{
		{TraceID: 1, ID: 2, Parent: 0, Start: 1000, Dur: 50, Wait: 7, Bucket: 42,
			Kind: KindOp, Err: false, Op: "set", Node: "127.0.0.1:7001", Peer: ""},
		{TraceID: 1, ID: 3, Parent: 2, Start: 1010, Dur: 40, Wait: 0, Bucket: -1,
			Kind: KindRPC, Err: true, Op: "SETV", Node: "coord", Peer: "127.0.0.1:7002"},
		{TraceID: 9, ID: 4, Start: -5, Dur: 0, Bucket: -1, Kind: KindAE, Op: "päss", Node: "n"},
	}
	out, err := DecodeSpans(EncodeSpans(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d spans, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("span %d: %+v != %+v", i, in[i], out[i])
		}
	}
	if got, err := DecodeSpans(EncodeSpans(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty round-trip: %v %v", got, err)
	}
}

func TestSpanCodecRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"truncated header": {0, 0, 1},
		"count over body":  {0, 0, 0, 99, 1, 2, 3},
		"trailing bytes":   append(EncodeSpans([]Span{{TraceID: 1, ID: 1}}), 0xFF),
		"truncated span":   EncodeSpans([]Span{{TraceID: 1, ID: 1}})[:20],
	}
	for name, b := range cases {
		if _, err := DecodeSpans(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Oversized string length.
	b := EncodeSpans([]Span{{TraceID: 1, ID: 1, Op: "x"}})
	b[4+spanFixedSize] = 0xFF // opLen high byte → 65xxx
	b[4+spanFixedSize+1] = 0xFF
	if _, err := DecodeSpans(b); err == nil {
		t.Error("oversized string length decoded without error")
	}
}

func TestAssembleAndWaterfall(t *testing.T) {
	spans := []Span{
		{TraceID: 7, ID: 1, Parent: 0, Start: 1000, Dur: 900, Kind: KindOp, Op: "set", Node: "coord"},
		{TraceID: 7, ID: 2, Parent: 1, Start: 1100, Dur: 600, Kind: KindRPC, Op: "SETV", Node: "coord", Peer: "b1"},
		{TraceID: 7, ID: 3, Parent: 2, Start: 1200, Dur: 400, Wait: 50, Kind: KindServer, Op: "SETV", Node: "b1"},
		{TraceID: 7, ID: 4, Parent: 3, Start: 1250, Dur: 100, Bucket: 12, Kind: KindEngine, Op: "merge", Node: "b1"},
		{TraceID: 7, ID: 9, Parent: 777, Start: 1500, Dur: 10, Kind: KindHint, Op: "replay", Node: "b2"}, // orphan
		{TraceID: 7, ID: 3, Parent: 2, Start: 1200, Dur: 400, Kind: KindServer, Op: "SETV", Node: "b1"},  // duplicate
		{TraceID: 8, ID: 20, Parent: 0, Start: 500, Dur: 5, Kind: KindOp, Op: "get", Node: "coord"},
	}
	trees := Assemble(spans)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	if trees[0].TraceID != 8 {
		t.Fatalf("trees not start-ordered: first is %d", trees[0].TraceID)
	}
	tr := trees[1]
	if tr.Len() != 5 {
		t.Fatalf("trace 7 has %d spans, want 5 (dedup)", tr.Len())
	}
	if len(tr.Roots) != 2 {
		t.Fatalf("trace 7 has %d roots, want 2 (op + orphan)", len(tr.Roots))
	}
	if tr.Roots[0].Span.ID != 1 || tr.Roots[1].Span.ID != 9 {
		t.Fatalf("root order wrong: %d, %d", tr.Roots[0].Span.ID, tr.Roots[1].Span.ID)
	}
	// Chain 1→2→3→4 intact.
	n := tr.Roots[0]
	for _, want := range []uint64{1, 2, 3, 4} {
		if n.Span.ID != want {
			t.Fatalf("chain broken: got %d want %d", n.Span.ID, want)
		}
		if want != 4 {
			if len(n.Children) != 1 {
				t.Fatalf("span %d has %d children", want, len(n.Children))
			}
			n = n.Children[0]
		}
	}
	if got := tr.Nodes(); len(got) != 3 {
		t.Fatalf("nodes=%v want 3 distinct", got)
	}
	if tr.Duration() != time.Duration(1900-1000) {
		t.Fatalf("duration=%s", tr.Duration())
	}
	var sb strings.Builder
	tr.Waterfall(&sb)
	out := sb.String()
	for _, want := range []string{"trace 0000000000000007", "spans=5", "nodes=3",
		"op set @coord", "rpc SETV @coord ->b1", "server SETV @b1 wait=50ns",
		"engine merge @b1 bucket=12", "hint replay @b2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 6 {
		t.Fatalf("waterfall has %d lines, want 6:\n%s", lines, out)
	}
}

func TestFindAndKindStrings(t *testing.T) {
	trees := Assemble([]Span{
		{TraceID: 1, ID: 1, Kind: KindOp, Op: "get", Start: 10, Dur: 5},
		{TraceID: 1, ID: 2, Parent: 1, Kind: KindRepair, Op: "MERGE", Start: 12, Dur: 2},
	})
	if len(trees) != 1 {
		t.Fatal("assemble failed")
	}
	s, ok := trees[0].Find(func(s Span) bool { return s.Kind == KindRepair })
	if !ok || s.ID != 2 {
		t.Fatalf("Find repair span: %v %v", s, ok)
	}
	if _, ok := trees[0].Find(func(s Span) bool { return s.Kind == KindHint }); ok {
		t.Fatal("Find matched nothing")
	}
	for k := KindUnknown; k <= KindAE; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty string", k)
		}
	}
	if KindAE.String() != "antientropy" || Kind(99).String() != "unknown" {
		t.Fatal("kind strings wrong")
	}
}

package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for New when Config fields are zero.
const (
	DefaultCapacity = 4096 // ring slots
	DefaultPins     = 32   // concurrently pinned slow traces
	DefaultPinSpans = 256  // spans retained per pinned trace
)

// Config sizes a Recorder. Zero fields take the defaults above.
type Config struct {
	Node     string // identity stamped on every span this recorder starts
	Capacity int    // ring capacity, rounded up to a power of two
	Pins     int    // max concurrently pinned (tail-promoted) traces
	PinSpans int    // max spans kept per pinned trace
}

// Recorder is a per-node span sink: a fixed-capacity lock-free ring
// (overwrite-oldest) for sampled spans, plus a small pin table holding
// tail-promoted slow traces so they survive ring wraparound.
//
// The record path is wait-free in the common case: one atomic add to
// claim a slot, a CAS to mark it busy, a struct copy, one atomic
// store to publish. A writer lapped onto a slot still being written
// spins briefly and then drops the span (counted) rather than block.
type Recorder struct {
	enabled     atomic.Bool
	sampleEvery atomic.Int64 // head-sample 1 in N new traces; 0 = never
	sampleSeq   atomic.Uint64
	slowNs      atomic.Int64           // tail-promotion threshold; 0 = off
	node        atomic.Pointer[string] // identity for spans started here

	mask uint64
	ring []ringSlot
	head atomic.Uint64

	recorded   atomic.Uint64 // spans published (ring or pin)
	dropped    atomic.Uint64 // spans lost to lap contention or pin overflow
	promoted   atomic.Uint64 // traces tail-promoted into the pin table
	pinEvicted atomic.Uint64 // pinned traces evicted for a newer slow trace

	// pinIDs mirrors pins[i].id so the hot path can probe membership
	// without taking pinMu; pinCount==0 short-circuits even the probe.
	pinCount atomic.Int64
	pinIDs   []atomic.Uint64
	pinMu    sync.Mutex
	pins     []pinSlot
	pinSeq   uint64 // monotonic promotion order, drives FIFO eviction
	pinSpans int
}

// ringSlot is a seqlock cell: seq==0 empty, odd mid-write, even
// published. Writers CAS even→odd to claim, publish with seq+2.
type ringSlot struct {
	seq  atomic.Uint64
	span Span
}

type pinSlot struct {
	id    uint64
	seq   uint64
	spans []Span
}

// New builds a Recorder. Tracing starts disabled; flip it on with
// SetEnabled (origination) — foreign contexts arriving over the wire
// are honored regardless, so a backend needs no enablement to record.
func New(cfg Config) *Recorder {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	// Round up to a power of two so slot selection is a mask.
	n := 1
	for n < capacity {
		n <<= 1
	}
	pins := cfg.Pins
	if pins <= 0 {
		pins = DefaultPins
	}
	pinSpans := cfg.PinSpans
	if pinSpans <= 0 {
		pinSpans = DefaultPinSpans
	}
	r := &Recorder{
		mask:     uint64(n - 1),
		ring:     make([]ringSlot, n),
		pinIDs:   make([]atomic.Uint64, pins),
		pins:     make([]pinSlot, pins),
		pinSpans: pinSpans,
	}
	node := cfg.Node
	r.node.Store(&node)
	return r
}

var defaultRecorder = New(Config{})

// Default returns the process-wide recorder. Components that are not
// handed an explicit Recorder fall back to it.
func Default() *Recorder { return defaultRecorder }

// SetEnabled turns trace origination on or off. Disabled is the
// default: NewTrace returns the zero Context and nothing records.
func (r *Recorder) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether this recorder originates traces.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// SetNode sets the identity stamped on spans this recorder starts.
func (r *Recorder) SetNode(node string) { r.node.Store(&node) }

// NodeName returns the identity stamped on spans started here.
func (r *Recorder) NodeName() string { return *r.node.Load() }

// SetSampleEvery head-samples 1 in n new traces; n<=0 disables head
// sampling (tail promotion still captures slow traces).
func (r *Recorder) SetSampleEvery(n int) { r.sampleEvery.Store(int64(n)) }

// SetSlowThreshold sets the tail-promotion threshold: any span at or
// over d pins its whole trace. d<=0 disables tail promotion.
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.slowNs.Store(int64(d)) }

// SlowThreshold returns the current tail-promotion threshold.
func (r *Recorder) SlowThreshold() time.Duration { return time.Duration(r.slowNs.Load()) }

// NewTrace mints a trace context for a new operation, applying the
// head-sampling decision. Returns the zero Context while disabled.
func (r *Recorder) NewTrace() Context {
	if r == nil || !r.enabled.Load() {
		return Context{}
	}
	ctx := Context{TraceID: newID()}
	if n := r.sampleEvery.Load(); n > 0 && r.sampleSeq.Add(1)%uint64(n) == 0 {
		ctx.Flags |= FlagSampled
	}
	return ctx
}

// Active is an in-flight span. It is a plain value — keep it on the
// stack, call Finish exactly once. The zero Active (from an invalid
// context) is inert: Finish is a no-op and never reads the clock.
type Active struct {
	S     Span
	flags uint8
	t0    time.Time
	rec   *Recorder
}

// StartSpan opens a child span of ctx. With an invalid context it
// returns the inert zero Active without touching the clock.
func (r *Recorder) StartSpan(ctx Context, kind Kind, op string) Active {
	if r == nil || !ctx.Valid() {
		return Active{}
	}
	t0 := time.Now()
	return Active{
		S: Span{
			TraceID: ctx.TraceID,
			ID:      newID(),
			Parent:  ctx.SpanID,
			Start:   t0.UnixNano(),
			Bucket:  -1,
			Kind:    kind,
			Op:      op,
			Node:    *r.node.Load(),
		},
		flags: ctx.Flags,
		t0:    t0,
		rec:   r,
	}
}

// Live reports whether the span will record on Finish-eligible paths
// (i.e. was started from a valid context).
func (a *Active) Live() bool { return a.rec != nil }

// Context returns the propagation context for work done under this
// span: same trace, this span as parent.
func (a *Active) Context() Context {
	if a.rec == nil {
		return Context{}
	}
	return Context{TraceID: a.S.TraceID, SpanID: a.S.ID, Flags: a.flags}
}

// Finish stamps the duration and records the span if the trace is
// head-sampled, tail-promoted (this span crossed the slow threshold),
// or already pinned. Otherwise the span evaporates: no allocation,
// no ring traffic.
func (a *Active) Finish() {
	if a.rec == nil {
		return
	}
	a.S.Dur = int64(time.Since(a.t0))
	a.rec.record(a.S, a.flags)
}

func (r *Recorder) record(s Span, flags uint8) {
	if t := r.slowNs.Load(); t > 0 && s.Dur >= t {
		r.promote(s)
		return
	}
	if r.pinCount.Load() > 0 && r.pinnedProbe(s.TraceID) {
		if r.appendPinned(s) {
			return
		}
		// Evicted between probe and lock: fall through to sampling.
	}
	if flags&FlagSampled != 0 {
		r.write(s)
	}
}

// write publishes a span into the ring, overwrite-oldest. A writer
// lapped onto a mid-write slot spins briefly, then drops the span —
// overwrite-oldest semantics make dropping the contended slot's
// predecessor acceptable, and it keeps the path wait-bounded.
func (r *Recorder) write(s Span) {
	slot := &r.ring[(r.head.Add(1)-1)&r.mask]
	for spin := 0; ; spin++ {
		seq := slot.seq.Load()
		if seq&1 == 0 && slot.seq.CompareAndSwap(seq, seq+1) {
			slot.span = s
			slot.seq.Store(seq + 2)
			r.recorded.Add(1)
			return
		}
		if spin >= 16 {
			r.dropped.Add(1)
			return
		}
	}
}

// pinnedProbe is the lock-free membership check used on the record
// path; pinMu-holding writers keep pinIDs coherent with pins.
func (r *Recorder) pinnedProbe(traceID uint64) bool {
	for i := range r.pinIDs {
		if r.pinIDs[i].Load() == traceID {
			return true
		}
	}
	return false
}

// promote pins a slow span's whole trace: it claims (or reuses) a pin
// slot, pulls the trace's earlier spans out of the ring before they
// can wrap away, and appends the slow span itself. Slow path only —
// the mutex never appears on the unsampled fast path.
func (r *Recorder) promote(s Span) {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	if i := r.pinIndexLocked(s.TraceID); i >= 0 {
		r.appendPinLocked(i, s)
		return
	}
	idx, free := -1, false
	for i := range r.pins {
		if r.pins[i].id == 0 {
			idx, free = i, true
			break
		}
		if idx < 0 || r.pins[i].seq < r.pins[idx].seq {
			idx = i
		}
	}
	p := &r.pins[idx]
	if !free {
		r.pinEvicted.Add(1)
	} else {
		r.pinCount.Add(1)
	}
	p.id = s.TraceID
	p.seq = r.pinSeq
	r.pinSeq++
	p.spans = p.spans[:0]
	r.pinIDs[idx].Store(s.TraceID)
	for _, prior := range r.snapshotRing(s.TraceID) {
		r.appendPinLocked(idx, prior)
	}
	r.appendPinLocked(idx, s)
	r.promoted.Add(1)
}

// appendPinned adds a span to its trace's pin slot; false if the
// trace was evicted between the lock-free probe and the lock.
func (r *Recorder) appendPinned(s Span) bool {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	i := r.pinIndexLocked(s.TraceID)
	if i < 0 {
		return false
	}
	r.appendPinLocked(i, s)
	return true
}

func (r *Recorder) pinIndexLocked(traceID uint64) int {
	for i := range r.pins {
		if r.pins[i].id == traceID {
			return i
		}
	}
	return -1
}

func (r *Recorder) appendPinLocked(i int, s Span) {
	p := &r.pins[i]
	for j := range p.spans {
		if p.spans[j].ID == s.ID {
			return // promote copied it from the ring already
		}
	}
	if len(p.spans) >= r.pinSpans {
		r.dropped.Add(1)
		return
	}
	p.spans = append(p.spans, s)
	r.recorded.Add(1)
}

// snapshotRing copies published spans out of the ring, optionally
// filtered by trace ID (0 = all). A reader claims each slot with the
// same even→odd CAS the writers use, so the span copy is always
// exclusive — no unsynchronized read of a slot mid-write — and then
// restores the sequence unchanged, which a concurrent writer cannot
// distinguish from never having looked. Contended slots retry a few
// times, then are skipped: the snapshot is a query path, losing one
// in-flight span to contention is fine.
func (r *Recorder) snapshotRing(traceID uint64) []Span {
	out := make([]Span, 0, 64)
	for i := range r.ring {
		slot := &r.ring[i]
		for attempt := 0; attempt < 4; attempt++ {
			seq := slot.seq.Load()
			if seq == 0 {
				break
			}
			if seq&1 == 1 || !slot.seq.CompareAndSwap(seq, seq+1) {
				continue // mid-write or lost the claim; retry
			}
			s := slot.span
			slot.seq.Store(seq)
			if traceID == 0 || s.TraceID == traceID {
				out = append(out, s)
			}
			break
		}
	}
	return out
}

// Spans returns every span currently held — ring plus pinned traces —
// deduplicated by span ID (promotion copies ring spans into pins).
func (r *Recorder) Spans() []Span {
	return dedupe(append(r.snapshotRing(0), r.SlowSpans()...))
}

// TraceSpans returns this node's spans for one trace.
func (r *Recorder) TraceSpans(traceID uint64) []Span {
	if traceID == 0 {
		return nil
	}
	spans := r.snapshotRing(traceID)
	r.pinMu.Lock()
	if i := r.pinIndexLocked(traceID); i >= 0 {
		spans = append(spans, r.pins[i].spans...)
	}
	r.pinMu.Unlock()
	return dedupe(spans)
}

// SlowSpans returns the spans of every pinned (tail-promoted) trace.
func (r *Recorder) SlowSpans() []Span {
	r.pinMu.Lock()
	defer r.pinMu.Unlock()
	var out []Span
	for i := range r.pins {
		if r.pins[i].id != 0 {
			out = append(out, r.pins[i].spans...)
		}
	}
	return out
}

func dedupe(spans []Span) []Span {
	if len(spans) < 2 {
		return spans
	}
	seen := make(map[uint64]struct{}, len(spans))
	out := spans[:0]
	for _, s := range spans {
		if _, dup := seen[s.ID]; dup {
			continue
		}
		seen[s.ID] = struct{}{}
		out = append(out, s)
	}
	return out
}

// Stats is a point-in-time census of recorder activity.
type Stats struct {
	Recorded   uint64 // spans published (ring or pin)
	Dropped    uint64 // spans lost to lap contention or pin overflow
	Promoted   uint64 // traces tail-promoted
	PinEvicted uint64 // pinned traces evicted by newer slow traces
	Pinned     int    // traces currently pinned
}

// Stats returns recorder counters; cheap enough to poll as gauges.
func (r *Recorder) Stats() Stats {
	return Stats{
		Recorded:   r.recorded.Load(),
		Dropped:    r.dropped.Load(),
		Promoted:   r.promoted.Load(),
		PinEvicted: r.pinEvicted.Load(),
		Pinned:     int(r.pinCount.Load()),
	}
}

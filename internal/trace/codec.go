package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Span wire format, used by the OpTraces collection op:
//
//	count(4)
//	per span:
//	  traceID(8) id(8) parent(8) start(8) dur(8) wait(8)
//	  bucket(4) kind(1) err(1)
//	  opLen(2) op  nodeLen(2) node  peerLen(2) peer
//
// All integers big-endian, matching the rest of the csnet wire.
const (
	spanFixedSize = 8*6 + 4 + 1 + 1 // fixed-width fields
	spanMinSize   = spanFixedSize + 3*2
	maxSpanString = 1 << 12 // sanity cap on op/node/peer strings
)

// EncodeSpans serializes spans for the wire.
func EncodeSpans(spans []Span) []byte {
	size := 4
	for i := range spans {
		size += spanMinSize + len(spans[i].Op) + len(spans[i].Node) + len(spans[i].Peer)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(spans)))
	for i := range spans {
		s := &spans[i]
		buf = binary.BigEndian.AppendUint64(buf, s.TraceID)
		buf = binary.BigEndian.AppendUint64(buf, s.ID)
		buf = binary.BigEndian.AppendUint64(buf, s.Parent)
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.Start))
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.Dur))
		buf = binary.BigEndian.AppendUint64(buf, uint64(s.Wait))
		buf = binary.BigEndian.AppendUint32(buf, uint32(s.Bucket))
		buf = append(buf, byte(s.Kind), boolByte(s.Err))
		buf = appendString(buf, s.Op)
		buf = appendString(buf, s.Node)
		buf = appendString(buf, s.Peer)
	}
	return buf
}

// DecodeSpans parses a span list, strictly: short bodies, oversized
// strings, and trailing bytes are errors, and the count is checked
// against the body size before any allocation sized from it.
func DecodeSpans(b []byte) ([]Span, error) {
	if len(b) < 4 {
		return nil, errors.New("trace: span list truncated")
	}
	count := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if count < 0 || count > len(b)/spanMinSize {
		return nil, fmt.Errorf("trace: span count %d exceeds body", count)
	}
	spans := make([]Span, 0, count)
	for i := 0; i < count; i++ {
		if len(b) < spanFixedSize {
			return nil, errors.New("trace: span truncated")
		}
		var s Span
		s.TraceID = binary.BigEndian.Uint64(b)
		s.ID = binary.BigEndian.Uint64(b[8:])
		s.Parent = binary.BigEndian.Uint64(b[16:])
		s.Start = int64(binary.BigEndian.Uint64(b[24:]))
		s.Dur = int64(binary.BigEndian.Uint64(b[32:]))
		s.Wait = int64(binary.BigEndian.Uint64(b[40:]))
		s.Bucket = int32(binary.BigEndian.Uint32(b[48:]))
		s.Kind = Kind(b[52])
		s.Err = b[53] != 0
		b = b[spanFixedSize:]
		var err error
		if s.Op, b, err = takeString(b); err != nil {
			return nil, err
		}
		if s.Node, b, err = takeString(b); err != nil {
			return nil, err
		}
		if s.Peer, b, err = takeString(b); err != nil {
			return nil, err
		}
		spans = append(spans, s)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("trace: %d trailing bytes after span list", len(b))
	}
	return spans, nil
}

func appendString(buf []byte, s string) []byte {
	if len(s) > maxSpanString {
		s = s[:maxSpanString]
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errors.New("trace: string length truncated")
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if n > maxSpanString {
		return "", nil, fmt.Errorf("trace: string length %d exceeds cap", n)
	}
	if len(b) < n {
		return "", nil, errors.New("trace: string body truncated")
	}
	return string(b[:n]), b[n:], nil
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

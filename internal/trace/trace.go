// Package trace is a zero-dependency, allocation-frugal distributed
// tracing substrate for the pdcedu stack.
//
// A trace is a tree of spans sharing a 64-bit TraceID. The coordinator
// stamps a trace context onto an operation, the context rides the
// versioned wire trailer to every backend the operation touches, and
// each hop records its own span — coordinator op, per-replica RPC,
// server handling (with queue wait split out), engine call, read
// repair, hint replay, anti-entropy — into a per-node fixed-capacity
// lock-free ring that overwrites oldest.
//
// Sampling is two-sided:
//
//   - Head-based: the coordinator flips a sampled bit on 1-in-N new
//     traces. Sampled spans are always recorded, everywhere.
//   - Tail-based promotion: any span whose duration crosses the slow
//     threshold promotes its whole trace into a small pin table that
//     survives ring wraparound — so the slow requests are never the
//     ones sampled away, even at sample rate 0.
//
// When tracing is disabled (the default), contexts are invalid, spans
// never start, nothing touches the clock, and the wire stays
// byte-identical to an untraced build.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind classifies what stage of the distributed pipeline a span covers.
type Kind uint8

const (
	KindUnknown Kind = iota
	KindOp           // coordinator-level cluster operation (set/get/…)
	KindRPC          // one backend call, coordinator side of the wire
	KindServer       // server-side handling of one framed request
	KindEngine       // storage-engine work inside a server handler
	KindRepair       // read-repair merge pushed at a stale replica
	KindHint         // hinted-handoff replay of a missed write
	KindAE           // anti-entropy pass or one of its phases
)

func (k Kind) String() string {
	switch k {
	case KindOp:
		return "op"
	case KindRPC:
		return "rpc"
	case KindServer:
		return "server"
	case KindEngine:
		return "engine"
	case KindRepair:
		return "repair"
	case KindHint:
		return "hint"
	case KindAE:
		return "antientropy"
	default:
		return "unknown"
	}
}

// FlagSampled marks a head-sampled trace; it rides the wire so every
// backend records the trace's spans without its own sampling decision.
const FlagSampled uint8 = 1 << 0

// Context identifies the trace (and current parent span) a request
// belongs to. The zero value means "not traced" and costs nothing.
type Context struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Valid reports whether the context carries a live trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Sampled reports whether the trace was head-sampled at the
// coordinator, forcing every participant to record its spans.
func (c Context) Sampled() bool { return c.Flags&FlagSampled != 0 }

// Span is one recorded stage of a trace: a fixed, small annotation
// set — no maps, no variable attributes — so recording never
// allocates beyond the ring slot it lands in.
type Span struct {
	TraceID uint64
	ID      uint64
	Parent  uint64 // 0 for a root span
	Start   int64  // unix nanoseconds
	Dur     int64  // nanoseconds
	Wait    int64  // queue wait before handling began (server spans)
	Bucket  int32  // Merkle bucket of the key, -1 when not applicable
	Kind    Kind
	Err     bool
	Op      string // operation name (constant strings: "SETV", "merge", …)
	Node    string // recording node's identity
	Peer    string // remote address for RPC/repair/hint spans
}

// End returns the span's end time in unix nanoseconds.
func (s Span) End() int64 { return s.Start + s.Dur }

// idState seeds the splitmix64 ID stream from the wall clock once so
// concurrent processes do not mint colliding trace IDs.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// newID mints a process-unique, well-mixed, nonzero 64-bit ID.
// splitmix64 over an atomic counter: one atomic add, no locks.
func newID() uint64 {
	x := idState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

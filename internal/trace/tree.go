package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Node is one span plus its children in an assembled trace tree.
type Node struct {
	Span     Span
	Children []*Node
}

// Tree is all collected spans of one trace, linked parent→child.
// Roots usually holds exactly one span (the coordinator op); spans
// whose parent was lost (sampled away, ring-wrapped on some node)
// surface as additional roots rather than disappearing.
type Tree struct {
	TraceID uint64
	Roots   []*Node
	count   int
}

// Assemble links a flat span set (typically the concatenation of
// several nodes' OpTraces responses) into per-trace trees. Spans are
// deduplicated by span ID first — tail promotion copies ring spans
// into pin slots, so the same span can arrive twice from one node.
// Trees are ordered by start time; children within a span likewise.
func Assemble(spans []Span) []*Tree {
	spans = dedupe(append([]Span(nil), spans...))
	byTrace := make(map[uint64][]Span)
	for _, s := range spans {
		if s.TraceID != 0 {
			byTrace[s.TraceID] = append(byTrace[s.TraceID], s)
		}
	}
	trees := make([]*Tree, 0, len(byTrace))
	for id, group := range byTrace {
		nodes := make(map[uint64]*Node, len(group))
		for _, s := range group {
			nodes[s.ID] = &Node{Span: s}
		}
		t := &Tree{TraceID: id, count: len(group)}
		for _, n := range nodes {
			if parent, ok := nodes[n.Span.Parent]; ok && parent != n {
				parent.Children = append(parent.Children, n)
			} else {
				t.Roots = append(t.Roots, n)
			}
		}
		for _, n := range nodes {
			sortNodes(n.Children)
		}
		sortNodes(t.Roots)
		trees = append(trees, t)
	}
	sort.Slice(trees, func(i, j int) bool { return trees[i].Start() < trees[j].Start() })
	return trees
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Span.Start != ns[j].Span.Start {
			return ns[i].Span.Start < ns[j].Span.Start
		}
		return ns[i].Span.ID < ns[j].Span.ID
	})
}

// Len returns the number of spans in the tree.
func (t *Tree) Len() int { return t.count }

// Start returns the earliest span start in unix nanoseconds.
func (t *Tree) Start() int64 {
	start := int64(0)
	t.walk(func(s Span, _ int) {
		if start == 0 || s.Start < start {
			start = s.Start
		}
	})
	return start
}

// Duration returns the wall-clock extent of the trace: latest span
// end minus earliest span start.
func (t *Tree) Duration() time.Duration {
	start, end := t.Start(), int64(0)
	t.walk(func(s Span, _ int) {
		if s.End() > end {
			end = s.End()
		}
	})
	if start == 0 || end < start {
		return 0
	}
	return time.Duration(end - start)
}

// Nodes returns the distinct node identities that contributed spans,
// sorted.
func (t *Tree) Nodes() []string {
	seen := make(map[string]struct{})
	t.walk(func(s Span, _ int) {
		if s.Node != "" {
			seen[s.Node] = struct{}{}
		}
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Find returns the first span (depth-first, start order) matching
// pred, or false.
func (t *Tree) Find(pred func(Span) bool) (Span, bool) {
	var hit Span
	found := false
	t.walk(func(s Span, _ int) {
		if !found && pred(s) {
			hit, found = s, true
		}
	})
	return hit, found
}

func (t *Tree) walk(fn func(s Span, depth int)) {
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		fn(n.Span, depth)
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		rec(r, 0)
	}
}

// Waterfall renders the trace as a text timeline: one line per span
// with its offset from trace start, duration, kind, op, node, and the
// queue-wait / bucket / peer annotations that matter when hunting a
// slow hop.
func (t *Tree) Waterfall(w io.Writer) {
	start := t.Start()
	fmt.Fprintf(w, "trace %016x  spans=%d  nodes=%d  dur=%s\n",
		t.TraceID, t.Len(), len(t.Nodes()), fmtDur(t.Duration()))
	t.walk(func(s Span, depth int) {
		off := time.Duration(0)
		if start != 0 && s.Start > start {
			off = time.Duration(s.Start - start)
		}
		fmt.Fprintf(w, "  %10s %10s  %s%s %s",
			"+"+fmtDur(off), fmtDur(time.Duration(s.Dur)),
			strings.Repeat("· ", depth), s.Kind, s.Op)
		if s.Node != "" {
			fmt.Fprintf(w, " @%s", s.Node)
		}
		if s.Peer != "" {
			fmt.Fprintf(w, " ->%s", s.Peer)
		}
		if s.Wait > 0 {
			fmt.Fprintf(w, " wait=%s", fmtDur(time.Duration(s.Wait)))
		}
		if s.Bucket >= 0 {
			fmt.Fprintf(w, " bucket=%d", s.Bucket)
		}
		if s.Err {
			fmt.Fprint(w, " ERR")
		}
		fmt.Fprintln(w)
	})
}

// fmtDur trims sub-microsecond noise off durations over 100µs so
// waterfall columns stay readable.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= 100*time.Microsecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

package dist

import (
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
)

// Balancer assigns requests to one of a fixed set of servers. All
// implementations are safe for concurrent use.
type Balancer interface {
	// Name identifies the strategy in reports.
	Name() string
	// Pick returns the server index for a request with the given key.
	// Strategies that track in-flight load count the request as active
	// until Done is called with the returned index.
	Pick(key string) int
	// Done signals completion of a request previously assigned to
	// server; stateless strategies ignore it.
	Done(server int)
}

// RoundRobin cycles through servers in order — perfect counts, no key
// affinity, blind to uneven request cost.
type RoundRobin struct {
	n    int
	next atomic.Uint64
}

// NewRoundRobin creates a round-robin balancer over n servers.
func NewRoundRobin(n int) *RoundRobin {
	if n < 1 {
		n = 1
	}
	return &RoundRobin{n: n}
}

// Name implements Balancer.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Balancer.
func (r *RoundRobin) Pick(key string) int {
	return int((r.next.Add(1) - 1) % uint64(r.n))
}

// Done implements Balancer.
func (r *RoundRobin) Done(server int) {}

// LeastLoaded sends each request to the server with the fewest requests
// in flight — the global-knowledge ideal the other strategies are
// measured against.
type LeastLoaded struct {
	mu   sync.Mutex
	load []int
	next int // rotating scan start so load ties spread over servers
}

// NewLeastLoaded creates a least-loaded balancer over n servers.
func NewLeastLoaded(n int) *LeastLoaded {
	if n < 1 {
		n = 1
	}
	return &LeastLoaded{load: make([]int, n)}
}

// Name implements Balancer.
func (l *LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Balancer.
func (l *LeastLoaded) Pick(key string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := len(l.load)
	best := l.next % n
	for i := 1; i < n; i++ {
		s := (l.next + i) % n
		if l.load[s] < l.load[best] {
			best = s
		}
	}
	l.next = (l.next + 1) % n
	l.load[best]++
	return best
}

// Done implements Balancer.
func (l *LeastLoaded) Done(server int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if server >= 0 && server < len(l.load) && l.load[server] > 0 {
		l.load[server]--
	}
}

// PowerOfTwo samples two distinct servers at random and picks the less
// loaded — within a constant factor of least-loaded using only two load
// probes per request (Mitzenmacher's "power of two choices").
type PowerOfTwo struct {
	mu   sync.Mutex
	rng  *rand.Rand
	load []int
}

// NewPowerOfTwo creates a power-of-two-choices balancer over n servers;
// seed fixes the sampling sequence for reproducible labs.
func NewPowerOfTwo(n int, seed int64) *PowerOfTwo {
	if n < 1 {
		n = 1
	}
	return &PowerOfTwo{rng: rand.New(rand.NewSource(seed)), load: make([]int, n)}
}

// Name implements Balancer.
func (p *PowerOfTwo) Name() string { return "power-of-two" }

// Pick implements Balancer.
func (p *PowerOfTwo) Pick(key string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.load)
	if n == 1 {
		p.load[0]++
		return 0
	}
	a := p.rng.Intn(n)
	b := p.rng.Intn(n - 1)
	if b >= a {
		b++ // second sample drawn from the remaining n-1 servers
	}
	if p.load[b] < p.load[a] {
		a = b
	}
	p.load[a]++
	return a
}

// Done implements Balancer.
func (p *PowerOfTwo) Done(server int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if server >= 0 && server < len(p.load) && p.load[server] > 0 {
		p.load[server]--
	}
}

// Report summarises one load-balancing simulation.
type Report struct {
	// Strategy is the Balancer name.
	Strategy string
	// Max and Min are the most and fewest requests any server received.
	Max, Min int
	// Imbalance is the peak-to-mean ratio Max/(reqs/servers): 1.0 is a
	// perfect split, 2.0 means the hottest server saw twice its share.
	Imbalance float64
}

// SimulateLoad drives reqs requests through b and reports the per-server
// totals. Requests draw their key uniformly from a space of `keys`
// distinct keys and hold their server for a service time of 1-16 ticks
// (one tick per arrival), so load-tracking strategies see a realistic
// in-flight population. The rng seed makes every run reproducible.
func SimulateLoad(b Balancer, servers, reqs, keys int, seed int64) Report {
	if servers < 1 {
		servers = 1
	}
	if keys < 1 {
		keys = 1
	}
	rng := rand.New(rand.NewSource(seed))
	counts := make([]int, servers)
	type inflight struct {
		end    int
		server int
	}
	var active []inflight
	for t := 0; t < reqs; t++ {
		// Retire requests whose service time has elapsed.
		kept := active[:0]
		for _, f := range active {
			if f.end <= t {
				b.Done(f.server)
			} else {
				kept = append(kept, f)
			}
		}
		active = kept
		key := "key-" + strconv.Itoa(rng.Intn(keys))
		dur := 1 + rng.Intn(16)
		s := b.Pick(key)
		if s < 0 || s >= servers {
			s = ((s % servers) + servers) % servers
		}
		counts[s]++
		active = append(active, inflight{end: t + dur, server: s})
	}
	for _, f := range active {
		b.Done(f.server)
	}
	max, min := counts[0], counts[0]
	for _, c := range counts[1:] {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	ideal := float64(reqs) / float64(servers)
	return Report{Strategy: b.Name(), Max: max, Min: min, Imbalance: float64(max) / ideal}
}

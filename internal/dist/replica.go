package dist

import (
	"fmt"
	"sort"
	"sync"
)

// ReplicatedKV is an n-replica in-memory key-value store built to
// contrast two consistency models. In sequential mode every write goes
// to all replicas synchronously before returning, so any replica read
// observes the single global write order. In eventual mode a write
// lands only on the replica it was issued at; replicas diverge until
// Gossip exchanges state and last-writer-wins resolves conflicts.
type ReplicatedKV struct {
	mu         sync.Mutex
	sequential bool
	replicas   []map[string]versioned
	clock      uint64 // logical clock ordering all writes (LWW tiebreak)
}

// versioned is a value stamped with its logical write time and origin
// replica; higher (ts, origin) wins merges.
type versioned struct {
	val    string
	ts     uint64
	origin int
}

func (a versioned) newer(b versioned) bool {
	if a.ts != b.ts {
		return a.ts > b.ts
	}
	return a.origin > b.origin
}

// NewReplicatedKV creates a store with n replicas; sequential selects
// the consistency model.
func NewReplicatedKV(n int, sequential bool) (*ReplicatedKV, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: replica count %d must be at least 1", n)
	}
	r := &ReplicatedKV{sequential: sequential, replicas: make([]map[string]versioned, n)}
	for i := range r.replicas {
		r.replicas[i] = map[string]versioned{}
	}
	return r, nil
}

// Sequential reports the consistency model.
func (r *ReplicatedKV) Sequential() bool { return r.sequential }

// Replicas reports the replica count.
func (r *ReplicatedKV) Replicas() int { return len(r.replicas) }

func (r *ReplicatedKV) checkReplica(replica int) error {
	if replica < 0 || replica >= len(r.replicas) {
		return fmt.Errorf("dist: replica %d out of range [0,%d)", replica, len(r.replicas))
	}
	return nil
}

// Write stores key=val at the given replica. Sequential mode applies
// the write to every replica before returning (synchronous write-all);
// eventual mode applies it locally only.
func (r *ReplicatedKV) Write(replica int, key, val string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkReplica(replica); err != nil {
		return err
	}
	r.clock++
	v := versioned{val: val, ts: r.clock, origin: replica}
	if r.sequential {
		for i := range r.replicas {
			r.replicas[i][key] = v
		}
		return nil
	}
	r.replicas[replica][key] = v
	return nil
}

// Read returns the value of key as seen by the given replica; ok is
// false if that replica has no value yet.
func (r *ReplicatedKV) Read(replica int, key string) (val string, ok bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.checkReplica(replica); err != nil {
		return "", false, err
	}
	v, ok := r.replicas[replica][key]
	return v.val, ok, nil
}

// Divergent returns the sorted set of keys on which the replicas
// currently disagree (different values, or present on some replicas and
// missing on others). Sequential stores always return nil.
func (r *ReplicatedKV) Divergent() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	union := map[string]struct{}{}
	for _, rep := range r.replicas {
		for k := range rep {
			union[k] = struct{}{}
		}
	}
	var out []string
	for k := range union {
		first, haveFirst := r.replicas[0][k]
		agree := haveFirst
		for _, rep := range r.replicas[1:] {
			v, ok := rep[k]
			if !ok || v != first {
				agree = false
				break
			}
		}
		if !agree {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Gossip performs a full anti-entropy exchange: every replica learns
// every other replica's entries, conflicts resolved last-writer-wins by
// logical timestamp. Afterwards Divergent returns nil.
func (r *ReplicatedKV) Gossip() {
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := map[string]versioned{}
	for _, rep := range r.replicas {
		for k, v := range rep {
			if cur, ok := merged[k]; !ok || v.newer(cur) {
				merged[k] = v
			}
		}
	}
	for i := range r.replicas {
		for k, v := range merged {
			r.replicas[i][k] = v
		}
	}
}

package dist

import (
	"fmt"
	"sort"

	"pdcedu/internal/csnet"
	"pdcedu/internal/trace"
)

// collectSpans fans one OpTraces query out to every reachable backend
// as a single pipelined burst — the same round discipline as
// ClusterStats — and returns the union of their spans plus whatever
// the coordinator's own recorder holds for the query. Backends that
// are marked down or fail the round trip are skipped; the error
// reports the first failure alongside what the rest answered.
func (c *Cluster) collectSpans(mode byte, id uint64, local []trace.Span) ([]trace.Span, error) {
	type sent struct {
		call    *csnet.Call
		backend int
	}
	c.mu.Lock()
	down := make([]bool, len(c.down))
	copy(down, c.down)
	c.mu.Unlock()
	calls := make([]sent, 0, len(c.pools))
	var firstErr error
	noteErr := func(b int, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("dist: cluster traces on backend %d: %w", b, err)
		}
	}
	for b, p := range c.pools {
		if down[b] {
			continue
		}
		cl, err := p.get()
		if err != nil {
			noteErr(b, err)
			continue
		}
		calls = append(calls, sent{cl.Send(csnet.Request{Op: csnet.OpTraces, Value: csnet.EncodeTraceQuery(mode, id)}), b})
	}
	spans := append([]trace.Span(nil), local...)
	for _, s := range calls {
		resp, err := s.call.Response()
		if err != nil {
			noteErr(s.backend, err)
			continue
		}
		if resp.Status != csnet.StatusOK {
			noteErr(s.backend, fmt.Errorf("status %s: %s", resp.Status, resp.Value))
			continue
		}
		got, err := trace.DecodeSpans(resp.Value)
		if err != nil {
			noteErr(s.backend, err)
			continue
		}
		spans = append(spans, got...)
	}
	return spans, firstErr
}

// ClusterTrace assembles the cross-node span tree of one trace: the
// coordinator's own spans (the op root and its RPC hops) joined with
// every reachable backend's spans for the same trace ID, linked
// parent→child into a single tree whose waterfall shows the whole
// request path — coordinator fan-out, each backend's queue wait and
// handling, engine work, and any repair it triggered. Returns nil with
// no error when no node holds spans for the ID (expired from the
// rings, or never sampled). A non-nil error reports the first backend
// failure; the tree assembled from the rest is still returned.
func (c *Cluster) ClusterTrace(traceID uint64) (*trace.Tree, error) {
	spans, err := c.collectSpans(csnet.TraceQueryID, traceID, c.tracer.TraceSpans(traceID))
	trees := trace.Assemble(spans)
	for _, t := range trees {
		if t.TraceID == traceID {
			return t, err
		}
	}
	return nil, err
}

// SlowTraces assembles the tail-promoted (slow) traces visible across
// the cluster, slowest first, at most n (n <= 0 means all). Each
// node's recorder pins the whole trace of any span that crossed its
// slow threshold, so the result is the cluster's self-selected worst
// requests with their full cross-node trees.
func (c *Cluster) SlowTraces(n int) ([]*trace.Tree, error) {
	slow, err := c.collectSpans(csnet.TraceQuerySlow, 0, c.tracer.SlowSpans())
	// A pinned trace's spans may be split across nodes: a backend
	// promotes only its own spans, so fetch every participating node's
	// view of each slow trace ID to complete the trees.
	ids := make(map[uint64]struct{}, len(slow))
	for _, s := range slow {
		ids[s.TraceID] = struct{}{}
	}
	spans := slow
	for id := range ids {
		more, merr := c.collectSpans(csnet.TraceQueryID, id, c.tracer.TraceSpans(id))
		if err == nil {
			err = merr
		}
		spans = append(spans, more...)
	}
	trees := trace.Assemble(spans)
	sort.Slice(trees, func(i, j int) bool { return trees[i].Duration() > trees[j].Duration() })
	if n > 0 && len(trees) > n {
		trees = trees[:n]
	}
	return trees, err
}

package dist

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/member"
)

// clusterNode is one test cluster member: a csnet server carrying both
// the KV data plane and the SWIM gossip control plane on one port.
type clusterNode struct {
	addr string
	srv  *csnet.Server
	kv   *csnet.KVHandler
	ml   *member.Memberlist
}

// startClusterNode boots a node on addr ("127.0.0.1:0" for a fresh
// port) and joins it to seeds. The gossip handler is installed through
// an atomic pointer because the memberlist needs the bound address as
// its ID, which is only known after the listener starts.
func startClusterNode(t *testing.T, addr string, seeds ...string) *clusterNode {
	t.Helper()
	n := &clusterNode{kv: csnet.NewKVHandler()}
	var gossip atomic.Pointer[csnet.Handler]
	h := csnet.HandlerFunc(func(req csnet.Request) csnet.Response {
		if hp := gossip.Load(); hp != nil {
			return (*hp).Serve(req)
		}
		return n.kv.Serve(req)
	})
	n.srv = csnet.NewServer(h, 64)
	bound, err := n.srv.Start(addr)
	if err != nil {
		t.Fatalf("start node %s: %v", addr, err)
	}
	n.addr = bound
	n.ml, err = member.New(member.Config{
		ID:               bound,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     10 * time.Millisecond,
		SuspicionTimeout: 120 * time.Millisecond,
		ConnTimeout:      time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := n.ml.Handler(n.kv)
	gossip.Store(&wrapped)
	if err := n.ml.Join(seeds...); err != nil {
		t.Fatalf("join %s: %v", bound, err)
	}
	n.ml.Start()
	return n
}

// kill simulates a crash: the probe loop stops and the port goes dark.
func (n *clusterNode) kill() {
	n.ml.Stop()
	n.srv.Shutdown()
}

// has reports whether the node's local store holds key (asked of the
// handler directly, bypassing the network).
func (n *clusterNode) has(key string) bool {
	return n.kv.Serve(csnet.Request{Op: csnet.OpGet, Key: key}).Status == csnet.StatusOK
}

func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestMemberChurnEndToEnd is the acceptance churn test: five nodes,
// 1000 keys written while one node is killed mid-load, every key still
// readable, the dead node evicted from the ring within the suspicion
// window, and — after a restart with an empty store — hint replay plus
// the rebalancer converging every replica.
func TestMemberChurnEndToEnd(t *testing.T) {
	const (
		nNodes = 5
		nKeys  = 1000
		rf     = 3
		victim = 3
	)
	nodes := make([]*clusterNode, nNodes)
	nodes[0] = startClusterNode(t, "127.0.0.1:0")
	seed := nodes[0].addr
	addrs := make([]string, nNodes)
	addrs[0] = seed
	for i := 1; i < nNodes; i++ {
		nodes[i] = startClusterNode(t, "127.0.0.1:0", seed)
		addrs[i] = nodes[i].addr
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	for _, n := range nodes {
		n := n
		waitUntil(t, 10*time.Second, "membership convergence", func() bool {
			return n.ml.NumAlive() == nNodes
		})
	}

	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: rf, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stopWatch := c.Watch(nodes[0].ml)
	defer stopWatch()

	key := func(i int) string { return fmt.Sprintf("churn-key-%d", i) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

	// First half of the load against the healthy cluster.
	for i := 0; i < nKeys/2; i++ {
		if err := c.Set(key(i), val(i)); err != nil {
			t.Fatalf("healthy Set(%d): %v", i, err)
		}
	}

	// Kill one node mid-load. With rf=3 and quorum 2, the remaining
	// writes keep succeeding; writes that catch the dead replica before
	// eviction queue hints for it.
	killedAt := time.Now()
	nodes[victim].kill()
	for i := nKeys / 2; i < nKeys; i++ {
		if err := c.Set(key(i), val(i)); err != nil {
			t.Fatalf("Set(%d) with one node down: %v", i, err)
		}
	}

	// The detector must declare the node dead and the watch must evict
	// it from the placement ring within the suspicion window (probe
	// rotation + suspicion timeout; generous bound for -race CI boxes).
	waitUntil(t, 10*time.Second, "victim eviction", func() bool {
		return c.IsDown(victim)
	})
	evictionTook := time.Since(killedAt)
	if evictionTook > 5*time.Second {
		t.Errorf("eviction took %v, want within the suspicion window", evictionTook)
	}
	if live := c.Live(); live != nNodes-1 {
		t.Errorf("Live() = %d after eviction, want %d", live, nNodes-1)
	}
	hinted := c.Hints(victim)
	if hinted == 0 {
		t.Error("no hints queued for the dead node (expected writes in the detection window)")
	}

	// Every key must still be readable through the degraded cluster.
	for i := 0; i < nKeys; i++ {
		v, ok, err := c.Get(key(i))
		if err != nil || !ok || string(v) != string(val(i)) {
			t.Fatalf("Get(%d) with one node down = %q %v %v", i, v, ok, err)
		}
	}

	// Restart the victim with an EMPTY store (a real crash lost its
	// data). Rejoining makes it refute the dead claim; the watch then
	// replays hints and readmits it to the ring.
	nodes[victim] = startClusterNode(t, nodes[victim].addr, seed)
	waitUntil(t, 10*time.Second, "victim readmission", func() bool {
		return !c.IsDown(victim)
	})
	if c.Hints(victim) != 0 {
		t.Errorf("%d hints still queued after replay", c.Hints(victim))
	}
	if live := c.Live(); live != nNodes {
		t.Errorf("Live() = %d after readmission, want %d", live, nNodes)
	}

	// Converge deterministically (the background rebalance also runs;
	// Rebalance passes are serialized and version-aware merge is
	// idempotent), then
	// check full replication: every key present on every member of its
	// replica set (replicaSet reflects the healed, fully restored ring).
	if _, err := c.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	for i := 0; i < nKeys; i++ {
		for _, b := range c.replicaSet(key(i)) {
			if !nodes[b].has(key(i)) {
				t.Fatalf("key %d missing on replica %d after converge", i, b)
			}
		}
	}
	// And the client sees every key.
	got, err := c.MGet([]string{key(0), key(nKeys / 2), key(nKeys - 1)})
	if err != nil || len(got) != 3 {
		t.Fatalf("MGet after converge = %d keys, err %v", len(got), err)
	}
}

// TestMemberPartialWriteError pins the typed partial-write error: a
// write that cannot reach quorum reports exactly which replicas acked,
// which were hinted, and why the rest failed.
func TestMemberPartialWriteError(t *testing.T) {
	srvA := csnet.NewServer(csnet.NewKVHandler(), 16)
	addrA, err := srvA.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srvA.Shutdown()
	srvB := csnet.NewServer(csnet.NewKVHandler(), 16)
	addrB, err := srvB.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewCluster(ClusterConfig{
		Addrs:       []string{addrA, addrB},
		Replication: 2,
		WriteQuorum: 2, // strict write-all: one dead replica fails the write
		Timeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatalf("healthy Set: %v", err)
	}

	srvB.Shutdown() // dead but not yet evicted: still in the ring

	err = c.Set("k", []byte("v2"))
	var pw *PartialWriteError
	if !errors.As(err, &pw) {
		t.Fatalf("Set with dead replica = %v, want *PartialWriteError", err)
	}
	if pw.Op != "set" || pw.Key != "k" || pw.Quorum != 2 || pw.MissedKeys != 1 {
		t.Errorf("PartialWriteError = %+v, want op=set key=k quorum=2 missed=1", pw)
	}
	if len(pw.Acked) != 1 || len(pw.Hinted) != 1 || len(pw.Causes) != 1 {
		t.Errorf("acked %v hinted %v causes %v, want one of each", pw.Acked, pw.Hinted, pw.Causes)
	}
	if c.Hints(pw.Hinted[0]) == 0 {
		t.Error("hinted backend has no queued hint")
	}

	// MSet aggregates: every key misses quorum, the error counts them.
	keys := []string{"a", "b", "c"}
	vals := [][]byte{[]byte("1"), []byte("2"), []byte("3")}
	err = c.MSet(keys, vals)
	if !errors.As(err, &pw) {
		t.Fatalf("MSet with dead replica = %v, want *PartialWriteError", err)
	}
	if pw.Op != "mset" || pw.MissedKeys != len(keys) {
		t.Errorf("MSet error = %+v, want op=mset missed=%d", pw, len(keys))
	}
	// The acked minority is durable: the surviving replica serves reads.
	if v, ok, err := c.Get("a"); err != nil || !ok || string(v) != "1" {
		t.Errorf("Get(a) after partial MSet = %q %v %v", v, ok, err)
	}
}

// TestMemberHintedHandoff walks the hint lifecycle by hand: a write
// that fails on a down replica queues a hint; MarkUp replays it into
// the replica before the ring readmits it; a failed replay requeues.
func TestMemberHintedHandoff(t *testing.T) {
	kvs := [2]*csnet.KVHandler{csnet.NewKVHandler(), csnet.NewKVHandler()}
	srvs := [2]*csnet.Server{}
	addrs := make([]string, 2)
	for i := range srvs {
		srvs[i] = csnet.NewServer(kvs[i], 16)
		addr, err := srvs[i].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	defer srvs[0].Shutdown()

	c, err := NewCluster(ClusterConfig{
		Addrs:       addrs,
		Replication: 2,
		WriteQuorum: 1, // degraded writes succeed on the survivor
		Timeout:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	srvs[1].Shutdown()
	if err := c.Set("grade", []byte("A")); err != nil {
		t.Fatalf("quorum-1 Set with dead replica: %v", err)
	}
	if got := c.Hints(1); got != 1 {
		t.Fatalf("Hints(1) = %d after failed replica write, want 1", got)
	}
	// A newer write supersedes the queued hint rather than stacking.
	if err := c.Set("grade", []byte("A+")); err != nil {
		t.Fatal(err)
	}
	if got := c.Hints(1); got != 1 {
		t.Fatalf("Hints(1) = %d after supersede, want 1", got)
	}

	if !c.MarkDown(1) {
		t.Fatal("MarkDown(1) reported no transition")
	}
	if c.MarkDown(1) {
		t.Fatal("second MarkDown reported a transition")
	}
	// MarkUp against a still-dead backend: the replay fails and the
	// hint must survive for the next attempt.
	if !c.MarkUp(1) {
		t.Fatal("MarkUp(1) reported no transition")
	}
	if got := c.Hints(1); got != 1 {
		t.Fatalf("Hints(1) = %d after failed replay, want 1 (requeued)", got)
	}

	// Revive backend 1 empty and replay for real.
	c.MarkDown(1)
	kvs[1] = csnet.NewKVHandler()
	srvs[1] = csnet.NewServer(kvs[1], 16)
	if _, err := srvs[1].Start(addrs[1]); err != nil {
		t.Fatal(err)
	}
	defer srvs[1].Shutdown()
	if !c.MarkUp(1) {
		t.Fatal("MarkUp after revival reported no transition")
	}
	if got := c.Hints(1); got != 0 {
		t.Fatalf("Hints(1) = %d after replay, want 0", got)
	}
	resp := kvs[1].Serve(csnet.Request{Op: csnet.OpGet, Key: "grade"})
	if resp.Status != csnet.StatusOK || string(resp.Value) != "A+" {
		t.Fatalf("replayed hint = %s %q, want OK \"A+\" (the superseding write)", resp.Status, resp.Value)
	}
}

// TestMemberRebalance checks the key-streaming pass: evicting a node
// re-replicates its keys onto the stand-in replicas, and readmitting it
// restores full replication on the original geometry.
func TestMemberRebalance(t *testing.T) {
	const nodes, rf, nKeys = 3, 2, 120
	kvs := make([]*csnet.KVHandler, nodes)
	srvs := make([]*csnet.Server, nodes)
	addrs := make([]string, nodes)
	for i := range srvs {
		kvs[i] = csnet.NewKVHandler()
		srvs[i] = csnet.NewServer(kvs[i], 16)
		addr, err := srvs[i].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		defer srvs[i].Shutdown()
	}
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: rf, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key := func(i int) string { return fmt.Sprintf("rb-%d", i) }
	for i := 0; i < nKeys; i++ {
		if err := c.Set(key(i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Evict node 0 (its server stays up — a drain, not a crash) and
	// stream: every key must be fully replicated on the 2-node ring.
	c.MarkDown(0)
	if _, err := c.Rebalance(); err != nil {
		t.Fatalf("rebalance after eviction: %v", err)
	}
	holds := func(b int, k string) bool {
		return kvs[b].Serve(csnet.Request{Op: csnet.OpGet, Key: k}).Status == csnet.StatusOK
	}
	for i := 0; i < nKeys; i++ {
		for _, b := range c.replicaSet(key(i)) {
			if !holds(b, key(i)) {
				t.Fatalf("key %d missing on replica %d after eviction rebalance", i, b)
			}
		}
	}

	// Readmit and stream again: the original replica sets are whole.
	c.MarkUp(0)
	copied, err := c.Rebalance()
	if err != nil {
		t.Fatalf("rebalance after readmission: %v", err)
	}
	t.Logf("readmission rebalance filled %d holes", copied)
	for i := 0; i < nKeys; i++ {
		for _, b := range c.replicaSet(key(i)) {
			if !holds(b, key(i)) {
				t.Fatalf("key %d missing on replica %d after readmission rebalance", i, b)
			}
		}
	}
}

// TestMemberStaleHintAcrossOutage pins the versioned replacement for
// the old "second ring" machinery: a hint captured before eviction is
// stale by the time the node rejoins (a newer write landed while it
// was out of the live ring and therefore queued no hint), and the node
// must still converge to the newest value — the stale hint merges and
// is then overwritten by the version-aware rebalancer, or loses the
// merge outright if the rebalancer got there first. Either order
// works, which is the whole point.
func TestMemberStaleHintAcrossOutage(t *testing.T) {
	kvs := [2]*csnet.KVHandler{csnet.NewKVHandler(), csnet.NewKVHandler()}
	srvs := [2]*csnet.Server{}
	addrs := make([]string, 2)
	for i := range srvs {
		srvs[i] = csnet.NewServer(kvs[i], 16)
		addr, err := srvs[i].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
	}
	defer srvs[0].Shutdown()
	c, err := NewCluster(ClusterConfig{
		Addrs: addrs, Replication: 2, WriteQuorum: 1, Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// v1 lands as a hint during the pre-eviction window...
	srvs[1].Shutdown()
	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if got := c.Hints(1); got != 1 {
		t.Fatalf("Hints(1) = %d, want 1", got)
	}
	// ...the node is evicted, and a newer write arrives while it is out
	// of the live ring entirely — no hint for it anymore; the
	// rebalancer owns that convergence now.
	c.MarkDown(1)
	if err := c.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}

	// The node restarts empty; rejoin replays the stale v1 hint, then
	// the rebalance pass streams v2 over it by version.
	kvs[1] = csnet.NewKVHandler()
	srvs[1] = csnet.NewServer(kvs[1], 16)
	if _, err := srvs[1].Start(addrs[1]); err != nil {
		t.Fatal(err)
	}
	defer srvs[1].Shutdown()
	c.MarkUp(1)
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	resp := kvs[1].Serve(csnet.Request{Op: csnet.OpGet, Key: "k"})
	if resp.Status != csnet.StatusOK || string(resp.Value) != "v2" {
		t.Fatalf("converged value = %s %q, want OK \"v2\" (not the stale v1)", resp.Status, resp.Value)
	}
}

// TestMemberDeleteTombstonePropagation pins the resurrection fix in
// its versioned form: a key deleted while a replica is out of the ring
// leaves a tombstone on the live replicas, and the rebalancer streams
// that tombstone to the rejoined replica's stale copy — no delete hint
// required (the evicted node gets none anymore) and no window where a
// dropped hint lets the stale copy re-seed the cluster.
func TestMemberDeleteTombstonePropagation(t *testing.T) {
	kvs := [2]*csnet.KVHandler{csnet.NewKVHandler(), csnet.NewKVHandler()}
	srvs := [2]*csnet.Server{}
	addrs := make([]string, 2)
	for i := range srvs {
		srvs[i] = csnet.NewServer(kvs[i], 16)
		addr, err := srvs[i].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		defer srvs[i].Shutdown()
	}
	c, err := NewCluster(ClusterConfig{
		Addrs: addrs, Replication: 2, WriteQuorum: 1, Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set("gone", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Backend 1 is declared dead (its server stays up: a false positive
	// or partition — the dangerous case, because it keeps a stale copy).
	c.MarkDown(1)
	if ok, err := c.Del("gone"); err != nil || !ok {
		t.Fatalf("Del = %v %v, want true nil", ok, err)
	}

	c.MarkUp(1)
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if resp := kvs[1].Serve(csnet.Request{Op: csnet.OpGet, Key: "gone"}); resp.Status != csnet.StatusNotFound {
		t.Fatalf("stale copy survived rejoin: %s %q", resp.Status, resp.Value)
	}
	if _, ok, err := c.Get("gone"); err != nil || ok {
		t.Fatalf("deleted key resurrected: ok=%v err=%v", ok, err)
	}
	// A second pass finds everything converged: nothing to stream.
	copied, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if copied != 0 {
		t.Errorf("steady-state rebalance streamed %d entries, want 0", copied)
	}
}

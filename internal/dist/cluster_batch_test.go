package dist

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"pdcedu/internal/csnet"
)

// batchKeys builds n distinct key/value pairs with a prefix.
func batchKeys(prefix string, n int) (keys []string, values [][]byte) {
	for i := 0; i < n; i++ {
		keys = append(keys, fmt.Sprintf("%s-%d", prefix, i))
		values = append(values, []byte(fmt.Sprintf("val-%s-%d", prefix, i)))
	}
	return keys, values
}

// TestClusterBatchOps drives MSet/MGet/MDel end to end with
// replication: every batched write must be readable singly and in
// batch, and MDel must count and remove every key from all replicas.
func TestClusterBatchOps(t *testing.T) {
	handlers, addrs := startBackends(t, 3)
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 2, Balancer: NewRoundRobin(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 100
	keys, values := batchKeys("batch", n)
	if err := c.MSet(keys, values); err != nil {
		t.Fatal(err)
	}
	// Replication 2: each key stored twice across the backends.
	total := 0
	for _, h := range handlers {
		total += h.Len()
	}
	if total != 2*n {
		t.Errorf("backends hold %d replica copies, want %d", total, 2*n)
	}
	// Single-key reads see batched writes.
	for i, key := range keys {
		v, ok, err := c.Get(key)
		if err != nil || !ok || !bytes.Equal(v, values[i]) {
			t.Fatalf("Get(%s) after MSet = %q %v %v", key, v, ok, err)
		}
	}
	// Batched reads, including keys that do not exist.
	askKeys := append(append([]string{}, keys...), "never-set-1", "never-set-2")
	got, err := c.MGet(askKeys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("MGet found %d keys, want %d", len(got), n)
	}
	for i, key := range keys {
		if !bytes.Equal(got[key], values[i]) {
			t.Fatalf("MGet[%s] = %q, want %q", key, got[key], values[i])
		}
	}
	// Batched delete reports how many keys existed and clears all
	// replicas.
	deleted, err := c.MDel(askKeys)
	if err != nil {
		t.Fatal(err)
	}
	if deleted != n {
		t.Errorf("MDel deleted %d keys, want %d", deleted, n)
	}
	for _, h := range handlers {
		if h.Len() != 0 {
			t.Errorf("backend still holds %d keys after MDel", h.Len())
		}
	}
	// Deleting again finds nothing.
	if deleted, err := c.MDel(keys); err != nil || deleted != 0 {
		t.Errorf("second MDel = %d %v, want 0 nil", deleted, err)
	}
}

// TestClusterMSetValidation rejects mismatched key/value lengths.
func TestClusterMSetValidation(t *testing.T) {
	_, addrs := startBackends(t, 1)
	c, err := NewCluster(ClusterConfig{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.MSet([]string{"a", "b"}, [][]byte{[]byte("x")}); err == nil {
		t.Error("MSet with mismatched lengths accepted")
	}
}

// TestClusterMGetFallbackRepair damages a key's first-choice replica
// behind the cluster's back: MGet must still find the value on another
// replica and backfill the hole, like single-key Get.
func TestClusterMGetFallbackRepair(t *testing.T) {
	handlers, addrs := startBackends(t, 3)
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("grade", []byte("A")); err != nil {
		t.Fatal(err)
	}
	primary := c.replicaSet("grade")[0]       // balancer-less first choice
	handlers[primary].Engine().Purge("grade") // simulated data loss, not a delete
	got, err := c.MGet([]string{"grade", "missing"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got["grade"]) != "A" {
		t.Fatalf("MGet after damage = %q, want A", got["grade"])
	}
	if _, ok := got["missing"]; ok {
		t.Error("MGet invented a value for an absent key")
	}
	if handlers[primary].Len() != 1 {
		t.Error("MGet fallback did not read-repair the damaged replica")
	}
}

// TestPoolNeverReturnsPoisoned kills a backend under a pooled
// connection, then restarts it on the same port: the pool must notice
// the poisoned client and redial instead of handing the broken
// connection back out.
func TestPoolNeverReturnsPoisoned(t *testing.T) {
	srv := csnet.NewServer(csnet.NewKVHandler(), 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &clientPool{addr: addr, timeout: 500 * time.Millisecond}
	defer p.close()

	cl1, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl1.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	if err := cl1.Ping(); err == nil {
		t.Fatal("ping succeeded against a shut-down backend")
	}
	if !cl1.Broken() {
		t.Fatal("client not poisoned by transport failure")
	}
	// While the backend is down, get must fail (redial refused), never
	// return the poisoned client.
	if cl, err := p.get(); err == nil && cl == cl1 {
		t.Fatal("pool handed back the poisoned client")
	}
	// Restart on the same port; the pool must transparently redial.
	srv2 := csnet.NewServer(csnet.NewKVHandler(), 16)
	if _, err := srv2.Start(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Shutdown()
	cl2, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	if cl2 == cl1 {
		t.Fatal("pool reused the poisoned client after restart")
	}
	if err := cl2.Ping(); err != nil {
		t.Fatalf("redialed client unusable: %v", err)
	}
}

// TestPoolRedialRaceKeepsOneConn hammers a cold pool from many
// goroutines: every caller must end up with a working client, and the
// pool must converge on a single shared connection (racing extra dials
// are closed, not leaked into the pool).
func TestPoolRedialRaceKeepsOneConn(t *testing.T) {
	srv := csnet.NewServer(csnet.NewKVHandler(), 64)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	p := &clientPool{addr: addr, timeout: 2 * time.Second}
	defer p.close()

	const goroutines = 16
	clients := make([]*csnet.Client, goroutines)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := p.get()
			if err != nil {
				errs <- err
				return
			}
			clients[g] = cl
			if err := cl.Ping(); err != nil {
				errs <- fmt.Errorf("goroutine %d got unusable client: %w", g, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// The pool converges on exactly one connection.
	final, err := p.get()
	if err != nil {
		t.Fatal(err)
	}
	for g, cl := range clients {
		if cl != final {
			// A loser of the install race was closed; its caller must
			// have received the winner, never a dead extra.
			t.Fatalf("goroutine %d holds a client that is not the pooled one", g)
		}
	}
	if err := final.Ping(); err != nil {
		t.Fatal(err)
	}
}

// TestClusterConcurrentBatchesNoCrossTalk runs concurrent MSet/MGet
// batches over shared multiplexed connections; every goroutine must
// read back exactly its own values. Run with -race.
func TestClusterConcurrentBatchesNoCrossTalk(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 2, Balancer: NewLeastLoaded(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const goroutines, perBatch = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			keys, values := batchKeys(fmt.Sprintf("g%d", g), perBatch)
			if err := c.MSet(keys, values); err != nil {
				errs <- err
				return
			}
			got, err := c.MGet(keys)
			if err != nil {
				errs <- err
				return
			}
			for i, key := range keys {
				if !bytes.Equal(got[key], values[i]) {
					errs <- fmt.Errorf("cross-talk: goroutine %d key %s = %q, want %q", g, key, got[key], values[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

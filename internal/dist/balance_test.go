package dist

import (
	"fmt"
	"sync"
	"testing"
)

// TestSimulateLoadDeterministic pins the fixed-seed behaviour: two runs
// of the same strategy produce identical reports.
func TestSimulateLoadDeterministic(t *testing.T) {
	mk := map[string]func() Balancer{
		"round-robin":     func() Balancer { return NewRoundRobin(8) },
		"least-loaded":    func() Balancer { return NewLeastLoaded(8) },
		"power-of-two":    func() Balancer { return NewPowerOfTwo(8, 42) },
		"consistent-hash": func() Balancer { return NewConsistentHash(8, 64) },
	}
	for name, f := range mk {
		a := SimulateLoad(f(), 8, 10000, 64, 7)
		b := SimulateLoad(f(), 8, 10000, 64, 7)
		if a != b {
			t.Errorf("%s: same seed gave different reports: %+v vs %+v", name, a, b)
		}
		if a.Strategy != name {
			t.Errorf("Strategy = %q, want %q", a.Strategy, name)
		}
		if a.Imbalance < 1 {
			t.Errorf("%s: imbalance %.3f < 1 (peak below mean is impossible)", name, a.Imbalance)
		}
	}
}

// TestSimulateLoadImbalanceOrdering asserts the pedagogical ordering the
// lab is built around, under one fixed seed: round-robin splits
// perfectly, least-loaded and power-of-two stay near ideal, and
// consistent hashing trades balance for key affinity.
func TestSimulateLoadImbalanceOrdering(t *testing.T) {
	const servers, reqs, keys, seed = 8, 10000, 64, 7
	rr := SimulateLoad(NewRoundRobin(servers), servers, reqs, keys, seed)
	ll := SimulateLoad(NewLeastLoaded(servers), servers, reqs, keys, seed)
	p2 := SimulateLoad(NewPowerOfTwo(servers, 42), servers, reqs, keys, seed)
	ch := SimulateLoad(NewConsistentHash(servers, 64), servers, reqs, keys, seed)

	if rr.Max != rr.Min {
		t.Errorf("round-robin: max %d != min %d for reqs divisible by servers", rr.Max, rr.Min)
	}
	if rr.Imbalance != 1 {
		t.Errorf("round-robin imbalance = %.3f, want exactly 1", rr.Imbalance)
	}
	if ll.Imbalance > 1.05 {
		t.Errorf("least-loaded imbalance = %.3f, want <= 1.05", ll.Imbalance)
	}
	if p2.Imbalance > 1.15 {
		t.Errorf("power-of-two imbalance = %.3f, want <= 1.15", p2.Imbalance)
	}
	if ch.Imbalance <= p2.Imbalance {
		t.Errorf("consistent-hash imbalance %.3f should exceed power-of-two %.3f on a %d-key space",
			ch.Imbalance, p2.Imbalance, keys)
	}
}

// TestLeastLoadedTracksInflight checks Pick/Done accounting directly.
func TestLeastLoadedTracksInflight(t *testing.T) {
	l := NewLeastLoaded(3)
	seen := map[int]int{}
	var picks []int
	for i := 0; i < 3; i++ {
		s := l.Pick("k")
		seen[s]++
		picks = append(picks, s)
	}
	if len(seen) != 3 {
		t.Fatalf("3 picks with no completions should cover all 3 servers, got %v", seen)
	}
	// Complete one; the next pick must go to the freed server.
	l.Done(picks[1])
	if s := l.Pick("k"); s != picks[1] {
		t.Errorf("after Done(%d), Pick = %d, want the freed server", picks[1], s)
	}
	// Done on a bogus index must not panic or corrupt state.
	l.Done(-1)
	l.Done(99)
}

func TestPowerOfTwoSeedReproducible(t *testing.T) {
	a, b := NewPowerOfTwo(8, 1), NewPowerOfTwo(8, 1)
	for i := 0; i < 200; i++ {
		if x, y := a.Pick("k"), b.Pick("k"); x != y {
			t.Fatalf("pick %d diverged with equal seeds: %d vs %d", i, x, y)
		}
	}
	a.Done(-5) // out-of-range completion is ignored
}

func TestRoundRobinConcurrent(t *testing.T) {
	rr := NewRoundRobin(4)
	var mu sync.Mutex
	counts := make([]int, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := rr.Pick(fmt.Sprintf("k%d", i))
				mu.Lock()
				counts[s]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for s, c := range counts {
		if c != 200 {
			t.Errorf("server %d got %d of 800 requests, want exactly 200", s, c)
		}
	}
}

package dist

import (
	"fmt"
	"sync"
	"testing"
)

func TestConsistentHashPickStable(t *testing.T) {
	ring := NewConsistentHash(5, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := ring.Pick(key)
		if first < 0 || first >= 5 {
			t.Fatalf("Pick(%q) = %d, out of range", key, first)
		}
		for j := 0; j < 3; j++ {
			if got := ring.Pick(key); got != first {
				t.Fatalf("Pick(%q) unstable: %d then %d", key, first, got)
			}
		}
	}
}

func TestConsistentHashDistribution(t *testing.T) {
	const n, keys = 8, 40000
	ring := NewConsistentHash(n, 128)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[ring.Pick(fmt.Sprintf("user:%d:%d", i%7, i))]++
	}
	ideal := keys / n
	for node, c := range counts {
		if c < ideal/2 || c > 2*ideal {
			t.Errorf("node %d owns %d keys, want within [%d,%d] of ideal %d",
				node, c, ideal/2, 2*ideal, ideal)
		}
	}
}

// TestConsistentHashRebalanceBound checks the defining property: adding
// one node to an n-node ring moves at most ~K/n of K keys (expected
// K/(n+1)), and every moved key lands on the new node.
func TestConsistentHashRebalanceBound(t *testing.T) {
	const n, keys = 4, 10000
	ring := NewConsistentHash(n, 128)
	before := make([]int, keys)
	for i := range before {
		before[i] = ring.Pick(fmt.Sprintf("key-%d", i))
	}
	added := ring.AddNode()
	if added != n {
		t.Fatalf("AddNode returned %d, want %d", added, n)
	}
	if ring.Nodes() != n+1 {
		t.Fatalf("Nodes() = %d, want %d", ring.Nodes(), n+1)
	}
	moved := 0
	for i := range before {
		after := ring.Pick(fmt.Sprintf("key-%d", i))
		if after != before[i] {
			moved++
			if after != added {
				t.Fatalf("key-%d moved from node %d to old node %d, not the new node", i, before[i], after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node")
	}
	if bound := keys / n; moved > bound {
		t.Errorf("%d of %d keys moved, want <= K/n = %d", moved, keys, bound)
	}
}

func TestConsistentHashConcurrentPick(t *testing.T) {
	ring := NewConsistentHash(4, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if s := ring.Pick(fmt.Sprintf("g%d-k%d", g, i)); s < 0 || s >= 4 {
					t.Errorf("Pick out of range: %d", s)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestConsistentHashDefaults(t *testing.T) {
	ring := NewConsistentHash(0, 0)
	if ring.Nodes() != 1 {
		t.Errorf("Nodes() = %d, want clamp to 1", ring.Nodes())
	}
	if got := ring.Pick("anything"); got != 0 {
		t.Errorf("single-node ring Pick = %d, want 0", got)
	}
	if ring.Name() != "consistent-hash" {
		t.Errorf("Name() = %q", ring.Name())
	}
}

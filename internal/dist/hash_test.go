package dist

import (
	"fmt"
	"sync"
	"testing"
)

func TestConsistentHashPickStable(t *testing.T) {
	ring := NewConsistentHash(5, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key-%d", i)
		first := ring.Pick(key)
		if first < 0 || first >= 5 {
			t.Fatalf("Pick(%q) = %d, out of range", key, first)
		}
		for j := 0; j < 3; j++ {
			if got := ring.Pick(key); got != first {
				t.Fatalf("Pick(%q) unstable: %d then %d", key, first, got)
			}
		}
	}
}

func TestConsistentHashDistribution(t *testing.T) {
	const n, keys = 8, 40000
	ring := NewConsistentHash(n, 128)
	counts := make([]int, n)
	for i := 0; i < keys; i++ {
		counts[ring.Pick(fmt.Sprintf("user:%d:%d", i%7, i))]++
	}
	ideal := keys / n
	for node, c := range counts {
		if c < ideal/2 || c > 2*ideal {
			t.Errorf("node %d owns %d keys, want within [%d,%d] of ideal %d",
				node, c, ideal/2, 2*ideal, ideal)
		}
	}
}

// TestConsistentHashRebalanceBound checks the defining property: adding
// one node to an n-node ring moves at most ~K/n of K keys (expected
// K/(n+1)), and every moved key lands on the new node.
func TestConsistentHashRebalanceBound(t *testing.T) {
	const n, keys = 4, 10000
	ring := NewConsistentHash(n, 128)
	before := make([]int, keys)
	for i := range before {
		before[i] = ring.Pick(fmt.Sprintf("key-%d", i))
	}
	added := ring.AddNode()
	if added != n {
		t.Fatalf("AddNode returned %d, want %d", added, n)
	}
	if ring.Nodes() != n+1 {
		t.Fatalf("Nodes() = %d, want %d", ring.Nodes(), n+1)
	}
	moved := 0
	for i := range before {
		after := ring.Pick(fmt.Sprintf("key-%d", i))
		if after != before[i] {
			moved++
			if after != added {
				t.Fatalf("key-%d moved from node %d to old node %d, not the new node", i, before[i], after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new node")
	}
	if bound := keys / n; moved > bound {
		t.Errorf("%d of %d keys moved, want <= K/n = %d", moved, keys, bound)
	}
}

// TestConsistentHashRemoveNodeBound checks the eviction property:
// removing one node from an n-node ring moves at most ~K/n of K keys
// (expected K/n, bounded loosely at 2K/n to absorb vnode variance), and
// the only keys that move are the ones the removed node owned.
func TestConsistentHashRemoveNodeBound(t *testing.T) {
	const n, keys = 5, 10000
	ring := NewConsistentHash(n, 128)
	before := make([]int, keys)
	for i := range before {
		before[i] = ring.Pick(fmt.Sprintf("key-%d", i))
	}
	const victim = 2
	if !ring.RemoveNode(victim) {
		t.Fatal("RemoveNode(2) reported absent")
	}
	if ring.RemoveNode(victim) {
		t.Fatal("double RemoveNode reported present")
	}
	if ring.Nodes() != n-1 {
		t.Fatalf("Nodes() = %d after removal, want %d", ring.Nodes(), n-1)
	}
	moved := 0
	for i := range before {
		after := ring.Pick(fmt.Sprintf("key-%d", i))
		if after == victim {
			t.Fatalf("key-%d still maps to the removed node", i)
		}
		if after != before[i] {
			moved++
			if before[i] != victim {
				t.Fatalf("key-%d moved from surviving node %d to %d", i, before[i], after)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved off the removed node")
	}
	if bound := 2 * keys / n; moved > bound {
		t.Errorf("%d of %d keys moved, want <= 2K/n = %d", moved, keys, bound)
	}
}

// TestConsistentHashRestoreNode checks that readmitting an evicted node
// reproduces exactly the pre-removal placement.
func TestConsistentHashRestoreNode(t *testing.T) {
	const n, keys = 4, 5000
	ring := NewConsistentHash(n, 64)
	before := make([]int, keys)
	for i := range before {
		before[i] = ring.Pick(fmt.Sprintf("key-%d", i))
	}
	if ring.RestoreNode(1) {
		t.Fatal("RestoreNode of a live node reported restored")
	}
	ring.RemoveNode(1)
	if !ring.RestoreNode(1) {
		t.Fatal("RestoreNode of an evicted node reported absent")
	}
	if ring.Nodes() != n {
		t.Fatalf("Nodes() = %d after restore, want %d", ring.Nodes(), n)
	}
	for i := range before {
		if after := ring.Pick(fmt.Sprintf("key-%d", i)); after != before[i] {
			t.Fatalf("key-%d on node %d after restore, was on %d", i, after, before[i])
		}
	}
}

// TestConsistentHashPickN checks the replica-set walk: distinct nodes,
// primary first, survivors stable under removal of another member.
func TestConsistentHashPickN(t *testing.T) {
	const n = 5
	ring := NewConsistentHash(n, 64)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		set := ring.PickN(key, 3)
		if len(set) != 3 {
			t.Fatalf("PickN(%q, 3) = %v, want 3 nodes", key, set)
		}
		if set[0] != ring.Pick(key) {
			t.Fatalf("PickN(%q)[0] = %d, want primary %d", key, set[0], ring.Pick(key))
		}
		seen := map[int]bool{}
		for _, s := range set {
			if s < 0 || s >= n || seen[s] {
				t.Fatalf("PickN(%q, 3) = %v: out of range or duplicate", key, set)
			}
			seen[s] = true
		}
	}
	// Ask for more replicas than nodes: every node once.
	if got := len(ring.PickN("k", 99)); got != n {
		t.Errorf("PickN(k, 99) returned %d nodes, want %d", got, n)
	}
	// Removing one member of a set keeps the survivors, in order.
	key := "stability-key"
	before := ring.PickN(key, 3)
	ring.RemoveNode(before[1])
	after := ring.PickN(key, 3)
	if len(after) != 3 || after[0] != before[0] || after[1] != before[2] {
		t.Errorf("PickN after removing %d: %v -> %v, want survivors %d,%d first",
			before[1], before, after, before[0], before[2])
	}
	for _, s := range after {
		if s == before[1] {
			t.Errorf("removed node %d still in replica set %v", before[1], after)
		}
	}
}

func TestConsistentHashConcurrentPick(t *testing.T) {
	ring := NewConsistentHash(4, 32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if s := ring.Pick(fmt.Sprintf("g%d-k%d", g, i)); s < 0 || s >= 4 {
					t.Errorf("Pick out of range: %d", s)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestConsistentHashDefaults(t *testing.T) {
	ring := NewConsistentHash(0, 0)
	if ring.Nodes() != 1 {
		t.Errorf("Nodes() = %d, want clamp to 1", ring.Nodes())
	}
	if got := ring.Pick("anything"); got != 0 {
		t.Errorf("single-node ring Pick = %d, want 0", got)
	}
	if ring.Name() != "consistent-hash" {
		t.Errorf("Name() = %q", ring.Name())
	}
}

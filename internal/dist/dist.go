// Package dist implements the distributed-computing content of the RIT
// case-study course ("distributed system structures, distributed
// objects, load balancing, replication and consistency"): a consistent
// hash ring with virtual nodes, a family of load-balancing strategies
// with a deterministic simulation harness, a replicated key-value store
// contrasting sequential and eventual consistency, an RPC middleware
// layer over real TCP, and a sharded Cluster that serves one key space
// across several csnet backend servers with configurable replication
// and read-repair.
//
// The package reuses the length-prefixed framing and the binary
// key-value protocol from internal/csnet; everything network-facing
// runs over real loopback TCP so the labs observe genuine socket
// behaviour (partial reads, connection limits, shutdown races).
package dist

package dist

import (
	"fmt"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/store"
)

// startVersionedPair boots two KV backends and a 2-replica cluster
// with quorum 1, returning the handlers (for direct engine
// inspection), their addresses, and the cluster.
func startVersionedPair(t *testing.T) ([2]*csnet.KVHandler, [2]*csnet.Server, []string, *Cluster) {
	t.Helper()
	var kvs [2]*csnet.KVHandler
	var srvs [2]*csnet.Server
	addrs := make([]string, 2)
	for i := range srvs {
		kvs[i] = csnet.NewKVHandler()
		srvs[i] = csnet.NewServer(kvs[i], 16)
		addr, err := srvs[i].Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(srvs[i].Shutdown)
	}
	c, err := NewCluster(ClusterConfig{
		Addrs: addrs, Replication: 2, WriteQuorum: 1, Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return kvs, srvs, addrs, c
}

// TestVersionStaleHintReplayLoses is the acceptance regression for the
// tentpole: a hint captured against an old write and replayed *after*
// a newer write has already reached the backend must lose — with the
// old unversioned OpSet replay this exact sequence overwrote the new
// value with the stale one.
func TestVersionStaleHintReplayLoses(t *testing.T) {
	kvs, srvs, addrs, c := startVersionedPair(t)

	// Backend 1 is briefly unreachable: the write lands on backend 0
	// and queues a stale-to-be hint for backend 1.
	srvs[1].Shutdown()
	if err := c.Set("k", []byte("old")); err != nil {
		t.Fatalf("degraded Set: %v", err)
	}
	if got := c.Hints(1); got != 1 {
		t.Fatalf("Hints(1) = %d, want 1", got)
	}

	// Backend 1 returns (same store — a blip, not a crash) and a newer
	// write reaches every replica while the old hint is still queued.
	srvs[1] = csnet.NewServer(kvs[1], 16)
	if _, err := srvs[1].Start(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvs[1].Shutdown)
	if err := c.Set("k", []byte("new")); err != nil {
		t.Fatalf("healthy Set: %v", err)
	}
	if resp := kvs[1].Serve(csnet.Request{Op: csnet.OpGet, Key: "k"}); string(resp.Value) != "new" {
		t.Fatalf("setup: backend 1 = %q, want new", resp.Value)
	}

	// Force the stale hint to replay now, after the newer write: it
	// must merge as a loser, not overwrite.
	c.MarkDown(1)
	c.MarkUp(1)
	if got := c.Hints(1); got != 0 {
		t.Fatalf("Hints(1) = %d after replay, want 0 (an obsolete hint is delivered-and-dropped)", got)
	}
	resp := kvs[1].Serve(csnet.Request{Op: csnet.OpGet, Key: "k"})
	if resp.Status != csnet.StatusOK || string(resp.Value) != "new" {
		t.Fatalf("backend 1 after stale replay = %s %q, want OK \"new\"", resp.Status, resp.Value)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || string(v) != "new" {
		t.Fatalf("cluster Get after stale replay = %q %v %v, want new", v, ok, err)
	}
}

// TestVersionRebalanceConvergesStaleCopy pins the rebalancer upgrade:
// set-if-absent could fill holes but never fix an occupied slot, so a
// backend holding an older version of a key kept it forever. The
// version-aware rebalancer must stream the newer entry over the stale
// one — and never the other way around.
func TestVersionRebalanceConvergesStaleCopy(t *testing.T) {
	kvs, _, addrs, c := startVersionedPair(t)

	cl0, err := csnet.Dial(addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl0.Close()
	cl1, err := csnet.Dial(addrs[1], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()

	// Backend 1 holds a stale version, backend 0 the fresh one.
	if _, _, err := cl1.SetV("k", []byte("stale"), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl0.SetV("k", []byte("fresh"), 200); err != nil {
		t.Fatal(err)
	}

	copied, err := c.Rebalance()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if copied != 1 {
		t.Errorf("rebalance streamed %d entries, want 1 (the stale copy)", copied)
	}
	for b, kv := range kvs {
		e, ok := kv.Engine().Get("k")
		if !ok || string(e.Value) != "fresh" || e.Version != 200 {
			t.Fatalf("backend %d after rebalance = %+v %v, want fresh@200", b, e, ok)
		}
	}
	// Converged: a steady-state pass streams nothing.
	if copied, err = c.Rebalance(); err != nil || copied != 0 {
		t.Fatalf("steady-state rebalance = %d %v, want 0 nil", copied, err)
	}
}

// TestVersionRebalanceTombstoneTie pins the Entry.Wins tie-break in
// the rebalancer: two coordinators stamping the same version in the
// same millisecond — one a write, one a delete — must converge the
// cluster to deleted, exactly as the engines' merge rule dictates,
// instead of the planner treating equal versions as already converged.
func TestVersionRebalanceTombstoneTie(t *testing.T) {
	kvs, _, addrs, c := startVersionedPair(t)
	cl0, err := csnet.Dial(addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl0.Close()
	cl1, err := csnet.Dial(addrs[1], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	if _, _, err := cl0.SetV("k", []byte("val"), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl1.DelV("k", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	e, ok := kvs[0].Engine().Load("k")
	if !ok || !e.Tombstone || e.Version != 100 {
		t.Fatalf("backend 0 after tie rebalance = %+v %v, want tombstone@100", e, ok)
	}
	if _, ok, err := c.Get("k"); err != nil || ok {
		t.Fatalf("Get of tie-deleted key = %v %v, want miss", ok, err)
	}
}

// TestVersionReadRepairHonorsTombstone pins the read path: when a
// replica consulted earlier holds a tombstone newer than the value a
// later replica returns, the key is deleted — Get must report a miss
// and push the tombstone at the stale holder instead of resurrecting
// the value (the old miss-based repair had no way to even notice).
func TestVersionReadRepairHonorsTombstone(t *testing.T) {
	kvs, _, addrs, c := startVersionedPair(t)

	// Find a key whose balancer-less first replica is backend 0, so the
	// Get below sees the tombstone before the stale value.
	key := ""
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if set := c.replicaSet(k); len(set) == 2 && set[0] == 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key with backend 0 as first replica in 256 probes")
	}

	cl0, err := csnet.Dial(addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl0.Close()
	cl1, err := csnet.Dial(addrs[1], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	if _, _, err := cl1.SetV(key, []byte("zombie"), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl0.DelV(key, 200); err != nil {
		t.Fatal(err)
	}

	if v, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("Get of deleted key = %q %v %v, want miss", v, ok, err)
	}
	// The stale holder received the tombstone.
	e, ok := kvs[1].Engine().Load(key)
	if !ok || !e.Tombstone || e.Version != 200 {
		t.Fatalf("backend 1 after repair = %+v %v, want tombstone@200", e, ok)
	}
}

// TestVersionClusterWritesAgreeAcrossReplicas pins coordinator
// stamping: one Set lands with the same version on every replica, so
// steady-state rebalance listings agree and stream nothing.
func TestVersionClusterWritesAgreeAcrossReplicas(t *testing.T) {
	kvs, _, _, c := startVersionedPair(t)
	for i := 0; i < 50; i++ {
		if err := c.Set(fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k-%d", i)
		var vers [2]store.Entry
		for b, kv := range kvs {
			e, ok := kv.Engine().Load(k)
			if !ok {
				t.Fatalf("backend %d missing %q", b, k)
			}
			vers[b] = e
		}
		if vers[0].Version != vers[1].Version {
			t.Fatalf("replicas disagree on %q: %d vs %d", k, vers[0].Version, vers[1].Version)
		}
	}
	if copied, err := c.Rebalance(); err != nil || copied != 0 {
		t.Fatalf("steady-state rebalance = %d %v, want 0 nil", copied, err)
	}
}

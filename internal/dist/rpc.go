package dist

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"pdcedu/internal/csnet"
)

// Marshal encodes an RPC argument or result using the wire encoding
// (JSON). Handlers use it to build their reply payloads.
func Marshal(v interface{}) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("dist: marshal: %w", err)
	}
	return b, nil
}

// Unmarshal decodes an RPC payload produced by Marshal.
func Unmarshal(b []byte, v interface{}) error {
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("dist: unmarshal: %w", err)
	}
	return nil
}

// RPCHandler processes one call: it receives the marshalled arguments
// and returns the marshalled result. Handlers must be safe for
// concurrent use.
type RPCHandler func(args []byte) ([]byte, error)

// rpcRequest and rpcResponse are the wire envelopes, carried in one
// csnet length-prefixed frame each.
type rpcRequest struct {
	Method string          `json:"method"`
	Args   json.RawMessage `json:"args,omitempty"`
}

type rpcResponse struct {
	Err    string          `json:"err,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// RemoteError is an error produced by the remote handler or dispatch
// (as opposed to a transport failure).
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("dist: rpc %s: %s", e.Method, e.Msg)
}

// RPCServer is a concurrent TCP RPC server: one length-prefixed frame
// per request and per response. It plugs the JSON call envelope into
// csnet's frame server, reusing its connection machinery (accept loop,
// connection cap, graceful shutdown).
type RPCServer struct {
	mu      sync.Mutex
	methods map[string]RPCHandler
	srv     *csnet.Server
}

// NewRPCServer creates a server with no registered methods.
func NewRPCServer() *RPCServer {
	s := &RPCServer{methods: map[string]RPCHandler{}}
	s.srv = csnet.NewFrameServer(s, 0)
	return s
}

// Register binds a method name to a handler; re-registering a name
// replaces the previous handler.
func (s *RPCServer) Register(method string, h RPCHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.methods[method] = h
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and
// begins serving. It returns the bound address.
func (s *RPCServer) Start(addr string) (string, error) {
	bound, err := s.srv.Start(addr)
	if err != nil {
		return "", fmt.Errorf("dist: rpc: %w", err)
	}
	return bound, nil
}

// ServeFrame implements csnet.FrameHandler: decode the call envelope,
// dispatch, encode the reply envelope.
func (s *RPCServer) ServeFrame(body []byte, _ csnet.FrameMeta) []byte {
	var resp rpcResponse
	var req rpcRequest
	if err := json.Unmarshal(body, &req); err != nil {
		resp.Err = fmt.Sprintf("malformed request: %v", err)
	} else {
		s.mu.Lock()
		h, ok := s.methods[req.Method]
		s.mu.Unlock()
		if !ok {
			resp.Err = fmt.Sprintf("unknown method %q", req.Method)
		} else if result, err := h(req.Args); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Result = result
		}
	}
	out, err := json.Marshal(resp)
	if err != nil {
		out, _ = json.Marshal(rpcResponse{Err: fmt.Sprintf("encode response: %v", err)})
	}
	return out
}

// Shutdown stops accepting, closes every connection and waits for the
// handler goroutines to finish.
func (s *RPCServer) Shutdown() { s.srv.Shutdown() }

// RPCClient is a connection to an RPCServer. It is safe for concurrent
// use: calls share one pipelined, multiplexed connection, so N callers
// have N requests in flight instead of serializing round trips.
type RPCClient struct {
	c *csnet.Client
}

// DialRPC connects to an RPCServer at addr.
func DialRPC(addr string, timeout time.Duration) (*RPCClient, error) {
	cl, err := csnet.Dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("dist: rpc: %w", err)
	}
	return &RPCClient{c: cl}, nil
}

// RPCCall is an in-flight asynchronous call issued by Go.
type RPCCall struct {
	method string
	p      *csnet.Pending
	err    error
}

// Go invokes method with args without waiting for the reply: the
// pipelined counterpart of Call. Fire several, then collect each with
// Done.
func (c *RPCClient) Go(method string, args interface{}) *RPCCall {
	argBytes, err := Marshal(args)
	if err != nil {
		return &RPCCall{method: method, err: err}
	}
	body, err := json.Marshal(rpcRequest{Method: method, Args: argBytes})
	if err != nil {
		return &RPCCall{method: method, err: fmt.Errorf("dist: rpc encode request: %w", err)}
	}
	return &RPCCall{method: method, p: c.c.SendFrame(body)}
}

// Done waits for the reply and, when reply is non-nil, decodes the
// result into it. Handler and dispatch failures come back as
// *RemoteError; transport failures as ordinary errors.
func (rc *RPCCall) Done(reply interface{}) error {
	if rc.err != nil {
		return rc.err
	}
	respBody, err := rc.p.Wait()
	if err != nil {
		return fmt.Errorf("dist: rpc %s: %w", rc.method, err)
	}
	var resp rpcResponse
	if err := json.Unmarshal(respBody, &resp); err != nil {
		return fmt.Errorf("dist: rpc decode response: %w", err)
	}
	if resp.Err != "" {
		return &RemoteError{Method: rc.method, Msg: resp.Err}
	}
	if reply != nil {
		return Unmarshal(resp.Result, reply)
	}
	return nil
}

// Call invokes method with args and, when reply is non-nil, decodes the
// result into it. Handler and dispatch failures come back as
// *RemoteError; transport failures as ordinary errors.
func (c *RPCClient) Call(method string, args, reply interface{}) error {
	return c.Go(method, args).Done(reply)
}

// Close releases the connection.
func (c *RPCClient) Close() error { return c.c.Close() }

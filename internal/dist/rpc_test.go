package dist

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pdcedu/internal/csnet"
)

func startMeanServer(t *testing.T) (*RPCServer, string) {
	t.Helper()
	srv := NewRPCServer()
	srv.Register("stats.mean", func(args []byte) ([]byte, error) {
		var xs []float64
		if err := Unmarshal(args, &xs); err != nil {
			return nil, err
		}
		s := 0.0
		for _, x := range xs {
			s += x
		}
		if len(xs) > 0 {
			s /= float64(len(xs))
		}
		return Marshal(s)
	})
	srv.Register("fail", func(args []byte) ([]byte, error) {
		return nil, errors.New("handler exploded")
	})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, addr
}

func TestRPCRoundTrip(t *testing.T) {
	_, addr := startMeanServer(t)
	cl, err := DialRPC(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var mean float64
	if err := cl.Call("stats.mean", []float64{80, 90, 100}, &mean); err != nil {
		t.Fatal(err)
	}
	if mean != 90 {
		t.Errorf("mean = %g, want 90", mean)
	}
	// nil reply discards the result without error.
	if err := cl.Call("stats.mean", []float64{1, 2}, nil); err != nil {
		t.Errorf("nil-reply call: %v", err)
	}
}

func TestRPCUnknownMethod(t *testing.T) {
	_, addr := startMeanServer(t)
	cl, err := DialRPC(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Call("no.such.method", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("Call error = %v (%T), want *RemoteError", err, err)
	}
	if !strings.Contains(re.Msg, "unknown method") || re.Method != "no.such.method" {
		t.Errorf("RemoteError = %+v, want unknown-method for no.such.method", re)
	}
	// The connection survives a dispatch error.
	var mean float64
	if err := cl.Call("stats.mean", []float64{4, 6}, &mean); err != nil || mean != 5 {
		t.Errorf("call after error: mean=%g err=%v", mean, err)
	}
}

func TestRPCHandlerError(t *testing.T) {
	_, addr := startMeanServer(t)
	cl, err := DialRPC(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.Call("fail", nil, nil)
	var re *RemoteError
	if !errors.As(err, &re) || !strings.Contains(re.Msg, "handler exploded") {
		t.Errorf("Call(fail) = %v, want RemoteError carrying the handler message", err)
	}
}

// TestRPCMalformedPayload speaks raw frames to the server: a frame that
// is not a JSON envelope must produce an error response, not a hang or
// a dropped connection.
func TestRPCMalformedPayload(t *testing.T) {
	_, addr := startMeanServer(t)
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if err := csnet.WriteFrame(conn, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	body, err := csnet.ReadFrame(conn)
	if err != nil {
		t.Fatalf("no response to malformed payload: %v", err)
	}
	if !strings.Contains(string(body), "malformed request") {
		t.Errorf("response = %s, want a malformed-request error", body)
	}
	// Same connection still serves well-formed calls afterwards.
	if err := csnet.WriteFrame(conn, []byte(`{"method":"stats.mean","args":[2,4]}`)); err != nil {
		t.Fatal(err)
	}
	body, err = csnet.ReadFrame(conn)
	if err != nil || !strings.Contains(string(body), "3") {
		t.Errorf("follow-up call = %s, %v; want result 3", body, err)
	}
}

func TestRPCConcurrentClients(t *testing.T) {
	_, addr := startMeanServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := DialRPC(addr, 2*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			for i := 0; i < 25; i++ {
				x := float64(g*100 + i)
				var mean float64
				if err := cl.Call("stats.mean", []float64{x, x + 2}, &mean); err != nil {
					t.Error(err)
					return
				}
				if mean != x+1 {
					t.Errorf("mean = %g, want %g", mean, x+1)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRPCStartAfterShutdown(t *testing.T) {
	srv := NewRPCServer()
	srv.Shutdown()
	if _, err := srv.Start("127.0.0.1:0"); err == nil {
		t.Error("Start after Shutdown should fail")
	}
}

// TestRPCGoPipelined fires a burst of async calls before collecting
// any reply: each must decode to its own result, and concurrent
// callers must not see each other's replies (the calls share one
// multiplexed connection).
func TestRPCGoPipelined(t *testing.T) {
	_, addr := startMeanServer(t)
	cl, err := DialRPC(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const depth = 32
	calls := make([]*RPCCall, depth)
	for i := range calls {
		calls[i] = cl.Go("stats.mean", []float64{float64(i), float64(i + 2)})
	}
	for i, call := range calls {
		var mean float64
		if err := call.Done(&mean); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if want := float64(i + 1); mean != want {
			t.Fatalf("call %d mean = %g, want %g (cross-talk?)", i, mean, want)
		}
	}

	// A remote failure in the batch surfaces on its own call only.
	good := cl.Go("stats.mean", []float64{4, 6})
	bad := cl.Go("fail", nil)
	var mean float64
	if err := good.Done(&mean); err != nil || mean != 5 {
		t.Fatalf("good call after bad = %g %v", mean, err)
	}
	var remote *RemoteError
	if err := bad.Done(nil); !errors.As(err, &remote) {
		t.Fatalf("bad call error = %v, want RemoteError", err)
	}
}

package dist

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"pdcedu/internal/store"
)

// TestAntiEntropyChaos is the divergence chaos property test: a
// randomized fault injector seeds every divergence class the
// replication stack knows how to produce — holes, stale versions,
// same-version value splits, orphan tombstones, expired-immortal
// copies — directly into the engines of a 5-node cluster, then one
// anti-entropy pass must converge every owner byte-identically to the
// Entry.Wins winner computed by a reference model, and the following
// pass must find a fully converged cluster (digest-only, nothing
// streamed). The seed is logged so a failure replays; CI runs it twice
// under the race detector for two fresh seeds.
func TestAntiEntropyChaos(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	const (
		nNodes = 5
		rf     = 3
		nKeys  = 300
	)
	kvs, c := startKVCluster(t, nNodes, ClusterConfig{Replication: rf, WriteQuorum: rf}, nil)

	// Baseline: every key identical on its rf owners.
	keys := make([]string, nKeys)
	vals := make([][]byte, nKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("chaos-%d", i)
		vals[i] = []byte(fmt.Sprintf("v-%d-%d", i, rng.Intn(1_000_000)))
	}
	if err := c.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}

	// Fault injection: mutate owner engines behind the cluster's back.
	eng := func(b int) store.Engine { return kvs[b].Engine() }
	for i, k := range keys {
		owners := c.replicaSet(k)
		victim := owners[rng.Intn(len(owners))]
		base, ok := eng(owners[0]).Load(k)
		if !ok {
			t.Fatalf("baseline copy of %q missing on owner %d", k, owners[0])
		}
		switch rng.Intn(6) {
		case 0: // hole: one owner lost the key outright
			eng(victim).Purge(k)
		case 1: // stale version: one owner stuck on an older write
			eng(victim).Purge(k)
			eng(victim).Merge(k, store.Entry{Value: []byte("stale"), Version: base.Version - uint64(1+rng.Intn(500))})
		case 2: // same-version value split (coordinator collision)
			eng(victim).Purge(k)
			eng(victim).Merge(k, store.Entry{Value: []byte(fmt.Sprintf("split-%d", rng.Intn(1_000_000))), Version: base.Version})
		case 3: // orphan tombstone: a delete that reached one owner only
			eng(victim).Merge(k, store.Entry{Version: base.Version + uint64(1+rng.Intn(500)), Tombstone: true})
		case 4: // expired-immortal: one owner expired its mortal copy,
			// another holds the same version without the expiry
			exp := time.Now().Add(-time.Minute).UnixNano()
			ver := base.Version + 1
			for _, o := range owners {
				eng(o).Purge(k)
				eng(o).Merge(k, store.Entry{Value: base.Value, Version: ver})
			}
			eng(victim).Purge(k)
			eng(victim).Merge(k, store.Entry{Value: base.Value, Version: ver, ExpireAt: exp})
			eng(victim).Get(k) // lazy-expire it into a tombstone
		default: // untouched: converged keys must stay untouched
			_ = i
		}
	}

	// Reference model: per key, the Entry.Wins winner over whatever the
	// owners hold right now.
	type want struct {
		e   store.Entry
		any bool
	}
	expected := make(map[string]want, nKeys)
	for _, k := range keys {
		var w want
		for _, o := range c.replicaSet(k) {
			e, ok := eng(o).Load(k)
			if !ok {
				continue
			}
			if !w.any || e.Wins(w.e) {
				w.e, w.any = e, true
			}
		}
		expected[k] = w
	}

	if _, err := c.Rebalance(); err != nil {
		t.Fatalf("anti-entropy pass: %v", err)
	}

	// Byte-identical convergence on every owner.
	for _, k := range keys {
		w := expected[k]
		if !w.any {
			t.Fatalf("model lost %q entirely", k)
		}
		for _, o := range c.replicaSet(k) {
			got, ok := eng(o).Load(k)
			if !ok {
				t.Fatalf("owner %d missing %q after anti-entropy (want %+v)", o, k, w.e)
			}
			if got.Version != w.e.Version || got.Tombstone != w.e.Tombstone ||
				!bytes.Equal(got.Value, w.e.Value) || got.ExpireAt != w.e.ExpireAt {
				t.Fatalf("owner %d of %q = %+v, want %+v", o, k, got, w.e)
			}
		}
	}

	// The next pass sees a converged cluster: digests only, no stream.
	copied, err := c.Rebalance()
	if err != nil || copied != 0 {
		t.Fatalf("post-converge pass = %d %v, want 0 nil", copied, err)
	}
	if st := c.AntiEntropyStats(); st.ListingFrames != 0 || st.KeysListed != 0 {
		t.Fatalf("post-converge pass still listing: %+v", st)
	}
}

package dist

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"

	"pdcedu/internal/store"
)

// readCache is the coordinator's hot-key cache: a bounded, sharded LRU
// of versioned entries, populated by quorum-read wins and write-through
// on quorum-write success, invalidated *by version* on every write path
// the coordinator sees. The assessment workloads this cluster targets
// are read-heavy with extreme key skew — everyone polls the same
// program/outcome records during an accreditation cycle — so the
// common read costs one shard-local map hit instead of a replica
// round-trip.
//
// Coherence is version-ordered, mirroring the replicas' own LWW merge:
// a resident entry can only ever be replaced by one at least as new,
// and anything that makes the coordinator unsure what the newest state
// is (a failed or partial write, a replica answering Exists-with-newer,
// a hint queued or replayed, an anti-entropy stream) *supersedes* the
// key — the slot degrades to an unservable floor at the superseding
// version, which both forces the next read back to the replicas and
// blocks any in-flight older populate from resurrecting a stale value.
// Three node states:
//
//   - value: a live entry, servable (respecting ExpireAt)
//   - tombstone: a known delete, servable as a definitive miss
//   - floor: a version watermark, never servable; a put at a version
//     >= the floor replaces it, anything older is refused
//
// Eviction is plain per-shard LRU. Evicting a floor reopens a tiny
// populate race (an in-flight pre-write read could land after the
// floor protecting against it is evicted), so the staleness bound is
// "until the next write, repair, or supersede of that key" — the same
// bound the replicas themselves give a read during read-repair.
type readCache struct {
	shards []cacheShard
	mask   uint32
}

type cacheShard struct {
	mu  sync.Mutex
	ll  *list.List // front = most recent
	m   map[string]*list.Element
	cap int
}

type cacheNode struct {
	key   string
	e     store.Entry
	floor bool
}

// cacheShards is the fixed shard count: enough to keep a hot-key
// workload from serializing on one mutex, small enough that a modest
// cache still gives each shard real capacity.
const cacheShards = 16

// newReadCache sizes a cache holding capacity entries (rounded up to
// give every shard at least one slot). capacity <= 0 returns nil — a
// nil *readCache is the disabled cache, and every method tolerates it.
func newReadCache(capacity int) *readCache {
	if capacity <= 0 {
		return nil
	}
	per := (capacity + cacheShards - 1) / cacheShards
	c := &readCache{shards: make([]cacheShard, cacheShards), mask: cacheShards - 1}
	for i := range c.shards {
		c.shards[i] = cacheShard{ll: list.New(), m: make(map[string]*list.Element, per), cap: per}
	}
	return c
}

// shardOf picks a key's shard by FNV-1a.
func (c *readCache) shardOf(key string) *cacheShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return &c.shards[h&c.mask]
}

// get returns the cached entry for key. ok means the entry is
// *servable*: a live value or a known tombstone (the caller reports a
// tombstone as a definitive miss without touching the replicas).
// Floors and expired values return ok=false; an expired value is
// dropped so the next quorum read can install the replicas' expiry
// tombstone in its place.
func (c *readCache) get(key string, now int64) (store.Entry, bool) {
	if c == nil {
		return store.Entry{}, false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.m[key]
	if !ok {
		return store.Entry{}, false
	}
	n := el.Value.(*cacheNode)
	if n.floor {
		return store.Entry{}, false
	}
	if !n.e.Tombstone && n.e.ExpireAt != 0 && now >= n.e.ExpireAt {
		delete(s.m, key)
		s.ll.Remove(el)
		return store.Entry{}, false
	}
	s.ll.MoveToFront(el)
	return n.e, true
}

// put installs a quorum-confirmed entry (value or tombstone). The
// version order is absolute: a resident strictly newer than e refuses
// the put, a version tie resolves exactly as the replicas' Entry.Wins
// does (tombstone beats value; a floor — which represents "at least
// this version exists somewhere" — is replaced by the confirmed entry
// that proves what it is).
func (c *readCache) put(key string, e store.Entry) {
	if c == nil {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		n := el.Value.(*cacheNode)
		if n.e.Version > e.Version {
			return
		}
		if n.e.Version == e.Version && !n.floor && n.e.Tombstone && !e.Tombstone {
			return
		}
		n.e, n.floor = e, false
		s.ll.MoveToFront(el)
		return
	}
	s.insert(&cacheNode{key: key, e: e})
}

// supersede invalidates key at ver: whatever the cache holds below ver
// becomes an unservable floor (installed even when the key is absent,
// to block an in-flight older populate). A resident already at or
// above ver is untouched — it is at least as new as the event being
// reported. Returns whether the call actually changed the slot, so
// callers can count real invalidations rather than no-ops.
func (c *readCache) supersede(key string, ver uint64) bool {
	if c == nil {
		return false
	}
	s := c.shardOf(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.m[key]; ok {
		n := el.Value.(*cacheNode)
		if n.e.Version >= ver {
			return false
		}
		n.e, n.floor = store.Entry{Version: ver}, true
		s.ll.MoveToFront(el)
		return true
	}
	s.insert(&cacheNode{key: key, e: store.Entry{Version: ver}, floor: true})
	return true
}

// insert adds a node to the front of the shard, evicting from the back
// past capacity. Caller holds the shard lock.
func (s *cacheShard) insert(n *cacheNode) {
	s.m[n.key] = s.ll.PushFront(n)
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		delete(s.m, back.Value.(*cacheNode).key)
		s.ll.Remove(back)
		distM.cacheEvict.Inc()
	}
}

// Len reports the resident node count (floors included).
func (c *readCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// cacheNow is the expiry clock the cache checks entries against.
func cacheNow() int64 { return time.Now().UnixNano() }

// Session is a read-your-writes token. A caller that threads one
// Session through its GetS/SetS/DelS calls is guaranteed never to be
// served a cached entry older than its own latest observed write: the
// session remembers the highest version it has seen (CAS-max, safe for
// concurrent use), and the coordinator serves from cache only when the
// cached version is at least that new — otherwise the read goes to the
// replicas, which by quorum intersection hold the session's write. A
// nil *Session (the plain Get/Set/Del API) opts out and accepts the
// cache's version-bounded staleness.
type Session struct {
	last atomic.Uint64
}

// Observe folds version v into the session's watermark.
func (s *Session) Observe(v uint64) {
	if s == nil {
		return
	}
	for {
		cur := s.last.Load()
		if v <= cur || s.last.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Last reports the newest version this session has observed.
func (s *Session) Last() uint64 {
	if s == nil {
		return 0
	}
	return s.last.Load()
}

// CacheLen reports how many entries (floors included) the coordinator
// read cache currently holds; 0 when the cache is disabled.
func (c *Cluster) CacheLen() int { return c.cache.Len() }

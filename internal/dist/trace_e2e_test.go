package dist

import (
	"fmt"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/trace"
)

// startTracedBackends launches n csnet KV servers, each with its own
// trace recorder under a distinct node identity — the in-process
// equivalent of n distnode processes with tracing wired up.
func startTracedBackends(t testing.TB, n int) (handlers []*csnet.KVHandler, recs []*trace.Recorder, addrs []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		rec := trace.New(trace.Config{Node: fmt.Sprintf("backend-%d", i)})
		h := csnet.NewKVHandler().WithTracer(rec)
		srv := csnet.NewServer(h, 64)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Shutdown)
		handlers = append(handlers, h)
		recs = append(recs, rec)
		addrs = append(addrs, addr)
	}
	return handlers, recs, addrs
}

// findRoot returns the trace ID of the coordinator's most recent root
// op span matching op.
func findRoot(t *testing.T, rec *trace.Recorder, op string) uint64 {
	t.Helper()
	var id uint64
	var start int64
	for _, s := range rec.Spans() {
		if s.Kind == trace.KindOp && s.Op == op && s.Start >= start {
			id, start = s.TraceID, s.Start
		}
	}
	if id == 0 {
		t.Fatalf("coordinator recorded no %q root span", op)
	}
	return id
}

// TestClusterTraceEndToEnd drives a traced replicated write and a
// quorum read with an induced read-repair through a real multi-node
// cluster, then asserts ClusterTrace assembles each into one
// cross-node tree: spans from at least two distinct nodes, server
// spans correctly parented under the coordinator's RPC hops, and the
// repair surfacing as a child span of the read's trace.
func TestClusterTraceEndToEnd(t *testing.T) {
	handlers, _, addrs := startTracedBackends(t, 3)
	coord := trace.New(trace.Config{Node: "coordinator"})
	coord.SetEnabled(true)
	coord.SetSampleEvery(1) // trace everything: the test drives single ops
	c, err := NewCluster(ClusterConfig{
		Addrs:       addrs,
		Replication: 2,
		Timeout:     5 * time.Second,
		Tracer:      coord,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Traced multi-replica write.
	if err := c.Set("grade", []byte("A")); err != nil {
		t.Fatal(err)
	}
	setID := findRoot(t, coord, "set")
	tree, err := c.ClusterTrace(setID)
	if err != nil {
		t.Fatalf("ClusterTrace(set): %v", err)
	}
	if tree == nil || tree.TraceID != setID {
		t.Fatalf("ClusterTrace(set) = %+v, want tree for %016x", tree, setID)
	}
	if nodes := tree.Nodes(); len(nodes) < 3 { // coordinator + both replicas
		t.Fatalf("set trace touched nodes %v, want coordinator plus 2 backends", nodes)
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Span.Op != "set" {
		t.Fatalf("set trace roots = %+v, want single 'set' op root", tree.Roots)
	}
	// Every backend server span must hang off one of the coordinator's
	// RPC spans — the wire propagation under test.
	spansByID := map[uint64]trace.Span{}
	var walk func(n *trace.Node)
	walk = func(n *trace.Node) {
		spansByID[n.Span.ID] = n.Span
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	for _, r := range tree.Roots {
		walk(r)
	}
	serverSpans := 0
	for _, s := range spansByID {
		if s.Kind != trace.KindServer {
			continue
		}
		serverSpans++
		parent, ok := spansByID[s.Parent]
		if !ok || parent.Kind != trace.KindRPC {
			t.Fatalf("server span %+v not parented under an RPC span (parent %+v)", s, parent)
		}
	}
	if serverSpans < 2 {
		t.Fatalf("set trace has %d server spans, want one per replica (2)", serverSpans)
	}

	// Induce a read-repair: purge the primary's copy behind the
	// cluster's back, then do a traced quorum read.
	primary := c.replicaSet("grade")[0]
	handlers[primary].Engine().Purge("grade")
	got, ok, err := c.Get("grade")
	if err != nil || !ok || string(got) != "A" {
		t.Fatalf("Get after damage = %q %v %v", got, ok, err)
	}
	getID := findRoot(t, coord, "get")
	tree, err = c.ClusterTrace(getID)
	if err != nil {
		t.Fatalf("ClusterTrace(get): %v", err)
	}
	if tree == nil {
		t.Fatalf("no tree for get trace %016x", getID)
	}
	if nodes := tree.Nodes(); len(nodes) < 3 {
		t.Fatalf("get trace touched nodes %v, want coordinator plus 2 backends", nodes)
	}
	repair, found := tree.Find(func(s trace.Span) bool { return s.Kind == trace.KindRepair })
	if !found {
		t.Fatal("get trace has no read-repair span despite the induced miss")
	}
	// The repaired backend's server-side MERGE must be a child of the
	// coordinator's repair span, proving the repair merge carried the
	// trace context over the wire too.
	spansByID = map[uint64]trace.Span{}
	for _, r := range tree.Roots {
		walk(r)
	}
	foundMerge := false
	for _, s := range spansByID {
		if s.Kind == trace.KindServer && s.Op == "MERGE" && s.Parent == repair.ID {
			foundMerge = true
		}
	}
	if !foundMerge {
		t.Fatalf("no server MERGE span parented under repair span %+v", repair)
	}

	// SlowTraces with a zero threshold everywhere: nothing promoted.
	slow, err := c.SlowTraces(10)
	if err != nil {
		t.Fatalf("SlowTraces: %v", err)
	}
	if len(slow) != 0 {
		t.Fatalf("SlowTraces = %d trees with tail promotion disabled, want 0", len(slow))
	}
}

// TestClusterSlowTraces pins the tail-promotion plane: with an
// aggressive slow threshold on the coordinator, ordinary ops pin their
// traces and SlowTraces surfaces them cluster-wide, slowest first.
func TestClusterSlowTraces(t *testing.T) {
	_, _, addrs := startTracedBackends(t, 2)
	coord := trace.New(trace.Config{Node: "coordinator"})
	coord.SetEnabled(true)
	coord.SetSampleEvery(1)
	coord.SetSlowThreshold(time.Nanosecond) // everything is "slow"
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 2, Tracer: coord})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if err := c.Set(fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	trees, err := c.SlowTraces(2)
	if err != nil {
		t.Fatalf("SlowTraces: %v", err)
	}
	if len(trees) != 2 {
		t.Fatalf("SlowTraces(2) = %d trees, want capped at 2", len(trees))
	}
	for i := 1; i < len(trees); i++ {
		if trees[i].Duration() > trees[i-1].Duration() {
			t.Fatalf("SlowTraces not sorted slowest-first: %v then %v", trees[i-1].Duration(), trees[i].Duration())
		}
	}
	// Each pinned trace still assembles into a full cross-node tree.
	if nodes := trees[0].Nodes(); len(nodes) < 3 {
		t.Fatalf("slow trace touched nodes %v, want coordinator plus both replicas", nodes)
	}
}

package dist

import (
	"fmt"
	"sort"
	"sync"
)

// ConsistentHash is a consistent-hash ring with virtual nodes. Keys map
// to the first virtual node clockwise from their hash, so adding a node
// moves only ~K/(n+1) of K keys instead of rehashing everything. It
// also implements Balancer (sticky, key-affine routing).
type ConsistentHash struct {
	mu     sync.RWMutex
	vnodes int
	nodes  int
	ring   []ringEntry // sorted by hash
}

type ringEntry struct {
	hash uint64
	node int
}

// NewConsistentHash creates a ring of n nodes with the given number of
// virtual nodes each (vnodes <= 0 defaults to 64; more virtual nodes
// means a smoother key distribution at the cost of a bigger ring).
func NewConsistentHash(n, vnodes int) *ConsistentHash {
	if n < 1 {
		n = 1
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	c := &ConsistentHash{vnodes: vnodes}
	for i := 0; i < n; i++ {
		c.addLocked(i)
	}
	c.nodes = n
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return c
}

// addLocked appends the virtual nodes for one node without re-sorting.
func (c *ConsistentHash) addLocked(node int) {
	for v := 0; v < c.vnodes; v++ {
		h := fnv64a(fmt.Sprintf("node-%d-vnode-%d", node, v))
		c.ring = append(c.ring, ringEntry{hash: h, node: node})
	}
}

// AddNode extends the ring by one node and returns its index.
func (c *ConsistentHash) AddNode() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	node := c.nodes
	c.addLocked(node)
	c.nodes++
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return node
}

// Nodes reports the current node count.
func (c *ConsistentHash) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.nodes
}

// Pick returns the node owning key: the first virtual node clockwise
// from the key's hash.
func (c *ConsistentHash) Pick(key string) int {
	h := fnv64a(key)
	c.mu.RLock()
	defer c.mu.RUnlock()
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0 // wrap around the ring
	}
	return c.ring[i].node
}

// Name implements Balancer.
func (c *ConsistentHash) Name() string { return "consistent-hash" }

// Done implements Balancer; key-affine routing tracks no load.
func (c *ConsistentHash) Done(server int) {}

// fnv64a is FNV-1a without the hash.Hash64 allocation (Pick is a hot
// path for the Cluster router), followed by a murmur3-style finalizer:
// raw FNV diffuses the sequential keys typical of workloads ("user:17")
// poorly into the high bits that order the ring, which skews placement
// no matter how many virtual nodes are used.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

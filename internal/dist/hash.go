package dist

import (
	"fmt"
	"sort"
	"sync"
)

// ConsistentHash is a consistent-hash ring with virtual nodes. Keys map
// to the first virtual node clockwise from their hash, so adding a node
// moves only ~K/(n+1) of K keys instead of rehashing everything, and
// removing one moves only the ~K/n keys it owned. It also implements
// Balancer (sticky, key-affine routing).
//
// Nodes are small integer indices. RemoveNode and RestoreNode let a
// membership layer evict dead nodes and readmit recovered ones: a
// node's virtual-node positions are a pure function of its index, so a
// restore reproduces exactly the pre-removal placement.
type ConsistentHash struct {
	mu      sync.RWMutex
	vnodes  int
	next    int          // next index AddNode assigns
	removed map[int]bool // evicted node indices
	ring    []ringEntry  // sorted by hash, live nodes only
}

type ringEntry struct {
	hash uint64
	node int
}

// NewConsistentHash creates a ring of n nodes with the given number of
// virtual nodes each (vnodes <= 0 defaults to 64; more virtual nodes
// means a smoother key distribution at the cost of a bigger ring).
func NewConsistentHash(n, vnodes int) *ConsistentHash {
	if n < 1 {
		n = 1
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	c := &ConsistentHash{vnodes: vnodes, removed: map[int]bool{}}
	for i := 0; i < n; i++ {
		c.addLocked(i)
	}
	c.next = n
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return c
}

// addLocked appends the virtual nodes for one node without re-sorting.
func (c *ConsistentHash) addLocked(node int) {
	for v := 0; v < c.vnodes; v++ {
		h := fnv64a(fmt.Sprintf("node-%d-vnode-%d", node, v))
		c.ring = append(c.ring, ringEntry{hash: h, node: node})
	}
}

// AddNode extends the ring by one node and returns its index.
func (c *ConsistentHash) AddNode() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	node := c.next
	c.addLocked(node)
	c.next++
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return node
}

// RemoveNode evicts a node from the ring: only the keys it owned move,
// each to the next live node clockwise (~K/n of K keys in expectation).
// It reports whether the node was present. The index stays reserved so
// RestoreNode can readmit the same node later.
func (c *ConsistentHash) RemoveNode(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if node < 0 || node >= c.next || c.removed[node] {
		return false
	}
	c.removed[node] = true
	kept := c.ring[:0]
	for _, e := range c.ring {
		if e.node != node {
			kept = append(kept, e)
		}
	}
	c.ring = kept
	return true
}

// RestoreNode readmits a previously removed node. Its virtual nodes
// land on exactly the positions they occupied before removal, so the
// keys that moved away at eviction move back, and only those. It
// reports whether the node was in the removed set.
func (c *ConsistentHash) RestoreNode(node int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.removed[node] {
		return false
	}
	delete(c.removed, node)
	c.addLocked(node)
	sort.Slice(c.ring, func(i, j int) bool { return c.ring[i].hash < c.ring[j].hash })
	return true
}

// Nodes reports the current live node count.
func (c *ConsistentHash) Nodes() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.next - len(c.removed)
}

// Pick returns the node owning key: the first virtual node clockwise
// from the key's hash. It returns -1 when every node has been removed.
func (c *ConsistentHash) Pick(key string) int {
	h := fnv64a(key)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.ring) == 0 {
		return -1
	}
	i := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	if i == len(c.ring) {
		i = 0 // wrap around the ring
	}
	return c.ring[i].node
}

// PickN returns the first n distinct nodes clockwise from the key's
// hash — the key's replica set, primary first. Fewer than n nodes are
// returned when the ring holds fewer live nodes. Removing a node from
// the ring deletes it from this sequence without reordering the
// remaining nodes, so the surviving members of a replica set stay in
// the set while dead ones are replaced by their successors.
func (c *ConsistentHash) PickN(key string, n int) []int {
	h := fnv64a(key)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.ring) == 0 || n < 1 {
		return nil
	}
	start := sort.Search(len(c.ring), func(i int) bool { return c.ring[i].hash >= h })
	out := make([]int, 0, n)
	for i := 0; i < len(c.ring) && len(out) < n; i++ {
		node := c.ring[(start+i)%len(c.ring)].node
		seen := false
		for _, o := range out {
			if o == node {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, node)
		}
	}
	return out
}

// Name implements Balancer.
func (c *ConsistentHash) Name() string { return "consistent-hash" }

// Done implements Balancer; key-affine routing tracks no load.
func (c *ConsistentHash) Done(server int) {}

// fnv64a is FNV-1a without the hash.Hash64 allocation (Pick is a hot
// path for the Cluster router), followed by a murmur3-style finalizer:
// raw FNV diffuses the sequential keys typical of workloads ("user:17")
// poorly into the high bits that order the ring, which skews placement
// no matter how many virtual nodes are used.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

package dist

import (
	"fmt"

	"pdcedu/internal/csnet"
	"pdcedu/internal/obs"
	"pdcedu/internal/store"
	"pdcedu/internal/trace"
)

// AntiEntropyStats describes the last Rebalance pass — chiefly how
// much of the keyspace it had to look at. A steady-state pass over a
// converged cluster shows DigestFrames == live backends, everything
// else zero: the roots matched and nothing was listed.
type AntiEntropyStats struct {
	// DigestFrames counts OpTreeV exchanges (one per backend per
	// descent level that still had mismatching nodes).
	DigestFrames int
	// HashesCompared counts tree node hashes fetched across backends.
	HashesCompared int
	// BucketsDiffed counts leaf buckets whose owners disagreed.
	BucketsDiffed int
	// ListingFrames counts OpRangeV exchanges (zero when nothing
	// diverged — the "no per-key listings" guarantee).
	ListingFrames int
	// KeysListed counts entries received in bucket listings.
	KeysListed int
	// ValueFetches counts OpGetV reads issued to resolve divergence.
	ValueFetches int
	// Streamed counts entries merged onto stale or missing owners.
	Streamed int
	// FellBack reports that a tree-geometry mismatch forced the pass
	// down to RebalanceListings.
	FellBack bool
}

// AntiEntropyStats returns the stats of the most recent Rebalance
// pass.
func (c *Cluster) AntiEntropyStats() AntiEntropyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastAE
}

// Rebalance converges replication by Merkle anti-entropy. Every live
// backend maintains a hash tree over its raw entry space (leaf = one
// hash-partitioned key bucket; see store.Digest), and because
// placement is bucket-granular, a bucket's owners hold identical
// content exactly when their leaf hashes agree. The pass:
//
//  1. Descends the trees: compare every backend's root, then the
//     children of each node any pair of backends disagrees on, level
//     by level (one pipelined OpTreeV burst per level), down to the
//     leaves — where the comparison narrows to each bucket's current
//     owners, so a non-owner's leftover copies never trigger repair.
//     A subtree all backends agree on is pruned whole: a converged
//     cluster resolves in one root exchange per backend, and a pass
//     costs O(diff · log buckets) hashes instead of O(keyspace) keys.
//  2. Lists only the divergent buckets (OpRangeV), each entry carrying
//     version, value digest, tombstone, and expiry.
//  3. Resolves each key exactly like the engines' Entry.Wins: highest
//     version, tombstone beats value on a tie, and — the hole listings
//     could not see — same-version different-digest copies are fetched
//     and ordered by bytes, mortal beats immortal on full ties.
//  4. Streams winners to every owner that is behind, divergent, or
//     missing the key: tombstones straight from the listing, values as
//     pipelined OpGetV reads merged with OpMerge — which can never
//     clobber a write that landed after the listing.
//
// It returns how many entries were streamed and applied. Callable
// directly for a deterministic converge in tests and demos. A backend
// whose tree geometry differs from the cluster's cannot be diffed; the
// pass falls back to RebalanceListings (see AntiEntropyStats.FellBack).
//
// Scope: comparison and repair target each bucket's *current owners*.
// A copy stranded on a non-owner is invisible here — possible only
// when every owner of a bucket was down at write time, so the ring's
// next live successors accepted the write and became non-owners again
// at restore. That is why the passes MarkDown/MarkUp schedule are full
// RebalanceListings passes (every backend listed, stranded copies
// rescued; see kickRebalance), while steady-state and manual passes
// use the digest exchange.
func (c *Cluster) Rebalance() (copied int, err error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	st := AntiEntropyStats{}
	start := obs.StartTimer()
	defer func() {
		c.mu.Lock()
		c.lastAE = st
		c.mu.Unlock()
		// Fold the per-pass stats into the registry so the stats plane
		// sees cumulative anti-entropy cost; lastAE stays the per-pass
		// view the accessor and tests read.
		distM.aePasses.Inc()
		if st.FellBack {
			distM.aeFallbacks.Inc()
		}
		distM.aeDigestFrames.Add(uint64(st.DigestFrames))
		distM.aeListingFrames.Add(uint64(st.ListingFrames))
		distM.aeKeysListed.Add(uint64(st.KeysListed))
		distM.aeStreamed.Add(uint64(st.Streamed))
		distM.aePassLatency.ObserveSince(start)
	}()

	ctx, root := c.startAE("rebalance")
	defer func() {
		root.S.Err = err != nil
		root.Finish()
	}()

	n := len(c.pools)
	var firstErr error
	noteErr := func(b int, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("dist: rebalance backend %d: %w", b, err)
		}
	}
	clients := make([]*csnet.Client, n)
	live := make([]int, 0, n)
	for b := 0; b < n; b++ {
		if c.IsDown(b) {
			continue
		}
		cl, cerr := c.pools[b].get()
		if cerr != nil {
			noteErr(b, cerr)
			continue
		}
		clients[b] = cl
		live = append(live, b)
	}
	if len(live) == 0 {
		return 0, firstErr
	}

	divergent, geomOK := c.descendTrees(clients, live, &st, noteErr)
	if !geomOK {
		st.FellBack = true
		copied, err = c.rebalanceListings(ctx)
		if err == nil {
			err = firstErr
		}
		st.Streamed = copied
		return copied, err
	}
	if len(divergent) == 0 {
		return 0, firstErr
	}
	st.BucketsDiffed = len(divergent)

	holders := c.listDivergent(clients, divergent, &st, noteErr)
	copied = c.streamWinners(ctx, clients, holders, &st, noteErr)
	st.Streamed = copied
	return copied, firstErr
}

// descendTrees walks every live backend's Merkle tree in lock-step
// from the root, returning the buckets whose owners disagree. geomOK
// is false when any backend reported a different tree geometry than
// the cluster places by — diffing against it would be meaningless.
func (c *Cluster) descendTrees(clients []*csnet.Client, live []int, st *AntiEntropyStats, noteErr func(int, error)) (divergent []int, geomOK bool) {
	frontier := []uint32{1}
	for len(frontier) > 0 {
		body := csnet.EncodeBucketList(frontier)
		type sent struct {
			call    *csnet.Call
			backend int
		}
		calls := make([]sent, 0, len(live))
		for _, b := range live {
			if clients[b] == nil {
				continue
			}
			calls = append(calls, sent{clients[b].Send(csnet.Request{Op: csnet.OpTreeV, Value: body}), b})
			st.DigestFrames++
		}
		hashes := make(map[int]map[uint32]uint64, len(calls))
		for _, s := range calls {
			resp, rerr := s.call.ResponseV()
			if rerr != nil {
				noteErr(s.backend, rerr)
				clients[s.backend] = nil // conn poisoned; drop from the pass
				continue
			}
			if resp.Status != csnet.StatusOK {
				noteErr(s.backend, fmt.Errorf("treev status %s: %s", resp.Status, resp.Value))
				clients[s.backend] = nil
				continue
			}
			buckets, nodes, derr := csnet.DecodeTree(resp.Value)
			if derr != nil {
				noteErr(s.backend, derr)
				clients[s.backend] = nil
				continue
			}
			if buckets != c.buckets {
				noteErr(s.backend, fmt.Errorf("tree geometry %d buckets, cluster places by %d", buckets, c.buckets))
				return nil, false
			}
			m := make(map[uint32]uint64, len(nodes))
			for _, nd := range nodes {
				m[nd.Node] = nd.Hash
			}
			hashes[s.backend] = m
			st.HashesCompared += len(nodes)
		}
		var next []uint32
		for _, id := range frontier {
			if agreeAll(hashes, id) {
				// Every responding backend holds an identical subtree —
				// owners included — so nothing under this node can need
				// repair. This is the pruning that makes a converged
				// cluster's pass O(backends) frames.
				continue
			}
			if int(id) < c.buckets {
				next = append(next, 2*id, 2*id+1)
				continue
			}
			// Leaf: only the bucket's owners must agree. Non-owners may
			// hold leftover copies from before a ring change; those are
			// harmless extras, not divergence.
			bucket := int(id) - c.buckets
			if !agreeAmong(hashes, id, c.ownersOf(bucket)) {
				divergent = append(divergent, bucket)
			}
		}
		frontier = next
	}
	return divergent, true
}

// agreeAll reports whether every backend that answered holds the same
// hash for node id.
func agreeAll(hashes map[int]map[uint32]uint64, id uint32) bool {
	var first uint64
	seen := false
	for _, m := range hashes {
		h := m[id]
		if !seen {
			first, seen = h, true
		} else if h != first {
			return false
		}
	}
	return true
}

// agreeAmong reports whether the listed backends (those that answered)
// hold the same hash for node id.
func agreeAmong(hashes map[int]map[uint32]uint64, id uint32, backends []int) bool {
	var first uint64
	seen := false
	for _, b := range backends {
		m, ok := hashes[b]
		if !ok {
			continue
		}
		h := m[id]
		if !seen {
			first, seen = h, true
		} else if h != first {
			return false
		}
	}
	return true
}

// holderDigest is one backend's listed copy of a key.
type holderDigest struct {
	backend int
	entry   csnet.KeyDigest
}

// listDivergent fetches the divergent buckets' listings: each bucket
// is requested from every reachable owner, one pipelined OpRangeV per
// backend carrying all the buckets it owns. The result groups listed
// copies per key.
func (c *Cluster) listDivergent(clients []*csnet.Client, buckets []int, st *AntiEntropyStats, noteErr func(int, error)) map[string][]holderDigest {
	perBackend := map[int][]uint32{}
	for _, bkt := range buckets {
		for _, o := range c.ownersOf(bkt) {
			if clients[o] != nil {
				perBackend[o] = append(perBackend[o], uint32(bkt))
			}
		}
	}
	type sent struct {
		call    *csnet.Call
		backend int
	}
	calls := make([]sent, 0, len(perBackend))
	for b, ids := range perBackend {
		calls = append(calls, sent{clients[b].Send(csnet.Request{Op: csnet.OpRangeV, Value: csnet.EncodeBucketList(ids)}), b})
		st.ListingFrames++
	}
	holders := map[string][]holderDigest{}
	for _, s := range calls {
		resp, rerr := s.call.ResponseV()
		if rerr != nil {
			noteErr(s.backend, rerr)
			clients[s.backend] = nil
			continue
		}
		if resp.Status != csnet.StatusOK {
			noteErr(s.backend, fmt.Errorf("rangev status %s: %s", resp.Status, resp.Value))
			continue
		}
		listing, derr := csnet.DecodeRangeV(resp.Value)
		if derr != nil {
			noteErr(s.backend, derr)
			continue
		}
		st.KeysListed += len(listing)
		for _, e := range listing {
			// Observe every imported version (the same invariant as the
			// read/write paths): a coordinator whose wall clock lags must
			// advance past listed state or its next Set could stamp under
			// it and silently lose everywhere.
			c.clock.Observe(e.Version)
			holders[e.Key] = append(holders[e.Key], holderDigest{backend: s.backend, entry: e})
		}
	}
	return holders
}

// winsListed orders two listed copies the way store.Entry.Wins orders
// resident entries, to the extent listings allow: version, then
// tombstone-beats-value, then — where Wins compares value bytes — the
// digest only says *whether* they differ, so equal-version live copies
// with different digests return unordered=false and the caller fetches
// the bytes. Mortal beats immortal on the remaining tie.
func winsListed(e, cur csnet.KeyDigest) (wins, ordered bool) {
	if e.Version != cur.Version {
		return e.Version > cur.Version, true
	}
	if e.Tombstone != cur.Tombstone {
		return e.Tombstone, true
	}
	if !e.Tombstone && e.Digest != cur.Digest {
		return false, false // value order unknowable from digests
	}
	if e.ExpireAt != cur.ExpireAt {
		if e.ExpireAt == 0 {
			return false, true
		}
		return cur.ExpireAt == 0 || e.ExpireAt < cur.ExpireAt, true
	}
	return false, true
}

// streamWinners resolves each divergent key to its Entry.Wins winner
// and merges it onto every owner holding less. Tombstone winners
// stream straight from the listing; value winners are read once
// (pipelined per source backend) and merged at the version actually
// read — which may be newer than the listing's, and merge keeps every
// target at least that new. Same-version different-digest splits fetch
// one copy per digest and let Entry.Wins order the bytes.
func (c *Cluster) streamWinners(ctx trace.Context, clients []*csnet.Client, holders map[string][]holderDigest, st *AntiEntropyStats, noteErr func(int, error)) (copied int) {
	type job struct {
		key     string
		winner  csnet.KeyDigest
		source  int   // backend to read a value winner from
		targets []int // owners to merge onto
	}
	var tombs []job
	reads := map[int][]job{} // value reads grouped by source backend
	var splits []job         // same-version digest splits: read from every distinct holder
	for key, list := range holders {
		// The Wins-maximal listed copy; splits surface as unordered.
		winner := list[0]
		split := false
		for _, h := range list[1:] {
			w, ordered := winsListed(h.entry, winner.entry)
			if !ordered {
				split = true
				continue
			}
			if w {
				winner = h
				split = false
			}
		}
		// Re-scan against the final winner: an earlier copy may tie it.
		if !split {
			for _, h := range list {
				if _, ordered := winsListed(h.entry, winner.entry); !ordered {
					split = true
					break
				}
			}
		}
		var targets []int
		for _, o := range c.ownersOf(store.BucketOf(key, c.buckets)) {
			if clients[o] == nil {
				continue
			}
			var cand *csnet.KeyDigest
			for i := range list {
				if list[i].backend == o {
					cand = &list[i].entry
					break
				}
			}
			switch {
			case cand == nil:
				targets = append(targets, o) // hole
			case split && cand.Version == winner.entry.Version && !cand.Tombstone:
				targets = append(targets, o) // divergent bytes: all holders merge the winner
			case *cand != winner.entry:
				targets = append(targets, o) // behind, or losing a tie-break
			}
		}
		if len(targets) == 0 {
			continue
		}
		j := job{key: key, winner: winner.entry, source: winner.backend, targets: targets}
		switch {
		case split:
			splits = append(splits, j)
		case winner.entry.Tombstone:
			tombs = append(tombs, j)
		default:
			reads[winner.backend] = append(reads[winner.backend], j)
		}
	}

	type mergeCall struct {
		call *csnet.Call
		sp   trace.Active
	}
	var copies []mergeCall
	merge := func(target int, key string, e store.Entry) {
		// A streamed winner is newer state this coordinator may never
		// have read — written through a peer coordinator — so the cache
		// must not keep serving anything older.
		c.cacheSupersede(key, e.Version)
		// Each repair merge is a child span of the pass: a waterfall of a
		// slow pass shows exactly which owners were converged and at what
		// cost per stream.
		sp := c.tracer.StartSpan(ctx, trace.KindAE, "MERGE")
		if sp.Live() {
			sp.S.Peer = c.pools[target].addr
		}
		req := csnet.Request{Op: csnet.OpMerge, Key: key, Value: e.Value, Version: e.Version, ExpireAt: e.ExpireAt, Trace: sp.Context()}
		if e.Tombstone {
			req.Flags |= csnet.FlagTombstone
			req.Value = nil
		}
		copies = append(copies, mergeCall{call: clients[target].Send(req), sp: sp})
	}
	// Tombstones need no source read: the listing carries everything
	// (version and — for expiry tombstones — the expiry for GC aging).
	for _, j := range tombs {
		for _, t := range j.targets {
			merge(t, j.key, store.Entry{Version: j.winner.Version, Tombstone: true, ExpireAt: j.winner.ExpireAt})
		}
	}
	// Plain value winners: one pipelined GetV burst per source backend.
	for src, list := range reads {
		calls := make([]*csnet.Call, len(list))
		for i, j := range list {
			calls[i] = clients[src].Send(csnet.Request{Op: csnet.OpGetV, Key: j.key})
			st.ValueFetches++
		}
		for i, j := range list {
			resp, rerr := calls[i].ResponseV()
			if rerr != nil {
				noteErr(src, rerr) // conn poisoned; the next kick retries
				break
			}
			if resp.Status != csnet.StatusOK {
				continue // deleted or expired since the listing; next pass converges
			}
			c.clock.Observe(resp.Version)
			for _, t := range j.targets {
				merge(t, j.key, store.Entry{Value: resp.Value, Version: resp.Version, ExpireAt: resp.ExpireAt})
			}
		}
	}
	// Digest splits: fetch one copy per distinct digest and let
	// Entry.Wins order the actual bytes — the divergence listings alone
	// could never close.
	for _, j := range splits {
		seen := map[uint64]bool{}
		var fetches []*csnet.Call
		for _, h := range holders[j.key] {
			if h.entry.Version != j.winner.Version || h.entry.Tombstone || seen[h.entry.Digest] || clients[h.backend] == nil {
				continue
			}
			seen[h.entry.Digest] = true
			fetches = append(fetches, clients[h.backend].Send(csnet.Request{Op: csnet.OpGetV, Key: j.key}))
			st.ValueFetches++
		}
		var best store.Entry
		have := false
		for _, call := range fetches {
			resp, rerr := call.ResponseV()
			if rerr != nil || resp.Status != csnet.StatusOK {
				continue
			}
			c.clock.Observe(resp.Version)
			e := store.Entry{Value: resp.Value, Version: resp.Version, ExpireAt: resp.ExpireAt}
			if !have || e.Wins(best) {
				best, have = e, true
			}
		}
		if !have {
			continue // all holders vanished mid-pass; next pass converges
		}
		for _, t := range j.targets {
			merge(t, j.key, best)
		}
	}
	for _, mc := range copies {
		resp, rerr := mc.call.ResponseV()
		if rerr == nil && resp.Status == csnet.StatusOK {
			copied++
		}
		mc.sp.S.Err = rerr != nil
		mc.sp.Finish()
	}
	return copied
}

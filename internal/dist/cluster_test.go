package dist

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"pdcedu/internal/csnet"
)

// startBackends launches n csnet KV servers on loopback ports.
func startBackends(t testing.TB, n int) (handlers []*csnet.KVHandler, addrs []string) {
	t.Helper()
	for i := 0; i < n; i++ {
		h := csnet.NewKVHandler()
		srv := csnet.NewServer(h, 64)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Shutdown)
		handlers = append(handlers, h)
		addrs = append(addrs, addr)
	}
	return handlers, addrs
}

// TestClusterNoLostWrites is the acceptance load: 10k Set/Get pairs from
// 8 concurrent clients over 3 backends with replication, then a full
// readback — every write must be observable.
func TestClusterNoLostWrites(t *testing.T) {
	handlers, addrs := startBackends(t, 3)
	c, err := NewCluster(ClusterConfig{
		Addrs:       addrs,
		Replication: 2,
		Balancer:    NewRoundRobin(3),
		Timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const clients, opsPerClient = 8, 1250
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerClient; i++ {
				key := fmt.Sprintf("client-%d-op-%d", g, i)
				val := []byte(fmt.Sprintf("value-%d-%d", g, i))
				if err := c.Set(key, val); err != nil {
					errs <- err
					return
				}
				got, ok, err := c.Get(key)
				if err != nil || !ok || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("read-own-write %s = %q %v %v", key, got, ok, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Full readback of all 10k keys through the cluster.
	for g := 0; g < clients; g++ {
		for i := 0; i < opsPerClient; i++ {
			key := fmt.Sprintf("client-%d-op-%d", g, i)
			got, ok, err := c.Get(key)
			if err != nil || !ok {
				t.Fatalf("lost write %s: %v %v", key, ok, err)
			}
			if want := []byte(fmt.Sprintf("value-%d-%d", g, i)); !bytes.Equal(got, want) {
				t.Fatalf("key %s = %q, want %q", key, got, want)
			}
		}
	}

	// Replication 2 over 3 backends: total stored keys = 2 * 10000.
	total := 0
	for _, h := range handlers {
		total += h.Len()
	}
	if want := 2 * clients * opsPerClient; total != want {
		t.Errorf("backends hold %d replica copies, want %d", total, want)
	}
}

// TestClusterShardingDisjoint checks that with replication 1 each key
// lives on exactly one backend and the ring spreads keys over all of
// them.
func TestClusterShardingDisjoint(t *testing.T) {
	handlers, addrs := startBackends(t, 4)
	c, err := NewCluster(ClusterConfig{Addrs: addrs})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const keys = 400
	for i := 0; i < keys; i++ {
		if err := c.Set(fmt.Sprintf("key-%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for b, h := range handlers {
		n := h.Len()
		total += n
		if n == 0 {
			t.Errorf("backend %d owns no keys; ring is not spreading", b)
		}
	}
	if total != keys {
		t.Errorf("backends hold %d keys total, want exactly %d (replication 1)", total, keys)
	}
}

// TestClusterReadRepair deletes a key's copy from one replica behind
// the cluster's back; a Get must still succeed and backfill the
// missing replica.
func TestClusterReadRepair(t *testing.T) {
	handlers, addrs := startBackends(t, 3)
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("grade", []byte("A")); err != nil {
		t.Fatal(err)
	}
	for b, h := range handlers {
		if h.Len() == 0 {
			t.Fatalf("backend %d missing the write with replication 3", b)
		}
	}
	// Damage the ring primary — the replica a balancer-less Get tries
	// first — by purging the entry outright (simulated data loss; a
	// protocol Del would be a legitimate newer delete and tombstone the
	// key cluster-wide), so the Get below must miss there, fall through
	// to the next replica, and repair the hole.
	primary := c.replicaSet("grade")[0] // the replica a balancer-less Get tries first
	handlers[primary].Engine().Purge("grade")
	if handlers[primary].Len() != 0 {
		t.Fatal("failed to damage primary")
	}
	got, ok, err := c.Get("grade")
	if err != nil || !ok || string(got) != "A" {
		t.Fatalf("Get after damage = %q %v %v, want A", got, ok, err)
	}
	if handlers[primary].Len() != 1 {
		t.Errorf("read-repair did not backfill the damaged replica")
	}
}

func TestClusterDel(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Del("k"); err != nil || !ok {
		t.Fatalf("Del existing = %v %v, want true nil", ok, err)
	}
	if _, ok, err := c.Get("k"); err != nil || ok {
		t.Fatalf("Get after Del = %v %v, want miss", ok, err)
	}
	if ok, err := c.Del("k"); err != nil || ok {
		t.Fatalf("Del missing = %v %v, want false nil", ok, err)
	}
}

func TestClusterConfigValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{}); err == nil {
		t.Error("empty config should fail")
	}
	_, addrs := startBackends(t, 2)
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 99})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Replication() != 2 {
		t.Errorf("replication capped at %d, want len(addrs)=2", c.Replication())
	}
	if c.Backends() != 2 {
		t.Errorf("Backends() = %d, want 2", c.Backends())
	}
}

package dist

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/store"
	"pdcedu/internal/trace"
)

// --- readCache unit tests -------------------------------------------

func TestReadCacheBasics(t *testing.T) {
	rc := newReadCache(64)
	if _, ok := rc.get("k", cacheNow()); ok {
		t.Fatal("empty cache reported a hit")
	}
	rc.put("k", store.Entry{Value: []byte("v1"), Version: 10})
	if e, ok := rc.get("k", cacheNow()); !ok || string(e.Value) != "v1" || e.Version != 10 {
		t.Fatalf("get = %+v, %v", e, ok)
	}
	// Older put refused; newer replaces.
	rc.put("k", store.Entry{Value: []byte("old"), Version: 5})
	if e, _ := rc.get("k", cacheNow()); string(e.Value) != "v1" {
		t.Fatalf("older put replaced newer entry: %+v", e)
	}
	rc.put("k", store.Entry{Value: []byte("v2"), Version: 20})
	if e, _ := rc.get("k", cacheNow()); string(e.Value) != "v2" {
		t.Fatalf("newer put did not replace: %+v", e)
	}
	// Tombstone is servable (a definitive miss) and beats a value tie.
	rc.put("k", store.Entry{Version: 30, Tombstone: true})
	if e, ok := rc.get("k", cacheNow()); !ok || !e.Tombstone {
		t.Fatalf("tombstone not served: %+v, %v", e, ok)
	}
	rc.put("k", store.Entry{Value: []byte("tie"), Version: 30})
	if e, _ := rc.get("k", cacheNow()); !e.Tombstone {
		t.Fatalf("value won a version tie against a tombstone: %+v", e)
	}
}

func TestReadCacheSupersede(t *testing.T) {
	rc := newReadCache(64)
	rc.put("k", store.Entry{Value: []byte("v1"), Version: 10})

	// Supersede below the resident version is a no-op.
	if rc.supersede("k", 5) {
		t.Fatal("supersede below resident reported a change")
	}
	if _, ok := rc.get("k", cacheNow()); !ok {
		t.Fatal("no-op supersede evicted the entry")
	}

	// Supersede above floors the slot: unservable, and it blocks any
	// in-flight populate older than the floor.
	if !rc.supersede("k", 20) {
		t.Fatal("supersede above resident reported no change")
	}
	if _, ok := rc.get("k", cacheNow()); ok {
		t.Fatal("floored entry still served")
	}
	rc.put("k", store.Entry{Value: []byte("stale"), Version: 15})
	if _, ok := rc.get("k", cacheNow()); ok {
		t.Fatal("floor let an older populate through")
	}
	// A put at the floor's version (the confirmed outcome of the event
	// that installed it) replaces the floor.
	rc.put("k", store.Entry{Value: []byte("v2"), Version: 20})
	if e, ok := rc.get("k", cacheNow()); !ok || string(e.Value) != "v2" {
		t.Fatalf("equal-version put did not replace floor: %+v, %v", e, ok)
	}

	// Supersede of an absent key installs a blocking floor too.
	rc.supersede("other", 40)
	rc.put("other", store.Entry{Value: []byte("stale"), Version: 39})
	if _, ok := rc.get("other", cacheNow()); ok {
		t.Fatal("absent-key floor let an older populate through")
	}
}

func TestReadCacheExpiry(t *testing.T) {
	rc := newReadCache(64)
	rc.put("k", store.Entry{Value: []byte("v"), Version: 10, ExpireAt: time.Now().Add(30 * time.Millisecond).UnixNano()})
	if _, ok := rc.get("k", cacheNow()); !ok {
		t.Fatal("unexpired entry not served")
	}
	time.Sleep(50 * time.Millisecond)
	if _, ok := rc.get("k", cacheNow()); ok {
		t.Fatal("expired entry served")
	}
	if rc.Len() != 0 {
		t.Fatalf("expired entry still resident: Len=%d", rc.Len())
	}
}

func TestReadCacheEviction(t *testing.T) {
	rc := newReadCache(cacheShards) // one slot per shard
	before := distM.cacheEvict.Value()
	for i := 0; i < 10*cacheShards; i++ {
		rc.put(fmt.Sprintf("key-%d", i), store.Entry{Value: []byte("v"), Version: uint64(i + 1)})
	}
	if n := rc.Len(); n > cacheShards {
		t.Fatalf("cache over capacity: %d > %d", n, cacheShards)
	}
	if distM.cacheEvict.Value() == before {
		t.Fatal("evictions not counted")
	}
}

func TestSessionObserve(t *testing.T) {
	var s Session
	if s.Last() != 0 {
		t.Fatal("fresh session watermark nonzero")
	}
	s.Observe(10)
	s.Observe(5) // must not regress
	if s.Last() != 10 {
		t.Fatalf("Last = %d, want 10", s.Last())
	}
	var nilSess *Session
	nilSess.Observe(1) // nil-safe
	if nilSess.Last() != 0 {
		t.Fatal("nil session watermark nonzero")
	}
}

// --- cluster coherence tests ----------------------------------------

func cachedCluster(t *testing.T, addrs []string, entries int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Addrs:       addrs,
		Replication: 3,
		Timeout:     5 * time.Second,
		ReadCache:   entries,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestCacheHotReads pins the point of the cache: after a write (which
// installs the entry write-through) repeated reads are served without
// a replica round-trip, counted as hits.
func TestCacheHotReads(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c := cachedCluster(t, addrs, 1024)

	if err := c.Set("hot", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	hits := distM.cacheHits.Value()
	for i := 0; i < 10; i++ {
		v, ok, err := c.Get("hot")
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("Get = %q, %v, %v", v, ok, err)
		}
	}
	if got := distM.cacheHits.Value() - hits; got != 10 {
		t.Fatalf("cache hits = %d, want 10", got)
	}
}

// TestCacheWriteDeleteCoherence checks the coordinator's own write
// paths: an overwrite is immediately readable at the new value, a
// delete immediately reads as a miss (served as a cached tombstone,
// not a stale value).
func TestCacheWriteDeleteCoherence(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c := cachedCluster(t, addrs, 1024)

	if err := c.Set("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get("k"); string(v) != "v1" {
		t.Fatalf("Get = %q", v)
	}
	if err := c.Set("k", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || string(v) != "v2" {
		t.Fatalf("stale read after overwrite: %q, %v, %v", v, ok, err)
	}
	if _, err := c.Del("k"); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get("k"); ok {
		t.Fatalf("stale read after delete: %q", v)
	}
	// The post-delete miss is itself served from cache (tombstone hit).
	hits := distM.cacheHits.Value()
	if _, ok, _ := c.Get("k"); ok {
		t.Fatal("deleted key resurrected")
	}
	if distM.cacheHits.Value() == hits {
		t.Fatal("definitive miss not served from cache")
	}
}

// TestCacheBatchCoherence runs the same contract through the batch
// APIs: MSet supersedes/installs per key, MGet serves and populates,
// MDel leaves cached tombstones.
func TestCacheBatchCoherence(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c := cachedCluster(t, addrs, 1024)

	keys := []string{"b-0", "b-1", "b-2"}
	vals := [][]byte{[]byte("x0"), []byte("x1"), []byte("x2")}
	if err := c.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	hits := distM.cacheHits.Value()
	got, err := c.MGet(keys)
	if err != nil || len(got) != 3 {
		t.Fatalf("MGet = %v, %v", got, err)
	}
	if distM.cacheHits.Value()-hits != 3 {
		t.Fatal("MGet did not serve the MSet write-through from cache")
	}
	if err := c.MSet(keys[:1], [][]byte{[]byte("y0")}); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get("b-0"); string(v) != "y0" {
		t.Fatalf("stale read after MSet overwrite: %q", v)
	}
	if _, err := c.MDel(keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, ok, _ := c.Get(k); ok {
			t.Fatalf("stale read after MDel: %s=%q", k, v)
		}
	}
}

// TestCacheHintReplaySupersedes drives the hint-replay invalidation
// end to end: coordinators A and B both write around an unreachable
// replica (each hinting it, quorum still met), B's write being newer.
// After the replica returns, B's replay lands first; A's replay then
// hits Exists-with-newer, which must supersede A's cached copy — A's
// next read returns B's value, not the cached loser.
func TestCacheHintReplaySupersedes(t *testing.T) {
	var srvs []*csnet.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		srv := csnet.NewServer(csnet.NewKVHandler(), 64)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Shutdown)
		srvs = append(srvs, srv)
		addrs = append(addrs, addr)
	}
	a := cachedCluster(t, addrs, 1024)
	b, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 3, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	down := a.ReplicaSet("k")[0]
	srvs[down].Shutdown() // unreachable, still in both rings: writes hint it
	if err := a.Set("k", []byte("from-a")); err != nil {
		t.Fatal(err)
	}
	if a.Hints(down) == 0 {
		t.Fatal("no hint queued for the unreachable replica")
	}
	if v, _, _ := a.Get("k"); string(v) != "from-a" {
		t.Fatalf("pre-replay read = %q", v)
	}
	time.Sleep(2 * time.Millisecond) // order B's HLC stamp strictly after A's
	if err := b.Set("k", []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	// Revive the replica (empty — both coordinators' hints are its only
	// way back to the key).
	srvs[down] = csnet.NewServer(csnet.NewKVHandler(), 64)
	if _, err := srvs[down].Start(addrs[down]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvs[down].Shutdown)
	b.replayHints(down) // the replica now holds B's newer version
	// A's replay hits Exists-with-newer, which must invalidate A's
	// cached "from-a".
	inval := distM.cacheInval.Value()
	a.replayHints(down)
	if distM.cacheInval.Value() == inval {
		t.Fatal("hint replay did not invalidate the cache")
	}
	v, ok, err := a.Get("k")
	if err != nil || !ok || string(v) != "from-b" {
		t.Fatalf("post-replay read = %q, %v, %v (stale cache survived replay)", v, ok, err)
	}
}

// TestCacheAntiEntropySupersedes diverges a replica behind the
// coordinator's back (a newer merge landing directly on one engine, as
// another coordinator's write would) and checks that the anti-entropy
// pass streaming the winner also supersedes the stale cached copy.
func TestCacheAntiEntropySupersedes(t *testing.T) {
	handlers, addrs := startBackends(t, 3)
	c := cachedCluster(t, addrs, 1024)

	if err := c.Set("k", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Get("k"); string(v) != "old" {
		t.Fatalf("prime read = %q", v)
	}
	// Land a newer version on one replica only, bypassing c entirely.
	newer := c.clock.Next() + 1<<20
	if _, applied := handlers[0].Engine().Merge("k", store.Entry{Value: []byte("new"), Version: newer}); !applied {
		t.Fatal("direct merge not applied")
	}
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "new" {
		t.Fatalf("post-AE read = %q, %v, %v (stale cache survived anti-entropy)", v, ok, err)
	}
}

// TestCacheReadRepairSupersedes pins the invalidation point directly:
// a repair entry at version V floors any cached copy below V, so a
// stale populate racing the repair cannot be served afterwards.
func TestCacheReadRepairSupersedes(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c := cachedCluster(t, addrs, 1024)

	c.cache.put("k", store.Entry{Value: []byte("stale"), Version: 10})
	c.readRepair(trace.Context{}, "k", store.Entry{Value: []byte("fresh"), Version: 20}, nil)
	if e, ok := c.cache.get("k", cacheNow()); ok {
		t.Fatalf("cached entry served past the repair point: %+v", e)
	}
	// And the racing stale populate is blocked by the floor.
	c.cache.put("k", store.Entry{Value: []byte("stale"), Version: 15})
	if _, ok := c.cache.get("k", cacheNow()); ok {
		t.Fatal("stale populate served past the repair point")
	}
}

// TestCacheSessionReadYourWrites checks the session guard: a cached
// entry older than the session's watermark is never served to it, but
// sessionless readers still take the hit.
func TestCacheSessionReadYourWrites(t *testing.T) {
	_, addrs := startBackends(t, 3)
	c := cachedCluster(t, addrs, 1024)

	sess := &Session{}
	if err := c.SetS(sess, "k", []byte("mine")); err != nil {
		t.Fatal(err)
	}
	if sess.Last() == 0 {
		t.Fatal("session did not observe its own write")
	}
	if v, ok, err := c.GetS(sess, "k"); err != nil || !ok || !bytes.Equal(v, []byte("mine")) {
		t.Fatalf("GetS = %q, %v, %v", v, ok, err)
	}
	// Simulate a stale cached copy below the session watermark (an
	// older populate surviving from before the write).
	c.cache.put("k2", store.Entry{Value: []byte("stale"), Version: 1})
	sess.Observe(c.clock.Next())
	misses := distM.cacheMiss.Value()
	if v, ok, _ := c.GetS(sess, "k2"); ok {
		t.Fatalf("session served a cached read below its watermark: %q", v)
	}
	if distM.cacheMiss.Value() == misses {
		t.Fatal("watermarked read did not fall through to the replicas")
	}
	// A sessionless reader accepts the version-bounded staleness.
	if v, ok, _ := c.Get("k2"); !ok || string(v) != "stale" {
		t.Fatalf("sessionless read = %q, %v", v, ok)
	}
	// DelS advances the watermark too: the delete is immediately
	// visible to its session.
	if _, err := c.DelS(sess, "k"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.GetS(sess, "k"); ok {
		t.Fatal("session read its own delete's victim")
	}
}

package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/obs"
	"pdcedu/internal/store"
	"pdcedu/internal/trace"
)

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Addrs are the backend csnet.Server addresses (at least one).
	Addrs []string
	// Replication is the number of backends each key is written to
	// (default 1, capped at len(Addrs)).
	Replication int
	// Balancer spreads reads across a key's replica set; a key's read
	// slot is Pick(key) mod Replication. Nil defaults to primary-first
	// reads via the placement ring. Placement itself is always ring
	// based so Set and Get agree on where a key lives regardless of the
	// strategy plugged in here.
	Balancer Balancer
	// Vnodes is the virtual-node count of the placement ring (default 64).
	Vnodes int
	// Timeout bounds each backend round-trip (default 5s).
	Timeout time.Duration
	// WriteQuorum is how many replica acks a Set/MSet needs to succeed
	// (default a majority of Replication, clamped to [1, Replication]).
	// Set it to Replication to restore strict write-all semantics.
	WriteQuorum int
	// Buckets is the Merkle bucket count placement and anti-entropy
	// agree on (rounded up to a power of two; default
	// store.DefaultMerkleBuckets). It must match the backends' engine
	// MerkleBuckets — the digest exchange carries the geometry, and a
	// mismatch makes Rebalance fall back to full listings.
	Buckets int
	// Tracer records the coordinator's spans and originates trace
	// contexts for cluster operations (nil = trace.Default()). Enable
	// and sample it to trace: while it is disabled — the default —
	// every op runs untraced at one extra atomic load, and request
	// frames stay byte-identical.
	Tracer *trace.Recorder
	// ReadCache bounds the coordinator's hot-key read cache in entries
	// (0, the default, disables it). Quorum-read wins and quorum-write
	// successes populate it; every write path the coordinator sees
	// invalidates by version. See readCache for the coherence contract
	// and Session for read-your-writes on top of it.
	ReadCache int
}

// Cluster shards one key space across several csnet backend servers: a
// consistent-hash ring places each key's Merkle bucket (so every key
// in a bucket shares one replica set — the granularity anti-entropy
// digests compare) on its Replication first distinct ring successors,
// writes go synchronously to the live members of that set (succeeding
// on a quorum of acks), and reads are spread over the replica set by
// the configured Balancer with read-repair backfilling replicas that
// missed a write.
//
// Transport: one pipelined, multiplexed connection per backend, shared
// by all concurrent callers. Replica fan-out and the batch APIs
// (MSet/MGet/MDel) issue asynchronous sends and then collect, so a
// replicated write costs one round-trip of latency and a 100-key batch
// costs one pipelined burst per backend instead of 100 lock-step round
// trips.
//
// Versioning: every write is stamped by the cluster's hybrid logical
// clock and applied on each replica with last-writer-wins merge
// (csnet.OpSetV/OpDelV/OpMerge over a versioned store.Engine), so no
// replay path — read-repair, hinted handoff, the rebalancer — can ever
// overwrite a newer value with an older one, regardless of delivery
// order. Deletes are tombstones and propagate through the same merge,
// which is what lets the rebalancer converge a rejoined replica
// correctly even when its hints were dropped.
//
// Fault tolerance: Watch subscribes the cluster to a member.Memberlist
// so dead backends are evicted from the ring (their keys reroute to the
// next live nodes) and recovered ones are readmitted. Writes that fail
// on an unreachable replica are queued as hints (latest version per
// key, expiry included) and replayed when the replica rejoins; a
// background Merkle anti-entropy pass compares replica digests and
// streams exactly the diverged entries — missing, stale, value-split,
// or tombstoned — to their current owners after every ring change. See
// MarkDown, MarkUp, Rebalance, AntiEntropyStats, and
// PartialWriteError.
type Cluster struct {
	ring     *ConsistentHash // live placement: down backends removed
	clock    *store.Clock    // stamps write versions, observes read versions
	balancer Balancer
	tracer   *trace.Recorder
	cache    *readCache // hot-key read cache; nil when disabled
	rf       int
	quorum   int
	pools    []*clientPool
	addrIdx  map[string]int
	// Placement is bucket-granular: a key maps to its Merkle bucket
	// (store.BucketOf) and the bucket — not the key — is what the ring
	// places. Every key in a bucket therefore shares one replica set,
	// which is what makes two replicas' bucket hashes comparable: when
	// they disagree, the bucket has genuinely diverged, not merely been
	// sliced differently by per-key placement.
	buckets    int
	bucketKeys []string // precomputed ring keys, one per bucket

	mu        sync.Mutex
	down      []bool
	hints     []map[string]hintEntry // per-backend pending hinted operations
	hintDrops uint64
	lastAE    AntiEntropyStats

	rebalanceMu   sync.Mutex  // serializes Rebalance passes
	fullPass      atomic.Bool // next scheduled pass must be full listings (set on ring changes)
	rebalance     chan struct{}
	stop          chan struct{}
	rebalanceDone chan struct{}
	closeOnce     sync.Once
}

// NewCluster connects a cluster router to the configured backends.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, errors.New("dist: cluster needs at least one backend address")
	}
	rf := cfg.Replication
	if rf < 1 {
		rf = 1
	}
	if rf > n {
		rf = n
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	quorum := cfg.WriteQuorum
	if quorum <= 0 {
		quorum = rf/2 + 1
	}
	if quorum > rf {
		quorum = rf
	}
	buckets := cfg.Buckets
	if buckets <= 0 {
		buckets = store.DefaultMerkleBuckets
	}
	pow := 1
	for pow < buckets {
		pow <<= 1
	}
	buckets = pow
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = trace.Default()
	}
	c := &Cluster{
		ring:          NewConsistentHash(n, cfg.Vnodes),
		clock:         store.NewClock(),
		balancer:      cfg.Balancer,
		tracer:        tracer,
		cache:         newReadCache(cfg.ReadCache),
		rf:            rf,
		quorum:        quorum,
		pools:         make([]*clientPool, n),
		addrIdx:       make(map[string]int, n),
		buckets:       buckets,
		bucketKeys:    make([]string, buckets),
		down:          make([]bool, n),
		hints:         make([]map[string]hintEntry, n),
		rebalance:     make(chan struct{}, 1),
		stop:          make(chan struct{}),
		rebalanceDone: make(chan struct{}),
	}
	for b := range c.bucketKeys {
		c.bucketKeys[b] = fmt.Sprintf("bucket-%d", b)
	}
	for i, addr := range cfg.Addrs {
		c.pools[i] = &clientPool{addr: addr, timeout: timeout}
		c.addrIdx[addr] = i
	}
	go c.rebalanceLoop()
	return c, nil
}

// Backends reports the number of backend servers.
func (c *Cluster) Backends() int { return len(c.pools) }

// Replication reports the effective replication factor.
func (c *Cluster) Replication() int { return c.rf }

// replicaSet returns the live backends holding key: the first rf
// distinct nodes clockwise from the key's *bucket's* ring position
// (placement is bucket-granular; see the Cluster doc). Backends marked
// down are out of the ring, so the set shrinks below rf only when
// fewer than rf backends are live.
func (c *Cluster) replicaSet(key string) []int {
	return c.ownersOf(store.BucketOf(key, c.buckets))
}

// ownersOf returns the live replica set of one Merkle bucket.
func (c *Cluster) ownersOf(bucket int) []int {
	return c.ring.PickN(c.bucketKeys[bucket], c.rf)
}

// ReplicaSet reports the live backends currently owning key, primary
// first — the placement every read, write, and anti-entropy pass
// uses. Demos and operators use it to check replication coverage
// against the cluster's actual geometry.
func (c *Cluster) ReplicaSet(key string) []int { return c.replicaSet(key) }

// startOp opens a new trace plus its root coordinator span for one
// public cluster operation, returning the propagation context (root as
// parent) and the root span to Finish. With tracing disabled both are
// inert and the whole detour is one atomic load.
func (c *Cluster) startOp(op string) (trace.Context, trace.Active) {
	ctx := c.tracer.NewTrace()
	if !ctx.Valid() {
		return ctx, trace.Active{}
	}
	root := c.tracer.StartSpan(ctx, trace.KindOp, op)
	return root.Context(), root
}

// rpcSpan opens the coordinator-side span for one backend call; the
// returned span's Context goes onto the request so the backend's
// server span hangs off this hop.
func (c *Cluster) rpcSpan(ctx trace.Context, op string, backend int) trace.Active {
	sp := c.tracer.StartSpan(ctx, trace.KindRPC, op)
	if sp.Live() {
		sp.S.Peer = c.pools[backend].addr
	}
	return sp
}

// startAE opens a trace for one anti-entropy pass. Unlike client ops a
// pass is self-originated, so its root span carries the AE kind — a
// slow-pass waterfall reads as "antientropy" rather than a client op.
func (c *Cluster) startAE(op string) (trace.Context, trace.Active) {
	ctx := c.tracer.NewTrace()
	if !ctx.Valid() {
		return ctx, trace.Active{}
	}
	root := c.tracer.StartSpan(ctx, trace.KindAE, op)
	return root.Context(), root
}

// quorumFor is the ack count a write to a set of n live replicas needs:
// the configured quorum, degraded to n when fewer than quorum replicas
// are live (so a minority partition keeps accepting writes rather than
// rejecting everything; the rebalancer restores full replication when
// nodes return).
func (c *Cluster) quorumFor(n int) int {
	q := c.quorum
	if q > n {
		q = n
	}
	if q < 1 {
		q = 1
	}
	return q
}

// statusErr converts a backend rejection into a cause error,
// preserving the busy type: a StatusBusy reply wraps csnet.ErrBusy so
// errors.Is(err, csnet.ErrBusy) — including through a
// PartialWriteError's causes — identifies shed writes as retryable.
func statusErr(resp csnet.Response) error {
	if resp.Status == csnet.StatusBusy {
		return fmt.Errorf("status %s: %w", resp.Status, csnet.ErrBusy)
	}
	return fmt.Errorf("status %s: %s", resp.Status, resp.Value)
}

// cacheSupersede invalidates the read cache at ver, counting only
// calls that actually changed a slot.
func (c *Cluster) cacheSupersede(key string, ver uint64) {
	if c.cache.supersede(key, ver) {
		distM.cacheInval.Inc()
	}
}

// Set writes key to every live replica synchronously: the coordinator
// stamps one clock version, the sends are pipelined onto each
// replica's multiplexed connection as versioned merges (OpSetV) and
// then collected, so latency stays near one round-trip regardless of
// the replication factor — no per-call goroutine fan-out. Every
// replica converges on the same (value, version); concurrent Sets of
// the same key from any number of coordinators resolve last-writer-
// wins by version on every replica identically, so replicas can no
// longer end up disagreeing about a race. It succeeds once a quorum of
// the live replica set acknowledges (a replica reporting it already
// holds something newer counts — the state there is newer than this
// write, which is durable enough); replicas that were unreachable get
// the write queued as a version-stamped hint, replayed when they
// rejoin. Below quorum it returns a *PartialWriteError naming the
// replicas that did acknowledge.
func (c *Cluster) Set(key string, value []byte) error {
	return c.setTTL(key, value, 0, nil)
}

// SetS is Set bound to a read-your-writes Session: on success the
// session observes the write's version, so a later GetS through the
// same session can never be served a cached entry older than this
// write. See Session.
func (c *Cluster) SetS(sess *Session, key string, value []byte) error {
	return c.setTTL(key, value, 0, sess)
}

// SetTTL is Set with an expiry: the coordinator computes one absolute
// ExpireAt from ttl (<= 0 means no expiry) and stamps it into every
// replica's OpSetV — and into any hint queued for an unreachable
// replica — so the entry is mortal everywhere it lands, and an expired
// copy converges to an expiry tombstone instead of resurrecting.
func (c *Cluster) SetTTL(key string, value []byte, ttl time.Duration) error {
	return c.setTTL(key, value, ttl, nil)
}

func (c *Cluster) setTTL(key string, value []byte, ttl time.Duration, sess *Session) error {
	defer distM.latSet.ObserveSince(obs.StartTimer())
	set := c.replicaSet(key)
	if len(set) == 0 {
		return fmt.Errorf("dist: cluster set %q: no live backends", key)
	}
	var expireAt int64
	if ttl > 0 {
		expireAt = time.Now().Add(ttl).UnixNano()
	}
	ver := c.clock.Next()
	ctx, root := c.startOp("set")
	type sent struct {
		call    *csnet.Call
		backend int
		sp      trace.Active
	}
	calls := make([]sent, 0, len(set))
	acked := make([]int, 0, len(set))
	var hinted []int
	var causes map[int]error
	fail := func(b int, err error, hint bool) {
		if causes == nil {
			causes = map[int]error{}
		}
		causes[b] = err
		if hint {
			c.hint(b, key, hintEntry{val: value, ver: ver, exp: expireAt, tr: ctx})
			hinted = append(hinted, b)
		}
	}
	for _, b := range set {
		cl, err := c.pools[b].get()
		if err != nil {
			fail(b, err, true)
			continue
		}
		sp := c.rpcSpan(ctx, "SETV", b)
		calls = append(calls, sent{cl.Send(csnet.Request{Op: csnet.OpSetV, Key: key, Value: value, Version: ver, ExpireAt: expireAt, Trace: sp.Context()}), b, sp})
	}
	var lostTo uint64 // newest StatusExists version: a replica already held newer
	for i := range calls {
		s := &calls[i]
		resp, err := s.call.ResponseV()
		switch {
		case err != nil:
			// Transport failure: the backend is unreachable or dying, so
			// the write is worth replaying when it returns.
			fail(s.backend, err, true)
			s.sp.S.Err = true
		case resp.Status != csnet.StatusOK && resp.Status != csnet.StatusExists:
			// The backend is alive and rejected the write; a replay
			// would be rejected again, so no hint.
			fail(s.backend, statusErr(resp), false)
			s.sp.S.Err = true
		default:
			// Observe the winner: a StatusExists reply carries the newer
			// resident version, and a coordinator whose wall clock lags
			// must advance past it or its next write loses too.
			c.clock.Observe(resp.Version)
			if resp.Status == csnet.StatusExists && resp.Version > lostTo {
				lostTo = resp.Version
			}
			acked = append(acked, s.backend)
		}
		s.sp.Finish()
	}
	if q := c.quorumFor(len(set)); len(acked) < q {
		// Under quorum the write's fate is unsettled — it may yet win or
		// lose on the replicas — so the cache must not claim either way.
		c.cacheSupersede(key, ver)
		distM.partialWrites.Inc()
		distM.quorumShort.Inc()
		root.S.Err = true
		root.Finish()
		return &PartialWriteError{
			Op: "set", Key: key, Replicas: set,
			Acked: acked, Hinted: hinted, Quorum: q, MissedKeys: 1, Causes: causes,
		}
	}
	sess.Observe(ver)
	if lostTo > 0 {
		// A replica already held something newer: this write is durable
		// but not the winner, and the coordinator never saw the winning
		// value — invalidate rather than cache a loser.
		c.cacheSupersede(key, lostTo)
	} else {
		c.cache.put(key, store.Entry{Value: value, Version: ver, ExpireAt: expireAt})
	}
	root.Finish()
	return nil
}

// readPick returns the index into a key's n-element live replica set to
// try first, consulting the Balancer when one is configured. The
// returned release must be called when the read completes, so
// load-aware strategies (least-loaded, power-of-two) see genuinely
// in-flight requests rather than counters that zero out immediately.
func (c *Cluster) readPick(key string, n int) (first int, release func()) {
	if c.balancer == nil || n < 1 {
		return 0, func() {}
	}
	pick := c.balancer.Pick(key)
	return ((pick % n) + n) % n, func() { c.balancer.Done(pick) }
}

// Get reads key from its replica set with versioned reads (OpGetV).
// The Balancer picks the replica to try first; on a miss the remaining
// replicas are consulted, and when a later replica has the value,
// read-repair merges it back to every replica that missed. A replica
// that misses because it holds a tombstone reports the tombstone's
// version: if that tombstone is newer than the value another replica
// returns, the key is deleted — Get reports a miss and propagates the
// tombstone to the stale holder instead of resurrecting the value. A
// (nil, false, nil) return means no replica has a live copy.
//
// With a read cache configured (ClusterConfig.ReadCache) a servable
// cached entry — a live value, or a cached tombstone reported as a
// definitive miss — short-circuits the replica round entirely; reads
// that do go to the replicas populate the cache with what they learn
// (the winning entry, or the newest tombstone seen).
func (c *Cluster) Get(key string) (value []byte, ok bool, err error) {
	return c.getS(key, nil)
}

// GetS is Get bound to a read-your-writes Session: a cached entry is
// served only when its version is at least the session's watermark, so
// a session can never be handed a cached read older than its own
// writes; the session then observes what it read, making session reads
// monotonic too.
func (c *Cluster) GetS(sess *Session, key string) (value []byte, ok bool, err error) {
	return c.getS(key, sess)
}

func (c *Cluster) getS(key string, sess *Session) (value []byte, ok bool, err error) {
	defer distM.latGet.ObserveSince(obs.StartTimer())
	if c.cache != nil {
		if e, hit := c.cache.get(key, cacheNow()); hit && e.Version >= sess.Last() {
			distM.cacheHits.Inc()
			sess.Observe(e.Version)
			if e.Tombstone {
				return nil, false, nil
			}
			return e.Value, true, nil
		}
		distM.cacheMiss.Inc()
	}
	set := c.replicaSet(key)
	if len(set) == 0 {
		return nil, false, fmt.Errorf("dist: cluster get %q: no live backends", key)
	}
	first, release := c.readPick(key, len(set))
	defer release()
	ctx, root := c.startOp("get")
	var missed []int
	var tombVer uint64 // newest tombstone seen across misses
	var tombExp int64  // its ExpireAt (nonzero for expiry tombstones)
	var lastErr error
	for i := 0; i < len(set); i++ {
		b := set[(first+i)%len(set)]
		cl, err := c.pools[b].get()
		if err != nil {
			lastErr = err
			continue
		}
		sp := c.rpcSpan(ctx, "GETV", b)
		e, found, err := cl.GetVT(key, sp.Context())
		if err != nil {
			lastErr = err
			sp.S.Err = true
			sp.Finish()
			continue
		}
		sp.Finish()
		// Observe every version seen — misses included: a tombstone (or
		// expired copy) this coordinator has read must order below its
		// next write, or a Set issued after reading the delete could
		// stamp under the tombstone and lose everywhere while
		// reporting success.
		c.clock.Observe(e.Version)
		if !found {
			if e.Tombstone && e.Version > tombVer {
				// Keep the tombstone's expiry too: an expiry tombstone
				// repaired onto a peer without its ExpireAt would age
				// from the (older) write time and could be GC'd before
				// the peer's own copy had even expired — reopening the
				// resurrection hole.
				tombVer, tombExp = e.Version, e.ExpireAt
			}
			missed = append(missed, b)
			continue
		}
		// A tie goes to the tombstone, matching Entry.Wins: replicas
		// converge to deleted on equal versions, so the read must too.
		if tombVer >= e.Version {
			// A replica consulted earlier holds a newer delete: the
			// value is stale, not the miss. Push the tombstone at the
			// stale holder and report the key gone.
			tomb := store.Entry{Version: tombVer, Tombstone: true, ExpireAt: tombExp}
			c.readRepair(ctx, key, tomb, []int{b})
			c.cache.put(key, tomb)
			sess.Observe(tombVer)
			root.Finish()
			return nil, false, nil
		}
		c.readRepair(ctx, key, e, missed)
		c.cache.put(key, e)
		sess.Observe(e.Version)
		root.Finish()
		return e.Value, true, nil
	}
	if lastErr != nil {
		root.S.Err = true
		root.Finish()
		return nil, false, fmt.Errorf("dist: cluster get %q: %w", key, lastErr)
	}
	if tombVer > 0 {
		// Every replica missed and the newest miss was an explicit
		// tombstone: cache it, so the hot "polling a deleted key" case
		// is as cheap as the hot value case.
		c.cache.put(key, store.Entry{Version: tombVer, Tombstone: true, ExpireAt: tombExp})
		sess.Observe(tombVer)
	}
	root.Finish()
	return nil, false, nil
}

// readRepair merges an entry onto replicas that returned a miss (or a
// stale copy), as one pipelined burst. The merge is version-aware: it
// fills holes and fixes stale copies but can never overwrite a newer
// write that landed between the miss and the repair — the engine keeps
// the newer version and answers StatusExists. Failures are ignored
// (the next read retries the repair).
func (c *Cluster) readRepair(ctx trace.Context, key string, e store.Entry, missed []int) {
	// The repair entry supersedes whatever the cache holds below it;
	// the caller installs the same entry right after, replacing the
	// floor with the servable copy.
	c.cacheSupersede(key, e.Version)
	if len(missed) > 0 {
		distM.readRepairs.Add(uint64(len(missed)))
	}
	type repairCall struct {
		call *csnet.Call
		sp   trace.Active
	}
	calls := make([]repairCall, 0, len(missed))
	for _, b := range missed {
		cl, err := c.pools[b].get()
		if err != nil {
			continue
		}
		// The repair rides the read's trace: a waterfall shows exactly
		// which replicas were backfilled (or tombstoned) and what it cost.
		sp := c.tracer.StartSpan(ctx, trace.KindRepair, "MERGE")
		if sp.Live() {
			sp.S.Peer = c.pools[b].addr
		}
		req := csnet.Request{Op: csnet.OpMerge, Key: key, Value: e.Value, Version: e.Version, ExpireAt: e.ExpireAt, Trace: sp.Context()}
		if e.Tombstone {
			req.Flags |= csnet.FlagTombstone
			req.Value = nil
		}
		calls = append(calls, repairCall{call: cl.Send(req), sp: sp})
	}
	for _, rc := range calls {
		if _, err := rc.call.ResponseV(); err != nil {
			rc.sp.S.Err = true
		}
		rc.sp.Finish()
	}
}

// Del removes key from every live replica by writing a version-stamped
// tombstone (OpDelV), fanning the deletes out as pipelined async sends
// collected together (parallel across replicas, like Set); ok reports
// whether any replica had a live copy. The tombstone is what makes the
// delete durable against recovery: a replica that missed it converges
// through hint replay or the rebalancer's tombstone streaming, and a
// stale copy can never win the merge against it.
func (c *Cluster) Del(key string) (ok bool, err error) {
	return c.delS(key, nil)
}

// DelS is Del bound to a read-your-writes Session: on success the
// session observes the tombstone's version, so a later GetS through
// the same session reports the key gone rather than serving a cached
// pre-delete value.
func (c *Cluster) DelS(sess *Session, key string) (ok bool, err error) {
	return c.delS(key, sess)
}

func (c *Cluster) delS(key string, sess *Session) (ok bool, err error) {
	defer distM.latDel.ObserveSince(obs.StartTimer())
	set := c.replicaSet(key)
	if len(set) == 0 {
		return false, fmt.Errorf("dist: cluster del %q: no live backends", key)
	}
	ver := c.clock.Next()
	ctx, root := c.startOp("del")
	calls := make([]*csnet.Call, len(set))
	spans := make([]trace.Active, len(set))
	var firstErr error
	var lostTo uint64 // newest StatusExists version seen (see setTTL)
	for i, b := range set {
		cl, cerr := c.pools[b].get()
		if cerr != nil {
			c.hint(b, key, hintEntry{del: true, ver: ver, tr: ctx})
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster del %q on backend %d: %w", key, b, cerr)
			}
			continue
		}
		spans[i] = c.rpcSpan(ctx, "DELV", b)
		calls[i] = cl.Send(csnet.Request{Op: csnet.OpDelV, Key: key, Version: ver, Trace: spans[i].Context()})
	}
	for i, call := range calls {
		if call == nil {
			continue
		}
		resp, cerr := call.ResponseV()
		if cerr != nil {
			// Transport failure: the replica may still hold the key, so
			// the deletion must replay when it returns.
			c.hint(set[i], key, hintEntry{del: true, ver: ver, tr: ctx})
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster del %q on backend %d: %w", key, set[i], cerr)
			}
			spans[i].S.Err = true
			spans[i].Finish()
			continue
		}
		if resp.Status != csnet.StatusOK && resp.Status != csnet.StatusNotFound && resp.Status != csnet.StatusExists {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster del %q on backend %d: %w", key, set[i], statusErr(resp))
			}
			spans[i].S.Err = true
			spans[i].Finish()
			continue
		}
		c.clock.Observe(resp.Version) // advance past a newer resident version (see Set)
		if resp.Status == csnet.StatusExists && resp.Version > lostTo {
			lostTo = resp.Version
		}
		ok = ok || resp.Status == csnet.StatusOK
		spans[i].Finish()
	}
	sess.Observe(ver)
	switch {
	case firstErr != nil:
		// Some replica's fate is unknown (hinted or rejected): the
		// delete is in flight, not settled — invalidate, don't assert.
		c.cacheSupersede(key, ver)
	case lostTo > 0:
		// A replica already held something newer than this tombstone;
		// the coordinator never saw it, so it cannot cache the outcome.
		c.cacheSupersede(key, lostTo)
	default:
		c.cache.put(key, store.Entry{Version: ver, Tombstone: true})
	}
	root.S.Err = firstErr != nil
	root.Finish()
	return ok, firstErr
}

// batchClients lazily resolves one pooled client per backend for a
// batch operation, caching dial failures so a dead backend is reported
// once instead of re-dialed per key.
type batchClients struct {
	c      *Cluster
	cls    []*csnet.Client
	errs   []error
	dialed []bool
}

func (c *Cluster) newBatchClients() *batchClients {
	n := len(c.pools)
	return &batchClients{c: c, cls: make([]*csnet.Client, n), errs: make([]error, n), dialed: make([]bool, n)}
}

func (bc *batchClients) get(b int) (*csnet.Client, error) {
	if !bc.dialed[b] {
		bc.dialed[b] = true
		bc.cls[b], bc.errs[b] = bc.c.pools[b].get()
	}
	return bc.cls[b], bc.errs[b]
}

// MSet writes many key/value pairs with replicated quorum writes: keys
// are grouped by replica set and each backend receives its whole share
// as one pipelined batch, so the wall-clock cost is one burst per
// backend rather than one round-trip per key per replica. Per key the
// semantics match Set — a quorum of the live replica set must
// acknowledge, unreachable replicas get hints — and when any key misses
// quorum the whole batch returns one *PartialWriteError carrying the
// first such key's detail plus the total count of under-quorum keys
// (every other key's writes still complete and remain durable).
func (c *Cluster) MSet(keys []string, values [][]byte) error {
	return c.MSetTTL(keys, values, 0)
}

// MSetTTL is MSet with one expiry applied to the whole batch (ttl <= 0
// means no expiry); see SetTTL for the replication semantics.
func (c *Cluster) MSetTTL(keys []string, values [][]byte, ttl time.Duration) error {
	defer distM.latMSet.ObserveSince(obs.StartTimer())
	if len(keys) != len(values) {
		return fmt.Errorf("dist: cluster mset: %d keys but %d values", len(keys), len(values))
	}
	var expireAt int64
	if ttl > 0 {
		expireAt = time.Now().Add(ttl).UnixNano()
	}
	bc := c.newBatchClients()
	ctx, root := c.startOp("mset")
	type sent struct {
		call    *csnet.Call
		key     int
		backend int
		sp      trace.Active
	}
	sets := make([][]int, len(keys))
	acked := make([][]int, len(keys))
	hinted := make([][]int, len(keys))
	causes := make([]map[int]error, len(keys))
	vers := make([]uint64, len(keys))
	fail := func(i, b int, err error, hint bool) {
		if causes[i] == nil {
			causes[i] = map[int]error{}
		}
		causes[i][b] = err
		if hint {
			c.hint(b, keys[i], hintEntry{val: values[i], ver: vers[i], exp: expireAt, tr: ctx})
			hinted[i] = append(hinted[i], b)
		}
	}
	calls := make([]sent, 0, len(keys)*c.rf)
	for i, key := range keys {
		sets[i] = c.replicaSet(key)
		vers[i] = c.clock.Next()
		for _, b := range sets[i] {
			cl, err := bc.get(b)
			if err != nil {
				fail(i, b, err, true)
				continue
			}
			sp := c.rpcSpan(ctx, "SETV", b)
			calls = append(calls, sent{
				call:    cl.Send(csnet.Request{Op: csnet.OpSetV, Key: key, Value: values[i], Version: vers[i], ExpireAt: expireAt, Trace: sp.Context()}),
				key:     i,
				backend: b,
				sp:      sp,
			})
		}
	}
	lostTo := make([]uint64, len(keys)) // per key: newest StatusExists version (see setTTL)
	for i := range calls {
		s := &calls[i]
		resp, err := s.call.ResponseV()
		switch {
		case err != nil:
			fail(s.key, s.backend, err, true)
			s.sp.S.Err = true
		case resp.Status != csnet.StatusOK && resp.Status != csnet.StatusExists:
			fail(s.key, s.backend, statusErr(resp), false)
			s.sp.S.Err = true
		default:
			c.clock.Observe(resp.Version) // advance past a newer resident version (see Set)
			if resp.Status == csnet.StatusExists && resp.Version > lostTo[s.key] {
				lostTo[s.key] = resp.Version
			}
			acked[s.key] = append(acked[s.key], s.backend)
		}
		s.sp.Finish()
	}
	var pe *PartialWriteError
	for i := range keys {
		q := c.quorumFor(len(sets[i]))
		switch {
		case len(sets[i]) == 0 || len(acked[i]) < q:
			c.cacheSupersede(keys[i], vers[i])
			if pe == nil {
				pe = &PartialWriteError{
					Op: "mset", Key: keys[i], Replicas: sets[i],
					Acked: acked[i], Hinted: hinted[i], Quorum: q, Causes: causes[i],
				}
			}
			pe.MissedKeys++
		case lostTo[i] > 0:
			c.cacheSupersede(keys[i], lostTo[i])
		default:
			c.cache.put(keys[i], store.Entry{Value: values[i], Version: vers[i], ExpireAt: expireAt})
		}
	}
	if pe != nil {
		distM.partialWrites.Inc()
		distM.quorumShort.Add(uint64(pe.MissedKeys))
		root.S.Err = true
		root.Finish()
		return pe
	}
	root.Finish()
	return nil
}

// MGet reads many keys as one pipelined batch per backend: each key is
// asked of its balancer-chosen first replica; keys that miss or error
// there fall back to the ordinary Get path (remaining replicas plus
// read-repair). The result maps each found key to its value; absent
// keys are simply not in the map. A non-nil error reports the first
// key whose full replica set failed, after the rest of the batch has
// completed.
func (c *Cluster) MGet(keys []string) (map[string][]byte, error) {
	defer distM.latMGet.ObserveSince(obs.StartTimer())
	bc := c.newBatchClients()
	ctx, root := c.startOp("mget")
	defer root.Finish()
	found := make(map[string][]byte, len(keys))
	type sent struct {
		call *csnet.Call
		key  int
		sp   trace.Active
	}
	calls := make([]sent, 0, len(keys))
	releases := make([]func(), 0, len(keys))
	defer func() { // the whole batch is in flight until collected
		for _, release := range releases {
			release()
		}
	}()
	var retry []int
	for i, key := range keys {
		if c.cache != nil {
			if e, hit := c.cache.get(key, cacheNow()); hit {
				distM.cacheHits.Inc()
				if !e.Tombstone {
					found[key] = e.Value
				}
				continue
			}
			distM.cacheMiss.Inc()
		}
		set := c.replicaSet(key)
		if len(set) == 0 {
			retry = append(retry, i) // Get reports the no-backends error
			continue
		}
		first, release := c.readPick(key, len(set))
		releases = append(releases, release)
		cl, err := bc.get(set[first])
		if err != nil {
			retry = append(retry, i)
			continue
		}
		sp := c.rpcSpan(ctx, "GETV", set[first])
		calls = append(calls, sent{call: cl.Send(csnet.Request{Op: csnet.OpGetV, Key: key, Trace: sp.Context()}), key: i, sp: sp})
	}
	var firstErr error
	for ci := range calls {
		s := &calls[ci]
		resp, err := s.call.ResponseV()
		switch {
		case err != nil:
			retry = append(retry, s.key)
			s.sp.S.Err = true
		case resp.Status == csnet.StatusOK:
			c.clock.Observe(resp.Version)
			found[keys[s.key]] = resp.Value
			c.cache.put(keys[s.key], store.Entry{Value: resp.Value, Version: resp.Version, ExpireAt: resp.ExpireAt})
		case resp.Status == csnet.StatusNotFound && c.rf > 1:
			// Another replica may still hold it (and want repair) — or
			// hold a copy staler than a tombstone seen here; the Get
			// fallback resolves both by version.
			c.clock.Observe(resp.Version) // a tombstone's version still orders our next write
			retry = append(retry, s.key)
		case resp.Status == csnet.StatusNotFound:
			// rf == 1: a miss on the only replica is a definitive miss.
			c.clock.Observe(resp.Version)
			if resp.Flags&csnet.FlagTombstone != 0 {
				c.cache.put(keys[s.key], store.Entry{Version: resp.Version, Tombstone: true, ExpireAt: resp.ExpireAt})
			}
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster mget %q: status %s: %s", keys[s.key], resp.Status, resp.Value)
			}
			s.sp.S.Err = true
		}
		s.sp.Finish()
	}
	for _, i := range retry {
		v, ok, err := c.Get(keys[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			found[keys[i]] = v
		}
	}
	return found, firstErr
}

// MDel removes many keys from their live replica sets with version-
// stamped tombstones, one pipelined batch per backend, queuing delete
// hints for replicas that were unreachable (see Del). It returns how
// many keys existed on at least one replica.
func (c *Cluster) MDel(keys []string) (int, error) {
	defer distM.latMDel.ObserveSince(obs.StartTimer())
	bc := c.newBatchClients()
	ctx, root := c.startOp("mdel")
	type sent struct {
		call    *csnet.Call
		key     int
		backend int
		sp      trace.Active
	}
	calls := make([]sent, 0, len(keys)*c.rf)
	vers := make([]uint64, len(keys))
	keyErr := make([]bool, len(keys))   // per key: some replica's fate is unknown
	lostTo := make([]uint64, len(keys)) // per key: newest StatusExists version (see setTTL)
	var firstErr error
	for i, key := range keys {
		vers[i] = c.clock.Next()
		for _, b := range c.replicaSet(key) {
			cl, err := bc.get(b)
			if err != nil {
				c.hint(b, key, hintEntry{del: true, ver: vers[i], tr: ctx})
				keyErr[i] = true
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: cluster mdel %q on backend %d: %w", key, b, err)
				}
				continue
			}
			sp := c.rpcSpan(ctx, "DELV", b)
			calls = append(calls, sent{
				call:    cl.Send(csnet.Request{Op: csnet.OpDelV, Key: key, Version: vers[i], Trace: sp.Context()}),
				key:     i,
				backend: b,
				sp:      sp,
			})
		}
	}
	existed := make([]bool, len(keys))
	for ci := range calls {
		s := &calls[ci]
		resp, err := s.call.ResponseV()
		if err != nil {
			c.hint(s.backend, keys[s.key], hintEntry{del: true, ver: vers[s.key], tr: ctx})
			keyErr[s.key] = true
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster mdel %q on backend %d: %w", keys[s.key], s.backend, err)
			}
			s.sp.S.Err = true
			s.sp.Finish()
			continue
		}
		if resp.Status != csnet.StatusOK && resp.Status != csnet.StatusNotFound && resp.Status != csnet.StatusExists {
			keyErr[s.key] = true
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster mdel %q on backend %d: %w", keys[s.key], s.backend, statusErr(resp))
			}
			s.sp.S.Err = true
			s.sp.Finish()
			continue
		}
		c.clock.Observe(resp.Version) // advance past a newer resident version (see Set)
		if resp.Status == csnet.StatusExists && resp.Version > lostTo[s.key] {
			lostTo[s.key] = resp.Version
		}
		if resp.Status == csnet.StatusOK {
			existed[s.key] = true
		}
		s.sp.Finish()
	}
	n := 0
	for _, e := range existed {
		if e {
			n++
		}
	}
	for i, key := range keys {
		switch {
		case keyErr[i]:
			c.cacheSupersede(key, vers[i])
		case lostTo[i] > 0:
			c.cacheSupersede(key, lostTo[i])
		default:
			c.cache.put(key, store.Entry{Version: vers[i], Tombstone: true})
		}
	}
	root.S.Err = firstErr != nil
	root.Finish()
	return n, firstErr
}

// Close stops the background rebalancer and releases every backend
// connection. Safe to call more than once.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.stop)
	})
	<-c.rebalanceDone // a rebalance pass in flight finishes first
	var first error
	for _, p := range c.pools {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clientPool holds the single multiplexed connection to one backend.
// The old many-connections pool is gone: pipelining made it redundant,
// since one muxed connection carries any number of concurrent requests.
// A transport failure poisons the connection (every caller on it fails
// fast) and the next get transparently redials.
type clientPool struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	cl *csnet.Client
}

// get returns the backend's shared client, dialing on first use or
// after the previous connection broke. A poisoned client is never
// handed out.
func (p *clientPool) get() (*csnet.Client, error) {
	p.mu.Lock()
	if p.cl != nil && !p.cl.Broken() {
		cl := p.cl
		p.mu.Unlock()
		return cl, nil
	}
	stale := p.cl
	p.cl = nil
	p.mu.Unlock()
	if stale != nil {
		// A broken connection being replaced — as opposed to the first
		// dial — is the redial the pool exists to absorb; count it.
		distM.poolRedials.Inc()
		stale.Close()
	}
	cl, err := csnet.Dial(p.addr, p.timeout) // dial outside the lock
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.cl != nil && !p.cl.Broken() {
		// Lost a concurrent redial race: the pool keeps exactly one
		// connection per backend, extras are closed.
		winner := p.cl
		p.mu.Unlock()
		cl.Close()
		return winner, nil
	}
	p.cl = cl
	p.mu.Unlock()
	return cl, nil
}

// close tears down the backend connection.
func (p *clientPool) close() error {
	p.mu.Lock()
	cl := p.cl
	p.cl = nil
	p.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}

package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pdcedu/internal/csnet"
)

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Addrs are the backend csnet.Server addresses (at least one).
	Addrs []string
	// Replication is the number of backends each key is written to
	// (default 1, capped at len(Addrs)).
	Replication int
	// Balancer spreads reads across a key's replica set; a key's read
	// slot is Pick(key) mod Replication. Nil defaults to primary-first
	// reads via the placement ring. Placement itself is always ring
	// based so Set and Get agree on where a key lives regardless of the
	// strategy plugged in here.
	Balancer Balancer
	// Vnodes is the virtual-node count of the placement ring (default 64).
	Vnodes int
	// Timeout bounds each backend round-trip (default 5s).
	Timeout time.Duration
	// PoolSize is the number of pooled connections per backend
	// (default 4); concurrent callers beyond it dial extra connections
	// that are closed instead of pooled when returned.
	PoolSize int
}

// Cluster shards one key space across several csnet backend servers: a
// consistent-hash ring places each key on Replication consecutive
// backends, writes go synchronously to every replica, and reads are
// spread over the replica set by the configured Balancer with
// read-repair backfilling replicas that missed a write.
type Cluster struct {
	ring     *ConsistentHash
	balancer Balancer
	rf       int
	pools    []*clientPool
}

// NewCluster connects a cluster router to the configured backends.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, errors.New("dist: cluster needs at least one backend address")
	}
	rf := cfg.Replication
	if rf < 1 {
		rf = 1
	}
	if rf > n {
		rf = n
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	poolSize := cfg.PoolSize
	if poolSize < 1 {
		poolSize = 4
	}
	c := &Cluster{
		ring:     NewConsistentHash(n, cfg.Vnodes),
		balancer: cfg.Balancer,
		rf:       rf,
		pools:    make([]*clientPool, n),
	}
	for i, addr := range cfg.Addrs {
		c.pools[i] = &clientPool{addr: addr, timeout: timeout, ch: make(chan *csnet.Client, poolSize)}
	}
	return c, nil
}

// Backends reports the number of backend servers.
func (c *Cluster) Backends() int { return len(c.pools) }

// Replication reports the effective replication factor.
func (c *Cluster) Replication() int { return c.rf }

// replicaSet returns the backends holding key: the ring primary and the
// next rf-1 backends clockwise by index.
func (c *Cluster) replicaSet(key string) []int {
	primary := c.ring.Pick(key)
	set := make([]int, c.rf)
	for i := range set {
		set[i] = (primary + i) % len(c.pools)
	}
	return set
}

// Set writes key to every replica synchronously (write-all), fanning
// the replica writes out in parallel so latency stays near one
// round-trip regardless of the replication factor. It fails if any
// replica write fails, so a nil return means the value is durable on
// the full replica set. Concurrent Sets of the same key race without
// versioning: callers that update one key from several writers should
// serialize those writers (the backends apply whichever write arrives
// last, independently per replica).
func (c *Cluster) Set(key string, value []byte) error {
	set := c.replicaSet(key)
	if len(set) == 1 {
		b := set[0]
		if err := c.pools[b].withClient(func(cl *csnet.Client) error {
			return cl.Set(key, value)
		}); err != nil {
			return fmt.Errorf("dist: cluster set %q on backend %d: %w", key, b, err)
		}
		return nil
	}
	errs := make([]error, len(set))
	var wg sync.WaitGroup
	for i, b := range set {
		i, b := i, b
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs[i] = c.pools[b].withClient(func(cl *csnet.Client) error {
				return cl.Set(key, value)
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("dist: cluster set %q on backend %d: %w", key, set[i], err)
		}
	}
	return nil
}

// Get reads key from its replica set. The Balancer picks the replica to
// try first; on a miss the remaining replicas are consulted, and when a
// later replica has the value, read-repair writes it back to every
// replica that missed. A (nil, false, nil) return means no replica has
// the key.
func (c *Cluster) Get(key string) (value []byte, ok bool, err error) {
	set := c.replicaSet(key)
	first := 0
	if c.balancer != nil {
		pick := c.balancer.Pick(key)
		defer c.balancer.Done(pick)
		first = ((pick % c.rf) + c.rf) % c.rf
	}
	var missed []int
	var lastErr error
	for i := 0; i < len(set); i++ {
		b := set[(first+i)%len(set)]
		var v []byte
		var found bool
		err := c.pools[b].withClient(func(cl *csnet.Client) error {
			var err error
			v, found, err = cl.Get(key)
			return err
		})
		if err != nil {
			lastErr = err
			continue
		}
		if found {
			c.readRepair(key, v, missed)
			return v, true, nil
		}
		missed = append(missed, b)
	}
	if lastErr != nil {
		return nil, false, fmt.Errorf("dist: cluster get %q: %w", key, lastErr)
	}
	return nil, false, nil
}

// readRepair backfills value onto replicas that returned a miss. The
// backfill is set-if-absent so a repair can only fill a hole, never
// overwrite a newer write that landed between the miss and the repair;
// failures are ignored (the next read retries the repair).
func (c *Cluster) readRepair(key string, value []byte, missed []int) {
	for _, b := range missed {
		_ = c.pools[b].withClient(func(cl *csnet.Client) error {
			_, err := cl.SetNX(key, value)
			return err
		})
	}
}

// Del removes key from every replica; ok reports whether any replica
// had it.
func (c *Cluster) Del(key string) (ok bool, err error) {
	for _, b := range c.replicaSet(key) {
		var existed bool
		e := c.pools[b].withClient(func(cl *csnet.Client) error {
			var err error
			existed, err = cl.Del(key)
			return err
		})
		if e != nil {
			return ok, fmt.Errorf("dist: cluster del %q on backend %d: %w", key, b, e)
		}
		ok = ok || existed
	}
	return ok, nil
}

// Close releases every pooled connection.
func (c *Cluster) Close() error {
	var first error
	for _, p := range c.pools {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clientPool is a lazily-filled pool of csnet clients for one backend.
type clientPool struct {
	addr    string
	timeout time.Duration
	ch      chan *csnet.Client
}

// withClient runs fn with a pooled (or freshly dialed) client. The
// client returns to the pool on success and is discarded on error, so a
// broken connection is never reused.
func (p *clientPool) withClient(fn func(*csnet.Client) error) error {
	var cl *csnet.Client
	select {
	case cl = <-p.ch:
	default:
		var err error
		cl, err = csnet.Dial(p.addr, p.timeout)
		if err != nil {
			return err
		}
	}
	if err := fn(cl); err != nil {
		cl.Close()
		return err
	}
	select {
	case p.ch <- cl:
	default:
		cl.Close() // pool full
	}
	return nil
}

// close drains and closes all pooled connections.
func (p *clientPool) close() error {
	var first error
	for {
		select {
		case cl := <-p.ch:
			if err := cl.Close(); err != nil && first == nil {
				first = err
			}
		default:
			return first
		}
	}
}

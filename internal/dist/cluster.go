package dist

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pdcedu/internal/csnet"
)

// ClusterConfig configures a Cluster.
type ClusterConfig struct {
	// Addrs are the backend csnet.Server addresses (at least one).
	Addrs []string
	// Replication is the number of backends each key is written to
	// (default 1, capped at len(Addrs)).
	Replication int
	// Balancer spreads reads across a key's replica set; a key's read
	// slot is Pick(key) mod Replication. Nil defaults to primary-first
	// reads via the placement ring. Placement itself is always ring
	// based so Set and Get agree on where a key lives regardless of the
	// strategy plugged in here.
	Balancer Balancer
	// Vnodes is the virtual-node count of the placement ring (default 64).
	Vnodes int
	// Timeout bounds each backend round-trip (default 5s).
	Timeout time.Duration
}

// Cluster shards one key space across several csnet backend servers: a
// consistent-hash ring places each key on Replication consecutive
// backends, writes go synchronously to every replica, and reads are
// spread over the replica set by the configured Balancer with
// read-repair backfilling replicas that missed a write.
//
// Transport: one pipelined, multiplexed connection per backend, shared
// by all concurrent callers. Replica fan-out and the batch APIs
// (MSet/MGet/MDel) issue asynchronous sends and then collect, so a
// replicated write costs one round-trip of latency and a 100-key batch
// costs one pipelined burst per backend instead of 100 lock-step round
// trips.
type Cluster struct {
	ring     *ConsistentHash
	balancer Balancer
	rf       int
	pools    []*clientPool
}

// NewCluster connects a cluster router to the configured backends.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	n := len(cfg.Addrs)
	if n == 0 {
		return nil, errors.New("dist: cluster needs at least one backend address")
	}
	rf := cfg.Replication
	if rf < 1 {
		rf = 1
	}
	if rf > n {
		rf = n
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	c := &Cluster{
		ring:     NewConsistentHash(n, cfg.Vnodes),
		balancer: cfg.Balancer,
		rf:       rf,
		pools:    make([]*clientPool, n),
	}
	for i, addr := range cfg.Addrs {
		c.pools[i] = &clientPool{addr: addr, timeout: timeout}
	}
	return c, nil
}

// Backends reports the number of backend servers.
func (c *Cluster) Backends() int { return len(c.pools) }

// Replication reports the effective replication factor.
func (c *Cluster) Replication() int { return c.rf }

// replicaSet returns the backends holding key: the ring primary and the
// next rf-1 backends clockwise by index.
func (c *Cluster) replicaSet(key string) []int {
	primary := c.ring.Pick(key)
	set := make([]int, c.rf)
	for i := range set {
		set[i] = (primary + i) % len(c.pools)
	}
	return set
}

// waitStatus collects an async call, folding unexpected statuses into
// errors; want2 may be 0 when only one status is acceptable.
func waitStatus(call *csnet.Call, want, want2 csnet.Status) (csnet.Status, error) {
	resp, err := call.Response()
	if err != nil {
		return 0, err
	}
	if resp.Status != want && resp.Status != want2 {
		return resp.Status, fmt.Errorf("status %s: %s", resp.Status, resp.Value)
	}
	return resp.Status, nil
}

// Set writes key to every replica synchronously (write-all): the sends
// are pipelined onto each replica's multiplexed connection and then
// collected, so latency stays near one round-trip regardless of the
// replication factor — no per-call goroutine fan-out. It fails if any
// replica write fails, so a nil return means the value is durable on
// the full replica set. Concurrent Sets of the same key race without
// versioning: callers that update one key from several writers should
// serialize those writers (the backends apply whichever write arrives
// last, independently per replica).
func (c *Cluster) Set(key string, value []byte) error {
	set := c.replicaSet(key)
	calls := make([]*csnet.Call, len(set))
	var firstErr error
	for i, b := range set {
		cl, err := c.pools[b].get()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster set %q on backend %d: %w", key, b, err)
			}
			continue
		}
		calls[i] = cl.Send(csnet.Request{Op: csnet.OpSet, Key: key, Value: value})
	}
	for i, call := range calls {
		if call == nil {
			continue
		}
		if _, err := waitStatus(call, csnet.StatusOK, 0); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dist: cluster set %q on backend %d: %w", key, set[i], err)
		}
	}
	return firstErr
}

// readPick returns the index into a key's replica set to try first,
// consulting the Balancer when one is configured. The returned release
// must be called when the read completes, so load-aware strategies
// (least-loaded, power-of-two) see genuinely in-flight requests rather
// than counters that zero out immediately.
func (c *Cluster) readPick(key string) (first int, release func()) {
	if c.balancer == nil {
		return 0, func() {}
	}
	pick := c.balancer.Pick(key)
	return ((pick % c.rf) + c.rf) % c.rf, func() { c.balancer.Done(pick) }
}

// Get reads key from its replica set. The Balancer picks the replica to
// try first; on a miss the remaining replicas are consulted, and when a
// later replica has the value, read-repair writes it back to every
// replica that missed. A (nil, false, nil) return means no replica has
// the key.
func (c *Cluster) Get(key string) (value []byte, ok bool, err error) {
	set := c.replicaSet(key)
	first, release := c.readPick(key)
	defer release()
	var missed []int
	var lastErr error
	for i := 0; i < len(set); i++ {
		b := set[(first+i)%len(set)]
		cl, err := c.pools[b].get()
		if err != nil {
			lastErr = err
			continue
		}
		v, found, err := cl.Get(key)
		if err != nil {
			lastErr = err
			continue
		}
		if found {
			c.readRepair(key, v, missed)
			return v, true, nil
		}
		missed = append(missed, b)
	}
	if lastErr != nil {
		return nil, false, fmt.Errorf("dist: cluster get %q: %w", key, lastErr)
	}
	return nil, false, nil
}

// readRepair backfills value onto replicas that returned a miss, as one
// pipelined burst. The backfill is set-if-absent so a repair can only
// fill a hole, never overwrite a newer write that landed between the
// miss and the repair; failures are ignored (the next read retries the
// repair).
func (c *Cluster) readRepair(key string, value []byte, missed []int) {
	calls := make([]*csnet.Call, 0, len(missed))
	for _, b := range missed {
		cl, err := c.pools[b].get()
		if err != nil {
			continue
		}
		calls = append(calls, cl.Send(csnet.Request{Op: csnet.OpSetNX, Key: key, Value: value}))
	}
	for _, call := range calls {
		_, _ = call.Response()
	}
}

// Del removes key from every replica, fanning the deletes out as
// pipelined async sends collected together (parallel across replicas,
// like Set); ok reports whether any replica had it.
func (c *Cluster) Del(key string) (ok bool, err error) {
	set := c.replicaSet(key)
	calls := make([]*csnet.Call, len(set))
	var firstErr error
	for i, b := range set {
		cl, cerr := c.pools[b].get()
		if cerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster del %q on backend %d: %w", key, b, cerr)
			}
			continue
		}
		calls[i] = cl.Send(csnet.Request{Op: csnet.OpDel, Key: key})
	}
	for i, call := range calls {
		if call == nil {
			continue
		}
		st, cerr := waitStatus(call, csnet.StatusOK, csnet.StatusNotFound)
		if cerr != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster del %q on backend %d: %w", key, set[i], cerr)
			}
			continue
		}
		ok = ok || st == csnet.StatusOK
	}
	return ok, firstErr
}

// batchClients lazily resolves one pooled client per backend for a
// batch operation, caching dial failures so a dead backend is reported
// once instead of re-dialed per key.
type batchClients struct {
	c      *Cluster
	cls    []*csnet.Client
	errs   []error
	dialed []bool
}

func (c *Cluster) newBatchClients() *batchClients {
	n := len(c.pools)
	return &batchClients{c: c, cls: make([]*csnet.Client, n), errs: make([]error, n), dialed: make([]bool, n)}
}

func (bc *batchClients) get(b int) (*csnet.Client, error) {
	if !bc.dialed[b] {
		bc.dialed[b] = true
		bc.cls[b], bc.errs[b] = bc.c.pools[b].get()
	}
	return bc.cls[b], bc.errs[b]
}

// MSet writes many key/value pairs with write-all replication: keys are
// grouped by replica set and each backend receives its whole share as
// one pipelined batch, so the wall-clock cost is one burst per backend
// rather than one round-trip per key per replica. Like Set, it fails if
// any replica write fails (the remaining writes still complete, so a
// failed MSet leaves the successfully-written keys durable).
func (c *Cluster) MSet(keys []string, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("dist: cluster mset: %d keys but %d values", len(keys), len(values))
	}
	bc := c.newBatchClients()
	type sent struct {
		call    *csnet.Call
		key     int
		backend int
	}
	calls := make([]sent, 0, len(keys)*c.rf)
	var firstErr error
	for i, key := range keys {
		for _, b := range c.replicaSet(key) {
			cl, err := bc.get(b)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: cluster mset %q on backend %d: %w", key, b, err)
				}
				continue
			}
			calls = append(calls, sent{
				call:    cl.Send(csnet.Request{Op: csnet.OpSet, Key: key, Value: values[i]}),
				key:     i,
				backend: b,
			})
		}
	}
	for _, s := range calls {
		if _, err := waitStatus(s.call, csnet.StatusOK, 0); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("dist: cluster mset %q on backend %d: %w", keys[s.key], s.backend, err)
		}
	}
	return firstErr
}

// MGet reads many keys as one pipelined batch per backend: each key is
// asked of its balancer-chosen first replica; keys that miss or error
// there fall back to the ordinary Get path (remaining replicas plus
// read-repair). The result maps each found key to its value; absent
// keys are simply not in the map. A non-nil error reports the first
// key whose full replica set failed, after the rest of the batch has
// completed.
func (c *Cluster) MGet(keys []string) (map[string][]byte, error) {
	bc := c.newBatchClients()
	found := make(map[string][]byte, len(keys))
	type sent struct {
		call *csnet.Call
		key  int
	}
	calls := make([]sent, 0, len(keys))
	releases := make([]func(), 0, len(keys))
	defer func() { // the whole batch is in flight until collected
		for _, release := range releases {
			release()
		}
	}()
	var retry []int
	for i, key := range keys {
		set := c.replicaSet(key)
		first, release := c.readPick(key)
		releases = append(releases, release)
		cl, err := bc.get(set[first])
		if err != nil {
			retry = append(retry, i)
			continue
		}
		calls = append(calls, sent{call: cl.Send(csnet.Request{Op: csnet.OpGet, Key: key}), key: i})
	}
	var firstErr error
	for _, s := range calls {
		resp, err := s.call.Response()
		switch {
		case err != nil:
			retry = append(retry, s.key)
		case resp.Status == csnet.StatusOK:
			found[keys[s.key]] = resp.Value
		case resp.Status == csnet.StatusNotFound && c.rf > 1:
			// Another replica may still hold it (and want repair).
			retry = append(retry, s.key)
		case resp.Status == csnet.StatusNotFound:
			// rf == 1: a miss on the only replica is a definitive miss.
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster mget %q: status %s: %s", keys[s.key], resp.Status, resp.Value)
			}
		}
	}
	for _, i := range retry {
		v, ok, err := c.Get(keys[i])
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if ok {
			found[keys[i]] = v
		}
	}
	return found, firstErr
}

// MDel removes many keys from their full replica sets, one pipelined
// batch per backend. It returns how many keys existed on at least one
// replica.
func (c *Cluster) MDel(keys []string) (int, error) {
	bc := c.newBatchClients()
	type sent struct {
		call    *csnet.Call
		key     int
		backend int
	}
	calls := make([]sent, 0, len(keys)*c.rf)
	var firstErr error
	for i, key := range keys {
		for _, b := range c.replicaSet(key) {
			cl, err := bc.get(b)
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("dist: cluster mdel %q on backend %d: %w", key, b, err)
				}
				continue
			}
			calls = append(calls, sent{
				call:    cl.Send(csnet.Request{Op: csnet.OpDel, Key: key}),
				key:     i,
				backend: b,
			})
		}
	}
	existed := make([]bool, len(keys))
	for _, s := range calls {
		st, err := waitStatus(s.call, csnet.StatusOK, csnet.StatusNotFound)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster mdel %q on backend %d: %w", keys[s.key], s.backend, err)
			}
			continue
		}
		if st == csnet.StatusOK {
			existed[s.key] = true
		}
	}
	n := 0
	for _, e := range existed {
		if e {
			n++
		}
	}
	return n, firstErr
}

// Close releases every backend connection.
func (c *Cluster) Close() error {
	var first error
	for _, p := range c.pools {
		if err := p.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// clientPool holds the single multiplexed connection to one backend.
// The old many-connections pool is gone: pipelining made it redundant,
// since one muxed connection carries any number of concurrent requests.
// A transport failure poisons the connection (every caller on it fails
// fast) and the next get transparently redials.
type clientPool struct {
	addr    string
	timeout time.Duration

	mu sync.Mutex
	cl *csnet.Client
}

// get returns the backend's shared client, dialing on first use or
// after the previous connection broke. A poisoned client is never
// handed out.
func (p *clientPool) get() (*csnet.Client, error) {
	p.mu.Lock()
	if p.cl != nil && !p.cl.Broken() {
		cl := p.cl
		p.mu.Unlock()
		return cl, nil
	}
	stale := p.cl
	p.cl = nil
	p.mu.Unlock()
	if stale != nil {
		stale.Close()
	}
	cl, err := csnet.Dial(p.addr, p.timeout) // dial outside the lock
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	if p.cl != nil && !p.cl.Broken() {
		// Lost a concurrent redial race: the pool keeps exactly one
		// connection per backend, extras are closed.
		winner := p.cl
		p.mu.Unlock()
		cl.Close()
		return winner, nil
	}
	p.cl = cl
	p.mu.Unlock()
	return cl, nil
}

// close tears down the backend connection.
func (p *clientPool) close() error {
	p.mu.Lock()
	cl := p.cl
	p.cl = nil
	p.mu.Unlock()
	if cl != nil {
		return cl.Close()
	}
	return nil
}

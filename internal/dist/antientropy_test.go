package dist

import (
	"fmt"
	"testing"
	"time"

	"pdcedu/internal/csnet"
	"pdcedu/internal/store"
)

// startKVCluster boots n KV backends (optionally with custom engines)
// and a cluster over them.
func startKVCluster(t *testing.T, n int, cfg ClusterConfig, mkEngine func(i int) store.Engine) ([]*csnet.KVHandler, *Cluster) {
	t.Helper()
	kvs := make([]*csnet.KVHandler, n)
	addrs := make([]string, n)
	for i := range kvs {
		if mkEngine != nil {
			kvs[i] = csnet.NewKVHandlerOn(mkEngine(i))
		} else {
			kvs[i] = csnet.NewKVHandler()
		}
		srv := csnet.NewServer(kvs[i], 64)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = addr
		t.Cleanup(srv.Shutdown)
	}
	cfg.Addrs = addrs
	if cfg.Timeout == 0 {
		cfg.Timeout = 2 * time.Second
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return kvs, c
}

// TestAntiEntropySteadyStateFrames is the acceptance pin for the
// tentpole: one anti-entropy pass over a converged 10k-key cluster
// exchanges O(backends) digest frames and zero per-key listings, and
// after a small divergence the listing cost tracks the diff, not the
// keyspace.
func TestAntiEntropySteadyStateFrames(t *testing.T) {
	const n, keys = 3, 10_000
	kvs, c := startKVCluster(t, n, ClusterConfig{Replication: n, WriteQuorum: n}, nil)
	ks := make([]string, keys)
	vs := make([][]byte, keys)
	for i := range ks {
		ks[i] = fmt.Sprintf("outcome-%d", i)
		vs[i] = []byte(fmt.Sprintf("score-%d", i%100))
	}
	if err := c.MSet(ks, vs); err != nil {
		t.Fatal(err)
	}

	// First pass settles any noise; the second is the steady state.
	if _, err := c.Rebalance(); err != nil {
		t.Fatal(err)
	}
	copied, err := c.Rebalance()
	if err != nil || copied != 0 {
		t.Fatalf("steady-state pass = %d %v, want 0 nil", copied, err)
	}
	st := c.AntiEntropyStats()
	if st.DigestFrames != n {
		t.Errorf("steady-state digest frames = %d, want %d (one root exchange per backend)", st.DigestFrames, n)
	}
	if st.ListingFrames != 0 || st.KeysListed != 0 || st.ValueFetches != 0 {
		t.Errorf("steady-state pass listed keys: %+v", st)
	}

	// Damage a handful of keys on one backend: the repair pass must
	// list only the divergent buckets — far below the keyspace.
	const holes = 5
	for i := 0; i < holes; i++ {
		kvs[1].Engine().Purge(ks[i*17])
	}
	copied, err = c.Rebalance()
	if err != nil || copied != holes {
		t.Fatalf("repair pass = %d %v, want %d nil", copied, err, holes)
	}
	st = c.AntiEntropyStats()
	if st.BucketsDiffed == 0 || st.BucketsDiffed > holes {
		t.Errorf("repair pass diffed %d buckets, want 1..%d", st.BucketsDiffed, holes)
	}
	if st.KeysListed == 0 || st.KeysListed > keys/10 {
		t.Errorf("repair pass listed %d keys for %d holes over %d keys — cost should track the diff", st.KeysListed, holes, keys)
	}
	for i := 0; i < holes; i++ {
		if _, ok := kvs[1].Engine().Get(ks[i*17]); !ok {
			t.Fatalf("hole %d not repaired", i)
		}
	}
}

// TestAntiEntropySameVersionSplitConverges pins the divergence class
// the digests exist for: two replicas holding the same version with
// different bytes converge to the Entry.Wins (larger) value.
func TestAntiEntropySameVersionSplitConverges(t *testing.T) {
	kvs, _, addrs, c := startVersionedPair(t)
	cl0, err := csnet.Dial(addrs[0], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl0.Close()
	cl1, err := csnet.Dial(addrs[1], time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl1.Close()
	if _, _, err := cl0.SetV("k", []byte("aaa"), 100); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl1.SetV("k", []byte("zzz"), 100); err != nil {
		t.Fatal(err)
	}
	copied, err := c.Rebalance()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if copied == 0 {
		t.Fatal("split went unstreamed — the divergence the old listings rebalancer could not see")
	}
	if st := c.AntiEntropyStats(); st.ValueFetches < 2 {
		t.Errorf("stats = %+v, want both split copies fetched", st)
	}
	for b, kv := range kvs {
		e, ok := kv.Engine().Get("k")
		if !ok || string(e.Value) != "zzz" || e.Version != 100 {
			t.Fatalf("backend %d after split repair = %+v %v, want zzz@100", b, e, ok)
		}
	}
	// Converged: the next pass is digest-only.
	if copied, err = c.Rebalance(); err != nil || copied != 0 {
		t.Fatalf("steady-state pass = %d %v, want 0 nil", copied, err)
	}
	if st := c.AntiEntropyStats(); st.ListingFrames != 0 {
		t.Errorf("steady-state pass still listing: %+v", st)
	}
}

// TestRebalanceGeometryFallback pins the mismatch path: backends whose
// engines were built with a different Merkle bucket count cannot be
// tree-diffed, so the pass falls back to full listings — slower, still
// convergent.
func TestRebalanceGeometryFallback(t *testing.T) {
	kvs, c := startKVCluster(t, 2, ClusterConfig{Replication: 2, WriteQuorum: 1},
		func(int) store.Engine { return store.NewSharded(store.Options{Shards: 8, MerkleBuckets: 64}) })
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	kvs[1].Engine().Purge("k")
	copied, err := c.Rebalance()
	if err == nil {
		t.Fatal("geometry mismatch unreported")
	}
	if copied != 1 {
		t.Fatalf("fallback streamed %d, want 1", copied)
	}
	if st := c.AntiEntropyStats(); !st.FellBack {
		t.Errorf("stats = %+v, want FellBack", st)
	}
	if _, ok := kvs[1].Engine().Get("k"); !ok {
		t.Fatal("fallback did not repair the hole")
	}
}

// TestClusterTTLReplicatedMortal pins the TTL plumb: SetTTL/MSetTTL
// stamp one absolute expiry into every replica's copy — including
// copies delivered by hint replay — so no replica holds an immortal
// version of a mortal key.
func TestClusterTTLReplicatedMortal(t *testing.T) {
	kvs, srvs, addrs, c := startVersionedPair(t)
	if err := c.SetTTL("session", []byte("tok"), time.Hour); err != nil {
		t.Fatal(err)
	}
	if err := c.MSetTTL([]string{"m1", "m2"}, [][]byte{[]byte("a"), []byte("b")}, time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"session", "m1", "m2"} {
		var exps [2]int64
		for b, kv := range kvs {
			e, ok := kv.Engine().Load(key)
			if !ok || e.ExpireAt == 0 {
				t.Fatalf("backend %d: %q = %+v %v, want a mortal copy", b, key, e, ok)
			}
			exps[b] = e.ExpireAt
		}
		if exps[0] != exps[1] {
			t.Fatalf("%q replicas disagree on expiry: %d vs %d", key, exps[0], exps[1])
		}
	}

	// A TTL'd write hinted past an outage must replay mortal too.
	srvs[1].Shutdown()
	if err := c.SetTTL("hinted", []byte("tok"), time.Hour); err != nil {
		t.Fatalf("degraded SetTTL: %v", err)
	}
	srvs[1] = csnet.NewServer(kvs[1], 16)
	if _, err := srvs[1].Start(addrs[1]); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srvs[1].Shutdown)
	c.MarkDown(1)
	c.MarkUp(1)
	if got := c.Hints(1); got != 0 {
		t.Fatalf("Hints(1) = %d after replay, want 0", got)
	}
	e, ok := kvs[1].Engine().Load("hinted")
	if !ok || e.ExpireAt == 0 {
		t.Fatalf("hint-replayed copy = %+v %v, want mortal", e, ok)
	}

	// End to end: a short TTL actually expires at the cluster API.
	if err := c.SetTTL("blink", []byte("x"), 50*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, ok, err := c.Get("blink")
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("TTL'd key still readable 5s past its expiry")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReadRepairKeepsTombstoneExpiry pins the Get path fix that rides
// with expiry tombstones: the tombstone a miss repairs onto a stale
// holder must carry its ExpireAt, or the holder would age it from the
// (older) write time and could GC it before its own copy had expired.
func TestReadRepairKeepsTombstoneExpiry(t *testing.T) {
	kvs, _, _, c := startVersionedPair(t)
	// Find a key whose first replica is backend 0 (balancer-less Get
	// order), so the Get sees the tombstone before the stale value.
	key := ""
	for i := 0; i < 256; i++ {
		k := fmt.Sprintf("exp-probe-%d", i)
		if set := c.replicaSet(k); len(set) == 2 && set[0] == 0 {
			key = k
			break
		}
	}
	if key == "" {
		t.Fatal("no key with backend 0 first in 256 probes")
	}
	exp := time.Now().Add(-time.Minute).UnixNano()
	ver := kvs[0].Engine().Clock().Next()
	kvs[0].Engine().Merge(key, store.Entry{Value: []byte("v"), Version: ver, ExpireAt: exp})
	kvs[0].Engine().Get(key) // expire into a tombstone
	kvs[1].Engine().Merge(key, store.Entry{Value: []byte("zombie"), Version: ver - 1})
	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("Get = %v %v, want miss", ok, err)
	}
	repaired, ok := kvs[1].Engine().Load(key)
	if !ok || !repaired.Tombstone || repaired.Version != ver || repaired.ExpireAt != exp {
		t.Fatalf("repaired tombstone = %+v %v, want tombstone@%d with ExpireAt %d", repaired, ok, ver, exp)
	}
}

// TestAntiEntropyExpiredImmortalConverges pins the expiry leg of the
// chaos classes deterministically: one replica's copy expired into a
// tombstone, the other still holds the same version immortal — the
// cluster must converge to deleted, never resurrect.
func TestAntiEntropyExpiredImmortalConverges(t *testing.T) {
	kvs, _, _, c := startVersionedPair(t)
	ver := kvs[0].Engine().Clock().Next()
	// Backend 0: mortal copy, already expired into a tombstone.
	kvs[0].Engine().Merge("k", store.Entry{Value: []byte("v"), Version: ver, ExpireAt: time.Now().Add(-time.Minute).UnixNano()})
	if _, ok := kvs[0].Engine().Get("k"); ok {
		t.Fatal("expired copy readable")
	}
	// Backend 1: the same write delivered without its expiry (the
	// pre-fix hint replay could do this).
	kvs[1].Engine().Merge("k", store.Entry{Value: []byte("v"), Version: ver})
	if _, err := c.Rebalance(); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	for b, kv := range kvs {
		if _, ok := kv.Engine().Get("k"); ok {
			t.Fatalf("backend %d resurrected an expired key", b)
		}
	}
	if v, ok, err := c.Get("k"); err != nil || ok {
		t.Fatalf("cluster Get = %q %v %v, want miss", v, ok, err)
	}
}

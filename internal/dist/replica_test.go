package dist

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestReplicatedKVSequential(t *testing.T) {
	r, err := NewReplicatedKV(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(1, "grade", "A"); err != nil {
		t.Fatal(err)
	}
	// A sequential write is visible at every replica immediately.
	for rep := 0; rep < 3; rep++ {
		v, ok, err := r.Read(rep, "grade")
		if err != nil || !ok || v != "A" {
			t.Fatalf("replica %d read = %q %v %v, want \"A\" true nil", rep, v, ok, err)
		}
	}
	if d := r.Divergent(); d != nil {
		t.Errorf("sequential store divergent = %v, want nil", d)
	}
}

func TestReplicatedKVEventualConvergence(t *testing.T) {
	r, err := NewReplicatedKV(3, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Write(0, "grade", "B+"); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(2, "grade", "A-"); err != nil {
		t.Fatal(err)
	}
	if err := r.Write(1, "units", "3"); err != nil {
		t.Fatal(err)
	}
	// Before gossip: replica 1 has no grade, replicas 0 and 2 disagree,
	// and units exists only at replica 1.
	if _, ok, _ := r.Read(1, "grade"); ok {
		t.Error("replica 1 sees a grade before gossip")
	}
	if d := r.Divergent(); !reflect.DeepEqual(d, []string{"grade", "units"}) {
		t.Errorf("Divergent = %v, want [grade units]", d)
	}
	r.Gossip()
	// Last writer wins: the replica-2 write of "A-" is the newest grade.
	for rep := 0; rep < 3; rep++ {
		v, ok, err := r.Read(rep, "grade")
		if err != nil || !ok || v != "A-" {
			t.Fatalf("after gossip replica %d grade = %q %v %v, want \"A-\"", rep, v, ok, err)
		}
		if v, ok, _ := r.Read(rep, "units"); !ok || v != "3" {
			t.Fatalf("after gossip replica %d units = %q %v, want \"3\"", rep, v, ok)
		}
	}
	if d := r.Divergent(); d != nil {
		t.Errorf("Divergent after gossip = %v, want nil", d)
	}
}

func TestReplicatedKVGossipIdempotent(t *testing.T) {
	r, _ := NewReplicatedKV(2, false)
	_ = r.Write(0, "k", "v1")
	r.Gossip()
	_ = r.Write(1, "k", "v2")
	r.Gossip()
	r.Gossip()
	for rep := 0; rep < 2; rep++ {
		if v, _, _ := r.Read(rep, "k"); v != "v2" {
			t.Errorf("replica %d = %q, want the later write v2", rep, v)
		}
	}
}

func TestReplicatedKVErrors(t *testing.T) {
	if _, err := NewReplicatedKV(0, true); err == nil {
		t.Error("NewReplicatedKV(0) should fail")
	}
	r, _ := NewReplicatedKV(2, false)
	if err := r.Write(2, "k", "v"); err == nil {
		t.Error("Write to replica 2 of 2 should fail")
	}
	if _, _, err := r.Read(-1, "k"); err == nil {
		t.Error("Read at replica -1 should fail")
	}
	if r.Replicas() != 2 || r.Sequential() {
		t.Errorf("accessors: replicas=%d sequential=%v", r.Replicas(), r.Sequential())
	}
}

// TestReplicatedKVConcurrent drives concurrent writers at distinct
// replicas plus a gossiping goroutine; must be race-clean and converge.
func TestReplicatedKVConcurrent(t *testing.T) {
	const n = 4
	r, _ := NewReplicatedKV(n, false)
	var wg sync.WaitGroup
	for rep := 0; rep < n; rep++ {
		rep := rep
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := r.Write(rep, fmt.Sprintf("key-%d", i%10), fmt.Sprintf("r%d-%d", rep, i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r.Gossip()
		}
	}()
	wg.Wait()
	r.Gossip()
	if d := r.Divergent(); d != nil {
		t.Errorf("still divergent after final gossip: %v", d)
	}
}

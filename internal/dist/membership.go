package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pdcedu/internal/csnet"
	"pdcedu/internal/member"
	"pdcedu/internal/obs"
	"pdcedu/internal/trace"
)

// PartialWriteError reports a replicated write that reached fewer live
// replicas than the write quorum. It lists exactly which backends
// acknowledged, which had hints queued for later replay, and why the
// others failed, so a caller can distinguish "durable on a minority,
// retry later" from "rejected outright".
type PartialWriteError struct {
	// Op is the cluster operation ("set" or "mset").
	Op string
	// Key is the key that missed quorum (for MSet, the first such key).
	Key string
	// Replicas is the key's live replica set at write time.
	Replicas []int
	// Acked lists the backends that acknowledged the write.
	Acked []int
	// Hinted lists the backends that were unreachable and had the write
	// queued as a hint for replay when they rejoin.
	Hinted []int
	// Quorum is the number of acks the write needed.
	Quorum int
	// MissedKeys is how many keys of an MSet missed quorum (1 for Set).
	MissedKeys int
	// Causes maps each failed backend to its error.
	Causes map[int]error
}

// Unwrap exposes the per-backend causes, so errors.Is and errors.As
// see through a partial write to what actually failed — in particular
// errors.Is(err, csnet.ErrBusy) identifies a write that missed quorum
// because replicas shed it under admission control, which is worth a
// backoff-and-retry where a hard rejection is not.
func (e *PartialWriteError) Unwrap() []error {
	if len(e.Causes) == 0 {
		return nil
	}
	errs := make([]error, 0, len(e.Causes))
	for _, err := range e.Causes {
		errs = append(errs, err)
	}
	return errs
}

// Error implements error.
func (e *PartialWriteError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist: cluster %s %q: %d/%d acks (quorum %d)",
		e.Op, e.Key, len(e.Acked), len(e.Replicas), e.Quorum)
	if e.MissedKeys > 1 {
		fmt.Fprintf(&b, "; %d keys under quorum", e.MissedKeys)
	}
	if len(e.Hinted) > 0 {
		fmt.Fprintf(&b, "; hinted %v", e.Hinted)
	}
	if len(e.Causes) > 0 {
		backends := make([]int, 0, len(e.Causes))
		for n := range e.Causes {
			backends = append(backends, n)
		}
		sort.Ints(backends)
		for _, n := range backends {
			fmt.Fprintf(&b, "; backend %d: %v", n, e.Causes[n])
		}
	}
	return b.String()
}

// maxHintsPerNode caps each down backend's hint queue: past it, new
// hints for keys not already queued are dropped (counted by HintDrops)
// and the rebalancer is left to converge the backend when it returns.
// With version-aware merge a dropped hint costs only convergence
// latency, never correctness: the rebalancer streams the newer entry
// (or tombstone) to the rejoined backend, and a stale copy cannot win.
const maxHintsPerNode = 8192

// hintEntry is one queued write awaiting replay: the newest value (or
// tombstone) the unreachable backend missed, carrying the version the
// coordinator stamped so the replay merges exactly as the original
// write would have. The full-geometry "second ring" that used to keep
// hints current across a whole outage is gone — a stale hint now loses
// its merge by version instead of needing to be prevented, and the
// version-aware rebalancer converges whatever the hints missed.
type hintEntry struct {
	val []byte
	ver uint64
	exp int64 // ExpireAt of a TTL'd write, so a replayed hint stays mortal
	del bool
	tr  trace.Context // trace of the write that queued the hint, so the replay joins it
}

// hintLocked queues e for backend b under key, superseding a queued
// hint for the same key only when e is at least as new — the queue
// holds the newest missed operation per key and can never be
// downgraded by an older write's failure arriving late. Caller holds
// c.mu.
func (c *Cluster) hintLocked(b int, key string, e hintEntry) {
	if c.hints[b] == nil {
		c.hints[b] = map[string]hintEntry{}
	}
	cur, queued := c.hints[b][key]
	if !queued && len(c.hints[b]) >= maxHintsPerNode {
		c.hintDrops++
		distM.hintsDropped.Inc()
		return
	}
	if queued && cur.ver > e.ver {
		return
	}
	if !queued {
		distM.hintsQueued.Inc()
	}
	c.hints[b][key] = e
}

// hint queues key's latest operation for backend b. Enqueueing is a
// write-path event the read cache must see: the hinted version
// supersedes anything older the cache holds (a caller that later gets
// quorum confirmation re-installs the servable entry at this same
// version, replacing the floor).
func (c *Cluster) hint(b int, key string, e hintEntry) {
	c.cacheSupersede(key, e.ver)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hintLocked(b, key, e)
}

// hintIfAbsent requeues a hint that failed to replay, unless a newer
// hint for the key was queued in the meantime (hintLocked's version
// guard makes requeueing an older one a no-op anyway).
func (c *Cluster) hintIfAbsent(b int, key string, e hintEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, queued := c.hints[b][key]; queued {
		return
	}
	c.hintLocked(b, key, e)
}

// Hints reports how many hinted writes are queued for backend b.
func (c *Cluster) Hints(b int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hints[b])
}

// HintDrops reports how many hints were discarded on full queues.
func (c *Cluster) HintDrops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hintDrops
}

// replayHints delivers backend b's queued hints as one pipelined burst
// of version-aware merges (values and tombstones alike) and returns
// how many landed. A replay that finds the backend already newer
// (StatusExists) is success — the hint is obsolete, exactly the stale
// replay that used to need careful ordering and now simply loses.
// Hints that fail on transport are requeued (unless a newer hint for
// the key arrived meanwhile).
func (c *Cluster) replayHints(b int) int {
	c.mu.Lock()
	pending := c.hints[b]
	c.hints[b] = nil
	c.mu.Unlock()
	if len(pending) == 0 {
		return 0
	}
	cl, err := c.pools[b].get()
	if err != nil {
		for k, e := range pending {
			c.hintIfAbsent(b, k, e)
		}
		return 0
	}
	type hintCall struct {
		call *csnet.Call
		sp   trace.Active
	}
	calls := make(map[string]hintCall, len(pending))
	for k, e := range pending {
		// A hint carries the trace of the write that queued it; the
		// replay merge joins that trace as a hint span, so a waterfall
		// shows the write completing on the recovered backend.
		sp := c.tracer.StartSpan(e.tr, trace.KindHint, "replay")
		if sp.Live() {
			sp.S.Peer = c.pools[b].addr
		}
		req := csnet.Request{Op: csnet.OpMerge, Key: k, Value: e.val, Version: e.ver, ExpireAt: e.exp, Trace: sp.Context()}
		if e.del {
			req.Flags |= csnet.FlagTombstone
			req.Value = nil
		}
		calls[k] = hintCall{call: cl.Send(req), sp: sp}
	}
	delivered := 0
	for k, hc := range calls {
		resp, err := hc.call.ResponseV()
		ok := err == nil && (resp.Status == csnet.StatusOK || resp.Status == csnet.StatusExists)
		if !ok {
			c.hintIfAbsent(b, k, pending[k])
			hc.sp.S.Err = true
			hc.sp.Finish()
			continue
		}
		c.clock.Observe(resp.Version) // an Exists reply carries the newer resident version
		// A replay landing (or finding the replica already newer) is a
		// write-path event: supersede the cache at whichever version is
		// higher — the hint's own, or the newer resident an Exists reply
		// reported.
		if v := resp.Version; v >= pending[k].ver {
			c.cacheSupersede(k, v)
		} else {
			c.cacheSupersede(k, pending[k].ver)
		}
		hc.sp.Finish()
		delivered++
	}
	if delivered > 0 {
		distM.hintsReplayed.Add(uint64(delivered))
	}
	return delivered
}

// MarkDown evicts backend b from the placement ring: subsequent reads
// and writes route around it (each of its keys to the next live node
// clockwise), and a rebalance is scheduled so the shrunken replica sets
// regain full replication. It reports whether the backend transitioned
// (false when already down or out of range). Watch calls this on dead
// events; tests and operators may call it directly.
func (c *Cluster) MarkDown(b int) bool {
	if b < 0 || b >= len(c.pools) {
		return false
	}
	c.mu.Lock()
	if c.down[b] {
		c.mu.Unlock()
		return false
	}
	c.down[b] = true
	c.mu.Unlock()
	c.ring.RemoveNode(b)
	// Full listings only when rf < n: the full pass exists to rescue
	// copies stranded on non-owners after a ring change, and at rf == n
	// every backend owns every bucket, so no copy can be stranded and
	// the cheap digest exchange converges the cluster on its own.
	c.kickRebalance(c.rf < len(c.pools))
	return true
}

// MarkUp readmits backend b after it recovers: queued hints are
// replayed (bulk first, then a final drain for hints that raced the
// flag flip), the ring restores b's virtual nodes to exactly their old
// positions, and a background rebalance is scheduled to stream
// everything the hints missed — values written and keys deleted during
// the outage — over b's stale copies. None of the replay ordering is
// correctness-critical anymore: every path is a version-aware merge,
// so a stale hint racing a rebalanced copy just loses by version; the
// bulk-replay-before-restore order survives only because it gets data
// onto b before reads route to it.
//
// Known window: between RestoreNode and the rebalance pass finishing,
// a read served by b can still see a pre-outage copy (a value since
// overwritten, or a key since deleted). The converge is deliberately
// asynchronous — a Memberlist Watch delivers events on one goroutine,
// and stalling it on a full rebalance would delay or drop later
// Dead/Alive transitions, which is worse than a brief stale window.
// Callers that need a converged cluster at a known point (tests,
// operators) call Rebalance directly; closing the window for ordinary
// reads is the ROADMAP "quorum reads" item. It reports whether the
// backend transitioned.
func (c *Cluster) MarkUp(b int) bool {
	if b < 0 || b >= len(c.pools) {
		return false
	}
	c.mu.Lock()
	if !c.down[b] {
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()
	c.replayHints(b)
	c.ring.RestoreNode(b)
	c.mu.Lock()
	c.down[b] = false
	c.mu.Unlock()
	c.replayHints(b)
	// Same rf == n carve-out as MarkDown: a restarted full-replication
	// backend (e.g. a distnode that reloaded its WAL) catches up through
	// the Merkle digest pass alone — only partial replication can leave
	// stranded non-owner copies that need whole-backend listings.
	c.kickRebalance(c.rf < len(c.pools))
	return true
}

// IsDown reports whether backend b is currently marked down.
func (c *Cluster) IsDown(b int) bool {
	if b < 0 || b >= len(c.pools) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[b]
}

// Live reports how many backends are currently in the placement ring.
func (c *Cluster) Live() int { return c.ring.Nodes() }

// Watch subscribes the cluster to a Memberlist whose member IDs are
// this cluster's backend addresses: dead members are evicted from the
// placement ring, members that come back alive are readmitted (hints
// replayed, rebalance scheduled). Suspect is deliberately ignored — a
// suspect node keeps serving until the suspicion timeout expires, so a
// transient hiccup never reshuffles the ring. The Memberlist should be
// one that participates in the cluster (e.g. a co-located node's list);
// events about unknown IDs are ignored. The returned stop function ends
// the watch.
func (c *Cluster) Watch(ml *member.Memberlist) (stop func()) {
	events := ml.Subscribe()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-done:
				return
			case ev := <-events:
				b, known := c.addrIdx[ev.ID]
				if !known {
					continue
				}
				switch ev.State {
				case member.StateDead:
					c.MarkDown(b)
				case member.StateAlive:
					c.MarkUp(b)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// kickRebalance schedules a background rebalance; coalesces with one
// already pending. Ring changes (MarkDown/MarkUp) request a *full
// listings* pass: right after a geometry change the cluster can hold
// copies the Merkle pass deliberately ignores — a write accepted by
// ring successors while every current owner was down lives on backends
// that are non-owners once the ring is restored, and only a
// whole-backend listing can find and rescue it. Steady-state scheduled
// passes and manual Rebalance calls stay on the cheap digest exchange.
func (c *Cluster) kickRebalance(full bool) {
	if full {
		c.fullPass.Store(true)
	}
	select {
	case c.rebalance <- struct{}{}:
	default:
	}
}

// rebalanceLoop runs scheduled rebalances until Close.
func (c *Cluster) rebalanceLoop() {
	defer close(c.rebalanceDone)
	for {
		select {
		case <-c.stop:
			return
		case <-c.rebalance:
			if c.fullPass.Swap(false) {
				_, _ = c.RebalanceListings()
			} else {
				_, _ = c.Rebalance()
			}
		}
	}
}

// RebalanceListings is the pre-Merkle converger, kept as the fallback
// Rebalance drops to when a backend's tree geometry disagrees with the
// cluster's, and as the O(keyspace) baseline bench E28 measures the
// digest exchange against: every live backend ships its *entire*
// entry listing with versions (one OpKeysV round each), the listings
// join into a per-key version map, and every (key, owner) pair where a
// current owner is missing the entry *or holds an older version* gets
// the newest entry streamed — tombstones straight from the listing,
// values as one pipelined OpGetV burst per source backend — applied
// with OpMerge, which fills holes and overwrites stale copies but can
// never clobber a write that landed after the listing.
//
// Two costs Rebalance no longer pays remain here: a steady-state pass
// ships every key's listing even when nothing diverged, and an
// equal-version value-vs-value split is invisible (OpKeysV listings
// carry no value digest), so such copies stay divergent until
// overwritten.
func (c *Cluster) RebalanceListings() (copied int, err error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	defer distM.aePassLatency.ObserveSince(obs.StartTimer())
	distM.aeListingPasses.Inc()
	ctx, root := c.startAE("rebalance-listings")
	copied, err = c.rebalanceListings(ctx)
	root.S.Err = err != nil
	root.Finish()
	distM.aeStreamed.Add(uint64(copied))
	return copied, err
}

func (c *Cluster) rebalanceListings(ctx trace.Context) (copied int, err error) {
	n := len(c.pools)
	var firstErr error
	noteErr := func(b int, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("dist: rebalance backend %d: %w", b, err)
		}
	}
	// Gather who holds what at which version. Each key's state is a
	// compact (backend, version) list — typically rf entries — rather
	// than an n-wide version array, so the pass costs memory
	// proportional to actual replication, not cluster width (the same
	// instinct as the bitmask holder map this replaces).
	type holderVer struct {
		backend int
		ver     uint64
		tomb    bool
	}
	type keyState struct {
		holders []holderVer
		top     uint64 // newest version seen anywhere
		holder  int    // backend holding top
		topTomb bool   // the newest entry is a tombstone
	}
	holders := make(map[string]*keyState)
	clients := make([]*csnet.Client, n)
	for b := 0; b < n; b++ {
		if c.IsDown(b) {
			continue
		}
		cl, cerr := c.pools[b].get()
		if cerr != nil {
			noteErr(b, cerr)
			continue
		}
		listing, kerr := cl.KeysV()
		if kerr != nil {
			noteErr(b, kerr)
			continue
		}
		clients[b] = cl
		for _, e := range listing {
			// Observe every imported version (the same invariant as the
			// read/write paths): a coordinator whose wall clock lags
			// must advance past listed state or its next Set could
			// stamp under it and silently lose everywhere.
			c.clock.Observe(e.Version)
			ks := holders[e.Key]
			if ks == nil {
				ks = &keyState{}
				holders[e.Key] = ks
			}
			ks.holders = append(ks.holders, holderVer{backend: b, ver: e.Version, tomb: e.Tombstone})
			// Strictly newer wins; on a version tie a tombstone beats a
			// value, mirroring Entry.Wins, so two coordinators stamping
			// the same millisecond still converge to deleted.
			if e.Version > ks.top || (e.Version == ks.top && e.Tombstone && !ks.topTomb) {
				ks.top, ks.holder, ks.topTomb = e.Version, b, e.Tombstone
			}
		}
	}
	// Plan: for each key, every reachable current owner that is missing
	// the newest entry or holds an older one is a target. Tombstones
	// need no read — the listing already carries everything to merge;
	// values are read once from the newest holder.
	type job struct {
		key     string
		top     uint64
		targets []int
	}
	var tombs []job             // streamed straight from the listing
	jobs := make(map[int][]job) // value reads grouped by source backend
	for k, ks := range holders {
		holderOf := func(b int) holderVer {
			for _, h := range ks.holders {
				if h.backend == b {
					return h
				}
			}
			return holderVer{backend: b} // no entry; engine versions are never 0
		}
		// An owner needs the stream when it is strictly behind, or tied
		// with the top version but holding a value where the top is a
		// tombstone (the Entry.Wins tie-break the engines apply). An
		// equal-version value-vs-value tie is invisible here — listings
		// carry no value digest; the Merkle Rebalance sees and repairs
		// that divergence, which is one reason it replaced this pass.
		var targets []int
		for _, t := range c.replicaSet(k) {
			if clients[t] == nil {
				continue
			}
			h := holderOf(t)
			if h.ver < ks.top || (h.ver == ks.top && ks.topTomb && !h.tomb) {
				targets = append(targets, t)
			}
		}
		if len(targets) == 0 {
			continue
		}
		j := job{key: k, top: ks.top, targets: targets}
		if ks.topTomb {
			// A tombstone needs no source read: the listing already
			// carries everything the merge will send.
			tombs = append(tombs, j)
		} else {
			// ks.holder listed the key, so its client is live by
			// construction; the value is read from it below.
			jobs[ks.holder] = append(jobs[ks.holder], j)
		}
	}
	type mergeCall struct {
		call *csnet.Call
		sp   trace.Active
	}
	var copies []mergeCall
	stream := func(t int, req csnet.Request) {
		// An entry streamed to an owner is newer state the coordinator's
		// cache may not have seen (another coordinator wrote it).
		c.cacheSupersede(req.Key, req.Version)
		sp := c.tracer.StartSpan(ctx, trace.KindAE, "MERGE")
		if sp.Live() {
			sp.S.Peer = c.pools[t].addr
		}
		req.Trace = sp.Context()
		copies = append(copies, mergeCall{call: clients[t].Send(req), sp: sp})
	}
	for _, j := range tombs {
		for _, t := range j.targets {
			stream(t, csnet.Request{
				Op: csnet.OpMerge, Key: j.key, Version: j.top, Flags: csnet.FlagTombstone,
			})
		}
	}
	for src, list := range jobs {
		reads := make([]*csnet.Call, len(list))
		for i, j := range list {
			reads[i] = clients[src].Send(csnet.Request{Op: csnet.OpGetV, Key: j.key})
		}
		for i, j := range list {
			resp, rerr := reads[i].ResponseV()
			if rerr != nil {
				noteErr(src, rerr) // conn poisoned; the next kick retries
				break
			}
			if resp.Status != csnet.StatusOK {
				continue // deleted or expired since the listing
			}
			// Stream at the version (and expiry) actually read — it may
			// be newer than the listing's; merge keeps every target at
			// least that new, and carrying ExpireAt keeps a TTL'd entry
			// mortal on the targets too.
			for _, t := range j.targets {
				stream(t, csnet.Request{Op: csnet.OpMerge, Key: j.key, Value: resp.Value, Version: resp.Version, ExpireAt: resp.ExpireAt})
			}
		}
	}
	for _, mc := range copies {
		resp, rerr := mc.call.ResponseV()
		if rerr == nil && resp.Status == csnet.StatusOK {
			copied++
		}
		mc.sp.S.Err = rerr != nil
		mc.sp.Finish()
	}
	return copied, firstErr
}

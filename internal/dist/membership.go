package dist

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"pdcedu/internal/csnet"
	"pdcedu/internal/member"
)

// PartialWriteError reports a replicated write that reached fewer live
// replicas than the write quorum. It lists exactly which backends
// acknowledged, which had hints queued for later replay, and why the
// others failed, so a caller can distinguish "durable on a minority,
// retry later" from "rejected outright".
type PartialWriteError struct {
	// Op is the cluster operation ("set" or "mset").
	Op string
	// Key is the key that missed quorum (for MSet, the first such key).
	Key string
	// Replicas is the key's live replica set at write time.
	Replicas []int
	// Acked lists the backends that acknowledged the write.
	Acked []int
	// Hinted lists the backends that were unreachable and had the write
	// queued as a hint for replay when they rejoin.
	Hinted []int
	// Quorum is the number of acks the write needed.
	Quorum int
	// MissedKeys is how many keys of an MSet missed quorum (1 for Set).
	MissedKeys int
	// Causes maps each failed backend to its error.
	Causes map[int]error
}

// Error implements error.
func (e *PartialWriteError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dist: cluster %s %q: %d/%d acks (quorum %d)",
		e.Op, e.Key, len(e.Acked), len(e.Replicas), e.Quorum)
	if e.MissedKeys > 1 {
		fmt.Fprintf(&b, "; %d keys under quorum", e.MissedKeys)
	}
	if len(e.Hinted) > 0 {
		fmt.Fprintf(&b, "; hinted %v", e.Hinted)
	}
	if len(e.Causes) > 0 {
		backends := make([]int, 0, len(e.Causes))
		for n := range e.Causes {
			backends = append(backends, n)
		}
		sort.Ints(backends)
		for _, n := range backends {
			fmt.Fprintf(&b, "; backend %d: %v", n, e.Causes[n])
		}
	}
	return b.String()
}

// maxHintsPerNode caps each down backend's hint queue: past it, new
// hints for keys not already queued are dropped (counted by HintDrops)
// and the rebalancer is left to converge the backend when it returns.
const maxHintsPerNode = 8192

// hintEntry is one queued write awaiting replay: the latest value the
// absent backend missed, or (del) the fact that the key was deleted —
// without delete hints a recovering backend's stale copy would
// resurrect a deleted key through the rebalancer.
type hintEntry struct {
	val []byte
	del bool
}

// hintLocked queues e for backend b under key, superseding any queued
// hint for the same key — only the latest operation is worth replaying.
// Caller holds c.mu.
func (c *Cluster) hintLocked(b int, key string, e hintEntry) {
	if c.hints[b] == nil {
		c.hints[b] = map[string]hintEntry{}
	}
	if _, queued := c.hints[b][key]; !queued && len(c.hints[b]) >= maxHintsPerNode {
		c.hintDrops++
		return
	}
	c.hints[b][key] = e
}

// hint queues key's latest operation for backend b.
func (c *Cluster) hint(b int, key string, e hintEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hintLocked(b, key, e)
}

// hintIfAbsent requeues a hint that failed to replay, unless a newer
// hint for the key was queued in the meantime.
func (c *Cluster) hintIfAbsent(b int, key string, e hintEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, queued := c.hints[b][key]; queued {
		return
	}
	c.hintLocked(b, key, e)
}

// hintDownMembers queues key's operation for the down members of its
// full-geometry replica set — the backends that would hold it if every
// node were live. This is what keeps hints current for the *whole*
// outage, not just the pre-eviction window: once a node is evicted it
// leaves the live ring and stops appearing in write fan-outs, so
// without this the value a pre-eviction hint captured could be replayed
// over newer writes at rejoin. The down check and the queue insert
// share one critical section so a hint can never be queued after
// MarkUp's final drain observed the backend as up.
func (c *Cluster) hintDownMembers(key string, value []byte, del bool) {
	if c.downCount.Load() == 0 {
		return // healthy cluster: keep the write hot path lock-free here
	}
	fullSet := c.full.PickN(key, c.rf)
	c.mu.Lock()
	for _, b := range fullSet {
		if c.down[b] {
			c.hintLocked(b, key, hintEntry{val: value, del: del})
		}
	}
	c.mu.Unlock()
}

// Hints reports how many hinted writes are queued for backend b.
func (c *Cluster) Hints(b int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hints[b])
}

// HintDrops reports how many hints were discarded on full queues.
func (c *Cluster) HintDrops() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hintDrops
}

// replayHints delivers backend b's queued hints as one pipelined burst
// — plain Sets for writes, Dels for deletions (a Del of a key the
// backend never had answers NotFound, which is success) — and returns
// how many landed. Hints that fail to deliver are requeued (unless a
// newer hint for the key arrived meanwhile). The bulk replay happens
// while b is still out of the placement ring, so no concurrent write
// races the replayed values.
func (c *Cluster) replayHints(b int) int {
	c.mu.Lock()
	pending := c.hints[b]
	c.hints[b] = nil
	c.mu.Unlock()
	if len(pending) == 0 {
		return 0
	}
	cl, err := c.pools[b].get()
	if err != nil {
		for k, e := range pending {
			c.hintIfAbsent(b, k, e)
		}
		return 0
	}
	calls := make(map[string]*csnet.Call, len(pending))
	for k, e := range pending {
		if e.del {
			calls[k] = cl.Send(csnet.Request{Op: csnet.OpDel, Key: k})
		} else {
			calls[k] = cl.Send(csnet.Request{Op: csnet.OpSet, Key: k, Value: e.val})
		}
	}
	delivered := 0
	for k, call := range calls {
		resp, err := call.Response()
		ok := err == nil && (resp.Status == csnet.StatusOK ||
			(pending[k].del && resp.Status == csnet.StatusNotFound))
		if !ok {
			c.hintIfAbsent(b, k, pending[k])
			continue
		}
		delivered++
	}
	return delivered
}

// MarkDown evicts backend b from the placement ring: subsequent reads
// and writes route around it (each of its keys to the next live node
// clockwise), and a rebalance is scheduled so the shrunken replica sets
// regain full replication. It reports whether the backend transitioned
// (false when already down or out of range). Watch calls this on dead
// events; tests and operators may call it directly.
func (c *Cluster) MarkDown(b int) bool {
	if b < 0 || b >= len(c.pools) {
		return false
	}
	c.mu.Lock()
	if c.down[b] {
		c.mu.Unlock()
		return false
	}
	c.down[b] = true
	c.downCount.Add(1)
	c.mu.Unlock()
	c.ring.RemoveNode(b)
	c.kickRebalance()
	return true
}

// MarkUp readmits backend b after it recovers. Queued hints are
// replayed first, while b is still outside the ring and therefore
// receives no new writes that the replay could overwrite; then the ring
// restores b's virtual nodes to exactly their old positions, hint
// queueing for b stops, and one final drain delivers hints that raced
// the transition. A rebalance is scheduled to stream keys only the
// stand-in replicas hold back to b. It reports whether the backend
// transitioned.
func (c *Cluster) MarkUp(b int) bool {
	if b < 0 || b >= len(c.pools) {
		return false
	}
	c.mu.Lock()
	if !c.down[b] {
		c.mu.Unlock()
		return false
	}
	c.mu.Unlock()
	c.replayHints(b)
	c.ring.RestoreNode(b)
	c.mu.Lock()
	c.down[b] = false
	c.downCount.Add(-1)
	c.mu.Unlock()
	c.replayHints(b)
	c.kickRebalance()
	return true
}

// IsDown reports whether backend b is currently marked down.
func (c *Cluster) IsDown(b int) bool {
	if b < 0 || b >= len(c.pools) {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[b]
}

// Live reports how many backends are currently in the placement ring.
func (c *Cluster) Live() int { return c.ring.Nodes() }

// Watch subscribes the cluster to a Memberlist whose member IDs are
// this cluster's backend addresses: dead members are evicted from the
// placement ring, members that come back alive are readmitted (hints
// replayed, rebalance scheduled). Suspect is deliberately ignored — a
// suspect node keeps serving until the suspicion timeout expires, so a
// transient hiccup never reshuffles the ring. The Memberlist should be
// one that participates in the cluster (e.g. a co-located node's list);
// events about unknown IDs are ignored. The returned stop function ends
// the watch.
func (c *Cluster) Watch(ml *member.Memberlist) (stop func()) {
	events := ml.Subscribe()
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			select {
			case <-done:
				return
			case ev := <-events:
				b, known := c.addrIdx[ev.ID]
				if !known {
					continue
				}
				switch ev.State {
				case member.StateDead:
					c.MarkDown(b)
				case member.StateAlive:
					c.MarkUp(b)
				}
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// kickRebalance schedules a background rebalance; coalesces with one
// already pending.
func (c *Cluster) kickRebalance() {
	select {
	case c.rebalance <- struct{}{}:
	default:
	}
}

// rebalanceLoop runs scheduled rebalances until Close.
func (c *Cluster) rebalanceLoop() {
	defer close(c.rebalanceDone)
	for {
		select {
		case <-c.stop:
			return
		case <-c.rebalance:
			_, _ = c.Rebalance()
		}
	}
}

// Rebalance converges replication after ring changes by hole
// detection: every live backend lists its key names (one OpKeys round
// each), the listings join into a holder map, and only the (key, owner)
// pairs where a current owner lacks the key get the value streamed —
// one pipelined OpGet burst per source backend, set-if-absent copies to
// the holes (a copy can fill a gap but never overwrite a newer value).
// A steady-state pass therefore costs key listings, not the keyspace.
// It returns how many replica holes were filled. Runs automatically
// after MarkDown/MarkUp; callable directly for a deterministic converge
// in tests and demos.
//
// Two documented simplifications: keys a backend no longer owns are not
// deleted locally (harmless extras; a compaction pass may reap them),
// and a key the cluster deleted during a node's outage relies on the
// delete hint replayed at MarkUp — if that hint was dropped on a full
// queue, the recovering node's stale copy can re-seed the key here.
func (c *Cluster) Rebalance() (copied int, err error) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	n := len(c.pools)
	var firstErr error
	noteErr := func(b int, err error) {
		if firstErr == nil {
			firstErr = fmt.Errorf("dist: rebalance backend %d: %w", b, err)
		}
	}
	// Gather who holds what; words-wide bitmasks keep the holder map one
	// small allocation per key however many backends there are.
	words := (n + 63) / 64
	holders := make(map[string][]uint64)
	clients := make([]*csnet.Client, n)
	for b := 0; b < n; b++ {
		if c.IsDown(b) {
			continue
		}
		cl, cerr := c.pools[b].get()
		if cerr != nil {
			noteErr(b, cerr)
			continue
		}
		keys, kerr := cl.Keys()
		if kerr != nil {
			noteErr(b, kerr)
			continue
		}
		clients[b] = cl
		for _, k := range keys {
			hs := holders[k]
			if hs == nil {
				hs = make([]uint64, words)
				holders[k] = hs
			}
			hs[b/64] |= 1 << (b % 64)
		}
	}
	// Plan: each under-replicated key is read once, from its first
	// reachable holder, and copied to exactly the owners lacking it.
	type job struct {
		key     string
		missing []int
	}
	jobs := make(map[int][]job)
	for k, hs := range holders {
		has := func(i int) bool { return hs[i/64]&(1<<(i%64)) != 0 }
		var missing []int
		for _, t := range c.ring.PickN(k, c.rf) {
			if !has(t) && clients[t] != nil {
				missing = append(missing, t)
			}
		}
		if len(missing) == 0 {
			continue
		}
		src := -1
		for b := 0; b < n; b++ {
			if has(b) && clients[b] != nil {
				src = b
				break
			}
		}
		if src >= 0 {
			jobs[src] = append(jobs[src], job{key: k, missing: missing})
		}
	}
	for src, list := range jobs {
		reads := make([]*csnet.Call, len(list))
		for i, j := range list {
			reads[i] = clients[src].Send(csnet.Request{Op: csnet.OpGet, Key: j.key})
		}
		var copies []*csnet.Call
		for i, j := range list {
			resp, rerr := reads[i].Response()
			if rerr != nil {
				noteErr(src, rerr) // conn poisoned; the next kick retries
				break
			}
			if resp.Status != csnet.StatusOK {
				continue // deleted since the listing
			}
			for _, t := range j.missing {
				copies = append(copies, clients[t].Send(csnet.Request{Op: csnet.OpSetNX, Key: j.key, Value: resp.Value}))
			}
		}
		for _, call := range copies {
			if resp, rerr := call.Response(); rerr == nil && resp.Status == csnet.StatusOK {
				copied++
			}
		}
	}
	return copied, firstErr
}

package dist

import (
	"testing"
	"time"

	"pdcedu/internal/csnet"
)

// TestClusterStats drives traffic through a replicated cluster and
// checks the stats plane end to end: every live backend answers
// OpStats over the existing mux, the snapshots merge, and the merged
// result carries both the wire-layer per-op counts and the
// coordinator's own metrics (which ride along because test backends
// share this process's registry — exactly the OpStats contract: a
// node reports its whole process).
func TestClusterStats(t *testing.T) {
	const n = 3
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		srv := csnet.NewServer(csnet.NewKVHandler(), 16)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown()
		addrs[i] = addr
	}
	c, err := NewCluster(ClusterConfig{Addrs: addrs, Replication: 2, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	before, err := c.ClusterStats()
	if err != nil {
		t.Fatalf("ClusterStats before traffic: %v", err)
	}
	base, _ := before.Get("csnet.server.ops.SETV")

	const writes = 20
	for i := 0; i < writes; i++ {
		if err := c.Set("stats-key", []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok, err := c.Get("stats-key"); !ok || err != nil {
		t.Fatalf("Get = %v %v", ok, err)
	}

	snap, err := c.ClusterStats()
	if err != nil {
		t.Fatalf("ClusterStats: %v", err)
	}
	// Replication 2 lands every Set on two backends; the merged count
	// must reflect the cluster-wide total, not one node's share.
	m, ok := snap.Get("csnet.server.ops.SETV")
	if !ok || m.Value-base.Value < 2*writes {
		t.Fatalf("merged csnet.server.ops.SETV grew by %d, want >= %d", m.Value-base.Value, 2*writes)
	}
	// The coordinator's latency histogram is in the merged view too,
	// with enough samples to quote percentiles.
	lat, ok := snap.Get("dist.op_latency.set")
	if !ok || lat.Hist == nil {
		t.Fatalf("merged snapshot missing dist.op_latency.set histogram")
	}
	if lat.Hist.Count < writes || lat.Hist.Quantile(0.99) == 0 {
		t.Fatalf("set latency histogram = count %d p99 %d, want >= %d samples and a nonzero p99",
			lat.Hist.Count, lat.Hist.Quantile(0.99), writes)
	}

	// A down backend is skipped, not fatal: stats still merge from the
	// survivors.
	c.MarkDown(0)
	if _, err := c.ClusterStats(); err != nil {
		t.Fatalf("ClusterStats with one backend down: %v", err)
	}
}

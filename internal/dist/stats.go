package dist

import (
	"fmt"

	"pdcedu/internal/csnet"
	"pdcedu/internal/obs"
)

// Coordinator-layer metric names:
//
//	dist.op_latency.<OP>            histogram: whole-op coordinator latency, ns
//	                                (set, get, del, mset, mget, mdel)
//	dist.read_repairs               counter: repair merges pushed to replicas
//	dist.hints.queued               counter: writes queued for a down replica
//	dist.hints.replayed             counter: hints delivered on rejoin
//	dist.hints.dropped              counter: hints lost to the per-backend cap
//	dist.partial_writes             counter: writes returning PartialWriteError
//	dist.quorum_shortfall           counter: keys that missed quorum (MissedKeys)
//	dist.pool.redials               counter: backend connections re-dialed
//	dist.cache.hits                 counter: reads served from the coordinator cache
//	dist.cache.misses               counter: cache-enabled reads that went to replicas
//	dist.cache.invalidations        counter: entries superseded by a write-path event
//	dist.cache.evictions            counter: entries dropped by LRU capacity
//	dist.antientropy.passes         counter: digest-descent Rebalance passes
//	dist.antientropy.listing_passes counter: full-listing passes
//	dist.antientropy.fallbacks      counter: digest passes that fell back
//	dist.antientropy.streamed       counter: entries streamed by repair plans
//	dist.antientropy.digest_frames  counter: OpTreeV exchanges
//	dist.antientropy.listing_frames counter: OpKeysV/OpRangeV exchanges
//	dist.antientropy.keys_listed    counter: entries carried by those listings
//	dist.antientropy.pass_latency   histogram: full Rebalance pass cost, ns
type distMetrics struct {
	latSet  *obs.Histogram
	latGet  *obs.Histogram
	latDel  *obs.Histogram
	latMSet *obs.Histogram
	latMGet *obs.Histogram
	latMDel *obs.Histogram

	readRepairs   *obs.Counter
	hintsQueued   *obs.Counter
	hintsReplayed *obs.Counter
	hintsDropped  *obs.Counter
	partialWrites *obs.Counter
	quorumShort   *obs.Counter
	poolRedials   *obs.Counter

	cacheHits  *obs.Counter
	cacheMiss  *obs.Counter
	cacheInval *obs.Counter
	cacheEvict *obs.Counter

	aePasses        *obs.Counter
	aeListingPasses *obs.Counter
	aeFallbacks     *obs.Counter
	aeStreamed      *obs.Counter
	aeDigestFrames  *obs.Counter
	aeListingFrames *obs.Counter
	aeKeysListed    *obs.Counter
	aePassLatency   *obs.Histogram
}

// distM resolves the coordinator's metric pointers once; the op paths
// record through them directly (see obs package doc).
var distM = func() *distMetrics {
	r := obs.Default()
	return &distMetrics{
		latSet:          r.Histogram("dist.op_latency.set"),
		latGet:          r.Histogram("dist.op_latency.get"),
		latDel:          r.Histogram("dist.op_latency.del"),
		latMSet:         r.Histogram("dist.op_latency.mset"),
		latMGet:         r.Histogram("dist.op_latency.mget"),
		latMDel:         r.Histogram("dist.op_latency.mdel"),
		readRepairs:     r.Counter("dist.read_repairs"),
		hintsQueued:     r.Counter("dist.hints.queued"),
		hintsReplayed:   r.Counter("dist.hints.replayed"),
		hintsDropped:    r.Counter("dist.hints.dropped"),
		partialWrites:   r.Counter("dist.partial_writes"),
		quorumShort:     r.Counter("dist.quorum_shortfall"),
		poolRedials:     r.Counter("dist.pool.redials"),
		cacheHits:       r.Counter("dist.cache.hits"),
		cacheMiss:       r.Counter("dist.cache.misses"),
		cacheInval:      r.Counter("dist.cache.invalidations"),
		cacheEvict:      r.Counter("dist.cache.evictions"),
		aePasses:        r.Counter("dist.antientropy.passes"),
		aeListingPasses: r.Counter("dist.antientropy.listing_passes"),
		aeFallbacks:     r.Counter("dist.antientropy.fallbacks"),
		aeStreamed:      r.Counter("dist.antientropy.streamed"),
		aeDigestFrames:  r.Counter("dist.antientropy.digest_frames"),
		aeListingFrames: r.Counter("dist.antientropy.listing_frames"),
		aeKeysListed:    r.Counter("dist.antientropy.keys_listed"),
		aePassLatency:   r.Histogram("dist.antientropy.pass_latency"),
	}
}()

// ClusterStats fetches and merges the live metrics snapshots of every
// reachable backend: one OpStats round per node over the existing
// multiplexed connections, pipelined as a single burst, folded with
// Snapshot.Merge into cluster-wide totals — counters add, histograms
// add bucketwise, so the merged percentiles are computed over the
// union of every node's samples, not averaged from per-node
// percentiles. Backends that are marked down or fail the round trip
// are skipped; the error reports the first failure, alongside
// whatever the rest of the cluster answered.
func (c *Cluster) ClusterStats() (obs.Snapshot, error) {
	type sent struct {
		call    *csnet.Call
		backend int
	}
	c.mu.Lock()
	down := make([]bool, len(c.down))
	copy(down, c.down)
	c.mu.Unlock()
	calls := make([]sent, 0, len(c.pools))
	var firstErr error
	for b, p := range c.pools {
		if down[b] {
			continue
		}
		cl, err := p.get()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster stats on backend %d: %w", b, err)
			}
			continue
		}
		calls = append(calls, sent{cl.Send(csnet.Request{Op: csnet.OpStats}), b})
	}
	var merged obs.Snapshot
	for _, s := range calls {
		resp, err := s.call.Response()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster stats on backend %d: %w", s.backend, err)
			}
			continue
		}
		if resp.Status != csnet.StatusOK {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster stats on backend %d: status %s: %s", s.backend, resp.Status, resp.Value)
			}
			continue
		}
		snap, err := obs.DecodeSnapshot(resp.Value)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("dist: cluster stats on backend %d: %w", s.backend, err)
			}
			continue
		}
		merged = merged.Merge(snap)
	}
	return merged, firstErr
}

package mpi

import (
	"testing"
	"testing/quick"
)

func TestEncodePayloadKinds(t *testing.T) {
	cases := []struct {
		in   any
		kind int
	}{
		{struct{}{}, kindToken},
		{[]float64{1, 2}, kindFloats},
		{3.5, kindFloat},
		{42, kindInt},
		{"hello", kindString},
		{nil, kindFloats},
	}
	for _, c := range cases {
		f, err := encodePayload(c.in)
		if err != nil {
			t.Fatalf("encodePayload(%v): %v", c.in, err)
		}
		if f.Kind != c.kind {
			t.Errorf("encodePayload(%v) kind = %d, want %d", c.in, f.Kind, c.kind)
		}
	}
	if _, err := encodePayload(map[string]int{}); err == nil {
		t.Error("unsupported type accepted")
	}
	if _, err := encodePayload([]int{1}); err == nil {
		t.Error("[]int should be unsupported on the wire")
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	for _, v := range []any{struct{}{}, 7, 2.25, "str", []float64{9}} {
		f, err := encodePayload(v)
		if err != nil {
			t.Fatal(err)
		}
		got := f.payload()
		switch want := v.(type) {
		case []float64:
			vec, ok := got.([]float64)
			if !ok || len(vec) != len(want) || vec[0] != want[0] {
				t.Errorf("slice round trip = %v", got)
			}
		default:
			if got != v {
				t.Errorf("round trip %v -> %v", v, got)
			}
		}
	}
	// Unknown kind decodes to nil rather than panicking.
	if (wireFrame{Kind: 99}).payload() != nil {
		t.Error("unknown kind should decode to nil")
	}
}

// Property: float64 vectors survive the wire frame unchanged.
func TestWireFloatsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		fr, err := encodePayload(xs)
		if err != nil {
			return false
		}
		got, ok := fr.payload().([]float64)
		if !ok || len(got) != len(xs) {
			return false
		}
		for i := range xs {
			if got[i] != xs[i] && !(xs[i] != xs[i] && got[i] != got[i]) { // NaN-safe
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnvelopeMatching(t *testing.T) {
	env := Envelope{From: 3, Tag: 7}
	cases := []struct {
		source, tag int
		want        bool
	}{
		{3, 7, true},
		{AnySource, 7, true},
		{3, AnyTag, true},
		{AnySource, AnyTag, true},
		{2, 7, false},
		{3, 8, false},
	}
	for _, c := range cases {
		if got := env.matches(c.source, c.tag); got != c.want {
			t.Errorf("matches(%d,%d) = %v, want %v", c.source, c.tag, got, c.want)
		}
	}
}

func TestMailboxTryReceive(t *testing.T) {
	m := newMailbox()
	if _, ok := m.tryReceive(AnySource, AnyTag); ok {
		t.Error("tryReceive on empty mailbox succeeded")
	}
	m.deposit(Envelope{From: 1, Tag: 5, Payload: "x"})
	m.deposit(Envelope{From: 1, Tag: 6, Payload: "y"})
	env, ok := m.tryReceive(1, 6)
	if !ok || env.Payload.(string) != "y" {
		t.Errorf("selective tryReceive = %v, %v", env, ok)
	}
	env, ok = m.tryReceive(AnySource, AnyTag)
	if !ok || env.Payload.(string) != "x" {
		t.Errorf("remaining message = %v, %v", env, ok)
	}
}

func TestMailboxCloseUnblocks(t *testing.T) {
	m := newMailbox()
	done := make(chan bool)
	go func() {
		_, ok := m.receive(AnySource, AnyTag)
		done <- ok
	}()
	m.close()
	if ok := <-done; ok {
		t.Error("receive on closed mailbox reported success")
	}
}

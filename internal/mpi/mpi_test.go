package mpi

import (
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

func TestRunValidation(t *testing.T) {
	if err := Run(0, func(*Comm) error { return nil }); err == nil {
		t.Error("zero-size world accepted")
	}
}

func TestPingPong(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 7, "ping"); err != nil {
				return err
			}
			v, st, err := c.Recv(1, 8)
			if err != nil {
				return err
			}
			if v.(string) != "pong" || st.Source != 1 || st.Tag != 8 {
				return fmt.Errorf("got %v from %+v", v, st)
			}
			return nil
		}
		v, _, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if v.(string) != "ping" {
			return fmt.Errorf("got %v", v)
		}
		return c.Send(0, 8, "pong")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendValidation(t *testing.T) {
	err := Run(1, func(c *Comm) error {
		if err := c.Send(5, 0, 1); err == nil {
			return fmt.Errorf("out-of-range destination accepted")
		}
		if err := c.Send(0, -3, 1); err == nil {
			return fmt.Errorf("negative user tag accepted")
		}
		if _, err := c.Isend(9, 0, 1); err == nil {
			return fmt.Errorf("Isend bad rank accepted")
		}
		if _, err := c.Irecv(9, 0); err == nil {
			return fmt.Errorf("Irecv bad rank accepted")
		}
		if c.Size() != 1 {
			return fmt.Errorf("size = %d", c.Size())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWildcardsAndOrdering(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		switch c.Rank() {
		case 1, 2:
			for i := 0; i < 5; i++ {
				if err := c.Send(0, c.Rank(), float64(i)); err != nil {
					return err
				}
			}
			return nil
		default:
			// Per-source FIFO must hold even with AnySource receives.
			next := map[int]float64{}
			for i := 0; i < 10; i++ {
				v, st, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				f := v.(float64)
				if f != next[st.Source] {
					return fmt.Errorf("source %d out of order: got %g want %g", st.Source, f, next[st.Source])
				}
				next[st.Source]++
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelectiveReceiveByTag(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "low"); err != nil {
				return err
			}
			return c.Send(1, 2, "high")
		}
		// Receive tag 2 first even though tag 1 arrived first.
		v, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if v.(string) != "high" {
			return fmt.Errorf("tag-2 recv got %v", v)
		}
		v, _, err = c.Recv(0, 1)
		if err != nil {
			return err
		}
		if v.(string) != "low" {
			return fmt.Errorf("tag-1 recv got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingAndProbe(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 3, []float64{1, 2, 3})
			if err != nil {
				return err
			}
			return req.Wait()
		}
		req, err := c.Irecv(0, 3)
		if err != nil {
			return err
		}
		if err := req.Wait(); err != nil {
			return err
		}
		if !req.Test() {
			return fmt.Errorf("Test false after Wait")
		}
		v, st := req.Payload()
		vec := v.([]float64)
		if len(vec) != 3 || vec[2] != 3 || st.Source != 0 {
			return fmt.Errorf("payload %v status %+v", v, st)
		}
		if c.Probe(0, AnyTag) {
			return fmt.Errorf("Probe true on empty mailbox")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchangeNoDeadlock(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		right := (c.Rank() + 1) % c.Size()
		left := (c.Rank() - 1 + c.Size()) % c.Size()
		v, st, err := c.Sendrecv(right, 5, c.Rank(), left, 5)
		if err != nil {
			return err
		}
		if v.(int) != left || st.Source != left {
			return fmt.Errorf("rank %d got %v from %d", c.Rank(), v, st.Source)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 5
	var entered int64
	err := Run(n, func(c *Comm) error {
		for round := 0; round < 3; round++ {
			atomic.AddInt64(&entered, 1)
			if err := c.Barrier(); err != nil {
				return err
			}
			if got := atomic.LoadInt64(&entered); got < int64((round+1)*n) {
				return fmt.Errorf("rank %d passed barrier with only %d entries", c.Rank(), got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastVariantsAllWorldSizes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 13} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c *Comm) error {
				root := n / 2
				v, err := c.Bcast(root, fmt.Sprintf("hello-%d", root))
				if err != nil {
					return err
				}
				if v.(string) != fmt.Sprintf("hello-%d", root) {
					return fmt.Errorf("rank %d Bcast got %v", c.Rank(), v)
				}
				v, err = c.BcastLinear(0, 42)
				if err != nil {
					return err
				}
				if v.(int) != 42 {
					return fmt.Errorf("rank %d BcastLinear got %v", c.Rank(), v)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c *Comm) error {
				v := []float64{float64(c.Rank()), 1}
				res, err := c.Reduce(0, v, OpSum)
				if err != nil {
					return err
				}
				wantSum := float64(n*(n-1)) / 2
				if c.Rank() == 0 {
					if res[0] != wantSum || res[1] != float64(n) {
						return fmt.Errorf("Reduce got %v", res)
					}
				} else if res != nil {
					return fmt.Errorf("non-root got %v", res)
				}
				all, err := c.Allreduce(v, OpSum)
				if err != nil {
					return err
				}
				if all[0] != wantSum || all[1] != float64(n) {
					return fmt.Errorf("Allreduce got %v", all)
				}
				mx, err := c.Allreduce([]float64{float64(c.Rank())}, OpMax)
				if err != nil {
					return err
				}
				if mx[0] != float64(n-1) {
					return fmt.Errorf("max got %v", mx)
				}
				mn, err := c.Allreduce([]float64{float64(c.Rank())}, OpMin)
				if err != nil {
					return err
				}
				if mn[0] != 0 {
					return fmt.Errorf("min got %v", mn)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceRingMatchesTree(t *testing.T) {
	for _, n := range []int{1, 2, 4, 5, 8} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			err := Run(n, func(c *Comm) error {
				vec := make([]float64, 4*n+3)
				for i := range vec {
					vec[i] = float64(c.Rank()*100 + i)
				}
				tree, err := c.Allreduce(vec, OpSum)
				if err != nil {
					return err
				}
				ring, err := c.AllreduceRing(vec, OpSum)
				if err != nil {
					return err
				}
				for i := range tree {
					if math.Abs(tree[i]-ring[i]) > 1e-9 {
						return fmt.Errorf("rank %d: ring[%d]=%g tree=%g", c.Rank(), i, ring[i], tree[i])
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllreduceRingValidation(t *testing.T) {
	err := Run(4, func(c *Comm) error {
		if _, err := c.AllreduceRing([]float64{1}, OpSum); err == nil {
			return fmt.Errorf("short vector accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterGatherAllgatherAlltoall(t *testing.T) {
	const n = 4
	err := Run(n, func(c *Comm) error {
		// Scatter from root 1.
		var full []float64
		if c.Rank() == 1 {
			full = make([]float64, 2*n)
			for i := range full {
				full[i] = float64(i)
			}
		}
		part, err := c.Scatter(1, full)
		if err != nil {
			return err
		}
		if len(part) != 2 || part[0] != float64(2*c.Rank()) {
			return fmt.Errorf("rank %d scatter got %v", c.Rank(), part)
		}
		// Gather back on root 1.
		got, err := c.Gather(1, part)
		if err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := range got {
				if got[i] != float64(i) {
					return fmt.Errorf("gather[%d] = %g", i, got[i])
				}
			}
		} else if got != nil {
			return fmt.Errorf("non-root gather got %v", got)
		}
		// Allgather.
		all, err := c.Allgather([]float64{float64(c.Rank())})
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if all[i] != float64(i) {
				return fmt.Errorf("allgather = %v", all)
			}
		}
		// Alltoall: rank r sends value r*10+j to rank j.
		send := make([]float64, n)
		for j := range send {
			send[j] = float64(c.Rank()*10 + j)
		}
		recv, err := c.Alltoall(send)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if recv[i] != float64(i*10+c.Rank()) {
				return fmt.Errorf("alltoall = %v", recv)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidation(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, make([]float64, 4)); err == nil {
				return fmt.Errorf("indivisible scatter accepted")
			}
		}
		if _, err := c.Alltoall(make([]float64, 4)); err == nil {
			return fmt.Errorf("indivisible alltoall accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestProgErrorPropagates(t *testing.T) {
	err := Run(3, func(c *Comm) error {
		if c.Rank() == 2 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestProgPanicBecomesError(t *testing.T) {
	err := Run(2, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Error("panic should surface as error")
	}
}

func BenchmarkBcastBinomial(b *testing.B) { benchBcast(b, true) }
func BenchmarkBcastLinear(b *testing.B)   { benchBcast(b, false) }

func benchBcast(b *testing.B, binomial bool) {
	payload := make([]float64, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Run(16, func(c *Comm) error {
			var err error
			if binomial {
				_, err = c.Bcast(0, payload)
			} else {
				_, err = c.BcastLinear(0, payload)
			}
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllreduceTree(b *testing.B) { benchAllreduce(b, false) }
func BenchmarkAllreduceRing(b *testing.B) { benchAllreduce(b, true) }

func benchAllreduce(b *testing.B, ring bool) {
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := Run(8, func(c *Comm) error {
			vec := make([]float64, 1<<14)
			var err error
			if ring {
				_, err = c.AllreduceRing(vec, OpSum)
			} else {
				_, err = c.Allreduce(vec, OpSum)
			}
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

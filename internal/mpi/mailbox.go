// Package mpi implements an MPI-style message-passing library for the
// cluster-programming part of the LAU course (taught on the Network of
// Workstations model since 1996): ranks with blocking and non-blocking
// tagged point-to-point messaging, wildcard receives, and the standard
// collectives (barrier, binomial-tree broadcast, reduce, naive and ring
// all-reduce, scatter/gather/allgather/alltoall).
//
// Two transports are provided: the default in-process transport built on
// shared mailboxes (one goroutine per rank), and a TCP loopback
// transport (RunTCP) that exchanges gob-encoded frames over real
// sockets, exercising the same programs in NOW mode.
package mpi

import "sync"

// Envelope is one message in flight.
type Envelope struct {
	From    int
	To      int
	Tag     int
	Payload any
}

// matches reports whether the envelope satisfies a receive for
// (source, tag), honouring AnySource/AnyTag wildcards.
func (e Envelope) matches(source, tag int) bool {
	if source != AnySource && e.From != source {
		return false
	}
	if tag != AnyTag && e.Tag != tag {
		return false
	}
	return true
}

// mailbox is a rank's incoming-message queue with selective receive:
// messages from the same (source, tag) pair are received in send order
// (the MPI non-overtaking guarantee).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Envelope
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// deposit enqueues an incoming envelope.
func (m *mailbox) deposit(env Envelope) {
	m.mu.Lock()
	m.queue = append(m.queue, env)
	m.cond.Broadcast()
	m.mu.Unlock()
}

// receive blocks until a matching envelope arrives and removes it.
// It returns false if the mailbox is closed while waiting.
func (m *mailbox) receive(source, tag int) (Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		for i, env := range m.queue {
			if env.matches(source, tag) {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return env, true
			}
		}
		if m.closed {
			return Envelope{}, false
		}
		m.cond.Wait()
	}
}

// tryReceive removes a matching envelope without blocking.
func (m *mailbox) tryReceive(source, tag int) (Envelope, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i, env := range m.queue {
		if env.matches(source, tag) {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return env, true
		}
	}
	return Envelope{}, false
}

// close releases all blocked receivers.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

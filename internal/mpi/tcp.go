package mpi

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// Payload kinds carried by the TCP wire format. The in-process transport
// passes values untyped; the wire restricts payloads to the types the
// library's own APIs use.
const (
	kindToken  = iota // struct{}{}
	kindFloats        // []float64
	kindFloat         // float64
	kindInt           // int
	kindString        // string
)

// wireFrame is the gob-encoded on-the-wire representation of Envelope.
type wireFrame struct {
	From, To, Tag int
	Kind          int
	Floats        []float64
	Float         float64
	Int           int
	Str           string
}

func encodePayload(v any) (wireFrame, error) {
	switch p := v.(type) {
	case struct{}:
		return wireFrame{Kind: kindToken}, nil
	case []float64:
		return wireFrame{Kind: kindFloats, Floats: p}, nil
	case float64:
		return wireFrame{Kind: kindFloat, Float: p}, nil
	case int:
		return wireFrame{Kind: kindInt, Int: p}, nil
	case string:
		return wireFrame{Kind: kindString, Str: p}, nil
	case nil:
		return wireFrame{Kind: kindFloats}, nil
	default:
		return wireFrame{}, fmt.Errorf("mpi: TCP transport cannot carry payload type %T", v)
	}
}

func (f wireFrame) payload() any {
	switch f.Kind {
	case kindToken:
		return struct{}{}
	case kindFloats:
		return f.Floats
	case kindFloat:
		return f.Float
	case kindInt:
		return f.Int
	case kindString:
		return f.Str
	default:
		return nil
	}
}

// tcpTransport sends frames to the switch over the rank's connection.
type tcpTransport struct {
	mu  sync.Mutex
	enc *gob.Encoder
}

func (t *tcpTransport) send(env Envelope) error {
	frame, err := encodePayload(env.Payload)
	if err != nil {
		return err
	}
	frame.From, frame.To, frame.Tag = env.From, env.To, env.Tag
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.enc.Encode(frame)
}

// RunTCP starts an n-rank world in NOW (network-of-workstations) mode:
// every rank owns a real TCP connection over the loopback interface to a
// central switch that routes frames, exercising sockets, framing and
// serialization on the same programs Run executes in-process.
func RunTCP(n int, prog func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("mpi: listen: %w", err)
	}
	defer ln.Close()

	// Switch: accept n connections, learn each rank's identity, then
	// route frames between them until all connections close.
	type peer struct {
		conn net.Conn
		dec  *gob.Decoder
		out  chan wireFrame
	}
	peers := make([]*peer, n)
	var switchReady sync.WaitGroup
	switchReady.Add(1)
	var routerWg sync.WaitGroup
	var switchErr error
	go func() {
		defer switchReady.Done()
		// Phase 1: accept every connection and register its rank, so no
		// router starts before every destination is known.
		for i := 0; i < n; i++ {
			conn, err := ln.Accept()
			if err != nil {
				switchErr = err
				return
			}
			dec := gob.NewDecoder(conn)
			var hello wireFrame
			if err := dec.Decode(&hello); err != nil {
				switchErr = fmt.Errorf("mpi: switch hello: %w", err)
				return
			}
			r := hello.From
			if r < 0 || r >= n || peers[r] != nil {
				switchErr = fmt.Errorf("mpi: switch: bad hello rank %d", r)
				return
			}
			peers[r] = &peer{conn: conn, dec: dec, out: make(chan wireFrame, 64)}
		}
		// Phase 2: start one writer and one router per peer.
		for _, p := range peers {
			p := p
			go func() {
				enc := gob.NewEncoder(p.conn)
				for f := range p.out {
					if err := enc.Encode(f); err != nil {
						return
					}
				}
			}()
			routerWg.Add(1)
			go func() {
				defer routerWg.Done()
				for {
					var f wireFrame
					if err := p.dec.Decode(&f); err != nil {
						return
					}
					if f.To >= 0 && f.To < n && peers[f.To] != nil {
						peers[f.To].out <- f
					}
				}
			}()
		}
	}()

	addr := ln.Addr().String()
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	conns := make([]net.Conn, n)
	for r := 0; r < n; r++ {
		r := r
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("mpi: dial: %w", err)
		}
		conns[r] = conn
		wg.Add(1)
		go func() {
			defer wg.Done()
			enc := gob.NewEncoder(conn)
			tr := &tcpTransport{enc: enc}
			// Hello frame announces our rank to the switch.
			if err := tr.send(Envelope{From: r, To: -1, Tag: 0, Payload: struct{}{}}); err != nil {
				errs[r] = err
				return
			}
			// Reader: deposit inbound frames into the mailbox.
			go func() {
				dec := gob.NewDecoder(conn)
				for {
					var f wireFrame
					if err := dec.Decode(&f); err != nil {
						boxes[r].close()
						return
					}
					boxes[r].deposit(Envelope{From: f.From, To: f.To, Tag: f.Tag, Payload: f.payload()})
				}
			}()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
				}
			}()
			errs[r] = prog(&Comm{rank: r, size: n, box: boxes[r], tr: tr})
		}()
	}
	wg.Wait()
	// Teardown: closing the rank-side connections EOFs the switch's
	// routers; once they exit, the per-peer writers are stopped and the
	// switch-side sockets released (otherwise long bench runs exhaust
	// file descriptors).
	for _, conn := range conns {
		if conn != nil {
			conn.Close()
		}
	}
	switchReady.Wait()
	routerWg.Wait()
	for _, p := range peers {
		if p != nil {
			close(p.out)
			p.conn.Close()
		}
	}
	if switchErr != nil {
		return switchErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

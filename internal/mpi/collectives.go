package mpi

import "fmt"

// collTagStride reserves a tag range per collective call so multi-step
// collectives (like the ring all-reduce) never collide with later calls.
const collTagStride = 4096

// nextCollTag reserves an internal tag range for one collective call;
// every rank must execute collectives in the same order, which makes the
// per-rank sequence numbers line up (as MPI requires).
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return collectiveTagBase - c.collSeq*collTagStride
}

// Barrier blocks until every rank has entered it: a binomial reduction
// to rank 0 followed by a binomial release broadcast, so no rank exits
// before every rank has entered.
func (c *Comm) Barrier() error {
	if _, err := c.Reduce(0, nil, OpSum); err != nil {
		return err
	}
	_, err := c.Bcast(0, struct{}{})
	return err
}

// Bcast distributes root's value to every rank along a binomial tree in
// O(log P) rounds and returns the value at every rank.
func (c *Comm) Bcast(root int, v any) (any, error) {
	if err := c.checkRank(root, "Bcast"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	// Work in a rotated rank space where root is 0.
	vrank := (c.rank - root + c.size) % c.size
	if vrank != 0 {
		env, ok := c.box.receive(AnySource, tag)
		if !ok {
			return nil, fmt.Errorf("mpi: rank %d: world shut down in Bcast", c.rank)
		}
		v = env.Payload
	}
	// pow = smallest power of two >= size.
	pow := 1
	for pow < c.size {
		pow <<= 1
	}
	// lowest set bit marks the round we received in; root forwards in
	// every round.
	lowest := pow
	if vrank != 0 {
		lowest = vrank & -vrank
	}
	for m := lowest >> 1; m > 0; m >>= 1 {
		child := vrank | m
		if child != vrank && child < c.size {
			real := (child + root) % c.size
			if err := c.sendInternal(real, tag, v); err != nil {
				return nil, err
			}
		}
	}
	return v, nil
}

// BcastLinear is the naive broadcast (root sends P-1 messages), kept as
// the ablation baseline for the binomial tree.
func (c *Comm) BcastLinear(root int, v any) (any, error) {
	if err := c.checkRank(root, "BcastLinear"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank == root {
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			if err := c.sendInternal(r, tag, v); err != nil {
				return nil, err
			}
		}
		return v, nil
	}
	env, ok := c.box.receive(root, tag)
	if !ok {
		return nil, fmt.Errorf("mpi: rank %d: world shut down in BcastLinear", c.rank)
	}
	return env.Payload, nil
}

// ReduceOp combines two float64 slices element-wise; it must be
// commutative and associative (the binomial reduction receives partial
// results in arrival order).
type ReduceOp func(dst, src []float64)

// OpSum adds src into dst.
func OpSum(dst, src []float64) {
	for i := range dst {
		dst[i] += src[i]
	}
}

// OpMax takes the element-wise maximum.
func OpMax(dst, src []float64) {
	for i := range dst {
		if src[i] > dst[i] {
			dst[i] = src[i]
		}
	}
}

// OpMin takes the element-wise minimum.
func OpMin(dst, src []float64) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Reduce combines every rank's vector with op along a binomial tree;
// the result lands on root (other ranks get nil).
func (c *Comm) Reduce(root int, v []float64, op ReduceOp) ([]float64, error) {
	if err := c.checkRank(root, "Reduce"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	vrank := (c.rank - root + c.size) % c.size
	acc := append([]float64(nil), v...)
	for mask := 1; mask < c.size; mask <<= 1 {
		partner := vrank ^ mask
		if vrank&mask != 0 {
			real := (partner + root) % c.size
			return nil, c.sendInternal(real, tag, acc)
		}
		if partner < c.size {
			env, ok := c.box.receive(AnySource, tag)
			if !ok {
				return nil, fmt.Errorf("mpi: rank %d: world shut down in Reduce", c.rank)
			}
			src, okType := env.Payload.([]float64)
			if !okType {
				return nil, fmt.Errorf("mpi: Reduce: payload type %T from rank %d", env.Payload, env.From)
			}
			if len(src) != len(acc) {
				return nil, fmt.Errorf("mpi: Reduce: length mismatch %d vs %d", len(src), len(acc))
			}
			op(acc, src)
		}
	}
	return acc, nil
}

// Allreduce combines every rank's vector and returns the result on all
// ranks (binomial reduce to 0, then binomial broadcast) — the latency-
// optimal choice for short vectors and the ablation baseline for
// AllreduceRing on long ones.
func (c *Comm) Allreduce(v []float64, op ReduceOp) ([]float64, error) {
	res, err := c.Reduce(0, v, op)
	if err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, res)
	if err != nil {
		return nil, err
	}
	vec, ok := out.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpi: Allreduce: unexpected payload %T", out)
	}
	return vec, nil
}

// AllreduceRing implements the bandwidth-optimal ring all-reduce
// (reduce-scatter + allgather), the algorithm behind data-parallel deep
// learning — the LAU course's closing case study. The vector length must
// be at least the world size.
func (c *Comm) AllreduceRing(v []float64, op ReduceOp) ([]float64, error) {
	p := c.size
	if p == 1 {
		return append([]float64(nil), v...), nil
	}
	n := len(v)
	if n < p {
		return nil, fmt.Errorf("mpi: AllreduceRing: vector length %d < world size %d", n, p)
	}
	tag := c.nextCollTag()
	acc := append([]float64(nil), v...)
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	chunk := func(i int) []float64 { return acc[bounds[i]:bounds[i+1]] }
	next := (c.rank + 1) % p
	prev := (c.rank - 1 + p) % p

	exchange := func(step, sendIdx int) ([]float64, error) {
		sendCopy := append([]float64(nil), chunk(sendIdx)...)
		stepTag := tag - 1 - step // distinct internal tag per step
		if err := c.sendInternal(next, stepTag, sendCopy); err != nil {
			return nil, err
		}
		env, ok := c.box.receive(prev, stepTag)
		if !ok {
			return nil, fmt.Errorf("mpi: rank %d: world shut down in ring allreduce", c.rank)
		}
		vec, okType := env.Payload.([]float64)
		if !okType {
			return nil, fmt.Errorf("mpi: ring allreduce: payload type %T", env.Payload)
		}
		return vec, nil
	}

	// Phase 1: reduce-scatter. After p-1 steps, rank r owns the fully
	// reduced chunk (r+1) mod p.
	for s := 0; s < p-1; s++ {
		sendIdx := ((c.rank-s)%p + p) % p
		recvIdx := ((c.rank-s-1)%p + p) % p
		recvd, err := exchange(s, sendIdx)
		if err != nil {
			return nil, err
		}
		dst := chunk(recvIdx)
		if len(recvd) != len(dst) {
			return nil, fmt.Errorf("mpi: ring allreduce: chunk length mismatch %d vs %d", len(recvd), len(dst))
		}
		op(dst, recvd)
	}
	// Phase 2: allgather of the reduced chunks.
	for s := 0; s < p-1; s++ {
		sendIdx := ((c.rank+1-s)%p + p) % p
		recvIdx := ((c.rank-s)%p + p) % p
		recvd, err := exchange(p-1+s, sendIdx)
		if err != nil {
			return nil, err
		}
		copy(chunk(recvIdx), recvd)
	}
	return acc, nil
}

// Scatter splits root's vector into Size equal chunks and delivers chunk
// i to rank i. The vector length must be divisible by Size.
func (c *Comm) Scatter(root int, v []float64) ([]float64, error) {
	if err := c.checkRank(root, "Scatter"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank == root {
		if len(v)%c.size != 0 {
			return nil, fmt.Errorf("mpi: Scatter: length %d not divisible by %d", len(v), c.size)
		}
		chunk := len(v) / c.size
		for r := 0; r < c.size; r++ {
			if r == root {
				continue
			}
			part := append([]float64(nil), v[r*chunk:(r+1)*chunk]...)
			if err := c.sendInternal(r, tag, part); err != nil {
				return nil, err
			}
		}
		return append([]float64(nil), v[root*chunk:(root+1)*chunk]...), nil
	}
	env, ok := c.box.receive(root, tag)
	if !ok {
		return nil, fmt.Errorf("mpi: rank %d: world shut down in Scatter", c.rank)
	}
	vec, okType := env.Payload.([]float64)
	if !okType {
		return nil, fmt.Errorf("mpi: Scatter: payload type %T", env.Payload)
	}
	return vec, nil
}

// Gather collects every rank's vector on root (concatenated in rank
// order); other ranks receive nil.
func (c *Comm) Gather(root int, v []float64) ([]float64, error) {
	if err := c.checkRank(root, "Gather"); err != nil {
		return nil, err
	}
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.sendInternal(root, tag, append([]float64(nil), v...))
	}
	parts := make([][]float64, c.size)
	parts[root] = append([]float64(nil), v...)
	for i := 0; i < c.size-1; i++ {
		env, ok := c.box.receive(AnySource, tag)
		if !ok {
			return nil, fmt.Errorf("mpi: rank %d: world shut down in Gather", c.rank)
		}
		vec, okType := env.Payload.([]float64)
		if !okType {
			return nil, fmt.Errorf("mpi: Gather: payload type %T", env.Payload)
		}
		parts[env.From] = vec
	}
	var out []float64
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

// Allgather concatenates every rank's vector on every rank.
func (c *Comm) Allgather(v []float64) ([]float64, error) {
	all, err := c.Gather(0, v)
	if err != nil {
		return nil, err
	}
	out, err := c.Bcast(0, all)
	if err != nil {
		return nil, err
	}
	vec, ok := out.([]float64)
	if !ok {
		return nil, fmt.Errorf("mpi: Allgather: unexpected payload %T", out)
	}
	return vec, nil
}

// Alltoall delivers chunk j of rank i's vector to rank j (the transpose
// exchange). Length must be divisible by Size.
func (c *Comm) Alltoall(v []float64) ([]float64, error) {
	if len(v)%c.size != 0 {
		return nil, fmt.Errorf("mpi: Alltoall: length %d not divisible by %d", len(v), c.size)
	}
	tag := c.nextCollTag()
	chunk := len(v) / c.size
	for r := 0; r < c.size; r++ {
		if r == c.rank {
			continue
		}
		part := append([]float64(nil), v[r*chunk:(r+1)*chunk]...)
		if err := c.sendInternal(r, tag, part); err != nil {
			return nil, err
		}
	}
	out := make([]float64, len(v))
	copy(out[c.rank*chunk:(c.rank+1)*chunk], v[c.rank*chunk:(c.rank+1)*chunk])
	for i := 0; i < c.size-1; i++ {
		env, ok := c.box.receive(AnySource, tag)
		if !ok {
			return nil, fmt.Errorf("mpi: rank %d: world shut down in Alltoall", c.rank)
		}
		vec, okType := env.Payload.([]float64)
		if !okType {
			return nil, fmt.Errorf("mpi: Alltoall: payload type %T", env.Payload)
		}
		copy(out[env.From*chunk:(env.From+1)*chunk], vec)
	}
	return out, nil
}

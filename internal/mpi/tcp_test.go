package mpi

import (
	"fmt"
	"testing"
)

func TestTCPPingPong(t *testing.T) {
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, "ping"); err != nil {
				return err
			}
			v, _, err := c.Recv(1, 2)
			if err != nil {
				return err
			}
			if v.(string) != "pong" {
				return fmt.Errorf("got %v", v)
			}
			return nil
		}
		v, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if v.(string) != "ping" {
			return fmt.Errorf("got %v", v)
		}
		return c.Send(0, 2, "pong")
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPCollectives(t *testing.T) {
	const n = 4
	err := RunTCP(n, func(c *Comm) error {
		if err := c.Barrier(); err != nil {
			return err
		}
		all, err := c.Allreduce([]float64{float64(c.Rank()), 1}, OpSum)
		if err != nil {
			return err
		}
		if all[0] != 6 || all[1] != 4 {
			return fmt.Errorf("rank %d allreduce = %v", c.Rank(), all)
		}
		ring, err := c.AllreduceRing([]float64{1, 2, 3, 4, 5, 6, 7, 8}, OpSum)
		if err != nil {
			return err
		}
		if ring[0] != 4 || ring[7] != 32 {
			return fmt.Errorf("rank %d ring = %v", c.Rank(), ring)
		}
		v, err := c.Bcast(2, 3.25)
		if err != nil {
			return err
		}
		if v.(float64) != 3.25 {
			return fmt.Errorf("bcast got %v", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPPayloadTypes(t *testing.T) {
	err := RunTCP(2, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, 42); err != nil {
				return err
			}
			if err := c.Send(1, 2, 2.5); err != nil {
				return err
			}
			if err := c.Send(1, 3, []float64{9, 8}); err != nil {
				return err
			}
			// Unsupported payload type must fail loudly.
			if err := c.Send(1, 4, map[string]int{"x": 1}); err == nil {
				return fmt.Errorf("unsupported payload accepted")
			}
			return c.Send(1, 4, "done")
		}
		if v, _, err := c.Recv(0, 1); err != nil || v.(int) != 42 {
			return fmt.Errorf("int payload: %v %v", v, err)
		}
		if v, _, err := c.Recv(0, 2); err != nil || v.(float64) != 2.5 {
			return fmt.Errorf("float payload: %v %v", v, err)
		}
		if v, _, err := c.Recv(0, 3); err != nil || v.([]float64)[1] != 8 {
			return fmt.Errorf("slice payload: %v %v", v, err)
		}
		if v, _, err := c.Recv(0, 4); err != nil || v.(string) != "done" {
			return fmt.Errorf("string payload: %v %v", v, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTCPValidation(t *testing.T) {
	if err := RunTCP(0, func(*Comm) error { return nil }); err == nil {
		t.Error("zero-size TCP world accepted")
	}
}

func BenchmarkTCPPingPong(b *testing.B) {
	for i := 0; i < b.N; i++ {
		err := RunTCP(2, func(c *Comm) error {
			if c.Rank() == 0 {
				if err := c.Send(1, 1, []float64{1}); err != nil {
					return err
				}
				_, _, err := c.Recv(1, 2)
				return err
			}
			if _, _, err := c.Recv(0, 1); err != nil {
				return err
			}
			return c.Send(0, 2, []float64{2})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

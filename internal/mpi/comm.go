package mpi

import (
	"fmt"
	"sync"
)

// Wildcards for Recv.
const (
	// AnySource matches messages from every rank.
	AnySource = -1
	// AnyTag matches every tag.
	AnyTag = -1
)

// collectiveTagBase separates internal collective traffic from user tags
// (user tags must be non-negative).
const collectiveTagBase = -1000

// Status describes a received message.
type Status struct {
	Source int
	Tag    int
}

// transport delivers envelopes to remote mailboxes.
type transport interface {
	send(env Envelope) error
}

// chanTransport delivers directly into the destination mailbox.
type chanTransport struct {
	boxes []*mailbox
}

func (t *chanTransport) send(env Envelope) error {
	t.boxes[env.To].deposit(env)
	return nil
}

// Comm is one rank's communicator handle.
type Comm struct {
	rank int
	size int
	box  *mailbox
	tr   transport
	// collSeq numbers collective calls so their internal tags match
	// across ranks (MPI requires identical collective call order).
	collSeq int
}

// Rank returns the caller's rank in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

func (c *Comm) checkRank(r int, op string) error {
	if r < 0 || r >= c.size {
		return fmt.Errorf("mpi: %s: rank %d out of range [0,%d)", op, r, c.size)
	}
	return nil
}

// Send delivers v to rank `to` with the given tag (buffered standard
// mode: it returns once the message is deposited). The payload is shared
// by reference on the in-process transport: treat sent values as frozen.
func (c *Comm) Send(to, tag int, v any) error {
	if err := c.checkRank(to, "Send"); err != nil {
		return err
	}
	if tag < 0 {
		return fmt.Errorf("mpi: Send: user tags must be non-negative, got %d", tag)
	}
	return c.tr.send(Envelope{From: c.rank, To: to, Tag: tag, Payload: v})
}

// sendInternal bypasses tag validation for collectives.
func (c *Comm) sendInternal(to, tag int, v any) error {
	if err := c.checkRank(to, "collective"); err != nil {
		return err
	}
	return c.tr.send(Envelope{From: c.rank, To: to, Tag: tag, Payload: v})
}

// Recv blocks until a message matching (source, tag) arrives; wildcards
// AnySource/AnyTag are allowed.
func (c *Comm) Recv(source, tag int) (any, Status, error) {
	if source != AnySource {
		if err := c.checkRank(source, "Recv"); err != nil {
			return nil, Status{}, err
		}
	}
	env, ok := c.box.receive(source, tag)
	if !ok {
		return nil, Status{}, fmt.Errorf("mpi: rank %d: world shut down during Recv", c.rank)
	}
	return env.Payload, Status{Source: env.From, Tag: env.Tag}, nil
}

// Sendrecv performs a combined send and receive, safe against the
// head-to-head exchange deadlock.
func (c *Comm) Sendrecv(to, sendTag int, v any, from, recvTag int) (any, Status, error) {
	req, err := c.Isend(to, sendTag, v)
	if err != nil {
		return nil, Status{}, err
	}
	payload, st, err := c.Recv(from, recvTag)
	if err != nil {
		return nil, Status{}, err
	}
	if err := req.Wait(); err != nil {
		return nil, Status{}, err
	}
	return payload, st, nil
}

// Request is a handle on a non-blocking operation.
type Request struct {
	done    chan struct{}
	mu      sync.Mutex
	payload any
	status  Status
	err     error
}

// Wait blocks until the operation completes and returns its error.
func (r *Request) Wait() error {
	<-r.done
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Test reports whether the operation has completed without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Payload returns the received value; valid after Wait on an Irecv.
func (r *Request) Payload() (any, Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.payload, r.status
}

// Isend starts a non-blocking send.
func (c *Comm) Isend(to, tag int, v any) (*Request, error) {
	if err := c.checkRank(to, "Isend"); err != nil {
		return nil, err
	}
	if tag < 0 {
		return nil, fmt.Errorf("mpi: Isend: user tags must be non-negative, got %d", tag)
	}
	req := &Request{done: make(chan struct{})}
	go func() {
		defer close(req.done)
		err := c.tr.send(Envelope{From: c.rank, To: to, Tag: tag, Payload: v})
		req.mu.Lock()
		req.err = err
		req.mu.Unlock()
	}()
	return req, nil
}

// Irecv starts a non-blocking receive.
func (c *Comm) Irecv(source, tag int) (*Request, error) {
	if source != AnySource {
		if err := c.checkRank(source, "Irecv"); err != nil {
			return nil, err
		}
	}
	req := &Request{done: make(chan struct{})}
	go func() {
		defer close(req.done)
		payload, st, err := c.Recv(source, tag)
		req.mu.Lock()
		req.payload, req.status, req.err = payload, st, err
		req.mu.Unlock()
	}()
	return req, nil
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Probe reports whether a matching message is waiting, without
// consuming it.
func (c *Comm) Probe(source, tag int) bool {
	c.box.mu.Lock()
	defer c.box.mu.Unlock()
	for _, env := range c.box.queue {
		if env.matches(source, tag) {
			return true
		}
	}
	return false
}

// Run starts an n-rank world on the in-process transport and executes
// prog once per rank, each on its own goroutine. It returns the first
// error any rank returned (every rank runs to completion regardless).
// As with real MPI, a rank that blocks forever in Recv (because its
// peer never sends) hangs the world; use test timeouts to surface such
// deadlocks in student programs.
func Run(n int, prog func(c *Comm) error) error {
	if n <= 0 {
		return fmt.Errorf("mpi: world size must be positive, got %d", n)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	tr := &chanTransport{boxes: boxes}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[r] = fmt.Errorf("mpi: rank %d panicked: %v", r, p)
				}
			}()
			errs[r] = prog(&Comm{rank: r, size: n, box: boxes[r], tr: tr})
		}()
	}
	wg.Wait()
	for i := range boxes {
		boxes[i].close()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

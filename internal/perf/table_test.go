package perf

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "Course", "Share")
	tb.AddRow("Operating Systems", 25.0)
	tb.AddRow("DBMS", 3.0)
	out := tb.String()
	for _, want := range []string{"Table X", "Course", "Operating Systems", "25", "DBMS"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.14159)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("non-integral float should render with 3 decimals: %s", tb.String())
	}
}

func TestBarChart(t *testing.T) {
	out := Bar("Fig 2", []string{"alpha", "beta"}, []float64{10, 5}, 20)
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "####") {
		t.Errorf("bar chart malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // title + 2 bars
		t.Errorf("expected 3 lines, got %d:\n%s", len(lines), out)
	}
	alphaBars := strings.Count(lines[1], "#")
	betaBars := strings.Count(lines[2], "#")
	if alphaBars != 20 || betaBars != 10 {
		t.Errorf("bar lengths = %d,%d want 20,10", alphaBars, betaBars)
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	if out := Bar("", nil, nil, 0); out != "" {
		t.Errorf("empty bar chart should be empty, got %q", out)
	}
	out := Bar("", []string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Errorf("zero value should have no bar: %q", out)
	}
}

func TestPie(t *testing.T) {
	out := Pie("Fig 3", []string{"OS", "Networks"}, []float64{25, 19})
	if !strings.Contains(out, "25.0%") || !strings.Contains(out, "19.0%") {
		t.Errorf("pie output malformed:\n%s", out)
	}
}

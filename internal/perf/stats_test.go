package perf

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty sample should be all zeros: %+v", s.Summarize())
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %g, want 5", s.Mean())
	}
	// Population sd of this classic dataset is 2; sample sd is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if !almostEqual(s.StdDev(), want, 1e-12) {
		t.Errorf("StdDev = %g, want %g", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 2/9", s.Min(), s.Max())
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	for i := 1; i <= 5; i++ {
		s.Add(float64(i))
	}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := s.Quantile(c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if s.Median() != 3 {
		t.Errorf("Median = %g, want 3", s.Median())
	}
}

func TestSampleAddDuration(t *testing.T) {
	var s Sample
	s.AddDuration(1500 * time.Millisecond)
	if !almostEqual(s.Mean(), 1.5, 1e-12) {
		t.Errorf("AddDuration stored %g, want 1.5", s.Mean())
	}
}

func TestSummaryString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(2)
	got := s.Summarize().String()
	if got == "" {
		t.Fatal("Summary.String is empty")
	}
}

// Property: mean always lies within [min, max], and quantiles are monotone.
func TestSampleProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			// Keep magnitudes sane to avoid float overflow in variance.
			s.Add(math.Mod(v, 1e6))
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := s.Quantile(q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestVarianceOfConstant(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(42)
	}
	if s.Variance() != 0 {
		t.Errorf("variance of constant sample = %g, want 0", s.Variance())
	}
	if s.CI95() != 0 {
		t.Errorf("CI95 of constant sample = %g, want 0", s.CI95())
	}
}

package perf

import (
	"fmt"
	"math"
	"sort"
)

// Speedup returns sequentialTime / parallelTime, the quantity students
// plot in every lab of the case-study courses.
func Speedup(sequential, parallel float64) float64 {
	if parallel <= 0 {
		return math.Inf(1)
	}
	return sequential / parallel
}

// Efficiency returns Speedup / p, the per-processor utilization.
func Efficiency(sequential, parallel float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return Speedup(sequential, parallel) / float64(p)
}

// AmdahlSpeedup predicts the speedup on p processors of a program whose
// serial (non-parallelizable) fraction is f, per Amdahl's law:
//
//	S(p) = 1 / (f + (1-f)/p)
func AmdahlSpeedup(f float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	den := f + (1-f)/float64(p)
	if den <= 0 {
		return math.Inf(1)
	}
	return 1 / den
}

// AmdahlLimit returns the asymptotic speedup bound 1/f as p grows without
// bound. It is infinite when f == 0.
func AmdahlLimit(f float64) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return 1 / f
}

// GustafsonSpeedup predicts scaled speedup on p processors when the
// problem grows with the machine (Gustafson-Barsis):
//
//	S(p) = p - f*(p-1)
func GustafsonSpeedup(f float64, p int) float64 {
	return float64(p) - f*float64(p-1)
}

// KarpFlatt computes the experimentally determined serial fraction from a
// measured speedup s on p processors:
//
//	e = (1/s - 1/p) / (1 - 1/p)
//
// A rising e across p values indicates parallel overhead growth; a flat e
// indicates a genuinely serial component. Defined for p >= 2.
func KarpFlatt(speedup float64, p int) (float64, error) {
	if p < 2 {
		return 0, fmt.Errorf("perf: Karp-Flatt metric requires p >= 2, got %d", p)
	}
	if speedup <= 0 {
		return 0, fmt.Errorf("perf: Karp-Flatt metric requires positive speedup, got %g", speedup)
	}
	pf := float64(p)
	return (1/speedup - 1/pf) / (1 - 1/pf), nil
}

// ScalingPoint is one row of a scaling experiment: the processor count,
// the measured time, and derived quantities.
type ScalingPoint struct {
	P          int
	Time       float64
	Speedup    float64
	Efficiency float64
	KarpFlatt  float64 // NaN for P == 1
}

// ScalingCurve is a strong- or weak-scaling result across processor counts.
type ScalingCurve struct {
	Name   string
	Points []ScalingPoint
}

// BuildScalingCurve derives speedup/efficiency/Karp-Flatt rows from a map
// of processor count to measured time. The baseline is times[1] when
// present, otherwise the time at the smallest processor count (scaled as
// if that configuration were perfectly efficient).
func BuildScalingCurve(name string, times map[int]float64) ScalingCurve {
	ps := make([]int, 0, len(times))
	for p := range times {
		if p > 0 {
			ps = append(ps, p)
		}
	}
	sort.Ints(ps)
	curve := ScalingCurve{Name: name}
	if len(ps) == 0 {
		return curve
	}
	base, ok := times[1]
	if !ok {
		base = times[ps[0]] * float64(ps[0])
	}
	for _, p := range ps {
		t := times[p]
		sp := Speedup(base, t)
		pt := ScalingPoint{
			P:          p,
			Time:       t,
			Speedup:    sp,
			Efficiency: sp / float64(p),
			KarpFlatt:  math.NaN(),
		}
		if p >= 2 {
			if kf, err := KarpFlatt(sp, p); err == nil {
				pt.KarpFlatt = kf
			}
		}
		curve.Points = append(curve.Points, pt)
	}
	return curve
}

// MaxSpeedup reports the largest speedup observed on the curve.
func (c ScalingCurve) MaxSpeedup() float64 {
	best := 0.0
	for _, pt := range c.Points {
		if pt.Speedup > best {
			best = pt.Speedup
		}
	}
	return best
}

// FitSerialFraction estimates the Amdahl serial fraction that best fits
// the measured curve, via least squares over f in [0,1] sampled at the
// given resolution (e.g. 1e-4). This mirrors the curve-fitting exercise
// in the LAU course's profiling part.
func (c ScalingCurve) FitSerialFraction(resolution float64) float64 {
	if resolution <= 0 {
		resolution = 1e-4
	}
	bestF, bestErr := 0.0, math.Inf(1)
	for f := 0.0; f <= 1.0; f += resolution {
		sse := 0.0
		for _, pt := range c.Points {
			pred := AmdahlSpeedup(f, pt.P)
			d := pred - pt.Speedup
			sse += d * d
		}
		if sse < bestErr {
			bestErr = sse
			bestF = f
		}
	}
	return bestF
}

// Package perf provides the measurement methodology that the surveyed
// courses teach: repeated timing with summary statistics, speedup and
// efficiency computation, Amdahl/Gustafson/Karp-Flatt models, and
// strong/weak scaling experiment drivers.
//
// The package corresponds to the "performance measurement, speed-up, and
// scalability" row of Table I in the paper and to LAU course outcome 3
// ("experimentally analyzing and tuning parallel software").
package perf

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample is a collection of repeated measurements of one quantity.
// The zero value is an empty sample ready for use.
type Sample struct {
	values []float64
	sorted bool
}

// Add appends one observation to the sample.
func (s *Sample) Add(v float64) {
	s.values = append(s.values, v)
	s.sorted = false
}

// AddDuration appends one timing observation, recorded in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Values returns a copy of the raw observations in insertion order.
func (s *Sample) Values() []float64 {
	out := make([]float64, len(s.values))
	copy(out, s.values)
	return out
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func (s *Sample) Variance() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return sum / float64(n-1)
}

// StdDev returns the sample standard deviation.
func (s *Sample) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.values)))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between order statistics.
func (s *Sample) Quantile(q float64) float64 {
	n := len(s.values)
	if n == 0 {
		return 0
	}
	vals := s.Values()
	sort.Float64s(vals)
	if q <= 0 {
		return vals[0]
	}
	if q >= 1 {
		return vals[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return vals[lo]
	}
	frac := pos - float64(lo)
	return vals[lo]*(1-frac) + vals[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Quantile(0.5) }

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean, using the normal critical value 1.96. Course labs use it
// to decide whether two configurations differ meaningfully.
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// Summary is a compact, printable digest of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
	CI95   float64
}

// Summarize computes the Summary of the sample.
func (s *Sample) Summarize() Summary {
	return Summary{
		N:      s.N(),
		Mean:   s.Mean(),
		StdDev: s.StdDev(),
		Min:    s.Min(),
		Median: s.Median(),
		Max:    s.Max(),
		CI95:   s.CI95(),
	}
}

// String renders the summary on one line.
func (sm Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g ±%.2g sd=%.3g min=%.6g med=%.6g max=%.6g",
		sm.N, sm.Mean, sm.CI95, sm.StdDev, sm.Min, sm.Median, sm.Max)
}

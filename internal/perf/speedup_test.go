package perf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupAndEfficiency(t *testing.T) {
	if got := Speedup(10, 2); got != 5 {
		t.Errorf("Speedup(10,2) = %g, want 5", got)
	}
	if got := Efficiency(10, 2, 5); got != 1 {
		t.Errorf("Efficiency(10,2,5) = %g, want 1", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Error("Speedup with zero parallel time should be +Inf")
	}
	if Efficiency(1, 1, 0) != 0 {
		t.Error("Efficiency with p=0 should be 0")
	}
}

func TestAmdahl(t *testing.T) {
	// Fully parallel program: linear speedup.
	if got := AmdahlSpeedup(0, 8); !almostEqual(got, 8, 1e-12) {
		t.Errorf("AmdahlSpeedup(0,8) = %g, want 8", got)
	}
	// Fully serial program: no speedup.
	if got := AmdahlSpeedup(1, 64); !almostEqual(got, 1, 1e-12) {
		t.Errorf("AmdahlSpeedup(1,64) = %g, want 1", got)
	}
	// The textbook example: f=0.1, p=10 -> S = 1/(0.1+0.9/10) = 5.263...
	if got := AmdahlSpeedup(0.1, 10); !almostEqual(got, 1/(0.1+0.09), 1e-12) {
		t.Errorf("AmdahlSpeedup(0.1,10) = %g", got)
	}
	if got := AmdahlLimit(0.1); !almostEqual(got, 10, 1e-12) {
		t.Errorf("AmdahlLimit(0.1) = %g, want 10", got)
	}
	if !math.IsInf(AmdahlLimit(0), 1) {
		t.Error("AmdahlLimit(0) should be +Inf")
	}
}

func TestGustafson(t *testing.T) {
	if got := GustafsonSpeedup(0, 16); got != 16 {
		t.Errorf("GustafsonSpeedup(0,16) = %g, want 16", got)
	}
	if got := GustafsonSpeedup(1, 16); got != 1 {
		t.Errorf("GustafsonSpeedup(1,16) = %g, want 1", got)
	}
	// f=0.1, p=10 -> 10 - 0.9 = 9.1
	if got := GustafsonSpeedup(0.1, 10); !almostEqual(got, 9.1, 1e-12) {
		t.Errorf("GustafsonSpeedup(0.1,10) = %g, want 9.1", got)
	}
}

func TestKarpFlatt(t *testing.T) {
	// Perfect linear speedup implies zero serial fraction.
	e, err := KarpFlatt(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e, 0, 1e-12) {
		t.Errorf("KarpFlatt(8,8) = %g, want 0", e)
	}
	// No speedup at all implies serial fraction 1.
	e, err = KarpFlatt(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(e, 1, 1e-12) {
		t.Errorf("KarpFlatt(1,8) = %g, want 1", e)
	}
	if _, err := KarpFlatt(2, 1); err == nil {
		t.Error("KarpFlatt with p=1 should error")
	}
	if _, err := KarpFlatt(0, 4); err == nil {
		t.Error("KarpFlatt with zero speedup should error")
	}
}

// Property: Karp-Flatt inverts Amdahl — measuring an ideal Amdahl program
// recovers its serial fraction.
func TestKarpFlattInvertsAmdahl(t *testing.T) {
	f := func(fr float64, pRaw uint8) bool {
		fr = math.Mod(math.Abs(fr), 1)
		p := int(pRaw%31) + 2
		s := AmdahlSpeedup(fr, p)
		e, err := KarpFlatt(s, p)
		if err != nil {
			return false
		}
		return almostEqual(e, fr, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBuildScalingCurve(t *testing.T) {
	times := map[int]float64{1: 8, 2: 4, 4: 2, 8: 1}
	c := BuildScalingCurve("ideal", times)
	if len(c.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(c.Points))
	}
	for _, pt := range c.Points {
		if !almostEqual(pt.Speedup, float64(pt.P), 1e-12) {
			t.Errorf("P=%d speedup=%g, want %d", pt.P, pt.Speedup, pt.P)
		}
		if !almostEqual(pt.Efficiency, 1, 1e-12) {
			t.Errorf("P=%d efficiency=%g, want 1", pt.P, pt.Efficiency)
		}
	}
	if !almostEqual(c.MaxSpeedup(), 8, 1e-12) {
		t.Errorf("MaxSpeedup = %g, want 8", c.MaxSpeedup())
	}
	if !math.IsNaN(c.Points[0].KarpFlatt) {
		t.Error("Karp-Flatt at p=1 should be NaN")
	}
}

func TestBuildScalingCurveWithoutBaseline(t *testing.T) {
	times := map[int]float64{2: 4, 4: 2}
	c := BuildScalingCurve("nobase", times)
	if len(c.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(c.Points))
	}
	// Synthetic baseline = 4*2 = 8 => speedups 2 and 4.
	if !almostEqual(c.Points[0].Speedup, 2, 1e-12) || !almostEqual(c.Points[1].Speedup, 4, 1e-12) {
		t.Errorf("speedups = %g,%g want 2,4", c.Points[0].Speedup, c.Points[1].Speedup)
	}
}

func TestFitSerialFraction(t *testing.T) {
	const f = 0.2
	times := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8, 16} {
		times[p] = 1 / AmdahlSpeedup(f, p)
	}
	c := BuildScalingCurve("amdahl-0.2", times)
	got := c.FitSerialFraction(1e-3)
	if !almostEqual(got, f, 2e-3) {
		t.Errorf("FitSerialFraction = %g, want %g", got, f)
	}
}

func TestEmptyScalingCurve(t *testing.T) {
	c := BuildScalingCurve("empty", nil)
	if len(c.Points) != 0 || c.MaxSpeedup() != 0 {
		t.Error("empty curve should have no points and zero max speedup")
	}
}

package perf

import (
	"fmt"
	"time"
)

// Options controls a measurement run.
type Options struct {
	// Warmup is the number of untimed executions before measurement.
	Warmup int
	// Repetitions is the number of timed executions (minimum 1).
	Repetitions int
	// MinTime, when positive, keeps adding repetitions until the total
	// measured time reaches this duration (bounded by MaxRepetitions).
	MinTime time.Duration
	// MaxRepetitions caps adaptive repetition growth (default 1000).
	MaxRepetitions int
}

// DefaultOptions are sensible defaults for course labs: 2 warmups and 5
// timed repetitions.
func DefaultOptions() Options {
	return Options{Warmup: 2, Repetitions: 5, MaxRepetitions: 1000}
}

// Measure times fn under the given options and returns the sample of
// per-execution durations in seconds.
func Measure(fn func(), opt Options) *Sample {
	if opt.Repetitions < 1 {
		opt.Repetitions = 1
	}
	if opt.MaxRepetitions < opt.Repetitions {
		opt.MaxRepetitions = opt.Repetitions
	}
	for i := 0; i < opt.Warmup; i++ {
		fn()
	}
	s := &Sample{}
	var total time.Duration
	for i := 0; i < opt.MaxRepetitions; i++ {
		start := time.Now()
		fn()
		elapsed := time.Since(start)
		s.AddDuration(elapsed)
		total += elapsed
		if i+1 >= opt.Repetitions && (opt.MinTime <= 0 || total >= opt.MinTime) {
			break
		}
	}
	return s
}

// CompareResult reports a baseline/candidate comparison.
type CompareResult struct {
	Baseline  Summary
	Candidate Summary
	// Speedup is baseline mean / candidate mean.
	Speedup float64
	// Significant is true when the 95% confidence intervals of the two
	// means do not overlap.
	Significant bool
}

// Compare measures two functions under the same options and reports the
// speedup of candidate over baseline.
func Compare(baseline, candidate func(), opt Options) CompareResult {
	b := Measure(baseline, opt).Summarize()
	c := Measure(candidate, opt).Summarize()
	res := CompareResult{Baseline: b, Candidate: c}
	if c.Mean > 0 {
		res.Speedup = b.Mean / c.Mean
	}
	bLo, bHi := b.Mean-b.CI95, b.Mean+b.CI95
	cLo, cHi := c.Mean-c.CI95, c.Mean+c.CI95
	res.Significant = bHi < cLo || cHi < bLo
	return res
}

// String renders the comparison on one line.
func (r CompareResult) String() string {
	sig := ""
	if r.Significant {
		sig = " (significant)"
	}
	return fmt.Sprintf("speedup %.2fx: baseline %.6gs -> candidate %.6gs%s",
		r.Speedup, r.Baseline.Mean, r.Candidate.Mean, sig)
}

// StrongScaling runs fn(p) for each processor count in ps on a fixed
// problem and returns the resulting curve. fn must perform the entire
// fixed-size workload using p workers.
func StrongScaling(name string, ps []int, fn func(p int), opt Options) ScalingCurve {
	times := make(map[int]float64, len(ps))
	for _, p := range ps {
		p := p
		s := Measure(func() { fn(p) }, opt)
		times[p] = s.Median()
	}
	return BuildScalingCurve(name, times)
}

// WeakScalingPoint is one row of a weak-scaling experiment.
type WeakScalingPoint struct {
	P          int
	Time       float64
	Efficiency float64 // T(1) / T(p); 1.0 is perfect weak scaling
}

// WeakScaling runs fn(p) for each p with a problem size proportional to
// p (the caller scales the workload inside fn) and reports how close the
// runtime stays to the single-processor runtime.
func WeakScaling(ps []int, fn func(p int), opt Options) []WeakScalingPoint {
	var out []WeakScalingPoint
	var base float64
	for i, p := range ps {
		p := p
		s := Measure(func() { fn(p) }, opt)
		t := s.Median()
		if i == 0 {
			base = t
		}
		eff := 0.0
		if t > 0 {
			eff = base / t
		}
		out = append(out, WeakScalingPoint{P: p, Time: t, Efficiency: eff})
	}
	return out
}

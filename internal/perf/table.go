package perf

import (
	"fmt"
	"math"
	"strings"
)

// Table accumulates rows and renders them as an aligned ASCII table, the
// output format used by the benchmark harness for every reproduced paper
// table and figure.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if v == math.Trunc(v) && math.Abs(v) < 1e12 {
				row[i] = fmt.Sprintf("%.0f", v)
			} else {
				row[i] = fmt.Sprintf("%.3f", v)
			}
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows reports the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := width[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Bar renders a horizontal ASCII bar chart for label/value pairs, used to
// print Fig. 2-style topic histograms. maxWidth is the widest bar in
// characters (default 40 when <= 0).
func Bar(title string, labels []string, values []float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for i, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
		if i < len(values) && values[i] > maxVal {
			maxVal = values[i]
		}
	}
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for i, l := range labels {
		if i >= len(values) {
			break
		}
		v := values[i]
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * float64(maxWidth)))
		}
		fmt.Fprintf(&b, "%-*s | %s %.3g\n", maxLabel, l, strings.Repeat("#", n), v)
	}
	return b.String()
}

// Pie renders label/percentage pairs in the style used for Fig. 3.
func Pie(title string, labels []string, percents []float64) string {
	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	for i, l := range labels {
		if i >= len(percents) {
			break
		}
		fmt.Fprintf(&b, "%-*s : %5.1f%%\n", maxLabel, l, percents[i])
	}
	return b.String()
}

package perf

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMeasureCountsExecutions(t *testing.T) {
	var calls int64
	opt := Options{Warmup: 2, Repetitions: 5}
	s := Measure(func() { atomic.AddInt64(&calls, 1) }, opt)
	if s.N() != 5 {
		t.Errorf("sample N = %d, want 5", s.N())
	}
	if calls != 7 { // 2 warmup + 5 timed
		t.Errorf("calls = %d, want 7", calls)
	}
}

func TestMeasureMinTime(t *testing.T) {
	var calls int
	opt := Options{Repetitions: 1, MinTime: 5 * time.Millisecond, MaxRepetitions: 100000}
	s := Measure(func() {
		calls++
		time.Sleep(time.Millisecond)
	}, opt)
	if s.N() < 4 {
		t.Errorf("adaptive repetitions produced only %d samples", s.N())
	}
}

func TestMeasureDefaultsRepair(t *testing.T) {
	s := Measure(func() {}, Options{Repetitions: 0})
	if s.N() != 1 {
		t.Errorf("zero repetitions should clamp to 1, got %d", s.N())
	}
}

func TestCompare(t *testing.T) {
	// Wide gap and loose threshold: scheduler jitter on a loaded
	// single-core host can stretch the fast case by milliseconds.
	slow := func() { time.Sleep(10 * time.Millisecond) }
	fast := func() { time.Sleep(time.Millisecond) }
	r := Compare(slow, fast, Options{Warmup: 1, Repetitions: 4})
	if r.Speedup < 1.5 {
		t.Errorf("expected a clear speedup, got %.2f", r.Speedup)
	}
	if !strings.Contains(r.String(), "speedup") {
		t.Errorf("String() = %q", r.String())
	}
}

func TestStrongScalingDriver(t *testing.T) {
	work := func(p int) { time.Sleep(time.Duration(4/p) * time.Millisecond) }
	c := StrongScaling("sleepy", []int{1, 2, 4}, work, Options{Repetitions: 2})
	if len(c.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(c.Points))
	}
	if c.Points[0].P != 1 || c.Points[2].P != 4 {
		t.Errorf("points out of order: %+v", c.Points)
	}
}

func TestWeakScalingDriver(t *testing.T) {
	pts := WeakScaling([]int{1, 2}, func(p int) { time.Sleep(time.Millisecond) }, Options{Repetitions: 2})
	if len(pts) != 2 {
		t.Fatalf("points = %d, want 2", len(pts))
	}
	if pts[0].Efficiency != 1 {
		t.Errorf("first efficiency = %g, want 1", pts[0].Efficiency)
	}
	if pts[1].Efficiency <= 0 {
		t.Errorf("second efficiency = %g, want > 0", pts[1].Efficiency)
	}
}

package sched

import (
	"container/heap"
	"fmt"
)

// MPStrategy selects a multiprocessor scheduling organization, the
// "scheduling on single and multiprocessor systems" topic from the AUC
// operating-systems case study.
type MPStrategy int

const (
	// GlobalQueue shares one FCFS ready queue among all CPUs: perfect
	// load sharing, but a real system pays lock contention for it.
	GlobalQueue MPStrategy = iota
	// PerCPUQueue assigns arrivals to per-CPU queues round-robin; idle
	// CPUs spin on their own queue only (affinity, imbalance risk).
	PerCPUQueue
	// PerCPUStealing is PerCPUQueue plus work stealing: an idle CPU
	// takes work from the longest backlog.
	PerCPUStealing
)

// String returns the strategy name.
func (s MPStrategy) String() string {
	switch s {
	case GlobalQueue:
		return "global-queue"
	case PerCPUQueue:
		return "per-cpu"
	case PerCPUStealing:
		return "per-cpu-stealing"
	default:
		return "unknown"
	}
}

// cpuEvent orders CPU availability in the simulation.
type cpuEvent struct {
	free int64
	cpu  int
}

type cpuHeap []cpuEvent

func (h cpuHeap) Len() int { return len(h) }
func (h cpuHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].cpu < h[j].cpu
}
func (h cpuHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cpuHeap) Push(x any)   { *h = append(*h, x.(cpuEvent)) }
func (h *cpuHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Multiprocessor simulates non-preemptive scheduling of the workload on
// `cpus` identical processors under the given strategy.
func Multiprocessor(procs []Process, cpus int, strategy MPStrategy) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	if cpus <= 0 {
		return Result{}, fmt.Errorf("sched: need at least one CPU, got %d", cpus)
	}
	pending := byArrival(procs)
	queues := make([][]Process, cpus) // per-CPU; index 0 doubles as the global queue
	h := make(cpuHeap, cpus)
	for i := range h {
		h[i] = cpuEvent{free: 0, cpu: i}
	}
	heap.Init(&h)
	var slices []Slice
	steals := 0
	nextAssign := 0

	admit := func(now int64) {
		for len(pending) > 0 && pending[0].Arrival <= now {
			p := pending[0]
			pending = pending[1:]
			switch strategy {
			case GlobalQueue:
				queues[0] = append(queues[0], p)
			default:
				queues[nextAssign%cpus] = append(queues[nextAssign%cpus], p)
				nextAssign++
			}
		}
	}

	for {
		ev := heap.Pop(&h).(cpuEvent)
		now := ev.free
		admit(now)
		var q int
		switch strategy {
		case GlobalQueue:
			q = 0
		default:
			q = ev.cpu
			if len(queues[q]) == 0 && strategy == PerCPUStealing {
				// Steal from the longest backlog.
				victim, best := -1, 1
				for i := range queues {
					if len(queues[i]) > best {
						victim, best = i, len(queues[i])
					}
				}
				if victim >= 0 {
					q = victim
					steals++
				}
			}
		}
		if len(queues[q]) == 0 {
			// Nothing runnable for this CPU now.
			if len(pending) == 0 {
				// Drain: if every queue is empty we are done.
				done := true
				for i := range queues {
					if len(queues[i]) > 0 {
						done = false
						break
					}
				}
				if done {
					break
				}
				// Another CPU's queue has work (no stealing): this CPU
				// is finished; drop it from the simulation.
				if h.Len() == 0 {
					// Shouldn't happen: remaining work but no CPUs. Put
					// this CPU back pointing at the stragglers' queue.
					for i := range queues {
						if len(queues[i]) > 0 {
							q = i
							break
						}
					}
					p := queues[q][0]
					queues[q] = queues[q][1:]
					start := now
					slices = append(slices, Slice{PID: p.ID, CPU: ev.cpu, Start: start, End: start + p.Burst})
					heap.Push(&h, cpuEvent{free: start + p.Burst, cpu: ev.cpu})
				}
				continue
			}
			// Sleep until the next arrival.
			heap.Push(&h, cpuEvent{free: pending[0].Arrival, cpu: ev.cpu})
			continue
		}
		p := queues[q][0]
		queues[q] = queues[q][1:]
		start := now
		if p.Arrival > start {
			start = p.Arrival
		}
		slices = append(slices, Slice{PID: p.ID, CPU: ev.cpu, Start: start, End: start + p.Burst})
		heap.Push(&h, cpuEvent{free: start + p.Burst, cpu: ev.cpu})
	}
	res := finalize(fmt.Sprintf("mp-%s(cpus=%d)", strategy, cpus), procs, slices, 0, steals)
	return res, nil
}

// CPUUtilization returns per-CPU busy fractions over the makespan.
func CPUUtilization(r Result, cpus int) []float64 {
	busy := make([]int64, cpus)
	for _, s := range r.Slices {
		if s.CPU >= 0 && s.CPU < cpus {
			busy[s.CPU] += s.End - s.Start
		}
	}
	out := make([]float64, cpus)
	if r.Makespan == 0 {
		return out
	}
	for i, b := range busy {
		out[i] = float64(b) / float64(r.Makespan)
	}
	return out
}

package sched

import "testing"

// starvationWorkload: one low-priority job at t=0 plus a stream of
// high-priority jobs arriving back to back.
func starvationWorkload() []Process {
	procs := []Process{{ID: 0, Arrival: 0, Burst: 5, Priority: 9}}
	for i := 1; i <= 20; i++ {
		procs = append(procs, Process{
			ID: i, Arrival: int64(i - 1), Burst: 3, Priority: 1,
		})
	}
	return procs
}

func TestAgingBoundsStarvation(t *testing.T) {
	procs := starvationWorkload()
	noAging, err := PriorityAging(procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	aging, err := PriorityAging(procs, 2)
	if err != nil {
		t.Fatal(err)
	}
	waitedNo := noAging.Metrics[0].Waiting
	waitedAging := aging.Metrics[0].Waiting
	if waitedAging >= waitedNo {
		t.Errorf("aging waiting %d should beat pure priority %d", waitedAging, waitedNo)
	}
	// Without aging the low-priority job runs dead last.
	if noAging.Metrics[0].Completion != noAging.Makespan {
		t.Errorf("without aging the starved job should finish last (%d vs %d)",
			noAging.Metrics[0].Completion, noAging.Makespan)
	}
}

func TestAgingMatchesPriorityWhenDisabled(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 10, Priority: 3},
		{ID: 1, Arrival: 0, Burst: 1, Priority: 1},
		{ID: 2, Arrival: 0, Burst: 2, Priority: 4},
	}
	np, err := PriorityNP(procs)
	if err != nil {
		t.Fatal(err)
	}
	ag, err := PriorityAging(procs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if np.AvgWaiting() != ag.AvgWaiting() {
		t.Errorf("disabled aging avg wait %g != priority-np %g", ag.AvgWaiting(), np.AvgWaiting())
	}
}

func TestAgingValidationAndGaps(t *testing.T) {
	if _, err := PriorityAging([]Process{{ID: 0, Burst: 0}}, 1); err == nil {
		t.Error("invalid workload accepted")
	}
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 2, Priority: 1},
		{ID: 1, Arrival: 10, Burst: 2, Priority: 1},
	}
	r, err := PriorityAging(procs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 12 {
		t.Errorf("makespan = %d, want 12", r.Makespan)
	}
}

package sched

import (
	"fmt"
	"sort"
)

// RAG is a resource-allocation graph for single-instance resources:
// assignment edges (resource -> process) and request edges
// (process -> resource). A cycle implies deadlock.
type RAG struct {
	// held[resource] = process currently holding it (-1 when free).
	held map[string]int
	// requests[process] = set of resources it is waiting for.
	requests map[int]map[string]bool
}

// NewRAG creates an empty resource-allocation graph.
func NewRAG() *RAG {
	return &RAG{held: map[string]int{}, requests: map[int]map[string]bool{}}
}

// Assign records that process p holds resource r. It returns an error if
// the resource is already held by a different process.
func (g *RAG) Assign(p int, r string) error {
	if holder, ok := g.held[r]; ok && holder != p {
		return fmt.Errorf("sched: resource %q already held by process %d", r, holder)
	}
	g.held[r] = p
	// Holding satisfies any pending request.
	if reqs, ok := g.requests[p]; ok {
		delete(reqs, r)
	}
	return nil
}

// Request records that process p is waiting for resource r.
func (g *RAG) Request(p int, r string) {
	if g.requests[p] == nil {
		g.requests[p] = map[string]bool{}
	}
	g.requests[p][r] = true
}

// Release frees resource r.
func (g *RAG) Release(r string) { delete(g.held, r) }

// DetectDeadlock looks for a cycle in the wait-for graph derived from
// the RAG and returns the processes on one cycle (sorted), or nil.
func (g *RAG) DetectDeadlock() []int {
	// waitFor[p] = set of processes p waits on.
	waitFor := map[int][]int{}
	procs := map[int]bool{}
	for p, reqs := range g.requests {
		procs[p] = true
		for r := range reqs {
			if holder, ok := g.held[r]; ok && holder != p {
				waitFor[p] = append(waitFor[p], holder)
				procs[holder] = true
			}
		}
	}
	// DFS cycle detection with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	parent := map[int]int{}
	var cycle []int
	var dfs func(p int) bool
	dfs = func(p int) bool {
		color[p] = gray
		targets := append([]int(nil), waitFor[p]...)
		sort.Ints(targets)
		for _, q := range targets {
			switch color[q] {
			case white:
				parent[q] = p
				if dfs(q) {
					return true
				}
			case gray:
				// Found a cycle q -> ... -> p -> q.
				cycle = []int{q}
				for cur := p; cur != q; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				return true
			}
		}
		color[p] = black
		return false
	}
	ids := make([]int, 0, len(procs))
	for p := range procs {
		ids = append(ids, p)
	}
	sort.Ints(ids)
	for _, p := range ids {
		if color[p] == white && dfs(p) {
			sort.Ints(cycle)
			return cycle
		}
	}
	return nil
}

// Banker implements the Banker's algorithm for deadlock avoidance with
// multi-instance resources.
type Banker struct {
	available  []int
	max        [][]int
	allocation [][]int
}

// NewBanker creates a banker state. max[i][j] is process i's maximum
// claim on resource j; allocation starts at zero.
func NewBanker(available []int, max [][]int) (*Banker, error) {
	for i, row := range max {
		if len(row) != len(available) {
			return nil, fmt.Errorf("sched: max row %d has %d resources, want %d", i, len(row), len(available))
		}
		for j, v := range row {
			if v < 0 {
				return nil, fmt.Errorf("sched: negative max claim at [%d][%d]", i, j)
			}
		}
	}
	for j, v := range available {
		if v < 0 {
			return nil, fmt.Errorf("sched: negative available at resource %d", j)
		}
	}
	b := &Banker{
		available:  append([]int(nil), available...),
		max:        make([][]int, len(max)),
		allocation: make([][]int, len(max)),
	}
	for i := range max {
		b.max[i] = append([]int(nil), max[i]...)
		b.allocation[i] = make([]int, len(available))
	}
	return b, nil
}

// need returns max - allocation for process i.
func (b *Banker) need(i int) []int {
	out := make([]int, len(b.available))
	for j := range out {
		out[j] = b.max[i][j] - b.allocation[i][j]
	}
	return out
}

// IsSafe runs the safety algorithm and returns a safe completion order
// when one exists.
func (b *Banker) IsSafe() (bool, []int) {
	work := append([]int(nil), b.available...)
	finished := make([]bool, len(b.max))
	var order []int
	for {
		progressed := false
		for i := range b.max {
			if finished[i] {
				continue
			}
			need := b.need(i)
			ok := true
			for j := range need {
				if need[j] > work[j] {
					ok = false
					break
				}
			}
			if ok {
				for j := range work {
					work[j] += b.allocation[i][j]
				}
				finished[i] = true
				order = append(order, i)
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	for _, f := range finished {
		if !f {
			return false, nil
		}
	}
	return true, order
}

// Request attempts to grant process i the requested resources. It
// returns an error when the request exceeds the declared maximum or
// available resources, and (false, nil) when granting would make the
// state unsafe (the request is then not granted).
func (b *Banker) Request(i int, req []int) (bool, error) {
	if i < 0 || i >= len(b.max) {
		return false, fmt.Errorf("sched: unknown process %d", i)
	}
	if len(req) != len(b.available) {
		return false, fmt.Errorf("sched: request has %d resources, want %d", len(req), len(b.available))
	}
	need := b.need(i)
	for j, v := range req {
		if v < 0 {
			return false, fmt.Errorf("sched: negative request at resource %d", j)
		}
		if v > need[j] {
			return false, fmt.Errorf("sched: process %d requests %d of resource %d beyond declared need %d",
				i, v, j, need[j])
		}
	}
	for j, v := range req {
		if v > b.available[j] {
			// Must wait: not an error, just cannot be granted now.
			return false, nil
		}
	}
	// Tentatively grant, test safety, roll back if unsafe.
	for j, v := range req {
		b.available[j] -= v
		b.allocation[i][j] += v
	}
	safe, _ := b.IsSafe()
	if !safe {
		for j, v := range req {
			b.available[j] += v
			b.allocation[i][j] -= v
		}
		return false, nil
	}
	return true, nil
}

// ReleaseAll returns all of process i's allocation to the pool.
func (b *Banker) ReleaseAll(i int) error {
	if i < 0 || i >= len(b.max) {
		return fmt.Errorf("sched: unknown process %d", i)
	}
	for j, v := range b.allocation[i] {
		b.available[j] += v
		b.allocation[i][j] = 0
	}
	return nil
}

// Available returns a copy of the currently free resource vector.
func (b *Banker) Available() []int { return append([]int(nil), b.available...) }

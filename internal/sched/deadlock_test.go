package sched

import "testing"

func TestRAGDetectsSimpleCycle(t *testing.T) {
	g := NewRAG()
	// P1 holds A, wants B; P2 holds B, wants A: classic deadlock.
	if err := g.Assign(1, "A"); err != nil {
		t.Fatal(err)
	}
	if err := g.Assign(2, "B"); err != nil {
		t.Fatal(err)
	}
	g.Request(1, "B")
	g.Request(2, "A")
	cycle := g.DetectDeadlock()
	if len(cycle) != 2 || cycle[0] != 1 || cycle[1] != 2 {
		t.Errorf("cycle = %v, want [1 2]", cycle)
	}
}

func TestRAGNoCycleNoDeadlock(t *testing.T) {
	g := NewRAG()
	_ = g.Assign(1, "A")
	g.Request(2, "A") // P2 waits, but P1 waits on nothing
	if cycle := g.DetectDeadlock(); cycle != nil {
		t.Errorf("false deadlock: %v", cycle)
	}
}

func TestRAGThreeWayCycle(t *testing.T) {
	g := NewRAG()
	_ = g.Assign(1, "A")
	_ = g.Assign(2, "B")
	_ = g.Assign(3, "C")
	g.Request(1, "B")
	g.Request(2, "C")
	g.Request(3, "A")
	cycle := g.DetectDeadlock()
	if len(cycle) != 3 {
		t.Errorf("cycle = %v, want 3 processes", cycle)
	}
}

func TestRAGReleaseBreaksDeadlock(t *testing.T) {
	g := NewRAG()
	_ = g.Assign(1, "A")
	_ = g.Assign(2, "B")
	g.Request(1, "B")
	g.Request(2, "A")
	if g.DetectDeadlock() == nil {
		t.Fatal("expected deadlock before release")
	}
	g.Release("B")
	if cycle := g.DetectDeadlock(); cycle != nil {
		t.Errorf("deadlock persists after release: %v", cycle)
	}
}

func TestRAGDoubleAssign(t *testing.T) {
	g := NewRAG()
	_ = g.Assign(1, "A")
	if err := g.Assign(2, "A"); err == nil {
		t.Error("assigning a held resource to another process should fail")
	}
	if err := g.Assign(1, "A"); err != nil {
		t.Errorf("re-assigning to the same holder should be a no-op: %v", err)
	}
}

func TestRAGAssignClearsRequest(t *testing.T) {
	g := NewRAG()
	_ = g.Assign(1, "A")
	g.Request(2, "A")
	g.Release("A")
	_ = g.Assign(2, "A")
	g.Request(1, "A")
	// P1 waits on P2, but P2 waits on nothing: no cycle.
	if cycle := g.DetectDeadlock(); cycle != nil {
		t.Errorf("false deadlock after grant: %v", cycle)
	}
}

// TestBankerTextbook uses the example from Silberschatz §8.6.2:
// 5 processes, 3 resource types A(10) B(5) C(7).
func TestBankerTextbook(t *testing.T) {
	b, err := NewBanker([]int{10, 5, 7}, [][]int{
		{7, 5, 3},
		{3, 2, 2},
		{9, 0, 2},
		{2, 2, 2},
		{4, 3, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Establish the textbook allocation state.
	alloc := [][]int{
		{0, 1, 0},
		{2, 0, 0},
		{3, 0, 2},
		{2, 1, 1},
		{0, 0, 2},
	}
	for i, row := range alloc {
		ok, err := b.Request(i, row)
		if err != nil || !ok {
			t.Fatalf("setup request %d failed: ok=%v err=%v", i, ok, err)
		}
	}
	safe, order := b.IsSafe()
	if !safe {
		t.Fatal("textbook state should be safe")
	}
	if len(order) != 5 {
		t.Errorf("safe order covers %d processes, want 5", len(order))
	}
	// P1 requests (1,0,2): grantable per the textbook.
	ok, err := b.Request(1, []int{1, 0, 2})
	if err != nil || !ok {
		t.Errorf("P1 request (1,0,2) should be granted: ok=%v err=%v", ok, err)
	}
	// P0 requests (0,2,0): leaves the system unsafe per the textbook.
	ok, err = b.Request(0, []int{0, 2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("P0 request (0,2,0) should be denied as unsafe")
	}
}

func TestBankerRejectsExcessRequests(t *testing.T) {
	b, err := NewBanker([]int{3}, [][]int{{2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Request(0, []int{3}); err == nil {
		t.Error("request beyond declared max should error")
	}
	if _, err := b.Request(0, []int{-1}); err == nil {
		t.Error("negative request should error")
	}
	if _, err := b.Request(5, []int{1}); err == nil {
		t.Error("unknown process should error")
	}
	if _, err := b.Request(0, []int{1, 1}); err == nil {
		t.Error("wrong-arity request should error")
	}
	if ok, err := b.Request(0, []int{2}); err != nil || !ok {
		t.Errorf("valid request denied: ok=%v err=%v", ok, err)
	}
	// Resources exhausted: next request must wait (false, nil).
	b2, _ := NewBanker([]int{1}, [][]int{{1}, {1}})
	if ok, err := b2.Request(0, []int{1}); err != nil || !ok {
		t.Fatalf("first request failed: %v %v", ok, err)
	}
	if ok, err := b2.Request(1, []int{1}); err != nil || ok {
		t.Errorf("request exceeding available should wait, got ok=%v err=%v", ok, err)
	}
}

func TestBankerReleaseAll(t *testing.T) {
	b, _ := NewBanker([]int{2}, [][]int{{2}, {2}})
	_, _ = b.Request(0, []int{2})
	if got := b.Available()[0]; got != 0 {
		t.Fatalf("available = %d, want 0", got)
	}
	if err := b.ReleaseAll(0); err != nil {
		t.Fatal(err)
	}
	if got := b.Available()[0]; got != 2 {
		t.Errorf("available after release = %d, want 2", got)
	}
	if err := b.ReleaseAll(7); err == nil {
		t.Error("releasing unknown process should error")
	}
}

func TestBankerConstructionValidation(t *testing.T) {
	if _, err := NewBanker([]int{1}, [][]int{{1, 2}}); err == nil {
		t.Error("ragged max matrix accepted")
	}
	if _, err := NewBanker([]int{-1}, nil); err == nil {
		t.Error("negative available accepted")
	}
	if _, err := NewBanker([]int{1}, [][]int{{-1}}); err == nil {
		t.Error("negative max accepted")
	}
}

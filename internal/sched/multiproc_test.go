package sched

import (
	"testing"
	"testing/quick"
)

func TestMultiprocessorStrategiesCompleteAllWork(t *testing.T) {
	procs := RandomWorkload(40, 100, 20, 7)
	var totalBurst int64
	for _, p := range procs {
		totalBurst += p.Burst
	}
	for _, s := range []MPStrategy{GlobalQueue, PerCPUQueue, PerCPUStealing} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			r, err := Multiprocessor(procs, 4, s)
			if err != nil {
				t.Fatal(err)
			}
			ran := map[int]int64{}
			for _, sl := range r.Slices {
				ran[sl.PID] += sl.End - sl.Start
			}
			for _, p := range procs {
				if ran[p.ID] != p.Burst {
					t.Errorf("process %d ran %d, want %d", p.ID, ran[p.ID], p.Burst)
				}
			}
			// 4 CPUs must not be slower than 1 CPU and not faster than
			// the perfect-split lower bound.
			if r.Makespan*4 < totalBurst {
				t.Errorf("makespan %d beats the lower bound %d/4", r.Makespan, totalBurst)
			}
		})
	}
}

func TestMultiprocessorNoOverlapPerCPU(t *testing.T) {
	procs := RandomWorkload(30, 50, 15, 3)
	r, err := Multiprocessor(procs, 3, GlobalQueue)
	if err != nil {
		t.Fatal(err)
	}
	perCPU := map[int][]Slice{}
	for _, s := range r.Slices {
		perCPU[s.CPU] = append(perCPU[s.CPU], s)
	}
	for cpu, slices := range perCPU {
		for i := 0; i < len(slices); i++ {
			for j := i + 1; j < len(slices); j++ {
				a, b := slices[i], slices[j]
				if a.Start < b.End && b.Start < a.End {
					t.Errorf("CPU %d runs two processes at once: %+v %+v", cpu, a, b)
				}
			}
		}
	}
}

func TestStealingHelpsImbalance(t *testing.T) {
	// All long jobs round-robin to queues; one queue gets the huge job.
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 100},
		{ID: 1, Arrival: 0, Burst: 1},
		{ID: 2, Arrival: 0, Burst: 1},
		{ID: 3, Arrival: 0, Burst: 1},
		{ID: 4, Arrival: 0, Burst: 1},
		{ID: 5, Arrival: 0, Burst: 1},
	}
	noSteal, err := Multiprocessor(procs, 2, PerCPUQueue)
	if err != nil {
		t.Fatal(err)
	}
	steal, err := Multiprocessor(procs, 2, PerCPUStealing)
	if err != nil {
		t.Fatal(err)
	}
	if steal.Makespan > noSteal.Makespan {
		t.Errorf("stealing makespan %d worse than static %d", steal.Makespan, noSteal.Makespan)
	}
	if steal.Steals == 0 {
		t.Error("expected at least one steal on an imbalanced workload")
	}
}

func TestMultiprocessorValidation(t *testing.T) {
	if _, err := Multiprocessor(textbook(), 0, GlobalQueue); err == nil {
		t.Error("0 CPUs accepted")
	}
	if _, err := Multiprocessor([]Process{{ID: 0, Burst: 0}}, 2, GlobalQueue); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestCPUUtilization(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 10},
		{ID: 1, Arrival: 0, Burst: 10},
	}
	r, err := Multiprocessor(procs, 2, GlobalQueue)
	if err != nil {
		t.Fatal(err)
	}
	util := CPUUtilization(r, 2)
	for cpu, u := range util {
		if u != 1.0 {
			t.Errorf("CPU %d utilization = %g, want 1.0", cpu, u)
		}
	}
	empty := CPUUtilization(Result{}, 2)
	if empty[0] != 0 || empty[1] != 0 {
		t.Error("utilization of empty result should be zero")
	}
}

func TestMPStrategyString(t *testing.T) {
	if GlobalQueue.String() != "global-queue" || PerCPUQueue.String() != "per-cpu" ||
		PerCPUStealing.String() != "per-cpu-stealing" || MPStrategy(9).String() != "unknown" {
		t.Error("MPStrategy.String mismatch")
	}
}

// Property: more CPUs never increase the global-queue makespan.
func TestMoreCPUsNeverHurtProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%12) + 1
		procs := RandomWorkload(n, 0, 30, seed)
		prev := int64(-1)
		for _, cpus := range []int{1, 2, 4} {
			r, err := Multiprocessor(procs, cpus, GlobalQueue)
			if err != nil {
				return false
			}
			if prev >= 0 && r.Makespan > prev {
				return false
			}
			prev = r.Makespan
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMultiprocessorGlobal(b *testing.B) {
	procs := RandomWorkload(500, 1000, 40, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multiprocessor(procs, 8, GlobalQueue); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiprocessorStealing(b *testing.B) {
	procs := RandomWorkload(500, 1000, 40, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Multiprocessor(procs, 8, PerCPUStealing); err != nil {
			b.Fatal(err)
		}
	}
}

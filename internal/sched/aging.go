package sched

import "fmt"

// PriorityAging runs non-preemptive priority scheduling with aging: a
// waiting process's effective priority improves by one level for every
// `agingQuantum` time units it has waited, bounding starvation — the
// standard fix the OS courses pair with "deadline and starvation".
// agingQuantum <= 0 disables aging (pure priority).
func PriorityAging(procs []Process, agingQuantum int64) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	pending := byArrival(procs)
	var slices []Slice
	t := int64(0)
	effective := func(p Process, now int64) float64 {
		eff := float64(p.Priority)
		if agingQuantum > 0 && now > p.Arrival {
			eff -= float64(now-p.Arrival) / float64(agingQuantum)
		}
		return eff
	}
	for len(pending) > 0 {
		best := -1
		for i, p := range pending {
			if p.Arrival > t {
				continue
			}
			if best == -1 {
				best = i
				continue
			}
			ei, eb := effective(p, t), effective(pending[best], t)
			if ei < eb || (ei == eb && priLess(p, pending[best])) {
				best = i
			}
		}
		if best == -1 {
			t = pending[0].Arrival
			continue
		}
		p := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		slices = append(slices, Slice{PID: p.ID, Start: t, End: t + p.Burst})
		t += p.Burst
	}
	name := "priority-aging"
	if agingQuantum <= 0 {
		name = "priority-aging(off)"
	} else {
		name = fmt.Sprintf("priority-aging(q=%d)", agingQuantum)
	}
	return finalize(name, procs, slices, 0, 0), nil
}

// Package sched implements the deterministic CPU-scheduling and deadlock
// simulators behind the operating-systems content that every surveyed
// program uses for PDC coverage: FCFS, SJF, SRTF, round-robin, priority
// and multi-level feedback queue scheduling on one processor;
// global-queue and per-CPU (with optional work stealing) scheduling on
// multiprocessors; resource-allocation-graph deadlock detection; and the
// Banker's algorithm for deadlock avoidance.
package sched

import (
	"fmt"
	"math/rand"
	"sort"
)

// Process is one schedulable job.
type Process struct {
	ID      int
	Name    string
	Arrival int64 // arrival time
	Burst   int64 // total CPU demand
	// Priority orders priority-based policies; lower value means higher
	// priority.
	Priority int
}

// Slice is one contiguous run of a process on a CPU in the Gantt chart.
type Slice struct {
	PID   int
	CPU   int
	Start int64
	End   int64
}

// ProcMetrics are the per-process scheduling metrics the OS courses grade.
type ProcMetrics struct {
	PID        int
	Completion int64
	Turnaround int64 // completion - arrival
	Waiting    int64 // turnaround - burst
	Response   int64 // first run - arrival
}

// Result is the outcome of one scheduling simulation.
type Result struct {
	Policy   string
	Slices   []Slice
	Metrics  map[int]ProcMetrics
	Makespan int64
	// Preemptions counts involuntary context switches.
	Preemptions int
	// Steals counts work-stealing migrations (multiprocessor only).
	Steals int
}

// AvgWaiting returns the mean waiting time across processes.
func (r Result) AvgWaiting() float64 { return r.avg(func(m ProcMetrics) int64 { return m.Waiting }) }

// AvgTurnaround returns the mean turnaround time across processes.
func (r Result) AvgTurnaround() float64 {
	return r.avg(func(m ProcMetrics) int64 { return m.Turnaround })
}

// AvgResponse returns the mean response time across processes.
func (r Result) AvgResponse() float64 { return r.avg(func(m ProcMetrics) int64 { return m.Response }) }

func (r Result) avg(f func(ProcMetrics) int64) float64 {
	if len(r.Metrics) == 0 {
		return 0
	}
	var sum int64
	for _, m := range r.Metrics {
		sum += f(m)
	}
	return float64(sum) / float64(len(r.Metrics))
}

// Validate checks a workload for simulation: positive bursts, non-negative
// arrivals, unique IDs.
func Validate(procs []Process) error {
	seen := make(map[int]bool, len(procs))
	for _, p := range procs {
		if p.Burst <= 0 {
			return fmt.Errorf("sched: process %d has non-positive burst %d", p.ID, p.Burst)
		}
		if p.Arrival < 0 {
			return fmt.Errorf("sched: process %d has negative arrival %d", p.ID, p.Arrival)
		}
		if seen[p.ID] {
			return fmt.Errorf("sched: duplicate process ID %d", p.ID)
		}
		seen[p.ID] = true
	}
	return nil
}

// RandomWorkload generates n processes with arrivals in [0, arrivalSpan)
// and bursts in [1, maxBurst], deterministically from seed.
func RandomWorkload(n int, arrivalSpan, maxBurst int64, seed int64) []Process {
	rng := rand.New(rand.NewSource(seed))
	procs := make([]Process, n)
	for i := range procs {
		arr := int64(0)
		if arrivalSpan > 0 {
			arr = rng.Int63n(arrivalSpan)
		}
		procs[i] = Process{
			ID:       i,
			Name:     fmt.Sprintf("P%d", i),
			Arrival:  arr,
			Burst:    1 + rng.Int63n(maxBurst),
			Priority: rng.Intn(10),
		}
	}
	return procs
}

// byArrival sorts processes by (arrival, ID) for deterministic handling.
func byArrival(procs []Process) []Process {
	out := append([]Process(nil), procs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// finalize fills derived metrics given first-run and completion times.
func finalize(policy string, procs []Process, slices []Slice, preemptions, steals int) Result {
	res := Result{
		Policy:      policy,
		Slices:      slices,
		Metrics:     make(map[int]ProcMetrics, len(procs)),
		Preemptions: preemptions,
		Steals:      steals,
	}
	first := map[int]int64{}
	last := map[int]int64{}
	for _, s := range slices {
		if f, ok := first[s.PID]; !ok || s.Start < f {
			first[s.PID] = s.Start
		}
		if l, ok := last[s.PID]; !ok || s.End > l {
			last[s.PID] = s.End
		}
		if s.End > res.Makespan {
			res.Makespan = s.End
		}
	}
	for _, p := range procs {
		m := ProcMetrics{PID: p.ID, Completion: last[p.ID]}
		m.Turnaround = m.Completion - p.Arrival
		m.Waiting = m.Turnaround - p.Burst
		m.Response = first[p.ID] - p.Arrival
		res.Metrics[p.ID] = m
	}
	return res
}

// mergeSlices coalesces adjacent slices of the same process on the same
// CPU so Gantt output stays compact.
func mergeSlices(slices []Slice) []Slice {
	if len(slices) == 0 {
		return slices
	}
	out := []Slice{slices[0]}
	for _, s := range slices[1:] {
		top := &out[len(out)-1]
		if top.PID == s.PID && top.CPU == s.CPU && top.End == s.Start {
			top.End = s.End
		} else {
			out = append(out, s)
		}
	}
	return out
}

package sched

import (
	"strings"
	"testing"
)

func TestGanttRendersAllProcesses(t *testing.T) {
	r, err := RR(textbook(), 4)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(r, 60)
	if !strings.Contains(out, "rr(q=4)") {
		t.Error("policy name missing")
	}
	for _, glyph := range []string{"0", "1", "2"} {
		if !strings.Contains(out, glyph) {
			t.Errorf("process glyph %s missing:\n%s", glyph, out)
		}
	}
	if !strings.Contains(out, "cpu0") {
		t.Error("cpu row missing")
	}
}

func TestGanttMultiprocessorRows(t *testing.T) {
	procs := RandomWorkload(10, 10, 10, 1)
	r, err := Multiprocessor(procs, 3, GlobalQueue)
	if err != nil {
		t.Fatal(err)
	}
	out := Gantt(r, 40)
	for _, row := range []string{"cpu0", "cpu1", "cpu2"} {
		if !strings.Contains(out, row) {
			t.Errorf("row %s missing:\n%s", row, out)
		}
	}
}

func TestGanttEmptyAndDefaults(t *testing.T) {
	if got := Gantt(Result{}, 10); !strings.Contains(got, "empty") {
		t.Errorf("empty schedule render = %q", got)
	}
	r, _ := FCFS(textbook())
	if out := Gantt(r, 0); !strings.Contains(out, "cpu0") {
		t.Error("default width render failed")
	}
}

func TestPidGlyph(t *testing.T) {
	if pidGlyph(-1) != '?' {
		t.Error("negative pid glyph")
	}
	if pidGlyph(0) != '0' || pidGlyph(10) != 'A' {
		t.Error("glyph mapping wrong")
	}
}

package sched

import "fmt"

// FCFS runs processes first-come-first-served (non-preemptive).
func FCFS(procs []Process) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	ordered := byArrival(procs)
	var slices []Slice
	t := int64(0)
	for _, p := range ordered {
		if p.Arrival > t {
			t = p.Arrival
		}
		slices = append(slices, Slice{PID: p.ID, Start: t, End: t + p.Burst})
		t += p.Burst
	}
	return finalize("fcfs", procs, slices, 0, 0), nil
}

// SJF runs the shortest job first, non-preemptively, among arrived
// processes (ties broken by arrival then ID).
func SJF(procs []Process) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	pending := byArrival(procs)
	var slices []Slice
	t := int64(0)
	for len(pending) > 0 {
		// Collect arrived processes; if none, jump to next arrival.
		arrivedIdx := -1
		for i, p := range pending {
			if p.Arrival <= t {
				if arrivedIdx == -1 || less(p, pending[arrivedIdx]) {
					arrivedIdx = i
				}
			}
		}
		if arrivedIdx == -1 {
			t = pending[0].Arrival
			continue
		}
		p := pending[arrivedIdx]
		pending = append(pending[:arrivedIdx], pending[arrivedIdx+1:]...)
		slices = append(slices, Slice{PID: p.ID, Start: t, End: t + p.Burst})
		t += p.Burst
	}
	return finalize("sjf", procs, slices, 0, 0), nil
}

func less(a, b Process) bool {
	if a.Burst != b.Burst {
		return a.Burst < b.Burst
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// SRTF runs shortest-remaining-time-first (preemptive SJF).
func SRTF(procs []Process) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	return preemptiveSim("srtf", procs, func(a, b *simProc) bool {
		if a.remaining != b.remaining {
			return a.remaining < b.remaining
		}
		return a.p.ID < b.p.ID
	})
}

// PriorityNP runs non-preemptive priority scheduling (lower Priority
// value first).
func PriorityNP(procs []Process) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	pending := byArrival(procs)
	var slices []Slice
	t := int64(0)
	for len(pending) > 0 {
		best := -1
		for i, p := range pending {
			if p.Arrival <= t {
				if best == -1 || priLess(p, pending[best]) {
					best = i
				}
			}
		}
		if best == -1 {
			t = pending[0].Arrival
			continue
		}
		p := pending[best]
		pending = append(pending[:best], pending[best+1:]...)
		slices = append(slices, Slice{PID: p.ID, Start: t, End: t + p.Burst})
		t += p.Burst
	}
	return finalize("priority-np", procs, slices, 0, 0), nil
}

// PriorityP runs preemptive priority scheduling.
func PriorityP(procs []Process) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	return preemptiveSim("priority-p", procs, func(a, b *simProc) bool {
		if a.p.Priority != b.p.Priority {
			return a.p.Priority < b.p.Priority
		}
		return a.p.ID < b.p.ID
	})
}

func priLess(a, b Process) bool {
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

type simProc struct {
	p         Process
	remaining int64
}

// preemptiveSim is the shared engine for SRTF and preemptive priority:
// at every arrival or completion it re-selects the best ready process.
func preemptiveSim(policy string, procs []Process, better func(a, b *simProc) bool) (Result, error) {
	pending := byArrival(procs)
	ready := []*simProc{}
	var slices []Slice
	preemptions := 0
	t := int64(0)
	var running *simProc
	admit := func() {
		for len(pending) > 0 && pending[0].Arrival <= t {
			ready = append(ready, &simProc{p: pending[0], remaining: pending[0].Burst})
			pending = pending[1:]
		}
	}
	for {
		admit()
		if running == nil && len(ready) == 0 {
			if len(pending) == 0 {
				break
			}
			t = pending[0].Arrival
			continue
		}
		// Pick the best among ready + running.
		best := running
		bestIdx := -1
		for i, sp := range ready {
			if best == nil || better(sp, best) {
				best = sp
				bestIdx = i
			}
		}
		if bestIdx >= 0 {
			if running != nil {
				ready = append(ready, running)
				preemptions++
			}
			ready = append(ready[:bestIdx], ready[bestIdx+1:]...)
			running = best
		}
		// Run until completion or next arrival, whichever first.
		runUntil := t + running.remaining
		if len(pending) > 0 && pending[0].Arrival < runUntil {
			runUntil = pending[0].Arrival
		}
		slices = append(slices, Slice{PID: running.p.ID, Start: t, End: runUntil})
		running.remaining -= runUntil - t
		t = runUntil
		if running.remaining == 0 {
			running = nil
		}
	}
	return finalize(policy, procs, mergeSlices(slices), preemptions, 0), nil
}

// RR runs round-robin with the given time quantum. A process preempted by
// quantum expiry re-enters the queue behind processes that arrived during
// its slice (the standard textbook convention).
func RR(procs []Process, quantum int64) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	if quantum <= 0 {
		return Result{}, fmt.Errorf("sched: round-robin quantum must be positive, got %d", quantum)
	}
	pending := byArrival(procs)
	var queue []*simProc
	var slices []Slice
	preemptions := 0
	t := int64(0)
	admit := func(now int64) {
		for len(pending) > 0 && pending[0].Arrival <= now {
			queue = append(queue, &simProc{p: pending[0], remaining: pending[0].Burst})
			pending = pending[1:]
		}
	}
	admit(t)
	for len(queue) > 0 || len(pending) > 0 {
		if len(queue) == 0 {
			t = pending[0].Arrival
			admit(t)
			continue
		}
		sp := queue[0]
		queue = queue[1:]
		run := quantum
		if sp.remaining < run {
			run = sp.remaining
		}
		slices = append(slices, Slice{PID: sp.p.ID, Start: t, End: t + run})
		sp.remaining -= run
		t += run
		admit(t)
		if sp.remaining > 0 {
			queue = append(queue, sp)
			preemptions++
		}
	}
	return finalize(fmt.Sprintf("rr(q=%d)", quantum), procs, mergeSlices(slices), preemptions, 0), nil
}

// MLFQ runs a multi-level feedback queue: level i uses quanta[i]; a
// process exhausting its quantum is demoted one level; the lowest level
// is round-robin. boostEvery, when positive, periodically moves all
// processes back to the top level to prevent starvation.
func MLFQ(procs []Process, quanta []int64, boostEvery int64) (Result, error) {
	if err := Validate(procs); err != nil {
		return Result{}, err
	}
	if len(quanta) == 0 {
		return Result{}, fmt.Errorf("sched: MLFQ needs at least one level")
	}
	for i, q := range quanta {
		if q <= 0 {
			return Result{}, fmt.Errorf("sched: MLFQ level %d has non-positive quantum %d", i, q)
		}
	}
	pending := byArrival(procs)
	levels := make([][]*simProc, len(quanta))
	var slices []Slice
	preemptions := 0
	t := int64(0)
	lastBoost := int64(0)
	admit := func(now int64) {
		for len(pending) > 0 && pending[0].Arrival <= now {
			levels[0] = append(levels[0], &simProc{p: pending[0], remaining: pending[0].Burst})
			pending = pending[1:]
		}
	}
	boost := func(now int64) {
		if boostEvery <= 0 {
			return
		}
		for now-lastBoost >= boostEvery {
			lastBoost += boostEvery
			for l := 1; l < len(levels); l++ {
				levels[0] = append(levels[0], levels[l]...)
				levels[l] = nil
			}
		}
	}
	admit(t)
	remainingProcs := func() bool {
		if len(pending) > 0 {
			return true
		}
		for _, l := range levels {
			if len(l) > 0 {
				return true
			}
		}
		return false
	}
	for remainingProcs() {
		lvl := -1
		for i := range levels {
			if len(levels[i]) > 0 {
				lvl = i
				break
			}
		}
		if lvl == -1 {
			t = pending[0].Arrival
			admit(t)
			boost(t)
			continue
		}
		sp := levels[lvl][0]
		levels[lvl] = levels[lvl][1:]
		run := quanta[lvl]
		if sp.remaining < run {
			run = sp.remaining
		}
		slices = append(slices, Slice{PID: sp.p.ID, Start: t, End: t + run})
		sp.remaining -= run
		t += run
		admit(t)
		boost(t)
		if sp.remaining > 0 {
			next := lvl + 1
			if next >= len(levels) {
				next = len(levels) - 1
			}
			levels[next] = append(levels[next], sp)
			preemptions++
		}
	}
	return finalize("mlfq", procs, mergeSlices(slices), preemptions, 0), nil
}

// Policies runs every single-CPU policy on the same workload for
// side-by-side comparison, in a fixed order.
func Policies(procs []Process, rrQuantum int64, mlfqQuanta []int64) ([]Result, error) {
	type entry struct {
		name string
		run  func() (Result, error)
	}
	entries := []entry{
		{"fcfs", func() (Result, error) { return FCFS(procs) }},
		{"sjf", func() (Result, error) { return SJF(procs) }},
		{"srtf", func() (Result, error) { return SRTF(procs) }},
		{"priority-np", func() (Result, error) { return PriorityNP(procs) }},
		{"priority-p", func() (Result, error) { return PriorityP(procs) }},
		{"rr", func() (Result, error) { return RR(procs, rrQuantum) }},
		{"mlfq", func() (Result, error) { return MLFQ(procs, mlfqQuanta, 0) }},
	}
	out := make([]Result, 0, len(entries))
	for _, e := range entries {
		r, err := e.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

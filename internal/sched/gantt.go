package sched

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders a Result's schedule as an ASCII Gantt chart, one row per
// CPU, with time compressed to at most maxWidth columns — the chart the
// OS courses have students draw by hand.
func Gantt(r Result, maxWidth int) string {
	if len(r.Slices) == 0 {
		return "(empty schedule)\n"
	}
	if maxWidth <= 0 {
		maxWidth = 80
	}
	makespan := r.Makespan
	if makespan == 0 {
		makespan = 1
	}
	scale := 1.0
	if int(makespan) > maxWidth {
		scale = float64(maxWidth) / float64(makespan)
	}
	col := func(t int64) int { return int(float64(t) * scale) }

	cpus := map[int][]Slice{}
	for _, s := range r.Slices {
		cpus[s.CPU] = append(cpus[s.CPU], s)
	}
	ids := make([]int, 0, len(cpus))
	for cpu := range cpus {
		ids = append(ids, cpu)
	}
	sort.Ints(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "%s (makespan %d)\n", r.Policy, r.Makespan)
	for _, cpu := range ids {
		slices := cpus[cpu]
		sort.Slice(slices, func(i, j int) bool { return slices[i].Start < slices[j].Start })
		row := make([]byte, col(makespan)+1)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range slices {
			glyph := pidGlyph(s.PID)
			lo, hi := col(s.Start), col(s.End)
			if hi <= lo {
				hi = lo + 1
			}
			for i := lo; i < hi && i < len(row); i++ {
				row[i] = glyph
			}
		}
		fmt.Fprintf(&b, "cpu%-2d |%s|\n", cpu, string(row))
	}
	return b.String()
}

// pidGlyph picks a stable printable character for a process ID.
func pidGlyph(pid int) byte {
	const glyphs = "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	if pid < 0 {
		return '?'
	}
	return glyphs[pid%len(glyphs)]
}

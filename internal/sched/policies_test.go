package sched

import (
	"testing"
	"testing/quick"
)

// textbook is the classic 3-process example used across OS textbooks:
// P0(arr 0, burst 24), P1(arr 0, burst 3), P2(arr 0, burst 3).
func textbook() []Process {
	return []Process{
		{ID: 0, Arrival: 0, Burst: 24},
		{ID: 1, Arrival: 0, Burst: 3},
		{ID: 2, Arrival: 0, Burst: 3},
	}
}

func TestFCFSTextbook(t *testing.T) {
	r, err := FCFS(textbook())
	if err != nil {
		t.Fatal(err)
	}
	// Waiting: P0=0, P1=24, P2=27 -> avg 17.
	if got := r.AvgWaiting(); got != 17 {
		t.Errorf("FCFS avg waiting = %g, want 17", got)
	}
	if r.Makespan != 30 {
		t.Errorf("makespan = %d, want 30", r.Makespan)
	}
}

func TestSJFTextbook(t *testing.T) {
	r, err := SJF(textbook())
	if err != nil {
		t.Fatal(err)
	}
	// SJF: P1(0-3), P2(3-6), P0(6-30): waiting 6,0,3 -> avg 3.
	if got := r.AvgWaiting(); got != 3 {
		t.Errorf("SJF avg waiting = %g, want 3", got)
	}
}

func TestRRTextbook(t *testing.T) {
	r, err := RR(textbook(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// Classic result with q=4: P0 waits 6, P1 waits 4, P2 waits 7 -> 17/3.
	if got := r.AvgWaiting(); got != 17.0/3.0 {
		t.Errorf("RR avg waiting = %g, want %g", got, 17.0/3.0)
	}
	if r.Preemptions == 0 {
		t.Error("RR of a long job should preempt at least once")
	}
}

func TestSRTFClassic(t *testing.T) {
	// Silberschatz example: arrivals 0,1,2,3 with bursts 8,4,9,5.
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 8},
		{ID: 1, Arrival: 1, Burst: 4},
		{ID: 2, Arrival: 2, Burst: 9},
		{ID: 3, Arrival: 3, Burst: 5},
	}
	r, err := SRTF(procs)
	if err != nil {
		t.Fatal(err)
	}
	// Known answer: average waiting time 6.5.
	if got := r.AvgWaiting(); got != 6.5 {
		t.Errorf("SRTF avg waiting = %g, want 6.5", got)
	}
}

func TestPriorityPolicies(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 10, Priority: 3},
		{ID: 1, Arrival: 0, Burst: 1, Priority: 1},
		{ID: 2, Arrival: 0, Burst: 2, Priority: 4},
		{ID: 3, Arrival: 0, Burst: 1, Priority: 5},
		{ID: 4, Arrival: 0, Burst: 5, Priority: 2},
	}
	r, err := PriorityNP(procs)
	if err != nil {
		t.Fatal(err)
	}
	// Order: P1, P4, P0, P2, P3 -> waiting 6,0,16,18,1 -> avg 8.2.
	if got := r.AvgWaiting(); got != 8.2 {
		t.Errorf("PriorityNP avg waiting = %g, want 8.2", got)
	}
	// Preemptive version on same all-at-zero arrivals gives same result.
	rp, err := PriorityP(procs)
	if err != nil {
		t.Fatal(err)
	}
	if got := rp.AvgWaiting(); got != 8.2 {
		t.Errorf("PriorityP avg waiting = %g, want 8.2", got)
	}
}

func TestPriorityPreemption(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 10, Priority: 5},
		{ID: 1, Arrival: 2, Burst: 2, Priority: 1}, // preempts P0
	}
	r, err := PriorityP(procs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 1 {
		t.Errorf("Preemptions = %d, want 1", r.Preemptions)
	}
	if r.Metrics[1].Response != 0 {
		t.Errorf("high-priority response = %d, want 0", r.Metrics[1].Response)
	}
}

func TestMLFQDemotion(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 20}, // CPU hog: demoted
		{ID: 1, Arrival: 1, Burst: 2},  // short job: finishes at top level
	}
	r, err := MLFQ(procs, []int64{2, 4, 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Metrics[1].Completion > 6 {
		t.Errorf("short job completed at %d; MLFQ should favor it", r.Metrics[1].Completion)
	}
	if r.Metrics[0].Completion != 22 {
		t.Errorf("total work should finish at 22, got %d", r.Metrics[0].Completion)
	}
}

func TestMLFQBoost(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 30},
		{ID: 1, Arrival: 0, Burst: 30},
	}
	r, err := MLFQ(procs, []int64{2, 4}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Makespan != 60 {
		t.Errorf("makespan = %d, want 60", r.Makespan)
	}
}

func TestValidation(t *testing.T) {
	bad := [][]Process{
		{{ID: 0, Burst: 0}},
		{{ID: 0, Burst: 5, Arrival: -1}},
		{{ID: 0, Burst: 1}, {ID: 0, Burst: 2}},
	}
	for i, procs := range bad {
		if _, err := FCFS(procs); err == nil {
			t.Errorf("case %d: invalid workload accepted", i)
		}
	}
	if _, err := RR(textbook(), 0); err == nil {
		t.Error("RR with zero quantum accepted")
	}
	if _, err := MLFQ(textbook(), nil, 0); err == nil {
		t.Error("MLFQ with no levels accepted")
	}
	if _, err := MLFQ(textbook(), []int64{0}, 0); err == nil {
		t.Error("MLFQ with zero quantum accepted")
	}
}

func TestIdleGapHandling(t *testing.T) {
	procs := []Process{
		{ID: 0, Arrival: 0, Burst: 2},
		{ID: 1, Arrival: 10, Burst: 2},
	}
	for name, fn := range map[string]func() (Result, error){
		"fcfs":  func() (Result, error) { return FCFS(procs) },
		"sjf":   func() (Result, error) { return SJF(procs) },
		"srtf":  func() (Result, error) { return SRTF(procs) },
		"prio":  func() (Result, error) { return PriorityNP(procs) },
		"priop": func() (Result, error) { return PriorityP(procs) },
		"rr":    func() (Result, error) { return RR(procs, 3) },
		"mlfq":  func() (Result, error) { return MLFQ(procs, []int64{3}, 0) },
	} {
		r, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Makespan != 12 {
			t.Errorf("%s: makespan = %d, want 12 (idle gap mishandled)", name, r.Makespan)
		}
		if r.Metrics[1].Waiting != 0 {
			t.Errorf("%s: P1 waiting = %d, want 0", name, r.Metrics[1].Waiting)
		}
	}
}

// Property: for any workload, every policy (a) schedules each process
// for exactly its burst, (b) never runs two slices concurrently, and
// (c) SJF's average waiting <= FCFS's on simultaneous arrivals
// (SJF optimality among non-preemptive policies).
func TestPolicyInvariantsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		procs := RandomWorkload(n, 0, 20, seed) // all arrive at 0
		fcfs, err1 := FCFS(procs)
		sjf, err2 := SJF(procs)
		rr, err3 := RR(procs, 3)
		srtf, err4 := SRTF(procs)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		for _, r := range []Result{fcfs, sjf, rr, srtf} {
			ran := map[int]int64{}
			for _, s := range r.Slices {
				if s.End <= s.Start {
					return false
				}
				ran[s.PID] += s.End - s.Start
			}
			for _, p := range procs {
				if ran[p.ID] != p.Burst {
					return false
				}
			}
			// Slices on the single CPU must not overlap.
			for i := 0; i < len(r.Slices); i++ {
				for j := i + 1; j < len(r.Slices); j++ {
					a, b := r.Slices[i], r.Slices[j]
					if a.Start < b.End && b.Start < a.End {
						return false
					}
				}
			}
		}
		if sjf.AvgWaiting() > fcfs.AvgWaiting()+1e-9 {
			return false
		}
		// SRTF is optimal among all policies for average waiting.
		if srtf.AvgWaiting() > sjf.AvgWaiting()+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoliciesRunner(t *testing.T) {
	rs, err := Policies(textbook(), 4, []int64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 7 {
		t.Fatalf("got %d results, want 7", len(rs))
	}
	if rs[0].Policy != "fcfs" || rs[5].Policy != "rr(q=4)" {
		t.Errorf("unexpected policy order: %v, %v", rs[0].Policy, rs[5].Policy)
	}
	if _, err := Policies(textbook(), 0, []int64{2}); err == nil {
		t.Error("invalid quantum should propagate an error")
	}
}

func BenchmarkSRTF(b *testing.B) {
	procs := RandomWorkload(200, 500, 50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SRTF(procs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLFQ(b *testing.B) {
	procs := RandomWorkload(200, 500, 50, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MLFQ(procs, []int64{2, 4, 8}, 50); err != nil {
			b.Fatal(err)
		}
	}
}

package txn

import (
	"fmt"
	"sync"
)

// OpType is an operation kind in a history.
type OpType int

const (
	// OpRead is a transactional read.
	OpRead OpType = iota
	// OpWrite is a transactional write.
	OpWrite
	// OpCommit finishes a transaction successfully.
	OpCommit
	// OpAbort rolls a transaction back.
	OpAbort
)

// String returns the op letter used in textbook histories.
func (o OpType) String() string {
	switch o {
	case OpRead:
		return "r"
	case OpWrite:
		return "w"
	case OpCommit:
		return "c"
	case OpAbort:
		return "a"
	default:
		return "?"
	}
}

// HistOp is one history entry.
type HistOp struct {
	Txn int
	Op  OpType
	Key string
}

// String renders the op in textbook notation, e.g. "w1[x]".
func (h HistOp) String() string {
	if h.Op == OpCommit || h.Op == OpAbort {
		return fmt.Sprintf("%s%d", h.Op, h.Txn)
	}
	return fmt.Sprintf("%s%d[%s]", h.Op, h.Txn, h.Key)
}

// History is a thread-safe recorded schedule.
type History struct {
	mu  sync.Mutex
	ops []HistOp
}

// Record appends one operation.
func (h *History) Record(txn int, op OpType, key string) {
	h.mu.Lock()
	h.ops = append(h.ops, HistOp{Txn: txn, Op: op, Key: key})
	h.mu.Unlock()
}

// Ops returns a copy of the recorded operations.
func (h *History) Ops() []HistOp {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HistOp(nil), h.ops...)
}

// Len reports the number of recorded operations.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// CommittedProjection returns the history restricted to transactions
// that committed.
func CommittedProjection(ops []HistOp) []HistOp {
	committed := map[int]bool{}
	for _, op := range ops {
		if op.Op == OpCommit {
			committed[op.Txn] = true
		}
	}
	var out []HistOp
	for _, op := range ops {
		if committed[op.Txn] {
			out = append(out, op)
		}
	}
	return out
}

// PrecedenceGraph returns adjacency sets for the conflict graph of the
// history: an edge Ti -> Tj for each pair of conflicting operations
// (same key, different transactions, at least one write) where Ti's
// operation comes first.
func PrecedenceGraph(ops []HistOp) map[int]map[int]bool {
	g := map[int]map[int]bool{}
	addNode := func(t int) {
		if g[t] == nil {
			g[t] = map[int]bool{}
		}
	}
	for i, a := range ops {
		if a.Op != OpRead && a.Op != OpWrite {
			continue
		}
		addNode(a.Txn)
		for _, b := range ops[i+1:] {
			if b.Op != OpRead && b.Op != OpWrite {
				continue
			}
			if b.Txn == a.Txn || b.Key != a.Key {
				continue
			}
			if a.Op == OpWrite || b.Op == OpWrite {
				addNode(b.Txn)
				g[a.Txn][b.Txn] = true
			}
		}
	}
	return g
}

// IsConflictSerializable reports whether the committed projection of the
// history is conflict-serializable (its precedence graph is acyclic) and
// returns a witness serial order when it is.
func IsConflictSerializable(ops []HistOp) (bool, []int) {
	committed := CommittedProjection(ops)
	g := PrecedenceGraph(committed)
	// Kahn's algorithm.
	indeg := map[int]int{}
	for t := range g {
		if _, ok := indeg[t]; !ok {
			indeg[t] = 0
		}
		for u := range g[t] {
			indeg[u]++
		}
	}
	var queue, order []int
	for t, d := range indeg {
		if d == 0 {
			queue = append(queue, t)
		}
	}
	for len(queue) > 0 {
		// Deterministic: take the smallest.
		minIdx := 0
		for i := range queue {
			if queue[i] < queue[minIdx] {
				minIdx = i
			}
		}
		t := queue[minIdx]
		queue = append(queue[:minIdx], queue[minIdx+1:]...)
		order = append(order, t)
		for u := range g[t] {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	if len(order) != len(indeg) {
		return false, nil
	}
	return true, order
}

package txn

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"pdcedu/internal/store"
)

// DB is a transactional key-value store protected by strict 2PL. The
// data lives in a store.Engine — the same sharded, versioned substrate
// the csnet KV handler and the dist cluster run on — so transactions
// no longer funnel every access through one DB-wide mutex: the lock
// manager serializes conflicting transactions per key, and the engine
// shards the physical access under them.
type DB struct {
	lm      *LockManager
	eng     store.Engine
	nextTxn atomic.Int64
	history *History
	// Commits and Aborts count outcomes.
	Commits atomic.Int64
	Aborts  atomic.Int64
}

// NewDB creates an empty store under the given deadlock policy, on a
// fresh sharded engine. The history of every successful read/write is
// recorded for offline serializability checking.
func NewDB(s Strategy) *DB {
	return NewDBOn(s, store.NewSharded(store.Options{}))
}

// NewDBOn creates a DB over an existing engine, so a node can share
// one storage substrate between its transactional and replicated
// faces.
func NewDBOn(s Strategy, eng store.Engine) *DB {
	return &DB{lm: NewLockManager(s), eng: eng, history: &History{}}
}

// Engine returns the underlying storage engine.
func (db *DB) Engine() store.Engine { return db.eng }

// encInt packs a value for the byte-oriented engine.
func encInt(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v))
	return b[:]
}

// decInt unpacks an engine value; absent or foreign-sized values read
// as zero, matching the old map's zero-value semantics.
func decInt(b []byte, ok bool) int64 {
	if !ok || len(b) != 8 {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

// Set initializes a key outside any transaction — seeding for tests,
// benchmarks, and demos. It bypasses the lock manager, so it must not
// run concurrently with active transactions: a Set racing a
// transaction's Put on the same key can be overwritten (and undone by
// a later rollback) because nothing orders the two. The old DB-wide
// mutex hid that race by accident; the contract is now explicit.
func (db *DB) Set(key string, v int64) {
	db.eng.Set(key, encInt(v), 0)
}

// ReadCommitted returns a key's committed value outside any transaction.
func (db *DB) ReadCommitted(key string) int64 {
	e, ok := db.eng.Get(key)
	return decInt(e.Value, ok)
}

// History returns the recorded operation history.
func (db *DB) History() *History { return db.history }

// Txn is an active transaction.
type Txn struct {
	db   *DB
	id   int
	undo []undoRec
	done bool
}

type undoRec struct {
	key  string
	prev int64
	had  bool
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	id := int(db.nextTxn.Add(1))
	db.lm.Register(id)
	return &Txn{db: db, id: id}
}

// ID returns the transaction identifier.
func (t *Txn) ID() int { return t.id }

// Get reads key under a shared lock.
func (t *Txn) Get(key string) (int64, error) {
	if t.done {
		return 0, fmt.Errorf("txn: transaction %d already finished", t.id)
	}
	if err := t.db.lm.Acquire(t.id, key, S); err != nil {
		t.rollback()
		return 0, err
	}
	e, ok := t.db.eng.Get(key)
	t.db.history.Record(t.id, OpRead, key)
	return decInt(e.Value, ok), nil
}

// Put writes key under an exclusive lock, logging the before-image for
// rollback. The 2PL X lock serializes transactional access to the key,
// so the read-for-undo and the write need no extra latch.
func (t *Txn) Put(key string, v int64) error {
	if t.done {
		return fmt.Errorf("txn: transaction %d already finished", t.id)
	}
	if err := t.db.lm.Acquire(t.id, key, X); err != nil {
		t.rollback()
		return err
	}
	e, had := t.db.eng.Get(key)
	t.undo = append(t.undo, undoRec{key: key, prev: decInt(e.Value, had), had: had})
	t.db.eng.Set(key, encInt(v), 0)
	t.db.history.Record(t.id, OpWrite, key)
	return nil
}

// Commit finishes the transaction; if it was chosen as a deadlock victim
// since its last operation, the writes are rolled back and ErrAborted
// returned.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("txn: transaction %d already finished", t.id)
	}
	if t.db.lm.Aborted(t.id) {
		t.rollback()
		return ErrAborted
	}
	t.done = true
	t.db.history.Record(t.id, OpCommit, "")
	t.db.lm.ReleaseAll(t.id)
	t.db.Commits.Add(1)
	return nil
}

// Abort rolls the transaction back voluntarily.
func (t *Txn) Abort() {
	if !t.done {
		t.rollback()
	}
}

// rollback undoes writes in reverse order and releases locks. Each
// restore is a fresh versioned write (or tombstone): the engine's
// history moves forward even as the logical value moves back.
func (t *Txn) rollback() {
	if t.done {
		return
	}
	t.done = true
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if u.had {
			t.db.eng.Set(u.key, encInt(u.prev), 0)
		} else {
			t.db.eng.Delete(u.key)
		}
	}
	t.db.history.Record(t.id, OpAbort, "")
	t.db.lm.ReleaseAll(t.id)
	t.db.Aborts.Add(1)
}

// Transfer is the canonical bank workload: move amount from one account
// to another inside a transaction, retrying on deadlock aborts up to
// maxRetries times.
func Transfer(db *DB, from, to string, amount int64, maxRetries int) error {
	for attempt := 0; ; attempt++ {
		t := db.Begin()
		err := func() error {
			a, err := t.Get(from)
			if err != nil {
				return err
			}
			b, err := t.Get(to)
			if err != nil {
				return err
			}
			if err := t.Put(from, a-amount); err != nil {
				return err
			}
			if err := t.Put(to, b+amount); err != nil {
				return err
			}
			return t.Commit()
		}()
		if err == nil {
			return nil
		}
		if err == ErrAborted && attempt < maxRetries {
			continue
		}
		t.Abort()
		return err
	}
}

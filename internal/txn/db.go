package txn

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DB is a transactional key-value store protected by strict 2PL.
type DB struct {
	lm      *LockManager
	mu      sync.Mutex
	data    map[string]int64
	nextTxn atomic.Int64
	history *History
	// Commits and Aborts count outcomes.
	Commits atomic.Int64
	Aborts  atomic.Int64
}

// NewDB creates an empty store under the given deadlock policy. The
// history of every successful read/write is recorded for offline
// serializability checking.
func NewDB(s Strategy) *DB {
	return &DB{lm: NewLockManager(s), data: map[string]int64{}, history: &History{}}
}

// Set initializes a key outside any transaction (test/bench setup).
func (db *DB) Set(key string, v int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.data[key] = v
}

// ReadCommitted returns a key's committed value outside any transaction.
func (db *DB) ReadCommitted(key string) int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.data[key]
}

// History returns the recorded operation history.
func (db *DB) History() *History { return db.history }

// Txn is an active transaction.
type Txn struct {
	db   *DB
	id   int
	undo []undoRec
	done bool
}

type undoRec struct {
	key  string
	prev int64
	had  bool
}

// Begin starts a transaction.
func (db *DB) Begin() *Txn {
	id := int(db.nextTxn.Add(1))
	db.lm.Register(id)
	return &Txn{db: db, id: id}
}

// ID returns the transaction identifier.
func (t *Txn) ID() int { return t.id }

// Get reads key under a shared lock.
func (t *Txn) Get(key string) (int64, error) {
	if t.done {
		return 0, fmt.Errorf("txn: transaction %d already finished", t.id)
	}
	if err := t.db.lm.Acquire(t.id, key, S); err != nil {
		t.rollback()
		return 0, err
	}
	t.db.mu.Lock()
	v := t.db.data[key]
	t.db.mu.Unlock()
	t.db.history.Record(t.id, OpRead, key)
	return v, nil
}

// Put writes key under an exclusive lock, logging the before-image for
// rollback.
func (t *Txn) Put(key string, v int64) error {
	if t.done {
		return fmt.Errorf("txn: transaction %d already finished", t.id)
	}
	if err := t.db.lm.Acquire(t.id, key, X); err != nil {
		t.rollback()
		return err
	}
	t.db.mu.Lock()
	prev, had := t.db.data[key]
	t.undo = append(t.undo, undoRec{key: key, prev: prev, had: had})
	t.db.data[key] = v
	t.db.mu.Unlock()
	t.db.history.Record(t.id, OpWrite, key)
	return nil
}

// Commit finishes the transaction; if it was chosen as a deadlock victim
// since its last operation, the writes are rolled back and ErrAborted
// returned.
func (t *Txn) Commit() error {
	if t.done {
		return fmt.Errorf("txn: transaction %d already finished", t.id)
	}
	if t.db.lm.Aborted(t.id) {
		t.rollback()
		return ErrAborted
	}
	t.done = true
	t.db.history.Record(t.id, OpCommit, "")
	t.db.lm.ReleaseAll(t.id)
	t.db.Commits.Add(1)
	return nil
}

// Abort rolls the transaction back voluntarily.
func (t *Txn) Abort() {
	if !t.done {
		t.rollback()
	}
}

// rollback undoes writes in reverse order and releases locks.
func (t *Txn) rollback() {
	if t.done {
		return
	}
	t.done = true
	t.db.mu.Lock()
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		if u.had {
			t.db.data[u.key] = u.prev
		} else {
			delete(t.db.data, u.key)
		}
	}
	t.db.mu.Unlock()
	t.db.history.Record(t.id, OpAbort, "")
	t.db.lm.ReleaseAll(t.id)
	t.db.Aborts.Add(1)
}

// Transfer is the canonical bank workload: move amount from one account
// to another inside a transaction, retrying on deadlock aborts up to
// maxRetries times.
func Transfer(db *DB, from, to string, amount int64, maxRetries int) error {
	for attempt := 0; ; attempt++ {
		t := db.Begin()
		err := func() error {
			a, err := t.Get(from)
			if err != nil {
				return err
			}
			b, err := t.Get(to)
			if err != nil {
				return err
			}
			if err := t.Put(from, a-amount); err != nil {
				return err
			}
			if err := t.Put(to, b+amount); err != nil {
				return err
			}
			return t.Commit()
		}()
		if err == nil {
			return nil
		}
		if err == ErrAborted && attempt < maxRetries {
			continue
		}
		t.Abort()
		return err
	}
}

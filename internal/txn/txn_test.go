package txn

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestLockBasics(t *testing.T) {
	lm := NewLockManager(Detect)
	lm.Register(1)
	lm.Register(2)
	if err := lm.Acquire(1, "x", S); err != nil {
		t.Fatal(err)
	}
	// Shared locks coexist.
	if err := lm.Acquire(2, "x", S); err != nil {
		t.Fatal(err)
	}
	if m, ok := lm.HoldsLock(1, "x"); !ok || m != S {
		t.Errorf("T1 lock = %v,%v", m, ok)
	}
	lm.ReleaseAll(2)
	// Upgrade S -> X once alone.
	if err := lm.Acquire(1, "x", X); err != nil {
		t.Fatal(err)
	}
	if m, _ := lm.HoldsLock(1, "x"); m != X {
		t.Errorf("upgrade failed, mode = %v", m)
	}
	lm.ReleaseAll(1)
	if _, ok := lm.HoldsLock(1, "x"); ok {
		t.Error("lock survived ReleaseAll")
	}
}

func TestUnregisteredAcquireFails(t *testing.T) {
	lm := NewLockManager(Detect)
	if err := lm.Acquire(9, "x", S); err == nil {
		t.Error("unregistered transaction acquired a lock")
	}
}

func TestDeadlockDetectionResolves(t *testing.T) {
	lm := NewLockManager(Detect)
	lm.Register(1)
	lm.Register(2)
	if err := lm.Acquire(1, "a", X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "b", X); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); errs[0] = lm.Acquire(1, "b", X) }()
	go func() { defer wg.Done(); errs[1] = lm.Acquire(2, "a", X) }()
	wg.Wait()
	aborted := 0
	for _, err := range errs {
		if err == ErrAborted {
			aborted++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if aborted != 1 {
		t.Errorf("aborted = %d, want exactly 1 victim", aborted)
	}
	if lm.Deadlocks == 0 {
		t.Error("deadlock counter not incremented")
	}
	lm.ReleaseAll(1)
	lm.ReleaseAll(2)
}

func TestStrategyAndModeStrings(t *testing.T) {
	if Detect.String() != "detect" || WoundWait.String() != "wound-wait" ||
		WaitDie.String() != "wait-die" || Strategy(9).String() != "unknown" {
		t.Error("Strategy.String mismatch")
	}
	if S.String() != "S" || X.String() != "X" {
		t.Error("Mode.String mismatch")
	}
	if OpRead.String() != "r" || OpWrite.String() != "w" ||
		OpCommit.String() != "c" || OpAbort.String() != "a" || OpType(9).String() != "?" {
		t.Error("OpType.String mismatch")
	}
	op := HistOp{Txn: 1, Op: OpWrite, Key: "x"}
	if op.String() != "w1[x]" {
		t.Errorf("HistOp.String = %q", op.String())
	}
	if (HistOp{Txn: 2, Op: OpCommit}).String() != "c2" {
		t.Error("commit op format wrong")
	}
}

func TestWaitDieYoungerDies(t *testing.T) {
	lm := NewLockManager(WaitDie)
	lm.Register(1) // older
	lm.Register(2) // younger
	if err := lm.Acquire(1, "x", X); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(2, "x", X); err != ErrAborted {
		t.Errorf("younger requester should die, got %v", err)
	}
	if lm.Deaths != 1 {
		t.Errorf("Deaths = %d, want 1", lm.Deaths)
	}
}

func TestWoundWaitOlderWounds(t *testing.T) {
	lm := NewLockManager(WoundWait)
	lm.Register(1) // older
	lm.Register(2) // younger
	if err := lm.Acquire(2, "x", X); err != nil {
		t.Fatal(err)
	}
	// Older transaction wounds the younger holder and proceeds.
	if err := lm.Acquire(1, "x", X); err != nil {
		t.Fatalf("older requester should win: %v", err)
	}
	if !lm.Aborted(2) {
		t.Error("younger holder not wounded")
	}
	if lm.Wounds != 1 {
		t.Errorf("Wounds = %d, want 1", lm.Wounds)
	}
}

func TestConcurrentTransfersPreserveBalance(t *testing.T) {
	for _, strategy := range []Strategy{Detect, WoundWait, WaitDie} {
		strategy := strategy
		t.Run(strategy.String(), func(t *testing.T) {
			db := NewDB(strategy)
			const accounts = 6
			const initial = 1000
			for i := 0; i < accounts; i++ {
				db.Set(fmt.Sprintf("acct%d", i), initial)
			}
			const workers, transfers = 8, 30
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < transfers; i++ {
						from := fmt.Sprintf("acct%d", (w+i)%accounts)
						to := fmt.Sprintf("acct%d", (w+i+1+i%3)%accounts)
						if from == to {
							continue
						}
						// Retry aggressively: aborts are expected.
						_ = Transfer(db, from, to, 5, 50)
					}
				}()
			}
			wg.Wait()
			total := int64(0)
			for i := 0; i < accounts; i++ {
				total += db.ReadCommitted(fmt.Sprintf("acct%d", i))
			}
			if total != accounts*initial {
				t.Errorf("total = %d, want %d (money invented or destroyed)", total, accounts*initial)
			}
			// The recorded committed history must be conflict-serializable.
			ok, _ := IsConflictSerializable(db.History().Ops())
			if !ok {
				t.Error("2PL produced a non-serializable committed history")
			}
		})
	}
}

func TestTxnLifecycleErrors(t *testing.T) {
	db := NewDB(Detect)
	tx := db.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit accepted")
	}
	if _, err := tx.Get("x"); err == nil {
		t.Error("operation on finished txn accepted")
	}
	if err := tx.Put("x", 1); err == nil {
		t.Error("write on finished txn accepted")
	}
	tx.Abort() // no-op on finished txn
}

func TestRollbackRestoresValues(t *testing.T) {
	db := NewDB(Detect)
	db.Set("k", 5)
	tx := db.Begin()
	if err := tx.Put("k", 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Put("new", 1); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if got := db.ReadCommitted("k"); got != 5 {
		t.Errorf("k = %d after rollback, want 5", got)
	}
	if got := db.ReadCommitted("new"); got != 0 {
		t.Errorf("new = %d after rollback, want absent/0", got)
	}
	if db.Aborts.Load() != 1 {
		t.Errorf("Aborts = %d, want 1", db.Aborts.Load())
	}
}

func TestSerializabilityChecker(t *testing.T) {
	// Classic non-serializable schedule: r1[x] w2[x] w1[x] (both commit).
	bad := []HistOp{
		{1, OpRead, "x"},
		{2, OpWrite, "x"},
		{1, OpWrite, "x"},
		{1, OpCommit, ""},
		{2, OpCommit, ""},
	}
	if ok, _ := IsConflictSerializable(bad); ok {
		t.Error("lost-update schedule reported serializable")
	}
	// Serial schedule is fine.
	good := []HistOp{
		{1, OpRead, "x"}, {1, OpWrite, "x"}, {1, OpCommit, ""},
		{2, OpRead, "x"}, {2, OpWrite, "x"}, {2, OpCommit, ""},
	}
	ok, order := IsConflictSerializable(good)
	if !ok {
		t.Error("serial schedule reported non-serializable")
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Errorf("witness order = %v, want [1 2]", order)
	}
	// Aborted transactions are excluded.
	withAbort := []HistOp{
		{1, OpRead, "x"},
		{2, OpWrite, "x"},
		{1, OpWrite, "x"},
		{1, OpCommit, ""},
		{2, OpAbort, ""},
	}
	if ok, _ := IsConflictSerializable(withAbort); !ok {
		t.Error("schedule serializable after excluding aborted txn")
	}
}

// Property: any single-threaded sequential execution is serializable.
func TestSequentialHistoriesSerializableProperty(t *testing.T) {
	f := func(opsRaw []uint8) bool {
		var ops []HistOp
		txn := 1
		for _, b := range opsRaw {
			switch b % 4 {
			case 0:
				ops = append(ops, HistOp{txn, OpRead, fmt.Sprintf("k%d", b%5)})
			case 1:
				ops = append(ops, HistOp{txn, OpWrite, fmt.Sprintf("k%d", b%5)})
			default:
				ops = append(ops, HistOp{txn, OpCommit, ""})
				txn++
			}
		}
		ops = append(ops, HistOp{txn, OpCommit, ""})
		ok, _ := IsConflictSerializable(ops)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTSOBasics(t *testing.T) {
	s := NewTSO(false)
	t1 := s.Begin()
	t2 := s.Begin()
	if err := s.Write(t2, "x", 2); err != nil {
		t.Fatal(err)
	}
	// Older read after younger write: too late.
	if _, err := s.Read(t1, "x"); err != ErrTooLate {
		t.Errorf("old read err = %v, want ErrTooLate", err)
	}
	// Older write after younger write: rejected without Thomas rule.
	if err := s.Write(t1, "x", 1); err != ErrTooLate {
		t.Errorf("old write err = %v, want ErrTooLate", err)
	}
	if s.Rejections != 2 {
		t.Errorf("Rejections = %d, want 2", s.Rejections)
	}
	if s.Value("x") != 2 {
		t.Errorf("value = %d, want 2", s.Value("x"))
	}
}

func TestTSOThomasWriteRule(t *testing.T) {
	s := NewTSO(true)
	t1 := s.Begin()
	t2 := s.Begin()
	if err := s.Write(t2, "x", 2); err != nil {
		t.Fatal(err)
	}
	// Obsolete write skipped silently.
	if err := s.Write(t1, "x", 1); err != nil {
		t.Errorf("Thomas rule should skip, got %v", err)
	}
	if s.Value("x") != 2 {
		t.Errorf("value = %d, want 2 (obsolete write must not land)", s.Value("x"))
	}
	// Write after a younger READ is still rejected.
	t3 := s.Begin()
	t4 := s.Begin()
	if _, err := s.Read(t4, "y"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(t3, "y", 9); err != ErrTooLate {
		t.Errorf("write after younger read = %v, want ErrTooLate", err)
	}
}

func BenchmarkTransfersDetect(b *testing.B)    { benchTransfers(b, Detect) }
func BenchmarkTransfersWoundWait(b *testing.B) { benchTransfers(b, WoundWait) }
func BenchmarkTransfersWaitDie(b *testing.B)   { benchTransfers(b, WaitDie) }

func benchTransfers(b *testing.B, s Strategy) {
	db := NewDB(s)
	const accounts = 8
	for i := 0; i < accounts; i++ {
		db.Set(fmt.Sprintf("acct%d", i), 1_000_000)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			from := fmt.Sprintf("acct%d", i%accounts)
			to := fmt.Sprintf("acct%d", (i+3)%accounts)
			if from != to {
				_ = Transfer(db, from, to, 1, 100)
			}
			i++
		}
	})
}

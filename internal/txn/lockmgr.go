// Package txn implements the transaction-processing content of the
// database column of Table I ("transactions processing, scheduling
// concurrent transactions, transaction locks, and deadlocks"): a strict
// two-phase-locking lock manager with three deadlock policies (waits-for
// cycle detection with youngest-victim abort, wound-wait, wait-die),
// a transactional key-value store with undo logging, basic timestamp-
// ordering concurrency control, and a conflict-serializability checker
// over recorded histories.
package txn

import (
	"errors"
	"fmt"
	"sync"
)

// ErrAborted is returned to a transaction that has been chosen as a
// deadlock victim (or wounded/died under the priority schemes).
var ErrAborted = errors.New("txn: transaction aborted")

// Mode is a lock mode.
type Mode int

const (
	// S is a shared (read) lock.
	S Mode = iota
	// X is an exclusive (write) lock.
	X
)

// String returns the mode name.
func (m Mode) String() string {
	if m == S {
		return "S"
	}
	return "X"
}

// Strategy selects how the lock manager handles deadlocks.
type Strategy int

const (
	// Detect builds the waits-for graph on each block and aborts the
	// youngest transaction on a cycle.
	Detect Strategy = iota
	// WoundWait lets an older requester abort ("wound") younger
	// conflicting holders; younger requesters wait for older holders.
	WoundWait
	// WaitDie lets an older requester wait; a younger requester aborts
	// itself ("dies") instead of waiting on an older holder.
	WaitDie
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case Detect:
		return "detect"
	case WoundWait:
		return "wound-wait"
	case WaitDie:
		return "wait-die"
	default:
		return "unknown"
	}
}

// lockState tracks one key's holders.
type lockState struct {
	holders map[int]Mode // txn -> mode held
}

// LockManager grants S/X locks under strict two-phase locking.
type LockManager struct {
	mu       sync.Mutex
	cond     *sync.Cond
	strategy Strategy
	locks    map[string]*lockState
	// ts assigns each transaction its age (smaller = older).
	ts      map[int]uint64
	nextTS  uint64
	aborted map[int]bool
	// waitsFor[t] = set of transactions t waits on (Detect only).
	waitsFor map[int]map[int]bool
	// stats
	Deadlocks int64
	Wounds    int64
	Deaths    int64
}

// NewLockManager creates a lock manager with the given deadlock policy.
func NewLockManager(s Strategy) *LockManager {
	lm := &LockManager{
		strategy: s,
		locks:    map[string]*lockState{},
		ts:       map[int]uint64{},
		aborted:  map[int]bool{},
		waitsFor: map[int]map[int]bool{},
	}
	lm.cond = sync.NewCond(&lm.mu)
	return lm
}

// Register assigns a begin timestamp to a transaction; must be called
// once before its first Acquire.
func (lm *LockManager) Register(txn int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if _, ok := lm.ts[txn]; !ok {
		lm.nextTS++
		lm.ts[txn] = lm.nextTS
	}
}

// Aborted reports whether the transaction has been marked as a victim.
func (lm *LockManager) Aborted(txn int) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return lm.aborted[txn]
}

// conflicting returns the holders of key that conflict with txn's
// request.
func (st *lockState) conflicting(txn int, mode Mode) []int {
	var out []int
	for h, hm := range st.holders {
		if h == txn {
			continue
		}
		if mode == X || hm == X {
			out = append(out, h)
		}
	}
	return out
}

// canGrant reports whether txn may take key in mode right now.
func (st *lockState) canGrant(txn int, mode Mode) bool {
	if st == nil {
		return true
	}
	return len(st.conflicting(txn, mode)) == 0
}

// Acquire takes key in the given mode for txn, blocking until granted.
// It returns ErrAborted when the transaction loses a deadlock
// resolution; the caller must then roll back and release.
func (lm *LockManager) Acquire(txn int, key string, mode Mode) error {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if _, ok := lm.ts[txn]; !ok {
		return fmt.Errorf("txn: transaction %d not registered", txn)
	}
	for {
		if lm.aborted[txn] {
			delete(lm.waitsFor, txn)
			return ErrAborted
		}
		st := lm.locks[key]
		if st == nil {
			st = &lockState{holders: map[int]Mode{}}
			lm.locks[key] = st
		}
		// Grant, upgrading S to X when requested and compatible.
		if st.canGrant(txn, mode) {
			if prev, held := st.holders[txn]; !held || (prev == S && mode == X) {
				st.holders[txn] = mode
			}
			delete(lm.waitsFor, txn)
			return nil
		}
		conf := st.conflicting(txn, mode)
		switch lm.strategy {
		case WoundWait:
			// Older requester wounds younger holders.
			wounded := false
			for _, h := range conf {
				if lm.ts[txn] < lm.ts[h] {
					lm.abortLocked(h)
					lm.Wounds++
					wounded = true
				}
			}
			if wounded {
				lm.cond.Broadcast()
				continue // re-check grant
			}
			// All conflicting holders are older: wait.
		case WaitDie:
			for _, h := range conf {
				if lm.ts[txn] > lm.ts[h] {
					// Younger than a holder: die.
					lm.abortLocked(txn)
					lm.Deaths++
					lm.cond.Broadcast()
					return ErrAborted
				}
			}
			// Older than every holder: wait.
		case Detect:
			w := lm.waitsFor[txn]
			if w == nil {
				w = map[int]bool{}
				lm.waitsFor[txn] = w
			}
			for _, h := range conf {
				w[h] = true
			}
			if cycle := lm.findCycleLocked(); len(cycle) > 0 {
				victim := cycle[0]
				for _, t := range cycle[1:] {
					if lm.ts[t] > lm.ts[victim] {
						victim = t // youngest dies
					}
				}
				lm.abortLocked(victim)
				lm.Deadlocks++
				lm.cond.Broadcast()
				if victim == txn {
					delete(lm.waitsFor, txn)
					return ErrAborted
				}
				continue
			}
		}
		lm.cond.Wait()
		// Stale waits-for edges are rebuilt on the next iteration.
		delete(lm.waitsFor, txn)
	}
}

// abortLocked marks a victim and strips its locks (the victim's own
// goroutine observes ErrAborted at its next lock-manager interaction).
func (lm *LockManager) abortLocked(victim int) {
	lm.aborted[victim] = true
	for _, st := range lm.locks {
		delete(st.holders, victim)
	}
	delete(lm.waitsFor, victim)
}

// findCycleLocked finds a cycle in the waits-for graph; edges to
// transactions that no longer hold conflicting locks are pruned lazily
// by waiters, so the graph may be slightly stale but only toward false
// positives resolved by the retry loop.
func (lm *LockManager) findCycleLocked() []int {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	parent := map[int]int{}
	var cycle []int
	var dfs func(t int) bool
	dfs = func(t int) bool {
		color[t] = gray
		for u := range lm.waitsFor[t] {
			switch color[u] {
			case white:
				parent[u] = t
				if dfs(u) {
					return true
				}
			case gray:
				cycle = []int{u}
				for cur := t; cur != u; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				return true
			}
		}
		color[t] = black
		return false
	}
	for t := range lm.waitsFor {
		if color[t] == white && dfs(t) {
			return cycle
		}
	}
	return nil
}

// ReleaseAll releases every lock held by txn (commit or rollback point
// of strict 2PL) and clears its abort mark and timestamp.
func (lm *LockManager) ReleaseAll(txn int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	for _, st := range lm.locks {
		delete(st.holders, txn)
	}
	delete(lm.waitsFor, txn)
	delete(lm.aborted, txn)
	delete(lm.ts, txn)
	lm.cond.Broadcast()
}

// HoldsLock reports txn's mode on key (for tests).
func (lm *LockManager) HoldsLock(txn int, key string) (Mode, bool) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	st := lm.locks[key]
	if st == nil {
		return 0, false
	}
	m, ok := st.holders[txn]
	return m, ok
}

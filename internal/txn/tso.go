package txn

import (
	"errors"
	"sync"
)

// ErrTooLate is returned by timestamp-ordering operations that arrive
// after a conflicting younger operation has been accepted.
var ErrTooLate = errors.New("txn: operation too late under timestamp ordering")

// TSO implements basic timestamp-ordering concurrency control: each
// transaction carries its begin timestamp; a read is rejected when a
// younger write was accepted, a write is rejected when a younger read or
// write was accepted. With ThomasWrite enabled, obsolete writes are
// skipped instead of rejected (the Thomas write rule).
type TSO struct {
	mu      sync.Mutex
	nextTS  uint64
	data    map[string]int64
	readTS  map[string]uint64
	writeTS map[string]uint64
	// ThomasWrite enables the Thomas write rule.
	ThomasWrite bool
	// Rejections counts operations refused.
	Rejections int64
}

// NewTSO creates an empty timestamp-ordered store.
func NewTSO(thomasWrite bool) *TSO {
	return &TSO{
		data:        map[string]int64{},
		readTS:      map[string]uint64{},
		writeTS:     map[string]uint64{},
		ThomasWrite: thomasWrite,
	}
}

// Begin returns a fresh transaction timestamp.
func (t *TSO) Begin() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextTS++
	return t.nextTS
}

// Read returns key's value for transaction ts, or ErrTooLate if a
// younger transaction already wrote it.
func (t *TSO) Read(ts uint64, key string) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts < t.writeTS[key] {
		t.Rejections++
		return 0, ErrTooLate
	}
	if ts > t.readTS[key] {
		t.readTS[key] = ts
	}
	return t.data[key], nil
}

// Write stores key=v for transaction ts, or returns ErrTooLate when a
// younger transaction already read or wrote it (unless the Thomas write
// rule applies, in which case an obsolete write is silently skipped).
func (t *TSO) Write(ts uint64, key string, v int64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ts < t.readTS[key] {
		t.Rejections++
		return ErrTooLate
	}
	if ts < t.writeTS[key] {
		if t.ThomasWrite {
			return nil // obsolete write: skip
		}
		t.Rejections++
		return ErrTooLate
	}
	t.writeTS[key] = ts
	t.data[key] = v
	return nil
}

// Value returns the current committed value (test helper).
func (t *TSO) Value(key string) int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.data[key]
}

package taskgraph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot format, optionally annotating
// the critical path (its nodes and edges drawn bold) — the visualization
// instructors project when teaching work-span analysis.
func (g *Graph) DOT(highlightCriticalPath bool) (string, error) {
	var critical map[int]bool
	var criticalEdge map[[2]int]bool
	if highlightCriticalPath {
		a, err := g.Analyze()
		if err != nil {
			return "", err
		}
		critical = map[int]bool{}
		criticalEdge = map[[2]int]bool{}
		for i, id := range a.CriticalPath {
			critical[id] = true
			if i > 0 {
				criticalEdge[[2]int{a.CriticalPath[i-1], id}] = true
			}
		}
	}
	ids := make([]int, 0, len(g.tasks))
	for id := range g.tasks {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var b strings.Builder
	b.WriteString("digraph tasks {\n  rankdir=TB;\n")
	for _, id := range ids {
		t := g.tasks[id]
		style := ""
		if critical[id] {
			style = ", penwidth=2, color=red"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\\ncost=%.3g\"%s];\n", id, escapeDot(t.Name), t.Cost, style)
	}
	for _, id := range ids {
		for _, d := range g.tasks[id].deps {
			style := ""
			if criticalEdge[[2]int{d, id}] {
				style = " [penwidth=2, color=red]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", d, id, style)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func escapeDot(s string) string {
	s = strings.ReplaceAll(s, "\\", "\\\\")
	return strings.ReplaceAll(s, "\"", "\\\"")
}

package taskgraph

import (
	"strings"
	"testing"
)

func TestDOTOutput(t *testing.T) {
	g := NewGraph()
	a := g.MustAddTask("load \"x\"", 1)
	b := g.MustAddTask("compute", 3, a)
	g.MustAddTask("store", 1, b)
	out, err := g.DOT(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph tasks", "n0 -> n1", "n1 -> n2", "penwidth=2", `load \"x\"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Every node and edge of the chain is critical.
	if strings.Count(out, "color=red") != 5 { // 3 nodes + 2 edges
		t.Errorf("critical highlights = %d, want 5:\n%s", strings.Count(out, "color=red"), out)
	}
}

func TestDOTWithoutHighlight(t *testing.T) {
	g := Fork(3, 1, 2, 1)
	out, err := g.DOT(false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "color=red") {
		t.Error("highlight leaked into plain render")
	}
	if strings.Count(out, "->") != 6 { // 3 fork edges + 3 join edges
		t.Errorf("edges = %d, want 6", strings.Count(out, "->"))
	}
}

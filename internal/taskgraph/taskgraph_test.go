package taskgraph

import (
	"math"
	"testing"
	"testing/quick"
)

// diamond builds the classic diamond DAG:
//
//	    a(1)
//	   /    \
//	b(3)    c(2)
//	   \    /
//	    d(1)
func diamond(t *testing.T) (*Graph, [4]int) {
	t.Helper()
	g := NewGraph()
	a := g.MustAddTask("a", 1)
	b := g.MustAddTask("b", 3, a)
	c := g.MustAddTask("c", 2, a)
	d := g.MustAddTask("d", 1, b, c)
	return g, [4]int{a, b, c, d}
}

func TestAnalyzeDiamond(t *testing.T) {
	g, ids := diamond(t)
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Work != 7 {
		t.Errorf("Work = %g, want 7", a.Work)
	}
	if a.Span != 5 { // a -> b -> d
		t.Errorf("Span = %g, want 5", a.Span)
	}
	if math.Abs(a.Parallelism-7.0/5.0) > 1e-12 {
		t.Errorf("Parallelism = %g, want 1.4", a.Parallelism)
	}
	want := []int{ids[0], ids[1], ids[3]}
	if len(a.CriticalPath) != len(want) {
		t.Fatalf("CriticalPath = %v, want %v", a.CriticalPath, want)
	}
	for i := range want {
		if a.CriticalPath[i] != want[i] {
			t.Errorf("CriticalPath[%d] = %d, want %d", i, a.CriticalPath[i], want[i])
		}
	}
}

func TestAddTaskValidation(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddTask("bad", -1); err == nil {
		t.Error("negative cost should be rejected")
	}
	if _, err := g.AddTask("orphan", 1, 99); err == nil {
		t.Error("missing dependency should be rejected")
	}
	id, err := g.AddTask("ok", 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.Task(id) == nil || g.Task(id).Name != "ok" {
		t.Error("Task lookup failed")
	}
	if g.Task(12345) != nil {
		t.Error("lookup of unknown ID should be nil")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if deps := g.Deps(id); len(deps) != 0 {
		t.Errorf("Deps = %v, want empty", deps)
	}
	if deps := g.Deps(999); deps != nil {
		t.Errorf("Deps of unknown = %v, want nil", deps)
	}
}

func TestTopoOrderRespectsDeps(t *testing.T) {
	g := RandomLayered(5, 6, 0.5, 1, 10, 42)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		for _, d := range g.Deps(id) {
			if pos[d] >= pos[id] {
				t.Fatalf("dependency %d not before task %d", d, id)
			}
		}
	}
}

func TestForkGraph(t *testing.T) {
	g := Fork(8, 1, 2, 1)
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.Work != 1+8*2+1 {
		t.Errorf("Work = %g, want 18", a.Work)
	}
	if a.Span != 4 { // 1 + 2 + 1
		t.Errorf("Span = %g, want 4", a.Span)
	}
}

func TestListScheduleSingleProcessorEqualsWork(t *testing.T) {
	g := RandomLayered(4, 5, 0.4, 1, 5, 7)
	a, _ := g.Analyze()
	res, err := g.ListSchedule(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-a.Work) > 1e-9 {
		t.Errorf("1-processor makespan = %g, want Work = %g", res.Makespan, a.Work)
	}
}

func TestListScheduleRespectsDependencies(t *testing.T) {
	g := RandomLayered(6, 4, 0.5, 1, 8, 11)
	res, err := g.ListSchedule(3)
	if err != nil {
		t.Fatal(err)
	}
	finish := map[int]float64{}
	for _, e := range res.Entries {
		finish[e.TaskID] = e.Finish
	}
	procBusy := map[int][][2]float64{}
	for _, e := range res.Entries {
		for _, d := range g.Deps(e.TaskID) {
			if finish[d] > e.Start+1e-9 {
				t.Errorf("task %d starts at %g before dep %d finishes at %g",
					e.TaskID, e.Start, d, finish[d])
			}
		}
		procBusy[e.Processor] = append(procBusy[e.Processor], [2]float64{e.Start, e.Finish})
	}
	// No overlapping intervals on any processor.
	for proc, ivs := range procBusy {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				if a[0] < b[1]-1e-9 && b[0] < a[1]-1e-9 {
					t.Errorf("processor %d has overlapping tasks %v and %v", proc, a, b)
				}
			}
		}
	}
}

// Property: greedy list scheduling satisfies Brent's bound and the
// trivial lower bound on random DAGs and processor counts.
func TestBrentBoundProperty(t *testing.T) {
	f := func(seed int64, pRaw, layersRaw, widthRaw uint8) bool {
		p := int(pRaw%8) + 1
		layers := int(layersRaw%5) + 1
		width := int(widthRaw%5) + 1
		g := RandomLayered(layers, width, 0.5, 1, 10, seed)
		a, err := g.Analyze()
		if err != nil {
			return false
		}
		res, err := g.ListSchedule(p)
		if err != nil {
			return false
		}
		ub := BrentUpperBound(a, p)
		lb := LowerBound(a, p)
		return res.Makespan <= ub+1e-9 && res.Makespan >= lb-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestBoundsDegenerate(t *testing.T) {
	var a Analysis
	if BrentUpperBound(a, 0) != 0 || LowerBound(a, 0) != 0 {
		t.Error("bounds with p=0 should be 0")
	}
}

func TestListScheduleEmptyGraph(t *testing.T) {
	g := NewGraph()
	res, err := g.ListSchedule(4)
	if err != nil || res.Makespan != 0 || len(res.Entries) != 0 {
		t.Errorf("empty graph schedule = %+v, err=%v", res, err)
	}
}

func TestListScheduleDefensiveP(t *testing.T) {
	g, _ := diamond(t)
	res, err := g.ListSchedule(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Processors != 1 {
		t.Errorf("p=0 should clamp to 1, got %d", res.Processors)
	}
}

func TestMoreProcessorsApproachSpan(t *testing.T) {
	g := Fork(16, 1, 4, 1)
	a, _ := g.Analyze()
	res, err := g.ListSchedule(16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-a.Span) > 1e-9 {
		t.Errorf("16-processor fork-join makespan = %g, want span %g", res.Makespan, a.Span)
	}
}

func BenchmarkAnalyze(b *testing.B) {
	g := RandomLayered(20, 50, 0.3, 1, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Analyze(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListSchedule(b *testing.B) {
	g := RandomLayered(20, 50, 0.3, 1, 10, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.ListSchedule(8); err != nil {
			b.Fatal(err)
		}
	}
}

// Package taskgraph implements the work-span model of parallel
// computation that CC2020 names via its "critical path" topic: task DAGs
// with weighted nodes, computation of work (T1) and span (T∞), the
// critical path itself, Brent's-theorem bounds, and greedy list
// scheduling onto p processors for comparison against those bounds.
package taskgraph

import (
	"errors"
	"fmt"
	"math/rand"
)

// ErrCycle is returned when a graph operation requires acyclicity but the
// graph has a cycle.
var ErrCycle = errors.New("taskgraph: graph contains a cycle")

// Task is a node in a task DAG.
type Task struct {
	ID   int
	Name string
	// Cost is the task's execution time in abstract units (must be > 0
	// for scheduling results to be meaningful).
	Cost float64
	// deps are IDs of tasks that must complete before this one starts.
	deps []int
}

// Graph is a directed acyclic graph of tasks. The zero value is empty
// and ready to use via AddTask.
type Graph struct {
	tasks map[int]*Task
	next  int
}

// NewGraph creates an empty task graph.
func NewGraph() *Graph {
	return &Graph{tasks: make(map[int]*Task)}
}

// AddTask inserts a task with the given name, cost and dependency IDs,
// returning its assigned ID. It returns an error if a dependency does
// not exist or the cost is negative.
func (g *Graph) AddTask(name string, cost float64, deps ...int) (int, error) {
	if cost < 0 {
		return 0, fmt.Errorf("taskgraph: negative cost %g for task %q", cost, name)
	}
	for _, d := range deps {
		if _, ok := g.tasks[d]; !ok {
			return 0, fmt.Errorf("taskgraph: dependency %d of task %q does not exist", d, name)
		}
	}
	id := g.next
	g.next++
	g.tasks[id] = &Task{ID: id, Name: name, Cost: cost, deps: append([]int(nil), deps...)}
	return id, nil
}

// MustAddTask is AddTask that panics on error; convenient in examples.
func (g *Graph) MustAddTask(name string, cost float64, deps ...int) int {
	id, err := g.AddTask(name, cost, deps...)
	if err != nil {
		panic(err)
	}
	return id
}

// Len reports the number of tasks.
func (g *Graph) Len() int { return len(g.tasks) }

// Task returns the task with the given ID, or nil.
func (g *Graph) Task(id int) *Task { return g.tasks[id] }

// Deps returns a copy of the dependency IDs of the given task.
func (g *Graph) Deps(id int) []int {
	t := g.tasks[id]
	if t == nil {
		return nil
	}
	return append([]int(nil), t.deps...)
}

// TopoOrder returns the task IDs in a topological order, or ErrCycle.
// Because AddTask only allows edges to pre-existing tasks, graphs built
// through the public API are always acyclic; the check guards graphs
// deserialized or mutated by other means.
func (g *Graph) TopoOrder() ([]int, error) {
	indeg := make(map[int]int, len(g.tasks))
	succs := make(map[int][]int, len(g.tasks))
	for id, t := range g.tasks {
		if _, ok := indeg[id]; !ok {
			indeg[id] = 0
		}
		for _, d := range t.deps {
			indeg[id]++
			succs[d] = append(succs[d], id)
		}
	}
	// Deterministic order: start from smallest IDs.
	var queue []int
	for id := 0; id < g.next; id++ {
		if t, ok := g.tasks[id]; ok && t != nil && indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	var order []int
	for len(queue) > 0 {
		// Pop the smallest ready ID for determinism.
		minIdx := 0
		for i, id := range queue {
			if id < queue[minIdx] {
				minIdx = i
			}
		}
		id := queue[minIdx]
		queue = append(queue[:minIdx], queue[minIdx+1:]...)
		order = append(order, id)
		for _, s := range succs[id] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(g.tasks) {
		return nil, ErrCycle
	}
	return order, nil
}

// RandomLayered generates a deterministic pseudo-random layered DAG with
// the given number of layers, width per layer, and edge probability
// between adjacent layers — the workload generator for the scheduling
// benchmarks. Costs are drawn uniformly from [minCost, maxCost).
func RandomLayered(layers, width int, edgeProb, minCost, maxCost float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph()
	prev := make([]int, 0, width)
	for l := 0; l < layers; l++ {
		cur := make([]int, 0, width)
		for w := 0; w < width; w++ {
			var deps []int
			for _, p := range prev {
				if rng.Float64() < edgeProb {
					deps = append(deps, p)
				}
			}
			cost := minCost + rng.Float64()*(maxCost-minCost)
			id := g.MustAddTask(fmt.Sprintf("L%dW%d", l, w), cost, deps...)
			cur = append(cur, id)
		}
		prev = cur
	}
	return g
}

// Fork generates a fork-join graph: a source task, n parallel children,
// and a sink join task, with the given per-child cost — the shape of
// every parallel-for.
func Fork(n int, sourceCost, childCost, sinkCost float64) *Graph {
	g := NewGraph()
	src := g.MustAddTask("fork", sourceCost)
	children := make([]int, n)
	for i := 0; i < n; i++ {
		children[i] = g.MustAddTask(fmt.Sprintf("child%d", i), childCost, src)
	}
	g.MustAddTask("join", sinkCost, children...)
	return g
}

package taskgraph

import (
	"container/heap"
	"sort"
)

// Analysis summarizes the work-span analysis of a task graph.
type Analysis struct {
	// Work is T1, the total cost of all tasks (time on one processor).
	Work float64
	// Span is T∞, the cost of the longest dependency chain (time with
	// unlimited processors).
	Span float64
	// Parallelism is Work/Span, the maximum useful processor count.
	Parallelism float64
	// CriticalPath lists the task IDs along one longest chain, in
	// execution order.
	CriticalPath []int
}

// Analyze computes work, span and a critical path. It returns ErrCycle
// for cyclic graphs.
func (g *Graph) Analyze() (Analysis, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return Analysis{}, err
	}
	var a Analysis
	finish := make(map[int]float64, len(order)) // earliest finish time
	pred := make(map[int]int, len(order))       // critical predecessor
	for _, id := range order {
		t := g.tasks[id]
		a.Work += t.Cost
		start := 0.0
		pred[id] = -1
		for _, d := range t.deps {
			if finish[d] > start {
				start = finish[d]
				pred[id] = d
			}
		}
		finish[id] = start + t.Cost
		if finish[id] > a.Span {
			a.Span = finish[id]
		}
	}
	// Recover one critical path by walking predecessors from the task
	// with the maximal finish time.
	last := -1
	for id, f := range finish {
		if last == -1 || f > finish[last] || (f == finish[last] && id < last) {
			last = id
		}
	}
	for id := last; id != -1; id = pred[id] {
		a.CriticalPath = append(a.CriticalPath, id)
	}
	// Reverse into execution order.
	for i, j := 0, len(a.CriticalPath)-1; i < j; i, j = i+1, j-1 {
		a.CriticalPath[i], a.CriticalPath[j] = a.CriticalPath[j], a.CriticalPath[i]
	}
	if a.Span > 0 {
		a.Parallelism = a.Work / a.Span
	}
	return a, nil
}

// BrentUpperBound returns the classical greedy-scheduler bound
// T_p <= T1/p + T∞ for p processors.
func BrentUpperBound(a Analysis, p int) float64 {
	if p <= 0 {
		return 0
	}
	return a.Work/float64(p) + a.Span
}

// LowerBound returns max(T1/p, T∞), the trivial lower bound on T_p.
func LowerBound(a Analysis, p int) float64 {
	if p <= 0 {
		return 0
	}
	lb := a.Work / float64(p)
	if a.Span > lb {
		lb = a.Span
	}
	return lb
}

// ScheduleEntry records one task's placement by the list scheduler.
type ScheduleEntry struct {
	TaskID    int
	Processor int
	Start     float64
	Finish    float64
}

// ScheduleResult is the outcome of list-scheduling a graph on p processors.
type ScheduleResult struct {
	Processors int
	Makespan   float64
	Entries    []ScheduleEntry
}

// finishEvent is a running task completion in the event queue.
type finishEvent struct {
	time float64
	proc int
	task int
}

type finishHeap []finishEvent

func (h finishHeap) Len() int { return len(h) }
func (h finishHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].task < h[j].task
}
func (h finishHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x any)   { *h = append(*h, x.(finishEvent)) }
func (h *finishHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// ListSchedule runs a greedy (never idles a processor while a task is
// ready) event-driven list scheduler on p identical processors,
// dispatching ready tasks in bottom-level (HLFET) priority order. The
// resulting makespan therefore satisfies Brent's bound
// T_p <= T1/p + T∞, which the tests assert as a property.
func (g *Graph) ListSchedule(p int) (ScheduleResult, error) {
	if p <= 0 {
		p = 1
	}
	order, err := g.TopoOrder()
	if err != nil {
		return ScheduleResult{}, err
	}
	res := ScheduleResult{Processors: p}
	if len(order) == 0 {
		return res, nil
	}

	succs := make(map[int][]int, len(order))
	for _, id := range order {
		for _, d := range g.tasks[id].deps {
			succs[d] = append(succs[d], id)
		}
	}
	// Bottom levels (longest outgoing path incl. self) in reverse topo order.
	bottom := make(map[int]float64, len(order))
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		best := 0.0
		for _, s := range succs[id] {
			if bottom[s] > best {
				best = bottom[s]
			}
		}
		bottom[id] = best + g.tasks[id].Cost
	}

	remaining := make(map[int]int, len(order))
	var ready []int // tasks whose deps have all finished by current time
	for _, id := range order {
		remaining[id] = len(g.tasks[id].deps)
		if remaining[id] == 0 {
			ready = append(ready, id)
		}
	}
	pickReady := func() int {
		best := 0
		for i := 1; i < len(ready); i++ {
			bi, bb := bottom[ready[i]], bottom[ready[best]]
			if bi > bb || (bi == bb && ready[i] < ready[best]) {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		return id
	}

	idle := make([]int, p) // idle processor IDs, smallest last for pop
	for i := range idle {
		idle[i] = p - 1 - i
	}
	var running finishHeap
	heap.Init(&running)
	t := 0.0
	completed := 0

	for completed < len(order) {
		// Greedy dispatch: fill idle processors with ready tasks.
		for len(idle) > 0 && len(ready) > 0 {
			id := pickReady()
			proc := idle[len(idle)-1]
			idle = idle[:len(idle)-1]
			fin := t + g.tasks[id].Cost
			res.Entries = append(res.Entries, ScheduleEntry{
				TaskID: id, Processor: proc, Start: t, Finish: fin,
			})
			heap.Push(&running, finishEvent{time: fin, proc: proc, task: id})
		}
		if running.Len() == 0 {
			// Nothing running and nothing ready: graph is inconsistent.
			return ScheduleResult{}, ErrCycle
		}
		// Advance to the next completion; release every task finishing
		// at that instant so dispatch sees the full ready set.
		t = running[0].time
		for running.Len() > 0 && running[0].time == t {
			ev := heap.Pop(&running).(finishEvent)
			idle = append(idle, ev.proc)
			completed++
			if ev.time > res.Makespan {
				res.Makespan = ev.time
			}
			for _, s := range succs[ev.task] {
				remaining[s]--
				if remaining[s] == 0 {
					ready = append(ready, s)
				}
			}
		}
		sort.Sort(sort.Reverse(sort.IntSlice(idle)))
	}
	return res, nil
}

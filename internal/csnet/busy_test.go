package csnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// gateHandler blocks every op on a channel so tests can hold handler
// slots occupied deterministically.
func gateHandler(gate <-chan struct{}) Handler {
	return HandlerFunc(func(r Request) Response {
		<-gate
		return Response{Status: StatusOK, Value: r.Value}
	})
}

// TestAdmissionShedsBusy pins the shed contract: with an in-flight
// budget enabled and every handler slot blocked, excess muxed frames
// are answered StatusBusy immediately (never dropped, never queued
// forever), and the server recovers once the handlers drain.
func TestAdmissionShedsBusy(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServer(gateHandler(gate), 16)
	srv.SetAdmission(2, 4)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 32
	calls := make([]*Call, n)
	for i := range calls {
		calls[i] = c.Send(Request{Op: OpEcho, Value: []byte{byte(i)}})
	}
	// Give the admitted frames time to occupy the budget, then let
	// them finish; the rest must already have been shed.
	time.Sleep(50 * time.Millisecond)
	close(gate)

	var ok, busy int
	for i, call := range calls {
		resp, err := call.Response()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		switch resp.Status {
		case StatusOK:
			ok++
		case StatusBusy:
			busy++
		default:
			t.Fatalf("call %d: status %v", i, resp.Status)
		}
	}
	if ok == 0 || busy == 0 || ok+busy != n {
		t.Fatalf("ok=%d busy=%d, want both nonzero summing to %d", ok, busy, n)
	}
	// Budget released: the server serves again without sheds.
	if resp, err := c.Do(Request{Op: OpEcho, Value: []byte("x")}); err != nil || resp.Status != StatusOK {
		t.Fatalf("post-drain echo = %+v, %v", resp, err)
	}
}

// TestAdmissionDefaultOff pins legacy interop: a server that never
// called SetAdmission admits everything, so a pre-busy peer can never
// see the new status byte no matter the offered concurrency.
func TestAdmissionDefaultOff(t *testing.T) {
	srv := NewServer(NewKVHandler(), 8)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 256
	calls := make([]*Call, n)
	for i := range calls {
		calls[i] = c.Send(Request{Op: OpSet, Key: fmt.Sprintf("k%d", i%7), Value: []byte("v")})
	}
	for i, call := range calls {
		resp, err := call.Response()
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if resp.Status == StatusBusy {
			t.Fatalf("call %d: default-configured server emitted BUSY", i)
		}
	}
}

// TestLegacyShedResponse drives the unframed (pre-mux) wire path into
// an exhausted budget and checks the shed reply is a well-formed
// legacy response frame — a legacy peer sees BUSY, not a hang or a
// closed conn.
func TestLegacyShedResponse(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv := NewServer(gateHandler(gate), 8)
	srv.SetAdmission(0, 1)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Occupy the whole budget with one muxed call stuck in the gate.
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stuck := c.Send(Request{Op: OpEcho, Value: []byte("hold")})
	time.Sleep(50 * time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body, err := EncodeRequest(Request{Op: OpGet, Key: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(conn, body); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := ReadFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBusy {
		t.Fatalf("legacy status = %v, want BUSY", resp.Status)
	}
	gate <- struct{}{}
	if resp, err := stuck.Response(); err != nil || resp.Status != StatusOK {
		t.Fatalf("held call = %+v, %v", resp, err)
	}
}

// TestDoRetry checks the client backoff loop: busy replies are
// re-offered with delay, a success short-circuits, and exhausted
// attempts hand back the final busy response rather than an error.
func TestDoRetry(t *testing.T) {
	var served atomic.Int64
	busyFirst := func(n int64) Handler {
		return HandlerFunc(func(r Request) Response {
			if served.Add(1) <= n {
				return Response{Status: StatusBusy}
			}
			return Response{Status: StatusOK, Value: r.Value}
		})
	}

	srv := NewServer(busyFirst(2), 4)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.DoRetry(Request{Op: OpEcho, Value: []byte("r")}, 4, 100*time.Microsecond)
	if err != nil || resp.Status != StatusOK || string(resp.Value) != "r" {
		t.Fatalf("DoRetry = %+v, %v", resp, err)
	}
	if got := served.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}

	// All attempts shed: final busy response, nil error.
	served.Store(-1 << 40)
	resp, err = c.DoRetry(Request{Op: OpEcho}, 3, 100*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBusy {
		t.Fatalf("exhausted retries status = %v, want BUSY", resp.Status)
	}
}

// TestIsBusyPredicate checks the typed-error mapping: helper methods
// surface a shed reply as ErrBusy, distinguishable from other errors.
func TestIsBusyPredicate(t *testing.T) {
	srv := NewServer(HandlerFunc(func(Request) Response {
		return Response{Status: StatusBusy}
	}), 4)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, _, err = c.Get("k")
	if !IsBusy(err) {
		t.Fatalf("Get err = %v, want IsBusy", err)
	}
	if err := c.Set("k", []byte("v")); !IsBusy(err) {
		t.Fatalf("Set err = %v, want IsBusy", err)
	}
	if _, err := c.Del("k"); !IsBusy(err) {
		t.Fatalf("Del err = %v, want IsBusy", err)
	}
	if _, _, err := c.GetV("k"); !IsBusy(err) {
		t.Fatalf("GetV err = %v, want IsBusy", err)
	}
	if _, _, err := c.SetV("k", []byte("v"), 1); !IsBusy(err) {
		t.Fatalf("SetV err = %v, want IsBusy", err)
	}
	if IsBusy(nil) {
		t.Error("IsBusy(nil)")
	}
	if IsBusy(errors.New("other")) {
		t.Error("IsBusy(other)")
	}
}

// TestQueueDepthShed exercises the queue-bound (not budget-bound)
// shed path: shedQueue alone, all workers blocked, overflow frames
// answered BUSY instead of backing up the reader.
func TestQueueDepthShed(t *testing.T) {
	gate := make(chan struct{})
	srv := NewServer(gateHandler(gate), 16)
	srv.SetAdmission(1, 0)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	calls := make([]*Call, n)
	for i := range calls {
		calls[i] = c.Send(Request{Op: OpEcho, Value: []byte{byte(i)}})
	}
	time.Sleep(50 * time.Millisecond)
	close(gate)

	var wg sync.WaitGroup
	var busy atomic.Int64
	for i, call := range calls {
		wg.Add(1)
		go func(i int, call *Call) {
			defer wg.Done()
			resp, err := call.Response()
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if resp.Status == StatusBusy {
				busy.Add(1)
			}
		}(i, call)
	}
	wg.Wait()
	if busy.Load() == 0 {
		t.Fatal("no frames shed despite saturated 1-deep queue")
	}
}

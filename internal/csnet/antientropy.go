package csnet

import (
	"encoding/binary"
	"fmt"
)

// This file holds the wire codecs of the Merkle anti-entropy exchange
// (OpTreeV / OpRangeV). The tree layout is store.Digest's: a complete
// binary tree over B leaf buckets, heap-indexed — node 1 is the root,
// node i's children are 2i and 2i+1, leaf b is node B+b.

// EncodeBucketList serializes a list of tree node or bucket indexes:
// count(4) then count * index(4). It is the request body of both
// OpTreeV (node indexes) and OpRangeV (bucket indexes).
func EncodeBucketList(ids []uint32) []byte {
	buf := make([]byte, 4, 4+4*len(ids))
	binary.BigEndian.PutUint32(buf, uint32(len(ids)))
	var s [4]byte
	for _, id := range ids {
		binary.BigEndian.PutUint32(s[:], id)
		buf = append(buf, s[:]...)
	}
	return buf
}

// DecodeBucketList parses an EncodeBucketList body.
func DecodeBucketList(b []byte) ([]uint32, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("csnet: bucket list too short (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	if len(b) != 4*n {
		return nil, fmt.Errorf("csnet: bucket list count %d but %d body bytes", n, len(b))
	}
	ids := make([]uint32, n)
	for i := range ids {
		ids[i] = binary.BigEndian.Uint32(b[4*i:])
	}
	return ids, nil
}

// TreeNode is one (node index, hash) pair of an OpTreeV response.
type TreeNode struct {
	Node uint32
	Hash uint64
}

// EncodeTree serializes an OpTreeV response: buckets(4) count(4) then
// count * (node(4) hash(8)). Carrying the tree geometry lets a
// coordinator detect a replica whose engine was configured with a
// different bucket count instead of mis-diffing against it.
func EncodeTree(buckets int, nodes []TreeNode) []byte {
	buf := make([]byte, 8, 8+12*len(nodes))
	binary.BigEndian.PutUint32(buf, uint32(buckets))
	binary.BigEndian.PutUint32(buf[4:], uint32(len(nodes)))
	var s [12]byte
	for _, n := range nodes {
		binary.BigEndian.PutUint32(s[:4], n.Node)
		binary.BigEndian.PutUint64(s[4:], n.Hash)
		buf = append(buf, s[:]...)
	}
	return buf
}

// DecodeTree parses an OpTreeV response body.
func DecodeTree(b []byte) (buckets int, nodes []TreeNode, err error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("csnet: tree response too short (%d bytes)", len(b))
	}
	buckets = int(binary.BigEndian.Uint32(b))
	n := int(binary.BigEndian.Uint32(b[4:]))
	b = b[8:]
	if len(b) != 12*n {
		return 0, nil, fmt.Errorf("csnet: tree node count %d but %d body bytes", n, len(b))
	}
	nodes = make([]TreeNode, n)
	for i := range nodes {
		nodes[i].Node = binary.BigEndian.Uint32(b[12*i:])
		nodes[i].Hash = binary.BigEndian.Uint64(b[12*i+4:])
	}
	return buckets, nodes, nil
}

// KeyDigest is one entry of an OpRangeV bucket listing: everything the
// anti-entropy planner needs to order two copies without their values
// — version for the LWW race, digest for same-version value splits,
// tombstone and expiry for the delete/expiry tie-breaks.
type KeyDigest struct {
	Key       string
	Version   uint64
	Digest    uint64
	Tombstone bool
	ExpireAt  int64
}

// rangeVEntryMin is the smallest wire size of one RangeV entry:
// keyLen(2) version(8) digest(8) flags(1) plus an empty key.
const rangeVEntryMin = 2 + 8 + 8 + 1

// EncodeRangeV serializes an OpRangeV response: count(4) then count *
// (keyLen(2) key version(8) digest(8) flags(1) [expireAt(8)]).
func EncodeRangeV(entries []KeyDigest) ([]byte, error) {
	size := 4
	for _, e := range entries {
		if len(e.Key) > 0xFFFF {
			return nil, fmt.Errorf("csnet: key length %d exceeds 65535", len(e.Key))
		}
		size += rangeVEntryMin + len(e.Key) + 8
	}
	buf := make([]byte, 4, size)
	binary.BigEndian.PutUint32(buf, uint32(len(entries)))
	var s [8]byte
	for _, e := range entries {
		binary.BigEndian.PutUint16(s[:2], uint16(len(e.Key)))
		buf = append(buf, s[:2]...)
		buf = append(buf, e.Key...)
		binary.BigEndian.PutUint64(s[:], e.Version)
		buf = append(buf, s[:]...)
		binary.BigEndian.PutUint64(s[:], e.Digest)
		buf = append(buf, s[:]...)
		var flags byte
		if e.Tombstone {
			flags |= FlagTombstone
		}
		if e.ExpireAt != 0 {
			flags |= FlagHasExpiry
		}
		buf = append(buf, flags)
		if e.ExpireAt != 0 {
			binary.BigEndian.PutUint64(s[:], uint64(e.ExpireAt))
			buf = append(buf, s[:]...)
		}
	}
	return buf, nil
}

// DecodeRangeV parses an OpRangeV response body.
func DecodeRangeV(b []byte) ([]KeyDigest, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("csnet: range listing too short (%d bytes)", len(b))
	}
	n := int(binary.BigEndian.Uint32(b))
	b = b[4:]
	// Reject counts the body cannot possibly hold before allocating.
	if n > len(b)/rangeVEntryMin {
		return nil, fmt.Errorf("csnet: range entry count %d exceeds body size %d", n, len(b))
	}
	entries := make([]KeyDigest, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 2 {
			return nil, fmt.Errorf("csnet: truncated range listing at entry %d", i)
		}
		kl := int(binary.BigEndian.Uint16(b))
		if len(b) < 2+kl+8+8+1 {
			return nil, fmt.Errorf("csnet: truncated range entry %d", i)
		}
		e := KeyDigest{
			Key:     string(b[2 : 2+kl]),
			Version: binary.BigEndian.Uint64(b[2+kl:]),
			Digest:  binary.BigEndian.Uint64(b[2+kl+8:]),
		}
		flags := b[2+kl+16]
		e.Tombstone = flags&FlagTombstone != 0
		b = b[2+kl+17:]
		if flags&FlagHasExpiry != 0 {
			if len(b) < 8 {
				return nil, fmt.Errorf("csnet: truncated expiry in range entry %d", i)
			}
			e.ExpireAt = int64(binary.BigEndian.Uint64(b))
			b = b[8:]
		}
		entries = append(entries, e)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("csnet: %d trailing bytes after range listing", len(b))
	}
	return entries, nil
}

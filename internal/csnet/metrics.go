package csnet

import (
	"sync/atomic"
	"time"

	"pdcedu/internal/obs"
	"pdcedu/internal/store"
)

// Wire-layer metric names. Per-op metrics append the op mnemonic:
//
//	csnet.server.ops.<OP>         counter: requests served
//	csnet.server.op_latency.<OP>  histogram: handler latency, ns
//	csnet.server.bytes_in         counter: request frame bytes
//	csnet.server.bytes_out        counter: response frame bytes
//	csnet.server.decode_errors    counter: malformed request frames
//	csnet.server.queue_depth.hw   gauge: per-conn worker queue high water
//	csnet.server.slow_ops         counter: ops over the slow-op threshold
//	csnet.server.shed             counter: frames answered StatusBusy by
//	                              admission control (queue or budget)
//	csnet.server.inflight.hw      gauge: admitted-frame high water while
//	                              the in-flight budget is enabled
//	csnet.mux.pending.hw          gauge: client pipeline depth high water
//	csnet.mux.timeouts            counter: client waits that expired
//	csnet.mux.poisoned            counter: muxed conns failed with error
//
// Reconnects after a poisoned conn are counted by the layer that owns
// redial policy (dist.pool.redials).
//
// Out-of-range or unknown op bytes (including the decode-failure path,
// where the op is untrusted) land in the UNKNOWN slot rather than
// silently vanishing.
type serverMetrics struct {
	ops        [int(OpTraces) + 1]*obs.Counter
	latency    [int(OpTraces) + 1]*obs.Histogram
	bytesIn    *obs.Counter
	bytesOut   *obs.Counter
	decodeEr   *obs.Counter
	queueHW    *obs.Gauge
	slowOps    *obs.Counter
	shed       *obs.Counter
	inflightHW *obs.Gauge

	muxPendingHW *obs.Gauge
	muxTimeouts  *obs.Counter
	muxPoisoned  *obs.Counter
}

// csnetM holds the package's metric pointers, resolved once at init so
// the request path never touches the registry map. Index 0 of the
// per-op arrays is the UNKNOWN slot (op byte 0 or past OpTraces).
var csnetM = func() *serverMetrics {
	r := obs.Default()
	m := &serverMetrics{
		bytesIn:      r.Counter("csnet.server.bytes_in"),
		bytesOut:     r.Counter("csnet.server.bytes_out"),
		decodeEr:     r.Counter("csnet.server.decode_errors"),
		queueHW:      r.Gauge("csnet.server.queue_depth.hw"),
		slowOps:      r.Counter("csnet.server.slow_ops"),
		shed:         r.Counter("csnet.server.shed"),
		inflightHW:   r.Gauge("csnet.server.inflight.hw"),
		muxPendingHW: r.Gauge("csnet.mux.pending.hw"),
		muxTimeouts:  r.Counter("csnet.mux.timeouts"),
		muxPoisoned:  r.Counter("csnet.mux.poisoned"),
	}
	for op := 0; op <= int(OpTraces); op++ {
		name := Op(op).String() // op 0 and unmapped bytes stringify as UNKNOWN
		m.ops[op] = r.Counter("csnet.server.ops." + name)
		m.latency[op] = r.Histogram("csnet.server.op_latency." + name)
	}
	return m
}()

// opSlot clamps an untrusted op byte into the metric arrays: known ops
// map to themselves, everything else to the UNKNOWN slot (0).
func opSlot(op Op) int {
	if op >= 1 && op <= OpTraces {
		return int(op)
	}
	return 0
}

// Slow-op logging: a server-side threshold (0 = off, the default) and
// a callback invoked — outside any lock, on the serving goroutine —
// for every op whose handler latency exceeds it. The key is reported
// as its Merkle bucket, not verbatim: enough to localize a hot range
// without writing user keys into logs.
var (
	slowOpThreshold atomic.Int64
	slowOpLog       atomic.Value // of func(op Op, bucket int, d time.Duration, traceID uint64)
)

// SetSlowOp installs the slow-op log: server ops slower than threshold
// invoke logf with the op, the key's Merkle bucket, the measured
// latency, and the request's trace ID (0 when the request carried no
// trace) — so a logged slow op can be looked up in /debug/traces
// directly. A zero threshold or nil logf disables it. The previous
// setting is replaced atomically; in-flight ops may use either.
func SetSlowOp(threshold time.Duration, logf func(op Op, bucket int, d time.Duration, traceID uint64)) {
	if threshold <= 0 || logf == nil {
		slowOpThreshold.Store(0)
		slowOpLog.Store((func(op Op, bucket int, d time.Duration, traceID uint64))(nil))
		return
	}
	slowOpLog.Store(logf)
	slowOpThreshold.Store(int64(threshold))
}

// noteSlowOp checks one served request against the slow-op threshold.
// The fast path — logging disabled — is a single atomic load.
func noteSlowOp(op Op, key string, d time.Duration, traceID uint64) {
	t := slowOpThreshold.Load()
	if t == 0 || int64(d) < t {
		return
	}
	logf, _ := slowOpLog.Load().(func(op Op, bucket int, d time.Duration, traceID uint64))
	if logf == nil {
		return
	}
	csnetM.slowOps.Inc()
	logf(op, store.BucketOf(key, store.DefaultMerkleBuckets), d, traceID)
}

package csnet

import (
	"bytes"
	"testing"
	"time"
)

func TestClientSetNX(t *testing.T) {
	srv := NewServer(NewKVHandler(), 0)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	stored, err := cl.SetNX("k", []byte("v1"))
	if err != nil || !stored {
		t.Fatalf("SetNX on absent key = %v %v, want stored", stored, err)
	}
	stored, err = cl.SetNX("k", []byte("v2"))
	if err != nil || stored {
		t.Fatalf("SetNX on existing key = %v %v, want unchanged", stored, err)
	}
	v, ok, err := cl.Get("k")
	if err != nil || !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("Get after losing SetNX = %q %v %v, want original v1", v, ok, err)
	}
}

// TestFrameServerCustomProtocol exercises the frame layer directly: a
// non-KV protocol served by NewFrameServer and driven with RoundTrip.
func TestFrameServerCustomProtocol(t *testing.T) {
	srv := NewFrameServer(frameFunc(func(body []byte) []byte {
		return bytes.ToUpper(body)
	}), 0)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, in := range []string{"hello", "", "MiXeD"} {
		got, err := cl.RoundTrip([]byte(in))
		if err != nil {
			t.Fatalf("RoundTrip(%q): %v", in, err)
		}
		if want := bytes.ToUpper([]byte(in)); !bytes.Equal(got, want) {
			t.Errorf("RoundTrip(%q) = %q, want %q", in, got, want)
		}
	}
}

// frameFunc adapts a function to FrameHandler for tests.
type frameFunc func([]byte) []byte

func (f frameFunc) ServeFrame(body []byte, _ FrameMeta) []byte { return f(body) }

// TestDecodeKeysMalformedCount rejects a key-list whose count field
// promises more entries than the body could hold, instead of
// attempting a giant allocation.
func TestDecodeKeysMalformedCount(t *testing.T) {
	if _, err := DecodeKeys([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Fatal("DecodeKeys accepted a 4-billion-entry count in an empty body")
	}
	body, err := EncodeKeys([]string{"a", "bc"})
	if err != nil {
		t.Fatal(err)
	}
	keys, err := DecodeKeys(body)
	if err != nil || len(keys) != 2 || keys[0] != "a" || keys[1] != "bc" {
		t.Fatalf("round trip = %v, %v", keys, err)
	}
}

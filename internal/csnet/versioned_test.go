package csnet

import (
	"bytes"
	"sort"
	"testing"
	"time"

	"pdcedu/internal/store"
	"pdcedu/internal/trace"
)

func TestVersionedRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpSetV, Key: "k", Value: []byte("v"), Version: 42},
		{Op: OpGetV, Key: "k"},
		{Op: OpDelV, Key: "k", Version: 7},
		{Op: OpMerge, Key: "k", Version: 9, Flags: FlagTombstone},
		{Op: OpMerge, Key: "k", Value: []byte("payload"), Version: 1<<63 + 5},
		{Op: OpMerge, Key: "k", Value: []byte("ttl"), Version: 11, ExpireAt: 1_700_000_000_000_000_000},
		{Op: OpKeysV},
	}
	for _, want := range reqs {
		b, err := EncodeRequest(want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Op != want.Op || got.Key != want.Key || string(got.Value) != string(want.Value) ||
			got.Version != want.Version || got.Flags != want.Flags || got.ExpireAt != want.ExpireAt {
			t.Fatalf("roundtrip = %+v, want %+v", got, want)
		}
	}
	// Legacy ops must decode to a zero trailer and reject stray bytes.
	if b, _ := EncodeRequest(Request{Op: OpSet, Key: "k", Value: []byte("v"), Version: 99}); true {
		got, err := DecodeRequest(b)
		if err != nil || got.Version != 0 {
			t.Fatalf("legacy op carried a version: %+v %v", got, err)
		}
	}
	// A versioned frame with a truncated trailer is an error, not a
	// silent zero version.
	b, _ := EncodeRequest(Request{Op: OpSetV, Key: "k", Value: []byte("v"), Version: 42})
	if _, err := DecodeRequest(b[:len(b)-3]); err == nil {
		t.Fatal("truncated versioned request accepted")
	}
}

func TestVersionedResponseRoundTrip(t *testing.T) {
	for _, want := range []Response{
		{Status: StatusOK, Value: []byte("v"), Version: 1234, Flags: FlagTombstone},
		{Status: StatusOK, Value: []byte("v"), Version: 9, ExpireAt: 1_700_000_000_000_000_000},
	} {
		got, err := DecodeResponseV(EncodeResponseV(want))
		if err != nil || got.Status != want.Status || string(got.Value) != "v" ||
			got.Version != want.Version || got.Flags != want.Flags || got.ExpireAt != want.ExpireAt {
			t.Fatalf("roundtrip = %+v %v, want %+v", got, err, want)
		}
	}
	if _, err := DecodeResponseV(EncodeResponse(Response{Status: StatusOK, Value: []byte("v")})); err == nil {
		t.Fatal("legacy response decoded as versioned")
	}
	if _, err := DecodeResponseV([]byte{1, 0}); err == nil {
		t.Fatal("short versioned response accepted")
	}
}

func TestKeysVRoundTrip(t *testing.T) {
	want := []KeyVersion{
		{Key: "a", Version: 1},
		{Key: "deleted", Version: 99, Tombstone: true},
		{Key: "", Version: 3},
	}
	b, err := EncodeKeysV(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeKeysV(b)
	if err != nil || len(got) != len(want) {
		t.Fatalf("decode = %v %v", got, err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// A hostile count must be rejected before allocation.
	bad := append([]byte(nil), b...)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := DecodeKeysV(bad); err == nil {
		t.Fatal("hostile KeysV count accepted")
	}
}

// TestVersionedOpsEndToEnd drives the versioned protocol over a real
// server: versioned merge semantics, tombstone-aware GetV, and the
// KeysV listing.
func TestVersionedOpsEndToEnd(t *testing.T) {
	kv := NewKVHandler()
	srv := NewServer(kv, 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// SetV with an explicit version, then a stale one: must be kept out.
	if winner, applied, err := cl.SetV("k", []byte("v2"), 200); err != nil || !applied || winner != 200 {
		t.Fatalf("SetV(200) = %d %v %v", winner, applied, err)
	}
	if winner, applied, err := cl.SetV("k", []byte("v1"), 100); err != nil || applied || winner != 200 {
		t.Fatalf("stale SetV(100) = %d %v %v, want kept 200", winner, applied, err)
	}
	e, ok, err := cl.GetV("k")
	if err != nil || !ok || string(e.Value) != "v2" || e.Version != 200 {
		t.Fatalf("GetV = %+v %v %v", e, ok, err)
	}
	// SetV with version 0: the server stamps one past what it has seen.
	winner, applied, err := cl.SetV("k", []byte("v3"), 0)
	if err != nil || !applied || winner <= 200 {
		t.Fatalf("server-stamped SetV = %d %v %v, want version past 200", winner, applied, err)
	}
	// A stale tombstone loses; a newer one deletes — and GetV reports
	// the tombstone's version on the miss.
	if _, applied, err := cl.Merge("k", store.Entry{Version: 150, Tombstone: true}); err != nil || applied {
		t.Fatalf("stale tombstone merge applied: %v %v", applied, err)
	}
	delVer := winner + 100
	if _, applied, err := cl.DelV("k", delVer); err != nil || !applied {
		t.Fatalf("DelV = %v %v", applied, err)
	}
	e, ok, err = cl.GetV("k")
	if err != nil || ok || !e.Tombstone || e.Version != delVer {
		t.Fatalf("GetV after DelV = %+v %v %v, want tombstone@%d", e, ok, err, delVer)
	}
	// Merge resurrects with a newer value.
	if _, applied, err := cl.Merge("k", store.Entry{Value: []byte("back"), Version: delVer + 1}); err != nil || !applied {
		t.Fatalf("resurrecting merge = %v %v", applied, err)
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || string(v) != "back" {
		t.Fatalf("legacy Get after merge = %q %v %v", v, ok, err)
	}
	// KeysV sees tombstones; Keys does not.
	cl.SetV("dead", []byte("x"), 10)
	cl.DelV("dead", 20)
	listing, err := cl.KeysV()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]KeyVersion{}
	for _, kvn := range listing {
		byKey[kvn.Key] = kvn
	}
	if !byKey["dead"].Tombstone || byKey["dead"].Version != 20 {
		t.Fatalf("KeysV lost the tombstone: %+v", byKey["dead"])
	}
	keys, err := cl.Keys()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("Keys = %v, want [k]", keys)
	}
	// Merge without a version is a protocol error.
	if _, _, err := cl.Merge("k", store.Entry{Value: []byte("x")}); err == nil {
		t.Fatal("version-0 merge accepted")
	}
	// A version claiming to be from the far future is rejected at the
	// trust boundary before it can poison the server's clock or plant
	// an unGCable tombstone — for every versioned write op.
	for _, hostile := range []uint64{^uint64(0), store.VersionCeiling(time.Now().Add(time.Hour))} {
		if _, _, err := cl.Merge("k", store.Entry{Value: []byte("x"), Version: hostile}); err == nil {
			t.Fatalf("far-future merge version %d accepted", hostile)
		}
		if _, _, err := cl.SetV("k", []byte("x"), hostile); err == nil {
			t.Fatalf("far-future setv version %d accepted", hostile)
		}
		if _, _, err := cl.DelV("k", hostile); err == nil {
			t.Fatalf("far-future delv version %d accepted", hostile)
		}
	}
	if v, ok, err := cl.Get("k"); err != nil || !ok || string(v) != "back" {
		t.Fatalf("value damaged by rejected hostile versions: %q %v %v", v, ok, err)
	}
}

// TestVersionedTTLReplication pins the expiry wire carriage: a TTL'd
// entry read via GetV and merged onto another server stays mortal —
// same ExpireAt, not an immortal copy.
func TestVersionedTTLReplication(t *testing.T) {
	var kvs [2]*KVHandler
	var cls [2]*Client
	for i := range kvs {
		kvs[i] = NewKVHandler()
		srv := NewServer(kvs[i], 16)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown()
		cls[i], err = Dial(addr, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer cls[i].Close()
	}
	// A server-stamped versioned write (Version 0) honors the
	// request's absolute expiry too.
	resp, err := cls[0].Send(Request{
		Op: OpSetV, Key: "session", Value: []byte("token"),
		ExpireAt: time.Now().Add(time.Hour).UnixNano(),
	}).ResponseV()
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("server-stamped SetV with expiry = %+v %v", resp, err)
	}
	if got, ok := kvs[0].Engine().Load("session"); !ok || got.ExpireAt == 0 {
		t.Fatalf("server-stamped SetV dropped the expiry: %+v %v", got, ok)
	}
	e, ok, err := cls[0].GetV("session")
	if err != nil || !ok || e.ExpireAt == 0 {
		t.Fatalf("GetV of TTL'd entry = %+v %v %v, want expiry on the wire", e, ok, err)
	}
	if _, applied, err := cls[1].Merge("session", e); err != nil || !applied {
		t.Fatalf("merge to second server = %v %v", applied, err)
	}
	got, ok := kvs[1].Engine().Load("session")
	if !ok || got.ExpireAt != e.ExpireAt || got.Version != e.Version {
		t.Fatalf("replicated entry = %+v %v, want same expiry %d and version %d", got, ok, e.ExpireAt, e.Version)
	}
}

// TestVersionedLegacyInterop pins the same-port guarantee: one
// connection freely mixes legacy and versioned ops against one store —
// a legacy SET is visible to GETV with a real version, a SETV is
// visible to legacy GET, and a legacy client (Set/Get/SetNX/Del/Keys)
// never sees a trailer it cannot parse.
func TestVersionedLegacyInterop(t *testing.T) {
	srv := NewServer(NewKVHandler(), 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if err := cl.Set("legacy", []byte("old-school")); err != nil {
		t.Fatal(err)
	}
	e, ok, err := cl.GetV("legacy")
	if err != nil || !ok || string(e.Value) != "old-school" || e.Version == 0 {
		t.Fatalf("GetV of legacy write = %+v %v %v, want value with a stamped version", e, ok, err)
	}
	if _, _, err := cl.SetV("versioned", []byte("new-school"), e.Version+1); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := cl.Get("versioned"); err != nil || !ok || string(v) != "new-school" {
		t.Fatalf("legacy Get of versioned write = %q %v %v", v, ok, err)
	}
	// Legacy delete tombstones under the hood but keeps its contract.
	if ok, err := cl.Del("legacy"); err != nil || !ok {
		t.Fatalf("legacy Del = %v %v", ok, err)
	}
	if ok, err := cl.Del("legacy"); err != nil || ok {
		t.Fatalf("second legacy Del = %v %v, want false", ok, err)
	}
	if stored, err := cl.SetNX("versioned", []byte("nope")); err != nil || stored {
		t.Fatalf("SetNX over live key = %v %v", stored, err)
	}
	if stored, err := cl.SetNX("legacy", []byte("revived")); err != nil || !stored {
		t.Fatalf("SetNX over tombstone = %v %v, want stored", stored, err)
	}
	keys, err := cl.Keys()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(keys)
	if len(keys) != 2 || keys[0] != "legacy" || keys[1] != "versioned" {
		t.Fatalf("Keys = %v, want [legacy versioned]", keys)
	}
}

// TestTracedLegacyInterop pins the trace trailer's interop discipline,
// alongside TestVersionedLegacyInterop: an untraced versioned frame is
// byte-identical to a pre-tracing build (no FlagHasTrace, no trailer
// extension — built here by hand), a traced frame round-trips its
// context, and traced, plain-versioned, and legacy frames mix freely on
// one server port with only the traced request recording spans.
func TestTracedLegacyInterop(t *testing.T) {
	// Untraced wire bytes, fully hand-assembled: any trailer growth on
	// the untraced path breaks legacy peers and must fail here.
	req := Request{Op: OpSetV, Key: "k", Value: []byte("v"), Version: 7}
	b, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		byte(OpSetV),
		0, 1, 'k', // keyLen(2) key
		0, 0, 0, 1, 'v', // valLen(4) val
		0, 0, 0, 0, 0, 0, 0, 7, // version(8)
		0, // flags: no expiry, no trace
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("untraced SetV frame = %x, want byte-identical pre-tracing wire %x", b, want)
	}

	// The traced frame is exactly the 17-byte extension longer and
	// round-trips its context; decoding the untraced frame yields the
	// zero context.
	tc := trace.Context{TraceID: 0xDEADBEEF, SpanID: 0x1234, Flags: trace.FlagSampled}
	req.Trace = tc
	tb, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb) != len(b)+17 {
		t.Fatalf("traced frame is %d bytes, want untraced %d + 17", len(tb), len(b))
	}
	dec, err := DecodeRequest(tb)
	if err != nil || dec.Trace != tc {
		t.Fatalf("traced round trip = %+v %v, want context %+v", dec.Trace, err, tc)
	}
	if dec, err := DecodeRequest(b); err != nil || dec.Trace.Valid() {
		t.Fatalf("untraced decode = %+v %v, want zero trace context", dec.Trace, err)
	}

	// Mixed traffic on one port: the server records spans only for the
	// traced request, and every flavor of peer keeps working.
	rec := trace.New(trace.Config{Node: "srv"})
	srv := NewServer(NewKVHandler().WithTracer(rec), 16)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	cl, err := Dial(addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	resp, err := cl.Send(Request{Op: OpSetV, Key: "traced", Value: []byte("t"), Version: 1, Trace: tc}).ResponseV()
	if err != nil || resp.Status != StatusOK {
		t.Fatalf("traced SetV = %+v %v", resp, err)
	}
	if err := cl.Set("legacy", []byte("l")); err != nil {
		t.Fatalf("legacy Set on the same port: %v", err)
	}
	if v, ok, err := cl.Get("traced"); err != nil || !ok || string(v) != "t" {
		t.Fatalf("legacy Get of traced write = %q %v %v", v, ok, err)
	}
	if e, ok, err := cl.GetV("legacy"); err != nil || !ok || string(e.Value) != "l" {
		t.Fatalf("untraced GetV of legacy write = %+v %v %v", e, ok, err)
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("traced request recorded no server spans")
	}
	for _, s := range spans {
		if s.TraceID != tc.TraceID {
			t.Fatalf("span %+v recorded outside trace %x: untraced requests must not record", s, tc.TraceID)
		}
	}
	found := false
	for _, s := range spans {
		if s.Kind == trace.KindServer && s.Op == "SETV" && s.Parent == tc.SpanID && s.Node == "srv" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no server SETV span parented to the wire context in %+v", spans)
	}
}

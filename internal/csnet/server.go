package csnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Handler processes one request; implementations must be safe for
// concurrent use (the server runs one goroutine per connection).
type Handler interface {
	Serve(Request) Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(Request) Response

// Serve implements Handler.
func (f HandlerFunc) Serve(r Request) Response { return f(r) }

// FrameHandler processes one raw request frame and returns the raw
// response frame. It is the layer below Handler: protocols that are not
// the binary key-value protocol (e.g. the dist RPC middleware) plug in
// here and reuse the server's connection machinery unchanged.
// Implementations must be safe for concurrent use and must not retain
// body after returning: on legacy connections the server reuses the
// read buffer for the next frame. The returned frame may alias body
// contents (it is written out before the buffer is reused).
type FrameHandler interface {
	ServeFrame(body []byte) []byte
}

// protocolFrames adapts a key-value Handler to the frame layer.
type protocolFrames struct {
	h Handler
}

// ServeFrame implements FrameHandler.
func (p protocolFrames) ServeFrame(body []byte) []byte {
	req, err := DecodeRequest(body)
	var resp Response
	if err != nil {
		resp = Response{Status: StatusError, Value: []byte(err.Error())}
	} else {
		resp = p.h.Serve(req)
	}
	return EncodeResponse(resp)
}

// Server is a concurrent framed-protocol TCP server.
type Server struct {
	frames   FrameHandler
	maxConns int

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup

	// ActiveConns is exposed for tests and monitoring.
	active sync.WaitGroup
}

// NewServer creates a key-value protocol server with the given handler;
// maxConns bounds concurrent connections (0 means 128).
func NewServer(h Handler, maxConns int) *Server {
	return NewFrameServer(protocolFrames{h: h}, maxConns)
}

// NewFrameServer creates a server speaking a custom frame protocol;
// maxConns bounds concurrent connections (0 means 128).
func NewFrameServer(fh FrameHandler, maxConns int) *Server {
	if maxConns <= 0 {
		maxConns = 128
	}
	return &Server{frames: fh, maxConns: maxConns, conns: map[net.Conn]struct{}{}}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and begins
// accepting connections. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("csnet: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		ln.Close()
		return "", errors.New("csnet: server already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	sem := make(chan struct{}, s.maxConns)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed
			}
			sem <- struct{}{}
			s.mu.Lock()
			if s.shutdown {
				s.mu.Unlock()
				conn.Close()
				<-sem
				return
			}
			s.conns[conn] = struct{}{}
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer func() {
					s.mu.Lock()
					delete(s.conns, conn)
					s.mu.Unlock()
					conn.Close()
					<-sem
				}()
				s.serveConn(conn)
			}()
		}
	}()
	return ln.Addr().String(), nil
}

// serveConn sniffs the first four bytes to pick the wire format: the
// "CSM1" magic selects the multiplexed mode; anything else is a legacy
// length prefix (the magic decodes to a length far beyond MaxFrameSize,
// so the two can never collide).
func (s *Server) serveConn(conn net.Conn) {
	var pre [4]byte
	if _, err := io.ReadFull(conn, pre[:]); err != nil {
		return
	}
	if pre == muxMagic {
		s.serveMux(conn)
		return
	}
	s.serveLegacy(conn, binary.BigEndian.Uint32(pre[:]))
}

// serveLegacy processes one-request-one-response FIFO frames. Handling
// is synchronous, so the request body scratch and the response frame
// buffer are reused across iterations: a steady-state request costs
// zero buffer allocations and one write syscall here.
func (s *Server) serveLegacy(conn net.Conn, firstLen uint32) {
	var body []byte  // request scratch, grown on demand
	var frame []byte // response header+body, coalesced into one write
	n := firstLen
	for {
		if n > MaxFrameSize {
			return
		}
		if cap(body) < int(n) {
			body = make([]byte, n)
		}
		body = body[:n]
		if _, err := io.ReadFull(conn, body); err != nil {
			return
		}
		resp := s.frames.ServeFrame(body)
		if len(resp) > MaxFrameSize {
			return
		}
		frame = appendFrame(frame[:0], resp)
		if _, err := conn.Write(frame); err != nil {
			return
		}
		var hdr [frameHeaderSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n = binary.BigEndian.Uint32(hdr[:])
	}
}

// muxConnHandlers bounds concurrently executing handlers per muxed
// connection.
const muxConnHandlers = 32

// serveMux processes sequence-numbered frames with out-of-order
// completion: the read loop feeds a small pool of persistent worker
// goroutines (no per-request spawn) and the shared coalescing frame
// writer (runFrameWriter) batches finished responses into single
// buffered writes. On a write failure the writer closes the connection,
// which unblocks the read loop and tears the whole pipeline down.
// Request bodies are allocated per frame here — handlers run
// concurrently, so the legacy path's scratch reuse would be a data
// race.
func (s *Server) serveMux(conn net.Conn) {
	in := make(chan muxFrame, muxConnHandlers)
	out := make(chan muxFrame, 2*muxConnHandlers)
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		runFrameWriter(conn, out, nil, 0, func(error) { conn.Close() })
	}()
	var workerWG sync.WaitGroup
	for i := 0; i < muxConnHandlers; i++ {
		workerWG.Add(1)
		go func() {
			defer workerWG.Done()
			for f := range in {
				out <- muxFrame{seq: f.seq, body: s.frames.ServeFrame(f.body)}
			}
		}()
	}
	br := bufio.NewReaderSize(conn, muxBufSize)
	hdr := make([]byte, muxHeaderSize)
	for {
		if _, err := io.ReadFull(br, hdr); err != nil {
			break
		}
		seq, n := parseMuxHeader(hdr)
		if n > MaxFrameSize {
			break
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(br, body); err != nil {
			break
		}
		in <- muxFrame{seq: seq, body: body}
	}
	close(in)
	workerWG.Wait()
	close(out)
	writerWG.Wait()
}

// Shutdown stops accepting, closes every connection and waits for the
// handler goroutines to finish.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// KVHandler is a thread-safe in-memory key-value store handler — the
// classic first server assignment.
type KVHandler struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewKVHandler creates an empty store.
func NewKVHandler() *KVHandler {
	return &KVHandler{data: map[string][]byte{}}
}

// Serve implements Handler.
func (kv *KVHandler) Serve(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{Status: StatusOK, Value: []byte("pong")}
	case OpEcho:
		return Response{Status: StatusOK, Value: req.Value}
	case OpGet:
		kv.mu.RLock()
		v, ok := kv.data[req.Key]
		kv.mu.RUnlock()
		if !ok {
			return Response{Status: StatusNotFound}
		}
		return Response{Status: StatusOK, Value: v}
	case OpSet:
		val := append([]byte(nil), req.Value...)
		kv.mu.Lock()
		kv.data[req.Key] = val
		kv.mu.Unlock()
		return Response{Status: StatusOK}
	case OpSetNX:
		val := append([]byte(nil), req.Value...)
		kv.mu.Lock()
		_, exists := kv.data[req.Key]
		if !exists {
			kv.data[req.Key] = val
		}
		kv.mu.Unlock()
		if exists {
			return Response{Status: StatusExists}
		}
		return Response{Status: StatusOK}
	case OpDel:
		kv.mu.Lock()
		_, ok := kv.data[req.Key]
		delete(kv.data, req.Key)
		kv.mu.Unlock()
		if !ok {
			return Response{Status: StatusNotFound}
		}
		return Response{Status: StatusOK}
	case OpKeys:
		kv.mu.RLock()
		keys := make([]string, 0, len(kv.data))
		for k := range kv.data {
			keys = append(keys, k)
		}
		kv.mu.RUnlock()
		body, err := EncodeKeys(keys)
		if err != nil {
			return Response{Status: StatusError, Value: []byte(err.Error())}
		}
		return Response{Status: StatusOK, Value: body}
	default:
		return Response{Status: StatusError, Value: []byte(fmt.Sprintf("unknown op %d", req.Op))}
	}
}

// Len reports the number of stored keys.
func (kv *KVHandler) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.data)
}
